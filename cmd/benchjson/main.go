// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so CI can accumulate a machine-readable
// perf trajectory (BENCH_<sha>.json artifacts) without any external
// tooling. Every benchmark line becomes one record carrying ns/op and
// all custom metrics (the repository's benchmarks report reproduced
// paper quantities as custom metrics, so the trajectory doubles as a
// reproduction audit over time).
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchjson > BENCH_abc123.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       strings.SplitN(fields[0], "-", 2)[0], // strip -GOMAXPROCS
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			rec.Metrics[fields[i+1]] = v
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so CI can accumulate a machine-readable
// perf trajectory (BENCH_<sha>.json artifacts) without any external
// tooling. Every benchmark line becomes one record carrying ns/op, the
// -benchmem columns (B/op, allocs/op) and all custom metrics (the
// repository's benchmarks report reproduced paper quantities as custom
// metrics, so the trajectory doubles as a reproduction audit over time).
//
// With -compare it becomes the CI benchmark-regression gate: it reads
// two such JSON documents, compares every tracked metric of every
// benchmark present in the baseline, prints a markdown table (suitable
// for a GitHub job summary), and exits non-zero when any metric regressed
// beyond its tolerance. Lower is better for every tracked metric.
//
// Tracked metrics take an optional per-metric tolerance with
// "name=tolerance" entries in -metrics; entries without one use the
// global -tolerance. Time is noisy on shared CI runners while allocation
// counts and bytes are near-deterministic, so a typical gate loosens
// ns/op and tightens the memory metrics:
//
//	benchjson -compare old.json new.json -tolerance 0.15 -metrics 'ns/op,allocs/op=0.10,B/op=0.10'
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchjson > BENCH_abc123.json
//	benchjson -compare BENCH_baseline.json BENCH_new.json -tolerance 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.15, "relative regression tolerance for -compare (0.15 = 15%)")
	metrics := flag.String("metrics", "ns/op,allocs/op,B/op", "comma-separated metrics tracked by -compare, each optionally name=tolerance")
	flag.Parse()

	if *compare {
		// Accept flags after the file operands too (the documented form is
		// `-compare old.json new.json -tolerance 0.15`; package flag stops
		// at the first positional argument).
		args := flag.Args()
		if len(args) > 2 {
			rest := flag.NewFlagSet("benchjson -compare", flag.ExitOnError)
			tolerance = rest.Float64("tolerance", *tolerance, "relative regression tolerance")
			metrics = rest.String("metrics", *metrics, "comma-separated tracked metrics")
			if err := rest.Parse(args[2:]); err != nil || rest.NArg() != 0 {
				fmt.Fprintln(os.Stderr, "benchjson: -compare takes exactly two files: old.json new.json")
				os.Exit(2)
			}
			args = args[:2]
		}
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		old, err := loadRecords(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		cur, err := loadRecords(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		tracked, err := parseTracked(*metrics, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		table, regressions := compareRecords(old, cur, tracked)
		fmt.Print(table)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond tolerance\n", regressions)
			os.Exit(1)
		}
		return
	}

	records, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench converts `go test -bench` text into records.
func parseBench(r io.Reader) ([]Record, error) {
	var records []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       strings.SplitN(fields[0], "-", 2)[0], // strip -GOMAXPROCS
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			rec.Metrics[fields[i+1]] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// loadRecords reads a benchjson JSON document.
func loadRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

// trackedMetric is one gated metric with its regression tolerance.
type trackedMetric struct {
	Name      string
	Tolerance float64
}

// parseTracked parses the -metrics value: comma-separated metric names,
// each optionally suffixed "=tolerance" to override the global default.
func parseTracked(spec string, defaultTol float64) ([]trackedMetric, error) {
	var out []trackedMetric
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, tolStr, hasTol := strings.Cut(entry, "=")
		tm := trackedMetric{Name: strings.TrimSpace(name), Tolerance: defaultTol}
		if hasTol {
			tol, err := strconv.ParseFloat(strings.TrimSpace(tolStr), 64)
			if err != nil || tol < 0 {
				return nil, fmt.Errorf("bad tolerance in -metrics entry %q", entry)
			}
			tm.Tolerance = tol
		}
		if tm.Name == "" {
			return nil, fmt.Errorf("empty metric name in -metrics entry %q", entry)
		}
		out = append(out, tm)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-metrics selected no metrics")
	}
	return out, nil
}

// compareRecords diffs the tracked metrics of every baseline benchmark
// against the new run, returning a markdown table and the number of
// regressions beyond each metric's tolerance. Benchmarks only present in
// the new run are ignored (they have no baseline yet); a baseline
// benchmark or tracked metric missing from the new run counts as a
// regression — a disappearing benchmark must not silently pass the gate.
func compareRecords(old, cur []Record, tracked []trackedMetric) (string, int) {
	newBy := map[string]Record{}
	for _, r := range cur {
		newBy[r.Name] = r
	}
	var b strings.Builder
	b.WriteString("| benchmark | metric | baseline | current | delta | tolerance | status |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
	regressions := 0
	for _, o := range old {
		n, ok := newBy[o.Name]
		for _, m := range tracked {
			ov, haveOld := o.Metrics[m.Name]
			if !haveOld {
				continue
			}
			tolStr := fmt.Sprintf("%.0f%%", m.Tolerance*100)
			if !ok {
				fmt.Fprintf(&b, "| %s | %s | %s | — | — | %s | missing |\n", o.Name, m.Name, fmtMetric(ov), tolStr)
				regressions++
				continue
			}
			nv, haveNew := n.Metrics[m.Name]
			if !haveNew {
				fmt.Fprintf(&b, "| %s | %s | %s | — | — | %s | missing |\n", o.Name, m.Name, fmtMetric(ov), tolStr)
				regressions++
				continue
			}
			status, deltaStr := "ok", "+0.0%"
			switch {
			case ov == 0 && nv > 0:
				// A zero baseline (e.g. an allocation-free hot path) going
				// nonzero is always a regression, whatever the tolerance.
				status, deltaStr = "REGRESSION", "+inf"
				regressions++
			case ov != 0:
				delta := (nv - ov) / ov
				deltaStr = fmt.Sprintf("%+.1f%%", delta*100)
				if delta > m.Tolerance {
					status = "REGRESSION"
					regressions++
				} else if delta < -m.Tolerance {
					status = "improved"
				}
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n",
				o.Name, m.Name, fmtMetric(ov), fmtMetric(nv), deltaStr, tolStr, status)
		}
	}
	return b.String(), regressions
}

// fmtMetric renders a metric value compactly.
func fmtMetric(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

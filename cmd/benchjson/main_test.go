package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
BenchmarkFullTimeline 	       1	1832803133 ns/op	      3048 mean_kW	110598280 B/op	  350462 allocs/op
BenchmarkDESEvents-8 	 5000000	       211 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	records, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("parsed %d records, want 2", len(records))
	}
	ft := records[0]
	if ft.Name != "BenchmarkFullTimeline" || ft.Iterations != 1 {
		t.Fatalf("bad record: %+v", ft)
	}
	for metric, want := range map[string]float64{
		"ns/op": 1832803133, "mean_kW": 3048, "B/op": 110598280, "allocs/op": 350462,
	} {
		if got := ft.Metrics[metric]; got != want {
			t.Errorf("%s = %g, want %g", metric, got, want)
		}
	}
	if records[1].Name != "BenchmarkDESEvents" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", records[1].Name)
	}
}

// tracked builds a tracked-metric list at one shared tolerance.
func tracked(tol float64, names ...string) []trackedMetric {
	out := make([]trackedMetric, len(names))
	for i, n := range names {
		out[i] = trackedMetric{Name: n, Tolerance: tol}
	}
	return out
}

func rec(name string, ns, allocs float64) Record {
	return Record{Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "allocs/op": allocs,
	}}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := []Record{rec("BenchmarkA", 1000, 100)}
	cur := []Record{rec("BenchmarkA", 1100, 105)} // +10%, +5%
	table, regressions := compareRecords(old, cur, tracked(0.15, "ns/op", "allocs/op"))
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", regressions, table)
	}
	if !strings.Contains(table, "| ok |") {
		t.Errorf("table lacks ok status:\n%s", table)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Record{rec("BenchmarkA", 1000, 100), rec("BenchmarkB", 500, 10)}
	cur := []Record{rec("BenchmarkA", 1200, 100), rec("BenchmarkB", 500, 25)}
	table, regressions := compareRecords(old, cur, tracked(0.15, "ns/op", "allocs/op"))
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (ns/op of A, allocs/op of B)\n%s", regressions, table)
	}
	if strings.Count(table, "REGRESSION") != 2 {
		t.Errorf("table does not flag both regressions:\n%s", table)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old := []Record{rec("BenchmarkA", 1000, 100)}
	cur := []Record{rec("BenchmarkA", 400, 30)}
	table, regressions := compareRecords(old, cur, tracked(0.15, "ns/op", "allocs/op"))
	if regressions != 0 {
		t.Fatalf("improvement counted as regression:\n%s", table)
	}
	if !strings.Contains(table, "improved") {
		t.Errorf("large improvement not marked:\n%s", table)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := []Record{rec("BenchmarkGone", 1000, 100)}
	table, regressions := compareRecords(old, nil, tracked(0.15, "ns/op", "allocs/op"))
	if regressions == 0 {
		t.Fatalf("missing benchmark passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "missing") {
		t.Errorf("missing benchmark not reported:\n%s", table)
	}
}

func TestCompareNewBenchmarkIgnored(t *testing.T) {
	cur := []Record{rec("BenchmarkFresh", 1000, 100)}
	_, regressions := compareRecords(nil, cur, tracked(0.15, "ns/op"))
	if regressions != 0 {
		t.Fatal("benchmark without a baseline failed the gate")
	}
}

func TestCompareZeroBaselineGoingNonzeroFails(t *testing.T) {
	old := []Record{rec("BenchmarkA", 100, 0)}
	cur := []Record{rec("BenchmarkA", 100, 1)}
	table, regressions := compareRecords(old, cur, tracked(0.15, "allocs/op"))
	if regressions != 1 {
		t.Fatalf("0 -> 1 allocs/op passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "+inf") {
		t.Errorf("unbounded delta not rendered:\n%s", table)
	}
}

func TestParseTracked(t *testing.T) {
	got, err := parseTracked("ns/op, allocs/op=0.05,B/op=0.1", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	want := []trackedMetric{
		{Name: "ns/op", Tolerance: 0.15},
		{Name: "allocs/op", Tolerance: 0.05},
		{Name: "B/op", Tolerance: 0.1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("metric %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "ns/op=", "ns/op=-1", "=0.1", "ns/op=abc"} {
		if _, err := parseTracked(bad, 0.15); err == nil {
			t.Errorf("parseTracked(%q) accepted", bad)
		}
	}
}

// Per-metric tolerances gate independently: the same +12% delta passes a
// 15% ns/op tolerance and fails a 10% B/op tolerance in one comparison.
func TestComparePerMetricTolerance(t *testing.T) {
	old := []Record{{Name: "BenchmarkA", Iterations: 1,
		Metrics: map[string]float64{"ns/op": 1000, "B/op": 1000}}}
	cur := []Record{{Name: "BenchmarkA", Iterations: 1,
		Metrics: map[string]float64{"ns/op": 1120, "B/op": 1120}}}
	table, regressions := compareRecords(old, cur, []trackedMetric{
		{Name: "ns/op", Tolerance: 0.15},
		{Name: "B/op", Tolerance: 0.10},
	})
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (B/op only)\n%s", regressions, table)
	}
	if strings.Count(table, "REGRESSION") != 1 || !strings.Contains(table, "| ok |") {
		t.Errorf("table should pass ns/op and fail B/op:\n%s", table)
	}
}

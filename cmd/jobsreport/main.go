// Command jobsreport analyses a sacct-style per-job energy CSV exported by
// `archer2sim -jobs-csv`, producing the per-research-area energy-intensity
// breakdown in the style of the HPC-JEEP report the paper builds on.
//
// Usage:
//
//	archer2sim -summary -quiet -jobs-csv jobs.csv
//	jobsreport -in jobs.csv [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/telemetry"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jobsreport: ")
	in := flag.String("in", "", "input job CSV (required)")
	top := flag.Int("top", 10, "number of top energy consumers to list")
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required (export one with: archer2sim -jobs-csv jobs.csv)")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := telemetry.ReadJobRecords(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no records")
	}

	// Per-class aggregation.
	type agg struct {
		jobs      int
		nodeHours float64
		energy    units.Energy
		failed    int
	}
	byClass := map[string]*agg{}
	var total agg
	for _, r := range records {
		a := byClass[r.Class]
		if a == nil {
			a = &agg{}
			byClass[r.Class] = a
		}
		a.jobs++
		a.nodeHours += r.NodeHours()
		a.energy += r.Energy
		total.jobs++
		total.nodeHours += r.NodeHours()
		total.energy += r.Energy
		if r.State.String() == "failed" {
			a.failed++
			total.failed++
		}
	}
	names := make([]string, 0, len(byClass))
	for n := range byClass {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return byClass[names[i]].energy > byClass[names[j]].energy
	})

	t := report.NewTable(
		fmt.Sprintf("Energy use by research area (%d jobs)", total.jobs),
		"class", "jobs", "failed", "node-hours", "energy", "kWh/nodeh", "share of energy")
	for _, n := range names {
		a := byClass[n]
		intensity := 0.0
		if a.nodeHours > 0 {
			intensity = a.energy.KilowattHours() / a.nodeHours
		}
		t.AddRow(n, fmt.Sprint(a.jobs), fmt.Sprint(a.failed),
			fmt.Sprintf("%.3g", a.nodeHours),
			a.energy.String(),
			fmt.Sprintf("%.3f", intensity),
			fmt.Sprintf("%.1f%%", a.energy.Joules()/total.energy.Joules()*100))
	}
	t.AddRow("TOTAL", fmt.Sprint(total.jobs), fmt.Sprint(total.failed),
		fmt.Sprintf("%.3g", total.nodeHours), total.energy.String(),
		fmt.Sprintf("%.3f", total.energy.KilowattHours()/total.nodeHours), "100%")
	fmt.Println(t.String())

	if *top > 0 {
		// Top consumers by energy.
		sorted := append([]telemetry.JobRecord(nil), records...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy > sorted[j].Energy })
		if len(sorted) > *top {
			sorted = sorted[:*top]
		}
		tt := report.NewTable(fmt.Sprintf("Top %d energy consumers", len(sorted)),
			"jobid", "class", "nodes", "runtime", "setting", "energy")
		for _, r := range sorted {
			tt.AddRow(fmt.Sprint(r.ID), r.Class, fmt.Sprint(r.Nodes),
				r.End.Sub(r.Start).Round(1e9).String(), r.Setting, r.Energy.String())
		}
		fmt.Println(tt.String())
	}
}

// Command gridcitizen studies the two grid-citizenship behaviours the
// paper motivates:
//
// Reactive (default): during winter evening grid-stress events, the
// operator reclocks the whole running fleet to 2.0 GHz and/or caps
// admission, restoring normal service afterwards. The tool reports the
// power freed during events and the throughput cost.
//
// Anticipatory (-carbon-policy): the scheduler runs carbon-aware the
// whole time, shifting flexible jobs into forecast low-carbon windows
// (delay-flexible) or throttling admission to a rolling carbon budget
// (carbon-budget). The tool runs the chosen policy against an identical
// fcfs baseline and reports the carbon avoided and the scheduling cost.
//
// Usage:
//
//	gridcitizen [-nodes 500] [-days 60] [-stress-prob 0.4] [-seed 42]
//	gridcitizen -carbon-policy delay-flexible [-grid-mean 200]
//	            [-forecast-sigma 0] [-forecast-growth 0] [-load 0.7]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridcitizen: ")
	nodes := flag.Int("nodes", 500, "facility size in compute nodes")
	days := flag.Int("days", 60, "simulated winter days")
	stressProb := flag.Float64("stress-prob", 0.4, "probability of a stress event per winter weekday")
	mode := flag.String("mode", "reclock",
		"demand-response mechanism: reclock (slow running jobs), cap (admission control), both")
	capFrac := flag.Float64("cap-frac", 0.75, "admission power cap during events, as a fraction of pre-event busy power")
	seed := flag.Uint64("seed", 42, "simulation seed")
	carbonPolicy := flag.String("carbon-policy", "",
		"run the anticipatory carbon study instead: delay-flexible or carbon-budget")
	gridMean := flag.Float64("grid-mean", 200, "annual-mean grid carbon intensity (gCO2/kWh) for -carbon-policy")
	forecastSigma := flag.Float64("forecast-sigma", 0, "forecast error sigma at zero horizon (gCO2/kWh) for -carbon-policy")
	forecastGrowth := flag.Float64("forecast-growth", 0, "forecast error growth per sqrt-hour of horizon (gCO2/kWh) for -carbon-policy")
	load := flag.Float64("load", 0.7, "offered load relative to capacity for -carbon-policy (shifting needs slack)")
	flag.Parse()

	if *carbonPolicy != "" {
		carbonStudy(*carbonPolicy, *nodes, *days, *gridMean, *forecastSigma, *forecastGrowth, *load, *seed)
		return
	}

	useReclock := *mode == "reclock" || *mode == "both"
	useCap := *mode == "cap" || *mode == "both"
	if !useReclock && !useCap {
		log.Fatalf("unknown -mode %q (use reclock, cap or both)", *mode)
	}

	start := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	cfg := core.ScaledConfig(*nodes, start, *days)
	cfg.Seed = *seed
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	events := grid.StressEvents(start, cfg.End, *stressProb, rng.New(*seed).Split("stress"))
	spec := cfg.Facility.CPU
	capped, stock := spec.CappedSetting(), spec.DefaultSetting()

	// Measure cabinet power just before each transition.
	type eventRecord struct {
		event     grid.StressEvent
		beforeKW  float64
		duringKW  float64
		reclocked int
	}
	records := make([]*eventRecord, len(events))
	for i, ev := range events {
		i, ev := i, ev
		records[i] = &eventRecord{event: ev}
		sim.Engine().At(ev.Start, func(time.Time) {
			records[i].beforeKW = sim.Facility().CabinetPower().Kilowatts()
			if useCap {
				busy := sim.Scheduler().EstimatedBusyPower()
				sim.Scheduler().SetPowerCap(busy.Scale(*capFrac))
			}
			if useReclock {
				n, err := sim.Scheduler().ReclockRunning(capped)
				if err != nil {
					log.Fatal(err)
				}
				records[i].reclocked = n
			}
		})
		// Sample mid-event, then restore.
		sim.Engine().At(ev.Start.Add(ev.Duration()/2), func(time.Time) {
			records[i].duringKW = sim.Facility().CabinetPower().Kilowatts()
		})
		sim.Engine().At(ev.End, func(time.Time) {
			if useCap {
				sim.Scheduler().SetPowerCap(0)
			}
			if useReclock {
				if _, err := sim.Scheduler().ReclockRunning(stock); err != nil {
					log.Fatal(err)
				}
			}
		})
	}

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Demand response on %d nodes over %d days (%d stress events)",
			*nodes, *days, len(events)),
		"event start", "jobs reclocked", "before", "during", "freed")
	var totalFreed, totalBefore float64
	for _, r := range records {
		if r.duringKW == 0 {
			continue
		}
		freed := r.beforeKW - r.duringKW
		totalFreed += freed
		totalBefore += r.beforeKW
		t.AddRow(r.event.Start.Format("2006-01-02 15:04"),
			fmt.Sprint(r.reclocked),
			report.KW(r.beforeKW), report.KW(r.duringKW), report.KW(freed))
	}
	fmt.Println(t.String())

	if n := t.RowCount(); n > 0 {
		meanFreed := totalFreed / float64(n)
		meanBefore := totalBefore / float64(n)
		fmt.Printf("mean power freed per event: %s (%s of pre-event draw)\n",
			report.KW(meanFreed), report.Pct(meanFreed/meanBefore))
		full := units.Kilowatts(meanFreed).Scale(5860 / float64(*nodes))
		fmt.Printf("scaled to the full 5860-node system: ~%s per event\n", full)

		// Cost: stress-event electricity trades at the scarcity multiplier
		// (grid.GB2022Prices), so each kWh avoided in-event is worth
		// multiplier x base price.
		pm := grid.GB2022Prices()
		perEvent := units.Kilowatts(meanFreed).EnergyOver(3 * time.Hour)
		saved := units.CostPerKWh(pm.Base * pm.ScarcityMultiplier).Over(perEvent)
		fmt.Printf("avoided scarcity-priced energy: %.0f kWh/event, ~%.0f GBP/event at %gx scarcity pricing\n",
			perEvent.KilowattHours(), float64(saved), pm.ScarcityMultiplier)
	}
	fmt.Printf("jobs completed: %d, mean wait %v\n",
		res.Sched.Completed, res.Sched.MeanWait().Round(time.Second))
}

// carbonStudy runs the anticipatory half of grid citizenship: one
// carbon-aware run against an identical fcfs baseline, differing only in
// the temporal policy, and reports the avoided carbon and its cost. The
// pair runs as a two-scenario sweep through the scenario Runner, so this
// tool and a sweep's carbon_policy axis mean exactly the same thing —
// same seeds, same accounting, same memoization (the fcfs baseline is
// simulated once and reused, and the cache stats in the summary show it).
func carbonStudy(policy string, nodes, days int, gridMean, forecastSigma, forecastGrowth, load float64, seed uint64) {
	if policy != scenario.CarbonDelayFlexible && policy != scenario.CarbonBudget {
		log.Fatalf("unknown -carbon-policy %q (use %s or %s)",
			policy, scenario.CarbonDelayFlexible, scenario.CarbonBudget)
	}
	spec := scenario.Spec{
		Name:             "grid citizenship: anticipatory",
		Nodes:            nodes,
		Days:             days,
		WarmupDays:       2,
		Seed:             seed,
		OverSubscription: load,
		Carbon:           scenario.CarbonSpec{ForecastSigma: forecastSigma, ForecastGrowth: forecastGrowth},
		Axes: scenario.Axes{
			GridMean:     []float64{gridMean},
			CarbonPolicy: []string{scenario.CarbonFCFS, policy},
		},
	}
	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Carbon-aware scheduling on %d nodes over %d days (grid mean %.0f g/kWh, load %.0f%%)",
			nodes, days, gridMean, load*100),
		"run", "experienced CI", "scope 2", "total CO2e", "holds", "completed", "mean wait")
	for _, r := range res.Results {
		t.AddRow(r.Scenario.CarbonPolicy,
			fmt.Sprintf("%.1f g/kWh", r.Emissions.CI.GramsPerKWh()),
			fmt.Sprintf("%.2f t", r.Emissions.Scope2.Tonnes()),
			fmt.Sprintf("%.2f t", r.Emissions.Total.Tonnes()),
			fmt.Sprint(r.Holds),
			fmt.Sprint(r.Completed),
			r.MeanWait.Round(time.Minute).String())
	}
	fmt.Println(t.String())

	fcfsAcct, polAcct := res.Results[0].Emissions, res.Results[1].Emissions
	avoided := fcfsAcct.Total.Grams() - polAcct.Total.Grams()
	frac := 0.0
	if fcfsAcct.Total.Grams() > 0 {
		frac = avoided / fcfsAcct.Total.Grams()
	}
	fmt.Printf("avoided carbon vs fcfs: %s (%s)\n",
		units.Mass(avoided), report.Pct(frac))
	full := units.Mass(avoided).Scale(5860 / float64(nodes))
	fmt.Printf("scaled to the full 5860-node system: ~%s over %d days\n", full, days)
	cs := runner.CacheStats()
	fmt.Printf("%d scenarios, %d simulations (memo cache: %d hits, %d misses, %.1f MiB of %s)\n",
		len(res.Results), res.Simulations, cs.Hits, cs.Misses,
		float64(cs.Bytes)/(1<<20), budgetLabel(cs.BudgetBytes))
}

// budgetLabel renders a memo byte budget, where 0 means unbounded
// (scenario.CacheStats.BudgetBytes semantics).
func budgetLabel(budget int64) string {
	if budget <= 0 {
		return "unbounded budget"
	}
	return fmt.Sprintf("%.0f MiB budget", float64(budget)/(1<<20))
}

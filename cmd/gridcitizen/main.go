// Command gridcitizen studies the demand-response behaviour the paper's
// grid-citizenship discussion motivates: during winter evening grid-stress
// events, the operator reclocks the whole running fleet to 2.0 GHz and
// restores the stock frequency afterwards. The tool reports the power
// freed during events and the throughput cost.
//
// Usage:
//
//	gridcitizen [-nodes 500] [-days 60] [-stress-prob 0.4] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridcitizen: ")
	nodes := flag.Int("nodes", 500, "facility size in compute nodes")
	days := flag.Int("days", 60, "simulated winter days")
	stressProb := flag.Float64("stress-prob", 0.4, "probability of a stress event per winter weekday")
	mode := flag.String("mode", "reclock",
		"demand-response mechanism: reclock (slow running jobs), cap (admission control), both")
	capFrac := flag.Float64("cap-frac", 0.75, "admission power cap during events, as a fraction of pre-event busy power")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()
	useReclock := *mode == "reclock" || *mode == "both"
	useCap := *mode == "cap" || *mode == "both"
	if !useReclock && !useCap {
		log.Fatalf("unknown -mode %q (use reclock, cap or both)", *mode)
	}

	start := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	cfg := core.ScaledConfig(*nodes, start, *days)
	cfg.Seed = *seed
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	events := grid.StressEvents(start, cfg.End, *stressProb, rng.New(*seed).Split("stress"))
	spec := cfg.Facility.CPU
	capped, stock := spec.CappedSetting(), spec.DefaultSetting()

	// Measure cabinet power just before each transition.
	type eventRecord struct {
		event     grid.StressEvent
		beforeKW  float64
		duringKW  float64
		reclocked int
	}
	records := make([]*eventRecord, len(events))
	for i, ev := range events {
		i, ev := i, ev
		records[i] = &eventRecord{event: ev}
		sim.Engine().At(ev.Start, func(time.Time) {
			records[i].beforeKW = sim.Facility().CabinetPower().Kilowatts()
			if useCap {
				busy := sim.Scheduler().EstimatedBusyPower()
				sim.Scheduler().SetPowerCap(busy.Scale(*capFrac))
			}
			if useReclock {
				n, err := sim.Scheduler().ReclockRunning(capped)
				if err != nil {
					log.Fatal(err)
				}
				records[i].reclocked = n
			}
		})
		// Sample mid-event, then restore.
		sim.Engine().At(ev.Start.Add(ev.Duration()/2), func(time.Time) {
			records[i].duringKW = sim.Facility().CabinetPower().Kilowatts()
		})
		sim.Engine().At(ev.End, func(time.Time) {
			if useCap {
				sim.Scheduler().SetPowerCap(0)
			}
			if useReclock {
				if _, err := sim.Scheduler().ReclockRunning(stock); err != nil {
					log.Fatal(err)
				}
			}
		})
	}

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Demand response on %d nodes over %d days (%d stress events)",
			*nodes, *days, len(events)),
		"event start", "jobs reclocked", "before", "during", "freed")
	var totalFreed, totalBefore float64
	for _, r := range records {
		if r.duringKW == 0 {
			continue
		}
		freed := r.beforeKW - r.duringKW
		totalFreed += freed
		totalBefore += r.beforeKW
		t.AddRow(r.event.Start.Format("2006-01-02 15:04"),
			fmt.Sprint(r.reclocked),
			report.KW(r.beforeKW), report.KW(r.duringKW), report.KW(freed))
	}
	fmt.Println(t.String())

	if n := t.RowCount(); n > 0 {
		meanFreed := totalFreed / float64(n)
		meanBefore := totalBefore / float64(n)
		fmt.Printf("mean power freed per event: %s (%s of pre-event draw)\n",
			report.KW(meanFreed), report.Pct(meanFreed/meanBefore))
		full := units.Kilowatts(meanFreed).Scale(5860 / float64(*nodes))
		fmt.Printf("scaled to the full 5860-node system: ~%s per event\n", full)

		// Cost: stress-event electricity trades at the scarcity multiplier
		// (grid.GB2022Prices), so each kWh avoided in-event is worth
		// multiplier x base price.
		pm := grid.GB2022Prices()
		perEvent := units.Kilowatts(meanFreed).EnergyOver(3 * time.Hour)
		saved := units.CostPerKWh(pm.Base * pm.ScarcityMultiplier).Over(perEvent)
		fmt.Printf("avoided scarcity-priced energy: %.0f kWh/event, ~%.0f GBP/event at %gx scarcity pricing\n",
			perEvent.KilowattHours(), float64(saved), pm.ScarcityMultiplier)
	}
	fmt.Printf("jobs completed: %d, mean wait %v\n",
		res.Sched.Completed, res.Sched.MeanWait().Round(time.Second))
}

// Command sweep runs a declarative scenario sweep on the digital twin:
// it expands a sweep spec (CPU frequency caps x grid carbon-intensity
// mixes x scheduler policies x workload build variants x facility sizes)
// into concrete simulations, executes them in parallel across a worker
// pool, and prints baseline-relative comparison tables of mean power,
// energy, emissions and delivered node-hours.
//
// Usage:
//
//	sweep [-spec spec.json] [-workers N] [-seed N] [-list] [-quiet]
//
// Without -spec it runs the flagship 8-scenario frequency x grid-mix
// sweep. Results are byte-identical for every -workers value; the worker
// count only changes wall-clock time.
//
// An example spec (all fields optional; unknown fields are rejected):
//
//	{
//	  "name": "cap vs scheduler",
//	  "nodes": 200, "days": 28, "seed": 42, "mode": "grid",
//	  "axes": {
//	    "frequency": ["stock", "capped"],
//	    "grid_mean": [200, 65],
//	    "scheduler": ["backfill", "fcfs"]
//	  }
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	specPath := flag.String("spec", "", "JSON sweep spec (default: built-in frequency x grid-mix sweep)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the spec's base seed")
	list := flag.Bool("list", false, "print the expanded scenario list and exit without running")
	quiet := flag.Bool("quiet", false, "suppress the regime table and timing note")
	flag.Parse()

	spec := scenario.DefaultSpec()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = scenario.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	if *list {
		scenarios, err := spec.Expand()
		if err != nil {
			log.Fatal(err)
		}
		for _, sc := range scenarios {
			fmt.Printf("%3d  %s\n", sc.Index, sc.Name)
		}
		return
	}

	start := time.Now()
	res, err := scenario.Runner{Workers: *workers}.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table().String())
	if !*quiet {
		fmt.Println(res.RegimeTable().String())
		fmt.Printf("%d scenarios (%d simulations) in %.1fs (workers=%d)\n",
			len(res.Results), res.Simulations, time.Since(start).Seconds(), res.Workers)
	}
}

// Command sweep runs a declarative scenario sweep on the digital twin:
// it expands a sweep spec (CPU frequency caps x grid carbon-intensity
// mixes x scheduler policies x workload build variants x facility sizes
// x carbon temporal policies) into concrete simulations, executes them in
// parallel across a worker pool, and prints baseline-relative comparison
// tables of mean power, energy, emissions and delivered node-hours.
//
// Usage:
//
//	sweep [-spec spec.json] [-workers N] [-seed N] [-carbon policies]
//	      [-priority mixes] [-backfill policies] [-preempt modes]
//	      [-perf-model models] [-fleet fleets] [-surrogate presets]
//	      [-list] [-quiet] [-server URL]
//
// Without -spec it runs the flagship 8-scenario frequency x grid-mix
// sweep. Results are byte-identical for every -workers value; the worker
// count only changes wall-clock time.
//
// With -server the sweep executes on a running twinserver (or fabric
// coordinator) through the v1 API (see docs/api.md) instead of in
// process: the spec is submitted with ?wait=1 and the returned results
// render through the same local table code, so output is identical to an
// in-process run of the same spec.
//
// -carbon adds (or replaces) a carbon_policy axis as a comma-separated
// list, e.g. -carbon fcfs,delay-flexible,carbon-budget; when the axis is
// swept, a carbon-policy table reports the intensity the load actually
// experienced and the carbon avoided against the baseline policy. See
// docs/sweeps.md for the full spec schema and the carbon tunables.
//
// An example spec (all fields optional; unknown fields are rejected):
//
//	{
//	  "name": "cap vs scheduler",
//	  "nodes": 200, "days": 28, "seed": 42, "mode": "grid",
//	  "axes": {
//	    "frequency": ["stock", "capped"],
//	    "grid_mean": [200, 65],
//	    "scheduler": ["backfill", "fcfs"]
//	  }
//	}
//
// When any scenario fails, every failing scenario's error is printed (one
// line each) and the command exits non-zero; scenarios are never silently
// dropped from the table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	specPath := flag.String("spec", "", "JSON sweep spec (default: built-in frequency x grid-mix sweep)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "override the spec's base seed")
	carbon := flag.String("carbon", "", "comma-separated carbon_policy axis values (e.g. fcfs,delay-flexible,carbon-budget); overrides the spec's axis")
	priority := flag.String("priority", "", "comma-separated priority_mix axis values (e.g. none,dual,tiered); overrides the spec's axis")
	backfill := flag.String("backfill", "", "comma-separated backfill_policy axis values (e.g. easy,conservative); overrides the spec's axis")
	preempt := flag.String("preempt", "", "comma-separated preemption axis values (e.g. off,requeue,cancel); overrides the spec's axis")
	perfModel := flag.String("perf-model", "", "comma-separated perf_model axis values (e.g. kernel,table); overrides the spec's axis")
	fleet := flag.String("fleet", "", "comma-separated fleet axis values (e.g. cpu,hybrid); overrides the spec's axis")
	surrogate := flag.String("surrogate", "", "comma-separated surrogate axis values (e.g. none,10x,50x); overrides the spec's axis")
	list := flag.Bool("list", false, "print the expanded scenario list and exit without running")
	quiet := flag.Bool("quiet", false, "suppress the regime/carbon tables and timing note")
	noFork := flag.Bool("no-fork", false, "run mid-sweep divergence branches cold instead of forking them from the shared prefix checkpoint")
	server := flag.String("server", "", "run the sweep on this twinserver base URL (e.g. http://127.0.0.1:8990) instead of in process")
	flag.Parse()

	spec := scenario.DefaultSpec()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = scenario.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *carbon != "" {
		spec.Axes.CarbonPolicy = strings.Split(*carbon, ",")
	}
	if *priority != "" {
		spec.Axes.PriorityMix = strings.Split(*priority, ",")
	}
	if *backfill != "" {
		spec.Axes.BackfillPolicy = strings.Split(*backfill, ",")
	}
	if *preempt != "" {
		spec.Axes.Preemption = strings.Split(*preempt, ",")
	}
	if *perfModel != "" {
		spec.Axes.PerfModel = strings.Split(*perfModel, ",")
	}
	if *fleet != "" {
		spec.Axes.Fleet = strings.Split(*fleet, ",")
	}
	if *surrogate != "" {
		spec.Axes.Surrogate = strings.Split(*surrogate, ",")
	}

	if *list {
		scenarios, err := spec.Expand()
		if err != nil {
			log.Fatal(err)
		}
		for _, sc := range scenarios {
			fmt.Printf("%3d  %s\n", sc.Index, sc.Name)
		}
		return
	}

	// Interrupt (Ctrl-C) cancels the sweep cleanly mid-simulation instead
	// of abandoning worker goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var (
		res *scenario.SweepResults
		cs  scenario.CacheStats
	)
	if *server != "" {
		var err error
		res, cs, err = runRemote(ctx, *server, spec)
		if err != nil {
			fail(err)
		}
	} else {
		runner := &scenario.Runner{Workers: *workers, NoFork: *noFork}
		var err error
		res, err = runner.Run(ctx, spec)
		if err != nil {
			fail(err)
		}
		cs = runner.CacheStats()
	}
	fmt.Println(res.Table().String())
	if !*quiet {
		fmt.Println(res.RegimeTable().String())
		if res.CarbonSwept() {
			fmt.Println(res.CarbonTable().String())
		}
		fmt.Printf("%d scenarios (%d simulations) in %.1fs (workers=%d, memo cache: %d hits, %d misses, %.1f MiB of %s)\n",
			len(res.Results), res.Simulations, time.Since(start).Seconds(), res.Workers,
			cs.Hits, cs.Misses, float64(cs.Bytes)/(1<<20), budgetLabel(cs.BudgetBytes))
	}
}

// runRemote executes the sweep on a twinserver through the v1 API and
// rebuilds a SweepResults from the returned payload — tables then render
// locally through the exact code an in-process run uses. The second
// return is the server's memo-cache snapshot, standing in for the local
// runner's in the timing note.
func runRemote(ctx context.Context, server string, spec scenario.Spec) (*scenario.SweepResults, scenario.CacheStats, error) {
	client := api.NewClient(server)
	p, err := client.SubmitSweepWait(ctx, spec)
	if err != nil {
		return nil, scenario.CacheStats{}, err
	}
	res := &scenario.SweepResults{
		Spec:        p.Spec,
		Results:     p.Results,
		Simulations: p.Simulations,
		Workers:     p.Workers,
	}
	st, err := client.Stats(ctx)
	if err != nil {
		// The sweep itself succeeded; a stats hiccup only costs the
		// footer detail.
		return res, scenario.CacheStats{}, nil
	}
	return res, st.Cache, nil
}

// fail prints every per-scenario error on its own line and exits
// non-zero. The runner joins one *scenario.ScenarioError per failing
// scenario in index order.
func fail(err error) {
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) {
		for _, e := range joined.Unwrap() {
			log.Print(e)
		}
		log.Fatalf("%d scenarios failed", len(joined.Unwrap()))
	}
	log.Fatal(err)
}

// budgetLabel renders a memo byte budget, where 0 means unbounded
// (scenario.CacheStats.BudgetBytes semantics).
func budgetLabel(budget int64) string {
	if budget <= 0 {
		return "unbounded budget"
	}
	return fmt.Sprintf("%.0f MiB budget", float64(budget)/(1<<20))
}

// Command benchtab reproduces the paper's tables from the calibrated
// model, side by side with the published values:
//
//	-table 1   hardware summary (Table 1)
//	-table 2   per-component power breakdown (Table 2)
//	-table 3   Power vs Performance Determinism benchmark ratios (Table 3)
//	-table 4   2.0 GHz vs 2.25 GHz+turbo benchmark ratios (Table 4)
//
// With no flags it prints all four.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	table := flag.Int("table", 0, "print only table 1, 2, 3 or 4 (0 = all)")
	predict := flag.Bool("predict", false, "also print model predictions at the unevaluated 1.5 GHz P-state")
	flag.Parse()

	tables := []func(){printTable1, printTable2, printTable3, printTable4}
	switch {
	case *table == 0:
		for _, fn := range tables {
			fn()
		}
	case *table >= 1 && *table <= len(tables):
		tables[*table-1]()
	default:
		log.Fatalf("no table %d (use 1-4)", *table)
	}
	if *predict {
		printPredictions()
	}
}

// printPredictions extrapolates the calibrated models to the 1.5 GHz
// P-state the paper lists as available but did not evaluate — a genuine
// model prediction with no published counterpart.
func printPredictions() {
	spec := cpu.EPYC7742()
	c := catalog()
	def := spec.DefaultSetting()
	low := cpu.FreqSetting{Base: units.Gigahertz(1.5)}
	m := cpu.PerformanceDeterminism
	t := report.NewTable("Prediction: 1.5 GHz vs 2.25 GHz+turbo (no paper data; model extrapolation)",
		"benchmark", "perf ratio", "energy ratio", "node power @1.5")
	for _, app := range c.Table4 {
		t.AddRow(app.Name,
			report.Ratio(app.PerfRatio(spec, def, m, low, m)),
			report.Ratio(app.EnergyRatio(spec, def, m, low, m)),
			app.NodePower(spec, low, m).String())
	}
	fmt.Println(t.String())
	fmt.Println("Reading: at 1.5 GHz compute-bound codes (LAMMPS, Nektar++) lose ~40%")
	fmt.Println("performance and most codes burn MORE energy per job than at 2.0 GHz -")
	fmt.Println("the idle+uncore power floor dominates once runs stretch. This is why")
	fmt.Println("the service chose 2.0 GHz, not the lowest available P-state.")
}

func newFacility() *facility.Facility {
	f, err := facility.New(facility.ARCHER2(), rng.New(1), time.Unix(0, 0).UTC())
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func catalog() *apps.Catalog {
	c, err := apps.NewCatalog(cpu.EPYC7742())
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func printTable1() {
	f := newFacility()
	t := report.NewTable("Table 1: ARCHER2 hardware summary (model)", "item", "value")
	t.AddRow("compute nodes", fmt.Sprint(f.NodeCount()))
	t.AddRow("compute cores", fmt.Sprint(f.CoreCount()))
	t.AddRow("processors per node",
		fmt.Sprintf("2x %s (%d cores)", f.Config().CPU.Name, f.Config().CPU.Cores))
	t.AddRow("interconnect switches", fmt.Sprint(f.Fabric().SwitchCount()))
	t.AddRow("cabinets", fmt.Sprint(f.Config().Cabinets))
	t.AddRow("file systems", fmt.Sprintf("%d (%.1f PB total)",
		f.Storage().Count(), f.Storage().TotalCapacityPB()))
	fmt.Println(t.String())
}

func printTable2() {
	f := newFacility()
	rows := f.Breakdown()
	t := report.NewTable("Table 2: per-component power draw (model vs paper)",
		"component", "count", "idle kW", "loaded kW", "% of loaded", "paper loaded kW")
	paperLoaded := map[string]string{
		"Compute nodes":              "3000 (86%)",
		"Slingshot interconnect":     "200 (6%)",
		"Other cabinet overheads":    "200 (6%)",
		"Coolant distribution units": "96 (3%)",
		"File systems":               "40 (1%)",
	}
	for _, r := range rows {
		t.AddRow(r.Component, fmt.Sprint(r.Count),
			fmt.Sprintf("%.0f", r.Idle.Kilowatts()),
			fmt.Sprintf("%.0f", r.Loaded.Kilowatts()),
			fmt.Sprintf("%.0f%%", r.PercentLoaded),
			paperLoaded[r.Component])
	}
	idle, loaded := facility.BreakdownTotals(rows)
	t.AddRow("TOTAL", "",
		fmt.Sprintf("%.0f", idle.Kilowatts()),
		fmt.Sprintf("%.0f", loaded.Kilowatts()), "100%", "3500 (paper)")
	fmt.Println(t.String())
}

func printTable3() {
	spec := cpu.EPYC7742()
	c := catalog()
	def := spec.DefaultSetting()
	t := report.NewTable("Table 3: Performance vs Power Determinism (simulated | paper)",
		"benchmark", "nodes", "perf ratio", "energy ratio", "paper perf", "paper energy")
	for i, row := range apps.Table3Paper() {
		app := c.Table3[i]
		perf := app.PerfRatio(spec, def, cpu.PowerDeterminism, def, cpu.PerformanceDeterminism)
		energy := app.EnergyRatio(spec, def, cpu.PowerDeterminism, def, cpu.PerformanceDeterminism)
		t.AddRow(row.Name, fmt.Sprint(row.Nodes),
			report.Ratio(perf), report.Ratio(energy),
			report.Ratio(row.Perf), report.Ratio(row.Energy))
	}
	fmt.Println(t.String())
}

func printTable4() {
	spec := cpu.EPYC7742()
	c := catalog()
	def, capped := spec.DefaultSetting(), spec.CappedSetting()
	m := cpu.PerformanceDeterminism
	t := report.NewTable("Table 4: 2.0 GHz vs 2.25 GHz+turbo (simulated | paper)",
		"benchmark", "nodes", "perf ratio", "energy ratio", "paper perf", "paper energy")
	for i, row := range apps.Table4Paper() {
		app := c.Table4[i]
		perf := app.PerfRatio(spec, def, m, capped, m)
		energy := app.EnergyRatio(spec, def, m, capped, m)
		t.AddRow(row.Name, fmt.Sprint(row.Nodes),
			report.Ratio(perf), report.Ratio(energy),
			report.Ratio(row.Perf), report.Ratio(row.Energy))
	}
	fmt.Println(t.String())
}

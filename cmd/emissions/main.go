// Command emissions explores the paper's SS2 emissions analysis for an
// ARCHER2-class facility: scope 2 vs scope 3 balance across grid
// carbon-intensity scenarios, the regime classification that determines
// operating strategy, and the crossover intensity.
//
// Usage:
//
//	emissions [-power-mw 3.5] [-embodied-kt 12] [-lifetime-years 6]
//	          [-sweep "5,20,40,65,100,150,200,250"] [-trace]
//
// -trace additionally runs a synthetic GB-grid year and accounts emissions
// against the generated hourly intensity rather than a constant.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/emissions"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emissions: ")
	powerMW := flag.Float64("power-mw", 3.5, "facility mean power draw in MW")
	embodiedKt := flag.Float64("embodied-kt", 12, "embodied (scope 3) emissions in ktCO2e")
	lifetimeYears := flag.Float64("lifetime-years", 6, "service life in years")
	sweep := flag.String("sweep", "5,20,40,65,100,150,200,250",
		"comma-separated carbon intensities (gCO2/kWh) to evaluate")
	trace := flag.Bool("trace", false, "also account a synthetic GB-grid year")
	lifetime := flag.Bool("lifetime", false, "also print the multi-year decarbonising-grid account")
	replace := flag.Bool("replace", false, "also print the early-replacement analysis")
	seed := flag.Uint64("seed", 1, "seed for the synthetic grid trace")
	flag.Parse()

	params := emissions.Params{
		Embodied: units.Kilotonnes(*embodiedKt),
		Lifetime: time.Duration(*lifetimeYears * 365 * 24 * float64(time.Hour)),
	}
	if err := params.Validate(); err != nil {
		log.Fatal(err)
	}
	power := units.Megawatts(*powerMW)

	intensities, err := parseSweep(*sweep)
	if err != nil {
		log.Fatal(err)
	}

	x := params.CrossoverIntensity(power)
	fmt.Printf("Facility: %v mean draw, %v embodied over %.1f years\n",
		power, params.Embodied, *lifetimeYears)
	fmt.Printf("Scope2 = Scope3 crossover: %v (paper SS2 places this in the 30-100 g/kWh band)\n\n", x)

	t := report.NewTable("Annual emissions by grid carbon intensity (paper SS2 scenarios)",
		"gCO2/kWh", "band", "scope 2", "scope 3", "total", "scope-2 share", "regime", "strategy")
	for _, pt := range params.Sweep(power, intensities) {
		w := pt.Window
		t.AddRow(
			fmt.Sprintf("%.0f", pt.CI.GramsPerKWh()),
			grid.BandOf(pt.CI).String(),
			fmt.Sprintf("%.0f t", w.Scope2.Tonnes()),
			fmt.Sprintf("%.0f t", w.Scope3.Tonnes()),
			fmt.Sprintf("%.0f t", w.Total.Tonnes()),
			fmt.Sprintf("%.0f%%", w.Scope2Share()*100),
			pt.Regime.String(),
			pt.Regime.Strategy(),
		)
	}
	fmt.Println(t.String())

	if *trace {
		printTraceYear(params, power, *seed)
	}
	if *lifetime {
		printLifetime(params, power)
	}
	if *replace {
		printReplacement(params, power)
	}
}

func printLifetime(params emissions.Params, power units.Power) {
	tr := emissions.GBTrajectory()
	accounts, err := params.LifetimeAccount(power, 6, tr)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Six-year service life under the GB decarbonisation trajectory",
		"year", "grid gCO2/kWh", "scope 2", "scope 3", "total", "regime")
	for _, a := range accounts {
		t.AddRow(fmt.Sprint(a.Year),
			fmt.Sprintf("%.0f", a.CI.GramsPerKWh()),
			fmt.Sprintf("%.0f t", a.Scope2.Tonnes()),
			fmt.Sprintf("%.0f t", a.Scope3.Tonnes()),
			fmt.Sprintf("%.0f t", a.Total.Tonnes()),
			a.Regime.String())
	}
	t.AddRow("SUM", "", "", "", fmt.Sprintf("%.0f t", emissions.SumTotal(accounts).Tonnes()), "")
	fmt.Println(t.String())
}

func printReplacement(params emissions.Params, power units.Power) {
	opt := emissions.ReplacementOption{
		Name:       "30%-more-efficient successor",
		Embodied:   params.Embodied,
		Lifetime:   params.Lifetime,
		PowerRatio: 0.70,
	}
	t := report.NewTable("Replace now vs keep, 6-year horizon (incumbent embodied is sunk)",
		"grid trajectory", "keep (scope 2 only)", "replace (new scope 3 + scope 2)", "advantage of replacing")
	for _, sc := range []struct {
		name string
		tr   emissions.Trajectory
	}{
		{"dirty, slow decline (300 -2%/yr)", emissions.Trajectory{
			Start: units.GramsPerKWh(300), AnnualDecline: 0.02, Floor: units.GramsPerKWh(50)}},
		{"GB trend (200 -9%/yr)", emissions.GBTrajectory()},
		{"already clean (25 -5%/yr)", emissions.Trajectory{
			Start: units.GramsPerKWh(25), AnnualDecline: 0.05, Floor: units.GramsPerKWh(10)}},
	} {
		res, err := params.CompareReplacement(power, 6, sc.tr, opt)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(sc.name,
			fmt.Sprintf("%.1f kt", res.KeepTotal.Kilotonnes()),
			fmt.Sprintf("%.1f kt", res.ReplaceTotal.Kilotonnes()),
			fmt.Sprintf("%+.1f kt", res.Advantage.Kilotonnes()))
	}
	fmt.Println(t.String())
}

func parseSweep(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %v", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative intensity %v", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return out, nil
}

func printTraceYear(params emissions.Params, power units.Power, seed uint64) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	model := grid.GB2022()
	tr, err := model.Trace(start, start.AddDate(1, 0, 0), time.Hour, rng.New(seed).Split("grid"))
	if err != nil {
		log.Fatal(err)
	}
	// Hour-by-hour scope 2 against the trace.
	var scope2 units.Mass
	hour := time.Hour
	for i, n := 0, tr.Len(); i < n; i++ {
		scope2 += power.EnergyOver(hour).Emissions(units.GramsPerKWh(tr.At(i).V))
	}
	scope3 := params.AmortisedScope3(365 * 24 * time.Hour)
	mean := grid.MeanIntensity(tr)

	t := report.NewTable("Synthetic GB-grid year (hourly accounting)", "item", "value")
	t.AddRow("trace mean intensity", mean.String())
	t.AddRow("trace band", grid.BandOf(mean).String())
	t.AddRow("scope 2 (hourly)", fmt.Sprintf("%.0f t", scope2.Tonnes()))
	t.AddRow("scope 3 (amortised)", fmt.Sprintf("%.0f t", scope3.Tonnes()))
	w := emissions.Window{
		Duration: 365 * 24 * time.Hour,
		Scope2:   scope2, Scope3: scope3,
		Total: units.Mass(scope2.Grams() + scope3.Grams()),
	}
	t.AddRow("regime", emissions.RegimeOf(w).String())
	t.AddRow("strategy", emissions.RegimeOf(w).Strategy())
	fmt.Println(t.String())
}

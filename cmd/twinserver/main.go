// Command twinserver runs the ARCHER2 digital twin as a long-lived HTTP
// service: clients POST declarative sweep specs and poll (or wait) for
// baseline-relative results, while one shared scenario.Runner keeps an
// LRU memo of completed simulations warm across requests — the opposite
// economics of the one-shot cmd/sweep, which pays full simulation cost
// per invocation.
//
// Usage:
//
//	twinserver [-addr :8990] [-workers N] [-memo-cap N]
//	           [-memo-budget-bytes N] [-max-concurrent N] [-max-finished N]
//
// Endpoints (see docs/sweeps.md for a walkthrough):
//
//	POST   /v1/sweeps             submit a JSON scenario.Spec (the same
//	                              schema cmd/sweep -spec accepts); 202
//	                              with the sweep's status, or 200 when the
//	                              submission coalesced onto an existing
//	                              identical sweep. Add ?wait=1 to block
//	                              until completion and receive results.
//	GET    /v1/sweeps             list sweeps, newest first
//	GET    /v1/sweeps/{id}        status and progress
//	GET    /v1/sweeps/{id}/results  results payload (409 until done)
//	DELETE /v1/sweeps/{id}        cancel
//	GET    /healthz               liveness
//	GET    /statz                 memo-cache and registry statistics,
//	                              including the cache's live bytes and
//	                              byte budget (cache.bytes,
//	                              cache.budget_bytes)
//
// Concurrent identical submissions (same canonical spec) execute once;
// repeated distinct sweeps stay fast through the Runner's memo, bounded
// at -memo-cap simulations AND -memo-budget-bytes retained bytes (each
// entry priced at its compacted core.Results.MemoryFootprint), with
// least-recently-used eviction against both bounds — the byte budget is
// what keeps a warm process serving full-size sweeps from growing
// without limit. SIGINT or
// SIGTERM drains: in-flight sweeps are cancelled (cooperatively, down in
// each simulation's event loop) and the listener shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twinserver: ")
	addr := flag.String("addr", ":8990", "listen address")
	workers := flag.Int("workers", 0, "simulation worker-pool size per sweep (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 0, "max memoized simulations, LRU-evicted beyond (0 = default 256, negative disables)")
	memoBudget := flag.Int64("memo-budget-bytes", 0, "memo cache byte budget, coldest entries evicted beyond (0 = default 1 GiB, negative disables the byte bound)")
	noFork := flag.Bool("no-fork", false, "run mid-sweep divergence branches cold instead of forking them from the shared prefix checkpoint")
	maxConcurrent := flag.Int("max-concurrent", 2, "max concurrently executing sweeps")
	maxFinished := flag.Int("max-finished", 64, "finished sweeps retained for status/result queries")
	flag.Parse()

	svc, err := service.New(service.Config{
		Runner:        &scenario.Runner{Workers: *workers, MemoCap: *memoCap, MemoBudgetBytes: *memoBudget, NoFork: *noFork},
		MaxConcurrent: *maxConcurrent,
		MaxFinished:   *maxFinished,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: cancel in-flight sweeps, then give the listener a bounded
	// window to flush responses.
	log.Print("shutting down")
	svc.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}

// Command twinserver runs the ARCHER2 digital twin as a long-lived HTTP
// service: clients POST declarative sweep specs and poll (or wait) for
// baseline-relative results, while one shared scenario.Runner keeps an
// LRU memo of completed simulations warm across requests — the opposite
// economics of the one-shot cmd/sweep, which pays full simulation cost
// per invocation.
//
// Usage:
//
//	twinserver [-addr :8990] [-workers N] [-memo-cap N]
//	           [-memo-budget-bytes N] [-max-concurrent N] [-max-finished N]
//	           [-data-dir DIR] [-retention N] [-max-pending N]
//	           [-drain-timeout D] [-coordinator] [-join URL]
//	           [-advertise URL] [-heartbeat D] [-shard-timeout D]
//	           [-worker-ttl D]
//
// The wire contract (endpoints, envelopes, error codes) is documented in
// docs/api.md; docs/sweeps.md has a usage walkthrough.
//
// Durability. -data-dir DIR makes the server durable: every sweep
// transition is journaled (and fsynced) under DIR before it is
// acknowledged, and a restart replays the journal — completed sweeps
// re-register with their journaled results, interrupted ones resume
// with only their missing scenarios re-simulated, byte-identical to an
// uninterrupted run. On SIGTERM a durable server drains: submissions
// are refused, in-flight sweeps get -drain-timeout to finish, and
// stragglers are journaled as interrupted for the next start to resume.
// See docs/architecture.md, "Durability & recovery".
//
// Fabric modes. A plain twinserver is a self-contained single-process
// service. Two flags turn a set of them into a distributed sweep fabric:
//
//   - twinserver -coordinator runs no simulations itself: submitted
//     sweeps are partitioned by consistent hashing and dispatched as
//     shards to the worker replicas registered with it, and the merged
//     results are byte-identical to a single-process run;
//   - twinserver -join http://coordinator:8990 runs as a worker: it
//     serves shards (POST /v1/shards) like any twinserver and announces
//     itself to the coordinator on start and every -heartbeat.
//
// Concurrent identical submissions (same canonical spec) execute once;
// repeated distinct sweeps stay fast through the Runner's memo, bounded
// at -memo-cap simulations AND -memo-budget-bytes retained bytes (each
// entry priced at its compacted core.Results.MemoryFootprint), with
// least-recently-used eviction against both bounds — the byte budget is
// what keeps a warm process serving full-size sweeps from growing
// without limit. SIGINT or
// SIGTERM drains: in-flight sweeps are cancelled (cooperatively, down in
// each simulation's event loop) and the listener shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/fabric"
	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twinserver: ")
	addr := flag.String("addr", ":8990", "listen address")
	workers := flag.Int("workers", 0, "simulation worker-pool size per sweep (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 0, "max memoized simulations, LRU-evicted beyond (0 = default 256, negative disables)")
	memoBudget := flag.Int64("memo-budget-bytes", 0, "memo cache byte budget, coldest entries evicted beyond (0 = default 1 GiB, negative disables the byte bound)")
	noFork := flag.Bool("no-fork", false, "run mid-sweep divergence branches cold instead of forking them from the shared prefix checkpoint")
	maxConcurrent := flag.Int("max-concurrent", 2, "max concurrently executing sweeps (or shards, on a worker)")
	maxFinished := flag.Int("max-finished", 64, "finished sweeps retained for status/result queries")
	dataDir := flag.String("data-dir", "", "journal directory; enables durable mode (crash recovery, resumable sweeps)")
	retention := flag.Int("retention", 0, "finished sweeps whose journal records are retained before compaction (0 = -max-finished)")
	maxPending := flag.Int("max-pending", 64, "queued sweeps beyond which submissions are shed with 429 + Retry-After (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight sweeps may finish on SIGTERM before being journaled as interrupted")
	coordinator := flag.Bool("coordinator", false, "run as a fabric coordinator: dispatch sweeps as shards to joined workers instead of simulating locally")
	join := flag.String("join", "", "coordinator base URL to join as a worker (e.g. http://host:8990)")
	advertise := flag.String("advertise", "", "base URL this worker advertises when joining (default derived from -addr)")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "worker re-join (heartbeat) interval when -join is set")
	shardTimeout := flag.Duration("shard-timeout", 15*time.Minute, "coordinator: per-shard dispatch timeout before re-sharding")
	workerTTL := flag.Duration("worker-ttl", 0, "coordinator: drop workers not heard from within this window (0 = 3x -heartbeat; negative = never expire)")
	flag.Parse()

	if *coordinator && *join != "" {
		log.Fatal("-coordinator and -join are mutually exclusive")
	}
	if *coordinator && *dataDir != "" {
		log.Fatal("-coordinator and -data-dir are mutually exclusive: a coordinator owns no execution state to journal")
	}

	var (
		coord   *fabric.Coordinator
		handler http.Handler
	)
	cfg := service.Config{
		MaxConcurrent: *maxConcurrent,
		MaxFinished:   *maxFinished,
		Retention:     *retention,
		MaxPending:    *maxPending,
	}
	if *coordinator {
		// A coordinator owns no runner: its "execution" is sharding the
		// sweep across the joined workers. Everything else — the
		// registry, singleflight dedup, lifecycle, cancellation — is the
		// same service.
		coord = fabric.New(fabric.Config{
			ShardTimeout: *shardTimeout,
			Heartbeat:    *heartbeat,
			WorkerTTL:    *workerTTL,
			Logf:         log.Printf,
		})
		cfg.Run = coord.Run
	} else {
		cfg.Runner = &scenario.Runner{Workers: *workers, MemoCap: *memoCap, MemoBudgetBytes: *memoBudget, NoFork: *noFork}
	}
	var jl *journal.Log
	if *dataDir != "" {
		var err error
		if jl, err = journal.Open(*dataDir, journal.Options{}); err != nil {
			log.Fatal(err)
		}
		cfg.Journal = jl
	}
	svc, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if jl != nil {
		stats, err := svc.Recover(context.Background())
		if err != nil {
			log.Fatalf("recovering journal %s: %v", *dataDir, err)
		}
		if stats.Sweeps > 0 {
			log.Printf("recovered %d sweeps from %s: %d finished, %d resumed, %d journaled results reused",
				stats.Sweeps, *dataDir, stats.Finished, stats.Resumed, stats.ReusedResults)
		}
	}
	handler = service.NewHandler(svc)
	if coord != nil {
		handler = fabric.Handler(coord, handler)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	switch {
	case *coordinator:
		log.Printf("coordinating on %s", *addr)
	case *join != "":
		log.Printf("listening on %s, joining %s", *addr, *join)
		go heartbeatLoop(ctx, *join, advertiseURL(*advertise, *addr), *heartbeat)
	default:
		log.Printf("listening on %s", *addr)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: durable servers give in-flight sweeps a bounded window to
	// finish (stragglers are journaled as interrupted, so the next start
	// resumes them); non-durable ones cancel immediately. Then the
	// listener gets its own window to flush responses.
	if jl != nil {
		log.Printf("draining: in-flight sweeps have %v to finish", *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		interrupted := svc.Drain(drainCtx)
		cancelDrain()
		if interrupted > 0 {
			log.Printf("%d sweeps journaled as interrupted; they resume on next start", interrupted)
		}
	} else {
		log.Print("shutting down")
		svc.Shutdown()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if jl != nil {
		if err := jl.Close(); err != nil {
			log.Printf("closing journal: %v", err)
		}
	}
}

// advertiseURL resolves the base URL a worker announces: the explicit
// -advertise value, or one derived from the listen address (a bare
// ":8990" becomes loopback — fine for single-host clusters, tests and
// CI; multi-host deployments set -advertise).
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// heartbeatLoop announces this worker to the coordinator immediately and
// then every interval, so a coordinator restart (or a TTL expiry after a
// stall) heals without operator action.
func heartbeatLoop(ctx context.Context, coordURL, selfURL string, interval time.Duration) {
	client := api.NewClient(coordURL)
	joined := false
	for {
		callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := client.Join(callCtx, api.JoinRequest{URL: selfURL})
		cancel()
		switch {
		case err != nil:
			log.Printf("join %s: %v", coordURL, err)
			joined = false
		case !joined:
			log.Printf("joined %s as %s", coordURL, selfURL)
			joined = true
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

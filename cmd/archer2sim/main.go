// Command archer2sim replays the paper's Dec 2021 - Dec 2022 operational
// timeline on the full-scale digital twin and reports the cabinet power
// figures (paper Figures 1-3), the conclusions summary, and optionally the
// raw power series as CSV.
//
// Usage:
//
//	archer2sim [-figure 0|1|2|3] [-summary] [-seed N] [-csv out.csv] [-quiet]
//
// With no flags it prints all three figures and the summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/report"
)

// paperFigures holds the published window means (kW) for comparison.
var paperFigures = map[string]float64{
	"figure1-baseline": 3220,
	"figure2-before":   3220,
	"figure2-after":    3010,
	"figure3-before":   3010,
	"figure3-after":    2530,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("archer2sim: ")
	figure := flag.Int("figure", 0, "print only figure 1, 2 or 3 (0 = all)")
	summary := flag.Bool("summary", false, "print only the conclusions summary")
	seed := flag.Uint64("seed", 42, "simulation seed")
	csvPath := flag.String("csv", "", "write the cabinet power series to this CSV file")
	jobsCSV := flag.String("jobs-csv", "", "write a sacct-style per-job energy log to this CSV file")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	if *jobsCSV != "" {
		cfg.JobLogCap = -1 // unbounded
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "simulating %s -> %s on %d nodes (seed %d)...\n",
			cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"),
			cfg.Facility.Nodes, cfg.Seed)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Power.WriteCSV(f, true); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", res.Power.Len(), *csvPath)
		}
	}

	if *jobsCSV != "" {
		f, err := os.Create(*jobsCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.JobLog.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d job records to %s\n", res.JobLog.Len(), *jobsCSV)
		}
	}

	switch {
	case *summary:
		printSummary(res)
	case *figure == 0:
		printFigure(res, 1)
		printFigure(res, 2)
		printFigure(res, 3)
		printSummary(res)
	default:
		printFigure(res, *figure)
	}
}

func windowMean(res *core.Results, label string) float64 {
	w, ok := res.WindowByLabel(label)
	if !ok {
		log.Fatalf("window %q missing from results", label)
	}
	return w.MeanPower.Kilowatts()
}

func printFigure(res *core.Results, n int) {
	switch n {
	case 1:
		w, _ := res.WindowByLabel("figure1-baseline")
		fig := report.Figure{
			Title:  "Figure 1: ARCHER2 compute cabinet power, Dec 2021 - Apr 2022 (simulated)",
			Series: res.Power.Slice(w.Window.From, w.Window.To),
		}
		fig.AddNote("mean %s (paper: 3220 kW); utilisation %.1f%%",
			report.KW(w.MeanPower.Kilowatts()), w.MeanUtil*100)
		fmt.Println(fig.String())
	case 2:
		before := windowMean(res, "figure2-before")
		after := windowMean(res, "figure2-after")
		wb, _ := res.WindowByLabel("figure2-before")
		wa, _ := res.WindowByLabel("figure2-after")
		fig := report.Figure{
			Title:  "Figure 2: BIOS change to Performance Determinism, Apr - Jun 2022 (simulated)",
			Series: res.Power.Slice(wb.Window.From, wa.Window.To),
		}
		fig.AddNote("before %s -> after %s (%s); paper: 3220 -> 3010 kW (-6.5%%)",
			report.KW(before), report.KW(after), report.Pct(after/before-1))
		fmt.Println(fig.String())
	case 3:
		before := windowMean(res, "figure3-before")
		after := windowMean(res, "figure3-after")
		wb, _ := res.WindowByLabel("figure3-before")
		wa, _ := res.WindowByLabel("figure3-after")
		fig := report.Figure{
			Title:  "Figure 3: default CPU frequency 2.25+boost -> 2.0 GHz, Oct - Dec 2022 (simulated)",
			Series: res.Power.Slice(wb.Window.From, wa.Window.To),
		}
		fig.AddNote("before %s -> after %s (%s); paper: 3010 -> 2530 kW (-16%%)",
			report.KW(before), report.KW(after), report.Pct(after/before-1))
		fmt.Println(fig.String())
	default:
		log.Fatalf("no figure %d (use 1, 2 or 3)", n)
	}
}

func printSummary(res *core.Results) {
	cmp := report.NewComparison("Summary: paper vs simulated window means")
	for _, label := range []string{
		"figure1-baseline", "figure2-before", "figure2-after",
		"figure3-before", "figure3-after",
	} {
		cmp.Add(label, paperFigures[label], windowMean(res, label), report.KW)
	}
	baseline := windowMean(res, "figure1-baseline")
	final := windowMean(res, "figure3-after")
	cmp.Add("cumulative saving", 690, baseline-final, report.KW)
	fmt.Println(cmp.String())

	t := report.NewTable("Service statistics over the simulated year", "item", "value")
	t.AddRow("jobs submitted / completed / dropped",
		fmt.Sprintf("%d / %d / %d", res.Sched.Submitted, res.Sched.Completed, res.Sched.Dropped))
	t.AddRow("mean queue wait", res.Sched.MeanWait().Round(time.Second).String())
	t.AddRow("delivered node-hours", fmt.Sprintf("%.4g", res.TotalUsage.NodeHours))
	t.AddRow("compute energy", res.TotalUsage.Energy.String())
	t.AddRow("fleet-mix activity scale", fmt.Sprintf("%.4f", res.MixScale))
	fmt.Println(t.String())
}

module github.com/greenhpc/archertwin

go 1.21

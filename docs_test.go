package archertwin_test

// Documentation link check, run by the CI docs job: every relative
// markdown link in README.md, docs/ and examples/ must resolve to a file
// or directory that exists in the repository, so the documentation suite
// cannot rot silently as files move.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); image links ![..](..) match too and are
// checked the same way — a broken image path is documentation rot just
// like a broken link.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles returns every markdown file the check covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	for _, dir := range []string{"docs", "examples"} {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	var out []string
	for _, f := range files {
		if _, err := os.Stat(f); err == nil {
			out = append(out, f)
		}
	}
	return out
}

func TestDocsLinksResolve(t *testing.T) {
	checked := 0
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external links and in-page anchors: not checked
			}
			// Strip a fragment; resolve relative to the linking file.
			path := target
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, target, resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("link check matched no links at all; is the matcher broken?")
	}
}

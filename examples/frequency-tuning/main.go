// Frequency tuning: the paper "strongly encouraged users to benchmark the
// effect of CPU frequency on their use of ARCHER2 and choose an
// appropriate setting". This example is that benchmarking session for the
// calibrated application catalogue: it sweeps every available operating
// point (1.5 GHz, 2.0 GHz, 2.25 GHz, 2.25+boost) for every paper
// benchmark and prints performance, node power and energy-to-solution,
// plus the recommendation under each of the paper's SS2 priorities.
package main

import (
	"fmt"
	"log"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	spec := cpu.EPYC7742()
	cat, err := apps.NewCatalog(spec)
	if err != nil {
		log.Fatal(err)
	}

	settings := []cpu.FreqSetting{
		{Base: units.Gigahertz(1.5)},
		{Base: units.Gigahertz(2.0)},
		{Base: units.Gigahertz(2.25)},
		spec.DefaultSetting(), // 2.25 + boost
	}
	mode := cpu.PerformanceDeterminism
	ref := spec.DefaultSetting()

	for _, app := range cat.Table4 {
		t := report.NewTable(
			fmt.Sprintf("%s (%d nodes, compute fraction %.2f)",
				app.Name, app.RefNodes, app.Kernel.ComputeFraction),
			"setting", "perf ratio", "node power", "energy ratio")
		bestEnergy, bestEnergySetting := 1e18, settings[0]
		for _, fs := range settings {
			perf := app.PerfRatio(spec, ref, mode, fs, mode)
			power := app.NodePower(spec, fs, mode)
			energy := app.EnergyRatio(spec, ref, mode, fs, mode)
			t.AddRow(fs.String(), report.Ratio(perf), power.String(), report.Ratio(energy))
			if energy < bestEnergy {
				bestEnergy, bestEnergySetting = energy, fs
			}
		}
		fmt.Println(t.String())
		loss := 1 - app.PerfRatio(spec, ref, mode, spec.CappedSetting(), mode)
		fmt.Printf("  scope-2-dominated grid: run at %v (best energy-to-solution, ratio %.2f)\n",
			bestEnergySetting, bestEnergy)
		fmt.Printf("  scope-3-dominated grid: run at %v (max output per node-hour)\n", ref)
		if loss > 0.10 {
			fmt.Printf("  service policy: module override applies (%.0f%% loss at 2.0 GHz > 10%% threshold)\n\n", loss*100)
		} else {
			fmt.Printf("  service policy: capped default acceptable (%.0f%% loss at 2.0 GHz)\n\n", loss*100)
		}
	}
}

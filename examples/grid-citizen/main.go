// Grid citizen: the paper's work was done "specifically within the
// context of reducing the power draw of ARCHER2 during Winter 2022/2023
// when there were concerns about power shortages on the UK power grid".
// This example walks through one such afternoon: a 17:00-20:00 grid
// stress event during which the operator reclocks the entire running
// fleet to 2.0 GHz, then restores the stock frequency, and shows the
// cabinet power trace around the event.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/telemetry"
)

func main() {
	log.SetFlags(0)

	start := time.Date(2022, 12, 5, 0, 0, 0, 0, time.UTC)
	cfg := core.ScaledConfig(300, start, 4)
	cfg.Meter = telemetry.MeterConfig{Interval: 5 * time.Minute} // fine-grained, no noise
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	spec := cfg.Facility.CPU
	eventStart := start.AddDate(0, 0, 2).Add(17 * time.Hour)
	eventEnd := eventStart.Add(3 * time.Hour)

	var beforeKW, duringKW int64
	var nJobs int
	sim.Engine().At(eventStart, func(time.Time) {
		beforeKW = int64(sim.Facility().CabinetPower().Kilowatts())
		n, err := sim.Scheduler().ReclockRunning(spec.CappedSetting())
		if err != nil {
			log.Fatal(err)
		}
		nJobs = n
	})
	sim.Engine().At(eventStart.Add(90*time.Minute), func(time.Time) {
		duringKW = int64(sim.Facility().CabinetPower().Kilowatts())
	})
	sim.Engine().At(eventEnd, func(time.Time) {
		if _, err := sim.Scheduler().ReclockRunning(spec.DefaultSetting()); err != nil {
			log.Fatal(err)
		}
	})

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	windowFrom := eventStart.Add(-6 * time.Hour)
	windowTo := eventEnd.Add(6 * time.Hour)
	fig := report.Figure{
		Title:  "Cabinet power around a 17:00-20:00 grid stress event (300 nodes)",
		Series: res.Power.Slice(windowFrom, windowTo),
	}
	fig.AddNote("event %s -> %s", eventStart.Format("15:04"), eventEnd.Format("15:04"))
	fig.AddNote("reclocked %d running jobs to 2.0 GHz", nJobs)
	fig.AddNote("power before %d kW, during %d kW: %d kW freed for the grid",
		beforeKW, duringKW, beforeKW-duringKW)
	fmt.Println(fig.String())

	freedFrac := float64(beforeKW-duringKW) / float64(beforeKW)
	fmt.Printf("At ARCHER2 scale the same action frees roughly %.0f kW within minutes,\n",
		freedFrac*3200)
	fmt.Println("with the displaced work recovered after the event - the 'good grid")
	fmt.Println("citizen' behaviour the paper argues large HPC facilities must offer.")
}

// Carbon-aware scheduling walkthrough: reproduces the paper's §2 regime
// bands — <30 (scope-3 dominated), 30–100 (balanced) and >100 gCO2/kWh
// (scope-2 dominated) — under each temporal scheduling policy, using the
// scenario engine's carbon_policy axis.
//
// The paper's decision rule says *how* to run the machine in each band;
// the carbon axis asks the follow-up question the conclusion gestures at:
// *when* should work run? Three policies compete on three grids:
//
//   - fcfs: the greedy baseline — start work as soon as nodes are free,
//     blind to the grid;
//   - delay-flexible: park flexible jobs (half the mix, bounded at 8 h)
//     until the forecast finds a cleaner window;
//   - carbon-budget: cap the facility's carbon burn rate — admission
//     throttles itself exactly when the grid runs dirty.
//
// The run is sized to finish in a few seconds (64 nodes, 10 days, 70%
// offered load — shifting needs slack; a saturated machine has no "later"
// to move work into). The exact JSON spec equivalent of this program is
// documented in docs/sweeps.md.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)

	// One grid mean per paper band: deep-decarbonised (20), today's windy
	// night / the crossover band (65), and the 2022 GB mean (200).
	spec := scenario.Spec{
		Name:             "carbon regimes x temporal policy",
		Nodes:            64,
		Days:             10,
		WarmupDays:       2,
		OverSubscription: 0.7,
		Axes: scenario.Axes{
			GridMean: []float64{200, 65, 20},
			CarbonPolicy: []string{
				scenario.CarbonFCFS,
				scenario.CarbonDelayFlexible,
				scenario.CarbonBudget,
			},
		},
	}

	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	// The delta table: power/energy/emissions against the fcfs@200
	// baseline scenario.
	fmt.Println(res.Table().String())

	// The regime table: each scenario classified into the paper's bands.
	// Temporal policies cannot move a facility between regimes — that is
	// the grid's doing — but they decide how much of the in-regime scope-2
	// bill is avoidable.
	fmt.Println(res.RegimeTable().String())

	// The carbon table: experienced intensity vs grid mean, and the
	// avoided carbon against the same-grid fcfs counterpart.
	fmt.Println(res.CarbonTable().String())

	// Narrative: per band, what the paper's rule says and what temporal
	// scheduling adds on top.
	for _, mean := range spec.Axes.GridMean {
		band := grid.BandOf(units.GramsPerKWh(mean))
		var fcfs, best scenario.Result
		for _, r := range res.Results {
			if r.Scenario.GridMean != mean {
				continue
			}
			if r.Scenario.CarbonPolicy == scenario.CarbonFCFS {
				fcfs = r
			} else if r.AvoidedCarbon.Grams() > best.AvoidedCarbon.Grams() ||
				best.Scenario.CarbonPolicy == "" {
				best = r
			}
		}
		fmt.Printf("grid %3.0f g/kWh — %s, regime %q\n", mean, band, fcfs.Regime)
		fmt.Printf("  paper's rule: %s\n", fcfs.Regime.Strategy())
		frac := 0.0
		if t := fcfs.Emissions.Total.Grams(); t > 0 {
			frac = best.AvoidedCarbon.Grams() / t
		}
		fmt.Printf("  best temporal policy: %s avoids %s (%s of the fcfs total)\n\n",
			best.Scenario.CarbonPolicy, best.AvoidedCarbon, report(frac))
	}

	fmt.Println("Reading the tables: on the dirty grid the budget throttle buys the")
	fmt.Println("largest cut by shedding work outright; delay-flexible pays mainly in")
	fmt.Println("waiting time (the node-hour dip is the parked tail at the end of this")
	fmt.Println("short run). As the grid cleans, scope 3 dominates and no temporal")
	fmt.Println("policy has carbon left to avoid — the paper's regime logic, per policy.")
}

// report formats a signed fraction as a percentage.
func report(frac float64) string { return fmt.Sprintf("%+.1f%%", frac*100) }

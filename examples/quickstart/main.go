// Quickstart: build a scaled-down ARCHER2-class facility, run a two-week
// saturated workload, and read out the telemetry — the minimal end-to-end
// tour of the digital twin's API.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/report"
)

func main() {
	log.SetFlags(0)

	// A 200-node slice of the machine, two simulated weeks, stock
	// operating point (2.25 GHz + boost, Power Determinism).
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg := core.ScaledConfig(200, start, 14)
	cfg.Windows = []core.Window{
		{Label: "steady-state", From: start.AddDate(0, 0, 3), To: start.AddDate(0, 0, 14)},
	}

	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	w, _ := res.WindowByLabel("steady-state")
	fig := report.Figure{
		Title:  "Cabinet power, 200-node facility, two weeks (simulated)",
		Series: res.Power,
	}
	fig.AddNote("steady-state mean %s at %.1f%% utilisation",
		report.KW(w.MeanPower.Kilowatts()), w.MeanUtil*100)
	fmt.Println(fig.String())

	t := report.NewTable("Delivered work by research area", "class", "jobs", "node-hours", "energy")
	for _, name := range sortedClasses(res) {
		u := res.Usage[name]
		t.AddRow(name, fmt.Sprint(u.Jobs), fmt.Sprintf("%.0f", u.NodeHours), u.Energy.String())
	}
	t.AddRow("TOTAL", fmt.Sprint(res.TotalUsage.Jobs),
		fmt.Sprintf("%.0f", res.TotalUsage.NodeHours), res.TotalUsage.Energy.String())
	fmt.Println(t.String())

	fmt.Printf("energy cost of a node-hour: %.2f kWh (paper's efficiency currency)\n",
		res.TotalUsage.Energy.KilowattHours()/res.TotalUsage.NodeHours)
}

func sortedClasses(res *core.Results) []string {
	names := make([]string, 0, len(res.Usage))
	for n := range res.Usage {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort; tiny n
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Emissions scenarios: combines a simulated facility year with grid
// carbon-intensity scenarios to answer the paper's SS2 question — when
// does the frequency cap actually reduce total emissions, and when does it
// make them worse?
//
// The frequency cap cuts energy ~16% but also cuts delivered node-hours
// ~10%, so the machine must run longer (or buy a second machine sooner)
// for the same science. On a scope-3-dominated (very clean) grid the cap
// is counterproductive; on today's GB grid it wins clearly.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/emissions"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/units"
)

// operatingPoint summarises one month-long scaled run.
type operatingPoint struct {
	name      string
	power     units.Power // mean cabinet power
	nodeHours float64     // delivered node-hours
	energy    units.Energy
}

func runPoint(name string, capped bool) operatingPoint {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg := core.ScaledConfig(200, start, 28)
	cfg.Windows = []core.Window{{Label: "w", From: start.AddDate(0, 0, 4), To: start.AddDate(0, 0, 28)}}
	perfDet := cpu.PerformanceDeterminism
	changes := []policy.Change{{At: start, Mode: &perfDet}}
	if capped {
		cs := cfg.Facility.CPU.CappedSetting()
		changes = append(changes, policy.Change{At: start.AddDate(0, 0, 1), Setting: &cs})
	}
	cfg.Timeline = policy.Timeline{Changes: changes}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	w, _ := res.WindowByLabel("w")
	return operatingPoint{
		name:      name,
		power:     w.MeanPower,
		nodeHours: res.TotalUsage.NodeHours,
		energy:    res.TotalUsage.Energy,
	}
}

func main() {
	log.SetFlags(0)
	stock := runPoint("2.25 GHz + boost", false)
	capped := runPoint("2.0 GHz capped", true)

	// Scale the 200-node emissions profile accordingly: embodied share of
	// a 200-node slice of the 12 kt machine.
	params := emissions.Params{
		Embodied: units.Kilotonnes(12).Scale(200.0 / 5860.0),
		Lifetime: 6 * 365 * 24 * time.Hour,
	}

	grids := []struct {
		name string
		ci   units.CarbonIntensity
	}{
		{"2022 GB grid", units.GramsPerKWh(200)},
		{"2030 low-carbon grid", units.GramsPerKWh(65)},
		{"wind/nuclear future grid", units.GramsPerKWh(20)},
	}

	year := 365 * 24 * time.Hour
	for _, g := range grids {
		t := report.NewTable(
			fmt.Sprintf("Scenario: %s (%v)", g.name, g.ci),
			"operating point", "mean power", "scope 2 /yr", "scope 3 /yr", "total /yr",
			"nodeh per tCO2e", "regime")
		for _, pt := range []operatingPoint{stock, capped} {
			w := params.Account(pt.power, year, g.ci)
			// Node-hours scale from the 4-week run to a year.
			annualNodeh := pt.nodeHours * (year.Hours() / (28 * 24))
			eff := emissions.ComputeEfficiency(annualNodeh, pt.power.EnergyOver(year), w.Total)
			t.AddRow(pt.name, pt.power.String(),
				fmt.Sprintf("%.0f t", w.Scope2.Tonnes()),
				fmt.Sprintf("%.0f t", w.Scope3.Tonnes()),
				fmt.Sprintf("%.0f t", w.Total.Tonnes()),
				fmt.Sprintf("%.0f", eff.NodeHoursPerTonne),
				emissions.RegimeOf(w).String())
		}
		fmt.Println(t.String())
	}

	fmt.Println("Reading: on a high-carbon grid the cap raises node-hours per tonne")
	fmt.Println("(emissions efficiency improves); as the grid decarbonises the advantage")
	fmt.Println("shrinks and eventually inverts - exactly the paper's SS2 decision rule.")
}

// Capacity planning: the paper's SS5 observation — idle nodes draw ~50% of
// loaded power and switches draw full power regardless — means a facility
// must run near-full to be energy-efficient. This example quantifies that
// by sweeping the offered load on a fixed facility and reporting the
// energy cost of a delivered node-hour, the effective PUE, and the annual
// electricity bill at a given tariff.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)

	const nodes = 200
	const tariff = units.CostPerKWh(0.25) // GBP/kWh, 2022-era UK commercial rate
	start := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

	t := report.NewTable(
		fmt.Sprintf("Utilisation sweep on a %d-node facility (3 simulated weeks each)", nodes),
		"offered load", "utilisation", "mean power", "kWh per node-hour",
		"annual cost (GBP)", "annual cost per nodeh")
	for _, over := range []float64{0.25, 0.5, 0.75, 0.95, 1.10} {
		cfg := core.ScaledConfig(nodes, start, 21)
		cfg.OverSubscription = over
		cfg.Windows = []core.Window{{Label: "w", From: start.AddDate(0, 0, 5), To: start.AddDate(0, 0, 21)}}
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		w, _ := res.WindowByLabel("w")
		annualEnergy := w.MeanPower.EnergyOver(365 * 24 * time.Hour)
		annualCost := tariff.Over(annualEnergy)
		annualNodeh := res.TotalUsage.NodeHours * 365 / 21
		// Facility-level energy per delivered node-hour: unlike the per-job
		// accounting, this charges idle nodes and switches to the output.
		kwhPerNodeh := annualEnergy.KilowattHours() / annualNodeh
		t.AddRow(
			fmt.Sprintf("%.0f%%", over*100),
			fmt.Sprintf("%.1f%%", w.MeanUtil*100),
			w.MeanPower.String(),
			fmt.Sprintf("%.2f", kwhPerNodeh),
			fmt.Sprintf("%.0f", float64(annualCost)),
			fmt.Sprintf("%.3f", float64(annualCost)/annualNodeh),
		)
	}
	fmt.Println(t.String())
	fmt.Println("Below ~90% utilisation the cost (and emissions) of each delivered")
	fmt.Println("node-hour climbs steeply: idle nodes and always-on switches keep burning")
	fmt.Println("power. This is the paper's SS5 argument for >90% utilisation, in numbers.")
}

// AI surrogate: the paper's §5 names "the impact on energy and emissions
// efficiency of replacing parts of modelling applications by AI-based
// approaches" as future work. This example runs that analysis for a
// climate-model-like workload: a learned emulator replaces 80% of the
// simulation at 50x inference speed on a quarter of the nodes, at the cost
// of a training campaign worth ~200 production runs.
//
// It reports the energy break-even, the emissions break-even on dirty and
// clean grids, and how scheduling the training into the year's cheapest
// (wind-surplus) windows moves the answer.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	spec := cpu.EPYC7742()
	mode := cpu.PerformanceDeterminism
	fs := spec.DefaultSetting()

	model := &apps.App{
		Name:       "ocean-model",
		Kernel:     roofline.Kernel{ComputeFraction: 0.25},
		ActCore:    0.55,
		ActUncore:  1.0,
		RefNodes:   64,
		RefRuntime: 16 * time.Hour,
	}
	sur := apps.Surrogate{
		Name:            "learned emulator",
		TrainingEnergy:  apps.TrainingEnergyFromRuns(spec, model, fs, mode, 200),
		SpeedupFactor:   50,
		NodeFactor:      0.25,
		CoveredFraction: 0.80,
	}

	runE := apps.RunEnergy(spec, model, fs, mode)
	surE, err := apps.SurrogateRunEnergy(spec, model, sur, fs, mode)
	if err != nil {
		log.Fatal(err)
	}
	be, err := apps.BreakEvenRuns(spec, model, sur, fs, mode)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Energy analysis", "item", "value")
	t.AddRow("conventional run energy", runE.String())
	t.AddRow("surrogate run energy", surE.String())
	t.AddRow("per-run saving", fmt.Sprintf("%.1f%%", (1-surE.Joules()/runE.Joules())*100))
	t.AddRow("training energy", sur.TrainingEnergy.String())
	t.AddRow("energy break-even", fmt.Sprintf("%d production runs", be))
	fmt.Println(t.String())

	// Emissions: campaign of 150 runs (below the energy break-even).
	const runs = 150
	t2 := report.NewTable(
		fmt.Sprintf("Emissions over a %d-run campaign (training grid vs production grid)", runs),
		"scenario", "conventional", "surrogate", "saving")
	scenarios := []struct {
		name    string
		trainCI float64
		prodCI  float64
	}{
		{"train + produce on 2022 GB grid (200 g/kWh)", 200, 200},
		{"train in clean windows (40), produce on GB grid", 40, 200},
		{"train + produce on future grid (25 g/kWh)", 25, 25},
	}
	for _, sc := range scenarios {
		cmp, err := apps.CompareEmissions(spec, model, sur, fs, mode, runs,
			units.GramsPerKWh(sc.trainCI), units.GramsPerKWh(sc.prodCI))
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(sc.name,
			fmt.Sprintf("%.1f t", cmp.Conventional.Tonnes()),
			fmt.Sprintf("%.1f t", cmp.Surrogate.Tonnes()),
			fmt.Sprintf("%+.1f t", cmp.Saving.Tonnes()))
	}
	fmt.Println(t2.String())

	// Where are this year's cheapest/cleanest training windows?
	year, err := grid.GenerateYear(grid.GB2022(), grid.GB2022Prices(),
		time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), 0.3, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}
	wins := grid.CheapestWindows(year.Price, 72*time.Hour, 3)
	t3 := report.NewTable("Cheapest 72h training windows in the synthetic GB year",
		"window start", "mean price /kWh", "mean intensity g/kWh")
	for _, w := range wins {
		t3.AddRow(w.Format("2006-01-02 15:04"),
			fmt.Sprintf("%.3f", year.Price.TimeWeightedMean(w, w.Add(72*time.Hour))),
			fmt.Sprintf("%.0f", year.Intensity.TimeWeightedMean(w, w.Add(72*time.Hour))))
	}
	fmt.Println(t3.String())
	fmt.Println("Training scheduled into cheap (windy) windows is also low-carbon:")
	fmt.Println("price and intensity are coupled, so the emissions break-even moves")
	fmt.Println("well below the energy break-even.")
}

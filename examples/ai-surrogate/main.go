// AI surrogate: the paper's §5 names "the impact on energy and emissions
// efficiency of replacing parts of modelling applications by AI-based
// approaches" as future work. This example runs that analysis at two
// scales and joins them:
//
// Per application, a learned emulator replaces half of a climate-model
// run at 10x or 50x inference speed, at the cost of a training campaign
// worth ~200 production runs — apps.Surrogate answers "after how many
// runs does training pay for itself?".
//
// Per facility, the scenario engine's surrogate axis applies the same
// presets to the whole climate-ocean class of the fleet workload and
// sweeps them against grid decarbonisation (200/65/20 gCO2/kWh). The
// measured fleet-level emissions saving then amortises the training
// campaign: on today's grid the surrogate pays its training back
// quickly, while on a deeply decarbonised grid — where scope 2 hardly
// matters — the break-even stretches out, the paper's §2 regime logic
// applied to the §5 question.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/units"
)

func main() {
	log.SetFlags(0)
	spec := cpu.EPYC7742()
	mode := cpu.PerformanceDeterminism
	fs := spec.DefaultSetting()

	// A climate-model-like application, and the two surrogate presets the
	// sweep axis applies fleet-wide: half the runtime covered, same node
	// count, trained for ~200 production runs' worth of energy.
	model := &apps.App{
		Name:       "ocean-model",
		Kernel:     roofline.Kernel{ComputeFraction: 0.25},
		ActCore:    0.55,
		ActUncore:  1.0,
		RefNodes:   64,
		RefRuntime: 16 * time.Hour,
	}
	presets := []struct {
		axis    string
		speedup float64
	}{
		{scenario.Surrogate10x, 10},
		{scenario.Surrogate50x, 50},
	}
	training := apps.TrainingEnergyFromRuns(spec, model, fs, mode, 200)

	t := report.NewTable("Per-application energy break-even (training ~ 200 runs)",
		"surrogate", "run energy", "per-run saving", "break-even")
	runE := apps.RunEnergy(spec, model, fs, mode)
	t.AddRow("none", runE.String(), "—", "—")
	for _, p := range presets {
		sur := apps.Surrogate{
			Name:            "emulator " + p.axis,
			TrainingEnergy:  training,
			SpeedupFactor:   p.speedup,
			NodeFactor:      1,
			CoveredFraction: 0.5,
		}
		surE, err := apps.SurrogateRunEnergy(spec, model, sur, fs, mode)
		if err != nil {
			log.Fatal(err)
		}
		be, err := apps.BreakEvenRuns(spec, model, sur, fs, mode)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.axis, surE.String(),
			fmt.Sprintf("%.1f%%", (1-surE.Joules()/runE.Joules())*100),
			fmt.Sprintf("%d runs", be))
	}
	fmt.Println(t.String())

	// Fleet scale: the surrogate axis against grid decarbonisation. The
	// run is sized to finish in seconds; each non-none scenario carries
	// its own derived seed (the axis changes the simulation), so deltas
	// are honest cross-simulation comparisons, not matched pairs.
	sweep := scenario.Spec{
		Name:             "surrogate x grid",
		Nodes:            64,
		Days:             10,
		WarmupDays:       2,
		OverSubscription: 0.8,
		Axes: scenario.Axes{
			Surrogate: []string{scenario.SurrogateNone, scenario.Surrogate10x, scenario.Surrogate50x},
			GridMean:  []float64{200, 65, 20},
		},
	}
	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table().String())

	// Amortisation: the fleet-level emissions saving per day (vs the
	// same-grid none scenario) pays off the training campaign's
	// emissions, priced at the same grid's mean intensity — i.e. training
	// runs on the grid it serves.
	window := float64(sweep.Days - sweep.WarmupDays)
	baseline := map[float64]units.Mass{}
	for _, r := range res.Results {
		if r.Scenario.Surrogate == scenario.SurrogateNone {
			baseline[r.Scenario.GridMean] = r.Emissions.Total
		}
	}
	t2 := report.NewTable("Training amortisation at fleet scale",
		"surrogate", "grid g/kWh", "saved tCO2e/day", "training tCO2e", "break-even")
	for _, r := range res.Results {
		if r.Scenario.Surrogate == scenario.SurrogateNone {
			continue
		}
		base, ok := baseline[r.Scenario.GridMean]
		if !ok {
			continue
		}
		savedPerDay := (base.Tonnes() - r.Emissions.Total.Tonnes()) / window
		trainT := training.Emissions(units.GramsPerKWh(r.Scenario.GridMean)).Tonnes()
		be := "never (no saving)"
		if savedPerDay > 0 {
			be = fmt.Sprintf("%.0f days", trainT/savedPerDay)
		}
		t2.AddRow(r.Scenario.Surrogate,
			fmt.Sprintf("%.0f", r.Scenario.GridMean),
			fmt.Sprintf("%.3f", savedPerDay),
			fmt.Sprintf("%.2f", trainT),
			be)
	}
	fmt.Println(t2.String())
	fmt.Println("The dirtier the grid, the faster fleet-scale savings amortise the")
	fmt.Println("training campaign; as the grid decarbonises, scope 2 shrinks and the")
	fmt.Println("surrogate's case must rest on throughput, not carbon.")
}

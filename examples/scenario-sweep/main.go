// Scenario sweep: the programmatic face of cmd/sweep. Where the paper
// evaluated two operating points by actually reconfiguring a national
// service, the scenario engine asks a whole matrix of what-ifs in one
// parallel run.
//
// This example sweeps the two paper operating points (stock 2.25 GHz +
// boost vs the 2.0 GHz cap) against fleet-wide build variants (the
// paper's §5 future-work direction): does recompiling the whole workload
// with wide SIMD change the frequency-cap decision?
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/greenhpc/archertwin/internal/scenario"
)

func main() {
	log.SetFlags(0)
	spec := scenario.Spec{
		Name:  "frequency cap x fleet build",
		Nodes: 128,
		Days:  14,
		Axes: scenario.Axes{
			Frequency: []string{"stock", "capped"},
			Workload:  []string{"base", "portable", "simd"},
			GridMean:  []float64{200},
		},
	}

	// Expand first: a sweep is a value you can inspect before paying for
	// any simulation.
	scenarios, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sweep expands to %d scenarios:\n", len(scenarios))
	for _, sc := range scenarios {
		fmt.Printf("  %2d  %s\n", sc.Index, sc.Name)
	}
	fmt.Println()

	// Run them across the worker pool. Results are byte-identical for
	// any worker count; parallelism only buys wall-clock time.
	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table().String())

	// The aggregate answer: pair each capped scenario with the stock
	// scenario of the same fleet build and difference them — the cap
	// saves power on every build, so the decision is robust to the build
	// axis on a 2022-like grid.
	stock := map[string]scenario.Result{}
	for _, r := range res.Results {
		if r.Scenario.Frequency == "stock" {
			stock[r.Scenario.Workload] = r
		}
	}
	for _, r := range res.Results {
		if r.Scenario.Frequency != "capped" {
			continue
		}
		s, ok := stock[r.Scenario.Workload]
		if !ok {
			continue
		}
		dp := r.MeanPower.Kilowatts() - s.MeanPower.Kilowatts()
		fmt.Printf("cap effect on the %-10s fleet: %+.0f kW (%+.1f%% emissions)\n",
			r.Scenario.Workload, dp,
			100*(r.Emissions.Total.Tonnes()-s.Emissions.Total.Tonnes())/s.Emissions.Total.Tonnes())
	}
}

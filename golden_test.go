// Determinism golden tests: the hot-path rewrite of the DES core
// (internal/des 4-ary heap, internal/sched indexed free set, node power
// caching) must be observationally invisible. The digests below were
// recorded from the pre-refactor engine (container/heap event queue,
// sorted-slice free list, uncached power); the refactored engine must
// reproduce them bit for bit, at every worker count.
package archertwin_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// Golden digests recorded from the pre-refactor engine (commit 5f48ed0).
// If an intentional model change alters simulation output, re-bless these
// by running with -run TestGolden -v and copying the printed digests —
// but an engine/performance PR must never need to.
const (
	// goldenSeedDigest is core.DefaultConfig() (the full 13-month,
	// 5,860-node seed run) through Results.Digest.
	goldenSeedDigest = "f44760aae1702a3dd0820d6d5c6d052a87a4dedf1e6c98e01575e3435a523496"
	// goldenScaledDigest is the scaled 150-node, 21-day config.
	goldenScaledDigest = "2b9690768415317aecafda8c74df26cdcc868b00ab4819d8a53acd66d0b5e493"
	// goldenSweepDigest is the 2x2 frequency x carbon-policy sweep below,
	// identical at every worker count.
	goldenSweepDigest = "98f6e12f1c8893c9b9f426bfaa1f28c4e4204f9756812f5490586486201bd6a0"
	// goldenForkSweepDigest is the carbon-policy x mid-frequency divergence
	// sweep below, recorded from the cold (NoFork) path; the checkpoint/fork
	// path must reproduce it bit for bit at every worker count.
	goldenForkSweepDigest = "d1ae73bcf24c428d4b8f10ed2a5253b3818178d16b5e2068ebd07a0d6c4d8a6f"
)

// goldenSweepSpec exercises the scheduler's backfill, hold/release and
// forecast paths on a small facility: two frequency settings crossed with
// a grid-blind and a carbon-aware temporal policy, under-subscribed so
// the delay-flexible policy has room to shift work.
func goldenSweepSpec() scenario.Spec {
	return scenario.Spec{
		Name:             "golden",
		Nodes:            64,
		Days:             10,
		Seed:             42,
		OverSubscription: 0.8,
		Axes: scenario.Axes{
			Frequency:    []string{"stock", "capped"},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
}

// goldenScaledConfig is the small deterministic replay config.
func goldenScaledConfig() core.Config {
	cfg := core.ScaledConfig(150, epoch, 21)
	cfg.Windows = []core.Window{{Label: "w", From: epoch.AddDate(0, 0, 7), To: epoch.AddDate(0, 0, 21)}}
	return cfg
}

// sweepDigest fingerprints every scenario result of a sweep: exact float
// bits of each measured quantity, in scenario order.
func sweepDigest(res *scenario.SweepResults) string {
	h := sha256.New()
	buf := make([]byte, 8)
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		h.Write(buf)
	}
	for _, r := range res.Results {
		h.Write([]byte(r.Scenario.Name))
		f64(r.MeanPower.Watts())
		f64(r.MeanUtil)
		f64(r.Energy.Joules())
		f64(r.NodeHours)
		f64(r.MeanCI.GramsPerKWh())
		f64(r.Emissions.Scope2.Grams())
		f64(r.Emissions.Scope3.Grams())
		f64(r.Emissions.Total.Grams())
		f64(r.Emissions.CI.GramsPerKWh())
		f64(r.AvoidedCarbon.Grams())
		f64(float64(r.Holds))
		f64(float64(r.HoldDelay / time.Nanosecond))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenSeedConfigDigest proves the refactored engine reproduces the
// pre-refactor seed run exactly (shares the cached full timeline with the
// acceptance test and figure benchmarks).
func TestGoldenSeedConfigDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale timeline: skipped in -short mode")
	}
	res := fullTimeline(t)
	if d := res.Digest(); d != goldenSeedDigest {
		t.Errorf("seed config digest = %s, golden %s", d, goldenSeedDigest)
	}
}

// TestGoldenScaledConfigDigest is the fast replay proof, run on every
// test invocation including -short.
func TestGoldenScaledConfigDigest(t *testing.T) {
	res, err := core.RunConfig(goldenScaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Digest(); d != goldenScaledDigest {
		t.Errorf("scaled config digest = %s, golden %s", d, goldenScaledDigest)
	}
}

// goldenForkSweepSpec sweeps two temporal policies against a mid-sweep
// frequency divergence at day 7 of 10: the three branches of each policy
// share their first week bit for bit, so the runner simulates that prefix
// once per policy, checkpoints it, and forks the branches — the execution
// path this golden pins against the cold one.
func goldenForkSweepSpec() scenario.Spec {
	return scenario.Spec{
		Name:             "golden-fork",
		Nodes:            64,
		Days:             10,
		Seed:             42,
		OverSubscription: 0.8,
		DivergeDay:       7,
		Axes: scenario.Axes{
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
			MidFrequency: []string{"none", "capped", "1.5GHz"},
		},
	}
}

// TestGoldenForkSweep proves the checkpoint/fork execution path is
// observationally invisible: the divergence sweep produces bit-identical
// measured outcomes and per-scenario simulation digests whether every
// branch runs cold from day zero (NoFork) or forks from the shared prefix
// checkpoint, at every worker count, and both match the golden digest
// recorded from the cold path.
func TestGoldenForkSweep(t *testing.T) {
	spec := goldenForkSweepSpec()
	cold, err := (&scenario.Runner{Workers: 4, NoFork: true}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := sweepDigest(cold); d != goldenForkSweepDigest {
		t.Errorf("cold sweep digest = %s, golden %s", d, goldenForkSweepDigest)
	}
	for _, workers := range []int{1, 4, 8} {
		r := &scenario.Runner{Workers: workers}
		forked, err := r.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := sweepDigest(forked); d != goldenForkSweepDigest {
			t.Errorf("workers=%d: forked sweep digest = %s, golden %s", workers, d, goldenForkSweepDigest)
		}
		// 2 prefix checkpoints + 6 forked branches: proves the fork path
		// actually executed instead of silently running every branch cold.
		if cs := r.CacheStats(); cs.Misses != 8 {
			t.Errorf("workers=%d: misses = %d, want 8 (2 prefixes + 6 branches)", workers, cs.Misses)
		}
		for i := range forked.Results {
			fd, cd := forked.Results[i].SimDigest, cold.Results[i].SimDigest
			if fd == "" || fd != cd {
				t.Errorf("workers=%d: scenario %s: forked SimDigest %s, cold %s",
					workers, forked.Results[i].Scenario.Name, fd, cd)
			}
		}
	}
}

// TestGoldenSweepWorkerInvariance runs the golden sweep at 1, 4 and 8
// workers and asserts every scenario's measured outcome is bit-identical
// to the pre-refactor golden digest at every worker count.
func TestGoldenSweepWorkerInvariance(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		r := scenario.Runner{Workers: workers}
		res, err := r.Run(context.Background(), goldenSweepSpec())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := sweepDigest(res); d != goldenSweepDigest {
			t.Errorf("workers=%d: sweep digest = %s, golden %s", workers, d, goldenSweepDigest)
		}
	}
}

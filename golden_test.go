// Determinism golden tests: the hot-path rewrite of the DES core
// (internal/des 4-ary heap, internal/sched indexed free set, node power
// caching) must be observationally invisible. The digests below were
// recorded from the pre-refactor engine (container/heap event queue,
// sorted-slice free list, uncached power); the refactored engine must
// reproduce them bit for bit, at every worker count.
package archertwin_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// Golden digests recorded from the pre-refactor engine (commit 5f48ed0).
// If an intentional model change alters simulation output, re-bless these
// by running with -run TestGolden -v and copying the printed digests —
// but an engine/performance PR must never need to.
const (
	// goldenSeedDigest is core.DefaultConfig() (the full 13-month,
	// 5,860-node seed run) through Results.Digest.
	goldenSeedDigest = "f44760aae1702a3dd0820d6d5c6d052a87a4dedf1e6c98e01575e3435a523496"
	// goldenScaledDigest is the scaled 150-node, 21-day config.
	goldenScaledDigest = "2b9690768415317aecafda8c74df26cdcc868b00ab4819d8a53acd66d0b5e493"
	// goldenSweepDigest is the 2x2 frequency x carbon-policy sweep below,
	// identical at every worker count.
	goldenSweepDigest = "98f6e12f1c8893c9b9f426bfaa1f28c4e4204f9756812f5490586486201bd6a0"
)

// goldenSweepSpec exercises the scheduler's backfill, hold/release and
// forecast paths on a small facility: two frequency settings crossed with
// a grid-blind and a carbon-aware temporal policy, under-subscribed so
// the delay-flexible policy has room to shift work.
func goldenSweepSpec() scenario.Spec {
	return scenario.Spec{
		Name:             "golden",
		Nodes:            64,
		Days:             10,
		Seed:             42,
		OverSubscription: 0.8,
		Axes: scenario.Axes{
			Frequency:    []string{"stock", "capped"},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
}

// goldenScaledConfig is the small deterministic replay config.
func goldenScaledConfig() core.Config {
	cfg := core.ScaledConfig(150, epoch, 21)
	cfg.Windows = []core.Window{{Label: "w", From: epoch.AddDate(0, 0, 7), To: epoch.AddDate(0, 0, 21)}}
	return cfg
}

// sweepDigest fingerprints every scenario result of a sweep: exact float
// bits of each measured quantity, in scenario order.
func sweepDigest(res *scenario.SweepResults) string {
	h := sha256.New()
	buf := make([]byte, 8)
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		h.Write(buf)
	}
	for _, r := range res.Results {
		h.Write([]byte(r.Scenario.Name))
		f64(r.MeanPower.Watts())
		f64(r.MeanUtil)
		f64(r.Energy.Joules())
		f64(r.NodeHours)
		f64(r.MeanCI.GramsPerKWh())
		f64(r.Emissions.Scope2.Grams())
		f64(r.Emissions.Scope3.Grams())
		f64(r.Emissions.Total.Grams())
		f64(r.Emissions.CI.GramsPerKWh())
		f64(r.AvoidedCarbon.Grams())
		f64(float64(r.Holds))
		f64(float64(r.HoldDelay / time.Nanosecond))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenSeedConfigDigest proves the refactored engine reproduces the
// pre-refactor seed run exactly (shares the cached full timeline with the
// acceptance test and figure benchmarks).
func TestGoldenSeedConfigDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale timeline: skipped in -short mode")
	}
	res := fullTimeline(t)
	if d := res.Digest(); d != goldenSeedDigest {
		t.Errorf("seed config digest = %s, golden %s", d, goldenSeedDigest)
	}
}

// TestGoldenScaledConfigDigest is the fast replay proof, run on every
// test invocation including -short.
func TestGoldenScaledConfigDigest(t *testing.T) {
	res, err := core.RunConfig(goldenScaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Digest(); d != goldenScaledDigest {
		t.Errorf("scaled config digest = %s, golden %s", d, goldenScaledDigest)
	}
}

// TestGoldenSweepWorkerInvariance runs the golden sweep at 1, 4 and 8
// workers and asserts every scenario's measured outcome is bit-identical
// to the pre-refactor golden digest at every worker count.
func TestGoldenSweepWorkerInvariance(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		r := scenario.Runner{Workers: workers}
		res, err := r.Run(context.Background(), goldenSweepSpec())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := sweepDigest(res); d != goldenSweepDigest {
			t.Errorf("workers=%d: sweep digest = %s, golden %s", workers, d, goldenSweepDigest)
		}
	}
}

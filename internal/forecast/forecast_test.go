package forecast

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
)

var t0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// gbTrace generates a week of GB2022 intensity at 30-minute steps.
func gbTrace(t *testing.T) *timeseries.RegularSeries {
	t.Helper()
	tr, err := grid.GB2022().Trace(t0, t0.AddDate(0, 0, 7), 30*time.Minute, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The core property the scheduling property test builds on: a zero
// ErrorModel returns exactly the true trace value at every horizon.
func TestZeroErrorEqualsTruth(t *testing.T) {
	tr := gbTrace(t)
	f, err := New(tr, ErrorModel{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Perfect(tr)
	if err != nil {
		t.Fatal(err)
	}
	issue := t0.Add(6 * time.Hour)
	for h := time.Duration(0); h <= 48*time.Hour; h += 90 * time.Minute {
		target := issue.Add(h)
		want, _ := tr.ValueAt(target)
		got, ok := f.At(issue, target)
		if !ok || got.GramsPerKWh() != want {
			t.Fatalf("zero-error forecast at horizon %v: got %v want %v (ok=%v)", h, got, want, ok)
		}
		pg, _ := p.At(issue, target)
		if pg != got {
			t.Fatalf("Perfect differs from zero ErrorModel at horizon %v", h)
		}
	}
}

// A forecast query must be a pure function of (issue, target): asking in
// any order, or interleaving unrelated queries, never changes an answer.
func TestQueryOrderIndependence(t *testing.T) {
	tr := gbTrace(t)
	em := ErrorModel{Sigma0: 5, GrowthPerSqrtHour: 10, Seed: 9}
	a, _ := New(tr, em)
	b, _ := New(tr, em)
	issue := t0.Add(12 * time.Hour)
	targets := []time.Duration{36 * time.Hour, time.Hour, 12 * time.Hour, 36 * time.Hour}

	var first []float64
	for _, h := range targets {
		v, _ := a.At(issue, issue.Add(h))
		first = append(first, v.GramsPerKWh())
	}
	// Same queries, reversed, with noise queries interleaved.
	for i := len(targets) - 1; i >= 0; i-- {
		_, _ = b.At(issue.Add(7*time.Hour), issue.Add(100*time.Hour))
		v, _ := b.At(issue, issue.Add(targets[i]))
		if v.GramsPerKWh() != first[i] {
			t.Fatalf("query order changed forecast %d: %v vs %v", i, v.GramsPerKWh(), first[i])
		}
	}
	if first[0] != first[3] {
		t.Fatalf("identical queries disagreed: %v vs %v", first[0], first[3])
	}
}

// Error must grow with horizon per the model: RMS error near the nowcast
// is smaller than at two days out.
func TestErrorGrowsWithHorizon(t *testing.T) {
	tr := gbTrace(t)
	f, _ := New(tr, ErrorModel{Sigma0: 2, GrowthPerSqrtHour: 12, Seed: 3})
	rms := func(h time.Duration) float64 {
		var sum float64
		n := 0
		for issue := t0; issue.Before(t0.AddDate(0, 0, 4)); issue = issue.Add(time.Hour) {
			truth, _ := tr.ValueAt(issue.Add(h))
			got, ok := f.At(issue, issue.Add(h))
			if !ok {
				continue
			}
			d := got.GramsPerKWh() - truth
			sum += d * d
			n++
		}
		return math.Sqrt(sum / float64(n))
	}
	short, long := rms(time.Hour), rms(48*time.Hour)
	if short >= long {
		t.Errorf("error did not grow with horizon: rms(1h)=%.2f rms(48h)=%.2f", short, long)
	}
	// Sanity on the calibration: rms(48h) should be near 2+12*sqrt(48)~85.
	if long < 40 || long > 170 {
		t.Errorf("48h rms error %.2f wildly off the configured sigma", long)
	}
}

// Hindcasts (target at or before issue) return the truth even with a
// noisy model: the past is observed, not forecast.
func TestHindcastIsTruth(t *testing.T) {
	tr := gbTrace(t)
	f, _ := New(tr, ErrorModel{Sigma0: 50, Bias: 30, Seed: 4})
	issue := t0.Add(24 * time.Hour)
	for _, h := range []time.Duration{0, -time.Hour, -13 * time.Hour} {
		truth, _ := tr.ValueAt(issue.Add(h))
		got, ok := f.At(issue, issue.Add(h))
		if !ok || got.GramsPerKWh() != truth {
			t.Errorf("hindcast at %v: got %v want %v", h, got, truth)
		}
	}
}

// BestStart must find an intensity trough: on a synthetic trace with a
// known minimum, the chosen start hits it exactly.
func TestBestStartFindsTrough(t *testing.T) {
	s := timeseries.New("ci", "gCO2/kWh")
	for i := 0; i < 48; i++ {
		v := 200.0
		if i >= 20 && i < 26 {
			v = 50 // a 3-hour trough starting at +10h
		}
		s.MustAppend(t0.Add(time.Duration(i)*30*time.Minute), v)
	}
	f, err := Perfect(s)
	if err != nil {
		t.Fatal(err)
	}
	start, ci, ok := f.BestStart(t0, 20*time.Hour, 2*time.Hour)
	if !ok {
		t.Fatal("no best start found")
	}
	if want := t0.Add(10 * time.Hour); !start.Equal(want) {
		t.Errorf("best start %v, want %v", start, want)
	}
	if ci.GramsPerKWh() != 50 {
		t.Errorf("best mean CI %v, want 50", ci)
	}
	// Ties resolve earliest: a flat trace starts immediately.
	flat := timeseries.New("ci", "gCO2/kWh")
	for i := 0; i < 48; i++ {
		flat.MustAppend(t0.Add(time.Duration(i)*30*time.Minute), 100)
	}
	pf, _ := Perfect(flat)
	start, _, _ = pf.BestStart(t0.Add(time.Hour), 12*time.Hour, time.Hour)
	if !start.Equal(t0.Add(time.Hour)) {
		t.Errorf("flat trace did not resolve tie to earliest start: %v", start)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(timeseries.New("ci", "g"), ErrorModel{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := New(gbTrace(t), ErrorModel{Sigma0: -1}); err == nil {
		t.Error("negative sigma accepted")
	}
	if !(ErrorModel{Seed: 5}).IsPerfect() {
		t.Error("seed-only model not perfect")
	}
	if (ErrorModel{Bias: 1}).IsPerfect() {
		t.Error("biased model reported perfect")
	}
}

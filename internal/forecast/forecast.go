// Package forecast provides carbon-intensity forecasts for the temporal
// scheduling policies: a Forecaster wraps a grid carbon-intensity trace
// (see grid.IntensityModel.Trace) and answers "what will the intensity be
// at time T, as seen from time now?" with a tunable error model, so
// carbon-aware policies can be stress-tested against imperfect forecasts
// as well as run with perfect information.
//
// The paper's §2 analysis (Jackson, Simpson & Turner, SC-W 2023) shows
// that below the scope-2/scope-3 crossover intensity, *when* work runs
// matters as much as how it runs; a scheduler can only exploit that with
// a forecast. Real grid forecasts degrade with horizon, so the error
// model draws horizon-growing noise: a nowcast error Sigma0 plus
// GrowthPerSqrtHour·sqrt(h) at horizon h, the scaling of a random-walk
// forecast error.
//
// Determinism contract: a forecast query is a pure function of the trace,
// the error model and the (issue, target) pair — the error draw is hashed
// from the model seed and both timestamps, never from a shared mutable
// stream — so query order, concurrency and unrelated queries cannot
// change any answer, and sweep results stay byte-identical at any worker
// count.
package forecast

import (
	"fmt"
	"math"
	"time"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// ErrorModel parameterises forecast error as a function of horizon. The
// zero value is a perfect forecast (no error, no bias).
type ErrorModel struct {
	// Sigma0 is the standard deviation (gCO2/kWh) of the error at zero
	// horizon — the nowcast error of the intensity feed itself.
	Sigma0 float64
	// GrowthPerSqrtHour grows the standard deviation with the square
	// root of the horizon in hours, the scaling of a random-walk error.
	GrowthPerSqrtHour float64
	// Bias is a constant additive bias (gCO2/kWh), to model a feed that
	// systematically under- or over-estimates.
	Bias float64
	// Seed decorrelates the error draws of independent forecasters.
	Seed uint64
}

// IsPerfect reports whether the model adds no error at any horizon.
func (e ErrorModel) IsPerfect() bool {
	return e.Sigma0 == 0 && e.GrowthPerSqrtHour == 0 && e.Bias == 0
}

// Validate checks the parameters.
func (e ErrorModel) Validate() error {
	if e.Sigma0 < 0 || e.GrowthPerSqrtHour < 0 {
		return fmt.Errorf("forecast: negative error sigma %+v", e)
	}
	return nil
}

// sigma returns the error standard deviation at horizon h (clamped at 0).
func (e ErrorModel) sigma(h time.Duration) float64 {
	if h < 0 {
		h = 0
	}
	return e.Sigma0 + e.GrowthPerSqrtHour*math.Sqrt(h.Hours())
}

// draw returns the deterministic error for a query issued at `issue`
// targeting `target`. The draw is a pure function of (seed, issue,
// target): re-asking the same question always returns the same error.
func (e ErrorModel) draw(issue, target time.Time) float64 {
	if e.IsPerfect() {
		return 0
	}
	s := e.sigma(target.Sub(issue))
	if s == 0 {
		return e.Bias
	}
	label := fmt.Sprintf("forecast/%d/%d", issue.Unix(), target.Unix())
	r := rng.New(rng.DeriveSeed(e.Seed, label))
	return e.Bias + r.Normal(0, s)
}

// Point is one forecast sample.
type Point struct {
	T  time.Time
	CI units.CarbonIntensity
}

// Forecaster answers carbon-intensity forecast queries against a trace.
type Forecaster struct {
	trace timeseries.View
	em    ErrorModel
	// step is the trace's sampling step, recovered from the first two
	// samples; window searches walk the trace at this granularity.
	step time.Duration
}

// New builds a forecaster over a carbon-intensity trace (gCO2/kWh,
// uniformly sampled — grid.IntensityModel.Trace output) with the given
// error model. It returns an error for empty traces or invalid models.
func New(trace timeseries.View, em ErrorModel) (*Forecaster, error) {
	if err := em.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("forecast: empty intensity trace")
	}
	step := time.Hour
	if trace.Len() > 1 {
		step = trace.At(1).T.Sub(trace.At(0).T)
		if step <= 0 {
			return nil, fmt.Errorf("forecast: trace step %v not positive", step)
		}
	}
	return &Forecaster{trace: trace, em: em, step: step}, nil
}

// Perfect builds a perfect-information forecaster: every query returns
// the true trace value. It is the reference the error model is tested
// against (a zero ErrorModel is equivalent by construction).
func Perfect(trace timeseries.View) (*Forecaster, error) {
	return New(trace, ErrorModel{})
}

// Step returns the trace sampling step used for window searches.
func (f *Forecaster) Step() time.Duration { return f.step }

// Span returns the trace's covered time span.
func (f *Forecaster) Span() (from, to time.Time) {
	from, to, _ = f.trace.Span()
	return from, to
}

// At forecasts the intensity at target as seen from issue. ok is false
// when target precedes the trace (no value is in force yet); queries past
// the trace end hold the last value, like any forecast beyond its feed.
// Negative horizons (target before issue) are hindcasts and return the
// true value.
func (f *Forecaster) At(issue, target time.Time) (units.CarbonIntensity, bool) {
	v, ok := f.trace.ValueAt(target)
	if !ok {
		return 0, false
	}
	if !target.After(issue) {
		return units.GramsPerKWh(v), true
	}
	ci := v + f.em.draw(issue, target)
	if ci < 0 {
		ci = 0
	}
	return units.GramsPerKWh(ci), true
}

// Now returns the true intensity in force at t (zero-horizon query).
func (f *Forecaster) Now(t time.Time) (units.CarbonIntensity, bool) {
	return f.At(t, t)
}

// Horizon returns the forecast curve from issue (inclusive) out to
// issue+horizon, at the trace step.
func (f *Forecaster) Horizon(issue time.Time, horizon time.Duration) []Point {
	var out []Point
	for t := issue; !t.After(issue.Add(horizon)); t = t.Add(f.step) {
		ci, ok := f.At(issue, t)
		if !ok {
			continue
		}
		out = append(out, Point{T: t, CI: ci})
	}
	return out
}

// MeanOver returns the forecast mean intensity over [start, start+dur) as
// seen from issue, walking the trace step. ok is false when the window
// has no forecastable samples.
func (f *Forecaster) MeanOver(issue, start time.Time, dur time.Duration) (units.CarbonIntensity, bool) {
	if dur <= 0 {
		dur = f.step
	}
	var sum float64
	n := 0
	for t := start; t.Before(start.Add(dur)); t = t.Add(f.step) {
		ci, ok := f.At(issue, t)
		if !ok {
			continue
		}
		sum += ci.GramsPerKWh()
		n++
	}
	if n == 0 {
		return 0, false
	}
	return units.GramsPerKWh(sum / float64(n)), true
}

// BestStart returns the start time in [issue, issue+maxDelay] minimising
// the forecast mean intensity over a job of length dur, searched at the
// trace step, together with that forecast mean. Ties resolve to the
// earliest start (least disruption for equal carbon). ok is false when no
// candidate start is forecastable.
func (f *Forecaster) BestStart(issue time.Time, maxDelay, dur time.Duration) (time.Time, units.CarbonIntensity, bool) {
	if maxDelay < 0 {
		maxDelay = 0
	}
	best := issue
	var bestCI units.CarbonIntensity
	found := false
	for t := issue; !t.After(issue.Add(maxDelay)); t = t.Add(f.step) {
		ci, ok := f.MeanOver(issue, t, dur)
		if !ok {
			continue
		}
		if !found || ci.GramsPerKWh() < bestCI.GramsPerKWh() {
			best, bestCI, found = t, ci, true
		}
	}
	return best, bestCI, found
}

package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

// TestClientDecodesErrorEnvelope: a non-2xx envelope comes back as a
// typed *Error carrying the wire code and the HTTP status.
func TestClientDecodesErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, ErrNotFound, "no such sweep sweep-9")
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Sweep(context.Background(), "sweep-9")
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *api.Error", err, err)
	}
	if apiErr.Code != ErrNotFound || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("decoded error = %+v, want code=not_found status=404", apiErr)
	}
	if IsTransient(apiErr) {
		t.Error("a deliberate 404 must not classify as transient")
	}
}

// TestClientRetriesTransient: an idempotent GET retries through a 503
// and a connection-level failure to the eventual answer.
func TestClientRetriesTransient(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			WriteError(w, http.StatusServiceUnavailable, ErrUnavailable, "warming up")
			return
		}
		WriteJSON(w, http.StatusOK, Health{OK: true})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two retries)", got)
	}
}

// TestClientNeverRetriesShards: shard dispatch must fail fast so the
// coordinator — not the transport layer — decides about re-sharding.
func TestClientNeverRetriesShards(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusServiceUnavailable, ErrUnavailable, "draining")
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff = time.Millisecond
	_, err := c.RunShard(context.Background(), ShardRequest{})
	if err == nil {
		t.Fatal("RunShard against a draining server must error")
	}
	if !IsTransient(err) {
		t.Errorf("a 503 shard answer must classify transient, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d shard calls, want exactly 1 (no client retry)", got)
	}
}

// TestClientSynthesizesNonEnvelopeError: a body that is not the v1
// envelope (a proxy error page) still comes back as a typed *Error.
func TestClientSynthesizesNonEnvelopeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = -1 // negative disables retries; 0 would mean the default
	c.Backoff = time.Millisecond
	_, err := c.Workers(context.Background())
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *api.Error", err, err)
	}
	if apiErr.HTTPStatus != http.StatusBadGateway {
		t.Errorf("HTTPStatus = %d, want 502", apiErr.HTTPStatus)
	}
	if !IsTransient(apiErr) {
		t.Error("a 502 must classify as transient")
	}
}

// TestClientTransportErrorsAreTransient: an unreachable server is a
// transient failure (worker loss), not a deliberate rejection.
func TestClientTransportErrorsAreTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // immediately: connections now refuse

	c := NewClient(srv.URL)
	c.Retries = 1
	c.Backoff = time.Millisecond
	_, err := c.RunShard(context.Background(), ShardRequest{})
	if err == nil {
		t.Fatal("RunShard against a closed server must error")
	}
	if !IsTransient(err) {
		t.Errorf("connection-refused must classify transient, got %v", err)
	}
}

// TestWriteOverloadedPinsWire: the 429 answer carries the overloaded
// envelope and a whole-second Retry-After header (rounded up, never
// below 1).
func TestWriteOverloadedPinsWire(t *testing.T) {
	for _, tc := range []struct {
		retryAfter time.Duration
		header     string
	}{
		{3 * time.Second, "3"},
		{1500 * time.Millisecond, "2"}, // rounds up
		{0, "1"},                       // floor
	} {
		rec := httptest.NewRecorder()
		WriteOverloaded(rec, tc.retryAfter, "executor saturated")
		if rec.Code != http.StatusTooManyRequests {
			t.Errorf("retryAfter %v: status = %d, want 429", tc.retryAfter, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.header {
			t.Errorf("retryAfter %v: Retry-After = %q, want %q", tc.retryAfter, got, tc.header)
		}
	}
}

// TestClientRetriesOverloaded: a 429 is retried — even on a
// non-idempotent submission, because shedding happens before any state
// changes — after at least the server's Retry-After hint.
func TestClientRetriesOverloaded(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			WriteOverloaded(w, time.Second, "executor saturated")
			return
		}
		WriteJSON(w, http.StatusAccepted, SweepStatus{ID: "sweep-1", State: StatePending})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	start := time.Now()
	st, joined, err := c.SubmitSweep(context.Background(), scenario.Spec{Name: "x", Nodes: 32, Days: 1})
	if err != nil {
		t.Fatalf("SubmitSweep through two 429s: %v", err)
	}
	if joined || st.ID != "sweep-1" {
		t.Errorf("joined=%v status=%+v, want fresh sweep-1", joined, st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two 429 retries)", got)
	}
	// Two retries each waited >= the 1s Retry-After hint (plus jitter).
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("elapsed %v, want >= 2s (Retry-After honoured twice)", elapsed)
	}
}

// TestClientOverloadedRetriesBounded: a server that sheds forever
// exhausts the retry budget and surfaces the typed 429 with its hint.
func TestClientOverloadedRetriesBounded(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteOverloaded(w, time.Second, "journal disk stalled")
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = 1
	_, _, err := c.SubmitSweep(context.Background(), scenario.Spec{Name: "x", Nodes: 32, Days: 1})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *api.Error", err, err)
	}
	if apiErr.Code != ErrOverloaded || apiErr.HTTPStatus != http.StatusTooManyRequests {
		t.Errorf("decoded error = %+v, want code=overloaded status=429", apiErr)
	}
	if apiErr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", apiErr.RetryAfter)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2 (retry budget 1)", got)
	}
}

package api

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden wire file")

// sampleTime is a fixed instant so the golden bytes never depend on the
// clock.
var sampleTime = time.Date(2026, 8, 1, 12, 30, 0, 0, time.UTC)

// wireSamples builds one populated instance of every v1 wire type. Field
// values are arbitrary but fixed; what the golden file pins is the JSON
// *shape* — every field name, nesting and omission rule of the contract,
// including the domain types (scenario.Spec, scenario.Result, report
// tables) that travel inside the envelopes. Renaming or retagging any of
// them breaks this test, which is the point: v1 shapes may only change
// with a new version prefix.
func wireSamples() map[string]any {
	started := sampleTime.Add(time.Second)
	finished := sampleTime.Add(2 * time.Second)
	spec := scenario.Spec{
		Name:       "wire-sample",
		Nodes:      32,
		Days:       2,
		WarmupDays: 1,
		Seed:       7,
		Axes: scenario.Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 65},
		},
	}
	result := scenario.Result{
		Scenario:  scenario.Scenario{Index: 1, Name: "freq=capped"},
		MeanPower: 1500,
		MeanUtil:  0.9,
		SimDigest: "abcdef0123456789",
	}
	status := SweepStatus{
		ID:        "sweep-1",
		Name:      "wire-sample",
		SpecKey:   "0123456789abcdef",
		State:     StateRunning,
		Submitted: sampleTime,
		Started:   &started,
		Progress:  SweepProgress{Scenarios: 4, Simulations: 2, Done: 1},
	}
	terminal := status
	terminal.State = StateFailed
	terminal.Finished = &finished
	terminal.Error = "scenario 1 (freq=capped): boom"

	delta := report.NewDeltaTable("Sweep: wire-sample", "scenario", report.DeltaColumn{Header: "power", Format: report.KW})
	delta.SetBaseline("baseline", 1600)
	delta.Add("freq=capped", 1500)
	regime := report.NewTable("Regimes", "scenario", "regime")
	regime.AddRow("baseline", "green-hours")

	return map[string]any{
		"health": Health{OK: true},
		"error_envelope": ErrorEnvelope{
			Error:  &Error{Code: ErrSweepNotDone, Message: "sweep sweep-1 is running"},
			Status: &status,
		},
		"error_overloaded": ErrorEnvelope{
			Error: &Error{Code: ErrOverloaded, Message: "executor saturated; retry after 3s"},
		},
		"sweep_status": terminal,
		"sweep_list":   SweepList{Sweeps: []SweepStatus{status}, Total: 3},
		"results_payload": ResultsPayload{
			ID:          "sweep-1",
			Spec:        spec,
			Workers:     2,
			Simulations: 2,
			Results:     []scenario.Result{result},
			DeltaTable:  delta,
			RegimeTable: regime,
		},
		"service_stats": ServiceStats{
			Cache:         scenario.CacheStats{Hits: 3, Misses: 1, Size: 1, Capacity: 256, Bytes: 4096, BudgetBytes: 1 << 30},
			Sweeps:        map[SweepState]int{StateDone: 2},
			Executing:     1,
			MaxConcurrent: 2,
			ShardsServed:  5,
		},
		"shard_request": ShardRequest{
			SweepKey:  "0123456789abcdef",
			Shard:     0,
			Of:        2,
			Spec:      spec,
			Scenarios: []int{0, 1},
		},
		"shard_response": ShardResponse{Shard: 0, Results: []scenario.Result{result}, Simulations: 1},
		"join_request":   JoinRequest{URL: "http://10.0.0.7:8990"},
		"worker_list": WorkerList{Workers: []WorkerInfo{
			{URL: "http://10.0.0.7:8990", LastSeen: sampleTime, Shards: 5},
		}},
	}
}

// TestWireGolden pins the v1 wire shapes byte-for-byte against
// testdata/wire_v1.json. Regenerate deliberately with
// `go test ./internal/api -run TestWireGolden -update` after a
// compatible additive change; an incompatible change needs a v2.
func TestWireGolden(t *testing.T) {
	got, err := json.MarshalIndent(wireSamples(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire_v1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("v1 wire shapes drifted from %s.\nIf the change is additive and deliberate, regenerate with -update and update docs/api.md; otherwise it needs a new version prefix.\ngot:\n%s", path, got)
	}
}

// TestSpecKeyStable pins the spec-key algorithm: the key is a pure
// function of the canonical spec, identical for a spec and its
// spelled-out canonical form, and 16 hex characters.
func TestSpecKeyStable(t *testing.T) {
	short := scenario.Spec{Name: "k", Nodes: 32, Days: 2, WarmupDays: 1, Seed: 7}
	if got, want := SpecKey(short), SpecKey(short.Canonical()); got != want {
		t.Errorf("SpecKey(spec) = %s but SpecKey(spec.Canonical()) = %s", got, want)
	}
	if len(SpecKey(short)) != 16 {
		t.Errorf("SpecKey length = %d, want 16", len(SpecKey(short)))
	}
}

package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

// Client is the typed v1 API client: every twinserver consumer — the
// fabric coordinator, cmd/sweep -server, worker heartbeats, tests —
// talks through it instead of hand-rolling http.Get calls, so request
// encoding, error-envelope decoding and transient-failure retries live
// in exactly one place.
//
// The zero value is not usable; construct with NewClient. Client is
// safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8990".
	BaseURL string
	// HTTPClient performs the requests; nil means http.DefaultClient.
	// Deadlines come from the per-call context (shard runs are long),
	// not from a global client timeout.
	HTTPClient *http.Client
	// Retries is how many times an idempotent request is re-attempted
	// after a transport error or a 502/503/504 (default 2). Non-
	// idempotent calls (submissions, shard dispatch) never retry — their
	// caller owns that policy.
	Retries int
	// Backoff is the base delay between retries, doubling per attempt
	// (default 200ms).
	Backoff time.Duration
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &h, true); err != nil {
		return err
	}
	if !h.OK {
		return &Error{Code: ErrUnavailable, Message: "server reports not ok"}
	}
	return nil
}

// Stats fetches GET /statz.
func (c *Client) Stats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.do(ctx, http.MethodGet, "/statz", nil, nil, &st, true)
	return st, err
}

// SubmitSweep submits a spec without waiting (POST /v1/sweeps) and
// returns the sweep's status plus whether the submission joined an
// existing identical sweep (HTTP 200) rather than starting one (202).
func (c *Client) SubmitSweep(ctx context.Context, spec scenario.Spec) (SweepStatus, bool, error) {
	var st SweepStatus
	code, err := c.doCode(ctx, http.MethodPost, PathPrefix+"/sweeps", nil, spec, &st, false)
	return st, code == http.StatusOK, err
}

// SubmitSweepWait submits a spec and blocks until the sweep reaches a
// terminal state (POST /v1/sweeps?wait=1), returning its results. A
// failed or cancelled sweep surfaces as an *Error (sweep_failed /
// sweep_canceled) whose envelope status is discarded — use Sweep for
// the detail.
func (c *Client) SubmitSweepWait(ctx context.Context, spec scenario.Spec) (*ResultsPayload, error) {
	q := url.Values{"wait": {"1"}}
	var p ResultsPayload
	if err := c.do(ctx, http.MethodPost, PathPrefix+"/sweeps", q, spec, &p, false); err != nil {
		return nil, err
	}
	return &p, nil
}

// ListOptions filter GET /v1/sweeps.
type ListOptions struct {
	// Limit bounds the page (0 = the server default, DefaultListLimit).
	Limit int
	// States restricts to the given lifecycle states (empty = all).
	States []SweepState
}

// Sweeps lists sweeps, newest first (GET /v1/sweeps).
func (c *Client) Sweeps(ctx context.Context, opts ListOptions) (SweepList, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if len(opts.States) > 0 {
		parts := make([]string, len(opts.States))
		for i, s := range opts.States {
			parts[i] = string(s)
		}
		q.Set("state", strings.Join(parts, ","))
	}
	var l SweepList
	err := c.do(ctx, http.MethodGet, PathPrefix+"/sweeps", q, nil, &l, true)
	return l, err
}

// Sweep fetches one sweep's status (GET /v1/sweeps/{id}).
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, PathPrefix+"/sweeps/"+url.PathEscape(id), nil, nil, &st, true)
	return st, err
}

// Results fetches a completed sweep's results
// (GET /v1/sweeps/{id}/results). A non-terminal sweep returns an
// *Error with code sweep_not_done.
func (c *Client) Results(ctx context.Context, id string) (*ResultsPayload, error) {
	var p ResultsPayload
	if err := c.do(ctx, http.MethodGet, PathPrefix+"/sweeps/"+url.PathEscape(id)+"/results", nil, nil, &p, true); err != nil {
		return nil, err
	}
	return &p, nil
}

// CancelSweep cancels a sweep (DELETE /v1/sweeps/{id}).
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodDelete, PathPrefix+"/sweeps/"+url.PathEscape(id), nil, nil, &st, false)
	return st, err
}

// RunShard dispatches one shard to a worker (POST /v1/shards) and
// blocks until the shard completes. Never retried here: the fabric
// coordinator owns re-shard policy, and a transport error must surface
// to it as a worker-loss signal, not be papered over.
func (c *Client) RunShard(ctx context.Context, req ShardRequest) (*ShardResponse, error) {
	var resp ShardResponse
	if err := c.do(ctx, http.MethodPost, PathPrefix+"/shards", nil, req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Join announces a worker to a coordinator (POST /v1/workers). Joins
// double as heartbeats; the coordinator answers with its live
// membership.
func (c *Client) Join(ctx context.Context, req JoinRequest) (WorkerList, error) {
	var wl WorkerList
	err := c.do(ctx, http.MethodPost, PathPrefix+"/workers", nil, req, &wl, false)
	return wl, err
}

// Workers lists a coordinator's registered workers (GET /v1/workers).
func (c *Client) Workers(ctx context.Context) (WorkerList, error) {
	var wl WorkerList
	err := c.do(ctx, http.MethodGet, PathPrefix+"/workers", nil, nil, &wl, true)
	return wl, err
}

// IsTransient reports whether err looks like a transport-level or
// availability failure — the class worth retrying on another replica —
// rather than a deterministic API rejection. A decoded *Error is
// transient only with code unavailable (or a 502/504 from an
// intermediary); anything else that decoded is the server answering
// deliberately. Errors that never produced a response (connection
// refused, reset, timeout) are transient by definition.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if apiErr, ok := err.(*Error); ok {
		return apiErr.Code == ErrUnavailable ||
			apiErr.HTTPStatus == http.StatusBadGateway ||
			apiErr.HTTPStatus == http.StatusGatewayTimeout
	}
	return true
}

// do performs one call; see doCode.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, in, out any, retryable bool) error {
	_, err := c.doCode(ctx, method, path, query, in, out, retryable)
	return err
}

// doCode performs one API call: marshal in (when non-nil), decode a 2xx
// body into out (when non-nil), decode anything else as an
// ErrorEnvelope and return its *Error. Retryable requests re-attempt
// transport errors and 502/503/504 with doubling backoff. An overloaded
// (429) answer is retried on every call — even non-idempotent ones,
// because the server sheds before any state changes — honouring its
// Retry-After hint with jitter so a herd of shed clients does not
// return in lockstep.
func (c *Client) doCode(ctx context.Context, method, path string, query url.Values, in, out any, retryable bool) (int, error) {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return 0, fmt.Errorf("api: encoding request: %w", err)
		}
	}
	retries := c.Retries
	if retries == 0 {
		retries = 2
	}
	transientRetries := retries
	if !retryable {
		transientRetries = 0
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}

	var wait time.Duration // delay before the next attempt, set when retrying
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(wait):
			}
		}
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return 0, fmt.Errorf("api: building request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := httpc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("api: %s %s: %w", method, path, err)
			if attempt < transientRetries && ctx.Err() == nil {
				wait = backoff << attempt
				continue
			}
			return 0, lastErr
		}
		code, err := decodeResponse(resp, out)
		if err != nil && ctx.Err() == nil {
			var apiErr *Error
			if errors.As(err, &apiErr) && apiErr.Code == ErrOverloaded && attempt < retries {
				base := apiErr.RetryAfter
				if base <= 0 {
					base = backoff << attempt
				}
				wait = withJitter(base)
				lastErr = err
				continue
			}
			if attempt < transientRetries && IsTransient(err) {
				wait = backoff << attempt
				lastErr = err
				continue
			}
		}
		return code, err
	}
}

// withJitter stretches a retry delay by up to 25% so shed clients
// spread out instead of re-arriving together at the Retry-After mark.
func withJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

// decodeResponse consumes and closes the response body: 2xx decodes
// into out, anything else decodes the error envelope.
func decodeResponse(resp *http.Response, out any) (int, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, fmt.Errorf("api: reading response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return resp.StatusCode, nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("api: decoding %d response: %w", resp.StatusCode, err)
		}
		return resp.StatusCode, nil
	}
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
		env.Error.HTTPStatus = resp.StatusCode
		env.Error.RetryAfter = retryAfter
		return resp.StatusCode, env.Error
	}
	// Not an envelope (a proxy error page, an old server): synthesize.
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	code := ErrInternal
	if resp.StatusCode == http.StatusServiceUnavailable {
		code = ErrUnavailable
	}
	return resp.StatusCode, &Error{Code: code, Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, msg), HTTPStatus: resp.StatusCode, RetryAfter: retryAfter}
}

// parseRetryAfter reads an integer-seconds Retry-After value (the only
// form twinserver emits); anything else is zero.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

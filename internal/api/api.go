// Package api is the versioned wire contract of the twinserver HTTP
// service — the single place the v1 request, response and error shapes
// are defined. The server (internal/service, internal/fabric) marshals
// these types; the typed Client in this package consumes them; the
// golden wire test pins every JSON field name so the contract cannot
// drift silently. docs/api.md is the prose reference for the same
// contract.
//
// Layering: api depends only on the domain packages whose values travel
// on the wire (scenario, report). It must never import service or
// fabric — those implement the endpoints this package describes.
package api

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// Version is the wire-contract version; every versioned endpoint lives
// under PathPrefix. Breaking changes to any type in this package require
// a new version prefix, not an edit to the v1 shapes.
const (
	Version    = "v1"
	PathPrefix = "/" + Version
)

// DefaultListLimit is the page size GET /v1/sweeps serves when no
// ?limit= parameter is given. The list endpoint is never unbounded.
const DefaultListLimit = 100

// ErrorCode machine-readably classifies an API error; codes are stable
// wire values, documented in docs/api.md.
type ErrorCode string

// The v1 error codes.
const (
	// ErrBadRequest: the request body or parameters failed validation.
	ErrBadRequest ErrorCode = "bad_request"
	// ErrNotFound: no such sweep (or other resource).
	ErrNotFound ErrorCode = "not_found"
	// ErrMethodNotAllowed: wrong HTTP method; the response carries an
	// Allow header listing the permitted ones.
	ErrMethodNotAllowed ErrorCode = "method_not_allowed"
	// ErrSweepNotDone: results were requested for a sweep that has not
	// reached a terminal state; the envelope embeds the live status.
	ErrSweepNotDone ErrorCode = "sweep_not_done"
	// ErrSweepFailed: the sweep ended in failure; the envelope embeds
	// the terminal status (whose error field has the cause).
	ErrSweepFailed ErrorCode = "sweep_failed"
	// ErrSweepCanceled: the sweep was cancelled before completing.
	ErrSweepCanceled ErrorCode = "sweep_canceled"
	// ErrShardFailed: a shard execution failed deterministically (a
	// scenario error, not a transport fault) — re-dispatching the same
	// shard elsewhere will fail identically.
	ErrShardFailed ErrorCode = "shard_failed"
	// ErrUnavailable: the server is shutting down or cannot serve this
	// request right now; retrying elsewhere (or later) may succeed.
	ErrUnavailable ErrorCode = "unavailable"
	// ErrOverloaded: the server shed this request under load (executor
	// saturated or journal stalled). Travels with HTTP 429 and a
	// Retry-After header; retrying after the hinted delay is expected to
	// succeed. Shedding happens before any state changes, so retries are
	// always safe.
	ErrOverloaded ErrorCode = "overloaded"
	// ErrInternal: unclassified server-side failure.
	ErrInternal ErrorCode = "internal"
)

// Error is the machine-readable API error. Servers embed it in an
// ErrorEnvelope; Client returns it (as a Go error) whenever a response
// carries one, so callers can switch on Code.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`

	// HTTPStatus is the HTTP status the error travelled with. It is
	// client-side bookkeeping, not part of the wire envelope.
	HTTPStatus int `json:"-"`

	// RetryAfter is the parsed Retry-After hint an overloaded (429)
	// response travelled with; zero when absent. Client-side
	// bookkeeping, not part of the wire envelope.
	RetryAfter time.Duration `json:"-"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the uniform non-2xx response body:
//
//	{"error":{"code":"...","message":"..."},"status":{...}}
//
// Status is present only for sweep-state errors (sweep_not_done,
// sweep_failed, sweep_canceled), where the sweep's live status is the
// useful half of the answer.
type ErrorEnvelope struct {
	Error  *Error       `json:"error"`
	Status *SweepStatus `json:"status,omitempty"`
}

// Health is the GET /healthz liveness body.
type Health struct {
	OK bool `json:"ok"`
}

// SweepState is a sweep's position in its lifecycle.
type SweepState string

// Sweep lifecycle states.
const (
	StatePending  SweepState = "pending"
	StateRunning  SweepState = "running"
	StateDone     SweepState = "done"
	StateFailed   SweepState = "failed"
	StateCanceled SweepState = "canceled"
)

// Terminal reports whether the state is final.
func (s SweepState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ValidState reports whether s names a known lifecycle state (used to
// validate ?state= filters).
func ValidState(s SweepState) bool {
	switch s {
	case StatePending, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// SweepProgress is a sweep's execution progress in unique simulations
// (the unit of actual work; scenarios sharing a simulation resolve
// together).
type SweepProgress struct {
	// Scenarios is the sweep's expanded scenario count.
	Scenarios int `json:"scenarios"`
	// Simulations is the number of unique simulations the sweep needs;
	// zero until the sweep starts resolving.
	Simulations int `json:"simulations"`
	// Done is how many of those have resolved (memo hits included).
	Done int `json:"done"`
}

// SweepStatus is a point-in-time snapshot of a registered sweep.
type SweepStatus struct {
	ID        string        `json:"id"`
	Name      string        `json:"name"`
	SpecKey   string        `json:"spec_key"`
	State     SweepState    `json:"state"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Progress  SweepProgress `json:"progress"`
	Error     string        `json:"error,omitempty"`
}

// SweepList is the GET /v1/sweeps body: a bounded page of statuses,
// newest submission first, plus the total match count before the limit
// was applied.
type SweepList struct {
	Sweeps []SweepStatus `json:"sweeps"`
	Total  int           `json:"total"`
}

// ResultsPayload is the body served for a completed sweep: the raw
// per-scenario results (each carrying its simulation's core.Results
// digest) plus the rendered comparison tables in structured form.
type ResultsPayload struct {
	ID          string             `json:"id"`
	Spec        scenario.Spec      `json:"spec"`
	Workers     int                `json:"workers"`
	Simulations int                `json:"simulations"`
	Results     []scenario.Result  `json:"results"`
	DeltaTable  *report.DeltaTable `json:"delta_table"`
	RegimeTable *report.Table      `json:"regime_table"`
	CarbonTable *report.Table      `json:"carbon_table,omitempty"`
}

// ServiceStats is the GET /statz operational snapshot.
type ServiceStats struct {
	// Cache is the shared Runner's memoization counters — the LRU the
	// whole service economises through (zero on a coordinator, which
	// runs no simulations of its own).
	Cache scenario.CacheStats `json:"cache"`
	// Sweeps counts registered sweeps by state.
	Sweeps map[SweepState]int `json:"sweeps"`
	// Executing is how many sweeps hold an executor slot right now,
	// against the MaxConcurrent bound.
	Executing     int `json:"executing"`
	MaxConcurrent int `json:"max_concurrent"`
	// ShardsServed counts shard executions this server has completed
	// for a coordinator (POST /v1/shards).
	ShardsServed int `json:"shards_served"`
}

// ShardRequest is the POST /v1/shards body: one worker's slice of an
// expanded sweep. Scenario indices refer to the spec's canonical
// expansion order (scenario.Spec.Expand), so worker and coordinator
// agree on identity without shipping expanded scenarios.
type ShardRequest struct {
	// SweepKey is the canonical spec key of the parent sweep
	// (SpecKey(Spec)) — logging/affinity metadata, not an input to the
	// execution.
	SweepKey string `json:"sweep_key"`
	// Shard / Of place this shard within the dispatch round.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Spec is the full canonical sweep spec.
	Spec scenario.Spec `json:"spec"`
	// Scenarios lists the expanded-scenario indices this worker runs,
	// ascending, deduplicated.
	Scenarios []int `json:"scenarios"`
}

// ShardResponse is the successful shard body: one Result per requested
// index, in the same ascending order, each carrying its simulation
// digest. Cross-scenario aggregation (avoided carbon, tables) is the
// coordinator's job at merge time — a shard sees only its slice.
type ShardResponse struct {
	Shard int `json:"shard"`
	// Results has exactly one entry per requested scenario index, in
	// request order; Result.Scenario.Index is the global expansion index.
	Results []scenario.Result `json:"results"`
	// Simulations is how many distinct simulations this shard resolved
	// (memo hits included).
	Simulations int `json:"simulations"`
}

// JoinRequest is the POST /v1/workers body: a worker replica announcing
// (or re-announcing — joins double as heartbeats) itself to a
// coordinator.
type JoinRequest struct {
	// URL is the worker's advertised base URL, reachable from the
	// coordinator, e.g. "http://10.0.0.7:8990".
	URL string `json:"url"`
}

// WorkerInfo describes one registered worker replica.
type WorkerInfo struct {
	URL      string    `json:"url"`
	LastSeen time.Time `json:"last_seen"`
	// Shards counts shard dispatches this worker has completed for the
	// coordinator.
	Shards int `json:"shards"`
}

// WorkerList is the GET /v1/workers body (and the POST /v1/workers
// acknowledgement): the coordinator's live membership.
type WorkerList struct {
	Workers []WorkerInfo `json:"workers"`
}

// SpecKey is the canonical identity of a sweep spec: a digest of the
// spec's canonical (fully defaulted) form, so specs that mean the same
// sweep — whether defaults are spelled out or omitted — coalesce onto
// one key. The service uses it as the singleflight/dedup key; the
// fabric uses it as shard-affinity metadata. Deliberately coarser than
// the Runner's per-simulation memo keys.
func SpecKey(spec scenario.Spec) string {
	data, err := json.Marshal(spec.Canonical())
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("api: marshalling spec: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))[:16]
}

// WriteJSON writes v as indented JSON with the given HTTP status — the
// one encoder every v1 endpoint shares.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire; an encode failure here has
	// no better channel than the aborted body itself.
	_ = enc.Encode(v)
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, httpStatus int, code ErrorCode, msg string) {
	WriteJSON(w, httpStatus, ErrorEnvelope{Error: &Error{Code: code, Message: msg}})
}

// WriteErrorStatus writes the error envelope with a sweep status
// embedded (the sweep-state error shape).
func WriteErrorStatus(w http.ResponseWriter, httpStatus int, code ErrorCode, msg string, st SweepStatus) {
	WriteJSON(w, httpStatus, ErrorEnvelope{Error: &Error{Code: code, Message: msg}, Status: &st})
}

// WriteMethodNotAllowed writes the 405 envelope with the mandatory
// Allow header.
func WriteMethodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	WriteError(w, http.StatusMethodNotAllowed, ErrMethodNotAllowed, "method not allowed; use "+allow)
}

// WriteOverloaded writes the 429 load-shedding envelope with a
// Retry-After header (whole seconds, rounded up, at least 1).
func WriteOverloaded(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	WriteError(w, http.StatusTooManyRequests, ErrOverloaded, msg)
}

// Package timeseries implements the time-series containers used by the
// facility telemetry pipeline: append-only sampled values with window
// statistics, resampling, step-change detection and export helpers.
//
// Two storage layouts share one read API (View):
//
//   - Series stores explicit (time, value) samples and handles irregular
//     spacing — dropout gaps, event-driven appends, ragged imports.
//   - RegularSeries (regular.go) stores an epoch, a fixed step and a
//     contiguous []float64 block; timestamps are implicit. Fixed-cadence
//     producers (telemetry meters, grid traces) use it for roughly a
//     quarter of the Series footprint per sample.
//
// Both kinds maintain streaming moments (stats.Moments) on append, so
// Mean and the moment half of Summary are O(1) and allocation-free. The
// running sum accumulates in append order, which makes Mean bit-identical
// to a stats.Mean pass over the same values — the determinism the golden
// digests pin.
//
// Timestamps are time.Time; samples must be appended in non-decreasing
// time order, which is what a simulation clock naturally produces.
//
// A series is the twin's equivalent of one PMDB cabinet-power trace: the
// paper's Figures 1-3 are window means over exactly such series, and the
// step-change detector recovers the dated operational changes from them.
package timeseries

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/stats"
)

// Sample is one (timestamp, value) observation.
type Sample struct {
	T time.Time
	V float64
}

// View is the read API shared by Series and RegularSeries. Everything a
// consumer of telemetry does — window means, sample-and-hold lookups,
// emissions integration, rendering, fingerprinting — goes through this
// interface, so producers are free to pick the storage layout that fits
// their cadence. Methods on a View never mutate the series.
type View interface {
	// Label returns the series name and unit.
	Label() (name, unit string)
	// Len returns the number of samples.
	Len() int
	// At returns sample i (0 <= i < Len).
	At(i int) Sample
	// Span returns the first and last timestamps; ok is false when empty.
	Span() (from, to time.Time, ok bool)
	// ValueAt returns the sample-and-hold value in force at t.
	ValueAt(t time.Time) (float64, bool)
	// Mean returns the arithmetic mean of all values in O(1).
	Mean() float64
	// MeanBetween returns the arithmetic mean of samples in [from, to).
	MeanBetween(from, to time.Time) float64
	// CountBetween returns the number of samples in [from, to).
	CountBetween(from, to time.Time) int
	// TimeWeightedMean integrates sample-and-hold over [from, to).
	TimeWeightedMean(from, to time.Time) float64
	// Summary returns summary statistics over all values.
	Summary() stats.Summary
	// Accumulator returns a forward-sweeping window-mean accumulator.
	Accumulator() *WindowAccumulator
	// Slice returns an independent sub-series with from <= t < to.
	Slice(from, to time.Time) View
	// DetectStep locates the largest relative level shift.
	DetectStep(minSeg int, threshold float64) (StepChange, bool)
	// WriteCSV writes "time,value" rows with an optional header.
	WriteCSV(w io.Writer, header bool) error
	// RenderASCII draws the series as an ASCII chart.
	RenderASCII(rows, cols int) string
	// MemoryFootprint returns the series' retained bytes (see the
	// accounting contract on core.Results.MemoryFootprint).
	MemoryFootprint() int64
}

// Appender is a View that accepts timestamped appends — what the
// telemetry meters hold, so a meter can be wired to either storage
// layout at construction time.
type Appender interface {
	View
	// Append adds a sample, returning an error when t violates the
	// series' ordering (Series) or cadence (RegularSeries) contract.
	Append(t time.Time, v float64) error
	// MustAppend is Append for callers that guarantee valid timestamps
	// (e.g. the DES clock); it panics on an invalid one.
	MustAppend(t time.Time, v float64)
}

// CloneAppender deep-copies an appender of either storage layout,
// preserving its concrete type. It is the checkpoint path's way to copy a
// meter's series without knowing which layout the meter chose.
func CloneAppender(a Appender) Appender {
	switch s := a.(type) {
	case *Series:
		return s.Clone()
	case *RegularSeries:
		return s.Clone()
	}
	panic(fmt.Sprintf("timeseries: CloneAppender: unsupported appender %T", a))
}

// Series is an ordered collection of explicit samples with a name and a
// unit label — the irregular-spacing storage layout.
type Series struct {
	Name string
	Unit string

	samples []Sample
	mom     stats.Moments
}

// New creates an empty series.
func New(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// NewWithCapacity creates an empty series pre-sized for `capacity`
// samples. Producers that know their horizon — a telemetry meter sampling
// every Interval until the run end, a grid trace at a fixed step — should
// size up front so a year of samples is one allocation instead of a
// doubling cascade.
func NewWithCapacity(name, unit string, capacity int) *Series {
	s := New(name, unit)
	if capacity > 0 {
		s.samples = make([]Sample, 0, capacity)
	}
	return s
}

// Label returns the series name and unit.
func (s *Series) Label() (name, unit string) { return s.Name, s.Unit }

// Reserve grows the sample capacity to hold at least n further samples
// without reallocation.
func (s *Series) Reserve(n int) {
	if free := cap(s.samples) - len(s.samples); free < n {
		grown := make([]Sample, len(s.samples), len(s.samples)+n)
		copy(grown, s.samples)
		s.samples = grown
	}
}

// Clip shrinks the backing array to exactly the held samples, releasing
// over-reserved capacity (a meter sized for a horizon the run did not
// reach). Used by core.Results.Compact before long-term retention.
func (s *Series) Clip() {
	if cap(s.samples) > len(s.samples) {
		clipped := make([]Sample, len(s.samples))
		copy(clipped, s.samples)
		s.samples = clipped
	}
}

// Append adds a sample. It returns an error if t is before the last sample's
// timestamp (equal timestamps are allowed: meters may batch-report).
func (s *Series) Append(t time.Time, v float64) error {
	if n := len(s.samples); n > 0 && t.Before(s.samples[n-1].T) {
		return fmt.Errorf("timeseries %q: sample at %v precedes last sample %v",
			s.Name, t, s.samples[n-1].T)
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
	s.mom.Add(v)
	return nil
}

// MustAppend is Append for callers that guarantee ordering (e.g. the DES
// clock); it panics on out-of-order samples.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// AppendN appends a batch of samples in one capacity check, validating
// time order across the batch boundary and within the batch. It returns
// an error (leaving s unchanged) on the first ordering violation.
func (s *Series) AppendN(batch []Sample) error {
	last := time.Time{}
	haveLast := false
	if n := len(s.samples); n > 0 {
		last, haveLast = s.samples[n-1].T, true
	}
	for i, smp := range batch {
		if haveLast && smp.T.Before(last) {
			return fmt.Errorf("timeseries %q: batch sample %d at %v precedes %v",
				s.Name, i, smp.T, last)
		}
		last, haveLast = smp.T, true
	}
	s.Reserve(len(batch))
	s.samples = append(s.samples, batch...)
	for _, smp := range batch {
		s.mom.Add(smp.V)
	}
	return nil
}

// Clone returns a deep copy of the series: its own sample backing array
// and moment accumulator, sharing no mutable state with the original.
// Checkpoints clone telemetry tails so a forked simulation can keep
// appending without disturbing the parent.
func (s *Series) Clone() *Series {
	c := &Series{Name: s.Name, Unit: s.Unit, mom: s.mom}
	if len(s.samples) > 0 {
		c.samples = make([]Sample, len(s.samples))
		copy(c.samples, s.samples)
	}
	return c
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns sample i.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns the backing sample slice (shared, not a copy). Callers
// must not mutate it.
func (s *Series) Samples() []Sample { return s.samples }

// Values returns a copy of all sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.samples))
	for i, smp := range s.samples {
		vs[i] = smp.V
	}
	return vs
}

// Span returns the first and last timestamps. ok is false for an empty
// series.
func (s *Series) Span() (from, to time.Time, ok bool) {
	if len(s.samples) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.samples[0].T, s.samples[len(s.samples)-1].T, true
}

// searchCeil returns the index of the first sample at or after t.
func (s *Series) searchCeil(t time.Time) int {
	return sort.Search(len(s.samples), func(i int) bool {
		return !s.samples[i].T.Before(t)
	})
}

// Slice returns a new series containing samples with from <= t < to.
// The returned series shares no mutable state with s beyond the sample
// values themselves.
func (s *Series) Slice(from, to time.Time) View {
	lo, hi := s.searchCeil(from), s.searchCeil(to)
	out := New(s.Name, s.Unit)
	if hi > lo {
		out.samples = append(out.samples, s.samples[lo:hi]...)
		for _, smp := range out.samples {
			out.mom.Add(smp.V)
		}
	}
	return out
}

// Mean returns the arithmetic mean of all values (unweighted by spacing),
// or 0 for an empty series. O(1) from the streaming moments, bit-identical
// to a stats.Mean pass over Values() (same accumulation order).
func (s *Series) Mean() float64 { return s.mom.Mean() }

// MeanBetween returns the mean of samples with from <= t < to, summing
// the window's values in sample order (bit-identical to Slice + Mean)
// without materialising a sub-series.
func (s *Series) MeanBetween(from, to time.Time) float64 {
	lo, hi := s.searchCeil(from), s.searchCeil(to)
	return meanRange(s, lo, hi)
}

// CountBetween returns the number of samples with from <= t < to
// (0 for an inverted window).
func (s *Series) CountBetween(from, to time.Time) int {
	if n := s.searchCeil(to) - s.searchCeil(from); n > 0 {
		return n
	}
	return 0
}

// Summary returns summary statistics over all values: N, Mean, StdDev,
// Min and Max come from the streaming moments in O(1); the percentile
// fields are interpolated from a pooled sorted scratch copy, so repeated
// calls allocate nothing.
func (s *Series) Summary() stats.Summary { return summarize(s, s.mom) }

// TimeWeightedMean integrates the series with a step-function (sample-and-
// hold) interpretation over [from, to] and divides by the duration. Samples
// outside the window bound the edge segments. It returns 0 when the window
// is empty or no sample precedes or lies within it.
func (s *Series) TimeWeightedMean(from, to time.Time) float64 {
	if !to.After(from) || len(s.samples) == 0 {
		return 0
	}
	return timeWeightedMean(s, s.searchCeil(from), from, to)
}

// timeWeightedMean is the shared sample-and-hold integration: v's samples
// from index i (the first at or after `from`) bound the segments, exactly
// the arithmetic — and arithmetic order — the original Series
// implementation used, so every implementation routed through here is
// bit-identical to it.
func timeWeightedMean(v View, i int, from, to time.Time) float64 {
	n := v.Len()
	var integral float64
	cursor := from
	var current float64
	haveCurrent := false
	if i > 0 {
		current = v.At(i - 1).V
		haveCurrent = true
	}
	for ; i < n; i++ {
		smp := v.At(i)
		if !smp.T.Before(to) {
			break
		}
		if haveCurrent {
			integral += current * smp.T.Sub(cursor).Seconds()
		}
		cursor = smp.T
		current = smp.V
		haveCurrent = true
	}
	if !haveCurrent {
		return 0
	}
	integral += current * to.Sub(cursor).Seconds()
	denom := to.Sub(from).Seconds()
	// If the first in-window sample started after `from` with no prior value,
	// only average over the covered portion.
	if first := v.At(0).T; first.After(from) {
		denom = to.Sub(first).Seconds()
		if denom <= 0 {
			return 0
		}
	}
	return integral / denom
}

// meanRange sums values[lo:hi] in index order and divides by the count —
// the same accumulation a stats.Mean pass over the materialised window
// performs, so window means are bit-identical to the old Slice-then-Mean
// path without the copy.
func meanRange(v View, lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += v.At(i).V
	}
	return sum / float64(hi-lo)
}

// summaryScratch pools the sorted-value scratch buffers Summary uses for
// its percentile interpolation, so steady-state Summary calls allocate
// nothing and concurrent readers of a shared series never share a buffer.
var summaryScratch = sync.Pool{New: func() any {
	buf := make([]float64, 0, 1024)
	return &buf
}}

// summarize builds a stats.Summary for v: the moment half in O(1) from
// the streaming moments, the percentiles from a pooled sorted copy.
func summarize(v View, mom stats.Moments) stats.Summary {
	out := stats.Summary{
		N:      mom.N,
		Mean:   mom.Mean(),
		StdDev: mom.StdDev(),
		Min:    mom.Min,
		Max:    mom.Max,
	}
	n := v.Len()
	if n == 0 {
		return out
	}
	bufp := summaryScratch.Get().(*[]float64)
	buf := (*bufp)[:0]
	if cap(buf) < n {
		buf = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		buf = append(buf, v.At(i).V)
	}
	slices.Sort(buf)
	out.P25 = stats.PercentileOfSorted(buf, 25)
	out.Median = stats.PercentileOfSorted(buf, 50)
	out.P75 = stats.PercentileOfSorted(buf, 75)
	*bufp = buf[:0]
	summaryScratch.Put(bufp)
	return out
}

// WindowAccumulator computes time-weighted window means over a series of
// consecutive (non-decreasing) windows in one forward pass: the cursor
// remembers where the previous window started, so sweeping M windows over
// an N-sample series is O(N+M) instead of M binary searches plus rescans.
// Each call returns exactly what View.TimeWeightedMean would — same
// arithmetic, same order — so swapping it into an accounting loop (see
// emissions.AccountSeries) changes cost, not results. Windows passed to
// successive calls must have non-decreasing `from`; the series must not
// be appended to while accumulating.
type WindowAccumulator struct {
	v View
	// lo is the index of the first sample at or after the previous
	// window's `from` (the search result the cursor replaces).
	lo int
}

// Accumulator returns a WindowAccumulator positioned at the series start.
func (s *Series) Accumulator() *WindowAccumulator {
	return &WindowAccumulator{v: s}
}

// TimeWeightedMean is View.TimeWeightedMean for the next window in the
// sweep. It is bit-identical to the direct method for every window.
func (a *WindowAccumulator) TimeWeightedMean(from, to time.Time) float64 {
	v := a.v
	n := v.Len()
	if !to.After(from) || n == 0 {
		return 0
	}
	// Advance the cursor to the first sample at or after `from` — the
	// same index a binary search finds, reached monotonically.
	for a.lo < n && v.At(a.lo).T.Before(from) {
		a.lo++
	}
	return timeWeightedMean(v, a.lo, from, to)
}

// Resample returns a new series sampled every step using sample-and-hold
// interpolation, starting at from (inclusive) and ending before to.
func (s *Series) Resample(from, to time.Time, step time.Duration) *Series {
	if step <= 0 {
		panic("timeseries: non-positive resample step")
	}
	out := New(s.Name, s.Unit)
	for t := from; t.Before(to); t = t.Add(step) {
		v, ok := s.ValueAt(t)
		if ok {
			out.MustAppend(t, v)
		}
	}
	return out
}

// ValueAt returns the sample-and-hold value in force at time t: the value of
// the latest sample with timestamp <= t. ok is false if t precedes the first
// sample.
func (s *Series) ValueAt(t time.Time) (float64, bool) {
	i := sort.Search(len(s.samples), func(i int) bool {
		return s.samples[i].T.After(t)
	})
	if i == 0 {
		return 0, false
	}
	return s.samples[i-1].V, true
}

// MemoryFootprint returns the series' retained bytes: struct header,
// label strings and the full backing capacity (capacity, not length —
// over-reservation is real memory).
func (s *Series) MemoryFootprint() int64 {
	return int64(unsafe.Sizeof(*s)) +
		int64(len(s.Name)) + int64(len(s.Unit)) +
		int64(cap(s.samples))*int64(unsafe.Sizeof(Sample{}))
}

// StepChange describes a detected level shift in a series.
type StepChange struct {
	At          time.Time
	BeforeMean  float64
	AfterMean   float64
	RelativeChg float64
}

// DetectStep finds the split point that maximises the between-segment mean
// difference, comparing the window means either side. It is a deliberately
// simple estimator: the operational changes in the paper are large level
// shifts, not subtle trends. Returns ok=false when fewer than 2*minSeg
// samples exist or no shift exceeds threshold (relative).
func (s *Series) DetectStep(minSeg int, threshold float64) (StepChange, bool) {
	return detectStep(s, minSeg, threshold)
}

func detectStep(v View, minSeg int, threshold float64) (StepChange, bool) {
	n := v.Len()
	if minSeg < 1 || n < 2*minSeg {
		return StepChange{}, false
	}
	// Prefix sums for O(n) scanning.
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + v.At(i).V
	}
	best := StepChange{}
	bestAbs := 0.0
	found := false
	for k := minSeg; k <= n-minSeg; k++ {
		mb := prefix[k] / float64(k)
		ma := (prefix[n] - prefix[k]) / float64(n-k)
		if mb == 0 {
			continue
		}
		rel := (ma - mb) / mb
		if math.Abs(rel) > bestAbs && math.Abs(rel) >= threshold {
			bestAbs = math.Abs(rel)
			best = StepChange{
				At:          v.At(k).T,
				BeforeMean:  mb,
				AfterMean:   ma,
				RelativeChg: rel,
			}
			found = true
		}
	}
	return best, found
}

// WriteCSV writes "time,value" rows with an optional header.
func (s *Series) WriteCSV(w io.Writer, header bool) error {
	return writeCSV(s, w, header)
}

func writeCSV(v View, w io.Writer, header bool) error {
	name, unit := v.Label()
	if header {
		if _, err := fmt.Fprintf(w, "time,%s_%s\n", csvSafe(name), csvSafe(unit)); err != nil {
			return err
		}
	}
	for i, n := 0, v.Len(); i < n; i++ {
		smp := v.At(i)
		if _, err := fmt.Fprintf(w, "%s,%.6g\n", smp.T.UTC().Format(time.RFC3339), smp.V); err != nil {
			return err
		}
	}
	return nil
}

func csvSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ',', '\n', '\r':
			return '_'
		}
		return r
	}, s)
}

// RenderASCII draws the series as a rows x cols ASCII chart with a mean
// line, in the spirit of the paper's Figures 1-3. It returns "" for series
// with fewer than two samples.
func (s *Series) RenderASCII(rows, cols int) string {
	return renderASCII(s, s.mom, rows, cols)
}

func renderASCII(v View, mom stats.Moments, rows, cols int) string {
	n := v.Len()
	if n < 2 || rows < 3 || cols < 8 {
		return ""
	}
	min, max := mom.Min, mom.Max
	if max == min {
		max = min + 1
	}
	pad := (max - min) * 0.05
	min, max = min-pad, max+pad
	mean := mom.Mean()

	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	// Bucket samples into columns and plot column means.
	colSum := make([]float64, cols)
	colN := make([]int, cols)
	for i := 0; i < n; i++ {
		c := i * cols / n
		colSum[c] += v.At(i).V
		colN[c]++
	}
	rowOf := func(val float64) int {
		r := int((max - val) / (max - min) * float64(rows-1))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	meanRow := rowOf(mean)
	for c := 0; c < cols; c++ {
		if grid[meanRow][c] == ' ' {
			grid[meanRow][c] = '-'
		}
	}
	for c := 0; c < cols; c++ {
		if colN[c] == 0 {
			continue
		}
		grid[rowOf(colSum[c]/float64(colN[c]))][c] = '*'
	}
	name, unit := v.Label()
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]  (mean %.4g, - marks mean)\n", name, unit, mean)
	fmt.Fprintf(&b, "%10.4g |%s|\n", max, string(grid[0]))
	for r := 1; r < rows-1; r++ {
		fmt.Fprintf(&b, "%10s |%s|\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g |%s|\n", min, string(grid[rows-1]))
	return b.String()
}

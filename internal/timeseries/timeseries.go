// Package timeseries implements the time-series container used by the
// facility telemetry pipeline: append-only (time, value) samples with
// window statistics, resampling, step-change detection and export helpers.
//
// Timestamps are time.Time; samples must be appended in non-decreasing time
// order, which is what a simulation clock naturally produces.
//
// A Series is the twin's equivalent of one PMDB cabinet-power trace: the
// paper's Figures 1-3 are window means over exactly such series, and the
// step-change detector recovers the dated operational changes from them.
package timeseries

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/stats"
)

// Sample is one (timestamp, value) observation.
type Sample struct {
	T time.Time
	V float64
}

// Series is an ordered collection of samples with a name and a unit label.
type Series struct {
	Name string
	Unit string

	samples []Sample
}

// New creates an empty series.
func New(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// NewWithCapacity creates an empty series pre-sized for `capacity`
// samples. Producers that know their horizon — a telemetry meter sampling
// every Interval until the run end, a grid trace at a fixed step — should
// size up front so a year of samples is one allocation instead of a
// doubling cascade.
func NewWithCapacity(name, unit string, capacity int) *Series {
	s := New(name, unit)
	if capacity > 0 {
		s.samples = make([]Sample, 0, capacity)
	}
	return s
}

// Reserve grows the sample capacity to hold at least n further samples
// without reallocation.
func (s *Series) Reserve(n int) {
	if free := cap(s.samples) - len(s.samples); free < n {
		grown := make([]Sample, len(s.samples), len(s.samples)+n)
		copy(grown, s.samples)
		s.samples = grown
	}
}

// Append adds a sample. It returns an error if t is before the last sample's
// timestamp (equal timestamps are allowed: meters may batch-report).
func (s *Series) Append(t time.Time, v float64) error {
	if n := len(s.samples); n > 0 && t.Before(s.samples[n-1].T) {
		return fmt.Errorf("timeseries %q: sample at %v precedes last sample %v",
			s.Name, t, s.samples[n-1].T)
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
	return nil
}

// MustAppend is Append for callers that guarantee ordering (e.g. the DES
// clock); it panics on out-of-order samples.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// AppendN appends a batch of samples in one capacity check, validating
// time order across the batch boundary and within the batch. It returns
// an error (leaving s unchanged) on the first ordering violation.
func (s *Series) AppendN(batch []Sample) error {
	last := time.Time{}
	haveLast := false
	if n := len(s.samples); n > 0 {
		last, haveLast = s.samples[n-1].T, true
	}
	for i, smp := range batch {
		if haveLast && smp.T.Before(last) {
			return fmt.Errorf("timeseries %q: batch sample %d at %v precedes %v",
				s.Name, i, smp.T, last)
		}
		last, haveLast = smp.T, true
	}
	s.Reserve(len(batch))
	s.samples = append(s.samples, batch...)
	return nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns sample i.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns the backing sample slice (shared, not a copy). Callers
// must not mutate it.
func (s *Series) Samples() []Sample { return s.samples }

// Values returns a copy of all sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.samples))
	for i, smp := range s.samples {
		vs[i] = smp.V
	}
	return vs
}

// Span returns the first and last timestamps. ok is false for an empty
// series.
func (s *Series) Span() (from, to time.Time, ok bool) {
	if len(s.samples) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.samples[0].T, s.samples[len(s.samples)-1].T, true
}

// Slice returns a new series view containing samples with from <= t < to.
// The returned series shares no mutable state with s beyond the sample
// values themselves.
func (s *Series) Slice(from, to time.Time) *Series {
	lo := sort.Search(len(s.samples), func(i int) bool {
		return !s.samples[i].T.Before(from)
	})
	hi := sort.Search(len(s.samples), func(i int) bool {
		return !s.samples[i].T.Before(to)
	})
	out := New(s.Name, s.Unit)
	out.samples = append(out.samples, s.samples[lo:hi]...)
	return out
}

// Mean returns the arithmetic mean of all values (unweighted by spacing),
// or 0 for an empty series.
func (s *Series) Mean() float64 { return stats.Mean(s.Values()) }

// MeanBetween returns the mean of samples with from <= t < to.
func (s *Series) MeanBetween(from, to time.Time) float64 {
	return s.Slice(from, to).Mean()
}

// Summary returns summary statistics over all values.
func (s *Series) Summary() stats.Summary { return stats.Summarize(s.Values()) }

// TimeWeightedMean integrates the series with a step-function (sample-and-
// hold) interpretation over [from, to] and divides by the duration. Samples
// outside the window bound the edge segments. It returns 0 when the window
// is empty or no sample precedes or lies within it.
func (s *Series) TimeWeightedMean(from, to time.Time) float64 {
	if !to.After(from) || len(s.samples) == 0 {
		return 0
	}
	// Find the first sample at or after `from`; the value in force at the
	// window start is the previous sample (if any), else the first in-window
	// sample applies from its own timestamp.
	i := sort.Search(len(s.samples), func(i int) bool {
		return !s.samples[i].T.Before(from)
	})
	var integral float64
	cursor := from
	var current float64
	haveCurrent := false
	if i > 0 {
		current = s.samples[i-1].V
		haveCurrent = true
	}
	for ; i < len(s.samples) && s.samples[i].T.Before(to); i++ {
		t := s.samples[i].T
		if haveCurrent {
			integral += current * t.Sub(cursor).Seconds()
		}
		cursor = t
		current = s.samples[i].V
		haveCurrent = true
	}
	if !haveCurrent {
		return 0
	}
	integral += current * to.Sub(cursor).Seconds()
	denom := to.Sub(from).Seconds()
	// If the first in-window sample started after `from` with no prior value,
	// only average over the covered portion.
	if s.samples[0].T.After(from) {
		denom = to.Sub(s.samples[0].T).Seconds()
		if denom <= 0 {
			return 0
		}
	}
	return integral / denom
}

// WindowAccumulator computes time-weighted window means over a series of
// consecutive (non-decreasing) windows in one forward pass: the cursor
// remembers where the previous window started, so sweeping M windows over
// an N-sample series is O(N+M) instead of M binary searches plus rescans.
// Each call returns exactly what Series.TimeWeightedMean would — same
// arithmetic, same order — so swapping it into an accounting loop (see
// emissions.AccountSeries) changes cost, not results. Windows passed to
// successive calls must have non-decreasing `from`; the series must not
// be appended to while accumulating.
type WindowAccumulator struct {
	s *Series
	// lo is the index of the first sample at or after the previous
	// window's `from` (the sort.Search result the cursor replaces).
	lo int
}

// Accumulator returns a WindowAccumulator positioned at the series start.
func (s *Series) Accumulator() *WindowAccumulator {
	return &WindowAccumulator{s: s}
}

// TimeWeightedMean is Series.TimeWeightedMean for the next window in the
// sweep. It is bit-identical to the Series method for every window.
func (a *WindowAccumulator) TimeWeightedMean(from, to time.Time) float64 {
	s := a.s
	if !to.After(from) || len(s.samples) == 0 {
		return 0
	}
	// Advance the cursor to the first sample at or after `from` — the
	// same index sort.Search finds, reached monotonically.
	for a.lo < len(s.samples) && s.samples[a.lo].T.Before(from) {
		a.lo++
	}
	i := a.lo
	var integral float64
	cursor := from
	var current float64
	haveCurrent := false
	if i > 0 {
		current = s.samples[i-1].V
		haveCurrent = true
	}
	for ; i < len(s.samples) && s.samples[i].T.Before(to); i++ {
		t := s.samples[i].T
		if haveCurrent {
			integral += current * t.Sub(cursor).Seconds()
		}
		cursor = t
		current = s.samples[i].V
		haveCurrent = true
	}
	if !haveCurrent {
		return 0
	}
	integral += current * to.Sub(cursor).Seconds()
	denom := to.Sub(from).Seconds()
	if s.samples[0].T.After(from) {
		denom = to.Sub(s.samples[0].T).Seconds()
		if denom <= 0 {
			return 0
		}
	}
	return integral / denom
}

// Resample returns a new series sampled every step using sample-and-hold
// interpolation, starting at from (inclusive) and ending before to.
func (s *Series) Resample(from, to time.Time, step time.Duration) *Series {
	if step <= 0 {
		panic("timeseries: non-positive resample step")
	}
	out := New(s.Name, s.Unit)
	for t := from; t.Before(to); t = t.Add(step) {
		v, ok := s.ValueAt(t)
		if ok {
			out.MustAppend(t, v)
		}
	}
	return out
}

// ValueAt returns the sample-and-hold value in force at time t: the value of
// the latest sample with timestamp <= t. ok is false if t precedes the first
// sample.
func (s *Series) ValueAt(t time.Time) (float64, bool) {
	i := sort.Search(len(s.samples), func(i int) bool {
		return s.samples[i].T.After(t)
	})
	if i == 0 {
		return 0, false
	}
	return s.samples[i-1].V, true
}

// StepChange describes a detected level shift in a series.
type StepChange struct {
	At          time.Time
	BeforeMean  float64
	AfterMean   float64
	RelativeChg float64
}

// DetectStep finds the split point that maximises the between-segment mean
// difference, comparing the window means either side. It is a deliberately
// simple estimator: the operational changes in the paper are large level
// shifts, not subtle trends. Returns ok=false when fewer than 2*minSeg
// samples exist or no shift exceeds threshold (relative).
func (s *Series) DetectStep(minSeg int, threshold float64) (StepChange, bool) {
	n := len(s.samples)
	if minSeg < 1 || n < 2*minSeg {
		return StepChange{}, false
	}
	vs := s.Values()
	// Prefix sums for O(n) scanning.
	prefix := make([]float64, n+1)
	for i, v := range vs {
		prefix[i+1] = prefix[i] + v
	}
	best := StepChange{}
	bestAbs := 0.0
	found := false
	for k := minSeg; k <= n-minSeg; k++ {
		mb := prefix[k] / float64(k)
		ma := (prefix[n] - prefix[k]) / float64(n-k)
		if mb == 0 {
			continue
		}
		rel := (ma - mb) / mb
		if math.Abs(rel) > bestAbs && math.Abs(rel) >= threshold {
			bestAbs = math.Abs(rel)
			best = StepChange{
				At:          s.samples[k].T,
				BeforeMean:  mb,
				AfterMean:   ma,
				RelativeChg: rel,
			}
			found = true
		}
	}
	return best, found
}

// WriteCSV writes "time,value" rows with an optional header.
func (s *Series) WriteCSV(w io.Writer, header bool) error {
	if header {
		if _, err := fmt.Fprintf(w, "time,%s_%s\n", csvSafe(s.Name), csvSafe(s.Unit)); err != nil {
			return err
		}
	}
	for _, smp := range s.samples {
		if _, err := fmt.Fprintf(w, "%s,%.6g\n", smp.T.UTC().Format(time.RFC3339), smp.V); err != nil {
			return err
		}
	}
	return nil
}

func csvSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ',', '\n', '\r':
			return '_'
		}
		return r
	}, s)
}

// RenderASCII draws the series as a rows x cols ASCII chart with a mean
// line, in the spirit of the paper's Figures 1-3. It returns "" for series
// with fewer than two samples.
func (s *Series) RenderASCII(rows, cols int) string {
	if len(s.samples) < 2 || rows < 3 || cols < 8 {
		return ""
	}
	vs := s.Values()
	min, max := stats.MinMax(vs)
	if max == min {
		max = min + 1
	}
	pad := (max - min) * 0.05
	min, max = min-pad, max+pad
	mean := stats.Mean(vs)

	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	// Bucket samples into columns and plot column means.
	colSum := make([]float64, cols)
	colN := make([]int, cols)
	for i, smp := range s.samples {
		c := i * cols / len(s.samples)
		colSum[c] += smp.V
		colN[c]++
	}
	rowOf := func(v float64) int {
		r := int((max - v) / (max - min) * float64(rows-1))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	meanRow := rowOf(mean)
	for c := 0; c < cols; c++ {
		if grid[meanRow][c] == ' ' {
			grid[meanRow][c] = '-'
		}
	}
	for c := 0; c < cols; c++ {
		if colN[c] == 0 {
			continue
		}
		grid[rowOf(colSum[c]/float64(colN[c]))][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]  (mean %.4g, - marks mean)\n", s.Name, s.Unit, mean)
	fmt.Fprintf(&b, "%10.4g |%s|\n", max, string(grid[0]))
	for r := 1; r < rows-1; r++ {
		fmt.Fprintf(&b, "%10s |%s|\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g |%s|\n", min, string(grid[rows-1]))
	return b.String()
}

package timeseries

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func mkRegular(step time.Duration, vals ...float64) *RegularSeries {
	r := NewRegular("power", "kW", step, len(vals))
	for i, v := range vals {
		r.MustAppend(t0.Add(time.Duration(i)*step), v)
	}
	return r
}

func TestRegularAppendCadence(t *testing.T) {
	r := NewRegular("x", "u", time.Hour, 0)
	if err := r.Append(t0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(t0.Add(time.Hour), 2); err != nil {
		t.Fatal(err)
	}
	// Off-cadence: early, late, duplicate.
	for _, bad := range []time.Duration{90 * time.Minute, 3 * time.Hour, time.Hour} {
		if err := r.Append(t0.Add(bad), 9); err == nil {
			t.Fatalf("off-cadence append at +%v accepted", bad)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if from, to, ok := r.Span(); !ok || !from.Equal(t0) || !to.Equal(t0.Add(time.Hour)) {
		t.Fatalf("span = %v %v %v", from, to, ok)
	}
}

func TestRegularMustAppendPanics(t *testing.T) {
	r := mkRegular(time.Hour, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("off-cadence MustAppend did not panic")
		}
	}()
	r.MustAppend(t0.Add(30*time.Minute), 0)
}

func TestRegularValueAtEdges(t *testing.T) {
	r := mkRegular(time.Hour, 10, 20, 30)
	if _, ok := r.ValueAt(t0.Add(-time.Second)); ok {
		t.Fatal("value before epoch reported ok")
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10}, {30 * time.Minute, 10}, {time.Hour, 20}, {5 * time.Hour, 30},
	}
	for _, c := range cases {
		v, ok := r.ValueAt(t0.Add(c.at))
		if !ok || v != c.want {
			t.Errorf("ValueAt(+%v) = %v,%v want %v", c.at, v, ok, c.want)
		}
	}
	if _, ok := NewRegular("e", "u", time.Hour, 0).ValueAt(t0); ok {
		t.Fatal("empty series reported a value")
	}
}

func TestRegularSliceStaysRegular(t *testing.T) {
	r := mkRegular(time.Hour, 10, 20, 30, 40, 50)
	sl := r.Slice(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if sl.Len() != 2 {
		t.Fatalf("slice len = %d", sl.Len())
	}
	reg, ok := sl.(*RegularSeries)
	if !ok {
		t.Fatalf("slice of a regular series is %T", sl)
	}
	if reg.Step() != time.Hour {
		t.Fatalf("slice step = %v", reg.Step())
	}
	if got := sl.Mean(); got != 25 {
		t.Fatalf("slice mean = %v", got)
	}
	if empty := r.Slice(t0.Add(10*time.Hour), t0.Add(20*time.Hour)); empty.Len() != 0 {
		t.Fatalf("out-of-range slice len = %d", empty.Len())
	}
}

func TestRegularCSVAndRender(t *testing.T) {
	r := mkRegular(time.Hour, 1.5, 2.5)
	var b strings.Builder
	if err := r.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "time,power_kW\n") ||
		!strings.Contains(b.String(), "2021-12-01T00:00:00Z,1.5") {
		t.Fatalf("csv output wrong: %q", b.String())
	}
	big := NewRegular("p", "kW", time.Hour, 0)
	for i := 0; i < 100; i++ {
		v := 3220.0
		if i >= 50 {
			v = 2530
		}
		big.MustAppend(t0.Add(time.Duration(i)*time.Hour), v)
	}
	if out := big.RenderASCII(10, 60); !strings.Contains(out, "*") {
		t.Fatalf("render missing marks:\n%s", out)
	}
	if step, ok := big.DetectStep(10, 0.05); !ok || !step.At.Equal(t0.Add(50*time.Hour)) {
		t.Fatalf("step = %+v ok=%v", step, ok)
	}
}

func TestRegularClipAndFootprint(t *testing.T) {
	r := NewRegular("x", "u", time.Hour, 1000)
	for i := 0; i < 10; i++ {
		r.MustAppend(t0.Add(time.Duration(i)*time.Hour), float64(i))
	}
	before := r.MemoryFootprint()
	r.Clip()
	after := r.MemoryFootprint()
	if after >= before {
		t.Fatalf("Clip did not shrink footprint: %d -> %d", before, after)
	}
	if r.Len() != 10 || r.At(9).V != 9 {
		t.Fatal("Clip lost samples")
	}
	// A Series sample costs 4x a RegularSeries sample (32 vs 8 bytes);
	// once the struct headers are amortised the footprints must reflect
	// that.
	const n = 1000
	s := NewWithCapacity("x", "u", n)
	big := NewRegular("x", "u", time.Hour, n)
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Hour)
		s.MustAppend(at, float64(i))
		big.MustAppend(at, float64(i))
	}
	if s.MemoryFootprint() < 3*big.MemoryFootprint() {
		t.Fatalf("Series footprint %d not ~4x Regular %d", s.MemoryFootprint(), big.MemoryFootprint())
	}
}

// TestPropertyRegularMatchesSeries is the reference-model property test:
// on identical fixed-interval data, RegularSeries must agree bit-exactly
// with plain Series on every read-API query — same indices found, same
// arithmetic performed.
func TestPropertyRegularMatchesSeries(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		step := time.Duration(1+rnd.Intn(120)) * time.Minute
		n := 2 + rnd.Intn(400)
		ref := New("x", "u")
		reg := NewRegular("x", "u", step, 0)
		for i := 0; i < n; i++ {
			at := t0.Add(time.Duration(i) * step)
			v := rnd.NormFloat64() * 1000
			ref.MustAppend(at, v)
			reg.MustAppend(at, v)
		}
		span := time.Duration(n) * step

		if a, b := ref.Mean(), reg.Mean(); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: Mean %v != %v", trial, a, b)
		}
		sa, sb := ref.Summary(), reg.Summary()
		if sa != sb {
			t.Fatalf("trial %d: Summary %+v != %+v", trial, sa, sb)
		}

		accRef, accReg := ref.Accumulator(), reg.Accumulator()
		from := t0.Add(-time.Duration(rnd.Intn(3)) * step)
		for q := 0; q < 200; q++ {
			at := t0.Add(time.Duration(rnd.Int63n(int64(span+4*step))) - 2*step)
			va, oka := ref.ValueAt(at)
			vb, okb := reg.ValueAt(at)
			if oka != okb || math.Float64bits(va) != math.Float64bits(vb) {
				t.Fatalf("trial %d: ValueAt(%v) = (%v,%v) != (%v,%v)", trial, at, va, oka, vb, okb)
			}

			to := at.Add(time.Duration(rnd.Int63n(int64(span))))
			ma := ref.MeanBetween(at, to)
			mb := reg.MeanBetween(at, to)
			if math.Float64bits(ma) != math.Float64bits(mb) {
				t.Fatalf("trial %d: MeanBetween(%v,%v) = %v != %v", trial, at, to, ma, mb)
			}
			if ca, cb := ref.CountBetween(at, to), reg.CountBetween(at, to); ca != cb {
				t.Fatalf("trial %d: CountBetween = %d != %d", trial, ca, cb)
			}

			ta := ref.TimeWeightedMean(at, to)
			tb := reg.TimeWeightedMean(at, to)
			if math.Float64bits(ta) != math.Float64bits(tb) {
				t.Fatalf("trial %d: TimeWeightedMean(%v,%v) = %v != %v", trial, at, to, ta, tb)
			}

			// Monotone window sweep through both accumulators.
			wTo := from.Add(time.Duration(rnd.Int63n(int64(3 * step))))
			wa := accRef.TimeWeightedMean(from, wTo)
			wb := accReg.TimeWeightedMean(from, wTo)
			if math.Float64bits(wa) != math.Float64bits(wb) {
				t.Fatalf("trial %d: accumulator window (%v,%v) = %v != %v", trial, from, wTo, wa, wb)
			}
			from = wTo
		}

		// Slices over random windows agree sample for sample.
		lo := t0.Add(time.Duration(rnd.Int63n(int64(span))) - step)
		hi := lo.Add(time.Duration(rnd.Int63n(int64(span))))
		sla, slb := ref.Slice(lo, hi), reg.Slice(lo, hi)
		if sla.Len() != slb.Len() {
			t.Fatalf("trial %d: slice lens %d != %d", trial, sla.Len(), slb.Len())
		}
		for i := 0; i < sla.Len(); i++ {
			a, b := sla.At(i), slb.At(i)
			if !a.T.Equal(b.T) || math.Float64bits(a.V) != math.Float64bits(b.V) {
				t.Fatalf("trial %d: slice[%d] = %v != %v", trial, i, a, b)
			}
		}
	}
}

// The alloc-regression satellite: Mean and Summary must not allocate on
// either storage layout (Mean is O(1) from moments; Summary's percentile
// scratch is pooled), and the regular append path must be allocation-free
// once capacity is reserved.
func TestMeanAndSummaryAllocFree(t *testing.T) {
	series := mk(make([]float64, 4096)...)
	regular := mkRegular(time.Minute, make([]float64, 4096)...)
	views := map[string]View{"series": series, "regular": regular}
	for name, v := range views {
		if n := testing.AllocsPerRun(100, func() { _ = v.Mean() }); n != 0 {
			t.Errorf("%s: Mean allocates %v per call", name, n)
		}
		if n := testing.AllocsPerRun(100, func() { _ = v.Summary() }); n != 0 {
			t.Errorf("%s: Summary allocates %v per call", name, n)
		}
		if n := testing.AllocsPerRun(100, func() { _ = v.MeanBetween(t0, t0.Add(time.Hour)) }); n != 0 {
			t.Errorf("%s: MeanBetween allocates %v per call", name, n)
		}
	}
}

func TestRegularAppendAllocFree(t *testing.T) {
	r := NewRegular("x", "u", time.Second, 200)
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		r.MustAppend(t0.Add(time.Duration(i)*time.Second), float64(i))
		i++
	}); n != 0 {
		t.Errorf("pre-sized regular append allocates %v per call", n)
	}
}

// Inverted windows (from after to) must degrade to empty results on both
// layouts — never panic, never go negative.
func TestInvertedWindowsAreEmpty(t *testing.T) {
	views := map[string]View{
		"series":  mk(1, 2, 3, 4, 5),
		"regular": mkRegular(time.Hour, 1, 2, 3, 4, 5),
	}
	from, to := t0.Add(4*time.Hour), t0.Add(time.Hour) // inverted
	for name, v := range views {
		if got := v.Slice(from, to); got.Len() != 0 {
			t.Errorf("%s: inverted Slice has %d samples", name, got.Len())
		}
		if got := v.CountBetween(from, to); got != 0 {
			t.Errorf("%s: inverted CountBetween = %d", name, got)
		}
		if got := v.MeanBetween(from, to); got != 0 {
			t.Errorf("%s: inverted MeanBetween = %v", name, got)
		}
		if got := v.TimeWeightedMean(from, to); got != 0 {
			t.Errorf("%s: inverted TimeWeightedMean = %v", name, got)
		}
	}
}

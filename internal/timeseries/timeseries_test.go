package timeseries

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func mk(vals ...float64) *Series {
	s := New("power", "kW")
	for i, v := range vals {
		s.MustAppend(t0.Add(time.Duration(i)*time.Hour), v)
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := New("x", "u")
	if err := s.Append(t0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0, 2); err != nil { // equal timestamps allowed
		t.Fatal(err)
	}
	if err := s.Append(t0.Add(-time.Second), 3); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMustAppendPanics(t *testing.T) {
	s := mk(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend out of order did not panic")
		}
	}()
	s.MustAppend(t0.Add(-time.Hour), 0)
}

func TestMeanAndSpan(t *testing.T) {
	s := mk(1, 2, 3, 4)
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
	from, to, ok := s.Span()
	if !ok || !from.Equal(t0) || !to.Equal(t0.Add(3*time.Hour)) {
		t.Fatalf("span = %v %v %v", from, to, ok)
	}
	if _, _, ok := New("e", "u").Span(); ok {
		t.Fatal("empty span reported ok")
	}
}

func TestSliceAndMeanBetween(t *testing.T) {
	s := mk(10, 20, 30, 40, 50)
	sl := s.Slice(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if sl.Len() != 2 {
		t.Fatalf("slice len = %d", sl.Len())
	}
	if got := sl.Mean(); got != 25 {
		t.Fatalf("slice mean = %v", got)
	}
	if got := s.MeanBetween(t0.Add(3*time.Hour), t0.Add(100*time.Hour)); got != 45 {
		t.Fatalf("MeanBetween = %v", got)
	}
}

func TestValueAt(t *testing.T) {
	s := mk(10, 20, 30)
	if _, ok := s.ValueAt(t0.Add(-time.Second)); ok {
		t.Fatal("value before first sample reported ok")
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10}, {30 * time.Minute, 10}, {time.Hour, 20}, {5 * time.Hour, 30},
	}
	for _, c := range cases {
		v, ok := s.ValueAt(t0.Add(c.at))
		if !ok || v != c.want {
			t.Errorf("ValueAt(+%v) = %v,%v want %v", c.at, v, ok, c.want)
		}
	}
}

func TestTimeWeightedMean(t *testing.T) {
	// 10 kW for 1h then 30 kW for 1h -> 20 kW average over the 2h window.
	s := mk(10, 30)
	got := s.TimeWeightedMean(t0, t0.Add(2*time.Hour))
	if got != 20 {
		t.Fatalf("time-weighted mean = %v, want 20", got)
	}
	// Asymmetric window: 10 for 0.5h, 30 for 1h over 1.5h -> (5+30)/1.5.
	got = s.TimeWeightedMean(t0.Add(30*time.Minute), t0.Add(2*time.Hour))
	want := (10*0.5 + 30*1.0) / 1.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("asymmetric TW mean = %v, want %v", got, want)
	}
	if got := New("e", "u").TimeWeightedMean(t0, t0.Add(time.Hour)); got != 0 {
		t.Fatalf("empty TW mean = %v", got)
	}
	if got := s.TimeWeightedMean(t0, t0); got != 0 {
		t.Fatalf("zero-width TW mean = %v", got)
	}
}

func TestTimeWeightedMeanWindowBeforeData(t *testing.T) {
	s := mk(10, 30)
	// Window starting 1h before data: only covered portion averaged.
	got := s.TimeWeightedMean(t0.Add(-time.Hour), t0.Add(2*time.Hour))
	if got != 20 {
		t.Fatalf("partial-cover TW mean = %v, want 20", got)
	}
}

func TestResample(t *testing.T) {
	s := mk(10, 20, 30)
	r := s.Resample(t0, t0.Add(3*time.Hour), 30*time.Minute)
	if r.Len() != 6 {
		t.Fatalf("resample len = %d", r.Len())
	}
	want := []float64{10, 10, 20, 20, 30, 30}
	for i, w := range want {
		if r.At(i).V != w {
			t.Errorf("resample[%d] = %v, want %v", i, r.At(i).V, w)
		}
	}
}

func TestDetectStep(t *testing.T) {
	// 3220 -> 3010 style step.
	s := New("p", "kW")
	for i := 0; i < 50; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*time.Hour), 3220)
	}
	for i := 50; i < 100; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*time.Hour), 3010)
	}
	step, ok := s.DetectStep(10, 0.02)
	if !ok {
		t.Fatal("step not detected")
	}
	if math.Abs(step.BeforeMean-3220) > 1 || math.Abs(step.AfterMean-3010) > 1 {
		t.Fatalf("step means = %v -> %v", step.BeforeMean, step.AfterMean)
	}
	if math.Abs(step.RelativeChg+0.0652) > 0.005 {
		t.Fatalf("relative change = %v", step.RelativeChg)
	}
	if !step.At.Equal(t0.Add(50 * time.Hour)) {
		t.Fatalf("step at %v", step.At)
	}
}

func TestDetectStepNone(t *testing.T) {
	s := mk(100, 100, 100, 100, 100, 100, 100, 100)
	if _, ok := s.DetectStep(2, 0.01); ok {
		t.Fatal("step detected in flat series")
	}
	if _, ok := mk(1).DetectStep(2, 0.01); ok {
		t.Fatal("step detected in tiny series")
	}
}

func TestWriteCSV(t *testing.T) {
	s := mk(1.5, 2.5)
	var b strings.Builder
	if err := s.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time,power_kW\n") {
		t.Fatalf("csv header missing: %q", out)
	}
	if !strings.Contains(out, "2021-12-01T00:00:00Z,1.5") {
		t.Fatalf("csv row missing: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("csv line count = %d", lines)
	}
}

func TestRenderASCII(t *testing.T) {
	s := New("p", "kW")
	for i := 0; i < 200; i++ {
		v := 3220.0
		if i >= 100 {
			v = 2530
		}
		s.MustAppend(t0.Add(time.Duration(i)*time.Hour), v)
	}
	out := s.RenderASCII(10, 60)
	if out == "" {
		t.Fatal("empty render")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "kW") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if got := mk(1).RenderASCII(10, 60); got != "" {
		t.Fatal("render of single sample should be empty")
	}
}

// Property: Slice(from,to) contains exactly the samples in [from, to).
func TestPropertySliceBounds(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		s := New("x", "u")
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.MustAppend(t0.Add(time.Duration(i)*time.Minute), v)
		}
		lo, hi := int(a%64), int(b%64)
		if lo > hi {
			lo, hi = hi, lo
		}
		from, to := t0.Add(time.Duration(lo)*time.Minute), t0.Add(time.Duration(hi)*time.Minute)
		sl := s.Slice(from, to)
		for i := 0; i < sl.Len(); i++ {
			if smp := sl.At(i); smp.T.Before(from) || !smp.T.Before(to) {
				return false
			}
		}
		// Count check.
		want := 0
		for _, smp := range s.Samples() {
			if !smp.T.Before(from) && smp.T.Before(to) {
				want++
			}
		}
		return sl.Len() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: time-weighted mean lies within [min, max] of the involved values.
func TestPropertyTWMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := New("x", "u")
		min, max := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				v = 0
			}
			s.MustAppend(t0.Add(time.Duration(i)*time.Minute), v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		got := s.TimeWeightedMean(t0, t0.Add(time.Duration(len(raw))*time.Minute))
		return got >= min-1e-9 && got <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendNMatchesSequentialAppend(t *testing.T) {
	seq := New("seq", "u")
	batch := New("batch", "u")
	var samples []Sample
	for i := 0; i < 100; i++ {
		ts := t0.Add(time.Duration(i/3) * time.Minute) // repeated stamps allowed
		seq.MustAppend(ts, float64(i))
		samples = append(samples, Sample{T: ts, V: float64(i)})
	}
	if err := batch.AppendN(samples[:50]); err != nil {
		t.Fatal(err)
	}
	if err := batch.AppendN(samples[50:]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Samples(), batch.Samples()) {
		t.Error("AppendN contents differ from sequential Append")
	}
}

func TestAppendNRejectsDisorder(t *testing.T) {
	s := New("x", "u")
	s.MustAppend(t0.Add(time.Hour), 1)
	// Batch starting before the last appended sample.
	if err := s.AppendN([]Sample{{T: t0, V: 2}}); err == nil {
		t.Error("batch preceding the series tail was accepted")
	}
	if s.Len() != 1 {
		t.Errorf("failed AppendN mutated the series: len = %d", s.Len())
	}
	// Disorder inside the batch itself.
	err := s.AppendN([]Sample{
		{T: t0.Add(3 * time.Hour), V: 1},
		{T: t0.Add(2 * time.Hour), V: 2},
	})
	if err == nil {
		t.Error("out-of-order batch was accepted")
	}
	if s.Len() != 1 {
		t.Errorf("failed AppendN mutated the series: len = %d", s.Len())
	}
}

func TestNewWithCapacityAndReserve(t *testing.T) {
	s := NewWithCapacity("x", "u", 1000)
	for i := 0; i < 1000; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 1000 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Reserve(500)
	before := s.Samples()
	for i := 0; i < 500; i++ {
		s.MustAppend(t0.Add(time.Duration(1000+i)*time.Second), float64(i))
	}
	// Reserve must have pre-grown the backing array: appending within the
	// reservation keeps the same storage.
	if len(before) > 0 && len(s.Samples()) > 0 && &s.Samples()[0] != &before[0] {
		t.Error("Reserve did not pre-grow the backing array")
	}
}

// The windowed accumulator must be bit-identical to per-window
// TimeWeightedMean calls for any monotone window sweep, including windows
// before the first sample, beyond the last, and zero-width ones.
func TestWindowAccumulatorMatchesTimeWeightedMean(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := New("x", "u")
	at := t0
	for i := 0; i < 500; i++ {
		at = at.Add(time.Duration(r.Intn(40)) * time.Minute) // ties allowed
		s.MustAppend(at, r.NormFloat64()*10)
	}
	first, last, _ := s.Span()

	acc := s.Accumulator()
	from := first.Add(-3 * time.Hour)
	for i := 0; i < 300; i++ {
		to := from.Add(time.Duration(r.Intn(5*3600)) * time.Second)
		want := s.TimeWeightedMean(from, to)
		got := acc.TimeWeightedMean(from, to)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("window %d [%v, %v): accumulator %v != series %v", i, from, to, want, got)
		}
		from = to
	}
	if from.Before(last) {
		t.Log("sweep ended before series end; still exercised interior windows")
	}
}

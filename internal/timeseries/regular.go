package timeseries

import (
	"fmt"
	"io"
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/stats"
)

// RegularSeries is the fixed-cadence storage layout: an epoch, a step and
// a contiguous []float64 block. Sample i's timestamp is implicit —
// epoch + i*step — so a sample costs 8 bytes instead of the 32 a Sample
// struct takes, and a 13-month PMDB-cadence meter trace drops from
// ~1.2 MB to ~300 kB. The paper's instrumentation samples every meter on
// a fixed interval (PMDB cabinet power every 15 minutes, grid settlement
// periods every 30), so for every producer in the hot path the timestamps
// carried by Series were pure redundancy.
//
// Appends must land exactly on the cadence: the first Append pins the
// epoch, every later Append must carry timestamp epoch + Len()*step.
// Producers that can miss ticks (meter dropout) keep using Series — the
// two kinds share the View read API, so consumers never care which
// layout they were handed.
//
// The read methods are bit-identical to Series over the same samples:
// index searches resolve to the same indices arithmetically that Series
// finds by binary search, and all mean/integration arithmetic is shared
// (timeWeightedMean, meanRange, summarize).
type RegularSeries struct {
	Name string
	Unit string

	step   time.Duration
	epoch  time.Time // timestamp of values[0]; meaningless until Len() > 0
	values []float64
	mom    stats.Moments
}

// NewRegular creates an empty fixed-cadence series pre-sized for
// `capacity` samples. It panics on a non-positive step.
func NewRegular(name, unit string, step time.Duration, capacity int) *RegularSeries {
	if step <= 0 {
		panic("timeseries: non-positive regular step")
	}
	r := &RegularSeries{Name: name, Unit: unit, step: step}
	if capacity > 0 {
		r.values = make([]float64, 0, capacity)
	}
	return r
}

// Label returns the series name and unit.
func (r *RegularSeries) Label() (name, unit string) { return r.Name, r.Unit }

// Step returns the sampling cadence.
func (r *RegularSeries) Step() time.Duration { return r.step }

// Len returns the number of samples.
func (r *RegularSeries) Len() int { return len(r.values) }

// Clone returns a deep copy of the series: its own value backing array
// and moment accumulator, sharing no mutable state with the original.
// Checkpoints clone telemetry tails so a forked simulation can keep
// appending without disturbing the parent.
func (r *RegularSeries) Clone() *RegularSeries {
	c := &RegularSeries{Name: r.Name, Unit: r.Unit, step: r.step, epoch: r.epoch, mom: r.mom}
	if len(r.values) > 0 {
		c.values = make([]float64, len(r.values))
		copy(c.values, r.values)
	}
	return c
}

// timeAt returns the implicit timestamp of sample i.
func (r *RegularSeries) timeAt(i int) time.Time {
	return r.epoch.Add(time.Duration(i) * r.step)
}

// At returns sample i with its implicit timestamp.
func (r *RegularSeries) At(i int) Sample {
	return Sample{T: r.timeAt(i), V: r.values[i]}
}

// Values returns a copy of all sample values.
func (r *RegularSeries) Values() []float64 {
	return append([]float64(nil), r.values...)
}

// Append adds a sample. The first append pins the series epoch; every
// later append must land exactly on the cadence (epoch + Len()*step) or
// an error is returned — a producer that can violate that (dropout,
// irregular events) belongs on Series instead.
func (r *RegularSeries) Append(t time.Time, v float64) error {
	if len(r.values) == 0 {
		r.epoch = t
	} else if expected := r.timeAt(len(r.values)); !t.Equal(expected) {
		return fmt.Errorf("timeseries %q: sample at %v off the %v cadence (expected %v)",
			r.Name, t, r.step, expected)
	}
	r.values = append(r.values, v)
	r.mom.Add(v)
	return nil
}

// MustAppend is Append for producers on an exact clock (the DES engine's
// Every ticks); it panics on an off-cadence timestamp.
func (r *RegularSeries) MustAppend(t time.Time, v float64) {
	if err := r.Append(t, v); err != nil {
		panic(err)
	}
}

// Span returns the first and last timestamps. ok is false for an empty
// series.
func (r *RegularSeries) Span() (from, to time.Time, ok bool) {
	if len(r.values) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return r.epoch, r.timeAt(len(r.values) - 1), true
}

// searchCeil returns the index of the first sample at or after t — the
// arithmetic equivalent of Series' binary search, exact because every
// implicit timestamp is an integer multiple of step past the epoch.
func (r *RegularSeries) searchCeil(t time.Time) int {
	n := len(r.values)
	if n == 0 {
		return 0
	}
	d := t.Sub(r.epoch)
	if d <= 0 {
		return 0
	}
	i := int((d + r.step - 1) / r.step)
	if i > n {
		return n
	}
	return i
}

// ValueAt returns the sample-and-hold value in force at time t. ok is
// false if t precedes the epoch.
func (r *RegularSeries) ValueAt(t time.Time) (float64, bool) {
	n := len(r.values)
	if n == 0 {
		return 0, false
	}
	d := t.Sub(r.epoch)
	if d < 0 {
		return 0, false
	}
	i := int(d / r.step)
	if i >= n {
		i = n - 1
	}
	return r.values[i], true
}

// Mean returns the arithmetic mean of all values in O(1) from the
// streaming moments (bit-identical to summing the values in order).
func (r *RegularSeries) Mean() float64 { return r.mom.Mean() }

// MeanBetween returns the mean of samples with from <= t < to.
func (r *RegularSeries) MeanBetween(from, to time.Time) float64 {
	return meanRange(r, r.searchCeil(from), r.searchCeil(to))
}

// CountBetween returns the number of samples with from <= t < to
// (0 for an inverted window).
func (r *RegularSeries) CountBetween(from, to time.Time) int {
	if n := r.searchCeil(to) - r.searchCeil(from); n > 0 {
		return n
	}
	return 0
}

// Summary returns summary statistics over all values (see
// Series.Summary for the O(1)/pooled-scratch contract).
func (r *RegularSeries) Summary() stats.Summary { return summarize(r, r.mom) }

// TimeWeightedMean integrates sample-and-hold over [from, to) — shared
// arithmetic with Series, bit-identical on equal samples.
func (r *RegularSeries) TimeWeightedMean(from, to time.Time) float64 {
	if !to.After(from) || len(r.values) == 0 {
		return 0
	}
	return timeWeightedMean(r, r.searchCeil(from), from, to)
}

// Accumulator returns a forward-sweeping window-mean accumulator.
func (r *RegularSeries) Accumulator() *WindowAccumulator {
	return &WindowAccumulator{v: r}
}

// Slice returns an independent sub-series with from <= t < to, still on
// the cadence (a contiguous block of a regular series is regular).
func (r *RegularSeries) Slice(from, to time.Time) View {
	lo, hi := r.searchCeil(from), r.searchCeil(to)
	out := &RegularSeries{Name: r.Name, Unit: r.Unit, step: r.step}
	if hi > lo {
		out.epoch = r.timeAt(lo)
		out.values = append(out.values, r.values[lo:hi]...)
		for _, v := range out.values {
			out.mom.Add(v)
		}
	}
	return out
}

// DetectStep locates the largest relative level shift (see
// Series.DetectStep).
func (r *RegularSeries) DetectStep(minSeg int, threshold float64) (StepChange, bool) {
	return detectStep(r, minSeg, threshold)
}

// WriteCSV writes "time,value" rows with an optional header.
func (r *RegularSeries) WriteCSV(w io.Writer, header bool) error {
	return writeCSV(r, w, header)
}

// RenderASCII draws the series as an ASCII chart (see Series.RenderASCII).
func (r *RegularSeries) RenderASCII(rows, cols int) string {
	return renderASCII(r, r.mom, rows, cols)
}

// Clip shrinks the backing array to exactly the held values, releasing
// over-reserved capacity.
func (r *RegularSeries) Clip() {
	if cap(r.values) > len(r.values) {
		clipped := make([]float64, len(r.values))
		copy(clipped, r.values)
		r.values = clipped
	}
}

// MemoryFootprint returns the series' retained bytes: struct header,
// label strings and the full backing capacity.
func (r *RegularSeries) MemoryFootprint() int64 {
	return int64(unsafe.Sizeof(*r)) +
		int64(len(r.Name)) + int64(len(r.Unit)) +
		int64(cap(r.values))*8
}

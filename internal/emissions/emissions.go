// Package emissions implements the paper's §2 emissions accounting for a
// large HPC facility: operational (scope 2) emissions from electricity,
// embodied (scope 3) emissions amortised over the service life, the
// regime classification that drives operational strategy, and the
// emissions-efficiency metrics used to compare operating points.
//
// The paper's qualitative rule, reproduced here as code:
//
//   - scope 3 dominant (grid < 30 gCO2/kWh): maximise application output
//     per node-hour — any performance loss worsens emissions efficiency;
//   - comparable (30-100 gCO2/kWh): balance energy efficiency against
//     application performance;
//   - scope 2 dominant (grid > 100 gCO2/kWh): maximise output per kWh,
//     even at some cost in output per node-hour.
package emissions

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// Params describes a facility's emissions profile.
type Params struct {
	// Embodied is the total scope-3 emissions of the hardware: manufacture,
	// shipping and decommissioning.
	Embodied units.Mass
	// Lifetime is the service life over which Embodied is amortised.
	Lifetime time.Duration
}

// ARCHER2Defaults returns the calibrated default profile. The paper's
// detailed audit is unpublished; §2 states that in the 30-100 gCO2/kWh
// band scope 2 and scope 3 are roughly equal, which at the facility's
// ~3.5 MW draw and mid-band 65 gCO2/kWh implies ~2 ktCO2e/yr of amortised
// embodied emissions — 12 ktCO2e over a six-year life.
func ARCHER2Defaults() Params {
	return Params{
		Embodied: units.Kilotonnes(12),
		Lifetime: 6 * 365 * 24 * time.Hour,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Embodied.Grams() < 0 || p.Lifetime <= 0 {
		return fmt.Errorf("emissions: invalid params %+v", p)
	}
	return nil
}

// AmortisedScope3 returns the share of embodied emissions attributed to a
// window of the given length.
func (p Params) AmortisedScope3(window time.Duration) units.Mass {
	if window <= 0 {
		return 0
	}
	return p.Embodied.Scale(window.Seconds() / p.Lifetime.Seconds())
}

// Scope2 returns operational emissions for the given energy at the given
// carbon intensity.
func Scope2(e units.Energy, ci units.CarbonIntensity) units.Mass {
	return e.Emissions(ci)
}

// Window is an emissions account over a time window.
type Window struct {
	Duration time.Duration
	Energy   units.Energy
	CI       units.CarbonIntensity

	Scope2 units.Mass
	Scope3 units.Mass
	Total  units.Mass
}

// Account computes a Window for mean facility power `power` sustained for
// `window` at intensity ci.
func (p Params) Account(power units.Power, window time.Duration, ci units.CarbonIntensity) Window {
	e := power.EnergyOver(window)
	s2 := Scope2(e, ci)
	s3 := p.AmortisedScope3(window)
	return Window{
		Duration: window,
		Energy:   e,
		CI:       ci,
		Scope2:   s2,
		Scope3:   s3,
		Total:    units.Mass(s2.Grams() + s3.Grams()),
	}
}

// AccountSeries computes a Window by integrating a facility power series
// (unit kW, the telemetry meter's cabinet series) against a grid
// carbon-intensity series (unit gCO2/kWh, a grid.IntensityModel trace)
// over [from, to): scope 2 is the sum over intensity segments of
// mean-power x segment-length x intensity, so work that runs in
// low-intensity windows genuinely emits less. This is what makes
// temporal-shifting policies visible in the accounting — the mean x mean
// shortcut of Account would erase any correlation between when work runs
// and how clean the grid is.
//
// The reported CI is the energy-weighted mean intensity the load actually
// experienced; comparing it against the trace's plain mean measures how
// much of the window's carbon the schedule avoided (or hit).
func (p Params) AccountSeries(powerKW, ci timeseries.View, from, to time.Time) Window {
	var energyKWh, scope2g float64
	nCI := ci.Len()
	// The intensity segments sweep forward in time, so one accumulator
	// walks the power series in a single pass (O(P+C)) instead of a
	// binary search and rescan per segment; the integrals are
	// bit-identical to per-segment TimeWeightedMean calls.
	acc := powerKW.Accumulator()
	for i := 0; i < nCI; i++ {
		smp := ci.At(i)
		segFrom, segTo := smp.T, to
		if i+1 < nCI {
			if next := ci.At(i + 1).T; next.Before(to) {
				segTo = next
			}
		}
		if segFrom.Before(from) {
			segFrom = from
		}
		if !segTo.After(segFrom) {
			continue
		}
		meanKW := acc.TimeWeightedMean(segFrom, segTo)
		kwh := meanKW * segTo.Sub(segFrom).Hours()
		energyKWh += kwh
		scope2g += kwh * smp.V
	}
	e := units.KilowattHours(energyKWh)
	window := to.Sub(from)
	s2 := units.Grams(scope2g)
	s3 := p.AmortisedScope3(window)
	meanCI := 0.0
	if energyKWh > 0 {
		meanCI = scope2g / energyKWh
	}
	return Window{
		Duration: window,
		Energy:   e,
		CI:       units.GramsPerKWh(meanCI),
		Scope2:   s2,
		Scope3:   s3,
		Total:    units.Mass(s2.Grams() + s3.Grams()),
	}
}

// Scope2Share returns scope 2 as a fraction of total emissions (0 when the
// total is zero).
func (w Window) Scope2Share() float64 {
	if w.Total.Grams() == 0 {
		return 0
	}
	return w.Scope2.Grams() / w.Total.Grams()
}

// Regime is the paper's operational-strategy classification.
type Regime int

const (
	// Scope3Dominated: optimise application performance.
	Scope3Dominated Regime = iota
	// Balanced: trade performance against energy efficiency.
	Balanced
	// Scope2Dominated: optimise energy efficiency.
	Scope2Dominated
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case Scope3Dominated:
		return "scope-3 dominated"
	case Balanced:
		return "balanced"
	case Scope2Dominated:
		return "scope-2 dominated"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Strategy returns the paper's recommended operating strategy for the
// regime.
func (r Regime) Strategy() string {
	switch r {
	case Scope3Dominated:
		return "maximise application output per node-hour; avoid any performance sacrifice"
	case Balanced:
		return "balance energy efficiency against application performance"
	case Scope2Dominated:
		return "maximise application output per kWh, even at reduced output per node-hour"
	default:
		return "unknown"
	}
}

// RegimeOf classifies a window by the scope2:scope3 balance: below 2:3 it
// is scope-3 dominated, above 3:2 scope-2 dominated, else balanced.
func RegimeOf(w Window) Regime {
	s2, s3 := w.Scope2.Grams(), w.Scope3.Grams()
	switch {
	case s2 < s3*2/3:
		return Scope3Dominated
	case s2 > s3*3/2:
		return Scope2Dominated
	default:
		return Balanced
	}
}

// CrossoverIntensity returns the grid carbon intensity at which scope 2
// equals amortised scope 3 for a facility drawing `power` on average.
// Returns 0 for non-positive power.
func (p Params) CrossoverIntensity(power units.Power) units.CarbonIntensity {
	if power.Watts() <= 0 {
		return 0
	}
	annualEnergy := power.EnergyOver(365 * 24 * time.Hour)
	annualScope3 := p.AmortisedScope3(365 * 24 * time.Hour)
	return units.GramsPerKWh(annualScope3.Grams() / annualEnergy.KilowattHours())
}

// Efficiency summarises output-vs-emissions metrics for an operating
// point, the quantities the paper's strategy rule trades off.
type Efficiency struct {
	// NodeHoursPerTonne is delivered node-hours per tCO2e (total).
	NodeHoursPerTonne float64
	// NodeHoursPerMWh is delivered node-hours per MWh of energy.
	NodeHoursPerMWh float64
	// KWhPerNodeHour is the energy cost of a node-hour.
	KWhPerNodeHour float64
}

// ComputeEfficiency derives the metrics from delivered node-hours, energy
// and a total emissions mass. Zero denominators yield zero metrics.
func ComputeEfficiency(nodeHours float64, e units.Energy, total units.Mass) Efficiency {
	var out Efficiency
	if t := total.Tonnes(); t > 0 {
		out.NodeHoursPerTonne = nodeHours / t
	}
	if mwh := e.MegawattHours(); mwh > 0 {
		out.NodeHoursPerMWh = nodeHours / mwh
	}
	if nodeHours > 0 {
		out.KWhPerNodeHour = e.KilowattHours() / nodeHours
	}
	return out
}

// ScenarioPoint is one row of a carbon-intensity sweep (the quantitative
// version of the paper's §2 narrative).
type ScenarioPoint struct {
	CI     units.CarbonIntensity
	Window Window
	Regime Regime
}

// Sweep evaluates the facility's annual emissions across a set of grid
// carbon intensities.
func (p Params) Sweep(power units.Power, intensities []float64) []ScenarioPoint {
	year := 365 * 24 * time.Hour
	out := make([]ScenarioPoint, len(intensities))
	for i, g := range intensities {
		ci := units.GramsPerKWh(g)
		w := p.Account(power, year, ci)
		out[i] = ScenarioPoint{CI: ci, Window: w, Regime: RegimeOf(w)}
	}
	return out
}

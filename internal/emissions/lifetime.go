package emissions

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/units"
)

// This file implements the lifetime scenario modelling the paper announces
// as follow-up work ("a detailed audit of the emissions from ARCHER2 and
// emissions scenario modelling are underway", §2): cumulative emissions of
// a service over a multi-year horizon under a decarbonising grid, and the
// replacement question — when does retiring hardware early for a more
// efficient successor pay back its embodied emissions?

// Trajectory models grid carbon intensity declining over calendar years.
type Trajectory struct {
	// Start is the intensity in year 0.
	Start units.CarbonIntensity
	// AnnualDecline is the fractional reduction per year (e.g. 0.08 for
	// the GB grid's trend); applied geometrically.
	AnnualDecline float64
	// Floor is the residual intensity the grid asymptotes to.
	Floor units.CarbonIntensity
}

// GBTrajectory returns a GB-like decarbonisation path: ~200 g/kWh in 2022
// declining 9%/year toward a 20 g/kWh floor.
func GBTrajectory() Trajectory {
	return Trajectory{Start: units.GramsPerKWh(200), AnnualDecline: 0.09, Floor: units.GramsPerKWh(20)}
}

// Validate checks the trajectory.
func (tr Trajectory) Validate() error {
	if tr.Start.GramsPerKWh() < 0 || tr.Floor.GramsPerKWh() < 0 ||
		tr.AnnualDecline < 0 || tr.AnnualDecline >= 1 ||
		tr.Floor.GramsPerKWh() > tr.Start.GramsPerKWh() {
		return fmt.Errorf("emissions: invalid trajectory %+v", tr)
	}
	return nil
}

// YearIntensity returns the mean intensity in year y (0-based).
func (tr Trajectory) YearIntensity(y int) units.CarbonIntensity {
	ci := tr.Start.GramsPerKWh()
	for i := 0; i < y; i++ {
		ci *= 1 - tr.AnnualDecline
	}
	if ci < tr.Floor.GramsPerKWh() {
		ci = tr.Floor.GramsPerKWh()
	}
	return units.GramsPerKWh(ci)
}

// YearAccount is the emissions of one service year.
type YearAccount struct {
	Year   int
	CI     units.CarbonIntensity
	Scope2 units.Mass
	Scope3 units.Mass
	Total  units.Mass
	Regime Regime
}

// LifetimeAccount evaluates a facility drawing meanPower for `years` under
// the trajectory, with this Params' embodied emissions amortised linearly.
func (p Params) LifetimeAccount(meanPower units.Power, years int, tr Trajectory) ([]YearAccount, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if years <= 0 {
		return nil, fmt.Errorf("emissions: non-positive year count %d", years)
	}
	yearDur := 365 * 24 * time.Hour
	out := make([]YearAccount, years)
	for y := 0; y < years; y++ {
		ci := tr.YearIntensity(y)
		w := p.Account(meanPower, yearDur, ci)
		out[y] = YearAccount{
			Year:   y,
			CI:     ci,
			Scope2: w.Scope2,
			Scope3: w.Scope3,
			Total:  w.Total,
			Regime: RegimeOf(w),
		}
	}
	return out, nil
}

// SumTotal returns the cumulative total over the accounts.
func SumTotal(accounts []YearAccount) units.Mass {
	var g float64
	for _, a := range accounts {
		g += a.Total.Grams()
	}
	return units.Grams(g)
}

// ReplacementOption describes a candidate successor system.
type ReplacementOption struct {
	Name string
	// Embodied is the successor's scope-3 cost.
	Embodied units.Mass
	// Lifetime of the successor.
	Lifetime time.Duration
	// PowerRatio is successor power draw relative to the incumbent for the
	// SAME scientific output rate (<1 = more efficient hardware).
	PowerRatio float64
}

// Validate checks the option.
func (r ReplacementOption) Validate() error {
	if r.Name == "" || r.Embodied.Grams() < 0 || r.Lifetime <= 0 || r.PowerRatio <= 0 {
		return fmt.Errorf("emissions: invalid replacement option %+v", r)
	}
	return nil
}

// ReplacementAnalysis compares keeping the incumbent for `horizon` years
// versus replacing it immediately with the option (same output rate),
// under the trajectory. It answers §2's core tension quantitatively: new
// hardware buys operational efficiency at an embodied cost, and the
// cleaner the grid gets, the harder that purchase is to justify.
//
// The incumbent's embodied emissions are sunk — they were incurred at
// manufacture and are identical in both branches — so the comparison
// counts only what the decision changes: the incumbent's scope 2 over the
// horizon against the successor's scope 2 plus the horizon's amortised
// share of its NEW embodied emissions.
type ReplacementAnalysis struct {
	KeepTotal    units.Mass
	ReplaceTotal units.Mass
	// Advantage = KeepTotal - ReplaceTotal (positive: replacing wins).
	Advantage units.Mass
}

// CompareReplacement runs the analysis over `horizon` years. The receiver
// supplies the incumbent's profile (only its scope 2 matters; see above).
func (p Params) CompareReplacement(meanPower units.Power, horizon int, tr Trajectory, opt ReplacementOption) (ReplacementAnalysis, error) {
	if err := opt.Validate(); err != nil {
		return ReplacementAnalysis{}, err
	}
	// Keep: sunk embodied excluded, so a zero-embodied Params with the
	// incumbent's power gives exactly the scope-2 stream.
	keepP := Params{Embodied: 0, Lifetime: p.Lifetime}
	keep, err := keepP.LifetimeAccount(meanPower, horizon, tr)
	if err != nil {
		return ReplacementAnalysis{}, err
	}
	succ := Params{Embodied: opt.Embodied, Lifetime: opt.Lifetime}
	repl, err := succ.LifetimeAccount(meanPower.Scale(opt.PowerRatio), horizon, tr)
	if err != nil {
		return ReplacementAnalysis{}, err
	}
	k, r := SumTotal(keep), SumTotal(repl)
	return ReplacementAnalysis{
		KeepTotal:    k,
		ReplaceTotal: r,
		Advantage:    units.Mass(k.Grams() - r.Grams()),
	}, nil
}

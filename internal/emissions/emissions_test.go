package emissions

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

func TestDefaultsCrossoverInModerateBand(t *testing.T) {
	// The calibration requirement from §2: at the facility's mean draw, the
	// scope2=scope3 crossover lies inside the 30-100 gCO2/kWh band.
	p := ARCHER2Defaults()
	x := p.CrossoverIntensity(units.Megawatts(3.5)).GramsPerKWh()
	if x < 30 || x > 100 {
		t.Fatalf("crossover = %v g/kWh, want within [30, 100]", x)
	}
	// And close to the band middle (~65).
	if math.Abs(x-65) > 15 {
		t.Fatalf("crossover = %v g/kWh, want ~65", x)
	}
}

func TestAmortisedScope3(t *testing.T) {
	p := ARCHER2Defaults()
	year := p.AmortisedScope3(365 * 24 * time.Hour)
	if got := year.Tonnes(); math.Abs(got-2000) > 20 {
		t.Fatalf("annual scope 3 = %v t, want ~2000", got)
	}
	if p.AmortisedScope3(0) != 0 {
		t.Fatal("zero window nonzero scope 3")
	}
	if p.AmortisedScope3(-time.Hour) != 0 {
		t.Fatal("negative window nonzero scope 3")
	}
	// Full lifetime returns the whole embodied mass.
	full := p.AmortisedScope3(p.Lifetime)
	if math.Abs(full.Grams()-p.Embodied.Grams()) > 1 {
		t.Fatal("lifetime amortisation != embodied total")
	}
}

func TestValidate(t *testing.T) {
	if err := ARCHER2Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Embodied: units.Tonnes(-1), Lifetime: time.Hour}).Validate(); err == nil {
		t.Error("negative embodied accepted")
	}
	if err := (Params{Embodied: units.Tonnes(1)}).Validate(); err == nil {
		t.Error("zero lifetime accepted")
	}
}

func TestAccountWindow(t *testing.T) {
	p := ARCHER2Defaults()
	w := p.Account(units.Megawatts(3.5), 365*24*time.Hour, units.GramsPerKWh(200))
	// 30.66 GWh * 200 g/kWh = 6132 t scope 2.
	if got := w.Scope2.Tonnes(); math.Abs(got-6132) > 10 {
		t.Fatalf("scope 2 = %v t, want ~6132", got)
	}
	if got := w.Total.Grams(); math.Abs(got-(w.Scope2.Grams()+w.Scope3.Grams())) > 1 {
		t.Fatal("total != scope2 + scope3")
	}
	if s := w.Scope2Share(); s < 0.7 || s > 0.8 {
		t.Fatalf("scope 2 share = %v, want ~0.75", s)
	}
	if (Window{}).Scope2Share() != 0 {
		t.Fatal("empty window share nonzero")
	}
}

func TestPaperRegimeBands(t *testing.T) {
	// The paper's three bands must map to the three regimes at the
	// facility's operating point.
	p := ARCHER2Defaults()
	power := units.Megawatts(3.5)
	year := 365 * 24 * time.Hour
	cases := []struct {
		g    float64
		want Regime
	}{
		{5, Scope3Dominated},
		{20, Scope3Dominated},
		{65, Balanced},
		{150, Scope2Dominated},
		{250, Scope2Dominated},
	}
	for _, c := range cases {
		w := p.Account(power, year, units.GramsPerKWh(c.g))
		if got := RegimeOf(w); got != c.want {
			t.Errorf("regime at %v g/kWh = %v, want %v (s2=%v s3=%v)",
				c.g, got, c.want, w.Scope2, w.Scope3)
		}
	}
}

func TestRegimeStringsAndStrategies(t *testing.T) {
	for _, r := range []Regime{Scope3Dominated, Balanced, Scope2Dominated, Regime(9)} {
		if r.String() == "" || r.Strategy() == "" {
			t.Fatalf("empty text for regime %d", int(r))
		}
	}
	// Strategy phrasing matches the paper's direction of optimisation.
	if s := Scope3Dominated.Strategy(); s == Scope2Dominated.Strategy() {
		t.Fatal("regime strategies indistinct")
	}
}

func TestCrossoverZeroPower(t *testing.T) {
	if got := ARCHER2Defaults().CrossoverIntensity(0); got != 0 {
		t.Fatalf("crossover at 0 power = %v", got)
	}
}

func TestComputeEfficiency(t *testing.T) {
	// 1000 node-hours, 1 MWh, 2 t total.
	e := ComputeEfficiency(1000, units.MegawattHours(1), units.Tonnes(2))
	if math.Abs(e.NodeHoursPerTonne-500) > 1e-9 {
		t.Errorf("nodeh/t = %v", e.NodeHoursPerTonne)
	}
	if math.Abs(e.NodeHoursPerMWh-1000) > 1e-9 {
		t.Errorf("nodeh/MWh = %v", e.NodeHoursPerMWh)
	}
	if math.Abs(e.KWhPerNodeHour-1) > 1e-9 {
		t.Errorf("kWh/nodeh = %v", e.KWhPerNodeHour)
	}
	z := ComputeEfficiency(0, 0, 0)
	if z.NodeHoursPerTonne != 0 || z.NodeHoursPerMWh != 0 || z.KWhPerNodeHour != 0 {
		t.Fatal("zero inputs produced nonzero metrics")
	}
}

func TestSweepMonotone(t *testing.T) {
	p := ARCHER2Defaults()
	intensities := []float64{5, 20, 40, 65, 100, 150, 250}
	pts := p.Sweep(units.Megawatts(3.5), intensities)
	if len(pts) != len(intensities) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Window.Total.Grams() <= pts[i-1].Window.Total.Grams() {
			t.Fatal("total emissions not increasing with intensity")
		}
		if pts[i].Regime < pts[i-1].Regime {
			t.Fatal("regime not monotone in intensity")
		}
	}
	// Endpoints hit the extreme regimes.
	if pts[0].Regime != Scope3Dominated || pts[len(pts)-1].Regime != Scope2Dominated {
		t.Fatalf("endpoint regimes: %v .. %v", pts[0].Regime, pts[len(pts)-1].Regime)
	}
}

// Property: emissions accounting is additive over windows.
func TestPropertyWindowAdditivity(t *testing.T) {
	p := ARCHER2Defaults()
	f := func(kw uint16, hoursA, hoursB uint8, g uint16) bool {
		power := units.Kilowatts(float64(kw))
		ci := units.GramsPerKWh(float64(g % 400))
		da := time.Duration(hoursA) * time.Hour
		db := time.Duration(hoursB) * time.Hour
		wa := p.Account(power, da, ci)
		wb := p.Account(power, db, ci)
		wab := p.Account(power, da+db, ci)
		sum := wa.Total.Grams() + wb.Total.Grams()
		return math.Abs(sum-wab.Total.Grams()) < 1e-3*(1+wab.Total.Grams())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scope-2 share increases with carbon intensity.
func TestPropertyScope2ShareMonotone(t *testing.T) {
	p := ARCHER2Defaults()
	f := func(a, b uint16) bool {
		ga, gb := float64(a%500), float64(b%500)
		if ga > gb {
			ga, gb = gb, ga
		}
		year := 365 * 24 * time.Hour
		wa := p.Account(units.Megawatts(3.5), year, units.GramsPerKWh(ga))
		wb := p.Account(units.Megawatts(3.5), year, units.GramsPerKWh(gb))
		return wa.Scope2Share() <= wb.Scope2Share()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// AccountSeries on constant power and constant intensity must agree with
// the mean x mean Account to floating-point tolerance.
func TestAccountSeriesMatchesAccountWhenConstant(t *testing.T) {
	p := ARCHER2Defaults()
	from := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	to := from.Add(48 * time.Hour)
	power := timeseries.New("cabinet_power", "kW")
	ci := timeseries.New("carbon_intensity", "gCO2/kWh")
	for ts := from.Add(-time.Hour); ts.Before(to.Add(time.Hour)); ts = ts.Add(30 * time.Minute) {
		power.MustAppend(ts, 3220)
		ci.MustAppend(ts, 150)
	}
	got := p.AccountSeries(power, ci, from, to)
	want := p.Account(units.Kilowatts(3220), 48*time.Hour, units.GramsPerKWh(150))
	if math.Abs(got.Scope2.Grams()-want.Scope2.Grams()) > 1e-6*want.Scope2.Grams() {
		t.Errorf("scope 2: got %v want %v", got.Scope2, want.Scope2)
	}
	if got.Scope3 != want.Scope3 {
		t.Errorf("scope 3: got %v want %v", got.Scope3, want.Scope3)
	}
	if math.Abs(got.CI.GramsPerKWh()-150) > 1e-9 {
		t.Errorf("energy-weighted CI %v, want 150", got.CI)
	}
	if math.Abs(got.Energy.KilowattHours()-want.Energy.KilowattHours()) > 1e-6*want.Energy.KilowattHours() {
		t.Errorf("energy: got %v want %v", got.Energy, want.Energy)
	}
}

// The whole point of AccountSeries: a load anti-correlated with intensity
// (power high when the grid is clean) must account less scope 2 than the
// mean x mean shortcut, and a correlated load more.
func TestAccountSeriesCapturesTemporalCorrelation(t *testing.T) {
	p := ARCHER2Defaults()
	from := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	to := from.Add(48 * time.Hour)
	ci := timeseries.New("ci", "gCO2/kWh")
	anti := timeseries.New("p", "kW")
	corr := timeseries.New("p", "kW")
	for ts := from; ts.Before(to); ts = ts.Add(30 * time.Minute) {
		highGrid := (ts.Sub(from)/(6*time.Hour))%2 == 0
		g, pw := 250.0, 1000.0
		if !highGrid {
			g, pw = 50.0, 3000.0
		}
		ci.MustAppend(ts, g)
		anti.MustAppend(ts, pw)      // runs hard when clean
		corr.MustAppend(ts, 4000-pw) // runs hard when dirty
	}
	wAnti := p.AccountSeries(anti, ci, from, to)
	wCorr := p.AccountSeries(corr, ci, from, to)
	// Same total energy by construction (both average 2000 kW).
	if math.Abs(wAnti.Energy.KilowattHours()-wCorr.Energy.KilowattHours()) > 1 {
		t.Fatalf("energy differs: %v vs %v", wAnti.Energy, wCorr.Energy)
	}
	naive := p.Account(units.Kilowatts(2000), 48*time.Hour, units.GramsPerKWh(150))
	if !(wAnti.Scope2.Grams() < naive.Scope2.Grams() && naive.Scope2.Grams() < wCorr.Scope2.Grams()) {
		t.Errorf("correlation not captured: anti %v naive %v corr %v",
			wAnti.Scope2, naive.Scope2, wCorr.Scope2)
	}
	if !(wAnti.CI.GramsPerKWh() < 150 && wCorr.CI.GramsPerKWh() > 150) {
		t.Errorf("energy-weighted CI not shifted: anti %v corr %v", wAnti.CI, wCorr.CI)
	}
}

// An empty window or trace yields a zero account, not NaNs.
func TestAccountSeriesDegenerate(t *testing.T) {
	p := ARCHER2Defaults()
	from := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	w := p.AccountSeries(timeseries.New("p", "kW"), timeseries.New("ci", "g"), from, from.Add(time.Hour))
	if w.Scope2 != 0 || w.Energy != 0 || w.CI != 0 {
		t.Errorf("degenerate account not zero: %+v", w)
	}
	if math.IsNaN(w.Scope2Share()) {
		t.Error("NaN scope-2 share")
	}
}

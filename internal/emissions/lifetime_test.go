package emissions

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/units"
)

func TestTrajectoryDecline(t *testing.T) {
	tr := GBTrajectory()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.YearIntensity(0); got != tr.Start {
		t.Fatalf("year 0 = %v", got)
	}
	// Monotone non-increasing, floored.
	prev := tr.YearIntensity(0).GramsPerKWh()
	for y := 1; y <= 40; y++ {
		ci := tr.YearIntensity(y).GramsPerKWh()
		if ci > prev {
			t.Fatalf("intensity rose at year %d", y)
		}
		prev = ci
	}
	if got := tr.YearIntensity(40).GramsPerKWh(); got != tr.Floor.GramsPerKWh() {
		t.Fatalf("year 40 = %v, want floor %v", got, tr.Floor)
	}
	// Year 1 = start*(1-decline).
	want := 200 * 0.91
	if got := tr.YearIntensity(1).GramsPerKWh(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("year 1 = %v, want %v", got, want)
	}
}

func TestTrajectoryValidate(t *testing.T) {
	bad := []Trajectory{
		{Start: units.GramsPerKWh(-1), Floor: units.GramsPerKWh(0)},
		{Start: units.GramsPerKWh(100), Floor: units.GramsPerKWh(200)},
		{Start: units.GramsPerKWh(100), Floor: units.GramsPerKWh(10), AnnualDecline: 1.0},
		{Start: units.GramsPerKWh(100), Floor: units.GramsPerKWh(10), AnnualDecline: -0.1},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trajectory %d accepted", i)
		}
	}
}

func TestLifetimeAccount(t *testing.T) {
	p := ARCHER2Defaults()
	accounts, err := p.LifetimeAccount(units.Megawatts(3.5), 6, GBTrajectory())
	if err != nil {
		t.Fatal(err)
	}
	if len(accounts) != 6 {
		t.Fatalf("years = %d", len(accounts))
	}
	// Scope 3 constant; scope 2 declines with the grid.
	for y := 1; y < 6; y++ {
		if accounts[y].Scope3 != accounts[0].Scope3 {
			t.Fatal("scope 3 not constant")
		}
		if accounts[y].Scope2.Grams() >= accounts[y-1].Scope2.Grams() {
			t.Fatal("scope 2 not declining")
		}
	}
	// Year 0 on a 200 g/kWh grid is scope-2 dominated.
	if accounts[0].Regime != Scope2Dominated {
		t.Fatalf("year 0 regime = %v", accounts[0].Regime)
	}
	// Totals sum.
	total := SumTotal(accounts)
	var want float64
	for _, a := range accounts {
		want += a.Total.Grams()
	}
	if math.Abs(total.Grams()-want) > 1 {
		t.Fatal("SumTotal mismatch")
	}
}

func TestLifetimeAccountErrors(t *testing.T) {
	p := ARCHER2Defaults()
	if _, err := p.LifetimeAccount(units.Megawatts(3.5), 0, GBTrajectory()); err == nil {
		t.Error("zero years accepted")
	}
	bad := GBTrajectory()
	bad.AnnualDecline = 2
	if _, err := p.LifetimeAccount(units.Megawatts(3.5), 5, bad); err == nil {
		t.Error("bad trajectory accepted")
	}
	badP := Params{Embodied: units.Tonnes(-1), Lifetime: time.Hour}
	if _, err := badP.LifetimeAccount(units.Megawatts(3.5), 5, GBTrajectory()); err == nil {
		t.Error("bad params accepted")
	}
}

func TestCompareReplacementHighCarbonGrid(t *testing.T) {
	// On a high-carbon, slowly-decarbonising grid, a 30% more efficient
	// successor with modest embodied cost wins over a 6-year horizon.
	p := ARCHER2Defaults()
	tr := Trajectory{Start: units.GramsPerKWh(300), AnnualDecline: 0.02, Floor: units.GramsPerKWh(50)}
	opt := ReplacementOption{
		Name:       "next-gen",
		Embodied:   units.Kilotonnes(12),
		Lifetime:   6 * 365 * 24 * time.Hour,
		PowerRatio: 0.70,
	}
	res, err := p.CompareReplacement(units.Megawatts(3.5), 6, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage.Grams() <= 0 {
		t.Fatalf("efficient successor lost on dirty grid: %+v", res)
	}
	if math.Abs(res.Advantage.Grams()-(res.KeepTotal.Grams()-res.ReplaceTotal.Grams())) > 1 {
		t.Fatal("advantage inconsistent")
	}
}

func TestCompareReplacementCleanGrid(t *testing.T) {
	// On an already-clean grid the same successor cannot pay back its
	// embodied emissions: §2's scope-3-dominated logic.
	p := ARCHER2Defaults()
	tr := Trajectory{Start: units.GramsPerKWh(25), AnnualDecline: 0.05, Floor: units.GramsPerKWh(10)}
	opt := ReplacementOption{
		Name:       "next-gen",
		Embodied:   units.Kilotonnes(12),
		Lifetime:   6 * 365 * 24 * time.Hour,
		PowerRatio: 0.70,
	}
	res, err := p.CompareReplacement(units.Megawatts(3.5), 6, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage.Grams() >= 0 {
		t.Fatalf("successor won on clean grid: %+v", res)
	}
}

func TestCompareReplacementErrors(t *testing.T) {
	p := ARCHER2Defaults()
	bad := ReplacementOption{Name: "", Embodied: units.Tonnes(1), Lifetime: time.Hour, PowerRatio: 1}
	if _, err := p.CompareReplacement(units.Megawatts(3.5), 5, GBTrajectory(), bad); err == nil {
		t.Error("unnamed option accepted")
	}
	bad = ReplacementOption{Name: "x", Embodied: units.Tonnes(1), Lifetime: time.Hour, PowerRatio: 0}
	if _, err := p.CompareReplacement(units.Megawatts(3.5), 5, GBTrajectory(), bad); err == nil {
		t.Error("zero power ratio accepted")
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Splitting must not advance the parent, so the parent's sequence is the
	// same whether or not children are split off.
	a := New(7)
	b := New(7)
	_ = b.Split("child-1")
	_ = b.Split("child-2")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split perturbed parent sequence at %d", i)
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	r := New(7)
	c1 := r.Split("alpha")
	c2 := r.Split("beta")
	if c1.Uint64() == c2.Uint64() {
		t.Error("differently-labelled children start identically")
	}
	// Two same-label splits from an unadvanced parent give equal streams.
	x := New(7).Split("alpha")
	y := New(7).Split("alpha")
	for i := 0; i < 50; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatalf("same-label splits diverge at %d", i)
		}
	}
}

func TestSplitIndexed(t *testing.T) {
	r := New(9)
	a := r.SplitIndexed("job", 1)
	b := r.SplitIndexed("job", 2)
	if a.Uint64() == b.Uint64() {
		t.Error("indexed splits with different indices start identically")
	}
	x := New(9).SplitIndexed("job", 5)
	y := New(9).SplitIndexed("job", 5)
	for i := 0; i < 50; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatalf("same-index splits diverge at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(17)
	for i := 0; i < 5000; i++ {
		v := r.TruncNormal(1.0, 0.5, 0.8, 1.2)
		if v < 0.8 || v > 1.2 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5) // mean 2
	}
	mean := sum / float64(n)
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("exp mean = %v, want ~2", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.2, 1, 1024)
		if v < 1 || v > 1024 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// Most mass should be near the lower bound for alpha > 1.
	r := New(29)
	small := 0
	n := 10000
	for i := 0; i < n; i++ {
		if r.BoundedPareto(1.5, 1, 1024) < 8 {
			small++
		}
	}
	if float64(small)/float64(n) < 0.8 {
		t.Fatalf("only %d/%d draws below 8; tail too light", small, n)
	}
}

func TestCategorical(t *testing.T) {
	c := NewCategorical([]float64{1, 0, 3})
	r := New(31)
	counts := make([]int, 3)
	n := 40000
	for i := 0; i < n; i++ {
		counts[c.Draw(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / float64(n)
	if math.Abs(frac0-0.25) > 0.02 {
		t.Errorf("category 0 frequency = %v, want ~0.25", frac0)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero-sum": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights did not panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestPerm(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

// Property: any seed produces values in [0,1) and same seed reproduces.
func TestPropertySeedReproducibility(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			av := a.Float64()
			if av < 0 || av >= 1 {
				return false
			}
			if av != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: split streams with distinct labels are (statistically) distinct.
func TestPropertySplitDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		a := r.Split("a")
		b := r.Split("b")
		same := 0
		for i := 0; i < 8; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		return same < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeed(t *testing.T) {
	// Deterministic: same (base, label) -> same seed.
	if DeriveSeed(42, "scenario/a") != DeriveSeed(42, "scenario/a") {
		t.Error("DeriveSeed not deterministic")
	}
	// Sensitive to both base and label.
	if DeriveSeed(42, "a") == DeriveSeed(43, "a") {
		t.Error("DeriveSeed insensitive to base seed")
	}
	if DeriveSeed(42, "a") == DeriveSeed(42, "b") {
		t.Error("DeriveSeed insensitive to label")
	}
	// Streams built from derived seeds are decorrelated.
	a := New(DeriveSeed(42, "x"))
	b := New(DeriveSeed(42, "y"))
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Error("derived-seed streams identical")
	}
}

// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions the facility simulation draws from.
//
// Reproducibility is a hard requirement for the digital twin: a simulation
// seeded with the same value must produce byte-identical output so that the
// paper-reproduction benchmarks are stable. The generator is xoshiro256**
// seeded via SplitMix64; streams are split hierarchically by label so that
// adding a new consumer of randomness does not perturb existing consumers.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic random stream. The zero value is not valid; use
// New or Stream.Split.
type Stream struct {
	s [4]uint64
}

// New creates a stream from a 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; the SplitMix expansion of
	// any seed cannot produce that, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives an independent child stream identified by label. Splitting
// does not advance the parent stream, so the set of labels used elsewhere
// never affects this stream's own sequence.
func (r *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the parent state (not the parent's position) with the label hash.
	return New(r.s[0] ^ rotl(r.s[2], 17) ^ h.Sum64())
}

// SplitIndexed derives an independent child stream identified by a label and
// an index, for per-entity streams (e.g. one per job).
func (r *Stream) SplitIndexed(label string, i int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(i)
	for b := 0; b < 8; b++ {
		buf[b] = byte(v >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	return New(r.s[0] ^ rotl(r.s[2], 17) ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// DeriveSeed deterministically derives an independent child seed from a
// base seed and a label — the seed-level analogue of Stream.Split, for
// when a subsystem needs its own root seed rather than a shared stream
// (e.g. one fully independent simulator per sweep scenario). Distinct
// labels yield decorrelated seeds; the result depends only on (base,
// label), never on call order or concurrency.
func DeriveSeed(base uint64, label string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for b := 0; b < 8; b++ {
		buf[b] = byte(base >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	// One SplitMix64 finalisation decorrelates related labels.
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State returns the stream's internal xoshiro256** state, for
// checkpointing. A stream restored from it with SetState produces the
// identical draw sequence from that point on, which is what lets a forked
// simulation replay bit-for-bit.
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State.
func (r *Stream) SetState(s [4]uint64) { r.s = s }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Marsaglia polar method, one value per call).
func (r *Stream) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// TruncNormal returns a normal value clamped to [lo, hi] by resampling (up
// to a bound) then clamping, preserving determinism.
func (r *Stream) TruncNormal(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 16; i++ {
		x := r.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has mean mu and standard deviation sigma.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard u == 0 (Log(0) = -Inf).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / rate
}

// BoundedPareto returns a value from a bounded Pareto distribution on
// [lo, hi] with shape alpha > 0. Used for heavy-tailed job sizes.
func (r *Stream) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("rng: BoundedPareto parameters invalid")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Categorical draws an index with probability proportional to weights[i].
// It panics if weights is empty or sums to a non-positive value.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical sampler from non-negative weights.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("rng: empty categorical")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN categorical weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Categorical{cum: cum}
}

// Draw samples an index from the distribution using stream r.
func (c *Categorical) Draw(r *Stream) int {
	u := r.Float64()
	// Binary search over the cumulative weights.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

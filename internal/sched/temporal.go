// Temporal scheduling policies: the carbon-aware "when to start" layer of
// the scheduler. The paper's §2 analysis shows that once the grid swings
// between the <30 and >100 gCO2/kWh bands, moving flexible work into
// low-intensity windows changes total emissions as much as any operating
// point does; these policies are the scheduler-side mechanism for that.
//
// A TemporalPolicy is consulted whenever a job is otherwise startable
// (nodes free, power cap clear). It may start the job, defer it without
// blocking (the job is parked in the held list and the queue behind it
// proceeds — used for delay-flexible shifting), or defer it blocking
// (admission as a whole is throttled — used for the carbon-budget
// throttle). A nil policy is the greedy FCFS baseline and leaves the
// scheduler's behaviour byte-identical to a build without this layer.
//
// Determinism: policies draw no randomness at decision time. Flexibility
// is a pure hash of the job ID (rng.DeriveSeed), and forecast queries are
// pure functions of (issue, target) — see the forecast package — so runs
// are reproducible at any worker count.
package sched

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/forecast"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

// TemporalDecision is a temporal policy's verdict on a start candidate.
type TemporalDecision struct {
	// Start allows the job to start now.
	Start bool
	// Block, when deferring, stops all admission (head-of-queue blocks)
	// instead of parking just this job.
	Block bool
	// Recheck is when to re-evaluate a deferred job (zero means on the
	// next scheduling event only).
	Recheck time.Time
}

// TemporalPolicy decides whether an otherwise-startable job may start
// now. committed is the scheduler's current busy-power estimate and
// jobPower the candidate's estimated draw, so budget-style policies can
// throttle on projected totals.
type TemporalPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide is called at most once per job per scheduling pass.
	Decide(j *Job, now time.Time, committed, jobPower units.Power) TemporalDecision
}

// GreedyPolicy starts every job as soon as resources allow — the FCFS
// baseline every carbon-aware policy is measured against. It is
// equivalent to a nil policy.
type GreedyPolicy struct{}

// Name implements TemporalPolicy.
func (GreedyPolicy) Name() string { return "fcfs" }

// Decide implements TemporalPolicy.
func (GreedyPolicy) Decide(*Job, time.Time, units.Power, units.Power) TemporalDecision {
	return TemporalDecision{Start: true}
}

// DelayFlexiblePolicy parks flexible jobs until a low-carbon window: when
// the current intensity is above Threshold, a flexible job is deferred to
// the forecast-optimal start within its delay allowance instead of
// starting immediately. Inflexible jobs, and any job whose allowance has
// run out, start unconditionally, bounding the worst-case added wait by
// MaxDelay.
type DelayFlexiblePolicy struct {
	// Forecast supplies intensity forecasts (required).
	Forecast *forecast.Forecaster
	// Threshold is the intensity below which "now" is good enough and no
	// delay is considered.
	Threshold units.CarbonIntensity
	// MaxDelay bounds the added wait per job, measured from submission.
	MaxDelay time.Duration
	// FlexibleShare is the fraction of jobs eligible for delaying,
	// selected by a deterministic hash of the job ID.
	FlexibleShare float64
	// Seed decorrelates the flexibility hash between experiments.
	Seed uint64
}

// Name implements TemporalPolicy.
func (p *DelayFlexiblePolicy) Name() string { return "delay-flexible" }

// Flexible reports whether the job is delay-eligible under this policy:
// a pure hash of the job ID against FlexibleShare, independent of call
// order and of every random stream the simulation consumes.
func (p *DelayFlexiblePolicy) Flexible(id int) bool {
	if p.FlexibleShare >= 1 {
		return true
	}
	if p.FlexibleShare <= 0 {
		return false
	}
	h := rng.DeriveSeed(p.Seed, fmt.Sprintf("flex/%d", id))
	return float64(h>>11)/(1<<53) < p.FlexibleShare
}

// Decide implements TemporalPolicy.
func (p *DelayFlexiblePolicy) Decide(j *Job, now time.Time, _, _ units.Power) TemporalDecision {
	deadline := j.Submit.Add(p.MaxDelay)
	if !p.Flexible(j.Spec.ID) || !now.Before(deadline) {
		return TemporalDecision{Start: true}
	}
	ci, ok := p.Forecast.Now(now)
	if !ok || ci.GramsPerKWh() <= p.Threshold.GramsPerKWh() {
		return TemporalDecision{Start: true}
	}
	best, bestCI, ok := p.Forecast.BestStart(now, deadline.Sub(now), j.Spec.RefRuntime)
	if !ok || !best.After(now) || bestCI.GramsPerKWh() >= ci.GramsPerKWh() {
		// No forecast window beats starting now.
		return TemporalDecision{Start: true}
	}
	return TemporalDecision{Recheck: best}
}

// CarbonBudgetPolicy is a rolling carbon-budget throttle: a job may start
// only while the projected carbon burn rate — committed busy power plus
// the candidate's draw, times the current grid intensity — stays within
// BudgetPerHour. Over budget, admission blocks as a whole (like the
// power cap, but denominated in gCO2e/h, so the same budget admits more
// work on a cleaner grid) and is re-evaluated every forecast step.
type CarbonBudgetPolicy struct {
	// Forecast supplies the current intensity (required).
	Forecast *forecast.Forecaster
	// BudgetPerHour is the admissible carbon burn rate.
	BudgetPerHour units.Mass
}

// Name implements TemporalPolicy.
func (p *CarbonBudgetPolicy) Name() string { return "carbon-budget" }

// BurnRate returns the carbon burn rate of drawing `power` at the
// intensity in force at t (zero when the trace has no value yet).
func (p *CarbonBudgetPolicy) BurnRate(power units.Power, t time.Time) units.Mass {
	ci, ok := p.Forecast.Now(t)
	if !ok {
		return 0
	}
	return units.Grams(power.Kilowatts() * ci.GramsPerKWh())
}

// Decide implements TemporalPolicy.
func (p *CarbonBudgetPolicy) Decide(j *Job, now time.Time, committed, jobPower units.Power) TemporalDecision {
	if p.BudgetPerHour.Grams() <= 0 {
		return TemporalDecision{Start: true}
	}
	projected := p.BurnRate(committed+jobPower, now)
	if projected.Grams() <= p.BudgetPerHour.Grams() {
		return TemporalDecision{Start: true}
	}
	// Over budget: block admission and re-evaluate when the intensity
	// next changes (one trace step) — finishes also retrigger scheduling.
	return TemporalDecision{Block: true, Recheck: now.Add(p.Forecast.Step())}
}

package sched

import (
	"math/rand"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/workload"
)

// Reference implementations for the range ops: brute-force scans.
func refCountRange(s *nodeSet, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if s.Contains(i) {
			n++
		}
	}
	return n
}

func TestNodeSetCountRange(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		size := 1 + r.Intn(300)
		s := newNodeSet(size)
		for i := 0; i < size; i++ {
			if r.Intn(2) == 0 {
				s.Remove(i)
			}
		}
		for k := 0; k < 20; k++ {
			lo := r.Intn(size + 1)
			hi := lo + r.Intn(size+1-lo)
			if got, want := s.CountRange(lo, hi), refCountRange(s, lo, hi); got != want {
				t.Fatalf("size %d CountRange(%d, %d) = %d, want %d", size, lo, hi, got, want)
			}
		}
		if got := s.CountRange(0, size); got != s.Count() {
			t.Fatalf("full-range count %d != Count() %d", got, s.Count())
		}
	}
}

func TestNodeSetTakeLowestRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		size := 64 + r.Intn(300)
		s := newNodeSet(size)
		for i := 0; i < size; i++ {
			if r.Intn(3) == 0 {
				s.Remove(i)
			}
		}
		lo := r.Intn(size)
		hi := lo + 1 + r.Intn(size-lo)
		avail := s.CountRange(lo, hi)
		if avail == 0 {
			continue
		}
		n := 1 + r.Intn(avail)
		// Expected: the n lowest member IDs within [lo, hi).
		var want []int
		for i := lo; i < hi && len(want) < n; i++ {
			if s.Contains(i) {
				want = append(want, i)
			}
		}
		before := s.Count()
		got := s.TakeLowestRange(n, lo, hi, nil)
		if len(got) != n {
			t.Fatalf("took %d IDs, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("taken IDs %v, want %v", got, want)
			}
			if s.Contains(got[i]) {
				t.Fatalf("ID %d still in set after take", got[i])
			}
		}
		if s.Count() != before-n {
			t.Fatalf("count %d after taking %d from %d", s.Count(), n, before)
		}
		// The set must still interoperate with the unranged TakeLowest.
		if s.Count() > 0 {
			rest := s.TakeLowest(1, nil)
			if len(rest) != 1 {
				t.Fatalf("TakeLowest after ranged take returned %v", rest)
			}
		}
	}
}

// heteroRig is a scheduler over a two-partition facility: a small CPU
// partition plus an AI partition.
func newHeteroRig(t *testing.T, cpuNodes, aiNodes int, cfg Config) *rig {
	t.Helper()
	fcfg := facility.ARCHER2()
	fcfg.Nodes = cpuNodes
	fcfg.Partitions = []facility.Partition{facility.AIPartition(aiNodes)}
	fac, err := facility.New(fcfg, rng.New(5), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	s := New(eng, fac, stockProvider{fcfg.CPU}, cfg)
	r := newRig(t, 1, cfg) // only for the shared test app
	return &rig{eng: eng, fac: fac, s: s, app: r.app}
}

func (r *rig) partSpec(id, part, nodes int, runtime time.Duration) workload.JobSpec {
	s := r.spec(id, nodes, runtime)
	s.Partition = part
	return s
}

// Jobs land on their own partition's nodes, run at that partition's
// default operating point, and free accounting is per partition.
func TestHeterogeneousPlacement(t *testing.T) {
	r := newHeteroRig(t, 10, 4, DefaultConfig())
	gpuSpec := r.fac.Partition(1).CPU

	jc := r.s.Submit(r.partSpec(1, 0, 6, time.Hour))
	jg := r.s.Submit(r.partSpec(2, 1, 3, time.Hour))
	if jc.State != Running || jg.State != Running {
		t.Fatalf("states %v / %v, want both running", jc.State, jg.State)
	}
	for _, id := range jc.Nodes {
		if p := r.fac.PartitionOfNode(id); p != 0 {
			t.Fatalf("CPU job node %d in partition %d", id, p)
		}
	}
	for _, id := range jg.Nodes {
		if p := r.fac.PartitionOfNode(id); p != 1 {
			t.Fatalf("AI job node %d in partition %d", id, p)
		}
	}
	if jg.Setting != gpuSpec.DefaultSetting() {
		t.Errorf("AI job setting %+v, want GPU default %+v", jg.Setting, gpuSpec.DefaultSetting())
	}

	// A job larger than its partition is dropped even though the fleet
	// has enough nodes in total.
	if jd := r.s.Submit(r.partSpec(3, 1, 5, time.Hour)); jd.State != Dropped {
		t.Errorf("oversized AI job state %v, want dropped", jd.State)
	}
	// The CPU partition still takes a job of its full remaining size.
	if j := r.s.Submit(r.partSpec(4, 0, 4, time.Hour)); j.State != Running {
		t.Errorf("CPU fill job state %v, want running", j.State)
	}
}

// A queue head blocked on its own partition must not stop a job in the
// other partition from starting (it cannot delay the head).
func TestHeterogeneousBackfillAcrossPartitions(t *testing.T) {
	r := newHeteroRig(t, 10, 4, DefaultConfig())
	if j := r.s.Submit(r.partSpec(1, 0, 10, 2*time.Hour)); j.State != Running {
		t.Fatal("first CPU job should run")
	}
	// Head: CPU job that must wait for the first to finish.
	head := r.s.Submit(r.partSpec(2, 0, 10, time.Hour))
	if head.State != Queued {
		t.Fatal("head should queue")
	}
	// An AI job behind the blocked head starts immediately — a long
	// runtime (well past the head's shadow) must not matter.
	jg := r.s.Submit(r.partSpec(3, 1, 4, 8*time.Hour))
	if jg.State != Running {
		t.Fatalf("AI job state %v, want running behind blocked CPU head", jg.State)
	}
	r.eng.Run()
	if head.State != Completed || jg.State != Completed {
		t.Fatalf("end states %v / %v", head.State, jg.State)
	}
}

// Preemption for a high-priority head only evicts victims in the head's
// partition.
func TestHeterogeneousPreemptionStaysInPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preemption = PreemptRequeue
	r := newHeteroRig(t, 8, 4, cfg)
	jg := r.s.Submit(r.partSpec(1, 1, 4, 4*time.Hour)) // fills the AI partition
	jc := r.s.Submit(r.partSpec(2, 0, 8, 4*time.Hour)) // fills the CPU partition
	if jg.State != Running || jc.State != Running {
		t.Fatal("setup jobs should run")
	}
	hi := r.partSpec(3, 1, 4, time.Hour)
	hi.Priority = 10
	jhi := r.s.Submit(hi)
	if jhi.State != Running {
		t.Fatalf("high-priority AI job state %v, want running after preemption", jhi.State)
	}
	if jg.State != Queued {
		t.Errorf("AI victim state %v, want requeued", jg.State)
	}
	if jc.State != Running {
		t.Errorf("CPU job state %v — preemption crossed partitions", jc.State)
	}
}

package sched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

// Property-style randomized scenario tests for the scheduler's global
// invariants, complementing the targeted cases in sched_test.go.

// TestPropertyPowerCapNeverExceeded: under any admission sequence with a
// cap, the committed power ledger never exceeds the cap at admission time
// (the estimate uses expected power; in Power Determinism die factors are
// exactly 1, so estimate == actual and the invariant is exact).
func TestPropertyPowerCapNeverExceeded(t *testing.T) {
	prop := func(seed uint64, capKW uint8) bool {
		r := newRigQuick(seed)
		cap := units.Kilowatts(2 + float64(capKW%20))
		r.s.SetPowerCap(cap)
		stream := rng.New(seed).Split("jobs")
		ok := true
		check := func() {
			if r.s.EstimatedBusyPower().Watts() > cap.Watts()*(1+1e-9) {
				ok = false
			}
		}
		r.s.OnJobEnd(func(*Job) { check() })
		for i := 0; i < 60; i++ {
			nodes := 1 + stream.Intn(8)
			rt := time.Duration(1+stream.Intn(6)) * time.Hour
			r.s.Submit(r.spec(i, nodes, rt))
			check()
		}
		r.eng.Run()
		check()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyJobsConserved: submitted == completed + failed + dropped +
// queued + running at every quiescent point, for arbitrary job streams
// with failures and repairs mixed in.
func TestPropertyJobsConserved(t *testing.T) {
	prop := func(seed uint64) bool {
		r := newRigQuick(seed)
		stream := rng.New(seed).Split("mix")
		for i := 0; i < 120; i++ {
			switch stream.Intn(6) {
			case 0, 1, 2, 3:
				nodes := 1 + stream.Intn(10)
				rt := time.Duration(1+stream.Intn(12)) * time.Hour
				r.s.Submit(r.spec(i, nodes, rt))
			case 4:
				_ = r.s.FailNode(stream.Intn(30))
			case 5:
				_ = r.s.RepairNode(stream.Intn(30))
			}
			// Advance a random amount so the stream interleaves with ends.
			r.eng.RunUntil(r.eng.Now().Add(time.Duration(stream.Intn(120)) * time.Minute))
		}
		r.eng.Run()
		st := r.s.Stats()
		accounted := st.Completed + st.Failed + st.Dropped + r.s.QueueDepth() + r.s.RunningJobs()
		return accounted == st.Submitted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUtilisationBounded: utilisation stays in [0, 1] under
// arbitrary failure/repair/submission interleavings.
func TestPropertyUtilisationBounded(t *testing.T) {
	prop := func(seed uint64) bool {
		r := newRigQuick(seed)
		stream := rng.New(seed).Split("util")
		for i := 0; i < 80; i++ {
			if stream.Float64() < 0.7 {
				r.s.Submit(r.spec(i, 1+stream.Intn(6), time.Hour))
			} else if stream.Float64() < 0.5 {
				_ = r.s.FailNode(stream.Intn(30))
			} else {
				_ = r.s.RepairNode(stream.Intn(30))
			}
			u := r.s.Utilisation()
			if u < 0 || u > 1+1e-12 {
				return false
			}
			r.eng.RunUntil(r.eng.Now().Add(30 * time.Minute))
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// newRigQuick builds a small deterministic rig without requiring *testing.T
// (quick properties return bool).
func newRigQuick(seed uint64) *rig {
	fcfg := facility.ARCHER2()
	fcfg.Nodes = 30
	fac, err := facility.New(fcfg, rng.New(seed), t0)
	if err != nil {
		panic(err)
	}
	eng := des.NewEngine(t0)
	s := New(eng, fac, stockProvider{fcfg.CPU}, DefaultConfig())
	app := &apps.App{
		Name:    "quick-app",
		Kernel:  roofline.Kernel{ComputeFraction: 0.5},
		ActCore: 0.6, ActUncore: 0.6,
	}
	return &rig{eng: eng, fac: fac, s: s, app: app}
}

package sched

import (
	"sort"
	"time"
)

// backfillConservative protects every queued job it scans, not just the
// head: each of the first BackfillDepth+1 queued jobs gets a planned
// start computed against a node-capacity profile (current free nodes,
// plus future releases from running jobs and reservation ends, minus
// future reservation holds), reserved in queue order. A job starts now
// only if the profile says now is its earliest feasible start — i.e.
// starting it cannot delay any earlier queued job's plan. Queue jobs
// beyond the scan limit are unprotected, which bounds the pass at
// O(depth x profile) like the EASY scan it replaces.
func (s *Scheduler) backfillConservative(now time.Time) {
	s.bfCache = s.bfCache[:0]
	p := &s.prof
	p.reset(now, s.free.Count())
	for _, rj := range s.running {
		if n := s.releasable(rj); n > 0 {
			p.addEvent(rj.End, n)
		}
	}
	for _, rs := range s.resvs {
		if rs.started {
			if rs.count > 0 {
				p.addEvent(rs.res.To, rs.count)
			}
			continue
		}
		// A pending hold will take up to len(Nodes) from the pool over
		// its window; modelling the full width is the conservative
		// choice (planned starts route around the whole hold).
		p.addEvent(rs.res.From, -len(rs.res.Nodes))
		p.addEvent(rs.res.To, len(rs.res.Nodes))
	}
	p.build()

	limit := s.cfg.BackfillDepth + 1
	if limit > s.queue.Len() {
		limit = s.queue.Len()
	}
	for i := 0; i < limit; {
		j := s.queue.At(i)
		rt := s.predictRuntime(j)
		at := p.earliestStart(j.Spec.Nodes, rt)
		if at.IsZero() {
			// Never fits the profile (e.g. nodes out for repair or held
			// by an open-ended run of reservations); leave it queued and
			// unplanned.
			i++
			continue
		}
		if at.Equal(now) && j.Spec.Nodes <= s.freeFor(j) && s.withinPowerCap(j) {
			d := s.temporalDecision(j, now)
			if !d.Start && d.Block {
				s.scheduleRecheck(d.Recheck, now)
				return
			}
			s.queue.RemoveAt(i)
			limit--
			if !d.Start {
				// Parked jobs leave the queue, so they reserve nothing.
				s.hold(j, d.Recheck, now)
				continue
			}
			s.start(j, now)
			p.reserve(now, rt, j.Spec.Nodes)
			continue
		}
		p.reserve(at, rt, j.Spec.Nodes)
		i++
	}
}

// capEvent is one future capacity change.
type capEvent struct {
	at    time.Time
	delta int
}

// capProfile is a piecewise-constant free-node count over [now, inf):
// free[i] holds over [times[i], times[i+1]), the last segment extending
// forever. All slices are retained scratch, reused across passes.
type capProfile struct {
	evs   []capEvent
	times []time.Time
	free  []int
}

func (p *capProfile) reset(now time.Time, avail int) {
	p.evs = append(p.evs[:0], capEvent{at: now, delta: avail})
}

func (p *capProfile) addEvent(at time.Time, delta int) {
	p.evs = append(p.evs, capEvent{at: at, delta: delta})
}

// build sorts the events and folds them into breakpoint form. The sort
// is a stable insertion sort rather than sort.SliceStable: the event
// list is short and nearly ordered (running-job releases arrive already
// End-sorted), and the closure-free form keeps the whole backfill pass
// allocation-free (TestBackfillScanAllocFree).
func (p *capProfile) build() {
	for i := 1; i < len(p.evs); i++ {
		for k := i; k > 0 && p.evs[k].at.Before(p.evs[k-1].at); k-- {
			p.evs[k], p.evs[k-1] = p.evs[k-1], p.evs[k]
		}
	}
	p.times, p.free = p.times[:0], p.free[:0]
	cum := 0
	for _, ev := range p.evs {
		cum += ev.delta
		if n := len(p.times); n > 0 && p.times[n-1].Equal(ev.at) {
			p.free[n-1] = cum
			continue
		}
		p.times = append(p.times, ev.at)
		p.free = append(p.free, cum)
	}
}

// earliestStart returns the first breakpoint from which n nodes stay
// available for rt, or the zero time if no such point exists (capacity
// never recovers to n).
func (p *capProfile) earliestStart(n int, rt time.Duration) time.Time {
	for i := 0; i < len(p.times); i++ {
		if p.free[i] < n {
			continue
		}
		end := p.times[i].Add(rt)
		ok := true
		for k := i + 1; k < len(p.times) && p.times[k].Before(end); k++ {
			if p.free[k] < n {
				ok = false
				break
			}
		}
		if ok {
			return p.times[i]
		}
	}
	return time.Time{}
}

// reserve subtracts n nodes over [from, from+rt).
func (p *capProfile) reserve(from time.Time, rt time.Duration, n int) {
	i := p.split(from)
	j := p.split(from.Add(rt))
	for k := i; k < j; k++ {
		p.free[k] -= n
	}
}

// split ensures a breakpoint exists exactly at t (t >= times[0]) and
// returns its index.
func (p *capProfile) split(t time.Time) int {
	i := sort.Search(len(p.times), func(k int) bool { return !p.times[k].Before(t) })
	if i < len(p.times) && p.times[i].Equal(t) {
		return i
	}
	// Insert between i-1 and i, inheriting the segment's level.
	p.times = append(p.times, time.Time{})
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = p.free[i-1]
	return i
}

package sched

import (
	"fmt"
	"sort"
	"time"

	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/node"
)

// Reservation is a drain/maintenance hold on a set of nodes over
// [From, To): at From, free reserved nodes leave the schedulable pool
// immediately and busy ones drain — their running jobs finish
// undisturbed, and the nodes are captured as they come free. At To,
// every captured node returns to service. The semantics mirror a Slurm
// maintenance reservation with graceful drain: start and backfill route
// around the hold (captured nodes are in neither the free set nor
// UpNodes), but running work is never killed for it.
type Reservation struct {
	Name  string
	Nodes []int
	From  time.Time
	To    time.Time
}

// resvState is one reservation's live bookkeeping.
type resvState struct {
	res     Reservation
	started bool
	// count is the number of nodes currently captured.
	count int
	// startEvent is pending until From (unset if From had passed at
	// install time); endEvent is pending until To.
	startEvent des.Handle
	endEvent   des.Handle
}

// AddReservation installs a reservation at the current simulation time.
// A From at or before now takes effect immediately; To must be in the
// future. Node IDs are copied, deduplicated and sorted.
func (s *Scheduler) AddReservation(r Reservation) error {
	now := s.eng.Now()
	if len(r.Nodes) == 0 {
		return fmt.Errorf("sched: reservation %q has no nodes", r.Name)
	}
	if !r.To.After(r.From) {
		return fmt.Errorf("sched: reservation %q window [%v, %v) is empty", r.Name, r.From, r.To)
	}
	if !r.To.After(now) {
		return fmt.Errorf("sched: reservation %q ends at %v, in the past", r.Name, r.To)
	}
	nodes := append([]int(nil), r.Nodes...)
	sort.Ints(nodes)
	w := 0
	for i, id := range nodes {
		if id < 0 || id >= s.fac.NodeCount() {
			return fmt.Errorf("sched: reservation %q: no node %d", r.Name, id)
		}
		if i > 0 && id == nodes[w-1] {
			continue
		}
		nodes[w] = id
		w++
	}
	r.Nodes = nodes[:w]

	rs := &resvState{res: r}
	s.resvs = append(s.resvs, rs)
	if r.From.After(now) {
		rs.startEvent = s.eng.AtArg(r.From, s.resvStartFn, rs)
	} else {
		s.resvStart(rs, now)
	}
	rs.endEvent = s.eng.AtArg(r.To, s.resvEndFn, rs)
	return nil
}

// CancelReservation ends (or, if not yet started, removes) the named
// reservation, returning whether one was found.
func (s *Scheduler) CancelReservation(name string) bool {
	for _, rs := range s.resvs {
		if rs.res.Name != name {
			continue
		}
		if !rs.started {
			s.eng.Cancel(rs.startEvent)
		}
		s.eng.Cancel(rs.endEvent)
		s.resvEnd(rs, s.eng.Now())
		return true
	}
	return false
}

// Reservations returns the names of the installed (pending or active)
// reservations.
func (s *Scheduler) Reservations() []string {
	names := make([]string, len(s.resvs))
	for i, rs := range s.resvs {
		names[i] = rs.res.Name
	}
	return names
}

// ReservedNodes returns the number of nodes currently captured by
// reservations (out of the free set and UpNodes).
func (s *Scheduler) ReservedNodes() int { return len(s.captured) }

// DrainingNodes returns the number of busy nodes a started reservation
// is waiting to capture.
func (s *Scheduler) DrainingNodes() int { return len(s.draining) }

// resvStart brings a reservation's window into force: free reserved
// nodes are captured at once, busy ones are marked draining (captured by
// releaseNode when their job ends). Down nodes are skipped — RepairNode
// captures them if they return during the window — and nodes already
// held by an overlapping reservation stay with their first captor.
func (s *Scheduler) resvStart(rs *resvState, _ time.Time) {
	rs.started = true
	for _, id := range rs.res.Nodes {
		if s.fac.Node(id).State() != node.Up {
			continue
		}
		if _, busy := s.byNode[id]; busy {
			if s.draining == nil {
				s.draining = make(map[int]*resvState)
			}
			if _, taken := s.draining[id]; !taken {
				s.draining[id] = rs
			}
		} else if s.free.Remove(id) {
			s.capture(rs, id)
			s.upNodes--
		}
	}
}

// resvEnd releases a reservation: captured nodes return to service,
// still-draining markers are dropped (those nodes go straight back to
// the free set when their job ends), and the reservation is removed.
func (s *Scheduler) resvEnd(rs *resvState, now time.Time) {
	for _, id := range rs.res.Nodes {
		if s.captured[id] == rs {
			s.uncapture(rs, id)
			s.upNodes++
			s.free.Add(id)
		}
		if s.draining[id] == rs {
			delete(s.draining, id)
		}
	}
	for i, r := range s.resvs {
		if r == rs {
			s.resvs = append(s.resvs[:i], s.resvs[i+1:]...)
			break
		}
	}
	s.trySchedule(now)
}

// capture records id as held by rs. Callers adjust upNodes: a capture
// from the schedulable pool (free or finishing-busy) decrements it, a
// capture at repair (the node was Down, already outside) does not.
func (s *Scheduler) capture(rs *resvState, id int) {
	if s.captured == nil {
		s.captured = make(map[int]*resvState)
	}
	s.captured[id] = rs
	rs.count++
}

// uncapture removes id from rs's ledger. Callers adjust upNodes and the
// free set: a window end returns the node to both, a failure to neither.
func (s *Scheduler) uncapture(rs *resvState, id int) {
	delete(s.captured, id)
	rs.count--
}

// activeReservationFor returns the started reservation covering id, if
// any.
func (s *Scheduler) activeReservationFor(id int) *resvState {
	for _, rs := range s.resvs {
		if !rs.started {
			continue
		}
		i := sort.SearchInts(rs.res.Nodes, id)
		if i < len(rs.res.Nodes) && rs.res.Nodes[i] == id {
			return rs
		}
	}
	return nil
}

// releasable returns how many of rj's nodes will return to the free
// pool when it ends (its draining nodes are captured instead).
func (s *Scheduler) releasable(rj *Job) int {
	if len(s.draining) == 0 {
		return len(rj.Nodes)
	}
	n := 0
	for _, id := range rj.Nodes {
		if s.draining[id] == nil {
			n++
		}
	}
	return n
}

// mergedShadow computes the EASY shadow point (time and spare nodes)
// when reservations are in play: future node releases come both from
// running jobs (their non-draining nodes, at End) and from started
// reservations (their captured nodes, at To), merged in time order.
func (s *Scheduler) mergedShadow(avail, need int) (time.Time, int) {
	type release struct {
		at time.Time
		n  int
	}
	var rel []release
	for _, rj := range s.running {
		if n := s.releasable(rj); n > 0 {
			rel = append(rel, release{at: rj.End, n: n})
		}
	}
	for _, rs := range s.resvs {
		if rs.started && rs.count > 0 {
			rel = append(rel, release{at: rs.res.To, n: rs.count})
		}
	}
	sort.SliceStable(rel, func(i, j int) bool { return rel[i].at.Before(rel[j].at) })
	cum := avail
	for _, r := range rel {
		cum += r.n
		if cum >= need {
			return r.at, cum - need
		}
	}
	return time.Time{}, 0
}

package sched

import (
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/forecast"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// squareTrace builds an intensity trace alternating high/low every
// `period`, starting high at t0, for `days` days at 30-minute steps.
func squareTrace(days int, period time.Duration, high, low float64) *timeseries.Series {
	s := timeseries.New("ci", "gCO2/kWh")
	end := t0.AddDate(0, 0, days)
	for ts := t0; ts.Before(end); ts = ts.Add(30 * time.Minute) {
		v := high
		if (ts.Sub(t0)/period)%2 == 1 {
			v = low
		}
		s.MustAppend(ts, v)
	}
	return s
}

func mustForecaster(t *testing.T, tr *timeseries.Series, em forecast.ErrorModel) *forecast.Forecaster {
	t.Helper()
	f, err := forecast.New(tr, em)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A GreedyPolicy must be behaviourally identical to no policy at all:
// same starts, same stats, no holds.
func TestGreedyPolicyMatchesNilPolicy(t *testing.T) {
	run := func(cfg Config) Stats {
		r := newRig(t, 16, cfg)
		for i := 0; i < 12; i++ {
			r.s.Submit(r.spec(i, 4, 2*time.Hour))
		}
		r.eng.Run()
		return r.s.Stats()
	}
	nilStats := run(Config{BackfillDepth: 8, MaxQueue: 100})
	greedy := run(Config{BackfillDepth: 8, MaxQueue: 100, Temporal: GreedyPolicy{}})
	if nilStats != greedy {
		t.Errorf("greedy policy diverged from nil policy:\n%+v\nvs\n%+v", nilStats, greedy)
	}
	if greedy.Holds != 0 || greedy.HoldDelay != 0 {
		t.Errorf("greedy policy held jobs: %+v", greedy)
	}
}

// Delay-flexible must park flexible jobs submitted in a high-carbon
// window and start them in the next low-carbon window.
func TestDelayFlexibleShiftsIntoLowWindow(t *testing.T) {
	// 6-hour high/low square wave: high at t0, low from +6h.
	tr := squareTrace(2, 6*time.Hour, 300, 40)
	pol := &DelayFlexiblePolicy{
		Forecast:      mustForecaster(t, tr, forecast.ErrorModel{}),
		Threshold:     units.GramsPerKWh(100),
		MaxDelay:      12 * time.Hour,
		FlexibleShare: 1, // every job is flexible
	}
	r := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100, Temporal: pol})
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = r.s.Submit(r.spec(i, 4, time.Hour))
	}
	if r.s.BusyNodes() != 0 {
		t.Fatalf("jobs started during the high-carbon window (busy=%d)", r.s.BusyNodes())
	}
	if r.s.HeldJobs() != 4 {
		t.Fatalf("held %d jobs, want 4", r.s.HeldJobs())
	}
	r.eng.Run()
	st := r.s.Stats()
	if st.Completed != 4 {
		t.Fatalf("completed %d jobs, want 4: %+v", st.Completed, st)
	}
	if st.Holds == 0 || st.HoldDelay == 0 {
		t.Fatalf("no holds recorded: %+v", st)
	}
	lowStart := t0.Add(6 * time.Hour)
	for i, j := range jobs {
		if j.Start.Before(lowStart) {
			t.Errorf("job %d started at %v, before the low-carbon window at %v",
				i, j.Start, lowStart)
		}
	}
}

// An inflexible job (share 0) must start immediately even in a
// high-carbon window, and a flexible job past its delay allowance must
// start too (the policy bounds worst-case added wait).
func TestDelayFlexibleBounds(t *testing.T) {
	tr := squareTrace(3, 36*time.Hour, 300, 40) // high for the first 36h
	fc := mustForecaster(t, tr, forecast.ErrorModel{})

	inflex := &DelayFlexiblePolicy{Forecast: fc, Threshold: units.GramsPerKWh(100), MaxDelay: 12 * time.Hour}
	r := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100, Temporal: inflex})
	if j := r.s.Submit(r.spec(1, 4, time.Hour)); j.State != Running {
		t.Fatalf("inflexible job deferred: %v", j.State)
	}

	// Flexible, but the whole 12h allowance is inside the high window and
	// the forecast shows no better start: the job must run, not park.
	flex := &DelayFlexiblePolicy{Forecast: fc, Threshold: units.GramsPerKWh(100),
		MaxDelay: 12 * time.Hour, FlexibleShare: 1}
	r2 := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100, Temporal: flex})
	j := r2.s.Submit(r2.spec(1, 4, time.Hour))
	r2.eng.Run()
	if j.State != Completed {
		t.Fatalf("flexible job never ran: %v", j.State)
	}
	if got := j.WaitTime(); got > 12*time.Hour {
		t.Errorf("added wait %v exceeds the 12h allowance", got)
	}
}

// The satellite property test: with a zero-error forecast, every policy
// decision — and therefore the entire simulation outcome — is identical
// to a perfect-information run.
func TestZeroErrorForecastMatchesPerfectInformation(t *testing.T) {
	tr := squareTrace(3, 6*time.Hour, 250, 30)
	run := func(em forecast.ErrorModel, perfect bool) ([]time.Time, Stats) {
		fc := mustForecaster(t, tr, em)
		if perfect {
			var err error
			fc, err = forecast.Perfect(tr)
			if err != nil {
				t.Fatal(err)
			}
		}
		pol := &DelayFlexiblePolicy{Forecast: fc, Threshold: units.GramsPerKWh(100),
			MaxDelay: 10 * time.Hour, FlexibleShare: 0.7, Seed: 11}
		r := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100, Temporal: pol})
		var jobs []*Job
		for i := 0; i < 20; i++ {
			jobs = append(jobs, r.s.Submit(r.spec(i, 2+i%4, time.Duration(1+i%3)*time.Hour)))
		}
		r.eng.Run()
		starts := make([]time.Time, len(jobs))
		for i, j := range jobs {
			starts[i] = j.Start
		}
		return starts, r.s.Stats()
	}
	zeroStarts, zeroStats := run(forecast.ErrorModel{Seed: 99}, false) // zero sigmas, seed irrelevant
	perfStarts, perfStats := run(forecast.ErrorModel{}, true)
	for i := range zeroStarts {
		if !zeroStarts[i].Equal(perfStarts[i]) {
			t.Fatalf("job %d start differs: zero-error %v vs perfect %v",
				i, zeroStarts[i], perfStarts[i])
		}
	}
	if zeroStats != perfStats {
		t.Fatalf("stats differ:\n%+v\nvs\n%+v", zeroStats, perfStats)
	}

	// And a noisy forecast must actually change decisions somewhere —
	// otherwise the property above is vacuous.
	noisyStarts, _ := run(forecast.ErrorModel{Sigma0: 120, GrowthPerSqrtHour: 60, Seed: 2}, false)
	same := true
	for i := range noisyStarts {
		if !noisyStarts[i].Equal(perfStarts[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("a heavily noisy forecast changed no decision; error model not wired through")
	}
}

// The carbon-budget throttle must keep the projected burn rate under
// budget: with a budget sized for half the fleet, only about half the
// nodes may run during the high-intensity phase, and admission recovers
// in the low phase.
func TestCarbonBudgetThrottle(t *testing.T) {
	tr := squareTrace(2, 6*time.Hour, 200, 20)
	fc := mustForecaster(t, tr, forecast.ErrorModel{})

	// Measure the unthrottled committed power of the full 16-node fleet.
	probe := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100})
	for i := 0; i < 4; i++ {
		probe.s.Submit(probe.spec(i, 4, 8*time.Hour))
	}
	fullKW := probe.s.EstimatedBusyPower().Kilowatts()

	// Budget: half the full-fleet burn at 200 g/kWh.
	budget := units.Grams(fullKW / 2 * 200)
	pol := &CarbonBudgetPolicy{Forecast: fc, BudgetPerHour: budget}
	r := newRig(t, 16, Config{BackfillDepth: 8, MaxQueue: 100, Temporal: pol})
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = r.s.Submit(r.spec(i, 4, 8*time.Hour))
	}
	if got := r.s.EstimatedBusyPower().Kilowatts(); got > fullKW/2*1.01 {
		t.Fatalf("throttle admitted %v kW, budget allows ~%v", got, fullKW/2)
	}
	burn := pol.BurnRate(r.s.EstimatedBusyPower(), t0)
	if burn.Grams() > budget.Grams() {
		t.Fatalf("burn rate %v over budget %v", burn, budget)
	}
	if r.s.BusyNodes() == 0 {
		t.Fatal("throttle blocked everything; budget should admit some work")
	}
	// At +6h the grid drops to 20 g/kWh: the same budget admits the rest.
	r.eng.RunUntil(t0.Add(7 * time.Hour))
	if r.s.BusyNodes() != 16 {
		t.Errorf("clean-grid window did not unthrottle: busy=%d want 16", r.s.BusyNodes())
	}
	r.eng.Run()
	if st := r.s.Stats(); st.Completed != 4 {
		t.Errorf("completed %d, want 4: %+v", st.Completed, st)
	}
}

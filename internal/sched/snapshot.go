package sched

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/units"
)

// Snapshot is the scheduler's full mutable state at a checkpoint: the
// pending queue, the running set, temporal-policy parked jobs, the free
// bitmap, the power-cap ledger and the aggregate statistics — plus, for
// every pending engine event the scheduler owns (job completions, held
// releases, blocking-policy rechecks), the parent engine's sequence
// number, so a fork can re-schedule them in the exact relative order the
// parent would have fired them.
//
// Accumulated floats (estBusyW, the stats sums) are captured verbatim
// rather than recomputed: they were built by a particular sequence of
// additions and subtractions, and bit-identity of forked runs requires
// the accumulator state, not a mathematically-equal re-summation.
type Snapshot struct {
	stats    Stats
	busy     int
	upNodes  int
	powerCap units.Power
	estBusyW float64

	freeBits  []uint64
	freeCount int
	freeLow   int

	queued  []jobSnap // queue order
	running []jobSnap // End-sorted order
	held    []jobSnap

	recheckAt time.Time
	rechecks  []recheckSnap

	// Reservation state: the installed reservations (with their pending
	// window events' parent seqs) and the node->reservation capture and
	// drain ledgers, by index into resvs.
	resvs    []resvSnap
	captured []nodeResvSnap
	draining []nodeResvSnap
}

// resvSnap is one reservation's deep-copied state.
type resvSnap struct {
	res      Reservation
	started  bool
	startSeq uint64 // pending start events only (unstarted reservations)
	endSeq   uint64 // always pending while the reservation exists
}

// nodeResvSnap ties a node ID to a reservation by resvs index.
type nodeResvSnap struct {
	node int
	resv int
}

// jobSnap is one job's deep-copied state. The embedded Job value carries
// the parent's App pointer only as a class witness; Restore remaps it to
// the fork's own calibrated application model by class name.
type jobSnap struct {
	job        Job
	endSeq     uint64 // running jobs: parent seq of the completion event
	releaseSeq uint64 // held jobs: parent seq of the release event
}

// recheckSnap is one pending blocking-policy recheck event.
type recheckSnap struct {
	at  time.Time
	seq uint64
}

func snapJob(j *Job, endSeq, releaseSeq uint64) jobSnap {
	js := jobSnap{job: *j, endSeq: endSeq, releaseSeq: releaseSeq}
	js.job.Nodes = append([]int(nil), j.Nodes...)
	js.job.endEvent = des.Handle{}
	js.job.releaseEvent = des.Handle{}
	return js
}

// Snapshot captures the scheduler's state. The result shares no mutable
// memory with the scheduler: jobs and the free bitmap are deep-copied, so
// the snapshot stays valid however the parent runs on, and any number of
// forks can restore from it concurrently.
func (s *Scheduler) Snapshot() *Snapshot {
	snap := &Snapshot{
		stats:     s.stats,
		busy:      s.busy,
		upNodes:   s.upNodes,
		powerCap:  s.powerCap,
		estBusyW:  s.estBusyW,
		freeBits:  append([]uint64(nil), s.free.bits...),
		freeCount: s.free.count,
		freeLow:   s.free.low,
		recheckAt: s.recheckAt,
	}
	for i := 0; i < s.queue.Len(); i++ {
		snap.queued = append(snap.queued, snapJob(s.queue.At(i), 0, 0))
	}
	for _, j := range s.running {
		snap.running = append(snap.running, snapJob(j, j.endEvent.Seq(), 0))
	}
	for _, j := range s.heldJobs {
		snap.held = append(snap.held, snapJob(j, 0, j.releaseEvent.Seq()))
	}
	for _, ev := range s.recheckEvents {
		snap.rechecks = append(snap.rechecks, recheckSnap{at: ev.at, seq: ev.handle.Seq()})
	}
	index := make(map[*resvState]int, len(s.resvs))
	for i, rs := range s.resvs {
		index[rs] = i
		rsnap := resvSnap{started: rs.started, endSeq: rs.endEvent.Seq()}
		rsnap.res = rs.res
		rsnap.res.Nodes = append([]int(nil), rs.res.Nodes...)
		if !rs.started {
			rsnap.startSeq = rs.startEvent.Seq()
		}
		snap.resvs = append(snap.resvs, rsnap)
	}
	// Map iteration order is not deterministic; sort by node ID so two
	// snapshots of identical state are identical.
	for id, rs := range s.captured {
		snap.captured = append(snap.captured, nodeResvSnap{node: id, resv: index[rs]})
	}
	for id, rs := range s.draining {
		snap.draining = append(snap.draining, nodeResvSnap{node: id, resv: index[rs]})
	}
	sort.Slice(snap.captured, func(a, b int) bool { return snap.captured[a].node < snap.captured[b].node })
	sort.Slice(snap.draining, func(a, b int) bool { return snap.draining[a].node < snap.draining[b].node })
	return snap
}

// Restore overwrites a freshly constructed scheduler's state from a
// snapshot. resolve maps a job's workload class to this scheduler's own
// application model (forks must not alias the parent's). Pending events
// are not scheduled directly: each is handed to add with its parent
// sequence number, so the caller can interleave every subsystem's pending
// events in global parent order before scheduling them on the reset
// engine.
func (s *Scheduler) Restore(snap *Snapshot, resolve func(class string) (*apps.App, error), add func(seq uint64, schedule func())) error {
	s.stats = snap.stats
	s.busy = snap.busy
	s.upNodes = snap.upNodes
	s.powerCap = snap.powerCap
	s.estBusyW = snap.estBusyW
	s.free = &nodeSet{
		bits:  append([]uint64(nil), snap.freeBits...),
		count: snap.freeCount,
		low:   snap.freeLow,
	}
	s.queue = jobQueue{}
	s.running = nil
	s.heldJobs = nil
	s.recheckEvents = nil
	s.recheckAt = snap.recheckAt
	s.byNode = make(map[int]*Job, len(snap.running)*8)

	restoreJob := func(js jobSnap) (*Job, error) {
		j := new(Job)
		*j = js.job
		j.Nodes = append([]int(nil), js.job.Nodes...)
		app, err := resolve(js.job.Spec.Class)
		if err != nil {
			return nil, fmt.Errorf("sched: restore job %d: %w", js.job.Spec.ID, err)
		}
		j.Spec.App = app
		return j, nil
	}
	for _, js := range snap.queued {
		j, err := restoreJob(js)
		if err != nil {
			return err
		}
		s.queue.PushBack(j)
	}
	for _, js := range snap.running {
		j, err := restoreJob(js)
		if err != nil {
			return err
		}
		s.running = append(s.running, j)
		for _, id := range j.Nodes {
			s.byNode[id] = j
		}
		add(js.endSeq, func() { j.endEvent = s.eng.AtArg(j.End, s.completeFn, j) })
	}
	for _, js := range snap.held {
		j, err := restoreJob(js)
		if err != nil {
			return err
		}
		s.heldJobs = append(s.heldJobs, j)
		add(js.releaseSeq, func() { j.releaseEvent = s.eng.AtArg(j.releaseAt, s.releaseFn, j) })
	}
	for _, rs := range snap.rechecks {
		rs := rs
		add(rs.seq, func() {
			h := s.eng.AtArg(rs.at, s.recheckArgFn, rs.at)
			s.recheckEvents = append(s.recheckEvents, recheckEvent{at: rs.at, handle: h})
		})
	}
	s.resvs, s.captured, s.draining = nil, nil, nil
	for _, rsnap := range snap.resvs {
		rs := &resvState{res: rsnap.res, started: rsnap.started}
		rs.res.Nodes = append([]int(nil), rsnap.res.Nodes...)
		s.resvs = append(s.resvs, rs)
		if !rs.started {
			add(rsnap.startSeq, func() { rs.startEvent = s.eng.AtArg(rs.res.From, s.resvStartFn, rs) })
		}
		add(rsnap.endSeq, func() { rs.endEvent = s.eng.AtArg(rs.res.To, s.resvEndFn, rs) })
	}
	for _, c := range snap.captured {
		s.capture(s.resvs[c.resv], c.node)
	}
	for _, d := range snap.draining {
		if s.draining == nil {
			s.draining = make(map[int]*resvState)
		}
		s.draining[d.node] = s.resvs[d.resv]
	}
	return nil
}

// MemoryFootprint returns the snapshot's retained bytes, following the
// core.Results.MemoryFootprint contract: backing arrays at capacity,
// per-job node-ID slices, and the free bitmap.
func (snap *Snapshot) MemoryFootprint() int64 {
	jobBytes := func(js []jobSnap) int64 {
		total := int64(cap(js)) * int64(unsafe.Sizeof(jobSnap{}))
		for i := range js {
			total += int64(cap(js[i].job.Nodes)) * int64(unsafe.Sizeof(int(0)))
		}
		return total
	}
	total := int64(unsafe.Sizeof(*snap))
	total += jobBytes(snap.queued) + jobBytes(snap.running) + jobBytes(snap.held)
	total += int64(cap(snap.freeBits)) * 8
	total += int64(cap(snap.rechecks)) * int64(unsafe.Sizeof(recheckSnap{}))
	total += int64(cap(snap.resvs)) * int64(unsafe.Sizeof(resvSnap{}))
	for i := range snap.resvs {
		total += int64(cap(snap.resvs[i].res.Nodes)) * int64(unsafe.Sizeof(int(0)))
	}
	total += int64(cap(snap.captured)+cap(snap.draining)) * int64(unsafe.Sizeof(nodeResvSnap{}))
	return total
}

package sched

import (
	"sort"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/units"
)

// preemptForHead tries to seat the queue head by evicting the cheapest
// sufficient set of strictly lower-priority running jobs. Victims must
// trail the head by at least Config.PreemptMinGap priority levels;
// cheapest means fewest remaining node-hours (least work lost relative
// to nodes gained), with job ID as the deterministic tiebreak. Nothing
// is evicted unless the assembled set actually frees enough nodes, and
// preemption only answers a node shortage — a power-capped or
// temporally-deferred head never triggers it. Reports whether the head
// now fits.
func (s *Scheduler) preemptForHead(now time.Time) bool {
	head := s.queue.Head()
	need := head.Spec.Nodes - s.freeFor(head)
	if need <= 0 || !s.withinPowerCap(head) {
		return false
	}
	gap := s.cfg.PreemptMinGap
	if gap < 1 {
		gap = 1
	}
	s.victims = s.victims[:0]
	for _, rj := range s.running {
		if s.hetero() && s.partOf(rj) != s.partOf(head) {
			// Evicting a job in another partition frees no node the head
			// can use.
			continue
		}
		if head.Spec.Priority-rj.Spec.Priority >= gap {
			s.victims = append(s.victims, rj)
		}
	}
	cost := func(j *Job) float64 {
		return j.End.Sub(now).Hours() * float64(len(j.Nodes))
	}
	sort.SliceStable(s.victims, func(a, b int) bool {
		ca, cb := cost(s.victims[a]), cost(s.victims[b])
		if ca != cb {
			return ca < cb
		}
		return s.victims[a].Spec.ID < s.victims[b].Spec.ID
	})
	freed, take := 0, 0
	for _, v := range s.victims {
		freed += len(v.Nodes)
		take++
		if freed >= need {
			break
		}
	}
	if freed < need {
		return false
	}
	for _, v := range s.victims[:take] {
		s.preempt(v, now)
	}
	return head.Spec.Nodes <= s.freeFor(head)
}

// preempt evicts one running job: its nodes are released (or captured
// by a draining reservation), its executed segment is charged to the
// delivered-work and energy accounts exactly like a failed job's, and
// the job either re-enters the queue as freshly submitted
// (PreemptRequeue) or terminates as Preempted (PreemptCancel).
func (s *Scheduler) preempt(j *Job, now time.Time) {
	s.eng.Cancel(j.endEvent)
	s.removeRunning(j)

	seg := now.Sub(j.Start)
	var powerSum float64
	for _, id := range j.Nodes {
		powerSum += s.fac.Node(id).Power().Watts()
	}
	segEnergy := j.energyAccrued + units.Watts(powerSum).EnergyOver(now.Sub(j.reclockedAt))

	for _, id := range j.Nodes {
		nd := s.fac.Node(id)
		nd.StopWork(now)
		delete(s.byNode, id)
		if nd.State() == node.Up {
			s.releaseNode(id)
		}
	}
	s.busy -= len(j.Nodes)
	s.estBusyW -= j.actualPowerW

	nodeHours := float64(len(j.Nodes)) * seg.Hours()
	s.stats.Preemptions++
	s.stats.PreemptedNodeHours += nodeHours
	s.stats.NodeHoursUsed += nodeHours
	s.stats.TotalEnergy += segEnergy

	if s.cfg.Preemption == PreemptCancel {
		j.State = Preempted
		j.End = now
		j.Runtime = seg
		j.Energy = segEnergy
		for _, fn := range s.onEnd {
			fn(j)
		}
		s.recycle(j)
		return
	}
	// Requeue: back to pending as if submitted now, everything about the
	// evicted run discarded — it restarts from scratch. Resetting Submit
	// is what guarantees liveness: the preemptor has strictly higher
	// priority, so under aging its aged submit time stays strictly ahead
	// of the victim's (and without aging priority order alone suffices).
	// A victim that kept its original submit time could age ahead of the
	// preemptor, instantly reclaim the freed nodes, and be preempted
	// again forever.
	j.State = Queued
	j.Submit = now
	j.Start, j.End = time.Time{}, time.Time{}
	j.Runtime, j.Energy = 0, 0
	j.Setting, j.Mode, j.Override = cpu.FreqSetting{}, cpu.Mode(0), false
	j.perf, j.actualPowerW = 0, 0
	j.energyAccrued, j.reclockedAt = 0, time.Time{}
	j.Nodes = j.Nodes[:0]
	s.enqueue(j)
}

package sched

import (
	"fmt"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/workload"
)

// checkSchedulerInvariants asserts the structural invariants that must
// hold after every operation, whatever the policy mix:
//
//   - no node is allocated to two running jobs, and the node index agrees
//     with the running set exactly;
//   - every node is in exactly one of the four ledgers: free, busy,
//     reservation-captured, or down;
//   - utilisation stays within [0, 1];
//   - jobs are conserved: everything submitted is queued, held, running,
//     or terminally accounted (completed, failed, dropped, or preempted
//     in cancel mode).
func checkSchedulerInvariants(t *testing.T, tag string, s *Scheduler, total int) {
	t.Helper()
	seen := make(map[int]*Job, total)
	busy := 0
	for _, j := range s.running {
		for _, id := range j.Nodes {
			if prev, ok := seen[id]; ok {
				t.Fatalf("%s: node %d allocated to jobs %d and %d", tag, id, prev.Spec.ID, j.Spec.ID)
			}
			seen[id] = j
			if s.byNode[id] != j {
				t.Fatalf("%s: node %d runs job %d but byNode disagrees", tag, id, j.Spec.ID)
			}
		}
		busy += len(j.Nodes)
	}
	if len(s.byNode) != busy || s.BusyNodes() != busy {
		t.Fatalf("%s: busy ledger %d/%d, running set says %d", tag, len(s.byNode), s.BusyNodes(), busy)
	}
	down := 0
	for id := 0; id < total; id++ {
		if s.fac.Node(id).State() == node.Down {
			down++
			if s.free.Contains(id) {
				t.Fatalf("%s: down node %d is in the free set", tag, id)
			}
			if _, ok := seen[id]; ok {
				t.Fatalf("%s: down node %d is allocated", tag, id)
			}
		}
	}
	if got := s.free.Count() + busy + s.ReservedNodes() + down; got != total {
		t.Fatalf("%s: free %d + busy %d + captured %d + down %d = %d, want %d nodes",
			tag, s.free.Count(), busy, s.ReservedNodes(), down, got, total)
	}
	if s.free.Count()+busy != s.UpNodes() {
		t.Fatalf("%s: free %d + busy %d != up %d", tag, s.free.Count(), busy, s.UpNodes())
	}
	if u := s.Utilisation(); u < 0 || u > 1 {
		t.Fatalf("%s: utilisation %v out of [0,1]", tag, u)
	}
	st := s.Stats()
	terminal := st.Completed + st.Failed + st.Dropped
	if s.cfg.Preemption == PreemptCancel {
		terminal += st.Preemptions
	}
	if live := s.QueueDepth() + s.HeldJobs() + len(s.running); live+terminal != st.Submitted {
		t.Fatalf("%s: %d live + %d terminal jobs, %d submitted", tag, live, terminal, st.Submitted)
	}
}

// FuzzSchedulerOps drives the scheduler with an arbitrary byte-decoded
// operation stream — submits, node failures and repairs, emergency
// reclocks, reservation installs and cancellations, clock advances —
// over a fuzzer-chosen policy configuration (backfill flavour, depth,
// priority aging, preemption mode), asserting the structural invariants
// after every operation and again after the event queue fully drains.
func FuzzSchedulerOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 4, 8, 2, 1, 12, 4, 5, 3, 2, 9, 1, 6, 2, 5, 7})
	f.Add([]byte{1, 1, 1, 0, 15, 47, 5, 8, 30, 6, 3, 9, 3, 8, 1, 2, 2, 5, 95})
	f.Add([]byte{2, 2, 3, 3, 7, 24, 0, 8, 10, 2, 3, 1, 8, 30, 4, 3, 5, 40})
	f.Add([]byte{5, 1, 2, 2, 16, 40, 3, 5, 60, 9, 16, 8, 30, 2, 2, 5, 80, 8, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes for a config")
		}
		const total = 32
		cfg := Config{
			BackfillDepth: int(data[0] % 8),
			MaxQueue:      24,
			Backfill:      BackfillPolicy(data[1] % 2),
			Preemption:    PreemptionMode(data[2] % 3),
			AgingHours:    float64(data[3]%3) * 6,
			ReuseJobs:     data[3]&0x80 != 0,
		}
		fcfg := facility.ARCHER2()
		fcfg.Nodes = total
		fac, err := facility.New(fcfg, rng.New(7), t0)
		if err != nil {
			t.Fatal(err)
		}
		eng := des.NewEngine(t0)
		s := New(eng, fac, cappedProvider{fcfg.CPU}, cfg)
		app := &apps.App{Name: "fuzz", Kernel: roofline.Kernel{ComputeFraction: 0.5},
			ActCore: 0.6, ActUncore: 0.6}

		ops := data[4:]
		next := func() (byte, bool) {
			if len(ops) == 0 {
				return 0, false
			}
			b := ops[0]
			ops = ops[1:]
			return b, true
		}
		now := t0
		jobID, resvN := 0, 0
		for opIdx := 0; ; opIdx++ {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 10 {
			case 0, 1, 2, 3, 4: // submit
				b1, _ := next()
				b2, _ := next()
				b3, _ := next()
				jobID++
				s.Submit(workload.JobSpec{
					ID: jobID, Class: "fuzz", App: app,
					Nodes:      1 + int(b1%16),
					RefRuntime: time.Duration(1+int(b2%48)) * 15 * time.Minute,
					Priority:   int(b3 % 6),
				})
			case 5: // advance the clock
				b1, _ := next()
				now = now.Add(time.Duration(b1%96) * 10 * time.Minute)
				eng.RunUntil(now)
			case 6: // node failure
				b1, _ := next()
				if err := s.FailNode(int(b1 % total)); err != nil {
					t.Fatal(err)
				}
			case 7: // node repair
				b1, _ := next()
				if err := s.RepairNode(int(b1 % total)); err != nil {
					t.Fatal(err)
				}
			case 8: // reservation install / cancel
				b1, _ := next()
				b2, _ := next()
				b3, _ := next()
				if b1%4 == 3 {
					if names := s.Reservations(); len(names) > 0 {
						s.CancelReservation(names[int(b2)%len(names)])
					}
					break
				}
				a := int(b2 % total)
				ln := 1 + int(b3%8)
				if a+ln > total {
					ln = total - a
				}
				ids := make([]int, ln)
				for i := range ids {
					ids[i] = a + i
				}
				resvN++
				from := now.Add(time.Duration(b1%4) * time.Hour)
				if err := s.AddReservation(Reservation{
					Name: fmt.Sprintf("r%d", resvN), Nodes: ids,
					From: from, To: from.Add(time.Duration(1+b3%6) * time.Hour),
				}); err != nil {
					t.Fatal(err)
				}
			case 9: // emergency reclock of all running jobs
				b1, _ := next()
				fs := fcfg.CPU.DefaultSetting()
				if b1%2 == 1 {
					fs = fcfg.CPU.CappedSetting()
				}
				if _, err := s.ReclockRunning(fs); err != nil {
					t.Fatal(err)
				}
			}
			checkSchedulerInvariants(t, fmt.Sprintf("op %d", opIdx), s, total)
		}
		eng.Run()
		checkSchedulerInvariants(t, "drained", s, total)
	})
}

package sched

// jobQueue is the scheduler's pending-job FIFO with positional access: a
// slice plus a head index. The previous representation popped the front
// by re-slicing (queue = queue[1:]), which permanently leaks front
// capacity — under a saturated service every submission then triggers a
// reallocation and a full copy of the backlog. Here pops advance the
// head, the buffer compacts in place once the dead prefix dominates, and
// steady-state churn allocates nothing. Logical contents and order are
// identical to the plain-slice queue, so scheduling decisions are
// unchanged.
type jobQueue struct {
	jobs []*Job
	head int
}

// Len returns the number of queued jobs.
func (q *jobQueue) Len() int { return len(q.jobs) - q.head }

// At returns the i-th queued job (0 = front).
func (q *jobQueue) At(i int) *Job { return q.jobs[q.head+i] }

// Head returns the front job. Call only when Len() > 0.
func (q *jobQueue) Head() *Job { return q.jobs[q.head] }

// PushBack appends a job.
func (q *jobQueue) PushBack(j *Job) { q.jobs = append(q.jobs, j) }

// PopFront removes and returns the front job.
func (q *jobQueue) PopFront() *Job {
	j := q.jobs[q.head]
	q.jobs[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.jobs):
		q.jobs = q.jobs[:0]
		q.head = 0
	case q.head >= 256 && 2*q.head >= len(q.jobs):
		// The dead prefix dominates: compact in place.
		n := copy(q.jobs, q.jobs[q.head:])
		for i := n; i < len(q.jobs); i++ {
			q.jobs[i] = nil
		}
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	return j
}

// RemoveAt deletes the i-th queued job, preserving order.
func (q *jobQueue) RemoveAt(i int) {
	i += q.head
	copy(q.jobs[i:], q.jobs[i+1:])
	q.jobs[len(q.jobs)-1] = nil
	q.jobs = q.jobs[:len(q.jobs)-1]
}

// InsertAt inserts j at position i (0 = front), preserving order.
func (q *jobQueue) InsertAt(i int, j *Job) {
	i += q.head
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// Snapshot copies the queue contents front to back.
func (q *jobQueue) Snapshot() []*Job {
	out := make([]*Job, q.Len())
	copy(out, q.jobs[q.head:])
	return out
}

// Package sched implements the batch scheduler of the facility twin: FCFS
// with EASY backfill over the compute-node pool, driven by the
// discrete-event engine. It owns job lifecycle (queue -> running ->
// completed), node allocation, per-job energy accounting and the
// utilisation bookkeeping behind the paper's ">90% utilisation in all
// periods" statement.
//
// Operating-point selection is delegated to a SettingsProvider (the policy
// package): when a job starts, its nodes are switched to the provider's
// frequency setting and BIOS mode, and the job's runtime is stretched by
// the application's roofline response. Jobs keep the operating point they
// started with; system-wide changes therefore roll through the fleet over
// roughly one job-lifetime, which is exactly how the real changes appear
// in the paper's cabinet power figures.
//
// On top of the spatial "which nodes" decision sits a temporal "when"
// layer (temporal.go): a pluggable TemporalPolicy can defer otherwise
// startable jobs into low-carbon windows (the paper's §2 regime analysis
// made operational) — see GreedyPolicy, DelayFlexiblePolicy and
// CarbonBudgetPolicy.
//
// Performance: the free-node pool is a bitmap-indexed set (nodeset.go),
// the pending queue pops its front without reallocating the backlog
// (jobqueue.go), the running list is an end-time-sorted index with
// binary-search removal, and job lifecycle events are scheduled through
// des.AtArg so no closure is allocated per job. All of it is bit-exact
// with the original sorted-slice implementation — same placements, same
// event order — see docs/performance.md.
//
// Determinism contract: given the same configuration, seed and event
// stream, the scheduler's decisions are byte-identical across runs. It
// draws no randomness of its own — job order comes from the DES engine,
// operating points from the provider, and temporal policies are pure
// functions of simulation time and job identity (see temporal.go) — which
// is what lets the scenario package run sweeps on any worker count with
// identical results.
package sched

import (
	"fmt"
	"sort"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

// JobState is a job's lifecycle state.
type JobState int

const (
	// Queued: waiting for nodes.
	Queued JobState = iota
	// Running: allocated and executing.
	Running
	// Completed: finished normally.
	Completed
	// Failed: terminated early by a node failure.
	Failed
	// Dropped: rejected at submission (queue full or impossible size).
	Dropped
	// Preempted: evicted by a higher-priority job under
	// Config.Preemption == PreemptCancel (a terminal state; requeue-mode
	// victims return to Queued instead).
	Preempted
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Dropped:
		return "dropped"
	case Preempted:
		return "preempted"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job is a scheduled instance of a workload.JobSpec.
type Job struct {
	Spec  workload.JobSpec
	State JobState

	Submit time.Time
	Start  time.Time
	End    time.Time

	// Nodes allocated (valid while Running and after completion).
	Nodes []int
	// Setting and Mode are the operating point the job ran at.
	Setting cpu.FreqSetting
	Mode    cpu.Mode
	// Override records whether a per-application module override changed
	// the setting away from the system default.
	Override bool
	// Runtime is the stretched wall-clock runtime.
	Runtime time.Duration
	// Energy is the compute-node energy attributed to the job.
	Energy units.Energy

	// perf is the mean per-die performance factor of the allocation.
	perf float64
	// actualPowerW is the allocation's summed node power, maintained for
	// the scheduler's power-cap ledger.
	actualPowerW float64
	// energyAccrued is energy accounted up to the last reclock.
	energyAccrued units.Energy
	// reclockedAt is the start of the current operating-point segment.
	reclockedAt time.Time

	endEvent des.Handle

	// releaseAt / releaseEvent track a held (temporal-policy parked)
	// job's pending release, so a checkpoint can capture exactly when —
	// and in which event order — the job re-enters the queue.
	releaseAt    time.Time
	releaseEvent des.Handle
}

// WaitTime returns how long the job queued before starting (0 if it never
// started).
func (j *Job) WaitTime() time.Duration {
	if j.Start.IsZero() {
		return 0
	}
	return j.Start.Sub(j.Submit)
}

// SettingsProvider selects the operating point for a job's application at
// start time.
type SettingsProvider interface {
	// JobSettings returns the frequency setting, BIOS mode and whether a
	// per-app override (away from the system default) was applied.
	JobSettings(app *apps.App) (cpu.FreqSetting, cpu.Mode, bool)
}

// BackfillPolicy selects how the scheduler fills holes behind a blocked
// queue head.
type BackfillPolicy int

const (
	// BackfillEASY (the default) protects only the head job: a later job
	// may jump the queue if it finishes before the head's shadow start
	// time or uses only nodes the head will not need.
	BackfillEASY BackfillPolicy = iota
	// BackfillConservative protects every queued job it scans: each gets
	// a capacity-profile reservation in queue order, and a candidate may
	// start now only if doing so delays none of those planned starts.
	BackfillConservative
)

// String implements fmt.Stringer.
func (p BackfillPolicy) String() string {
	switch p {
	case BackfillEASY:
		return "easy"
	case BackfillConservative:
		return "conservative"
	default:
		return fmt.Sprintf("BackfillPolicy(%d)", int(p))
	}
}

// PreemptionMode selects what happens to lower-priority running work
// when a higher-priority job cannot start.
type PreemptionMode int

const (
	// PreemptOff (the default) never evicts running work.
	PreemptOff PreemptionMode = iota
	// PreemptRequeue evicts victims back into the pending queue with
	// their original submit time (their partial work is discarded).
	PreemptRequeue
	// PreemptCancel evicts victims into the terminal Preempted state.
	PreemptCancel
)

// String implements fmt.Stringer.
func (m PreemptionMode) String() string {
	switch m {
	case PreemptOff:
		return "off"
	case PreemptRequeue:
		return "requeue"
	case PreemptCancel:
		return "cancel"
	default:
		return fmt.Sprintf("PreemptionMode(%d)", int(m))
	}
}

// Config holds scheduler tunables.
type Config struct {
	// BackfillDepth is the number of queued jobs scanned for EASY
	// backfill behind a blocked head (0 disables backfill).
	BackfillDepth int
	// MaxQueue bounds the backlog; arrivals beyond it are dropped. A
	// saturated national service always has a deep queue, but the twin
	// must not grow it without bound.
	MaxQueue int
	// Temporal, when non-nil, is consulted before any otherwise-startable
	// job starts (see TemporalPolicy). Nil is the greedy FCFS baseline.
	Temporal TemporalPolicy
	// ReuseJobs lets the scheduler recycle Job structs and their node-ID
	// slices through an internal free list once a job reaches a terminal
	// state (completed, failed or dropped). Over a 13-month full-machine
	// run that converts ~50 MB of Job allocations and ~36 MB of node-ID
	// slices into a working set the size of the live job population.
	//
	// Ownership contract when enabled: a *Job obtained from Submit or an
	// OnJobEnd callback is valid only until the job's terminal transition
	// returns — callers must copy what they keep (the telemetry
	// accountant and job log do). Dropped jobs are exempt: the drop path
	// returns a fresh, never-pooled struct the caller owns outright. Leave it off (the default) when jobs
	// are inspected after the run, as the scheduler's own tests do;
	// core.Simulator switches it on because the simulation layer never
	// retains job handles. Recycling only ever reuses memory — placement,
	// event order and statistics are bit-identical either way.
	ReuseJobs bool

	// Backfill selects the backfill algorithm behind a blocked head. The
	// zero value is EASY, the behaviour this scheduler always had.
	Backfill BackfillPolicy
	// AgingHours ages queued-job priorities Slurm-style: one level of
	// priority is worth AgingHours hours of queue wait, so a long-waiting
	// low-priority job eventually overtakes fresher high-priority work.
	// Because the aging is linear, the relative order of any two jobs
	// never changes while they wait, and the queue stays statically
	// sorted. Zero (the default) disables aging: strict priority classes
	// with FIFO inside each class.
	AgingHours float64
	// Preemption lets a high-priority head that cannot start evict the
	// cheapest sufficient set of strictly lower-priority running jobs
	// (see PreemptionMode). Off by default.
	Preemption PreemptionMode
	// PreemptMinGap is the minimum priority advantage (head minus victim)
	// required to preempt; values below 1 behave as 1.
	PreemptMinGap int
	// Reservations are drain/maintenance node holds installed at
	// construction; more can be added at runtime via AddReservation.
	Reservations []Reservation
}

// DefaultConfig returns production-like scheduler settings.
func DefaultConfig() Config {
	return Config{BackfillDepth: 64, MaxQueue: 4000}
}

// Stats aggregates scheduler activity.
type Stats struct {
	Submitted     int
	StartedJobs   int
	Completed     int
	Failed        int
	Dropped       int
	NodeHoursUsed float64 // actual wall-clock node-hours delivered
	TotalWait     time.Duration
	TotalEnergy   units.Energy

	// Holds counts temporal-policy park events (a job re-parked on
	// release counts again); HoldDelay is the total time jobs spent
	// parked. Both are zero without a temporal policy.
	Holds     int
	HoldDelay time.Duration

	// Preemptions counts running jobs evicted for higher-priority work;
	// PreemptedNodeHours is the wall-clock node-hours those evictions
	// discarded (victims restart from scratch). Both are zero unless
	// Config.Preemption is enabled.
	Preemptions        int
	PreemptedNodeHours float64
}

// MeanWait returns the average queue wait of started jobs.
func (s Stats) MeanWait() time.Duration {
	if s.StartedJobs == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.StartedJobs)
}

// Scheduler is the batch system.
type Scheduler struct {
	eng      *des.Engine
	fac      *facility.Facility
	provider SettingsProvider
	cfg      Config

	free    *nodeSet // free Up node IDs (bitmap-indexed)
	queue   jobQueue
	running []*Job // sorted by End ascending
	byNode  map[int]*Job

	// completeFn / releaseFn are the long-lived event callbacks for job
	// completion and held-job release; scheduling them via AtArg with the
	// job as argument avoids a closure allocation per started job.
	completeFn des.ArgEvent
	releaseFn  des.ArgEvent

	stats   Stats
	onEnd   []func(*Job)
	busy    int
	upNodes int

	// powerCap is the admission-control limit (0 = none); estBusyW tracks
	// the committed busy-node power in watts.
	powerCap units.Power
	estBusyW float64

	// heldJobs are the jobs currently parked by the temporal policy (out
	// of the queue, returning via engine release events); recheckAt is
	// the latest pending blocking-policy re-evaluation, if any, and
	// recheckEvents tracks every still-pending recheck event (stale ones
	// included — they fire a scheduling pass too, so a checkpoint must
	// reproduce them). recheckArgFn is the long-lived callback those
	// events share.
	heldJobs      []*Job
	recheckAt     time.Time
	recheckEvents []recheckEvent
	recheckArgFn  des.ArgEvent

	// freeJobs is the terminal-job free list used when cfg.ReuseJobs is
	// set: finish and drop push, Submit pops. Recycled jobs keep their
	// node-ID backing array so a steady-state run stops allocating both.
	freeJobs []*Job

	// Reservation machinery (reservation.go). resvs holds the active and
	// pending reservations; captured maps a held node to its reservation;
	// draining marks busy nodes a started reservation is waiting to
	// capture at job end. The maps are nil until the first reservation,
	// so the default path never touches them.
	resvs       []*resvState
	captured    map[int]*resvState
	draining    map[int]*resvState
	resvStartFn des.ArgEvent
	resvEndFn   des.ArgEvent

	// bfCache memoizes per-application operating-point predictions for
	// the duration of one backfill pass (backfill scans are the hot loop;
	// the settings lookup is loop-invariant per app). prof is the reused
	// capacity-profile scratch for conservative backfill; victims is the
	// preemption candidate scratch.
	bfCache []bfEntry
	prof    capProfile
	victims []*Job

	// parts is the facility's resolved partition list when it has more
	// than one partition, nil for the homogeneous machine. All partition
	// free accounting is derived on demand from the free bitmap
	// (nodeSet.CountRange), so the homogeneous fast paths — and the
	// snapshot format — are untouched.
	parts []facility.PartitionInfo
}

// New creates a scheduler over the facility's nodes.
func New(eng *des.Engine, fac *facility.Facility, provider SettingsProvider, cfg Config) *Scheduler {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1 << 30
	}
	s := &Scheduler{
		eng:      eng,
		fac:      fac,
		provider: provider,
		cfg:      cfg,
		byNode:   make(map[int]*Job),
		upNodes:  fac.NodeCount(),
	}
	s.free = newNodeSet(fac.NodeCount())
	if fac.PartitionCount() > 1 {
		s.parts = fac.Partitions()
	}
	s.completeFn = func(now time.Time, arg any) { s.finish(arg.(*Job), now, Completed) }
	s.releaseFn = func(now time.Time, arg any) { s.release(arg.(*Job), now) }
	s.recheckArgFn = func(now time.Time, arg any) { s.onRecheck(arg.(time.Time), now) }
	s.resvStartFn = func(now time.Time, arg any) { s.resvStart(arg.(*resvState), now) }
	s.resvEndFn = func(now time.Time, arg any) { s.resvEnd(arg.(*resvState), now) }
	for _, r := range cfg.Reservations {
		if err := s.AddReservation(r); err != nil {
			panic(fmt.Sprintf("sched: invalid configured reservation %q: %v", r.Name, err))
		}
	}
	return s
}

// recheckEvent is one pending blocking-policy recheck.
type recheckEvent struct {
	at     time.Time
	handle des.Handle
}

// Stats returns a copy of the aggregate statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// QueueDepth returns the number of queued jobs (held jobs excluded).
func (s *Scheduler) QueueDepth() int { return s.queue.Len() }

// HeldJobs returns the number of jobs currently parked by the temporal
// policy.
func (s *Scheduler) HeldJobs() int { return len(s.heldJobs) }

// RunningJobs returns the number of running jobs.
func (s *Scheduler) RunningJobs() int { return len(s.running) }

// BusyNodes returns the number of nodes currently running jobs.
func (s *Scheduler) BusyNodes() int { return s.busy }

// UpNodes returns the number of schedulable (not Down) nodes.
func (s *Scheduler) UpNodes() int { return s.upNodes }

// Utilisation returns busy/up nodes.
func (s *Scheduler) Utilisation() float64 {
	if s.upNodes == 0 {
		return 0
	}
	return float64(s.busy) / float64(s.upNodes)
}

// OnJobEnd registers a callback invoked when a job completes or fails.
func (s *Scheduler) OnJobEnd(fn func(*Job)) { s.onEnd = append(s.onEnd, fn) }

// Kick runs one full scheduling pass (admission, preemption, backfill)
// at the current simulation time without a triggering event — for
// callers that mutate scheduler-relevant state out of band, and for
// benchmarking the pass itself.
func (s *Scheduler) Kick() { s.trySchedule(s.eng.Now()) }

// Submit enqueues a job at the current simulation time and attempts to
// schedule. It returns the job (possibly already Running, or Dropped).
// With Config.ReuseJobs the returned pointer is only valid until the
// job's terminal transition (see the Config field).
func (s *Scheduler) Submit(spec workload.JobSpec) *Job {
	now := s.eng.Now()
	s.stats.Submitted++
	if spec.Nodes > s.capacityFor(spec) || s.queue.Len() >= s.cfg.MaxQueue {
		s.stats.Dropped++
		// Drop-path jobs are freshly allocated and never pooled: the
		// caller owns the returned struct outright, so inspecting the
		// Dropped state is always safe, ReuseJobs or not.
		return &Job{Spec: spec, State: Dropped, Submit: now}
	}
	j := s.newJob()
	j.Spec, j.State, j.Submit = spec, Queued, now
	s.enqueue(j)
	s.trySchedule(now)
	return j
}

// enqueue inserts j at its priority-ordered queue position. Ties (equal
// rank) insert after existing entries, so with all-zero priorities the
// queue degenerates to exactly the submission-order FIFO it always was:
// a fresh submission lands at the back, a released hold lands after
// every job with an earlier-or-equal submit time.
func (s *Scheduler) enqueue(j *Job) {
	i := sort.Search(s.queue.Len(), func(k int) bool {
		return s.queueBefore(j, s.queue.At(k))
	})
	s.queue.InsertAt(i, j)
}

// queueBefore reports whether a outranks b in the pending queue. With
// aging, rank is priority plus wait-time credit at one level per
// AgingHours; because the credit is linear in time, the comparison is
// time-invariant (a's rank overtakes b's never or always), which is what
// lets the queue stay statically sorted instead of being re-ranked every
// pass. Without aging, rank is strict priority. Equal ranks fall back to
// submission order.
func (s *Scheduler) queueBefore(a, b *Job) bool {
	if s.cfg.AgingHours > 0 {
		as, bs := s.agedSubmit(a), s.agedSubmit(b)
		if !as.Equal(bs) {
			return as.Before(bs)
		}
	} else if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.Submit.Before(b.Submit)
}

// agedSubmit is a job's submit time minus its priority's worth of aging
// credit; ordering by it is ordering by aged rank.
func (s *Scheduler) agedSubmit(j *Job) time.Time {
	credit := time.Duration(float64(j.Spec.Priority) * s.cfg.AgingHours * float64(time.Hour))
	return j.Submit.Add(-credit)
}

// newJob returns a zeroed Job, from the free list when recycling is on.
// A recycled job keeps its node-ID backing array (length reset) so the
// next start can fill it without allocating.
func (s *Scheduler) newJob() *Job {
	if n := len(s.freeJobs); s.cfg.ReuseJobs && n > 0 {
		j := s.freeJobs[n-1]
		s.freeJobs[n-1] = nil
		s.freeJobs = s.freeJobs[:n-1]
		nodes := j.Nodes[:0]
		*j = Job{Nodes: nodes}
		return j
	}
	return &Job{}
}

// recycle returns a terminal job to the free list when recycling is on.
// Callers guarantee no live reference remains: the queue, running index,
// byNode map and engine events have all released it.
func (s *Scheduler) recycle(j *Job) {
	if s.cfg.ReuseJobs {
		s.freeJobs = append(s.freeJobs, j)
	}
}

// SetPowerCap limits the estimated busy-node power the scheduler will
// commit: jobs whose start would push the estimate over the cap wait even
// if nodes are free. Zero removes the cap. This is the "free up grid
// capacity" lever applied at admission rather than by reclocking running
// work; the two compose. Setting a cap re-evaluates the queue.
func (s *Scheduler) SetPowerCap(cap units.Power) {
	s.powerCap = cap
	s.trySchedule(s.eng.Now())
}

// PowerCap returns the current cap (0 = none).
func (s *Scheduler) PowerCap() units.Power { return s.powerCap }

// EstimatedBusyPower returns the scheduler's running estimate of committed
// busy-node power (expected node power of every running job's allocation).
func (s *Scheduler) EstimatedBusyPower() units.Power {
	return units.Watts(s.estBusyW)
}

// PowerEstimator is an optional interface a SettingsProvider can implement
// to expose a side-effect-free view of the operating point it would choose
// (no counters, no revert randomness). Admission control uses it when
// available; otherwise the stock setting is assumed, which over-estimates
// and therefore errs on the safe side of the cap.
type PowerEstimator interface {
	PeekSettings(app *apps.App) (cpu.FreqSetting, cpu.Mode)
}

// hetero reports whether the facility has multiple partitions.
func (s *Scheduler) hetero() bool { return len(s.parts) > 1 }

// partOf returns j's partition index, clamped to the facility's actual
// partitions (a job targeting an absent partition runs on the primary —
// and on a homogeneous facility every job maps to partition 0).
func (s *Scheduler) partOf(j *Job) int {
	p := j.Spec.Partition
	if p < 0 || p >= len(s.parts) {
		return 0
	}
	return p
}

// freeFor returns the free-node count available to j: the whole free set
// on a homogeneous facility, j's partition's slice of it otherwise — an
// on-demand popcount over the partition's bitmap range, so no counter
// maintenance (or snapshot state) exists to drift.
func (s *Scheduler) freeFor(j *Job) int {
	if !s.hetero() {
		return s.free.Count()
	}
	p := &s.parts[s.partOf(j)]
	return s.free.CountRange(p.Start, p.End())
}

// capacityFor returns the total node capacity a job spec could ever use:
// its partition's size on a heterogeneous facility, the whole machine
// otherwise.
func (s *Scheduler) capacityFor(spec workload.JobSpec) int {
	if !s.hetero() {
		return s.fac.NodeCount()
	}
	p := spec.Partition
	if p < 0 || p >= len(s.parts) {
		p = 0
	}
	return s.parts[p].Nodes
}

// specFor returns the CPU spec of partition p (the facility spec on a
// homogeneous machine).
func (s *Scheduler) specFor(p int) *cpu.Spec {
	if !s.hetero() || p == 0 {
		return s.fac.Config().CPU
	}
	return s.parts[p].CPU
}

// estimateJobPower returns the expected busy power of starting j now.
func (s *Scheduler) estimateJobPower(j *Job) float64 {
	if p := s.partOf(j); p != 0 {
		// Non-primary partitions run at their own spec's default setting
		// (the frequency policy governs the CPU partition only), with
		// their own node layout.
		pi := &s.parts[p]
		return node.ExpectedPowerLayout(pi.CPU, pi.Sockets, pi.Board,
			pi.CPU.DefaultSetting(), j.Spec.App.Activity(), cpu.PowerDeterminism).Watts() *
			float64(j.Spec.Nodes)
	}
	spec := s.fac.Config().CPU
	fs, m := spec.DefaultSetting(), cpu.PowerDeterminism
	if pe, ok := s.provider.(PowerEstimator); ok {
		fs, m = pe.PeekSettings(j.Spec.App)
	}
	return node.ExpectedPower(spec, fs, j.Spec.App.Activity(), m).Watts() *
		float64(j.Spec.Nodes)
}

// withinPowerCap reports whether starting j keeps the estimate under cap.
func (s *Scheduler) withinPowerCap(j *Job) bool {
	if s.powerCap.Watts() <= 0 {
		return true
	}
	return s.estBusyW+s.estimateJobPower(j) <= s.powerCap.Watts()
}

// temporalDecision consults the temporal policy for an otherwise
// startable job (nil policy: always start).
func (s *Scheduler) temporalDecision(j *Job, now time.Time) TemporalDecision {
	if s.cfg.Temporal == nil {
		return TemporalDecision{Start: true}
	}
	return s.cfg.Temporal.Decide(j, now,
		units.Watts(s.estBusyW), units.Watts(s.estimateJobPower(j)))
}

// trySchedule starts the queue head while it fits, then EASY-backfills.
// Jobs the temporal policy defers are parked in the held list (they
// return via release events and do not block the queue behind them); a
// blocking deferral throttles admission as a whole until the policy's
// recheck time.
func (s *Scheduler) trySchedule(now time.Time) {
	for {
		for s.queue.Len() > 0 && s.queue.Head().Spec.Nodes <= s.freeFor(s.queue.Head()) && s.withinPowerCap(s.queue.Head()) {
			j := s.queue.Head()
			d := s.temporalDecision(j, now)
			if !d.Start && d.Block {
				s.scheduleRecheck(d.Recheck, now)
				return
			}
			s.queue.PopFront()
			if !d.Start {
				s.hold(j, d.Recheck, now)
				continue
			}
			s.start(j, now)
		}
		if s.cfg.Preemption == PreemptOff || s.queue.Len() == 0 || !s.preemptForHead(now) {
			break
		}
		// Preemption freed enough nodes for the head: run the admission
		// loop again (the head may drag further queue jobs in behind it).
	}
	if s.queue.Len() > 1 && s.cfg.BackfillDepth > 0 {
		if s.cfg.Backfill == BackfillConservative {
			s.backfillConservative(now)
		} else {
			s.backfill(now)
		}
	}
}

// hold parks a deferred job until its recheck time, when it re-enters
// the queue in submission order and faces the policy again.
func (s *Scheduler) hold(j *Job, recheck, now time.Time) {
	if !recheck.After(now) {
		// A policy that defers without a future recheck would otherwise
		// spin; park for one minute as a safety margin.
		recheck = now.Add(time.Minute)
	}
	s.heldJobs = append(s.heldJobs, j)
	s.stats.Holds++
	s.stats.HoldDelay += recheck.Sub(now)
	j.releaseAt = recheck
	j.releaseEvent = s.eng.AtArg(recheck, s.releaseFn, j)
}

// release returns a held job to the queue, keeping its original rank
// (the insert position is the one its submit time and priority earn).
func (s *Scheduler) release(j *Job, now time.Time) {
	for i, hj := range s.heldJobs {
		if hj == j {
			s.heldJobs = append(s.heldJobs[:i], s.heldJobs[i+1:]...)
			break
		}
	}
	j.releaseAt = time.Time{}
	s.enqueue(j)
	s.trySchedule(now)
}

// scheduleRecheck arranges a scheduling pass at `at` for a blocking
// temporal deferral, deduplicating against an already-pending recheck at
// or before that time (finishes and submissions retrigger scheduling
// anyway).
func (s *Scheduler) scheduleRecheck(at, now time.Time) {
	if !at.After(now) {
		return
	}
	if s.recheckAt.After(now) && !s.recheckAt.After(at) {
		return
	}
	s.recheckAt = at
	h := s.eng.AtArg(at, s.recheckArgFn, at)
	s.recheckEvents = append(s.recheckEvents, recheckEvent{at: at, handle: h})
}

// onRecheck is the recheck event body: clear the pending marker if this
// is the latest recheck, drop the event from the pending list, and run a
// scheduling pass. Stale rechecks (superseded by a later one) still run
// the pass, exactly as they always have.
func (s *Scheduler) onRecheck(at, now time.Time) {
	for i, ev := range s.recheckEvents {
		if ev.at.Equal(at) {
			s.recheckEvents = append(s.recheckEvents[:i], s.recheckEvents[i+1:]...)
			break
		}
	}
	if s.recheckAt.Equal(at) {
		s.recheckAt = time.Time{}
	}
	s.trySchedule(now)
}

// backfill implements EASY: compute the head job's shadow start time from
// running-job end times, then start any later queued job that fits now and
// either finishes before the shadow time or uses only nodes the head will
// not need. On a heterogeneous facility the shadow is computed within the
// head's partition, and a candidate in a different partition cannot delay
// the head at all — it may start whenever it fits its own partition.
func (s *Scheduler) backfill(now time.Time) {
	head := s.queue.Head()
	headPart := s.partOf(head)
	avail := s.freeFor(head)
	shadow := time.Time{}
	extra := 0
	// running is sorted by End; accumulate releases until the head fits.
	if len(s.resvs) == 0 {
		cum := avail
		for _, rj := range s.running {
			if s.hetero() && s.partOf(rj) != headPart {
				continue
			}
			cum += len(rj.Nodes)
			if cum >= head.Spec.Nodes {
				shadow = rj.End
				extra = cum - head.Spec.Nodes
				break
			}
		}
	} else {
		// With reservations the release order must merge two sources:
		// running jobs return only their non-draining nodes at End, and
		// each started reservation returns its captured nodes at To. On a
		// heterogeneous facility the merged profile stays fleet-global (a
		// conservative shadow: releases in other partitions can only move
		// it earlier, and same-partition fit is still enforced per
		// candidate below).
		shadow, extra = s.mergedShadow(avail, head.Spec.Nodes)
	}
	if shadow.IsZero() {
		// Head can never fit (should have been dropped at submit).
		return
	}
	s.bfCache = s.bfCache[:0]
	depth := s.cfg.BackfillDepth
	for i := 1; i < s.queue.Len() && depth > 0; depth-- {
		j := s.queue.At(i)
		if j.Spec.Nodes > s.freeFor(j) || !s.withinPowerCap(j) {
			i++
			continue
		}
		// Predict runtime at the current operating point (per-app lookup
		// memoized across the scan — it is loop-invariant within a pass).
		rt := s.predictRuntime(j)
		endsBeforeShadow := !now.Add(rt).After(shadow)
		samePart := !s.hetero() || s.partOf(j) == headPart
		if !samePart || endsBeforeShadow || j.Spec.Nodes <= extra {
			d := s.temporalDecision(j, now)
			if !d.Start && d.Block {
				s.scheduleRecheck(d.Recheck, now)
				return
			}
			s.queue.RemoveAt(i)
			if !d.Start {
				s.hold(j, d.Recheck, now)
				// Do not advance i: the next candidate shifted into i.
				continue
			}
			if samePart && !endsBeforeShadow {
				extra -= j.Spec.Nodes
			}
			s.start(j, now)
			// Do not advance i: the next candidate shifted into position i.
			continue
		}
		i++
	}
}

// bfEntry caches one (application, partition) pair's predicted runtime
// multiplier for the duration of one backfill pass (the partition index
// is always 0 on a homogeneous facility).
type bfEntry struct {
	app  *apps.App
	part int
	mult float64
}

// predictRuntime estimates j's wall-clock runtime at the operating point
// currently in force, memoizing the per-application settings lookup in
// bfCache (reset at the top of each backfill pass — a pass sees one
// consistent policy state, so the lookup is loop-invariant per app). The
// side-effect-free PeekSettings is preferred when the provider offers
// it; the prediction must not consume override/revert randomness.
// Non-primary partition jobs are predicted at their partition spec's
// default setting, matching how start() runs them.
func (s *Scheduler) predictRuntime(j *Job) time.Duration {
	app := j.Spec.App
	part := s.partOf(j)
	for _, e := range s.bfCache {
		if e.app == app && e.part == part {
			return time.Duration(float64(j.Spec.RefRuntime) * e.mult)
		}
	}
	var fs cpu.FreqSetting
	var m cpu.Mode
	if pe, ok := s.provider.(PowerEstimator); ok {
		fs, m = pe.PeekSettings(app)
	} else {
		fs, m, _ = s.provider.JobSettings(app)
	}
	spec := s.fac.Config().CPU
	if part != 0 {
		spec = s.parts[part].CPU
		fs = spec.DefaultSetting()
	}
	mult := app.TimeMultiplier(spec, fs, m)
	s.bfCache = append(s.bfCache, bfEntry{app: app, part: part, mult: mult})
	return time.Duration(float64(j.Spec.RefRuntime) * mult)
}

// start allocates nodes and begins execution.
func (s *Scheduler) start(j *Job, now time.Time) {
	n := j.Spec.Nodes
	part := s.partOf(j)
	// The n lowest free IDs, ascending — the same placement the sorted
	// free list produced. A recycled job's backing array is reused when
	// it is large enough. On a heterogeneous facility the scan is
	// restricted to the job's partition range.
	buf := j.Nodes[:0]
	if cap(buf) < n {
		buf = make([]int, 0, n)
	}
	if s.hetero() {
		p := &s.parts[part]
		j.Nodes = s.free.TakeLowestRange(n, p.Start, p.End(), buf)
	} else {
		j.Nodes = s.free.TakeLowest(n, buf)
	}

	fs, m, override := s.provider.JobSettings(j.Spec.App)
	if part != 0 {
		// The frequency policy governs the CPU partition; other
		// partitions run at their own spec's default setting (the BIOS
		// determinism mode is fleet-wide and still applies).
		fs, override = s.parts[part].CPU.DefaultSetting(), false
	}
	j.Setting, j.Mode, j.Override = fs, m, override

	activity := j.Spec.App.Activity()
	var perfSum float64
	var powerSum float64
	for _, id := range j.Nodes {
		nd := s.fac.Node(id)
		nd.SetMode(m, now)
		if err := nd.SetFrequency(fs, now); err != nil {
			panic(fmt.Sprintf("sched: provider returned invalid setting: %v", err))
		}
		nd.StartWork(activity, now)
		perfSum += nd.PerfFactor()
		powerSum += nd.Power().Watts()
		s.byNode[id] = j
	}
	perf := perfSum / float64(n)

	// The frequency-response half of the stretch dispatches through the
	// app's active PerfModel (measured table or scalar kernel); the
	// sampled per-die perf factor divides outside, as always.
	freqMult := j.Spec.App.FreqMultiplier(s.specFor(part), fs, m)
	j.Runtime = time.Duration(float64(j.Spec.RefRuntime) * freqMult / perf)
	if j.Runtime <= 0 {
		j.Runtime = time.Second
	}
	j.State = Running
	j.Start = now
	j.End = now.Add(j.Runtime)
	j.Energy = units.Watts(powerSum).EnergyOver(j.Runtime)
	j.perf = perf
	j.reclockedAt = now

	s.busy += n
	s.stats.StartedJobs++
	s.stats.TotalWait += j.WaitTime()
	j.actualPowerW = powerSum
	s.estBusyW += powerSum

	s.insertRunning(j)
	j.endEvent = s.eng.AtArg(j.End, s.completeFn, j)
}

// insertRunning keeps s.running sorted by End.
func (s *Scheduler) insertRunning(j *Job) {
	i := sort.Search(len(s.running), func(k int) bool {
		return s.running[k].End.After(j.End)
	})
	s.running = append(s.running, nil)
	copy(s.running[i+1:], s.running[i:])
	s.running[i] = j
}

// removeRunning deletes j from the End-sorted running index: binary
// search to the first entry with j's End, then a short scan across the
// equal-End group. The linear fallback only runs if j.End was mutated
// after insertion (finish removes before patching End, so it should not).
func (s *Scheduler) removeRunning(j *Job) {
	i := sort.Search(len(s.running), func(k int) bool {
		return !s.running[k].End.Before(j.End)
	})
	for ; i < len(s.running) && !s.running[i].End.After(j.End); i++ {
		if s.running[i] == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	for i, rj := range s.running {
		if rj == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// finish releases a job's nodes and records statistics.
func (s *Scheduler) finish(j *Job, now time.Time, final JobState) {
	if j.State != Running {
		return
	}
	j.State = final
	// Remove from the running index while j.End still matches its sorted
	// position (the Failed branch below rewrites it).
	s.removeRunning(j)
	if final == Failed {
		// Early termination: recompute actuals.
		j.End = now
		j.Runtime = now.Sub(j.Start)
		var powerSum float64
		for _, id := range j.Nodes {
			powerSum += s.fac.Node(id).Power().Watts()
		}
		j.Energy = units.Watts(powerSum).EnergyOver(j.Runtime)
	}
	for _, id := range j.Nodes {
		nd := s.fac.Node(id)
		nd.StopWork(now)
		delete(s.byNode, id)
		if nd.State() == node.Up {
			s.releaseNode(id)
		}
	}
	s.busy -= len(j.Nodes)
	s.estBusyW -= j.actualPowerW

	switch final {
	case Completed:
		s.stats.Completed++
	case Failed:
		s.stats.Failed++
	}
	s.stats.NodeHoursUsed += float64(len(j.Nodes)) * j.Runtime.Hours()
	s.stats.TotalEnergy += j.Energy
	for _, fn := range s.onEnd {
		fn(j)
	}
	s.trySchedule(now)
	// j is terminal and fully unreferenced (queue, running index, byNode
	// and engine events all released it; trySchedule above touched other
	// jobs only) — recycle it last.
	s.recycle(j)
}

// returnNode puts a node back in the free set.
func (s *Scheduler) returnNode(id int) {
	s.free.Add(id)
}

// releaseNode returns an Up node that just stopped working: to the
// reservation draining it, if any (the node leaves the schedulable pool
// until the reservation ends), otherwise to the free set.
func (s *Scheduler) releaseNode(id int) {
	if rs, ok := s.draining[id]; ok {
		delete(s.draining, id)
		s.capture(rs, id)
		s.upNodes--
		return
	}
	s.returnNode(id)
}

// FailNode marks a node Down at the current time. If a job is running on
// it, that job fails immediately (its other nodes are released).
func (s *Scheduler) FailNode(id int) error {
	if id < 0 || id >= s.fac.NodeCount() {
		return fmt.Errorf("sched: no node %d", id)
	}
	nd := s.fac.Node(id)
	if nd.State() == node.Down {
		return nil
	}
	now := s.eng.Now()
	// Mark Down first so finish() does not return the node to the free
	// list, then terminate any job running on it.
	nd.SetState(node.Down, now)
	if j, ok := s.byNode[id]; ok {
		s.upNodes--
		// A reservation draining this node loses it to the failure (it
		// re-captures on repair if its window is still open).
		delete(s.draining, id)
		s.eng.Cancel(j.endEvent)
		s.finish(j, now, Failed)
	} else if rs, ok := s.captured[id]; ok {
		// Reservation-held nodes are already outside upNodes and the
		// free set; only the reservation's ledger changes.
		s.uncapture(rs, id)
	} else {
		s.upNodes--
		// Remove from the free set.
		s.free.Remove(id)
	}
	return nil
}

// RepairNode returns a Down node to service.
func (s *Scheduler) RepairNode(id int) error {
	if id < 0 || id >= s.fac.NodeCount() {
		return fmt.Errorf("sched: no node %d", id)
	}
	nd := s.fac.Node(id)
	if nd.State() != node.Down {
		return nil
	}
	now := s.eng.Now()
	nd.SetState(node.Up, now)
	if rs := s.activeReservationFor(id); rs != nil {
		// The repaired node re-enters service directly into the hold: it
		// joins neither upNodes nor the free set until the window ends.
		s.capture(rs, id)
		return nil
	}
	s.upNodes++
	s.returnNode(id)
	s.trySchedule(now)
	return nil
}

// QueuedJobs returns a snapshot of the queue contents.
func (s *Scheduler) QueuedJobs() []*Job {
	return s.queue.Snapshot()
}

// ReclockRunning switches every running job to the given frequency setting
// immediately — the emergency demand-response lever the paper's grid-
// citizenship discussion motivates. Each job's remaining work is
// re-stretched by the roofline model, its end event rescheduled and its
// energy account patched. New jobs are unaffected (use the policy provider
// to change the default for those). It returns the number of jobs
// reclocked.
func (s *Scheduler) ReclockRunning(fs cpu.FreqSetting) (int, error) {
	spec := s.fac.Config().CPU
	if err := spec.ValidateSetting(fs); err != nil {
		return 0, err
	}
	now := s.eng.Now()
	jobs := append([]*Job(nil), s.running...)
	n := 0
	for _, j := range jobs {
		if j.Setting == fs {
			continue
		}
		if s.hetero() && s.partOf(j) != 0 {
			// The demand-response lever reclocks the CPU partition; other
			// partitions hold their own operating point (fs is not even a
			// valid setting for their spec).
			continue
		}
		oldMult := j.Spec.App.FreqMultiplier(spec, j.Setting, j.Mode) / j.perf
		newMult := j.Spec.App.FreqMultiplier(spec, fs, j.Mode) / j.perf

		// Work completed so far, in reference-time units.
		segment := now.Sub(j.reclockedAt)
		var oldPower float64
		for _, id := range j.Nodes {
			oldPower += s.fac.Node(id).Power().Watts()
		}
		j.energyAccrued += units.Watts(oldPower).EnergyOver(segment)

		refRemaining := j.End.Sub(now).Seconds() / oldMult
		newRemaining := time.Duration(refRemaining * newMult * float64(time.Second))
		if newRemaining < 0 {
			newRemaining = 0
		}

		var newPower float64
		for _, id := range j.Nodes {
			nd := s.fac.Node(id)
			if err := nd.SetFrequency(fs, now); err != nil {
				return n, err
			}
			newPower += nd.Power().Watts()
		}
		j.Setting = fs
		j.reclockedAt = now
		j.End = now.Add(newRemaining)
		j.Runtime = j.End.Sub(j.Start)
		j.Energy = j.energyAccrued + units.Watts(newPower).EnergyOver(newRemaining)
		s.estBusyW += newPower - j.actualPowerW
		j.actualPowerW = newPower

		s.eng.Cancel(j.endEvent)
		j.endEvent = s.eng.AtArg(j.End, s.completeFn, j)
		n++
	}
	// Ends changed: rebuild the sorted running list.
	sort.Slice(s.running, func(a, b int) bool { return s.running[a].End.Before(s.running[b].End) })
	return n, nil
}

package sched

import (
	"math/rand"
	"testing"
)

// jqModel drives jobQueue and a plain-slice reference model through the
// same operation and asserts identical logical contents after every one.
// The plain slice is the queue's specified behaviour (the pre-refactor
// representation); the head-indexed buffer with in-place compaction must
// be observationally indistinguishable from it.
type jqModel struct {
	t    *testing.T
	q    jobQueue
	ref  []*Job
	step int
}

func (m *jqModel) push(j *Job) {
	m.q.PushBack(j)
	m.ref = append(m.ref, j)
	m.check("PushBack")
}

func (m *jqModel) pop() {
	got := m.q.PopFront()
	want := m.ref[0]
	m.ref = m.ref[1:]
	if got != want {
		m.t.Fatalf("step %d: PopFront returned wrong job", m.step)
	}
	m.check("PopFront")
}

func (m *jqModel) removeAt(i int) {
	m.q.RemoveAt(i)
	m.ref = append(m.ref[:i:i], m.ref[i+1:]...)
	m.check("RemoveAt")
}

func (m *jqModel) insertAt(i int, j *Job) {
	m.q.InsertAt(i, j)
	m.ref = append(m.ref[:i:i], append([]*Job{j}, m.ref[i:]...)...)
	m.check("InsertAt")
}

// check asserts Len, Head, every At index and a full Snapshot agree with
// the reference model.
func (m *jqModel) check(op string) {
	m.t.Helper()
	m.step++
	if m.q.Len() != len(m.ref) {
		m.t.Fatalf("step %d (%s): Len = %d, want %d", m.step, op, m.q.Len(), len(m.ref))
	}
	if len(m.ref) > 0 && m.q.Head() != m.ref[0] {
		m.t.Fatalf("step %d (%s): Head diverges", m.step, op)
	}
	snap := m.q.Snapshot()
	if len(snap) != len(m.ref) {
		m.t.Fatalf("step %d (%s): Snapshot has %d jobs, want %d", m.step, op, len(snap), len(m.ref))
	}
	for i := range m.ref {
		if snap[i] != m.ref[i] {
			m.t.Fatalf("step %d (%s): Snapshot[%d] diverges", m.step, op, i)
		}
		if m.q.At(i) != m.ref[i] {
			m.t.Fatalf("step %d (%s): At(%d) diverges", m.step, op, i)
		}
	}
}

// TestJobQueueMatchesReferenceModel drives a seeded random operation
// sequence — heavy enough in pops to cross the in-place compaction
// threshold (head >= 256 with a dominating dead prefix) several times —
// and verifies the queue never diverges from the plain-slice model,
// including RemoveAt/InsertAt/Snapshot against a compacted buffer.
func TestJobQueueMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &jqModel{t: t}

	// Phase 1: random churn around a modest backlog.
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(100); {
		case op < 40:
			m.push(&Job{})
		case op < 70:
			if len(m.ref) > 0 {
				m.pop()
			} else {
				m.push(&Job{})
			}
		case op < 85:
			if len(m.ref) > 0 {
				m.removeAt(rng.Intn(len(m.ref)))
			}
		default:
			m.insertAt(rng.Intn(len(m.ref)+1), &Job{})
		}
	}

	// Phase 2: build a deep backlog, then drain most of it. With ~700
	// buffered jobs the dead prefix dominates around pop 350, forcing the
	// compaction branch (head >= 256 && 2*head >= len) mid-drain; the
	// full drain then exercises the head == len reset too.
	for i := 0; i < 700; i++ {
		m.push(&Job{})
	}
	for len(m.ref) > 100 {
		m.pop()
	}
	if m.q.head >= 256 {
		t.Fatalf("compaction never triggered: head = %d with %d jobs", m.q.head, m.q.Len())
	}

	// Phase 3: positional ops against the compacted buffer, then random
	// churn to mix all branches.
	for i := 0; i < 50; i++ {
		m.insertAt(rng.Intn(len(m.ref)+1), &Job{})
		m.removeAt(rng.Intn(len(m.ref)))
	}
	for i := 0; i < 1500; i++ {
		switch op := rng.Intn(100); {
		case op < 30:
			m.push(&Job{})
		case op < 75:
			if len(m.ref) > 0 {
				m.pop()
			} else {
				m.push(&Job{})
			}
		case op < 90:
			if len(m.ref) > 0 {
				m.removeAt(rng.Intn(len(m.ref)))
			}
		default:
			m.insertAt(rng.Intn(len(m.ref)+1), &Job{})
		}
	}
	for len(m.ref) > 0 {
		m.pop()
	}
	if m.step < 1000 {
		t.Fatalf("property sequence too short: %d ops", m.step)
	}
}

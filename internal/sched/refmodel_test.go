package sched

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

// This file is the scheduler's reference-model harness: a plain-slice,
// obviously-correct reimplementation of the admit / backfill / preempt /
// reserve semantics, driven in lockstep with the real scheduler by seeded
// randomized operation streams (the jobqueue_test.go pattern, scaled up
// to the whole subsystem). The real scheduler earns its performance from
// bitmap node sets, a head-indexed queue, binary-search indices, pooled
// event arguments and retained scratch buffers; the model uses none of
// that — linear scans, maps and copies throughout — so any bookkeeping
// bug in the optimized structures shows up as a state divergence at the
// op where it happens.
//
// The model is exact, not approximate: runs use Performance Determinism,
// where every node's performance factor is the same constant, so the
// model reproduces job runtimes bit-for-bit and the two event streams
// stay aligned. Event ordering mirrors the DES engine's (time, sequence)
// rule: the model assigns its own sequence numbers in the same order the
// scheduler calls AtArg, which is what makes same-timestamp completions,
// releases and reservation edges fire identically on both sides.

// ---------------------------------------------------------------------
// Reference model
// ---------------------------------------------------------------------

type refEventKind int

const (
	refComplete refEventKind = iota
	refRelease
	refResvStart
	refResvEnd
)

type refEvent struct {
	at   time.Time
	seq  uint64
	kind refEventKind
	job  *refJob
	resv *refResv
	dead bool
}

type refJob struct {
	id    int
	app   int
	nodes int
	prio  int
	ref   time.Duration

	state     JobState
	submit    time.Time
	start     time.Time
	end       time.Time
	alloc     []int
	releaseAt time.Time

	endEv     *refEvent
	releaseEv *refEvent
}

type refResv struct {
	name    string
	nodes   []int // sorted, deduplicated
	from    time.Time
	to      time.Time
	started bool
	count   int

	startEv *refEvent
	endEv   *refEvent
}

type refStats struct {
	submitted   int
	started     int
	completed   int
	failed      int
	dropped     int
	holds       int
	holdDelay   time.Duration
	preemptions int
	totalWait   time.Duration
}

type refModel struct {
	cfg   Config
	total int
	// kernelMult / bfMult are the per-app runtime multipliers of the
	// start path (raw kernel stretch, divided by the sampled perf factor
	// at start) and the backfill-prediction path (kernel stretch over
	// the mode's mean perf factor).
	kernelMult []float64
	bfMult     []float64
	perfPF     float64
	// holdFor mirrors the harness temporal policy: jobs with id%3 == 0
	// park until submit+holdFor (zero disables the policy).
	holdFor time.Duration

	now time.Time
	seq uint64
	evs []*refEvent

	queue   []*refJob
	held    []*refJob
	running []*refJob // End-sorted, ties in insertion order
	byNode  map[int]*refJob
	free    []bool
	freeN   int
	down    []bool
	upNodes int
	busy    int

	resvs    []*refResv
	captured map[int]*refResv
	draining map[int]*refResv

	stats refStats
}

func newRefModel(cfg Config, total int, testApps []*apps.App, spec *cpu.Spec, fs cpu.FreqSetting, mode cpu.Mode, holdFor time.Duration) *refModel {
	m := &refModel{
		cfg:      cfg,
		total:    total,
		perfPF:   spec.MeanPerfFactor(mode),
		holdFor:  holdFor,
		byNode:   map[int]*refJob{},
		free:     make([]bool, total),
		down:     make([]bool, total),
		freeN:    total,
		upNodes:  total,
		captured: map[int]*refResv{},
		draining: map[int]*refResv{},
	}
	for i := range m.free {
		m.free[i] = true
	}
	for _, a := range testApps {
		m.kernelMult = append(m.kernelMult,
			a.Kernel.TimeMultiplier(spec.EffectiveFrequency(fs), spec.BoostFreq))
		m.bfMult = append(m.bfMult, a.TimeMultiplier(spec, fs, mode))
	}
	return m
}

// schedule mirrors des.Engine.AtArg: sequence numbers are assigned in
// call order and break time ties.
func (m *refModel) schedule(kind refEventKind, at time.Time, j *refJob, rs *refResv) *refEvent {
	ev := &refEvent{at: at, seq: m.seq, kind: kind, job: j, resv: rs}
	m.seq++
	m.evs = append(m.evs, ev)
	return ev
}

func (m *refModel) cancel(ev *refEvent) {
	if ev != nil {
		ev.dead = true
	}
}

// popNext removes and returns the earliest live event (by time, then
// sequence), optionally bounded to strictly before `bound`.
func (m *refModel) popNext(bound time.Time, bounded bool) *refEvent {
	best := -1
	for i, ev := range m.evs {
		if ev.dead {
			continue
		}
		if bounded && !ev.at.Before(bound) {
			continue
		}
		if best < 0 || ev.at.Before(m.evs[best].at) ||
			(ev.at.Equal(m.evs[best].at) && ev.seq < m.evs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ev := m.evs[best]
	m.evs = append(m.evs[:best], m.evs[best+1:]...)
	return ev
}

// runUntil mirrors des.Engine.RunUntil: fire everything strictly before
// the deadline, then advance the clock to it.
func (m *refModel) runUntil(deadline time.Time) {
	for {
		ev := m.popNext(deadline, true)
		if ev == nil {
			break
		}
		m.now = ev.at
		m.dispatch(ev)
	}
	m.now = deadline
}

// runAll mirrors des.Engine.Run.
func (m *refModel) runAll() {
	for {
		ev := m.popNext(time.Time{}, false)
		if ev == nil {
			return
		}
		m.now = ev.at
		m.dispatch(ev)
	}
}

func (m *refModel) dispatch(ev *refEvent) {
	switch ev.kind {
	case refComplete:
		m.finish(ev.job, m.now, Completed)
	case refRelease:
		m.release(ev.job, m.now)
	case refResvStart:
		m.resvStart(ev.resv)
	case refResvEnd:
		m.resvEnd(ev.resv, m.now)
	}
}

// decide mirrors holdYoungPolicy (nothing parked when holdFor is zero).
func (m *refModel) decide(j *refJob) (start bool, recheck time.Time) {
	if m.holdFor == 0 || j.id%3 != 0 {
		return true, time.Time{}
	}
	release := j.submit.Add(m.holdFor)
	if m.now.Before(release) {
		return false, release
	}
	return true, time.Time{}
}

func (m *refModel) submit(id, app, nodes, prio int, ref time.Duration) {
	m.stats.submitted++
	if nodes > m.total || len(m.queue) >= m.cfg.MaxQueue {
		m.stats.dropped++
		return
	}
	j := &refJob{id: id, app: app, nodes: nodes, prio: prio, ref: ref,
		state: Queued, submit: m.now}
	m.enqueue(j)
	m.trySchedule(m.now)
}

func (m *refModel) before(a, b *refJob) bool {
	if m.cfg.AgingHours > 0 {
		as := a.submit.Add(-time.Duration(float64(a.prio) * m.cfg.AgingHours * float64(time.Hour)))
		bs := b.submit.Add(-time.Duration(float64(b.prio) * m.cfg.AgingHours * float64(time.Hour)))
		if !as.Equal(bs) {
			return as.Before(bs)
		}
	} else if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.submit.Before(b.submit)
}

func (m *refModel) enqueue(j *refJob) {
	i := sort.Search(len(m.queue), func(k int) bool { return m.before(j, m.queue[k]) })
	m.queue = append(m.queue, nil)
	copy(m.queue[i+1:], m.queue[i:])
	m.queue[i] = j
}

func (m *refModel) removeQueueAt(i int) {
	m.queue = append(m.queue[:i], m.queue[i+1:]...)
}

func (m *refModel) trySchedule(now time.Time) {
	for {
		for len(m.queue) > 0 && m.queue[0].nodes <= m.freeN {
			j := m.queue[0]
			ok, recheck := m.decide(j)
			m.removeQueueAt(0)
			if !ok {
				m.hold(j, recheck, now)
				continue
			}
			m.start(j, now)
		}
		if m.cfg.Preemption == PreemptOff || len(m.queue) == 0 || !m.preemptForHead(now) {
			break
		}
	}
	if len(m.queue) > 1 && m.cfg.BackfillDepth > 0 {
		if m.cfg.Backfill == BackfillConservative {
			m.conservative(now)
		} else {
			m.easy(now)
		}
	}
}

func (m *refModel) hold(j *refJob, recheck, now time.Time) {
	if !recheck.After(now) {
		recheck = now.Add(time.Minute)
	}
	m.held = append(m.held, j)
	m.stats.holds++
	m.stats.holdDelay += recheck.Sub(now)
	j.releaseAt = recheck
	j.releaseEv = m.schedule(refRelease, recheck, j, nil)
}

func (m *refModel) release(j *refJob, now time.Time) {
	for i, hj := range m.held {
		if hj == j {
			m.held = append(m.held[:i], m.held[i+1:]...)
			break
		}
	}
	j.releaseAt = time.Time{}
	m.enqueue(j)
	m.trySchedule(now)
}

func (m *refModel) start(j *refJob, now time.Time) {
	n := j.nodes
	alloc := make([]int, 0, n)
	for id := 0; id < m.total && len(alloc) < n; id++ {
		if m.free[id] {
			alloc = append(alloc, id)
			m.free[id] = false
			m.byNode[id] = j
		}
	}
	m.freeN -= n
	j.alloc = alloc

	// Exactly the start path's float arithmetic: sum the per-node perf
	// factors (a constant under Performance Determinism), divide by n.
	perfSum := 0.0
	for i := 0; i < n; i++ {
		perfSum += m.perfPF
	}
	perf := perfSum / float64(n)
	rt := time.Duration(float64(j.ref) * m.kernelMult[j.app] / perf)
	if rt <= 0 {
		rt = time.Second
	}
	j.state = Running
	j.start = now
	j.end = now.Add(rt)
	m.busy += n
	m.stats.started++
	m.stats.totalWait += now.Sub(j.submit)
	m.insertRunning(j)
	j.endEv = m.schedule(refComplete, j.end, j, nil)
}

func (m *refModel) insertRunning(j *refJob) {
	i := sort.Search(len(m.running), func(k int) bool { return m.running[k].end.After(j.end) })
	m.running = append(m.running, nil)
	copy(m.running[i+1:], m.running[i:])
	m.running[i] = j
}

func (m *refModel) removeRunning(j *refJob) {
	for i, rj := range m.running {
		if rj == j {
			m.running = append(m.running[:i], m.running[i+1:]...)
			return
		}
	}
}

func (m *refModel) releaseNode(id int) {
	if rs, ok := m.draining[id]; ok {
		delete(m.draining, id)
		m.captured[id] = rs
		rs.count++
		m.upNodes--
		return
	}
	m.free[id] = true
	m.freeN++
}

func (m *refModel) finish(j *refJob, now time.Time, final JobState) {
	if j.state != Running {
		return
	}
	j.state = final
	m.removeRunning(j)
	if final == Failed {
		j.end = now
	}
	for _, id := range j.alloc {
		delete(m.byNode, id)
		if !m.down[id] {
			m.releaseNode(id)
		}
	}
	m.busy -= len(j.alloc)
	switch final {
	case Completed:
		m.stats.completed++
	case Failed:
		m.stats.failed++
	}
	m.trySchedule(now)
}

func (m *refModel) failNode(id int) {
	if id < 0 || id >= m.total || m.down[id] {
		return
	}
	m.down[id] = true
	if j, ok := m.byNode[id]; ok {
		m.upNodes--
		delete(m.draining, id)
		m.cancel(j.endEv)
		m.finish(j, m.now, Failed)
	} else if rs, ok := m.captured[id]; ok {
		delete(m.captured, id)
		rs.count--
	} else {
		m.upNodes--
		m.free[id] = false
		m.freeN--
	}
}

func (m *refModel) activeResvFor(id int) *refResv {
	for _, rs := range m.resvs {
		if !rs.started {
			continue
		}
		for _, rid := range rs.nodes {
			if rid == id {
				return rs
			}
		}
	}
	return nil
}

func (m *refModel) repairNode(id int) {
	if id < 0 || id >= m.total || !m.down[id] {
		return
	}
	m.down[id] = false
	if rs := m.activeResvFor(id); rs != nil {
		m.captured[id] = rs
		rs.count++
		return
	}
	m.upNodes++
	m.free[id] = true
	m.freeN++
	m.trySchedule(m.now)
}

func (m *refModel) addReservation(name string, ids []int, from, to time.Time) {
	nodes := append([]int(nil), ids...)
	sort.Ints(nodes)
	w := 0
	for i, id := range nodes {
		if i > 0 && id == nodes[w-1] {
			continue
		}
		nodes[w] = id
		w++
	}
	rs := &refResv{name: name, nodes: nodes[:w], from: from, to: to}
	m.resvs = append(m.resvs, rs)
	if from.After(m.now) {
		rs.startEv = m.schedule(refResvStart, from, nil, rs)
	} else {
		m.resvStart(rs)
	}
	rs.endEv = m.schedule(refResvEnd, to, nil, rs)
}

func (m *refModel) resvStart(rs *refResv) {
	rs.started = true
	for _, id := range rs.nodes {
		if m.down[id] {
			continue
		}
		if _, busy := m.byNode[id]; busy {
			if _, taken := m.draining[id]; !taken {
				m.draining[id] = rs
			}
		} else if m.free[id] {
			m.free[id] = false
			m.freeN--
			m.captured[id] = rs
			rs.count++
			m.upNodes--
		}
	}
}

func (m *refModel) resvEnd(rs *refResv, now time.Time) {
	for _, id := range rs.nodes {
		if m.captured[id] == rs {
			delete(m.captured, id)
			rs.count--
			m.upNodes++
			m.free[id] = true
			m.freeN++
		}
		if m.draining[id] == rs {
			delete(m.draining, id)
		}
	}
	for i, r := range m.resvs {
		if r == rs {
			m.resvs = append(m.resvs[:i], m.resvs[i+1:]...)
			break
		}
	}
	m.trySchedule(now)
}

func (m *refModel) cancelReservation(name string) bool {
	for _, rs := range m.resvs {
		if rs.name != name {
			continue
		}
		if !rs.started {
			m.cancel(rs.startEv)
		}
		m.cancel(rs.endEv)
		m.resvEnd(rs, m.now)
		return true
	}
	return false
}

func (m *refModel) releasable(rj *refJob) int {
	n := 0
	for _, id := range rj.alloc {
		if m.draining[id] == nil {
			n++
		}
	}
	return n
}

func (m *refModel) predict(j *refJob) time.Duration {
	return time.Duration(float64(j.ref) * m.bfMult[j.app])
}

// easy is the model's EASY backfill: shadow time and spare-node count
// from the merged release walk (running-job ends and started-reservation
// ends in time order), then the depth-bounded candidate scan.
func (m *refModel) easy(now time.Time) {
	head := m.queue[0]
	type release struct {
		at time.Time
		n  int
	}
	var rel []release
	for _, rj := range m.running {
		if n := m.releasable(rj); n > 0 {
			rel = append(rel, release{rj.end, n})
		}
	}
	for _, rs := range m.resvs {
		if rs.started && rs.count > 0 {
			rel = append(rel, release{rs.to, rs.count})
		}
	}
	sort.SliceStable(rel, func(i, j int) bool { return rel[i].at.Before(rel[j].at) })
	var shadow time.Time
	extra := 0
	cum := m.freeN
	if cum >= head.nodes {
		return // trySchedule would have started it; unreachable in practice
	}
	for _, r := range rel {
		cum += r.n
		if cum >= head.nodes {
			shadow = r.at
			extra = cum - head.nodes
			break
		}
	}
	if shadow.IsZero() {
		return
	}
	depth := m.cfg.BackfillDepth
	for i := 1; i < len(m.queue) && depth > 0; depth-- {
		j := m.queue[i]
		if j.nodes > m.freeN {
			i++
			continue
		}
		rt := m.predict(j)
		endsBefore := !now.Add(rt).After(shadow)
		if endsBefore || j.nodes <= extra {
			ok, recheck := m.decide(j)
			m.removeQueueAt(i)
			if !ok {
				m.hold(j, recheck, now)
				continue
			}
			if !endsBefore {
				extra -= j.nodes
			}
			m.start(j, now)
			continue
		}
		i++
	}
}

// refProfile is the model's free-capacity profile: a bag of (time, delta)
// events whose prefix sums over sorted unique times give the free-node
// level of each segment. Reserving a window is just two more deltas.
type refProfile struct {
	deltas map[int64]int
	times  map[int64]time.Time
}

func newRefProfile(now time.Time, avail int) *refProfile {
	p := &refProfile{deltas: map[int64]int{}, times: map[int64]time.Time{}}
	p.add(now, avail)
	return p
}

func (p *refProfile) add(t time.Time, d int) {
	k := t.UnixNano()
	p.deltas[k] += d
	p.times[k] = t
}

func (p *refProfile) levels() ([]time.Time, []int) {
	keys := make([]int64, 0, len(p.deltas))
	for k := range p.deltas {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	ts := make([]time.Time, len(keys))
	free := make([]int, len(keys))
	cum := 0
	for i, k := range keys {
		cum += p.deltas[k]
		ts[i] = p.times[k]
		free[i] = cum
	}
	return ts, free
}

func (p *refProfile) earliest(n int, rt time.Duration) time.Time {
	ts, free := p.levels()
	for i := range ts {
		if free[i] < n {
			continue
		}
		end := ts[i].Add(rt)
		ok := true
		for k := i + 1; k < len(ts) && ts[k].Before(end); k++ {
			if free[k] < n {
				ok = false
				break
			}
		}
		if ok {
			return ts[i]
		}
	}
	return time.Time{}
}

func (p *refProfile) reserve(from time.Time, rt time.Duration, n int) {
	p.add(from, -n)
	p.add(from.Add(rt), n)
}

func (m *refModel) conservative(now time.Time) {
	p := newRefProfile(now, m.freeN)
	for _, rj := range m.running {
		if n := m.releasable(rj); n > 0 {
			p.add(rj.end, n)
		}
	}
	for _, rs := range m.resvs {
		if rs.started {
			if rs.count > 0 {
				p.add(rs.to, rs.count)
			}
			continue
		}
		p.add(rs.from, -len(rs.nodes))
		p.add(rs.to, len(rs.nodes))
	}
	limit := m.cfg.BackfillDepth + 1
	if limit > len(m.queue) {
		limit = len(m.queue)
	}
	for i := 0; i < limit; {
		j := m.queue[i]
		rt := m.predict(j)
		at := p.earliest(j.nodes, rt)
		if at.IsZero() {
			i++
			continue
		}
		if at.Equal(now) && j.nodes <= m.freeN {
			ok, recheck := m.decide(j)
			m.removeQueueAt(i)
			limit--
			if !ok {
				m.hold(j, recheck, now)
				continue
			}
			m.start(j, now)
			p.reserve(now, rt, j.nodes)
			continue
		}
		p.reserve(at, rt, j.nodes)
		i++
	}
}

func (m *refModel) preemptForHead(now time.Time) bool {
	head := m.queue[0]
	need := head.nodes - m.freeN
	if need <= 0 {
		return false
	}
	gap := m.cfg.PreemptMinGap
	if gap < 1 {
		gap = 1
	}
	var victims []*refJob
	for _, rj := range m.running {
		if head.prio-rj.prio >= gap {
			victims = append(victims, rj)
		}
	}
	cost := func(j *refJob) float64 {
		return j.end.Sub(now).Hours() * float64(len(j.alloc))
	}
	sort.SliceStable(victims, func(a, b int) bool {
		ca, cb := cost(victims[a]), cost(victims[b])
		if ca != cb {
			return ca < cb
		}
		return victims[a].id < victims[b].id
	})
	freed, take := 0, 0
	for _, v := range victims {
		freed += len(v.alloc)
		take++
		if freed >= need {
			break
		}
	}
	if freed < need {
		return false
	}
	for _, v := range victims[:take] {
		m.preempt(v, now)
	}
	return head.nodes <= m.freeN
}

func (m *refModel) preempt(j *refJob, now time.Time) {
	m.cancel(j.endEv)
	m.removeRunning(j)
	for _, id := range j.alloc {
		delete(m.byNode, id)
		if !m.down[id] {
			m.releaseNode(id)
		}
	}
	m.busy -= len(j.alloc)
	m.stats.preemptions++
	if m.cfg.Preemption == PreemptCancel {
		j.state = Preempted
		j.end = now
		return
	}
	j.state = Queued
	j.submit = now // requeued victims re-enter as freshly submitted
	j.start, j.end = time.Time{}, time.Time{}
	j.alloc = j.alloc[:0]
	m.enqueue(j)
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

// holdYoungPolicy is a deterministic, non-blocking temporal policy for
// the harness: every third job parks until a fixed time after its
// submission, exercising the hold / release / re-enqueue path.
type holdYoungPolicy struct{ until time.Duration }

func (p *holdYoungPolicy) Name() string { return "hold-young" }

func (p *holdYoungPolicy) Decide(j *Job, now time.Time, _, _ units.Power) TemporalDecision {
	if j.Spec.ID%3 != 0 {
		return TemporalDecision{Start: true}
	}
	release := j.Submit.Add(p.until)
	if now.Before(release) {
		return TemporalDecision{Start: false, Recheck: release}
	}
	return TemporalDecision{Start: true}
}

type refHarnessOpts struct {
	prios   []int         // priority levels to draw from (nil: all zero)
	resvOps bool          // include reservation install/cancel ops
	hold    time.Duration // non-zero: attach holdYoungPolicy to both sides
}

func compareRef(t *testing.T, tag string, s *Scheduler, m *refModel) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("%s: %s", tag, fmt.Sprintf(format, args...))
	}
	sq := s.QueuedJobs()
	if len(sq) != len(m.queue) {
		fail("queue depth %d, model %d", len(sq), len(m.queue))
	}
	for i := range sq {
		if sq[i].Spec.ID != m.queue[i].id {
			fail("queue[%d] = job %d, model job %d", i, sq[i].Spec.ID, m.queue[i].id)
		}
	}
	if len(s.heldJobs) != len(m.held) {
		fail("held %d, model %d", len(s.heldJobs), len(m.held))
	}
	for i := range s.heldJobs {
		if s.heldJobs[i].Spec.ID != m.held[i].id || !s.heldJobs[i].releaseAt.Equal(m.held[i].releaseAt) {
			fail("held[%d] = job %d @%v, model job %d @%v", i,
				s.heldJobs[i].Spec.ID, s.heldJobs[i].releaseAt, m.held[i].id, m.held[i].releaseAt)
		}
	}
	if len(s.running) != len(m.running) {
		fail("running %d, model %d", len(s.running), len(m.running))
	}
	for i := range s.running {
		rj, mj := s.running[i], m.running[i]
		if rj.Spec.ID != mj.id {
			fail("running[%d] = job %d, model job %d", i, rj.Spec.ID, mj.id)
		}
		if !rj.End.Equal(mj.end) {
			fail("job %d end %v, model %v", rj.Spec.ID, rj.End, mj.end)
		}
		if len(rj.Nodes) != len(mj.alloc) {
			fail("job %d allocation %v, model %v", rj.Spec.ID, rj.Nodes, mj.alloc)
		}
		for k := range rj.Nodes {
			if rj.Nodes[k] != mj.alloc[k] {
				fail("job %d allocation %v, model %v", rj.Spec.ID, rj.Nodes, mj.alloc)
			}
		}
	}
	for id := 0; id < m.total; id++ {
		if s.free.Contains(id) != m.free[id] {
			fail("node %d free=%v, model %v", id, s.free.Contains(id), m.free[id])
		}
	}
	if s.free.Count() != m.freeN {
		fail("free count %d, model %d", s.free.Count(), m.freeN)
	}
	if s.UpNodes() != m.upNodes || s.BusyNodes() != m.busy {
		fail("up/busy %d/%d, model %d/%d", s.UpNodes(), s.BusyNodes(), m.upNodes, m.busy)
	}
	names := s.Reservations()
	if len(names) != len(m.resvs) {
		fail("reservations %v, model has %d", names, len(m.resvs))
	}
	for i := range names {
		if names[i] != m.resvs[i].name {
			fail("reservation[%d] = %q, model %q", i, names[i], m.resvs[i].name)
		}
	}
	if s.ReservedNodes() != len(m.captured) || s.DrainingNodes() != len(m.draining) {
		fail("captured/draining %d/%d, model %d/%d",
			s.ReservedNodes(), s.DrainingNodes(), len(m.captured), len(m.draining))
	}
	for id, rs := range m.captured {
		real, ok := s.captured[id]
		if !ok || real.res.Name != rs.name {
			fail("node %d captured by model %q, scheduler disagrees", id, rs.name)
		}
	}
	for id, rs := range m.draining {
		real, ok := s.draining[id]
		if !ok || real.res.Name != rs.name {
			fail("node %d draining for model %q, scheduler disagrees", id, rs.name)
		}
	}
	st := s.Stats()
	got := refStats{
		submitted:   st.Submitted,
		started:     st.StartedJobs,
		completed:   st.Completed,
		failed:      st.Failed,
		dropped:     st.Dropped,
		holds:       st.Holds,
		holdDelay:   st.HoldDelay,
		preemptions: st.Preemptions,
		totalWait:   st.TotalWait,
	}
	if got != m.stats {
		fail("stats %+v, model %+v", got, m.stats)
	}
}

func runRefEpisode(t *testing.T, cfg Config, seed uint64, opts refHarnessOpts) {
	t.Helper()
	const total = 32
	fcfg := facility.ARCHER2()
	fcfg.Nodes = total
	fac, err := facility.New(fcfg, rng.New(7), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	if opts.hold > 0 {
		cfg.Temporal = &holdYoungPolicy{until: opts.hold}
	}
	s := New(eng, fac, cappedProvider{fcfg.CPU}, cfg)

	testApps := []*apps.App{
		{Name: "cb", Kernel: roofline.Kernel{ComputeFraction: 1.0}, ActCore: 1, ActUncore: 0.2},
		{Name: "mix", Kernel: roofline.Kernel{ComputeFraction: 0.5}, ActCore: 0.6, ActUncore: 0.6},
		{Name: "mem", Kernel: roofline.Kernel{ComputeFraction: 0.1}, ActCore: 0.4, ActUncore: 0.9},
	}
	m := newRefModel(cfg, total, testApps, fcfg.CPU,
		fcfg.CPU.CappedSetting(), cpu.PerformanceDeterminism, opts.hold)

	stream := rng.New(seed)
	now := t0
	resvN := 0
	for op := 0; op < 150; op++ {
		now = now.Add(time.Duration(stream.Intn(90)) * time.Minute)
		eng.RunUntil(now)
		m.runUntil(now)
		compareRef(t, fmt.Sprintf("seed %d op %d (pre)", seed, op), s, m)

		switch k := stream.Intn(12); {
		case k < 8: // submit
			appIdx := stream.Intn(len(testApps))
			n := 1 + stream.Intn(16)
			ref := time.Duration(1+stream.Intn(48)) * 15 * time.Minute
			prio := 0
			if len(opts.prios) > 0 {
				prio = opts.prios[stream.Intn(len(opts.prios))]
			}
			s.Submit(workload.JobSpec{ID: op, Class: "ref", App: testApps[appIdx],
				Nodes: n, RefRuntime: ref, Priority: prio})
			m.submit(op, appIdx, n, prio, ref)
		case k == 8:
			id := stream.Intn(total)
			if err := s.FailNode(id); err != nil {
				t.Fatal(err)
			}
			m.failNode(id)
		case k == 9:
			id := stream.Intn(total)
			if err := s.RepairNode(id); err != nil {
				t.Fatal(err)
			}
			m.repairNode(id)
		case k == 10 && opts.resvOps:
			resvN++
			name := fmt.Sprintf("r%d", resvN)
			a := stream.Intn(total)
			ln := 1 + stream.Intn(8)
			if a+ln > total {
				ln = total - a
			}
			if ln == 0 {
				break
			}
			ids := make([]int, ln)
			for i := range ids {
				ids[i] = a + i
			}
			from := now.Add(time.Duration(stream.Intn(4)) * time.Hour)
			to := from.Add(time.Duration(1+stream.Intn(6)) * time.Hour)
			if err := s.AddReservation(Reservation{Name: name, Nodes: ids, From: from, To: to}); err != nil {
				t.Fatal(err)
			}
			m.addReservation(name, ids, from, to)
		case k == 11 && opts.resvOps:
			if len(m.resvs) > 0 {
				name := m.resvs[stream.Intn(len(m.resvs))].name
				if !s.CancelReservation(name) {
					t.Fatalf("scheduler lost reservation %q", name)
				}
				m.cancelReservation(name)
			}
		}
		compareRef(t, fmt.Sprintf("seed %d op %d (post)", seed, op), s, m)
	}
	eng.Run()
	m.runAll()
	compareRef(t, fmt.Sprintf("seed %d (final)", seed), s, m)
}

// TestSchedulerMatchesReferenceModel locksteps the optimized scheduler
// against the plain reference model across every policy combination:
// EASY and conservative backfill, priority classes with and without
// aging, both preemption modes, reservations, a temporal hold policy,
// and all of them at once.
func TestSchedulerMatchesReferenceModel(t *testing.T) {
	base := func() Config { return Config{BackfillDepth: 8, MaxQueue: 64} }
	prios := []int{0, 2, 5}
	cases := []struct {
		name string
		cfg  func() Config
		opts refHarnessOpts
	}{
		{"fcfs", func() Config { c := base(); c.BackfillDepth = 0; return c }, refHarnessOpts{}},
		{"easy", base, refHarnessOpts{}},
		{"easy-priorities", base, refHarnessOpts{prios: prios}},
		{"easy-aging", func() Config { c := base(); c.AgingHours = 6; return c }, refHarnessOpts{prios: prios}},
		{"conservative", func() Config { c := base(); c.Backfill = BackfillConservative; return c }, refHarnessOpts{}},
		{"conservative-priorities", func() Config { c := base(); c.Backfill = BackfillConservative; return c },
			refHarnessOpts{prios: prios}},
		{"preempt-requeue", func() Config { c := base(); c.Preemption = PreemptRequeue; return c },
			refHarnessOpts{prios: prios}},
		{"preempt-cancel", func() Config { c := base(); c.Preemption = PreemptCancel; c.PreemptMinGap = 2; return c },
			refHarnessOpts{prios: prios}},
		{"preempt-cancel-reuse", func() Config {
			c := base()
			c.Preemption = PreemptCancel
			c.ReuseJobs = true
			return c
		}, refHarnessOpts{prios: prios}},
		{"reservations-easy", base, refHarnessOpts{resvOps: true}},
		{"reservations-conservative", func() Config { c := base(); c.Backfill = BackfillConservative; return c },
			refHarnessOpts{resvOps: true}},
		{"hold-policy", base, refHarnessOpts{hold: 4 * time.Hour}},
		{"everything", func() Config {
			c := base()
			c.Backfill = BackfillConservative
			c.Preemption = PreemptRequeue
			c.AgingHours = 12
			return c
		}, refHarnessOpts{prios: prios, resvOps: true, hold: 3 * time.Hour}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				runRefEpisode(t, tc.cfg(), seed, tc.opts)
			}
		})
	}
}

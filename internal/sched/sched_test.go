package sched

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

// stockProvider always uses the stock operating point.
type stockProvider struct{ spec *cpu.Spec }

func (p stockProvider) JobSettings(*apps.App) (cpu.FreqSetting, cpu.Mode, bool) {
	return p.spec.DefaultSetting(), cpu.PowerDeterminism, false
}

type rig struct {
	eng *des.Engine
	fac *facility.Facility
	s   *Scheduler
	app *apps.App
}

func newRig(t *testing.T, nodes int, cfg Config) *rig {
	t.Helper()
	fcfg := facility.ARCHER2()
	fcfg.Nodes = nodes
	fac, err := facility.New(fcfg, rng.New(5), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	s := New(eng, fac, stockProvider{fcfg.CPU}, cfg)
	app := &apps.App{
		Name:    "test-app",
		Kernel:  roofline.Kernel{ComputeFraction: 0.5},
		ActCore: 0.6, ActUncore: 0.6,
	}
	return &rig{eng: eng, fac: fac, s: s, app: app}
}

func (r *rig) spec(id, nodes int, runtime time.Duration) workload.JobSpec {
	return workload.JobSpec{ID: id, Class: "test", App: r.app, Nodes: nodes, RefRuntime: runtime}
}

func TestSingleJobLifecycle(t *testing.T) {
	r := newRig(t, 10, DefaultConfig())
	j := r.s.Submit(r.spec(1, 4, time.Hour))
	if j.State != Running {
		t.Fatalf("state = %v, want running", j.State)
	}
	if r.s.BusyNodes() != 4 || math.Abs(r.s.Utilisation()-0.4) > 1e-9 {
		t.Fatalf("busy = %d util = %v", r.s.BusyNodes(), r.s.Utilisation())
	}
	if len(j.Nodes) != 4 {
		t.Fatalf("allocated = %v", j.Nodes)
	}
	// Lowest IDs first, deterministic.
	for i, id := range j.Nodes {
		if id != i {
			t.Fatalf("allocation = %v, want [0 1 2 3]", j.Nodes)
		}
	}
	r.eng.Run()
	if j.State != Completed {
		t.Fatalf("final state = %v", j.State)
	}
	if r.s.BusyNodes() != 0 || r.s.RunningJobs() != 0 {
		t.Fatal("scheduler not empty after completion")
	}
	st := r.s.Stats()
	if st.Completed != 1 || st.Submitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if j.Energy.Joules() <= 0 {
		t.Fatal("no energy accounted")
	}
	// Runtime at the reference point equals the reference runtime up to the
	// sampled per-die performance spread (sigma 0.8%).
	if math.Abs(j.Runtime.Hours()-1) > 0.03 {
		t.Fatalf("runtime = %v, want ~1h", j.Runtime)
	}
	if math.Abs(st.NodeHoursUsed-4*j.Runtime.Hours()) > 1e-9 {
		t.Fatalf("node hours = %v, want %v", st.NodeHoursUsed, 4*j.Runtime.Hours())
	}
}

func TestFCFSQueueing(t *testing.T) {
	r := newRig(t, 10, Config{BackfillDepth: 0, MaxQueue: 100})
	j1 := r.s.Submit(r.spec(1, 8, time.Hour))
	j2 := r.s.Submit(r.spec(2, 8, time.Hour))
	if j1.State != Running || j2.State != Queued {
		t.Fatalf("states = %v, %v", j1.State, j2.State)
	}
	r.eng.Run()
	if j2.State != Completed {
		t.Fatalf("j2 = %v", j2.State)
	}
	if j2.Start.Before(j1.End) {
		t.Fatalf("j2 started %v before j1 ended %v", j2.Start, j1.End)
	}
	// Wait equals j1's (die-spread-adjusted) runtime, ~1h +/- 3%.
	if got := j2.WaitTime(); math.Abs(got.Hours()-1) > 0.03 {
		t.Fatalf("j2 wait = %v, want ~1h", got)
	}
}

func TestEASYBackfill(t *testing.T) {
	// 10 nodes. j1 takes 8 for 2h. j2 (head, blocked) wants 10.
	// j3 wants 2 nodes for 1h: fits now and ends before j1 frees nodes,
	// so EASY must start it immediately.
	r := newRig(t, 10, DefaultConfig())
	j1 := r.s.Submit(r.spec(1, 8, 2*time.Hour))
	j2 := r.s.Submit(r.spec(2, 10, time.Hour))
	j3 := r.s.Submit(r.spec(3, 2, time.Hour))
	if j1.State != Running {
		t.Fatalf("j1 = %v", j1.State)
	}
	if j2.State != Queued {
		t.Fatalf("j2 = %v", j2.State)
	}
	if j3.State != Running {
		t.Fatalf("j3 = %v (backfill failed)", j3.State)
	}
	r.eng.Run()
	// j2 must not have been delayed beyond j1's end.
	if !j2.Start.Equal(j1.End) {
		t.Fatalf("j2 started %v, want %v", j2.Start, j1.End)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// j3 would fit now but runs past the shadow time and needs nodes the
	// head will use: it must NOT be backfilled.
	r := newRig(t, 10, DefaultConfig())
	j1 := r.s.Submit(r.spec(1, 8, 2*time.Hour))
	j2 := r.s.Submit(r.spec(2, 10, time.Hour))
	j3 := r.s.Submit(r.spec(3, 2, 10*time.Hour))
	if j3.State != Queued {
		t.Fatalf("j3 = %v, should wait (would delay head)", j3.State)
	}
	r.eng.Run()
	if !j2.Start.Equal(j1.End) {
		t.Fatalf("head delayed: started %v, want %v", j2.Start, j1.End)
	}
}

func TestBackfillUsesExtraNodes(t *testing.T) {
	// Head needs 8 after j1's 4-node job ends; 10-node system: free now =
	// 6, so shadow leaves extra = (6+4)-8 = 2 nodes. A long 2-node job can
	// backfill even though it outlives the shadow time.
	r := newRig(t, 10, DefaultConfig())
	j1 := r.s.Submit(r.spec(1, 4, 2*time.Hour))
	j2 := r.s.Submit(r.spec(2, 8, time.Hour))
	j3 := r.s.Submit(r.spec(3, 2, 24*time.Hour))
	if j1.State != Running || j2.State != Queued {
		t.Fatalf("setup wrong: j1=%v j2=%v", j1.State, j2.State)
	}
	if j3.State != Running {
		t.Fatalf("j3 = %v, want backfilled on extra nodes", j3.State)
	}
	r.eng.Run()
	if !j2.Start.Equal(j1.End) {
		t.Fatalf("head delayed to %v", j2.Start)
	}
}

func TestDropOversizedAndOverflow(t *testing.T) {
	r := newRig(t, 10, Config{BackfillDepth: 0, MaxQueue: 2})
	if j := r.s.Submit(r.spec(1, 11, time.Hour)); j.State != Dropped {
		t.Fatalf("oversized job = %v", j.State)
	}
	r.s.Submit(r.spec(2, 10, time.Hour)) // running
	r.s.Submit(r.spec(3, 10, time.Hour)) // queued
	r.s.Submit(r.spec(4, 10, time.Hour)) // queued
	if j := r.s.Submit(r.spec(5, 1, time.Hour)); j.State != Dropped {
		t.Fatalf("overflow job = %v", j.State)
	}
	if r.s.Stats().Dropped != 2 {
		t.Fatalf("dropped = %d", r.s.Stats().Dropped)
	}
}

func TestNodeConservation(t *testing.T) {
	// Property-style stress: random-ish job stream; at every completion
	// the invariant busy+free+down == total holds and no node is double
	// allocated.
	r := newRig(t, 50, DefaultConfig())
	seen := func() {
		inUse := map[int]bool{}
		for _, j := range r.s.running {
			for _, id := range j.Nodes {
				if inUse[id] {
					t.Fatalf("node %d double-allocated", id)
				}
				inUse[id] = true
			}
		}
		if len(inUse) != r.s.BusyNodes() {
			t.Fatalf("busy count %d != allocated %d", r.s.BusyNodes(), len(inUse))
		}
		if r.s.BusyNodes()+r.s.free.Count() != r.s.UpNodes() {
			t.Fatalf("conservation: busy %d + free %d != up %d",
				r.s.BusyNodes(), r.s.free.Count(), r.s.UpNodes())
		}
	}
	r.s.OnJobEnd(func(*Job) { seen() })
	stream := rng.New(77)
	for i := 0; i < 200; i++ {
		nodes := 1 + stream.Intn(20)
		rt := time.Duration(1+stream.Intn(8)) * time.Hour
		r.s.Submit(r.spec(i, nodes, rt))
		seen()
	}
	r.eng.Run()
	st := r.s.Stats()
	if st.Completed != 200 {
		t.Fatalf("completed = %d, want 200", st.Completed)
	}
	if r.s.BusyNodes() != 0 || r.s.free.Count() != 50 {
		t.Fatal("not all nodes returned")
	}
}

func TestFailNodeIdle(t *testing.T) {
	r := newRig(t, 10, DefaultConfig())
	if err := r.s.FailNode(3); err != nil {
		t.Fatal(err)
	}
	if r.s.UpNodes() != 9 {
		t.Fatalf("up = %d", r.s.UpNodes())
	}
	// A 10-node job can no longer run; 9-node job can and avoids node 3.
	j := r.s.Submit(r.spec(1, 9, time.Hour))
	if j.State != Running {
		t.Fatalf("9-node job = %v", j.State)
	}
	for _, id := range j.Nodes {
		if id == 3 {
			t.Fatal("failed node allocated")
		}
	}
	// Repair and reuse.
	r.eng.Run()
	if err := r.s.RepairNode(3); err != nil {
		t.Fatal(err)
	}
	if r.s.UpNodes() != 10 {
		t.Fatalf("up after repair = %d", r.s.UpNodes())
	}
	j2 := r.s.Submit(r.spec(2, 10, time.Hour))
	if j2.State != Running {
		t.Fatalf("10-node job after repair = %v", j2.State)
	}
}

func TestFailNodeKillsJob(t *testing.T) {
	r := newRig(t, 10, DefaultConfig())
	j := r.s.Submit(r.spec(1, 4, 10*time.Hour))
	r.eng.RunUntil(t0.Add(2 * time.Hour))
	if err := r.s.FailNode(j.Nodes[0]); err != nil {
		t.Fatal(err)
	}
	if j.State != Failed {
		t.Fatalf("job state = %v, want failed", j.State)
	}
	if j.Runtime != 2*time.Hour {
		t.Fatalf("failed job runtime = %v, want 2h", j.Runtime)
	}
	// Other three nodes are free again; the failed one is down.
	if r.s.UpNodes() != 9 || r.s.free.Count() != 9-0 {
		t.Fatalf("up = %d free = %d", r.s.UpNodes(), r.s.free.Count())
	}
	if r.fac.Node(j.Nodes[0]).State() != node.Down {
		t.Fatal("failed node not down")
	}
	if r.s.Stats().Failed != 1 {
		t.Fatalf("failed stat = %d", r.s.Stats().Failed)
	}
	// Double-fail and out-of-range are handled.
	if err := r.s.FailNode(j.Nodes[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.s.FailNode(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := r.s.RepairNode(9999); err == nil {
		t.Fatal("out-of-range repair accepted")
	}
}

func TestRuntimeStretchedByOperatingPoint(t *testing.T) {
	// A capped provider must stretch runtimes per the roofline model.
	fcfg := facility.ARCHER2()
	fcfg.Nodes = 10
	fac, err := facility.New(fcfg, rng.New(5), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	s := New(eng, fac, cappedProvider{fcfg.CPU}, DefaultConfig())
	app := &apps.App{Name: "x", Kernel: roofline.Kernel{ComputeFraction: 1.0}, ActCore: 1, ActUncore: 0.2}
	j := s.Submit(workload.JobSpec{ID: 1, App: app, Nodes: 2, RefRuntime: time.Hour})
	if j.State != Running {
		t.Fatalf("state = %v", j.State)
	}
	// Fully compute-bound at 2.0 vs 2.8 boost: 1.4x, divided by the
	// perf-det factor 0.99.
	want := 1.4 / 0.99
	got := float64(j.Runtime) / float64(time.Hour)
	if math.Abs(got-want) > 0.001 {
		t.Fatalf("stretch = %v, want %v", got, want)
	}
	if j.Mode != cpu.PerformanceDeterminism || j.Setting.Boost {
		t.Fatalf("operating point = %v/%v", j.Setting, j.Mode)
	}
}

type cappedProvider struct{ spec *cpu.Spec }

func (p cappedProvider) JobSettings(*apps.App) (cpu.FreqSetting, cpu.Mode, bool) {
	return p.spec.CappedSetting(), cpu.PerformanceDeterminism, false
}

func TestMeanWait(t *testing.T) {
	var st Stats
	if st.MeanWait() != 0 {
		t.Fatal("zero-jobs mean wait nonzero")
	}
	st.StartedJobs = 2
	st.TotalWait = 3 * time.Hour
	if st.MeanWait() != 90*time.Minute {
		t.Fatalf("mean wait = %v", st.MeanWait())
	}
}

func TestJobStateString(t *testing.T) {
	for _, s := range []JobState{Queued, Running, Completed, Failed, Dropped, JobState(42)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestReclockRunning(t *testing.T) {
	r := newRig(t, 20, DefaultConfig())
	// Fully compute-bound app so the stretch is exactly the frequency ratio.
	app := &apps.App{Name: "cb", Kernel: roofline.Kernel{ComputeFraction: 1.0},
		ActCore: 1.0, ActUncore: 0.2}
	j := r.s.Submit(workload.JobSpec{ID: 1, App: app, Nodes: 4, RefRuntime: 4 * time.Hour})
	if j.State != Running {
		t.Fatal("setup: job not running")
	}
	runtimeBefore := j.Runtime
	powerBefore := 0.0
	for _, id := range j.Nodes {
		powerBefore += r.fac.Node(id).Power().Watts()
	}

	// Halfway through, cap to 2.0 GHz.
	half := j.Start.Add(j.Runtime / 2)
	r.eng.RunUntil(half)
	n, err := r.s.ReclockRunning(r.fac.Config().CPU.CappedSetting())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reclocked %d jobs", n)
	}
	powerAfter := 0.0
	for _, id := range j.Nodes {
		powerAfter += r.fac.Node(id).Power().Watts()
	}
	if powerAfter >= powerBefore {
		t.Fatalf("reclock did not cut power: %v -> %v", powerBefore, powerAfter)
	}
	// Remaining half stretches by 2.8/2.0 = 1.4: total = 0.5 + 0.5*1.4.
	wantTotal := time.Duration(float64(runtimeBefore) * (0.5 + 0.5*1.4))
	if math.Abs(float64(j.Runtime-wantTotal)) > float64(time.Minute) {
		t.Fatalf("runtime after reclock = %v, want ~%v", j.Runtime, wantTotal)
	}
	// Job still completes, at the adjusted end.
	r.eng.Run()
	if j.State != Completed {
		t.Fatalf("state = %v", j.State)
	}
	if !j.End.Equal(j.Start.Add(j.Runtime)) {
		t.Fatal("end/runtime inconsistent")
	}
	// Energy combines both segments: between full-rate (fast, hot) and
	// capped-rate (slow, cool) single-point totals.
	if j.Energy.Joules() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestReclockRunningRestore(t *testing.T) {
	r := newRig(t, 20, DefaultConfig())
	app := &apps.App{Name: "cb", Kernel: roofline.Kernel{ComputeFraction: 0.5},
		ActCore: 0.8, ActUncore: 0.5}
	j := r.s.Submit(workload.JobSpec{ID: 1, App: app, Nodes: 2, RefRuntime: 6 * time.Hour})
	spec := r.fac.Config().CPU
	r.eng.RunUntil(j.Start.Add(time.Hour))
	if _, err := r.s.ReclockRunning(spec.CappedSetting()); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(r.eng.Now().Add(time.Hour))
	// Restore to stock: reclock back.
	if _, err := r.s.ReclockRunning(spec.DefaultSetting()); err != nil {
		t.Fatal(err)
	}
	if j.Setting != spec.DefaultSetting() {
		t.Fatalf("setting = %v", j.Setting)
	}
	// Reclocking to the current setting is a no-op.
	n, err := r.s.ReclockRunning(spec.DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("no-op reclock touched %d jobs", n)
	}
	r.eng.Run()
	if j.State != Completed {
		t.Fatalf("state = %v", j.State)
	}
}

func TestReclockInvalidSetting(t *testing.T) {
	r := newRig(t, 10, DefaultConfig())
	bad := cpu.FreqSetting{Base: units.Gigahertz(5)}
	if _, err := r.s.ReclockRunning(bad); err == nil {
		t.Fatal("invalid reclock setting accepted")
	}
}

func TestPowerCapAdmission(t *testing.T) {
	r := newRig(t, 20, DefaultConfig())
	// Each 4-node test-app job draws 4 x ~500 W = ~2 kW.
	perJob := 4 * 500.0
	r.s.SetPowerCap(units.Watts(2.2 * perJob)) // room for two jobs
	j1 := r.s.Submit(r.spec(1, 4, time.Hour))
	j2 := r.s.Submit(r.spec(2, 4, 3*time.Hour))
	j3 := r.s.Submit(r.spec(3, 4, 3*time.Hour))
	if j1.State != Running || j2.State != Running {
		t.Fatalf("first two jobs: %v, %v", j1.State, j2.State)
	}
	if j3.State != Queued {
		t.Fatalf("third job = %v, want queued under power cap (est %v, cap %v)",
			j3.State, r.s.EstimatedBusyPower(), r.s.PowerCap())
	}
	// Nodes are free (12 of 20), so the block is the cap, not capacity.
	if r.s.free.Count() < j3.Spec.Nodes {
		t.Fatal("test premise broken: nodes are not free")
	}
	// When j1 ends, j3 starts.
	r.eng.RunUntil(j1.End.Add(time.Minute))
	if j3.State != Running {
		t.Fatalf("j3 after release = %v", j3.State)
	}
	// Removing the cap opens the gates.
	j4 := r.s.Submit(r.spec(4, 4, time.Hour))
	if j4.State != Queued {
		t.Fatalf("j4 = %v, want queued (cap still on)", j4.State)
	}
	r.s.SetPowerCap(0)
	if j4.State != Running {
		t.Fatalf("j4 after cap removal = %v", j4.State)
	}
}

func TestPowerCapLedgerBalances(t *testing.T) {
	r := newRig(t, 30, DefaultConfig())
	for i := 0; i < 10; i++ {
		r.s.Submit(r.spec(i, 3, time.Duration(1+i)*time.Hour))
	}
	if est := r.s.EstimatedBusyPower().Watts(); est <= 0 {
		t.Fatal("no committed power tracked")
	}
	r.eng.Run()
	if est := r.s.EstimatedBusyPower().Watts(); math.Abs(est) > 1e-6 {
		t.Fatalf("ledger nonzero after drain: %v W", est)
	}
}

func TestPowerCapWithReclock(t *testing.T) {
	r := newRig(t, 20, DefaultConfig())
	j := r.s.Submit(r.spec(1, 8, 4*time.Hour))
	before := r.s.EstimatedBusyPower().Watts()
	r.eng.RunUntil(j.Start.Add(time.Hour))
	if _, err := r.s.ReclockRunning(r.fac.Config().CPU.CappedSetting()); err != nil {
		t.Fatal(err)
	}
	after := r.s.EstimatedBusyPower().Watts()
	if after >= before {
		t.Fatalf("ledger did not fall on reclock: %v -> %v", before, after)
	}
	r.eng.Run()
	if est := r.s.EstimatedBusyPower().Watts(); math.Abs(est) > 1e-6 {
		t.Fatalf("ledger nonzero after drain: %v W", est)
	}
}

// Job recycling (Config.ReuseJobs) must be observationally invisible:
// an identical interleaved submission pattern — arrivals racing
// completions so the free list is actually exercised, plus drops and a
// node failure — must produce bit-identical scheduler statistics with
// recycling on and off.
func TestReuseJobsBitIdentical(t *testing.T) {
	run := func(reuse bool) (Stats, float64) {
		cfg := DefaultConfig()
		cfg.MaxQueue = 8 // force the dropped-job recycle path
		cfg.ReuseJobs = reuse
		r := newRig(t, 24, cfg)
		stream := rng.New(99)
		for i := 0; i < 400; i++ {
			at := t0.Add(time.Duration(i) * 7 * time.Minute)
			id, nodes := i, 1+stream.Intn(12)
			runtime := time.Duration(10+stream.Intn(300)) * time.Minute
			r.eng.At(at, func(time.Time) {
				r.s.Submit(r.spec(id, nodes, runtime))
			})
		}
		r.eng.At(t0.Add(24*time.Hour), func(time.Time) {
			if err := r.s.FailNode(3); err != nil {
				t.Error(err)
			}
		})
		r.eng.At(t0.Add(30*time.Hour), func(time.Time) {
			if err := r.s.RepairNode(3); err != nil {
				t.Error(err)
			}
		})
		r.eng.Run()
		return r.s.Stats(), r.fac.Utilisation()
	}
	plainStats, plainUtil := run(false)
	reuseStats, reuseUtil := run(true)
	if plainStats != reuseStats {
		t.Errorf("stats diverge:\n  plain %+v\n  reuse %+v", plainStats, reuseStats)
	}
	if plainUtil != reuseUtil {
		t.Errorf("utilisation diverges: %v vs %v", plainUtil, reuseUtil)
	}
	if plainStats.Completed == 0 || plainStats.Dropped == 0 {
		t.Fatalf("pattern did not exercise completions and drops: %+v", plainStats)
	}
}

// TestBackfillScanAllocFree pins the backfill hot loop's allocation
// behaviour: per-app runtime predictions are cached once per pass (the
// bfCache hoist) and every scratch structure — victim list, capacity
// profile, shadow merge — is retained across passes, so a steady-state
// scheduling attempt over a saturated cluster with a deep non-fitting
// queue must not allocate at all.
func TestBackfillScanAllocFree(t *testing.T) {
	for _, policy := range []BackfillPolicy{BackfillEASY, BackfillConservative} {
		t.Run(policy.String(), func(t *testing.T) {
			r := newRig(t, 32, Config{BackfillDepth: 16, MaxQueue: 256, Backfill: policy})
			// Saturate every node with long runners, then queue jobs that
			// can neither start nor backfill (no free nodes at all).
			for i := 0; i < 32; i++ {
				r.s.Submit(r.spec(i, 1, 200*time.Hour))
			}
			for i := 32; i < 64; i++ {
				r.s.Submit(r.spec(i, 2, time.Hour))
			}
			if r.s.BusyNodes() != 32 || r.s.QueueDepth() != 32 {
				t.Fatalf("rig not saturated: %d busy, %d queued", r.s.BusyNodes(), r.s.QueueDepth())
			}
			now := r.eng.Now()
			r.s.trySchedule(now) // warm the per-pass caches
			if allocs := testing.AllocsPerRun(200, func() { r.s.trySchedule(now) }); allocs > 0 {
				t.Errorf("steady-state trySchedule allocates %.1f times per pass, want 0", allocs)
			}
		})
	}
}

package sched

import "math/bits"

// nodeSet is an indexed set of free node IDs over a fixed ID range,
// backed by a bitmap. It replaces the sorted []int free list, whose
// every insert and delete was an O(n) memmove (and whose alloc-from-front
// slicing leaked capacity and forced reallocation on every return):
// membership changes are O(1) bit operations, and taking the n lowest
// IDs — the allocation order the old sorted slice gave, preserved so
// placements stay byte-identical — is a word-wise scan from a cached
// low-water mark.
type nodeSet struct {
	bits  []uint64
	count int
	// low is a hint: no word below index low is non-zero.
	low int
}

// newNodeSet returns a set sized for IDs [0, n) containing all of them.
func newNodeSet(n int) *nodeSet {
	s := &nodeSet{bits: make([]uint64, (n+63)/64), count: n}
	for i := 0; i < n; i++ {
		s.bits[i>>6] |= 1 << (i & 63)
	}
	return s
}

// Count returns the number of IDs in the set.
func (s *nodeSet) Count() int { return s.count }

// Contains reports membership.
func (s *nodeSet) Contains(id int) bool {
	return s.bits[id>>6]&(1<<(id&63)) != 0
}

// Add inserts id (no-op if present).
func (s *nodeSet) Add(id int) {
	w := id >> 6
	m := uint64(1) << (id & 63)
	if s.bits[w]&m != 0 {
		return
	}
	s.bits[w] |= m
	s.count++
	if w < s.low {
		s.low = w
	}
}

// Remove deletes id, reporting whether it was present.
func (s *nodeSet) Remove(id int) bool {
	w := id >> 6
	m := uint64(1) << (id & 63)
	if s.bits[w]&m == 0 {
		return false
	}
	s.bits[w] &^= m
	s.count--
	return true
}

// CountRange returns the number of IDs in [lo, hi) — a popcount sweep
// over the bitmap, used for on-demand per-partition free accounting.
// Deriving partition counts from the bitmap (rather than maintaining
// incremental counters at every mutation point) keeps snapshot/restore
// trivially correct: Restore rebuilds the bitmap, and the counts follow.
func (s *nodeSet) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	if wLo == wHi {
		mask := (^uint64(0) << (lo & 63)) & (^uint64(0) >> (63 - (hi-1)&63))
		return bits.OnesCount64(s.bits[wLo] & mask)
	}
	n := bits.OnesCount64(s.bits[wLo] & (^uint64(0) << (lo & 63)))
	for w := wLo + 1; w < wHi; w++ {
		n += bits.OnesCount64(s.bits[w])
	}
	n += bits.OnesCount64(s.bits[wHi] & (^uint64(0) >> (63 - (hi-1)&63)))
	return n
}

// TakeLowestRange removes the n lowest IDs in [lo, hi) and appends them
// to dst in ascending order — TakeLowest restricted to one partition's
// node range. The caller must ensure n <= CountRange(lo, hi).
func (s *nodeSet) TakeLowestRange(n, lo, hi int, dst []int) []int {
	s.count -= n
	for w := lo >> 6; n > 0; w++ {
		word := s.bits[w]
		base := w << 6
		// Mask off bits outside [lo, hi) for the boundary words.
		avail := word
		if base < lo {
			avail &= ^uint64(0) << (lo & 63)
		}
		if base+63 >= hi {
			avail &= ^uint64(0) >> (63 - (hi-1)&63)
		}
		for avail != 0 && n > 0 {
			b := bits.TrailingZeros64(avail)
			dst = append(dst, base+b)
			word &^= 1 << b
			avail &^= 1 << b
			n--
		}
		s.bits[w] = word
	}
	return dst
}

// TakeLowest removes the n lowest IDs from the set and appends them to
// dst in ascending order — exactly the IDs the old sorted free list's
// free[:n] prefix held. The caller must ensure n <= Count().
func (s *nodeSet) TakeLowest(n int, dst []int) []int {
	s.count -= n
	for w := s.low; n > 0; w++ {
		word := s.bits[w]
		if word == 0 {
			if w == s.low {
				s.low = w + 1
			}
			continue
		}
		base := w << 6
		for word != 0 && n > 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, base+b)
			word &^= 1 << b
			n--
		}
		s.bits[w] = word
	}
	return dst
}

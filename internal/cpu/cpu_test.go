package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

func TestSpecBasics(t *testing.T) {
	s := EPYC7742()
	if s.Cores != 64 {
		t.Errorf("cores = %d", s.Cores)
	}
	if got := s.DefaultSetting(); got.Base.Gigahertz() != 2.25 || !got.Boost {
		t.Errorf("default setting = %v", got)
	}
	if got := s.CappedSetting(); got.Base.Gigahertz() != 2.0 || got.Boost {
		t.Errorf("capped setting = %v", got)
	}
}

func TestValidateSetting(t *testing.T) {
	s := EPYC7742()
	valid := []FreqSetting{
		{Base: units.Gigahertz(1.5)},
		{Base: units.Gigahertz(2.0)},
		{Base: units.Gigahertz(2.25)},
		{Base: units.Gigahertz(2.25), Boost: true},
	}
	for _, fs := range valid {
		if err := s.ValidateSetting(fs); err != nil {
			t.Errorf("ValidateSetting(%v) = %v", fs, err)
		}
	}
	invalid := []FreqSetting{
		{Base: units.Gigahertz(3.0)},
		{Base: units.Gigahertz(2.0), Boost: true},
	}
	for _, fs := range invalid {
		if err := s.ValidateSetting(fs); err == nil {
			t.Errorf("ValidateSetting(%v) accepted", fs)
		}
	}
}

func TestEffectiveFrequency(t *testing.T) {
	s := EPYC7742()
	if got := s.EffectiveFrequency(s.DefaultSetting()); got != s.BoostFreq {
		t.Errorf("boost effective = %v", got)
	}
	if got := s.EffectiveFrequency(s.CappedSetting()); got.Gigahertz() != 2.0 {
		t.Errorf("capped effective = %v", got)
	}
}

func TestVoltageCurve(t *testing.T) {
	s := EPYC7742()
	cases := []struct {
		ghz  float64
		want float64
	}{
		{1.5, 0.85}, {2.0, 0.95}, {2.25, 1.00}, {2.8, 1.18},
		{1.0, 0.85}, // clamp below
		{3.2, 1.18}, // clamp above
	}
	for _, c := range cases {
		got := s.VoltageAt(units.Gigahertz(c.ghz))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("V(%v GHz) = %v, want %v", c.ghz, got, c.want)
		}
	}
	// Interpolation between 2.0 and 2.25.
	got := s.VoltageAt(units.Gigahertz(2.125))
	if math.Abs(got-0.975) > 1e-9 {
		t.Errorf("V(2.125) = %v, want 0.975", got)
	}
}

func TestDynFraction(t *testing.T) {
	s := EPYC7742()
	if got := s.DynFraction(s.BoostFreq); math.Abs(got-1) > 1e-9 {
		t.Fatalf("d(boost) = %v, want 1", got)
	}
	d20 := s.DynFraction(units.Gigahertz(2.0))
	want := 2.0 * 0.95 * 0.95 / (2.8 * 1.18 * 1.18)
	if math.Abs(d20-want) > 1e-9 {
		t.Fatalf("d(2.0) = %v, want %v", d20, want)
	}
	// Monotonicity over the curve.
	prev := 0.0
	for _, ghz := range []float64{1.5, 1.8, 2.0, 2.25, 2.5, 2.8} {
		d := s.DynFraction(units.Gigahertz(ghz))
		if d <= prev {
			t.Fatalf("DynFraction not increasing at %v GHz: %v <= %v", ghz, d, prev)
		}
		prev = d
	}
}

func TestPowerComponents(t *testing.T) {
	s := EPYC7742()
	// Idle: zero activity at any setting is just idle power.
	p := s.Power(s.CappedSetting(), Activity{}, 1.0)
	if math.Abs(p.Watts()-85) > 1e-9 {
		t.Fatalf("idle socket power = %v", p)
	}
	// Full activity at boost, dieFactor 1: idle + core + uncore.
	p = s.Power(s.DefaultSetting(), Activity{Core: 1, Uncore: 1}, 1.0)
	if math.Abs(p.Watts()-(85+150+75)) > 1e-9 {
		t.Fatalf("full socket power = %v", p)
	}
	// Uncore power must not change with core frequency.
	pBoost := s.Power(s.DefaultSetting(), Activity{Uncore: 0.8}, 1.0)
	pCap := s.Power(s.CappedSetting(), Activity{Uncore: 0.8}, 1.0)
	if pBoost != pCap {
		t.Fatalf("uncore power varies with frequency: %v vs %v", pBoost, pCap)
	}
	// Core power scales with DynFraction.
	pc := s.Power(s.CappedSetting(), Activity{Core: 1}, 1.0)
	wantCore := 85 + 150*s.DynFraction(units.Gigahertz(2.0))
	if math.Abs(pc.Watts()-wantCore) > 1e-9 {
		t.Fatalf("capped core power = %v, want %v", pc, wantCore)
	}
}

func TestDieFactors(t *testing.T) {
	s := EPYC7742()
	r := rng.New(1)
	if got := s.DrawDieFactor(PowerDeterminism, r); got != 1.0 {
		t.Fatalf("power-det die factor = %v", got)
	}
	if got := s.MeanDieFactor(PowerDeterminism); got != 1.0 {
		t.Fatalf("power-det mean die factor = %v", got)
	}
	if got := s.MeanDieFactor(PerformanceDeterminism); got != s.PerfDetDieFactorMean {
		t.Fatalf("perf-det mean die factor = %v", got)
	}
	// Sampled perf-det factors: bounded, mean near calibrated value.
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		f := s.DrawDieFactor(PerformanceDeterminism, r)
		if f < s.PerfDetDieFactorMean-3*s.PerfDetDieFactorSigma-1e-9 ||
			f > s.PerfDetDieFactorMean+3*s.PerfDetDieFactorSigma+1e-9 {
			t.Fatalf("die factor out of bounds: %v", f)
		}
		sum += f
	}
	if mean := sum / float64(n); math.Abs(mean-s.PerfDetDieFactorMean) > 0.002 {
		t.Fatalf("die factor mean = %v, want %v", mean, s.PerfDetDieFactorMean)
	}
}

func TestPerfFactors(t *testing.T) {
	s := EPYC7742()
	r := rng.New(2)
	if got := s.DrawPerfFactor(PerformanceDeterminism, r); got != s.PerfDetPerfFactor {
		t.Fatalf("perf-det perf factor = %v", got)
	}
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.DrawPerfFactor(PowerDeterminism, r)
	}
	if mean := sum / float64(n); math.Abs(mean-1.0) > 0.002 {
		t.Fatalf("power-det perf factor mean = %v", mean)
	}
	if got := s.MeanPerfFactor(PowerDeterminism); got != 1.0 {
		t.Fatalf("MeanPerfFactor(powerdet) = %v", got)
	}
	if got := s.MeanPerfFactor(PerformanceDeterminism); got != 0.99 {
		t.Fatalf("MeanPerfFactor(perfdet) = %v", got)
	}
}

func TestPerfDetReducesPower(t *testing.T) {
	s := EPYC7742()
	a := Activity{Core: 0.8, Uncore: 0.5}
	pd := s.Power(s.DefaultSetting(), a, s.MeanDieFactor(PowerDeterminism))
	pf := s.Power(s.DefaultSetting(), a, s.MeanDieFactor(PerformanceDeterminism))
	if pf.Watts() >= pd.Watts() {
		t.Fatalf("perf-det power %v not below power-det %v", pf, pd)
	}
	// Reduction applies to core dynamic only: bound by core share.
	reduction := 1 - pf.Watts()/pd.Watts()
	if reduction > 0.18 {
		t.Fatalf("reduction %v implausibly large", reduction)
	}
}

func TestModeString(t *testing.T) {
	if PowerDeterminism.String() == "" || PerformanceDeterminism.String() == "" {
		t.Fatal("empty mode strings")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

// Property: socket power is monotone non-decreasing in frequency, activity
// and die factor.
func TestPropertyPowerMonotone(t *testing.T) {
	s := EPYC7742()
	f := func(core, uncore uint8, cap bool) bool {
		a := Activity{Core: float64(core) / 255, Uncore: float64(uncore) / 255}
		low := s.Power(FreqSetting{Base: units.Gigahertz(1.5)}, a, 1.0)
		mid := s.Power(s.CappedSetting(), a, 1.0)
		high := s.Power(s.DefaultSetting(), a, 1.0)
		if low.Watts() > mid.Watts()+1e-9 || mid.Watts() > high.Watts()+1e-9 {
			return false
		}
		// Die factor monotonicity.
		pLo := s.Power(s.DefaultSetting(), a, 0.8)
		pHi := s.Power(s.DefaultSetting(), a, 1.0)
		return pLo.Watts() <= pHi.Watts()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: power never drops below idle.
func TestPropertyPowerAtLeastIdle(t *testing.T) {
	s := EPYC7742()
	f := func(core, uncore uint8) bool {
		a := Activity{Core: float64(core) / 255, Uncore: float64(uncore) / 255}
		for _, fs := range []FreqSetting{
			{Base: units.Gigahertz(1.5)}, s.CappedSetting(), s.DefaultSetting(),
		} {
			if s.Power(fs, a, 0.7).Watts() < s.IdlePower.Watts()-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

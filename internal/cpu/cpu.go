// Package cpu models an AMD EPYC-class server socket as deployed in the
// ARCHER2 HPE Cray EX system: discrete P-states (1.5 / 2.0 / 2.25 GHz), a
// turbo-boost region (effective ~2.8 GHz under typical HPC load, per the
// paper's §4.2 observation), a voltage-frequency curve, and the
// Power/Performance Determinism BIOS modes.
//
// # Power model
//
// Socket power is decomposed into three components:
//
//	P = P_idle + a_core * D_core * d(f) * dieFactor + a_uncore * D_uncore
//
// where a_core/a_uncore are workload activity factors (package apps), d(f)
// = f*V(f)^2 normalised to the boost point is the classic dynamic-power
// scaling, and D_core/D_uncore are the socket's dynamic power headroom for
// core logic and for the uncore/memory subsystem respectively. Uncore power
// (memory controllers, DRAM, Infinity-fabric) is deliberately independent
// of the core P-state: capping core frequency does not reduce the DRAM
// power of a bandwidth-bound code. This three-component split is what lets
// the model reproduce both the per-application energy ratios (paper Tables
// 3-4) and the fleet-level power steps (Figures 1-3) simultaneously.
//
// # Determinism modes
//
// Following AMD's description: in Power Determinism every part runs up to
// the socket power limit, so power draw is uniform (dieFactor = 1) and
// per-die performance varies slightly. In Performance Determinism the part
// is locked to reference-die behaviour, so performance is uniform (and
// ~1% lower) while power varies below the cap; the fleet-mean dieFactor is
// calibrated (0.82) so that the BIOS change reproduces the paper's ~6.5%
// fleet power reduction.
package cpu

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

// Mode is the BIOS determinism mode.
type Mode int

const (
	// PowerDeterminism: uniform (maximal) power draw, per-die performance
	// varies. ARCHER2's setting until May 2022.
	PowerDeterminism Mode = iota
	// PerformanceDeterminism: uniform reference-die performance, power draw
	// varies below the cap. ARCHER2's setting from May 2022.
	PerformanceDeterminism
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case PowerDeterminism:
		return "power-determinism"
	case PerformanceDeterminism:
		return "performance-determinism"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PState is a frequency/voltage operating point.
type PState struct {
	Freq    units.Frequency
	Voltage float64 // normalised to the 2.25 GHz point
}

// FreqSetting selects an operating point for a socket: a base P-state and
// whether turbo boost above it is permitted. On ARCHER2 boost is only
// available with the 2.25 GHz base setting.
type FreqSetting struct {
	Base  units.Frequency
	Boost bool
}

// String implements fmt.Stringer.
func (s FreqSetting) String() string {
	if s.Boost {
		return fmt.Sprintf("%v+boost", s.Base)
	}
	return s.Base.String()
}

// Spec describes a socket model.
type Spec struct {
	Name  string
	Cores int

	// PStates are the selectable base operating points, ascending by
	// frequency. The highest P-state admits boost.
	PStates []PState
	// BoostFreq is the effective sustained all-core boost frequency under
	// typical HPC load, with BoostVoltage its operating voltage.
	BoostFreq    units.Frequency
	BoostVoltage float64

	// IdlePower is the socket's share of node idle power.
	IdlePower units.Power
	// CoreDynMax is the core-logic dynamic power at the boost point with
	// activity 1.0.
	CoreDynMax units.Power
	// UncoreDynMax is the uncore/memory dynamic power at activity 1.0
	// (frequency-independent).
	UncoreDynMax units.Power

	// PerfDetDieFactorMean/Sigma describe the distribution of per-die power
	// factors in Performance Determinism mode (power varies below cap).
	PerfDetDieFactorMean  float64
	PerfDetDieFactorSigma float64
	// PerfDetPerfFactor is the uniform performance multiplier in
	// Performance Determinism (reference-die lock), ~0.99.
	PerfDetPerfFactor float64
	// PowerDetPerfSigma is the per-die performance spread in Power
	// Determinism mode (mean 1.0).
	PowerDetPerfSigma float64
}

// EPYC7742 returns the socket model for the 64-core 2.25 GHz AMD EPYC
// processors in ARCHER2 compute nodes. (The paper's Table 1 prints the
// model number as "7842"; the deployed part is the EPYC 7742.) Power
// figures are one socket's share of the paper's per-node values: node idle
// 230 W and a loaded envelope consistent with Table 2's 510 W typical
// loaded draw, with headroom above it for power-hungry codes as observed
// in the HPC-JEEP measurements the paper cites.
func EPYC7742() *Spec {
	return &Spec{
		Name:  "AMD EPYC 7742",
		Cores: 64,
		PStates: []PState{
			{Freq: units.Gigahertz(1.5), Voltage: 0.85},
			{Freq: units.Gigahertz(2.0), Voltage: 0.95},
			{Freq: units.Gigahertz(2.25), Voltage: 1.00},
		},
		BoostFreq:    units.Gigahertz(2.8),
		BoostVoltage: 1.18,

		IdlePower:    units.Watts(85),  // 2x85 + 60 W board = 230 W node idle
		CoreDynMax:   units.Watts(150), // 300 W/node core dynamic headroom
		UncoreDynMax: units.Watts(75),  // 150 W/node memory/uncore headroom

		PerfDetDieFactorMean:  0.82,
		PerfDetDieFactorSigma: 0.03,
		PerfDetPerfFactor:     0.99,
		PowerDetPerfSigma:     0.008,
	}
}

// AcceleratorGPU returns the socket model for one GPU module of the
// AI/accelerator partition (an MI250X-class OAM package, following the
// LUMI-G / Frontier sibling deployments of the same HPE Cray EX line).
// The Spec abstraction carries over directly: "cores" are compute units,
// the p-state curve is the GPU clock ladder, and the idle/dynamic power
// decomposition separates compute-die switching power from the
// frequency-independent HBM stack draw — the GPU partition's own power
// decomposition, distinct from the CPU cabinets'. Determinism-mode
// spreads are tighter than the EPYC's (GPU boards bin narrowly).
func AcceleratorGPU() *Spec {
	return &Spec{
		Name:  "AMD MI250X GPU module",
		Cores: 110, // compute units per GCD pair
		PStates: []PState{
			{Freq: units.Gigahertz(0.9), Voltage: 0.80},
			{Freq: units.Gigahertz(1.2), Voltage: 0.90},
			{Freq: units.Gigahertz(1.5), Voltage: 1.00},
		},
		BoostFreq:    units.Gigahertz(1.7),
		BoostVoltage: 1.10,

		IdlePower:    units.Watts(90),  // per-module share of blade idle
		CoreDynMax:   units.Watts(320), // compute-die dynamic headroom
		UncoreDynMax: units.Watts(90),  // HBM + fabric, clock-independent

		PerfDetDieFactorMean:  0.90,
		PerfDetDieFactorSigma: 0.02,
		PerfDetPerfFactor:     0.995,
		PowerDetPerfSigma:     0.005,
	}
}

// DefaultSetting returns the ARCHER2 pre-change default: 2.25 GHz with
// turbo boost enabled.
func (s *Spec) DefaultSetting() FreqSetting {
	return FreqSetting{Base: s.PStates[len(s.PStates)-1].Freq, Boost: true}
}

// CappedSetting returns the post-change default: 2.0 GHz, no boost.
func (s *Spec) CappedSetting() FreqSetting {
	return FreqSetting{Base: units.Gigahertz(2.0), Boost: false}
}

// ValidateSetting reports whether the setting selects a supported P-state
// and, if boost is requested, whether boost is available at that base.
func (s *Spec) ValidateSetting(fs FreqSetting) error {
	top := s.PStates[len(s.PStates)-1].Freq
	found := false
	for _, p := range s.PStates {
		if p.Freq == fs.Base {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("cpu: unsupported base frequency %v", fs.Base)
	}
	if fs.Boost && fs.Base != top {
		return fmt.Errorf("cpu: boost only available at %v base", top)
	}
	return nil
}

// EffectiveFrequency returns the frequency the cores actually sustain under
// load at this setting: the boost frequency when boost is enabled, else the
// base P-state.
func (s *Spec) EffectiveFrequency(fs FreqSetting) units.Frequency {
	if fs.Boost {
		return s.BoostFreq
	}
	return fs.Base
}

// VoltageAt returns the operating voltage at frequency f by piecewise
// linear interpolation over the P-state curve (which must be ascending by
// frequency, as Spec requires) extended to the boost point. Frequencies
// outside the curve are clamped to the endpoints. This is on the node
// power hot path and performs no allocation.
func (s *Spec) VoltageAt(f units.Frequency) float64 {
	pointAt := func(i int) PState {
		if i < len(s.PStates) {
			return s.PStates[i]
		}
		return PState{Freq: s.BoostFreq, Voltage: s.BoostVoltage}
	}
	n := len(s.PStates) + 1
	if f <= pointAt(0).Freq {
		return pointAt(0).Voltage
	}
	if f >= pointAt(n-1).Freq {
		return pointAt(n - 1).Voltage
	}
	for i := 1; i < n; i++ {
		hi := pointAt(i)
		if f <= hi.Freq {
			lo := pointAt(i - 1)
			frac := (f.Hertz() - lo.Freq.Hertz()) / (hi.Freq.Hertz() - lo.Freq.Hertz())
			return lo.Voltage + frac*(hi.Voltage-lo.Voltage)
		}
	}
	return pointAt(n - 1).Voltage
}

// DynFraction returns d(f) = f*V(f)^2 normalised so the boost point is 1.
func (s *Spec) DynFraction(f units.Frequency) float64 {
	vb := s.BoostVoltage
	return (f.Hertz() * s.VoltageAt(f) * s.VoltageAt(f)) /
		(s.BoostFreq.Hertz() * vb * vb)
}

// Activity is a workload's power activity on a socket.
type Activity struct {
	// Core is the core-logic activity factor (0 = idle, 1 = fully exercising
	// the core dynamic power headroom at the current frequency).
	Core float64
	// Uncore is the memory/uncore activity factor.
	Uncore float64
}

// DrawDieFactor samples a per-die power factor for the given mode. In
// Power Determinism all dies draw at the cap (factor 1); in Performance
// Determinism dies draw below the cap with the spec's calibrated mean.
func (s *Spec) DrawDieFactor(m Mode, r *rng.Stream) float64 {
	if m == PowerDeterminism {
		return 1.0
	}
	return r.TruncNormal(
		s.PerfDetDieFactorMean, s.PerfDetDieFactorSigma,
		s.PerfDetDieFactorMean-3*s.PerfDetDieFactorSigma,
		s.PerfDetDieFactorMean+3*s.PerfDetDieFactorSigma)
}

// MeanDieFactor returns the expected die power factor for the mode, used by
// calibration and fleet-expectation calculations.
func (s *Spec) MeanDieFactor(m Mode) float64 {
	if m == PowerDeterminism {
		return 1.0
	}
	return s.PerfDetDieFactorMean
}

// DrawPerfFactor samples a per-die performance factor. Power Determinism
// lets good dies run slightly faster (mean 1.0, small spread); Performance
// Determinism locks all dies to the reference (uniform ~0.99).
func (s *Spec) DrawPerfFactor(m Mode, r *rng.Stream) float64 {
	if m == PowerDeterminism {
		return r.TruncNormal(1.0, s.PowerDetPerfSigma, 1-3*s.PowerDetPerfSigma, 1+3*s.PowerDetPerfSigma)
	}
	return s.PerfDetPerfFactor
}

// MeanPerfFactor returns the expected performance factor for the mode.
func (s *Spec) MeanPerfFactor(m Mode) float64 {
	if m == PowerDeterminism {
		return 1.0
	}
	return s.PerfDetPerfFactor
}

// Power returns the socket power at the given setting, activity, mode and
// die factor (obtain dieFactor from DrawDieFactor or MeanDieFactor).
func (s *Spec) Power(fs FreqSetting, a Activity, dieFactor float64) units.Power {
	f := s.EffectiveFrequency(fs)
	core := a.Core * s.CoreDynMax.Watts() * s.DynFraction(f) * dieFactor
	uncore := a.Uncore * s.UncoreDynMax.Watts()
	return units.Watts(s.IdlePower.Watts() + core + uncore)
}

package journal

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the open/replay path as
// the newest segment of a journal: Open must never panic, and whenever
// it succeeds the log must be fully usable — replayable, appendable and
// reopenable — no matter how mangled the input was. This is the
// corrupt-frame half of the torn-write story: the every-offset
// truncation test covers honest crashes, the fuzzer covers bit rot and
// adversarial garbage in the recovery-eligible tail.
func FuzzJournalReplay(f *testing.F) {
	// Seed with an empty file, a bare magic, a valid segment, and that
	// valid segment with a flipped byte in each region (header, CRC,
	// payload).
	f.Add([]byte{})
	f.Add([]byte(magic))
	dir := f.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Append(testRecords("sweep-1")...); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, off := range []int{2, len(magic) + 1, len(magic) + 5, len(magic) + frameHeader + 3} {
		if off < len(valid) {
			mut := append([]byte{}, valid...)
			mut[off] ^= 0x80
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // rejected loudly is a valid outcome
		}
		n := 0
		if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
			t.Fatalf("Open succeeded but Replay failed: %v", err)
		}
		// The recovered log must accept new records and survive a
		// close/reopen cycle with them intact.
		extra := testRecords("sweep-fuzz")[0]
		if err := l.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Commit(context.Background()); err != nil {
			t.Fatalf("commit after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after recovered append: %v", err)
		}
		defer l2.Close()
		m := 0
		if err := l2.Replay(func(Record) error { m++; return nil }); err != nil {
			t.Fatalf("replay after reopen: %v", err)
		}
		if m != n+1 {
			t.Fatalf("reopen sees %d records, want %d (recovered) + 1 (appended)", m, n)
		}
	})
}

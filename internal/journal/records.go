package journal

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

// The journal's record vocabulary mirrors the service's registry
// transitions — one record kind per durable fact about a sweep. Payloads
// are JSON: the scenario.Result codec is the same one the v1 wire
// contract ships (float64 values survive the round trip exactly, which
// is what makes recovery byte-identical), and the golden test in this
// package pins the frame bytes so the on-disk format cannot drift
// silently.

// recordType is the one-byte frame tag identifying a record's kind.
type recordType byte

const (
	typeSweepSubmitted recordType = 1
	typeScenarioDone   recordType = 2
	typeSweepTerminal  recordType = 3
)

// Record is one journal entry. The three concrete kinds are
// SweepSubmitted, ScenarioDone and SweepTerminal.
type Record interface {
	// SweepID names the sweep this record belongs to — the compaction
	// unit: a sweep's records are dropped all together or not at all.
	SweepID() string

	recordType() recordType
}

// SweepSubmitted records a sweep's registration: written (and committed)
// before the submission is acknowledged, so an acknowledged sweep is
// guaranteed to survive a crash.
type SweepSubmitted struct {
	ID string `json:"id"`
	// Key is the canonical spec key (api.SpecKey) — the dedup identity.
	Key string `json:"key"`
	// Spec is the canonical sweep spec; replay re-expands it, so scenario
	// identity is index-based exactly as in the shard protocol.
	Spec scenario.Spec `json:"spec"`
	// Scenarios is the expanded scenario count at submission, a
	// consistency check against replay-time re-expansion.
	Scenarios int       `json:"scenarios"`
	Submitted time.Time `json:"submitted"`
}

// SweepID implements Record.
func (r *SweepSubmitted) SweepID() string        { return r.ID }
func (r *SweepSubmitted) recordType() recordType { return typeSweepSubmitted }

// ScenarioDone records one expanded scenario's completed result,
// including its simulation digest — the unit of recovered work: a
// replayed ScenarioDone is reused verbatim instead of re-simulated.
type ScenarioDone struct {
	Sweep string `json:"sweep_id"`
	// Index is the scenario's position in the spec's canonical expansion.
	Index  int             `json:"index"`
	Result scenario.Result `json:"result"`
}

// SweepID implements Record.
func (r *ScenarioDone) SweepID() string        { return r.Sweep }
func (r *ScenarioDone) recordType() recordType { return typeScenarioDone }

// Terminal states a SweepTerminal record can carry. Interrupted is the
// one state with no in-memory counterpart: a drain deadline passed (or a
// crash was observed) with the sweep unfinished — recovery resumes it.
const (
	TerminalDone        = "done"
	TerminalFailed      = "failed"
	TerminalCanceled    = "canceled"
	TerminalInterrupted = "interrupted"
)

// SweepTerminal records a sweep reaching a terminal state. A sweep whose
// newest terminal record is TerminalInterrupted (or that has none) is
// resumed by recovery; done/failed/canceled are final.
type SweepTerminal struct {
	Sweep string `json:"sweep_id"`
	State string `json:"state"`
	// Error carries the failure cause for failed/canceled terminals.
	Error string `json:"error,omitempty"`
	// Workers is the worker count the finished sweep reported.
	Workers  int       `json:"workers,omitempty"`
	Finished time.Time `json:"finished"`
}

// SweepID implements Record.
func (r *SweepTerminal) SweepID() string        { return r.Sweep }
func (r *SweepTerminal) recordType() recordType { return typeSweepTerminal }

// encodeRecord renders a record's frame body: the type byte followed by
// the JSON payload.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %T: %w", rec, err)
	}
	body := make([]byte, 1+len(payload))
	body[0] = byte(rec.recordType())
	copy(body[1:], payload)
	return body, nil
}

// decodeRecord parses a frame body back into its typed record.
func decodeRecord(body []byte) (Record, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("journal: empty record body")
	}
	var rec Record
	switch recordType(body[0]) {
	case typeSweepSubmitted:
		rec = &SweepSubmitted{}
	case typeScenarioDone:
		rec = &ScenarioDone{}
	case typeSweepTerminal:
		rec = &SweepTerminal{}
	default:
		return nil, fmt.Errorf("journal: unknown record type %d", body[0])
	}
	if err := json.Unmarshal(body[1:], rec); err != nil {
		return nil, fmt.Errorf("journal: decoding %T: %w", rec, err)
	}
	return rec, nil
}

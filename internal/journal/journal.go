// Package journal is the durability layer under the twinserver service:
// an append-only, CRC-framed record log that survives kill -9 and power
// loss up to its last committed record, so a restarted server can replay
// its sweep registry instead of losing it.
//
// Layout. A journal is a directory of segment files
// (journal-%016d.log), each opening with an 8-byte magic. Records are
// framed as
//
//	uint32 LE  length of body (type byte + JSON payload)
//	uint32 LE  CRC-32C of body
//	body
//
// and appended strictly at the tail of the newest segment; sealed
// segments are immutable. Appends rotate to a fresh segment past
// Options.SegmentBytes, and Compact deletes sealed segments whose every
// record a caller-supplied predicate has declared dead (retention).
//
// Durability contract. Append buffers; Commit makes every record
// appended so far durable (one fsync, shared by every committer that was
// waiting — group commit), and returns ErrStalled rather than blocking
// forever when the disk stops answering. On Open, a torn tail — a final
// record only partially on disk after a crash — is detected by
// length/CRC and truncated away; everything before it is intact. Torn or
// corrupt frames anywhere *except* the final one of the newest segment
// mean real corruption and fail Open loudly.
//
// Fault injection. Options.Crash lets a test poison the log at an exact
// record boundary — before a frame, or mid-frame with a chosen number of
// bytes flushed — simulating a process crash at that instant; every
// operation on a poisoned log returns ErrCrashed. internal/faultinject
// builds deterministic seed-driven crash plans on top of this hook.
package journal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// magic opens every segment file.
	magic = "ATJRNL01"
	// frameHeader is the per-record overhead: length + CRC.
	frameHeader = 8
	// maxBody bounds one record body; a scenario.Result is wire-sized
	// (no embedded timeseries), so anything near this is corruption.
	maxBody = 16 << 20

	defaultSegmentBytes  = 4 << 20
	defaultCommitTimeout = 5 * time.Second
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// every platform the twin targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCrashed is returned by every operation after an injected crash has
// poisoned the log: the simulated process is dead, nothing more reaches
// disk.
var ErrCrashed = errors.New("journal: crashed (fault injection)")

// ErrStalled is returned by Commit (and rotation) when the disk does not
// acknowledge an fsync within Options.CommitTimeout. Callers shed load
// instead of queueing behind a dead disk.
var ErrStalled = errors.New("journal: commit stalled: disk did not acknowledge fsync in time")

// CrashMode says how an injected crash hits an append.
type CrashMode int

const (
	// CrashNone: no fault at this record.
	CrashNone CrashMode = iota
	// CrashBefore: the process dies before any byte of this record is
	// written — the journal ends cleanly at the previous record.
	CrashBefore
	// CrashTorn: the process dies mid-write — TornBytes bytes of this
	// record's frame reach disk, leaving a torn tail for Open to drop.
	CrashTorn
)

// CrashPoint is one injected crash decision.
type CrashPoint struct {
	Mode CrashMode
	// TornBytes is how many bytes of the frame reach disk under
	// CrashTorn (clamped to [0, frameLen-1]).
	TornBytes int
}

// CrashFunc is consulted once per appended record with the record and
// its full frame length; returning a non-CrashNone point kills the log
// at that exact boundary.
type CrashFunc func(rec Record, frameLen int) CrashPoint

// Options parameterise Open.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 4 MiB).
	SegmentBytes int64
	// CommitTimeout bounds how long Commit waits for the disk before
	// returning ErrStalled (default 5s).
	CommitTimeout time.Duration
	// NoSync skips fsync (tests: the OS page cache survives a simulated
	// kill -9, so crash tests stay fast without losing realism).
	NoSync bool
	// Crash, when non-nil, is the fault-injection hook (tests only).
	Crash CrashFunc
}

// Log is an open journal. Safe for concurrent use; create with Open.
type Log struct {
	dir  string
	opts Options

	// syncSlot serialises fsync, rotation, compaction and close: cap 1,
	// held for the full duration of the disk operation so a stalled disk
	// back-pressures later commits into ErrStalled. Lock order is always
	// syncSlot before mu; mu holders never wait on syncSlot.
	syncSlot chan struct{}

	mu       sync.Mutex
	f        *os.File
	buf      []byte // pending bytes not yet written to f
	seq      int64  // active segment sequence number
	size     int64  // active segment size including pending buf
	appended int64  // records accepted by Append
	synced   int64  // records known durable (flushed + fsynced)
	sealed   []sealedSegment
	crashed  error // ErrCrashed once poisoned
	closed   bool
}

type sealedSegment struct {
	seq  int64
	path string
}

// segmentName renders the file name for a sequence number.
func segmentName(seq int64) string { return fmt.Sprintf("journal-%016d.log", seq) }

// Open opens (or creates) the journal in dir, verifying every sealed
// segment strictly and truncating a torn tail off the newest one.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.CommitTimeout <= 0 {
		opts.CommitTimeout = defaultCommitTimeout
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)

	l := &Log{dir: dir, opts: opts, syncSlot: make(chan struct{}, 1)}
	if len(names) == 0 {
		if err := l.newSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	for i, name := range names {
		seq, err := parseSegmentSeq(name)
		if err != nil {
			return nil, err
		}
		last := i == len(names)-1
		valid, _, err := scanSegment(name, !last, nil)
		if err != nil {
			return nil, err
		}
		if !last {
			l.sealed = append(l.sealed, sealedSegment{seq: seq, path: name})
			continue
		}
		// The newest segment may end in a torn record from a crash: keep
		// the valid prefix, drop the tail, and append from there.
		if err := os.Truncate(name, valid); err != nil {
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", name, err)
		}
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f, l.seq, l.size = f, seq, valid
	}
	return l, nil
}

// parseSegmentSeq extracts the sequence number from a segment path.
func parseSegmentSeq(path string) (int64, error) {
	var seq int64
	if _, err := fmt.Sscanf(filepath.Base(path), "journal-%d.log", &seq); err != nil {
		return 0, fmt.Errorf("journal: malformed segment name %s: %w", path, err)
	}
	return seq, nil
}

// newSegment creates and activates segment seq. Caller must hold mu (or
// own the log exclusively, as Open does).
func (l *Log) newSegment(seq int64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing segment magic: %w", err)
	}
	l.f, l.seq, l.size = f, seq, int64(len(magic))
	return nil
}

// scanSegment reads one segment, calling fn (when non-nil) per decoded
// record. It returns the byte offset after the last valid record. In
// strict mode any malformed frame is an error; otherwise scanning stops
// at the first malformed frame (the torn tail) and reports where.
func scanSegment(path string, strict bool, fn func(Record) error) (int64, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		if strict {
			return 0, 0, fmt.Errorf("journal: %s: bad segment magic", path)
		}
		// A crash can tear even the magic of a fresh segment; the valid
		// prefix is empty. Restore the magic so the segment is usable,
		// and report the offset right after it.
		return int64(len(magic)), 0, rewriteMagic(path)
	}
	off := int64(len(magic))
	count := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, count, nil
		}
		bad := func(format string, args ...any) (int64, int, error) {
			if strict {
				return 0, 0, fmt.Errorf("journal: %s at offset %d: %s", path, off, fmt.Sprintf(format, args...))
			}
			return off, count, nil
		}
		if len(rest) < frameHeader {
			return bad("truncated frame header")
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 || n > maxBody {
			return bad("implausible body length %d", n)
		}
		if int64(len(rest)) < frameHeader+int64(n) {
			return bad("truncated body (%d of %d bytes)", len(rest)-frameHeader, n)
		}
		body := rest[frameHeader : frameHeader+int64(n)]
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(rest[4:8]); got != want {
			return bad("CRC mismatch (%08x != %08x)", got, want)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return bad("%v", err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, 0, err
			}
		}
		off += frameHeader + int64(n)
		count++
	}
}

// rewriteMagic restores the magic of a segment whose header itself was
// torn by a crash (the file then holds zero records).
func rewriteMagic(path string) error {
	if err := os.Truncate(path, 0); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte(magic))
	return err
}

// encodeFrame renders a record's full frame.
func encodeFrame(rec Record) ([]byte, error) {
	body, err := encodeRecord(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[frameHeader:], body)
	return frame, nil
}

// Append buffers records onto the log tail. They are not durable — and
// must not be acknowledged to a client — until a Commit returns nil.
func (l *Log) Append(recs ...Record) error {
	l.mu.Lock()
	err := l.appendLocked(recs)
	needRotate := err == nil && l.size >= l.opts.SegmentBytes
	l.mu.Unlock()
	if err != nil || !needRotate {
		return err
	}
	return l.rotate()
}

func (l *Log) appendLocked(recs []Record) error {
	if l.crashed != nil {
		return l.crashed
	}
	if l.closed {
		return errors.New("journal: appending to closed log")
	}
	for _, rec := range recs {
		frame, err := encodeFrame(rec)
		if err != nil {
			return err
		}
		if l.opts.Crash != nil {
			switch pt := l.opts.Crash(rec, len(frame)); pt.Mode {
			case CrashBefore:
				return l.poisonLocked()
			case CrashTorn:
				n := pt.TornBytes
				if n < 0 {
					n = 0
				}
				if n >= len(frame) {
					n = len(frame) - 1
				}
				// The torn prefix reaches the OS (a kill -9 preserves the
				// page cache); everything after it is lost with the
				// process — including any pending buffer.
				l.buf = append(l.buf, frame[:n]...)
				l.flushLocked()
				return l.poisonLocked()
			}
		}
		l.buf = append(l.buf, frame...)
		l.size += int64(len(frame))
		l.appended++
	}
	return nil
}

// poisonLocked marks the log crashed; pending buffered bytes die with
// the simulated process.
func (l *Log) poisonLocked() error {
	l.crashed = ErrCrashed
	l.buf = nil
	return ErrCrashed
}

// flushLocked pushes the pending buffer into the active segment file.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.crashed = fmt.Errorf("journal: write failed: %w", err)
		return l.crashed
	}
	l.buf = l.buf[:0]
	return nil
}

// Commit makes every record appended before the call durable. Multiple
// concurrent committers share one fsync (group commit). When the disk
// does not answer within Options.CommitTimeout the call returns
// ErrStalled — the fsync stays in flight and continues to hold the sync
// slot, so subsequent commits against a stalled disk fail fast.
func (l *Log) Commit(ctx context.Context) error {
	l.mu.Lock()
	if l.crashed != nil {
		err := l.crashed
		l.mu.Unlock()
		return err
	}
	want := l.appended
	if l.synced >= want {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	deadline := time.NewTimer(l.opts.CommitTimeout)
	defer deadline.Stop()
	select {
	case l.syncSlot <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-deadline.C:
		return ErrStalled
	}

	l.mu.Lock()
	if l.crashed != nil {
		err := l.crashed
		l.mu.Unlock()
		<-l.syncSlot
		return err
	}
	if l.synced >= want {
		// A committer that beat us to the slot already covered our
		// records — the free ride that makes group commit amortise.
		l.mu.Unlock()
		<-l.syncSlot
		return nil
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		<-l.syncSlot
		return err
	}
	f, target := l.f, l.appended
	l.mu.Unlock()

	if l.opts.NoSync {
		l.markSynced(target)
		<-l.syncSlot
		return nil
	}
	done := make(chan error, 1)
	go func() {
		err := f.Sync()
		if err == nil {
			l.markSynced(target)
		} else {
			l.mu.Lock()
			l.crashed = fmt.Errorf("journal: fsync failed: %w", err)
			l.mu.Unlock()
		}
		done <- err
		// Release the slot only once the disk actually answered: a
		// stalled fsync must keep back-pressuring later commits.
		<-l.syncSlot
	}()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("journal: fsync failed: %w", err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-deadline.C:
		return ErrStalled
	}
}

func (l *Log) markSynced(target int64) {
	l.mu.Lock()
	if target > l.synced {
		l.synced = target
	}
	l.mu.Unlock()
}

// rotate seals the active segment (flushed and fsynced) and opens a
// fresh one.
func (l *Log) rotate() error {
	deadline := time.NewTimer(l.opts.CommitTimeout)
	defer deadline.Stop()
	select {
	case l.syncSlot <- struct{}{}:
	case <-deadline.C:
		return ErrStalled
	}
	defer func() { <-l.syncSlot }()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashed
	}
	if l.size < l.opts.SegmentBytes {
		return nil // a racing append already rotated
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.crashed = fmt.Errorf("journal: fsync failed: %w", err)
			return l.crashed
		}
	}
	sealedPath := filepath.Join(l.dir, segmentName(l.seq))
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("journal: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, sealedSegment{seq: l.seq, path: sealedPath})
	if err := l.newSegment(l.seq + 1); err != nil {
		l.crashed = err
		return err
	}
	// Everything up to the rotation point is on disk and fsynced.
	l.synced = l.appended
	return nil
}

// Replay calls fn for every record in the log, oldest first, including
// records appended this session (they are flushed first so the walk is
// complete). Replay holds the log locked for its duration; it is meant
// for recovery and compaction decisions, not hot paths.
func (l *Log) Replay(fn func(Record) error) error {
	select {
	case l.syncSlot <- struct{}{}:
	case <-time.After(l.opts.CommitTimeout):
		return ErrStalled
	}
	defer func() { <-l.syncSlot }()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	for _, seg := range l.sealed {
		if _, _, err := scanSegment(seg.path, true, fn); err != nil {
			return err
		}
	}
	_, _, err := scanSegment(filepath.Join(l.dir, segmentName(l.seq)), true, fn)
	return err
}

// Compact deletes sealed segments whose every record keep rejects.
// Compaction is segment-granular — a segment holding even one live
// record survives whole — which keeps it a pure unlink: no rewrite, no
// window where a crash can lose live records. The active segment is
// never compacted. Returns how many segments were removed.
func (l *Log) Compact(keep func(Record) bool) (int, error) {
	select {
	case l.syncSlot <- struct{}{}:
	case <-time.After(l.opts.CommitTimeout):
		return 0, ErrStalled
	}
	defer func() { <-l.syncSlot }()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return 0, l.crashed
	}
	removed := 0
	remaining := l.sealed[:0]
	for _, seg := range l.sealed {
		live := false
		if _, _, err := scanSegment(seg.path, true, func(rec Record) error {
			if keep(rec) {
				live = true
				return errStopScan
			}
			return nil
		}); err != nil && !errors.Is(err, errStopScan) {
			return removed, err
		}
		if live {
			remaining = append(remaining, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, fmt.Errorf("journal: compacting: %w", err)
		}
		removed++
	}
	l.sealed = remaining
	return removed, nil
}

// errStopScan short-circuits a compaction scan once a live record is
// found.
var errStopScan = errors.New("journal: stop scan")

// Size returns the active segment's current size in bytes, pending
// buffer included (observability, tests).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Appended returns how many records Append has accepted this session.
func (l *Log) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs and closes the log. A poisoned (crashed) log
// returns ErrCrashed without touching the file — the simulated process
// is already dead.
func (l *Log) Close() error {
	select {
	case l.syncSlot <- struct{}{}:
	case <-time.After(l.opts.CommitTimeout):
		return ErrStalled
	}
	defer func() { <-l.syncSlot }()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed != nil {
		return l.crashed
	}
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync on close: %w", err)
		}
	}
	return l.f.Close()
}

// Crashed reports whether fault injection has poisoned the log.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return errors.Is(l.crashed, ErrCrashed)
}

package journal

import (
	"context"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

var testTime = time.Date(2026, 8, 1, 12, 30, 0, 0, time.UTC)

// testRecords builds a small representative record sequence for sweep
// id.
func testRecords(id string) []Record {
	spec := scenario.Spec{Name: "j", Nodes: 32, Days: 1, Seed: 7}
	return []Record{
		&SweepSubmitted{ID: id, Key: "0123456789abcdef", Spec: spec, Scenarios: 2, Submitted: testTime},
		&ScenarioDone{Sweep: id, Index: 0, Result: scenario.Result{
			Scenario: scenario.Scenario{Index: 0, Name: "baseline"}, MeanPower: 1500, SimDigest: "d0"}},
		&ScenarioDone{Sweep: id, Index: 1, Result: scenario.Result{
			Scenario: scenario.Scenario{Index: 1, Name: "capped"}, MeanPower: 1400, SimDigest: "d1"}},
		&SweepTerminal{Sweep: id, State: TerminalDone, Workers: 1, Finished: testTime},
	}
}

// replayAll collects every record in the log.
func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords("sweep-1")
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay before close: got %d records, want %d (or contents differ)", len(got), len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened log sees the identical sequence.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay after reopen differs: got %+v", got)
	}
}

// TestFrameCodecStable pins the on-disk frame bytes of a fixed record:
// the journal format is a durability contract — existing journals must
// replay after an upgrade — so any change here is a breaking format
// change needing a new segment magic.
func TestFrameCodecStable(t *testing.T) {
	rec := &SweepTerminal{Sweep: "sweep-1", State: TerminalDone, Workers: 2, Finished: testTime}
	frame, err := encodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := "54000000f00db037" + // length, CRC-32C (little-endian)
		"03" + // type byte: SweepTerminal
		hexJSON
	if got := hex.EncodeToString(frame); got != want {
		t.Errorf("frame bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// hexJSON is the hex of the fixed SweepTerminal JSON payload above.
var hexJSON = hex.EncodeToString([]byte(
	`{"sweep_id":"sweep-1","state":"done","workers":2,"finished":"2026-08-01T12:30:00Z"}`))

// TestTornTailEveryOffset truncates the journal at every byte offset of
// the final record and asserts open-time recovery drops exactly the
// partial record, keeps the prefix, and appends resume cleanly — the
// torn-write satellite of the durability contract.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords("sweep-1")
	prefix, final := recs[:len(recs)-1], recs[len(recs)-1]
	if err := l.Append(prefix...); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	prefixLen := l.Size()
	if err := l.Append(final); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(master, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) <= prefixLen {
		t.Fatalf("final record added no bytes (%d <= %d)", len(data), prefixLen)
	}

	extra := &SweepTerminal{Sweep: "sweep-1", State: TerminalInterrupted, Finished: testTime}
	for cut := prefixLen; cut < int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		got := replayAll(t, l)
		if !reflect.DeepEqual(got, prefix) {
			t.Fatalf("cut=%d: replay kept %d records, want the %d-record prefix", cut, len(got), len(prefix))
		}
		// The next append lands where the torn record was dropped.
		if err := l.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after torn recovery: %v", cut, err)
		}
		if err := l.Commit(context.Background()); err != nil {
			t.Fatalf("cut=%d: commit: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		want := append(append([]Record{}, prefix...), extra)
		if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut=%d: after resumed append got %d records, want %d", cut, len(got), len(want))
		}
		l2.Close()
	}
}

// TestCrashInjection drives the fault hook: CrashBefore loses the whole
// record, CrashTorn leaves a torn tail for Open to drop; a poisoned log
// refuses everything.
func TestCrashInjection(t *testing.T) {
	recs := testRecords("sweep-1")
	for _, tc := range []struct {
		name string
		pt   CrashPoint
	}{
		{"before", CrashPoint{Mode: CrashBefore}},
		{"torn-0", CrashPoint{Mode: CrashTorn, TornBytes: 0}},
		{"torn-5", CrashPoint{Mode: CrashTorn, TornBytes: 5}},
		{"torn-max", CrashPoint{Mode: CrashTorn, TornBytes: 1 << 20}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			n := 0
			crashAt := 3 // third record
			l, err := Open(dir, Options{NoSync: true, Crash: func(Record, int) CrashPoint {
				n++
				if n == crashAt {
					return tc.pt
				}
				return CrashPoint{}
			}})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(recs[0], recs[1]); err != nil {
				t.Fatal(err)
			}
			if err := l.Commit(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(recs[2], recs[3]); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append at crash point: %v, want ErrCrashed", err)
			}
			if !l.Crashed() {
				t.Fatal("log not poisoned after injected crash")
			}
			if err := l.Commit(context.Background()); !errors.Is(err, ErrCrashed) {
				t.Fatalf("commit on crashed log: %v, want ErrCrashed", err)
			}
			if err := l.Close(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("close on crashed log: %v, want ErrCrashed", err)
			}
			// Recovery sees exactly the two committed records.
			l2, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := replayAll(t, l2); !reflect.DeepEqual(got, recs[:2]) {
				t.Fatalf("after crash recovery got %d records, want 2", len(got))
			}
		})
	}
}

// TestRotationAndCompaction drives segment rotation with a tiny segment
// bound, then compacts dead sweeps away segment by segment.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"sweep-1", "sweep-2", "sweep-3", "sweep-4"}
	for _, id := range ids {
		if err := l.Append(testRecords(id)...); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}

	// Drop the two oldest sweeps; only whole-dead sealed segments go.
	dead := map[string]bool{"sweep-1": true, "sweep-2": true}
	removed, err := l.Compact(func(r Record) bool { return !dead[r.SweepID()] })
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed no segments")
	}
	// Live sweeps survive in full; replay still decodes cleanly.
	live := map[string]int{}
	if err := l.Replay(func(r Record) error { live[r.SweepID()]++; return nil }); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"sweep-3", "sweep-4"} {
		if live[id] != len(testRecords(id)) {
			t.Errorf("%s: %d records after compaction, want %d", id, live[id], len(testRecords(id)))
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// And a reopen replays the compacted log without complaint.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	replayAll(t, l2)
}

// TestGroupCommit has many goroutines appending and committing at once;
// every record must be durable and the log consistent afterwards.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := &ScenarioDone{Sweep: "sweep-1", Index: w*per + i,
					Result: scenario.Result{Scenario: scenario.Scenario{Index: w*per + i}, SimDigest: "d"}}
				if err := l.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Commit(context.Background()); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seen := map[int]bool{}
	if err := l2.Replay(func(r Record) error {
		seen[r.(*ScenarioDone).Index] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != writers*per {
		t.Fatalf("%d distinct records after concurrent commits, want %d", len(seen), writers*per)
	}
}

// TestCommitStalled occupies the sync slot (a stand-in for a disk that
// stopped answering fsync) and asserts Commit fails fast with
// ErrStalled instead of queueing behind it.
func TestCommitStalled(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, CommitTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecords("sweep-1")[0]); err != nil {
		t.Fatal(err)
	}
	l.syncSlot <- struct{}{} // the stalled in-flight fsync
	start := time.Now()
	if err := l.Commit(context.Background()); !errors.Is(err, ErrStalled) {
		t.Fatalf("commit against stalled slot: %v, want ErrStalled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stalled commit took %v, want ~CommitTimeout", elapsed)
	}
	// A cancelled context wins over the stall deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Commit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("commit with cancelled ctx: %v, want context.Canceled", err)
	}
	<-l.syncSlot
	if err := l.Commit(context.Background()); err != nil {
		t.Fatalf("commit after stall cleared: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsCorruptSealedSegment: corruption anywhere but the
// newest segment's tail is not a torn write — it must fail Open loudly
// rather than silently dropping records.
func TestOpenRejectsCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"sweep-1", "sweep-2", "sweep-3"} {
		if err := l.Append(testRecords(id)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

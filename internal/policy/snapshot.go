package policy

import (
	"github.com/greenhpc/archertwin/internal/cpu"
)

// Snapshot is a provider's mutable state at a checkpoint: the defaults in
// force (after any applied timeline changes), the override/revert
// counters, and the user-revert RNG stream position.
type Snapshot struct {
	DefaultSetting cpu.FreqSetting
	DefaultMode    cpu.Mode
	Overrides      int
	Reverts        int
	HasRng         bool
	Rng            [4]uint64
}

// Snapshot captures the provider's mutable state.
func (p *Provider) Snapshot() Snapshot {
	s := Snapshot{
		DefaultSetting: p.defaultSetting,
		DefaultMode:    p.defaultMode,
		Overrides:      p.overrides,
		Reverts:        p.reverts,
	}
	if p.r != nil {
		s.HasRng = true
		s.Rng = p.r.State()
	}
	return s
}

// Restore overwrites the provider's mutable state from a snapshot. The
// setting is restored without revalidation: it was validated when the
// parent applied it.
func (p *Provider) Restore(s Snapshot) {
	p.defaultSetting = s.DefaultSetting
	p.defaultMode = s.DefaultMode
	p.overrides = s.Overrides
	p.reverts = s.Reverts
	if s.HasRng && p.r != nil {
		p.r.SetState(s.Rng)
	}
}

// Package policy implements the operational levers the paper evaluates:
// the system-wide BIOS determinism mode, the default CPU frequency
// setting, the per-application module overrides (applications expected to
// lose more than 10% performance at the capped frequency are reset to the
// stock setting automatically), and per-job user reverts.
//
// The Provider implements sched.SettingsProvider; a Timeline injects the
// paper's operational history (May 2022: Power -> Performance Determinism;
// Nov/Dec 2022: default frequency 2.25 GHz + boost -> 2.0 GHz) into the
// simulation as dated events.
package policy

import (
	"fmt"
	"sort"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/rng"
)

// Config parameterises the provider.
type Config struct {
	// OverrideThreshold is the fractional performance loss above which an
	// application's module setup resets the stock frequency (paper: 10%).
	OverrideThreshold float64
	// OverridesEnabled turns the per-application module overrides on.
	OverridesEnabled bool
	// UserRevertProb is the probability that a job's user explicitly
	// requests the stock frequency regardless of the default.
	UserRevertProb float64
}

// DefaultConfig returns the paper's override policy (enabled, 10%).
func DefaultConfig() Config {
	return Config{OverrideThreshold: 0.10, OverridesEnabled: true}
}

// Provider selects per-job operating points from the current system
// defaults plus the override rules.
type Provider struct {
	spec *cpu.Spec
	cfg  Config

	defaultSetting cpu.FreqSetting
	defaultMode    cpu.Mode
	r              *rng.Stream

	overrides int
	reverts   int
}

// NewProvider creates a provider at the pre-change defaults (stock
// frequency, Power Determinism). Stream r drives user reverts; it may be
// nil when UserRevertProb is 0.
func NewProvider(spec *cpu.Spec, cfg Config, r *rng.Stream) (*Provider, error) {
	if cfg.OverrideThreshold < 0 || cfg.OverrideThreshold > 1 {
		return nil, fmt.Errorf("policy: override threshold %v outside [0,1]", cfg.OverrideThreshold)
	}
	if cfg.UserRevertProb < 0 || cfg.UserRevertProb > 1 {
		return nil, fmt.Errorf("policy: revert probability %v outside [0,1]", cfg.UserRevertProb)
	}
	if cfg.UserRevertProb > 0 && r == nil {
		return nil, fmt.Errorf("policy: UserRevertProb set but no random stream")
	}
	return &Provider{
		spec:           spec,
		cfg:            cfg,
		defaultSetting: spec.DefaultSetting(),
		defaultMode:    cpu.PowerDeterminism,
		r:              r,
	}, nil
}

// DefaultSetting returns the current system default frequency setting.
func (p *Provider) DefaultSetting() cpu.FreqSetting { return p.defaultSetting }

// DefaultMode returns the current system BIOS mode.
func (p *Provider) DefaultMode() cpu.Mode { return p.defaultMode }

// Overrides returns how many jobs received a module override.
func (p *Provider) Overrides() int { return p.overrides }

// Reverts returns how many jobs were reverted by their users.
func (p *Provider) Reverts() int { return p.reverts }

// SetDefaultSetting changes the system default frequency (new jobs only).
func (p *Provider) SetDefaultSetting(fs cpu.FreqSetting) error {
	if err := p.spec.ValidateSetting(fs); err != nil {
		return err
	}
	p.defaultSetting = fs
	return nil
}

// SetDefaultMode changes the system BIOS mode (new jobs only, matching the
// rolling reboots of the real change).
func (p *Provider) SetDefaultMode(m cpu.Mode) { p.defaultMode = m }

// PredictedLoss returns the fractional performance loss of app at the
// current default setting versus the stock setting (0 when the default is
// the stock setting).
func (p *Provider) PredictedLoss(app *apps.App) float64 {
	stock := p.spec.DefaultSetting()
	if p.defaultSetting == stock {
		return 0
	}
	r := app.PerfRatio(p.spec, stock, p.defaultMode, p.defaultSetting, p.defaultMode)
	return 1 - r
}

// PeekSettings returns the operating point JobSettings would choose for
// app, without counters or revert randomness (user reverts are treated as
// not occurring). It implements sched.PowerEstimator for power-cap
// admission control.
func (p *Provider) PeekSettings(app *apps.App) (cpu.FreqSetting, cpu.Mode) {
	fs := p.defaultSetting
	stock := p.spec.DefaultSetting()
	if fs != stock && p.cfg.OverridesEnabled && p.PredictedLoss(app) > p.cfg.OverrideThreshold {
		fs = stock
	}
	return fs, p.defaultMode
}

// JobSettings implements sched.SettingsProvider.
func (p *Provider) JobSettings(app *apps.App) (cpu.FreqSetting, cpu.Mode, bool) {
	fs := p.defaultSetting
	override := false
	stock := p.spec.DefaultSetting()
	if fs != stock {
		if p.cfg.OverridesEnabled && p.PredictedLoss(app) > p.cfg.OverrideThreshold {
			fs = stock
			override = true
			p.overrides++
		} else if p.cfg.UserRevertProb > 0 && p.r.Float64() < p.cfg.UserRevertProb {
			fs = stock
			override = true
			p.reverts++
		}
	}
	return fs, p.defaultMode, override
}

// Change is one dated operational change.
type Change struct {
	At time.Time
	// Mode, if non-nil, switches the BIOS determinism mode.
	Mode *cpu.Mode
	// Setting, if non-nil, changes the default frequency setting.
	Setting *cpu.FreqSetting
	// Note describes the change for reports.
	Note string
}

// Timeline is a dated sequence of operational changes.
type Timeline struct {
	Changes []Change
}

// ARCHER2Timeline returns the paper's operational history. Dates are the
// midpoints of the paper's stated change windows.
func ARCHER2Timeline(spec *cpu.Spec) Timeline {
	perfDet := cpu.PerformanceDeterminism
	capped := spec.CappedSetting()
	return Timeline{Changes: []Change{
		{
			At:   time.Date(2022, 5, 10, 9, 0, 0, 0, time.UTC),
			Mode: &perfDet,
			Note: "BIOS: Power Determinism -> Performance Determinism (paper SS4.1)",
		},
		{
			At:      time.Date(2022, 11, 25, 9, 0, 0, 0, time.UTC),
			Setting: &capped,
			Note:    "Default CPU frequency 2.25 GHz+boost -> 2.0 GHz (paper SS4.2)",
		},
	}}
}

// Validate checks that the timeline is ordered and the changes are valid
// for spec.
func (tl Timeline) Validate(spec *cpu.Spec) error {
	if !sort.SliceIsSorted(tl.Changes, func(i, j int) bool {
		return tl.Changes[i].At.Before(tl.Changes[j].At)
	}) {
		return fmt.Errorf("policy: timeline not in date order")
	}
	for _, c := range tl.Changes {
		if c.Mode == nil && c.Setting == nil {
			return fmt.Errorf("policy: empty change at %v", c.At)
		}
		if c.Setting != nil {
			if err := spec.ValidateSetting(*c.Setting); err != nil {
				return err
			}
		}
	}
	return nil
}

// Schedule installs the timeline's changes on the engine, applying them to
// the provider at their dates. Changes dated before the engine's current
// time are applied immediately.
func (tl Timeline) Schedule(eng *des.Engine, p *Provider) error {
	if err := tl.Validate(p.spec); err != nil {
		return err
	}
	apply := func(c Change) {
		if c.Mode != nil {
			p.SetDefaultMode(*c.Mode)
		}
		if c.Setting != nil {
			// Validated above.
			_ = p.SetDefaultSetting(*c.Setting)
		}
	}
	for _, c := range tl.Changes {
		c := c
		if !c.At.After(eng.Now()) {
			apply(c)
			continue
		}
		eng.At(c.At, func(time.Time) { apply(c) })
	}
	return nil
}

package policy

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func mkApp(c float64) *apps.App {
	return &apps.App{Name: "x", Kernel: roofline.Kernel{ComputeFraction: c},
		ActCore: 0.5, ActUncore: 0.5}
}

func newProvider(t *testing.T, cfg Config) *Provider {
	t.Helper()
	p, err := NewProvider(cpu.EPYC7742(), cfg, rng.New(1).Split("policy"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProviderDefaults(t *testing.T) {
	p := newProvider(t, DefaultConfig())
	spec := cpu.EPYC7742()
	if p.DefaultSetting() != spec.DefaultSetting() {
		t.Fatalf("default setting = %v", p.DefaultSetting())
	}
	if p.DefaultMode() != cpu.PowerDeterminism {
		t.Fatalf("default mode = %v", p.DefaultMode())
	}
	fs, m, ov := p.JobSettings(mkApp(0.9))
	if fs != spec.DefaultSetting() || m != cpu.PowerDeterminism || ov {
		t.Fatalf("stock settings = %v %v %v", fs, m, ov)
	}
}

func TestValidation(t *testing.T) {
	spec := cpu.EPYC7742()
	if _, err := NewProvider(spec, Config{OverrideThreshold: -0.1}, nil); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewProvider(spec, Config{UserRevertProb: 1.5}, nil); err == nil {
		t.Error("bad revert prob accepted")
	}
	if _, err := NewProvider(spec, Config{UserRevertProb: 0.1}, nil); err == nil {
		t.Error("revert prob without stream accepted")
	}
}

func TestOverrideRule(t *testing.T) {
	// Paper: >10% predicted loss resets the stock frequency.
	p := newProvider(t, DefaultConfig())
	spec := cpu.EPYC7742()
	if err := p.SetDefaultSetting(spec.CappedSetting()); err != nil {
		t.Fatal(err)
	}

	// Memory-bound app (c=0.1): loss ~3.9% -> stays capped.
	fs, _, ov := p.JobSettings(mkApp(0.1))
	if ov || fs != spec.CappedSetting() {
		t.Fatalf("memory-bound app overridden: %v %v", fs, ov)
	}
	// Compute-bound app (c=0.9): loss ~26% -> override to stock.
	fs, _, ov = p.JobSettings(mkApp(0.9))
	if !ov || fs != spec.DefaultSetting() {
		t.Fatalf("compute-bound app not overridden: %v %v", fs, ov)
	}
	if p.Overrides() != 1 {
		t.Fatalf("override count = %d", p.Overrides())
	}
}

func TestPredictedLoss(t *testing.T) {
	p := newProvider(t, DefaultConfig())
	spec := cpu.EPYC7742()
	if got := p.PredictedLoss(mkApp(0.9)); got != 0 {
		t.Fatalf("loss at stock default = %v", got)
	}
	if err := p.SetDefaultSetting(spec.CappedSetting()); err != nil {
		t.Fatal(err)
	}
	// LAMMPS-like c=0.878 -> perf ratio ~0.74 -> loss ~26%.
	got := p.PredictedLoss(mkApp(0.878))
	if math.Abs(got-0.26) > 0.01 {
		t.Fatalf("predicted loss = %v, want ~0.26", got)
	}
}

func TestUserReverts(t *testing.T) {
	cfg := Config{OverridesEnabled: false, UserRevertProb: 0.3}
	p := newProvider(t, cfg)
	spec := cpu.EPYC7742()
	if err := p.SetDefaultSetting(spec.CappedSetting()); err != nil {
		t.Fatal(err)
	}
	n := 10000
	reverted := 0
	for i := 0; i < n; i++ {
		_, _, ov := p.JobSettings(mkApp(0.5))
		if ov {
			reverted++
		}
	}
	frac := float64(reverted) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("revert fraction = %v, want ~0.3", frac)
	}
	if p.Reverts() != reverted {
		t.Fatalf("revert counter = %d, want %d", p.Reverts(), reverted)
	}
}

func TestNoRevertsAtStockDefault(t *testing.T) {
	cfg := Config{OverridesEnabled: true, OverrideThreshold: 0.1, UserRevertProb: 1.0}
	p := newProvider(t, cfg)
	for i := 0; i < 100; i++ {
		_, _, ov := p.JobSettings(mkApp(0.9))
		if ov {
			t.Fatal("override/revert at stock default")
		}
	}
}

func TestSetDefaultSettingValidates(t *testing.T) {
	p := newProvider(t, DefaultConfig())
	bad := cpu.FreqSetting{Base: cpu.EPYC7742().PStates[0].Freq, Boost: true}
	if err := p.SetDefaultSetting(bad); err == nil {
		t.Fatal("invalid setting accepted")
	}
}

func TestARCHER2Timeline(t *testing.T) {
	spec := cpu.EPYC7742()
	tl := ARCHER2Timeline(spec)
	if err := tl.Validate(spec); err != nil {
		t.Fatal(err)
	}
	if len(tl.Changes) != 2 {
		t.Fatalf("changes = %d", len(tl.Changes))
	}
	// First change is the May 2022 BIOS switch, second the Nov 2022 cap.
	if tl.Changes[0].Mode == nil || *tl.Changes[0].Mode != cpu.PerformanceDeterminism {
		t.Fatal("first change is not the BIOS switch")
	}
	if tl.Changes[1].Setting == nil || tl.Changes[1].Setting.Boost {
		t.Fatal("second change is not the frequency cap")
	}
	if !tl.Changes[0].At.Before(tl.Changes[1].At) {
		t.Fatal("timeline out of order")
	}
}

func TestTimelineSchedule(t *testing.T) {
	spec := cpu.EPYC7742()
	p := newProvider(t, DefaultConfig())
	eng := des.NewEngine(t0)
	tl := ARCHER2Timeline(spec)
	if err := tl.Schedule(eng, p); err != nil {
		t.Fatal(err)
	}
	// Before the first change.
	eng.RunUntil(time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC))
	if p.DefaultMode() != cpu.PowerDeterminism {
		t.Fatal("mode changed early")
	}
	// After the BIOS change, before the cap.
	eng.RunUntil(time.Date(2022, 8, 1, 0, 0, 0, 0, time.UTC))
	if p.DefaultMode() != cpu.PerformanceDeterminism {
		t.Fatal("BIOS change not applied")
	}
	if p.DefaultSetting() != spec.DefaultSetting() {
		t.Fatal("frequency changed early")
	}
	// After the cap.
	eng.RunUntil(time.Date(2022, 12, 15, 0, 0, 0, 0, time.UTC))
	if p.DefaultSetting() != spec.CappedSetting() {
		t.Fatal("frequency cap not applied")
	}
}

func TestTimelinePastChangesApplyImmediately(t *testing.T) {
	spec := cpu.EPYC7742()
	p := newProvider(t, DefaultConfig())
	// Engine starts after both change dates.
	eng := des.NewEngine(time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC))
	if err := ARCHER2Timeline(spec).Schedule(eng, p); err != nil {
		t.Fatal(err)
	}
	if p.DefaultMode() != cpu.PerformanceDeterminism || p.DefaultSetting() != spec.CappedSetting() {
		t.Fatal("past changes not applied immediately")
	}
}

func TestTimelineValidateErrors(t *testing.T) {
	spec := cpu.EPYC7742()
	m := cpu.PerformanceDeterminism
	outOfOrder := Timeline{Changes: []Change{
		{At: t0.AddDate(1, 0, 0), Mode: &m},
		{At: t0, Mode: &m},
	}}
	if err := outOfOrder.Validate(spec); err == nil {
		t.Error("out-of-order timeline accepted")
	}
	empty := Timeline{Changes: []Change{{At: t0}}}
	if err := empty.Validate(spec); err == nil {
		t.Error("empty change accepted")
	}
	bad := cpu.FreqSetting{Base: spec.PStates[0].Freq, Boost: true}
	invalid := Timeline{Changes: []Change{{At: t0, Setting: &bad}}}
	if err := invalid.Validate(spec); err == nil {
		t.Error("invalid setting accepted")
	}
	eng := des.NewEngine(t0)
	p := newProvider(t, DefaultConfig())
	if err := invalid.Schedule(eng, p); err == nil {
		t.Error("Schedule accepted invalid timeline")
	}
}

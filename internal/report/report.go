// Package report renders the twin's outputs as aligned ASCII tables and
// chart blocks — the terminal equivalents of the paper's tables and
// figures — including side-by-side paper-vs-simulated comparisons.
package report

import (
	"fmt"
	"strings"

	"github.com/greenhpc/archertwin/internal/timeseries"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, each rendered with %v.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprint(c)
	}
	t.AddRow(out...)
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage, e.g. -0.065 -> "-6.5%".
func Pct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

// KW formats a power in kW with thousands precision matching the paper.
func KW(kw float64) string {
	return fmt.Sprintf("%.0f kW", kw)
}

// Ratio formats a perf/energy ratio in the paper's two-decimal style.
func Ratio(r float64) string { return fmt.Sprintf("%.2f", r) }

// Comparison builds a paper-vs-simulated table.
type Comparison struct {
	t *Table
}

// NewComparison creates a comparison table.
func NewComparison(title string) *Comparison {
	return &Comparison{t: NewTable(title, "metric", "paper", "simulated", "deviation")}
}

// Add records one metric. Deviation is (sim-paper)/paper when paper != 0.
func (c *Comparison) Add(metric string, paper, sim float64, format func(float64) string) {
	dev := "n/a"
	if paper != 0 {
		dev = Pct((sim - paper) / paper)
	}
	c.t.AddRow(metric, format(paper), format(sim), dev)
}

// String renders the comparison.
func (c *Comparison) String() string { return c.t.String() }

// RowCount returns the number of comparison rows.
func (c *Comparison) RowCount() int { return c.t.RowCount() }

// Figure renders a time series as the paper renders its power figures: an
// ASCII chart plus window-mean annotations.
type Figure struct {
	Title  string
	Series *timeseries.Series
	Notes  []string
}

// AddNote appends an annotation line (e.g. a window mean).
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if f.Series != nil {
		b.WriteString(f.Series.RenderASCII(12, 72))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

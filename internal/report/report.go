// Package report renders the twin's outputs as aligned ASCII tables and
// chart blocks — the terminal equivalents of the paper's Tables 1-4 and
// Figures 1-3 (Jackson, Simpson & Turner, SC-W 2023) — including
// side-by-side paper-vs-simulated comparisons (Comparison) and
// baseline-relative sweep tables (DeltaTable).
//
// Determinism contract: rendering is a pure function of the added rows —
// no maps are iterated, no timestamps or environment read — so a table
// built from deterministic results is byte-identical run to run and at
// any sweep worker count. The scenario engine's determinism tests assert
// equality on rendered tables, which relies on this property.
package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/greenhpc/archertwin/internal/timeseries"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, each rendered with %v.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprint(c)
	}
	t.AddRow(out...)
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// tableJSON is the structured wire form shared by every table type: the
// title, the column headers and the fully rendered cell rows, exactly as
// String lays them out (deltas and units included), so JSON consumers see
// the same deterministic content as the terminal.
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {title, headers, rows}. Like String,
// it is a pure function of the added rows, so encoding is byte-identical
// run to run.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Headers: t.headers, Rows: rows})
}

// Pct formats a fraction as a signed percentage, e.g. -0.065 -> "-6.5%".
func Pct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

// KW formats a power in kW with thousands precision matching the paper.
func KW(kw float64) string {
	return fmt.Sprintf("%.0f kW", kw)
}

// Ratio formats a perf/energy ratio in the paper's two-decimal style.
func Ratio(r float64) string { return fmt.Sprintf("%.2f", r) }

// Comparison builds a paper-vs-simulated table.
type Comparison struct {
	t *Table
}

// NewComparison creates a comparison table.
func NewComparison(title string) *Comparison {
	return &Comparison{t: NewTable(title, "metric", "paper", "simulated", "deviation")}
}

// Add records one metric. Deviation is (sim-paper)/paper when paper != 0.
func (c *Comparison) Add(metric string, paper, sim float64, format func(float64) string) {
	dev := "n/a"
	if paper != 0 {
		dev = Pct((sim - paper) / paper)
	}
	c.t.AddRow(metric, format(paper), format(sim), dev)
}

// String renders the comparison.
func (c *Comparison) String() string { return c.t.String() }

// MarshalJSON encodes the comparison as its underlying table.
func (c *Comparison) MarshalJSON() ([]byte, error) { return c.t.MarshalJSON() }

// RowCount returns the number of comparison rows.
func (c *Comparison) RowCount() int { return c.t.RowCount() }

// DeltaColumn describes one metric column of a DeltaTable.
type DeltaColumn struct {
	// Header is the column title.
	Header string
	// Format renders the metric value (e.g. KW); nil falls back to %g.
	Format func(float64) string
}

// DeltaTable is a baseline-relative comparison table: one designated
// baseline row, then one row per scenario where every metric is rendered
// as "value (+x.x%)" against the baseline. It is the cross-scenario
// counterpart of Comparison (which compares simulated against paper).
type DeltaTable struct {
	t    *Table
	cols []DeltaColumn
	base []float64
	set  bool
}

// NewDeltaTable creates a delta table keyed by keyHeader with the given
// metric columns.
func NewDeltaTable(title, keyHeader string, cols ...DeltaColumn) *DeltaTable {
	headers := make([]string, 0, len(cols)+1)
	headers = append(headers, keyHeader)
	for _, c := range cols {
		headers = append(headers, c.Header)
	}
	return &DeltaTable{t: NewTable(title, headers...), cols: cols}
}

func (d *DeltaTable) format(i int, v float64) string {
	if f := d.cols[i].Format; f != nil {
		return f(v)
	}
	return fmt.Sprintf("%g", v)
}

// SetBaseline records the baseline row; values must match the metric
// columns. It may be called once, before any Add.
func (d *DeltaTable) SetBaseline(name string, values ...float64) {
	cells := make([]string, 0, len(d.cols)+1)
	cells = append(cells, name+" (baseline)")
	for i := range d.cols {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		cells = append(cells, d.format(i, v))
	}
	d.base = append([]float64(nil), values...)
	d.set = true
	d.t.AddRow(cells...)
}

// Add appends a scenario row, rendering each metric with its signed
// percentage delta against the baseline (or plainly if no baseline set).
func (d *DeltaTable) Add(name string, values ...float64) {
	cells := make([]string, 0, len(d.cols)+1)
	cells = append(cells, name)
	for i := range d.cols {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		cell := d.format(i, v)
		if d.set && i < len(d.base) && d.base[i] != 0 {
			cell += fmt.Sprintf(" (%s)", Pct((v-d.base[i])/d.base[i]))
		}
		cells = append(cells, cell)
	}
	d.t.AddRow(cells...)
}

// RowCount returns the number of rows added (baseline included).
func (d *DeltaTable) RowCount() int { return d.t.RowCount() }

// String renders the table.
func (d *DeltaTable) String() string { return d.t.String() }

// MarshalJSON encodes the delta table as its underlying table — rendered
// cells, baseline deltas included — plus the raw baseline metric values
// so consumers can recompute deltas without parsing cells.
func (d *DeltaTable) MarshalJSON() ([]byte, error) {
	base := d.base
	if base == nil {
		base = []float64{}
	}
	rows := d.t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		tableJSON
		Baseline []float64 `json:"baseline"`
	}{
		tableJSON{Title: d.t.Title, Headers: d.t.headers, Rows: rows},
		base,
	})
}

// Figure renders a time series as the paper renders its power figures: an
// ASCII chart plus window-mean annotations.
type Figure struct {
	Title  string
	Series timeseries.View
	Notes  []string
}

// AddNote appends an annotation line (e.g. a window mean).
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if f.Series != nil {
		b.WriteString(f.Series.RenderASCII(12, 72))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/timeseries"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "component", "idle", "loaded")
	tb.AddRow("Compute nodes", "1350", "3000")
	tb.AddRow("Interconnect", "150", "200")
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "component") || !strings.Contains(out, "Compute nodes") {
		t.Error("missing content")
	}
	// Columns aligned: every data line starts at the same offset for col 2.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.RowCount() != 2 {
		t.Fatalf("rows = %d", tb.RowCount())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z", "overflow")
	out := tb.String()
	if strings.Contains(out, "overflow") {
		t.Error("overflow cell not truncated")
	}
	if tb.RowCount() != 2 {
		t.Fatal("rows lost")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "n", "v")
	tb.AddRowf(42, 3.14)
	if !strings.Contains(tb.String(), "42") || !strings.Contains(tb.String(), "3.14") {
		t.Error("formatted cells missing")
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(-0.065); got != "-6.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.214); got != "+21.4%" {
		t.Errorf("Pct = %q", got)
	}
	if got := KW(3220.4); got != "3220 kW" {
		t.Errorf("KW = %q", got)
	}
	if got := Ratio(0.9); got != "0.90" {
		t.Errorf("Ratio = %q", got)
	}
}

func TestComparison(t *testing.T) {
	c := NewComparison("Figure 1")
	c.Add("baseline mean", 3220, 3217, KW)
	c.Add("zero paper", 0, 5, KW)
	out := c.String()
	if !strings.Contains(out, "3220 kW") || !strings.Contains(out, "3217 kW") {
		t.Error("values missing")
	}
	if !strings.Contains(out, "-0.1%") {
		t.Errorf("deviation missing:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Error("zero-paper deviation not n/a")
	}
	if c.RowCount() != 2 {
		t.Fatalf("rows = %d", c.RowCount())
	}
}

func TestFigure(t *testing.T) {
	s := timeseries.New("power", "kW")
	t0 := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		v := 3220.0
		if i > 50 {
			v = 3010
		}
		s.MustAppend(t0.Add(time.Duration(i)*time.Hour), v)
	}
	f := Figure{Title: "Figure 2: cabinet power", Series: s}
	f.AddNote("before mean %s", KW(3220))
	f.AddNote("after mean %s", KW(3010))
	out := f.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "before mean 3220 kW") {
		t.Errorf("figure missing content:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no chart body")
	}
	// Nil series renders notes only.
	empty := Figure{Title: "t"}
	empty.AddNote("n")
	if !strings.Contains(empty.String(), "n") {
		t.Error("nil-series figure broken")
	}
}

func TestDeltaTable(t *testing.T) {
	d := NewDeltaTable("sweep", "scenario",
		DeltaColumn{Header: "power", Format: KW},
		DeltaColumn{Header: "ratio"}) // nil format falls back to %g
	d.SetBaseline("base", 1000, 1.0)
	d.Add("capped", 840, 0.9)
	if d.RowCount() != 2 {
		t.Fatalf("RowCount = %d, want 2", d.RowCount())
	}
	s := d.String()
	for _, want := range []string{
		"base (baseline)", "1000 kW", "capped", "840 kW (-16.0%)", "0.9 (-10.0%)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("delta table missing %q:\n%s", want, s)
		}
	}
}

func TestDeltaTableWithoutBaseline(t *testing.T) {
	d := NewDeltaTable("t", "k", DeltaColumn{Header: "v", Format: KW})
	d.Add("only", 500)
	if s := d.String(); !strings.Contains(s, "500 kW") || strings.Contains(s, "%") {
		t.Errorf("baseline-less row rendered wrongly:\n%s", s)
	}
}

func TestDeltaTableZeroBaseline(t *testing.T) {
	// A zero baseline value must not divide by zero; the delta is omitted.
	d := NewDeltaTable("t", "k", DeltaColumn{Header: "v", Format: KW})
	d.SetBaseline("base", 0)
	d.Add("x", 100)
	if s := d.String(); strings.Contains(s, "%") {
		t.Errorf("delta printed against zero baseline:\n%s", s)
	}
}

// The JSON forms serve the twinserver API: structured {title, headers,
// rows} whose cells match the rendered table exactly, deterministic and
// round-trippable.
func TestTableMarshalJSON(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x", "1")
	tb.AddRow("y", "2")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "T" || len(got.Headers) != 2 || len(got.Rows) != 2 || got.Rows[1][1] != "2" {
		t.Errorf("table JSON = %s", data)
	}
	again, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("table JSON encoding is not deterministic")
	}

	// An empty table must encode empty arrays, not null.
	empty, err := json.Marshal(NewTable("E", "h"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "null") {
		t.Errorf("empty table encodes null: %s", empty)
	}
}

func TestDeltaTableMarshalJSON(t *testing.T) {
	d := NewDeltaTable("D", "scenario", DeltaColumn{Header: "kw", Format: KW})
	d.SetBaseline("base", 100)
	d.Add("other", 110)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title    string     `json:"title"`
		Headers  []string   `json:"headers"`
		Rows     [][]string `json:"rows"`
		Baseline []float64  `json:"baseline"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "D" || len(got.Rows) != 2 {
		t.Fatalf("delta table JSON = %s", data)
	}
	// Cells carry the rendered delta, exactly as String would print.
	if !strings.Contains(got.Rows[1][1], "+10.0%") {
		t.Errorf("delta cell %q lacks rendered delta", got.Rows[1][1])
	}
	if len(got.Baseline) != 1 || got.Baseline[0] != 100 {
		t.Errorf("baseline values = %v", got.Baseline)
	}
}

func TestComparisonMarshalJSON(t *testing.T) {
	c := NewComparison("C")
	c.Add("power", 100, 103, KW)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "+3.0%") {
		t.Errorf("comparison JSON %s lacks the deviation cell", data)
	}
}

package facility

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/rng"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func newFacility(t *testing.T, cfg Config) *Facility {
	t.Helper()
	f, err := New(cfg, rng.New(1), t0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// small returns a scaled-down config for fast tests.
func small() Config {
	cfg := ARCHER2()
	cfg.Nodes = 100
	return cfg
}

func TestTable1Inventory(t *testing.T) {
	f := newFacility(t, ARCHER2())
	if f.NodeCount() != 5860 {
		t.Errorf("nodes = %d, want 5860", f.NodeCount())
	}
	if f.CoreCount() != 750080 {
		t.Errorf("cores = %d, want 750080", f.CoreCount())
	}
	if f.Fabric().SwitchCount() != 768 {
		t.Errorf("switches = %d, want 768", f.Fabric().SwitchCount())
	}
	if f.Storage().Count() != 5 {
		t.Errorf("file systems = %d, want 5", f.Storage().Count())
	}
	if f.Config().Cabinets != 23 {
		t.Errorf("cabinets = %d, want 23", f.Config().Cabinets)
	}
}

func TestTable2Breakdown(t *testing.T) {
	f := newFacility(t, ARCHER2())
	rows := f.Breakdown()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byName := map[string]ComponentRow{}
	for _, r := range rows {
		byName[r.Component] = r
	}

	// Paper Table 2 values, with tolerance for the model's rounding.
	nodes := byName["Compute nodes"]
	if got := nodes.Idle.Kilowatts(); math.Abs(got-1350) > 30 {
		t.Errorf("compute idle = %v kW, want ~1350", got)
	}
	if got := nodes.Loaded.Kilowatts(); math.Abs(got-3000) > 60 {
		t.Errorf("compute loaded = %v kW, want ~3000", got)
	}
	if nodes.PercentLoaded < 83 || nodes.PercentLoaded > 88 {
		t.Errorf("compute share = %v%%, want ~86%%", nodes.PercentLoaded)
	}

	sw := byName["Slingshot interconnect"]
	if got := sw.Loaded.Kilowatts(); math.Abs(got-200) > 15 {
		t.Errorf("interconnect loaded = %v kW, want ~200", got)
	}
	if sw.PercentLoaded < 4 || sw.PercentLoaded > 8 {
		t.Errorf("interconnect share = %v%%, want ~6%%", sw.PercentLoaded)
	}

	cdu := byName["Coolant distribution units"]
	if got := cdu.Loaded.Kilowatts(); math.Abs(got-96) > 1e-9 {
		t.Errorf("CDU loaded = %v kW, want 96", got)
	}
	fs := byName["File systems"]
	if got := fs.Loaded.Kilowatts(); math.Abs(got-40) > 1e-9 {
		t.Errorf("FS loaded = %v kW, want 40", got)
	}

	idle, loaded := BreakdownTotals(rows)
	if got := idle.Kilowatts(); math.Abs(got-1800) > 100 {
		t.Errorf("idle total = %v kW, want ~1800", got)
	}
	if got := loaded.Kilowatts(); math.Abs(got-3500) > 100 {
		t.Errorf("loaded total = %v kW, want ~3500", got)
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := ARCHER2()
	cfg.Nodes = 0
	if _, err := New(cfg, rng.New(1), t0); err == nil {
		t.Fatal("zero-node config accepted")
	}
	cfg = ARCHER2()
	cfg.CPU = nil
	if _, err := New(cfg, rng.New(1), t0); err == nil {
		t.Fatal("nil CPU config accepted")
	}
}

func TestCabinetOfNode(t *testing.T) {
	f := newFacility(t, ARCHER2())
	if c := f.CabinetOfNode(0); c != 0 {
		t.Errorf("first node cabinet = %d", c)
	}
	if c := f.CabinetOfNode(5859); c != 22 {
		t.Errorf("last node cabinet = %d", c)
	}
	// Monotone, all cabinets populated.
	prev := 0
	seen := map[int]bool{}
	for i := 0; i < f.NodeCount(); i++ {
		c := f.CabinetOfNode(i)
		if c < prev {
			t.Fatalf("cabinet assignment not monotone at node %d", i)
		}
		prev = c
		seen[c] = true
	}
	if len(seen) != 23 {
		t.Fatalf("cabinets populated = %d, want 23", len(seen))
	}
}

func TestUtilisationAndPower(t *testing.T) {
	f := newFacility(t, small())
	if u := f.Utilisation(); u != 0 {
		t.Fatalf("idle utilisation = %v", u)
	}
	idleCab := f.CabinetPower().Kilowatts()

	// Load half the nodes.
	for i := 0; i < 50; i++ {
		f.Node(i).StartWork(TypicalLoadedActivity, t0)
	}
	if u := f.Utilisation(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilisation = %v, want 0.5", u)
	}
	halfCab := f.CabinetPower().Kilowatts()
	if halfCab <= idleCab {
		t.Fatalf("cabinet power did not rise: %v -> %v", idleCab, halfCab)
	}
	if f.TotalPower().Watts() <= f.CabinetPower().Watts() {
		t.Fatal("total power not above cabinet power")
	}
}

func TestUtilisationExcludesDownNodes(t *testing.T) {
	f := newFacility(t, small())
	for i := 0; i < 50; i++ {
		f.Node(i).StartWork(TypicalLoadedActivity, t0)
	}
	for i := 50; i < 100; i++ {
		f.Node(i).SetState(node.Down, t0)
	}
	if u := f.Utilisation(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilisation with down nodes = %v, want 1.0", u)
	}
}

func TestSetModeAllReducesPower(t *testing.T) {
	f := newFacility(t, small())
	for i := 0; i < 100; i++ {
		f.Node(i).StartWork(TypicalLoadedActivity, t0)
	}
	before := f.ComputeNodePower().Watts()
	f.SetModeAll(cpu.PerformanceDeterminism, t0.Add(time.Minute))
	after := f.ComputeNodePower().Watts()
	rel := (before - after) / before
	// Core dynamic is ~36% of a typical loaded node; an 18% die-factor cut
	// gives ~6-8% node power reduction.
	if rel < 0.03 || rel > 0.12 {
		t.Fatalf("mode change reduction = %v, want ~0.06", rel)
	}
}

func TestSetDefaultFrequencyAll(t *testing.T) {
	f := newFacility(t, small())
	for i := 0; i < 100; i++ {
		f.Node(i).StartWork(TypicalLoadedActivity, t0)
	}
	f.SetModeAll(cpu.PerformanceDeterminism, t0)
	before := f.ComputeNodePower().Watts()
	if err := f.SetDefaultFrequencyAll(f.Config().CPU.CappedSetting(), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	after := f.ComputeNodePower().Watts()
	if after >= before {
		t.Fatalf("frequency cap did not reduce power: %v -> %v", before, after)
	}
	bad := cpu.FreqSetting{Base: f.Config().CPU.PStates[0].Freq, Boost: true}
	if err := f.SetDefaultFrequencyAll(bad, t0.Add(2*time.Minute)); err == nil {
		t.Fatal("invalid setting accepted")
	}
}

func TestEnergyAccounting(t *testing.T) {
	f := newFacility(t, small())
	p := f.ComputeNodePower()
	f.AccrueAll(t0.Add(time.Hour))
	got := f.ComputeEnergy().KilowattHours()
	want := p.EnergyOver(time.Hour).KilowattHours()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v kWh, want %v", got, want)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := newFacility(t, small())
	b := newFacility(t, small())
	a.SetModeAll(cpu.PerformanceDeterminism, t0)
	b.SetModeAll(cpu.PerformanceDeterminism, t0)
	if a.ComputeNodePower() != b.ComputeNodePower() {
		t.Fatal("same-seed facilities differ")
	}
}

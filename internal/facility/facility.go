// Package facility composes the hardware substrates — compute nodes,
// Slingshot fabric, storage fleet and cooling plant — into the full
// ARCHER2 configuration (5,860 nodes / 750,080 cores / 23 cabinets), and
// produces the per-component power breakdown of the paper's Table 2.
package facility

import (
	"fmt"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/cooling"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/interconnect"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/storage"
	"github.com/greenhpc/archertwin/internal/units"
)

// TypicalLoadedActivity is the reference workload activity used for the
// "loaded" column of Table 2: it puts a node at ~510 W under the stock
// frequency setting in Power Determinism mode.
var TypicalLoadedActivity = cpu.Activity{Core: 0.62, Uncore: 0.62}

// Config describes a facility.
type Config struct {
	Name     string
	Nodes    int
	Cabinets int
	CPU      *cpu.Spec

	// Partitions are extra named node partitions appended after the
	// implicit primary CPU partition (Nodes/Cabinets/CPU above). Empty
	// for the homogeneous ARCHER2 configuration — the heterogeneous
	// fleet adds e.g. a GPU/AI partition here.
	Partitions []Partition

	Interconnect interconnect.Config
	Cooling      cooling.Config
}

// Partition describes one extra node partition: its own node type (CPU
// spec, per-node socket/module count, board power) and cabinet block.
// Zero values default to the primary partition's layout: nil CPU means
// the facility CPU spec, zero SocketsPerNode means node.SocketsPerNode,
// zero BoardPower means node.BoardPower, zero Cabinets means one.
type Partition struct {
	Name           string
	Nodes          int
	Cabinets       int
	CPU            *cpu.Spec
	SocketsPerNode int
	BoardPower     units.Power
}

// AIPartition returns a GPU/AI partition of the given node count: four
// MI250X-class accelerator modules per node with a 150 W host board
// budget, packed 256 nodes per cabinet.
func AIPartition(nodes int) Partition {
	return Partition{
		Name:           "ai",
		Nodes:          nodes,
		Cabinets:       (nodes + 255) / 256,
		CPU:            cpu.AcceleratorGPU(),
		SocketsPerNode: 4,
		BoardPower:     units.Watts(150),
	}
}

// TotalNodes returns the node count across the primary partition and all
// extra partitions.
func (cfg Config) TotalNodes() int {
	t := cfg.Nodes
	for _, p := range cfg.Partitions {
		t += p.Nodes
	}
	return t
}

// PartitionShape returns a canonical string describing the extra
// partition layout — empty for a homogeneous facility. Fork validation
// uses it to reject partition-shape mismatches between a snapshot and
// the config it is restored into.
func (cfg Config) PartitionShape() string {
	if len(cfg.Partitions) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range cfg.Partitions {
		fmt.Fprintf(&b, "%s:%d:%d:%d;", p.Name, p.Nodes, p.SocketsPerNode, p.Cabinets)
	}
	return b.String()
}

// ARCHER2 returns the paper's Table 1 configuration.
func ARCHER2() Config {
	return Config{
		Name:         "ARCHER2",
		Nodes:        5860,
		Cabinets:     23,
		CPU:          cpu.EPYC7742(),
		Interconnect: interconnect.ARCHER2Config(),
		Cooling:      cooling.ARCHER2Config(),
	}
}

// PartitionInfo is one resolved partition of an instantiated facility:
// the configured partition with defaults applied and its node/cabinet
// index ranges fixed. Partition 0 is always the primary CPU partition.
type PartitionInfo struct {
	Name         string
	Start        int // first node ID
	Nodes        int
	Cabinets     int
	CabinetStart int // first cabinet index
	CPU          *cpu.Spec
	Sockets      int
	Board        units.Power
}

// End returns one past the partition's last node ID.
func (p PartitionInfo) End() int { return p.Start + p.Nodes }

// Facility is an instantiated system.
type Facility struct {
	cfg    Config
	parts  []PartitionInfo
	nodes  []*node.Node
	fabric *interconnect.Fabric
	fs     *storage.Fleet
	plant  *cooling.Plant

	// counters tracks fleet-wide up/busy node counts incrementally, so
	// the per-sample Utilisation read is O(1) instead of a fleet scan.
	counters node.FleetCounters
}

// resolvePartitions turns the config into the resolved partition list:
// the implicit primary partition followed by the extras with defaults
// applied and ranges assigned.
func resolvePartitions(cfg Config) ([]PartitionInfo, error) {
	parts := make([]PartitionInfo, 0, 1+len(cfg.Partitions))
	parts = append(parts, PartitionInfo{
		Name:     "compute",
		Nodes:    cfg.Nodes,
		Cabinets: cfg.Cabinets,
		CPU:      cfg.CPU,
		Sockets:  node.SocketsPerNode,
		Board:    node.BoardPower,
	})
	seen := map[string]bool{parts[0].Name: true}
	for i, p := range cfg.Partitions {
		if p.Name == "" {
			return nil, fmt.Errorf("facility: partition %d: empty name", i)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("facility: duplicate partition name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Nodes <= 0 {
			return nil, fmt.Errorf("facility: partition %q: non-positive node count %d", p.Name, p.Nodes)
		}
		if p.SocketsPerNode < 0 || p.BoardPower.Watts() < 0 {
			return nil, fmt.Errorf("facility: partition %q: negative layout", p.Name)
		}
		r := PartitionInfo{
			Name:     p.Name,
			Nodes:    p.Nodes,
			Cabinets: p.Cabinets,
			CPU:      p.CPU,
			Sockets:  p.SocketsPerNode,
			Board:    p.BoardPower,
		}
		if r.Cabinets <= 0 {
			r.Cabinets = 1
		}
		if r.CPU == nil {
			r.CPU = cfg.CPU
		}
		if r.Sockets == 0 {
			r.Sockets = node.SocketsPerNode
		}
		if r.Board.Watts() == 0 {
			r.Board = node.BoardPower
		}
		parts = append(parts, r)
	}
	for i := 1; i < len(parts); i++ {
		parts[i].Start = parts[i-1].Start + parts[i-1].Nodes
		parts[i].CabinetStart = parts[i-1].CabinetStart + parts[i-1].Cabinets
	}
	return parts, nil
}

// New builds a facility at virtual time `at`, with per-node die variation
// seeded from r.
func New(cfg Config, r *rng.Stream, at time.Time) (*Facility, error) {
	if cfg.Nodes <= 0 || cfg.Cabinets <= 0 || cfg.CPU == nil {
		return nil, fmt.Errorf("facility: invalid config (nodes=%d cabinets=%d)", cfg.Nodes, cfg.Cabinets)
	}
	parts, err := resolvePartitions(cfg)
	if err != nil {
		return nil, err
	}
	fabric, err := interconnect.New(cfg.Interconnect)
	if err != nil {
		return nil, err
	}
	f := &Facility{
		cfg:    cfg,
		parts:  parts,
		nodes:  make([]*node.Node, cfg.TotalNodes()),
		fabric: fabric,
		fs:     storage.ARCHER2Fleet(),
		plant:  cooling.New(cfg.Cooling),
	}
	// Node IDs run globally across partitions and each node's RNG stream
	// is split by that global ID, so a homogeneous facility (one
	// partition, default layout) constructs exactly the node sequence it
	// always did — bit-identical die draws included.
	nodeStream := r.Split("nodes")
	for pi := range f.parts {
		p := &f.parts[pi]
		for i := p.Start; i < p.End(); i++ {
			f.nodes[i] = node.NewWithLayout(i, p.CPU, p.Sockets, p.Board, nodeStream.SplitIndexed("node", i), at)
			f.nodes[i].AttachCounters(&f.counters)
		}
	}
	return f, nil
}

// Config returns the facility configuration.
func (f *Facility) Config() Config { return f.cfg }

// NodeCount returns the number of compute nodes.
func (f *Facility) NodeCount() int { return len(f.nodes) }

// CoreCount returns the total compute core count (Table 1: 750,080 for
// the homogeneous configuration), summed across partitions.
func (f *Facility) CoreCount() int {
	total := 0
	for _, p := range f.parts {
		total += p.Nodes * p.Sockets * p.CPU.Cores
	}
	return total
}

// PartitionCount returns the number of partitions (1 for a homogeneous
// facility).
func (f *Facility) PartitionCount() int { return len(f.parts) }

// Partitions returns the resolved partition list (partition 0 is the
// primary CPU partition). The returned slice is a copy.
func (f *Facility) Partitions() []PartitionInfo {
	out := make([]PartitionInfo, len(f.parts))
	copy(out, f.parts)
	return out
}

// Partition returns resolved partition p.
func (f *Facility) Partition(p int) PartitionInfo { return f.parts[p] }

// PartitionOfNode returns the partition index housing node i.
func (f *Facility) PartitionOfNode(i int) int {
	for pi := len(f.parts) - 1; pi > 0; pi-- {
		if i >= f.parts[pi].Start {
			return pi
		}
	}
	return 0
}

// Node returns node i.
func (f *Facility) Node(i int) *node.Node { return f.nodes[i] }

// Nodes returns the node slice (shared; callers must not reorder it).
func (f *Facility) Nodes() []*node.Node { return f.nodes }

// Fabric returns the interconnect.
func (f *Facility) Fabric() *interconnect.Fabric { return f.fabric }

// Storage returns the file-system fleet.
func (f *Facility) Storage() *storage.Fleet { return f.fs }

// Plant returns the cooling plant.
func (f *Facility) Plant() *cooling.Plant { return f.plant }

// TotalCabinets returns the cabinet count across all partitions.
func (f *Facility) TotalCabinets() int {
	total := 0
	for _, p := range f.parts {
		total += p.Cabinets
	}
	return total
}

// CabinetOfNode returns the cabinet index housing node i (nodes are packed
// in ID order within their partition; partition cabinet blocks are
// contiguous, primary first).
func (f *Facility) CabinetOfNode(i int) int {
	p := &f.parts[f.PartitionOfNode(i)]
	c := (i - p.Start) * p.Cabinets / p.Nodes
	if c >= p.Cabinets {
		c = p.Cabinets - 1
	}
	return p.CabinetStart + c
}

// ComputeNodePower returns the instantaneous power of all compute nodes.
// Each node's draw is cached (see node.Power), so this is a linear sweep
// of plain float loads — in node-index order, keeping the floating-point
// summation bit-identical to the uncached engine.
func (f *Facility) ComputeNodePower() units.Power {
	var w float64
	for _, n := range f.nodes {
		w += n.PowerWatts()
	}
	return units.Watts(w)
}

// Utilisation returns the fraction of Up nodes that are busy, from the
// incrementally maintained fleet counters (identical to a fresh scan).
func (f *Facility) Utilisation() float64 {
	if f.counters.Up == 0 {
		return 0
	}
	return float64(f.counters.BusyUp) / float64(f.counters.Up)
}

// CabinetPower returns what the paper's Figures 1-3 measure: compute node
// power plus interconnect switch power ("compute cabinets, which includes
// all compute nodes and interconnect switches, approx. 90% of the total").
func (f *Facility) CabinetPower() units.Power {
	f.fabric.SetLoad(f.Utilisation())
	return units.Watts(f.ComputeNodePower().Watts() + f.fabric.TotalPower().Watts())
}

// TotalPower returns the whole-facility power: cabinets + cabinet
// overheads + CDUs + file systems.
func (f *Facility) TotalPower() units.Power {
	it := f.CabinetPower()
	over := f.plant.TotalPower(f.Utilisation())
	return units.Watts(it.Watts() + over.Watts() + f.fs.TotalPower().Watts())
}

// AccrueAll integrates node energy up to `at` (used before reading
// facility-wide energy totals).
func (f *Facility) AccrueAll(at time.Time) {
	for _, n := range f.nodes {
		n.Accrue(at)
	}
}

// ComputeEnergy returns the cumulative compute-node energy.
func (f *Facility) ComputeEnergy() units.Energy {
	var j float64
	for _, n := range f.nodes {
		j += n.Energy().Joules()
	}
	return units.Joules(j)
}

// SetModeAll switches the BIOS determinism mode on every node, as the
// ARCHER2 operators did across the system in May 2022.
func (f *Facility) SetModeAll(m cpu.Mode, at time.Time) {
	for _, n := range f.nodes {
		n.SetMode(m, at)
	}
}

// SetDefaultFrequencyAll changes the frequency setting of every primary-
// partition node (the system frequency policy governs the CPU partition;
// extra partitions keep their own spec's default setting). The per-job
// override policy is layered on top by the policy package.
func (f *Facility) SetDefaultFrequencyAll(fs cpu.FreqSetting, at time.Time) error {
	if err := f.cfg.CPU.ValidateSetting(fs); err != nil {
		return err
	}
	for _, n := range f.nodes[:f.parts[0].Nodes] {
		if err := n.SetFrequency(fs, at); err != nil {
			return err
		}
	}
	return nil
}

// ComponentRow is one row of the Table 2 breakdown.
type ComponentRow struct {
	Component string
	Count     int
	Idle      units.Power
	Loaded    units.Power
	// PercentLoaded is this component's share of the loaded total.
	PercentLoaded float64
}

// Breakdown reproduces the paper's Table 2: spec-level idle and loaded
// power per component with percentage shares. These are static estimates
// (as in the paper, which combined measurements and vendor estimates),
// independent of the current simulation state.
func (f *Facility) Breakdown() []ComponentRow {
	spec := f.cfg.CPU
	idleNode := node.IdlePower(spec).Watts()
	loadedNode := node.ExpectedPower(spec, spec.DefaultSetting(),
		TypicalLoadedActivity, cpu.PowerDeterminism).Watts()

	primary := f.parts[0].Nodes
	rows := []ComponentRow{
		{
			Component: "Compute nodes",
			Count:     primary,
			Idle:      units.Watts(idleNode * float64(primary)),
			Loaded:    units.Watts(loadedNode * float64(primary)),
		},
	}
	for _, p := range f.parts[1:] {
		pIdle := node.IdlePowerLayout(p.CPU, p.Sockets, p.Board).Watts()
		pLoaded := node.ExpectedPowerLayout(p.CPU, p.Sockets, p.Board,
			p.CPU.DefaultSetting(), TypicalLoadedActivity, cpu.PowerDeterminism).Watts()
		rows = append(rows, ComponentRow{
			Component: fmt.Sprintf("%s partition nodes", p.Name),
			Count:     p.Nodes,
			Idle:      units.Watts(pIdle * float64(p.Nodes)),
			Loaded:    units.Watts(pLoaded * float64(p.Nodes)),
		})
	}
	rows = append(rows, []ComponentRow{
		{
			Component: "Slingshot interconnect",
			Count:     f.fabric.SwitchCount(),
			Idle:      f.fabric.IdleTotalPower(),
			Loaded:    f.fabric.LoadedTotalPower(),
		},
		{
			Component: "Other cabinet overheads",
			Count:     f.cfg.Cabinets,
			Idle:      f.plant.CabinetOverhead(0),
			Loaded:    f.plant.CabinetOverhead(1),
		},
		{
			Component: "Coolant distribution units",
			Count:     f.plant.Config().CDUs,
			Idle:      f.plant.CDUTotalPower(),
			Loaded:    f.plant.CDUTotalPower(),
		},
		{
			Component: "File systems",
			Count:     f.fs.Count(),
			Idle:      f.fs.TotalPower(),
			Loaded:    f.fs.TotalPower(),
		},
	}...)
	var total float64
	for _, r := range rows {
		total += r.Loaded.Watts()
	}
	for i := range rows {
		rows[i].PercentLoaded = rows[i].Loaded.Watts() / total * 100
	}
	return rows
}

// BreakdownTotals returns the idle and loaded totals of the Table 2 rows.
func BreakdownTotals(rows []ComponentRow) (idle, loaded units.Power) {
	var iw, lw float64
	for _, r := range rows {
		iw += r.Idle.Watts()
		lw += r.Loaded.Watts()
	}
	return units.Watts(iw), units.Watts(lw)
}

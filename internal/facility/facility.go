// Package facility composes the hardware substrates — compute nodes,
// Slingshot fabric, storage fleet and cooling plant — into the full
// ARCHER2 configuration (5,860 nodes / 750,080 cores / 23 cabinets), and
// produces the per-component power breakdown of the paper's Table 2.
package facility

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/cooling"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/interconnect"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/storage"
	"github.com/greenhpc/archertwin/internal/units"
)

// TypicalLoadedActivity is the reference workload activity used for the
// "loaded" column of Table 2: it puts a node at ~510 W under the stock
// frequency setting in Power Determinism mode.
var TypicalLoadedActivity = cpu.Activity{Core: 0.62, Uncore: 0.62}

// Config describes a facility.
type Config struct {
	Name     string
	Nodes    int
	Cabinets int
	CPU      *cpu.Spec

	Interconnect interconnect.Config
	Cooling      cooling.Config
}

// ARCHER2 returns the paper's Table 1 configuration.
func ARCHER2() Config {
	return Config{
		Name:         "ARCHER2",
		Nodes:        5860,
		Cabinets:     23,
		CPU:          cpu.EPYC7742(),
		Interconnect: interconnect.ARCHER2Config(),
		Cooling:      cooling.ARCHER2Config(),
	}
}

// Facility is an instantiated system.
type Facility struct {
	cfg    Config
	nodes  []*node.Node
	fabric *interconnect.Fabric
	fs     *storage.Fleet
	plant  *cooling.Plant

	// counters tracks fleet-wide up/busy node counts incrementally, so
	// the per-sample Utilisation read is O(1) instead of a fleet scan.
	counters node.FleetCounters
}

// New builds a facility at virtual time `at`, with per-node die variation
// seeded from r.
func New(cfg Config, r *rng.Stream, at time.Time) (*Facility, error) {
	if cfg.Nodes <= 0 || cfg.Cabinets <= 0 || cfg.CPU == nil {
		return nil, fmt.Errorf("facility: invalid config (nodes=%d cabinets=%d)", cfg.Nodes, cfg.Cabinets)
	}
	fabric, err := interconnect.New(cfg.Interconnect)
	if err != nil {
		return nil, err
	}
	f := &Facility{
		cfg:    cfg,
		nodes:  make([]*node.Node, cfg.Nodes),
		fabric: fabric,
		fs:     storage.ARCHER2Fleet(),
		plant:  cooling.New(cfg.Cooling),
	}
	nodeStream := r.Split("nodes")
	for i := range f.nodes {
		f.nodes[i] = node.New(i, cfg.CPU, nodeStream.SplitIndexed("node", i), at)
		f.nodes[i].AttachCounters(&f.counters)
	}
	return f, nil
}

// Config returns the facility configuration.
func (f *Facility) Config() Config { return f.cfg }

// NodeCount returns the number of compute nodes.
func (f *Facility) NodeCount() int { return len(f.nodes) }

// CoreCount returns the total compute core count (Table 1: 750,080).
func (f *Facility) CoreCount() int {
	return len(f.nodes) * node.SocketsPerNode * f.cfg.CPU.Cores
}

// Node returns node i.
func (f *Facility) Node(i int) *node.Node { return f.nodes[i] }

// Nodes returns the node slice (shared; callers must not reorder it).
func (f *Facility) Nodes() []*node.Node { return f.nodes }

// Fabric returns the interconnect.
func (f *Facility) Fabric() *interconnect.Fabric { return f.fabric }

// Storage returns the file-system fleet.
func (f *Facility) Storage() *storage.Fleet { return f.fs }

// Plant returns the cooling plant.
func (f *Facility) Plant() *cooling.Plant { return f.plant }

// CabinetOfNode returns the cabinet index housing node i (nodes are packed
// in ID order).
func (f *Facility) CabinetOfNode(i int) int {
	c := i * f.cfg.Cabinets / len(f.nodes)
	if c >= f.cfg.Cabinets {
		c = f.cfg.Cabinets - 1
	}
	return c
}

// ComputeNodePower returns the instantaneous power of all compute nodes.
// Each node's draw is cached (see node.Power), so this is a linear sweep
// of plain float loads — in node-index order, keeping the floating-point
// summation bit-identical to the uncached engine.
func (f *Facility) ComputeNodePower() units.Power {
	var w float64
	for _, n := range f.nodes {
		w += n.PowerWatts()
	}
	return units.Watts(w)
}

// Utilisation returns the fraction of Up nodes that are busy, from the
// incrementally maintained fleet counters (identical to a fresh scan).
func (f *Facility) Utilisation() float64 {
	if f.counters.Up == 0 {
		return 0
	}
	return float64(f.counters.BusyUp) / float64(f.counters.Up)
}

// CabinetPower returns what the paper's Figures 1-3 measure: compute node
// power plus interconnect switch power ("compute cabinets, which includes
// all compute nodes and interconnect switches, approx. 90% of the total").
func (f *Facility) CabinetPower() units.Power {
	f.fabric.SetLoad(f.Utilisation())
	return units.Watts(f.ComputeNodePower().Watts() + f.fabric.TotalPower().Watts())
}

// TotalPower returns the whole-facility power: cabinets + cabinet
// overheads + CDUs + file systems.
func (f *Facility) TotalPower() units.Power {
	it := f.CabinetPower()
	over := f.plant.TotalPower(f.Utilisation())
	return units.Watts(it.Watts() + over.Watts() + f.fs.TotalPower().Watts())
}

// AccrueAll integrates node energy up to `at` (used before reading
// facility-wide energy totals).
func (f *Facility) AccrueAll(at time.Time) {
	for _, n := range f.nodes {
		n.Accrue(at)
	}
}

// ComputeEnergy returns the cumulative compute-node energy.
func (f *Facility) ComputeEnergy() units.Energy {
	var j float64
	for _, n := range f.nodes {
		j += n.Energy().Joules()
	}
	return units.Joules(j)
}

// SetModeAll switches the BIOS determinism mode on every node, as the
// ARCHER2 operators did across the system in May 2022.
func (f *Facility) SetModeAll(m cpu.Mode, at time.Time) {
	for _, n := range f.nodes {
		n.SetMode(m, at)
	}
}

// SetDefaultFrequencyAll changes the frequency setting of every node. The
// per-job override policy is layered on top by the policy package.
func (f *Facility) SetDefaultFrequencyAll(fs cpu.FreqSetting, at time.Time) error {
	if err := f.cfg.CPU.ValidateSetting(fs); err != nil {
		return err
	}
	for _, n := range f.nodes {
		if err := n.SetFrequency(fs, at); err != nil {
			return err
		}
	}
	return nil
}

// ComponentRow is one row of the Table 2 breakdown.
type ComponentRow struct {
	Component string
	Count     int
	Idle      units.Power
	Loaded    units.Power
	// PercentLoaded is this component's share of the loaded total.
	PercentLoaded float64
}

// Breakdown reproduces the paper's Table 2: spec-level idle and loaded
// power per component with percentage shares. These are static estimates
// (as in the paper, which combined measurements and vendor estimates),
// independent of the current simulation state.
func (f *Facility) Breakdown() []ComponentRow {
	spec := f.cfg.CPU
	idleNode := node.IdlePower(spec).Watts()
	loadedNode := node.ExpectedPower(spec, spec.DefaultSetting(),
		TypicalLoadedActivity, cpu.PowerDeterminism).Watts()

	rows := []ComponentRow{
		{
			Component: "Compute nodes",
			Count:     len(f.nodes),
			Idle:      units.Watts(idleNode * float64(len(f.nodes))),
			Loaded:    units.Watts(loadedNode * float64(len(f.nodes))),
		},
		{
			Component: "Slingshot interconnect",
			Count:     f.fabric.SwitchCount(),
			Idle:      f.fabric.IdleTotalPower(),
			Loaded:    f.fabric.LoadedTotalPower(),
		},
		{
			Component: "Other cabinet overheads",
			Count:     f.cfg.Cabinets,
			Idle:      f.plant.CabinetOverhead(0),
			Loaded:    f.plant.CabinetOverhead(1),
		},
		{
			Component: "Coolant distribution units",
			Count:     f.plant.Config().CDUs,
			Idle:      f.plant.CDUTotalPower(),
			Loaded:    f.plant.CDUTotalPower(),
		},
		{
			Component: "File systems",
			Count:     f.fs.Count(),
			Idle:      f.fs.TotalPower(),
			Loaded:    f.fs.TotalPower(),
		},
	}
	var total float64
	for _, r := range rows {
		total += r.Loaded.Watts()
	}
	for i := range rows {
		rows[i].PercentLoaded = rows[i].Loaded.Watts() / total * 100
	}
	return rows
}

// BreakdownTotals returns the idle and loaded totals of the Table 2 rows.
func BreakdownTotals(rows []ComponentRow) (idle, loaded units.Power) {
	var iw, lw float64
	for _, r := range rows {
		iw += r.Idle.Watts()
		lw += r.Loaded.Watts()
	}
	return units.Watts(iw), units.Watts(lw)
}

package facility

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/node"
)

// Snapshot is the facility's full mutable state at a checkpoint: every
// node's state plus the fabric's last-set load level. The fleet counters
// are not captured — they are reconciled incrementally as each node is
// restored, so Restore leaves them equal to a fresh fleet scan.
type Snapshot struct {
	Nodes      []node.Snapshot
	FabricLoad float64
}

// Snapshot captures the facility state.
func (f *Facility) Snapshot() *Snapshot {
	s := &Snapshot{
		Nodes:      make([]node.Snapshot, len(f.nodes)),
		FabricLoad: f.fabric.Load(),
	}
	for i, n := range f.nodes {
		s.Nodes[i] = n.Snapshot()
	}
	return s
}

// Restore overwrites this facility's node and fabric state from a
// snapshot taken on an identically-shaped facility.
func (f *Facility) Restore(s *Snapshot) error {
	if len(s.Nodes) != len(f.nodes) {
		return fmt.Errorf("facility: snapshot has %d nodes, facility has %d", len(s.Nodes), len(f.nodes))
	}
	for i, n := range f.nodes {
		n.Restore(s.Nodes[i])
	}
	f.fabric.SetLoad(s.FabricLoad)
	return nil
}

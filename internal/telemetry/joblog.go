package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/units"
)

// JobLog retains a per-job accounting record for every finished job, in
// the style of Slurm's sacct energy counters — the data source behind the
// HPC-JEEP energy-use report the paper builds on. The log powers
// per-application energy analyses and CSV export for external tooling.

// JobRecord is one finished job's accounting row.
type JobRecord struct {
	ID       int
	Class    string
	App      string
	Nodes    int
	Submit   time.Time
	Start    time.Time
	End      time.Time
	State    sched.JobState
	Setting  string
	Override bool
	Energy   units.Energy
}

// NodeHours returns the record's delivered node-hours.
func (r JobRecord) NodeHours() float64 {
	return float64(r.Nodes) * r.End.Sub(r.Start).Hours()
}

// KWhPerNodeHour returns the job's energy intensity (0 for zero-length
// jobs).
func (r JobRecord) KWhPerNodeHour() float64 {
	nh := r.NodeHours()
	if nh == 0 {
		return 0
	}
	return r.Energy.KilowattHours() / nh
}

// JobLog collects records from a scheduler.
type JobLog struct {
	records []JobRecord
	cap     int
}

// NewJobLog registers a log on the scheduler. cap bounds memory (0 = no
// bound); beyond it the earliest records are dropped FIFO.
func NewJobLog(s *sched.Scheduler, cap int) *JobLog {
	l := &JobLog{cap: cap}
	s.OnJobEnd(func(j *sched.Job) {
		l.append(JobRecord{
			ID:       j.Spec.ID,
			Class:    j.Spec.Class,
			App:      j.Spec.App.Name,
			Nodes:    len(j.Nodes),
			Submit:   j.Submit,
			Start:    j.Start,
			End:      j.End,
			State:    j.State,
			Setting:  j.Setting.String(),
			Override: j.Override,
			Energy:   j.Energy,
		})
	})
	return l
}

func (l *JobLog) append(r JobRecord) {
	if l.cap > 0 && len(l.records) >= l.cap {
		copy(l.records, l.records[1:])
		l.records[len(l.records)-1] = r
		return
	}
	l.records = append(l.records, r)
}

// Len returns the number of retained records.
func (l *JobLog) Len() int { return len(l.records) }

// Records returns the retained records (shared slice; do not mutate).
func (l *JobLog) Records() []JobRecord { return l.records }

// WriteCSV exports the log in sacct-like CSV form.
func (l *JobLog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"jobid", "class", "app", "nodes", "submit", "start",
		"end", "state", "freq_setting", "override", "energy_kwh", "kwh_per_nodeh"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range l.records {
		row := []string{
			strconv.Itoa(r.ID),
			r.Class,
			r.App,
			strconv.Itoa(r.Nodes),
			r.Submit.UTC().Format(time.RFC3339),
			r.Start.UTC().Format(time.RFC3339),
			r.End.UTC().Format(time.RFC3339),
			r.State.String(),
			r.Setting,
			strconv.FormatBool(r.Override),
			strconv.FormatFloat(r.Energy.KilowattHours(), 'f', 3, 64),
			strconv.FormatFloat(r.KWhPerNodeHour(), 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// energyByClassSizeHint pre-sizes the per-class aggregation map: the
// workload catalog defines a handful of research-area classes, so a
// small fixed hint avoids the incremental rehash-and-grow the unsized
// map paid on every call.
const energyByClassSizeHint = 8

// EnergyByClass aggregates retained records into per-class intensity
// statistics.
func (l *JobLog) EnergyByClass() map[string]ClassUsage {
	out := make(map[string]ClassUsage, energyByClassSizeHint)
	for _, r := range l.records {
		cu := out[r.Class]
		cu.Jobs++
		cu.NodeHours += r.NodeHours()
		cu.Energy += r.Energy
		out[r.Class] = cu
	}
	return out
}

// TopConsumers returns the n records with the highest total energy,
// descending, ties broken by earliest record. One pass over the log with
// a bounded insertion buffer — O(len(records) * log n) and two pre-sized
// allocations, replacing the earlier selection loop that rescanned the
// full record slice once per picked record (quadratic in n, ruinous for
// "top 100 of a million-job log" queries).
func (l *JobLog) TopConsumers(n int) []JobRecord {
	if n <= 0 || len(l.records) == 0 {
		return nil
	}
	if n > len(l.records) {
		n = len(l.records)
	}
	// top holds record indices ordered by (Energy desc, index asc).
	top := make([]int, 0, n)
	for i := range l.records {
		e := l.records[i].Energy
		if len(top) == n && e <= l.records[top[n-1]].Energy {
			continue // not above the current cutoff (ties keep the earlier record)
		}
		at := sort.Search(len(top), func(k int) bool {
			return l.records[top[k]].Energy < e
		})
		if len(top) < n {
			top = append(top, 0)
		}
		copy(top[at+1:], top[at:])
		top[at] = i
	}
	picked := make([]JobRecord, len(top))
	for i, idx := range top {
		picked[i] = l.records[idx]
	}
	return picked
}

// MemoryFootprint returns the log's retained bytes: the backing record
// capacity at struct size, plus each record's Setting string (rendered
// fresh per job by FreqSetting.String, so the bytes are owned here; the
// Class and App fields reference names shared with the workload catalog
// and are counted as headers only).
func (l *JobLog) MemoryFootprint() int64 {
	total := int64(cap(l.records)) * int64(unsafe.Sizeof(JobRecord{}))
	for i := range l.records {
		total += int64(len(l.records[i].Setting))
	}
	return total
}

// String summarises the log.
func (l *JobLog) String() string {
	var e units.Energy
	for _, r := range l.records {
		e += r.Energy
	}
	return fmt.Sprintf("joblog: %d records, %v total", len(l.records), e)
}

// ReadJobRecords parses a CSV written by JobLog.WriteCSV, for offline
// analysis tooling (cmd/jobsreport). The state and setting columns are
// kept as written; energy is reconstructed from the kWh column.
func ReadJobRecords(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading job csv: %w", err)
	}
	if len(rows) == 0 || len(rows[0]) != 12 || rows[0][0] != "jobid" {
		return nil, fmt.Errorf("telemetry: unrecognised job csv header")
	}
	out := make([]JobRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad id: %w", i+1, err)
		}
		nodes, err := strconv.Atoi(row[3])
		if err != nil || nodes <= 0 {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad nodes %q", i+1, row[3])
		}
		parseT := func(s string) (time.Time, error) { return time.Parse(time.RFC3339, s) }
		submit, err := parseT(row[4])
		if err != nil {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad submit: %w", i+1, err)
		}
		start, err := parseT(row[5])
		if err != nil {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad start: %w", i+1, err)
		}
		end, err := parseT(row[6])
		if err != nil {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad end: %w", i+1, err)
		}
		kwh, err := strconv.ParseFloat(row[10], 64)
		if err != nil || kwh < 0 {
			return nil, fmt.Errorf("telemetry: job csv row %d: bad energy %q", i+1, row[10])
		}
		rec := JobRecord{
			ID:      id,
			Class:   row[1],
			App:     row[2],
			Nodes:   nodes,
			Submit:  submit,
			Start:   start,
			End:     end,
			Setting: row[8],
			Energy:  units.KilowattHours(kwh),
		}
		rec.Override, _ = strconv.ParseBool(row[9])
		switch row[7] {
		case "completed":
			rec.State = sched.Completed
		case "failed":
			rec.State = sched.Failed
		default:
			return nil, fmt.Errorf("telemetry: job csv row %d: unknown state %q", i+1, row[7])
		}
		out = append(out, rec)
	}
	return out, nil
}

package telemetry

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
)

func TestCabinetMetersSumMatchesFacility(t *testing.T) {
	cfg := facility.ARCHER2()
	cfg.Nodes = 230 // 10 nodes per cabinet
	fac, err := facility.New(cfg, rng.New(7), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	cm, err := NewCabinetMeters(eng, fac, 15*time.Minute, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Load the first 100 nodes.
	for i := 0; i < 100; i++ {
		fac.Node(i).StartWork(facility.TypicalLoadedActivity, t0)
	}
	eng.Run()

	if cm.Cabinets() != 23 {
		t.Fatalf("cabinets = %d", cm.Cabinets())
	}
	total, ok := cm.TotalAt(t0.Add(30 * time.Minute))
	if !ok {
		t.Fatal("no total at sample time")
	}
	want := fac.CabinetPower()
	if math.Abs(total.Kilowatts()-want.Kilowatts()) > 0.5 {
		t.Fatalf("cabinet sum %v != facility %v", total, want)
	}
}

func TestCabinetImbalanceDetectsSkew(t *testing.T) {
	cfg := facility.ARCHER2()
	cfg.Nodes = 230
	fac, err := facility.New(cfg, rng.New(7), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	cm, err := NewCabinetMeters(eng, fac, 15*time.Minute, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Idle fleet: perfectly balanced.
	eng.RunUntil(t0.Add(20 * time.Minute))
	if got := cm.Imbalance(); got > 0.01 {
		t.Fatalf("idle imbalance = %v", got)
	}
	// Load only cabinet 0's nodes: skew appears.
	for i := 0; i < 10; i++ {
		fac.Node(i).StartWork(facility.TypicalLoadedActivity, eng.Now())
	}
	eng.Run()
	if got := cm.Imbalance(); got < 0.05 {
		t.Fatalf("skewed imbalance = %v, want > 0.05", got)
	}
}

func TestCabinetMetersInvalidInterval(t *testing.T) {
	cfg := facility.ARCHER2()
	cfg.Nodes = 46
	fac, err := facility.New(cfg, rng.New(7), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	if _, err := NewCabinetMeters(eng, fac, 0, t0.Add(time.Hour)); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestCabinetTotalBeforeSamples(t *testing.T) {
	cfg := facility.ARCHER2()
	cfg.Nodes = 46
	fac, err := facility.New(cfg, rng.New(7), t0)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine(t0)
	cm, err := NewCabinetMeters(eng, fac, 15*time.Minute, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cm.TotalAt(t0); ok {
		t.Fatal("total available before first sample")
	}
	if cm.Imbalance() != 0 {
		t.Fatal("imbalance nonzero before samples")
	}
	eng.Run()
	if cm.Series(0).Len() == 0 {
		t.Fatal("cabinet 0 has no samples")
	}
}

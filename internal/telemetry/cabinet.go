package telemetry

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// Cabinet-granular metering: the real PMDB reports per-cabinet power (the
// acknowledgements thank HPE for "power monitoring from ARCHER2 cabinets
// and switches"). CabinetMeters samples each cabinet's node power plus its
// share of the switch fleet into one series per cabinet, which the
// facility-level figures then aggregate.

// CabinetMeters samples per-cabinet power. Cabinet meters tick on an
// exact interval with no dropout, so each cabinet's trace lives in a
// compact timeseries.RegularSeries (implicit timestamps) — at ARCHER2
// scale that is 23 cabinet-year series whose timestamps would otherwise
// all encode the same clock.
type CabinetMeters struct {
	fac      *facility.Facility
	series   []*timeseries.RegularSeries
	nodesOf  [][]int
	interval time.Duration

	// eng/until and the live ticker are retained so a checkpoint can
	// capture the pending sample tick and a fork can resume mid-cadence
	// (see snapshot.go).
	eng    *des.Engine
	until  time.Time
	ticker *des.Ticker
}

// NewCabinetMeters attaches per-cabinet meters sampling every interval
// until `until`.
func NewCabinetMeters(eng *des.Engine, fac *facility.Facility, interval time.Duration, until time.Time) (*CabinetMeters, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: non-positive cabinet meter interval")
	}
	nCab := fac.Config().Cabinets
	cm := &CabinetMeters{
		fac:      fac,
		series:   make([]*timeseries.RegularSeries, nCab),
		nodesOf:  make([][]int, nCab),
		interval: interval,
	}
	capacity := 0
	if horizon := until.Sub(eng.Now()); horizon > 0 {
		capacity = int(horizon/interval) + 1
	}
	for c := 0; c < nCab; c++ {
		cm.series[c] = timeseries.NewRegular(fmt.Sprintf("cabinet_%02d_power", c), "kW", interval, capacity)
	}
	for i := 0; i < fac.NodeCount(); i++ {
		c := fac.CabinetOfNode(i)
		cm.nodesOf[c] = append(cm.nodesOf[c], i)
	}
	cm.eng, cm.until = eng, until
	cm.ticker = eng.Every(interval, until, cm.sample)
	return cm, nil
}

func (cm *CabinetMeters) sample(now time.Time) {
	fab := cm.fac.Fabric()
	fab.SetLoad(cm.fac.Utilisation())
	switchShare := fab.TotalPower().Watts() / float64(len(cm.series))
	for c, nodes := range cm.nodesOf {
		var w float64
		for _, id := range nodes {
			w += cm.fac.Node(id).Power().Watts()
		}
		cm.series[c].MustAppend(now, (w+switchShare)/1000)
	}
}

// Cabinets returns the number of metered cabinets.
func (cm *CabinetMeters) Cabinets() int { return len(cm.series) }

// Series returns cabinet c's power series (kW).
func (cm *CabinetMeters) Series(c int) timeseries.View { return cm.series[c] }

// MemoryFootprint returns the meters' retained bytes (series plus the
// node-index fan-out), for core.Results.MemoryFootprint accounting.
func (cm *CabinetMeters) MemoryFootprint() int64 {
	var total int64
	for _, s := range cm.series {
		total += s.MemoryFootprint()
	}
	for _, nodes := range cm.nodesOf {
		total += int64(cap(nodes)) * 8
	}
	return total
}

// TotalAt sums all cabinet series' sample-and-hold values at time t.
func (cm *CabinetMeters) TotalAt(t time.Time) (units.Power, bool) {
	var kw float64
	for _, s := range cm.series {
		v, ok := s.ValueAt(t)
		if !ok {
			return 0, false
		}
		kw += v
	}
	return units.Kilowatts(kw), true
}

// Imbalance returns (max-min)/mean of cabinet mean power over the metered
// period — a load-balance health metric for the allocator.
func (cm *CabinetMeters) Imbalance() float64 {
	if len(cm.series) == 0 || cm.series[0].Len() == 0 {
		return 0
	}
	min, max, sum := 0.0, 0.0, 0.0
	for i, s := range cm.series {
		m := s.Mean()
		if i == 0 || m < min {
			min = m
		}
		if i == 0 || m > max {
			max = m
		}
		sum += m
	}
	mean := sum / float64(len(cm.series))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}

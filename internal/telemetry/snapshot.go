package telemetry

import (
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/timeseries"
)

// Checkpoint support: each telemetry component can capture its mutable
// state into an immutable snapshot and restore a freshly constructed
// component from one. Series are deep-copied both ways, so one snapshot
// can seed any number of concurrent forks, and pending sample ticks carry
// the parent engine's event sequence number so the fork fires them in the
// parent's exact order.

// MeterSnapshot is a Meter's state at a checkpoint.
type MeterSnapshot struct {
	power   timeseries.Appender
	util    timeseries.Appender
	dropped int
	hasRng  bool
	rng     [4]uint64

	tickAt      time.Time
	tickSeq     uint64
	tickPending bool
}

// Snapshot captures the meter's series tails, noise/dropout RNG position
// and pending sample tick.
func (m *Meter) Snapshot() *MeterSnapshot {
	s := &MeterSnapshot{
		power:   timeseries.CloneAppender(m.power),
		util:    timeseries.CloneAppender(m.util),
		dropped: m.dropped,
	}
	if m.r != nil {
		s.hasRng, s.rng = true, m.r.State()
	}
	if next, seq, ok := m.ticker.Pending(); ok {
		s.tickAt, s.tickSeq, s.tickPending = next, seq, true
	}
	return s
}

// Restore overwrites a freshly constructed meter's state from a snapshot.
// The construction-time ticker must already have been discarded with the
// engine reset; the pending tick is handed to add for globally ordered
// re-scheduling.
func (m *Meter) Restore(s *MeterSnapshot, add func(seq uint64, schedule func())) {
	m.power = timeseries.CloneAppender(s.power)
	m.util = timeseries.CloneAppender(s.util)
	m.dropped = s.dropped
	if s.hasRng && m.r != nil {
		m.r.SetState(s.rng)
	}
	m.ticker.Stop()
	if s.tickPending {
		add(s.tickSeq, func() {
			m.ticker = m.eng.ResumeEvery(s.tickAt, m.cfg.Interval, m.until, m.tick)
		})
	}
}

// MemoryFootprint returns the snapshot's retained series bytes.
func (s *MeterSnapshot) MemoryFootprint() int64 {
	return s.power.MemoryFootprint() + s.util.MemoryFootprint()
}

// CabinetSnapshot is a CabinetMeters' state at a checkpoint.
type CabinetSnapshot struct {
	series []*timeseries.RegularSeries

	tickAt      time.Time
	tickSeq     uint64
	tickPending bool
}

// Snapshot captures every cabinet series tail and the pending sample
// tick.
func (cm *CabinetMeters) Snapshot() *CabinetSnapshot {
	s := &CabinetSnapshot{series: make([]*timeseries.RegularSeries, len(cm.series))}
	for i, cs := range cm.series {
		s.series[i] = cs.Clone()
	}
	if next, seq, ok := cm.ticker.Pending(); ok {
		s.tickAt, s.tickSeq, s.tickPending = next, seq, true
	}
	return s
}

// Restore overwrites freshly constructed cabinet meters from a snapshot.
// The node fan-out is not restored: it is a pure function of the facility
// shape and was rebuilt identically at construction.
func (cm *CabinetMeters) Restore(s *CabinetSnapshot, add func(seq uint64, schedule func())) {
	for i := range cm.series {
		cm.series[i] = s.series[i].Clone()
	}
	cm.ticker.Stop()
	if s.tickPending {
		add(s.tickSeq, func() {
			cm.ticker = cm.eng.ResumeEvery(s.tickAt, cm.interval, cm.until, cm.sample)
		})
	}
}

// MemoryFootprint returns the snapshot's retained series bytes.
func (s *CabinetSnapshot) MemoryFootprint() int64 {
	var total int64
	for _, cs := range s.series {
		total += cs.MemoryFootprint()
	}
	return total
}

// AccountantSnapshot is an Accountant's state at a checkpoint.
type AccountantSnapshot struct {
	byClass map[string]ClassUsage
	total   ClassUsage
}

// Snapshot captures the per-class usage aggregates by value.
func (a *Accountant) Snapshot() *AccountantSnapshot {
	s := &AccountantSnapshot{byClass: make(map[string]ClassUsage, len(a.byClass)), total: a.total}
	for name, cu := range a.byClass {
		s.byClass[name] = *cu
	}
	return s
}

// Restore overwrites the accountant's aggregates from a snapshot.
func (a *Accountant) Restore(s *AccountantSnapshot) {
	a.byClass = make(map[string]*ClassUsage, len(s.byClass))
	for name, cu := range s.byClass {
		cu := cu
		a.byClass[name] = &cu
	}
	a.total = s.total
}

// MemoryFootprint returns the snapshot's retained bytes (map entries plus
// class-name strings), matching the core.Results accounting convention.
func (s *AccountantSnapshot) MemoryFootprint() int64 {
	const mapEntryOverhead = 48
	total := int64(unsafe.Sizeof(*s))
	for name := range s.byClass {
		total += int64(len(name)) + int64(unsafe.Sizeof(ClassUsage{})) + mapEntryOverhead
	}
	return total
}

// Snapshot returns a copy of the retained job records.
func (l *JobLog) Snapshot() []JobRecord {
	return append([]JobRecord(nil), l.records...)
}

// Restore replaces the log's contents with its own copy of records; the
// capacity bound keeps its constructed value.
func (l *JobLog) Restore(records []JobRecord) {
	l.records = append([]JobRecord(nil), records...)
}

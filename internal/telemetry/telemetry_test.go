package telemetry

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/workload"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

type stockProvider struct{ spec *cpu.Spec }

func (p stockProvider) JobSettings(*apps.App) (cpu.FreqSetting, cpu.Mode, bool) {
	return p.spec.DefaultSetting(), cpu.PowerDeterminism, false
}

func smallFacility(t *testing.T) *facility.Facility {
	t.Helper()
	cfg := facility.ARCHER2()
	cfg.Nodes = 50
	f, err := facility.New(cfg, rng.New(3), t0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMeterSampling(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	m := NewMeter(eng, fac, MeterConfig{Interval: 15 * time.Minute}, t0.Add(6*time.Hour), nil)
	eng.Run()
	// Samples at 0:15 .. 5:45 (ticker excludes the end bound).
	if got := m.Power().Len(); got != 23 {
		t.Fatalf("samples = %d, want 23", got)
	}
	if m.Utilisation().Len() != m.Power().Len() {
		t.Fatal("power and utilisation series lengths differ")
	}
	// Idle facility: cabinet power = 50 idle nodes + switch fleet.
	want := (50*230 + 768*200) / 1000.0
	if got := m.Power().Mean(); math.Abs(got-want) > 1 {
		t.Fatalf("mean power = %v kW, want ~%v", got, want)
	}
	if got := m.Utilisation().Mean(); got != 0 {
		t.Fatalf("idle utilisation = %v", got)
	}
	if m.DroppedSamples() != 0 {
		t.Fatalf("dropped = %d", m.DroppedSamples())
	}
}

func TestMeterNoise(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	m := NewMeter(eng, fac, MeterConfig{Interval: 5 * time.Minute, NoiseSigma: 0.01},
		t0.Add(48*time.Hour), rng.New(9).Split("meter"))
	eng.Run()
	sum := m.Power().Summary()
	if sum.StdDev == 0 {
		t.Fatal("noise produced constant series")
	}
	// Relative noise ~1%.
	if rel := sum.StdDev / sum.Mean; rel > 0.03 {
		t.Fatalf("noise too large: %v", rel)
	}
}

func TestMeterDropout(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	m := NewMeter(eng, fac, MeterConfig{Interval: time.Minute, DropoutProb: 0.5},
		t0.Add(10*time.Hour), rng.New(11).Split("meter"))
	eng.Run()
	total := m.Power().Len() + m.DroppedSamples()
	if total != 599 {
		t.Fatalf("total tick count = %d, want 599", total)
	}
	frac := float64(m.DroppedSamples()) / float64(total)
	if math.Abs(frac-0.5) > 0.08 {
		t.Fatalf("dropout fraction = %v, want ~0.5", frac)
	}
}

func TestAccountant(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	s := sched.New(eng, fac, stockProvider{fac.Config().CPU}, sched.DefaultConfig())
	a := NewAccountant(s)

	app1 := &apps.App{Name: "a1", Kernel: roofline.Kernel{ComputeFraction: 0.3}, ActCore: 0.5, ActUncore: 0.5}
	app2 := &apps.App{Name: "a2", Kernel: roofline.Kernel{ComputeFraction: 0.7}, ActCore: 1.0, ActUncore: 0.3}
	s.Submit(workload.JobSpec{ID: 1, Class: "alpha", App: app1, Nodes: 4, RefRuntime: 2 * time.Hour})
	s.Submit(workload.JobSpec{ID: 2, Class: "alpha", App: app1, Nodes: 2, RefRuntime: time.Hour})
	s.Submit(workload.JobSpec{ID: 3, Class: "beta", App: app2, Nodes: 8, RefRuntime: 3 * time.Hour})
	eng.Run()

	alpha, beta := a.Class("alpha"), a.Class("beta")
	if alpha.Jobs != 2 || beta.Jobs != 1 {
		t.Fatalf("jobs: alpha %d beta %d", alpha.Jobs, beta.Jobs)
	}
	if alpha.NodeHours < 9 || alpha.NodeHours > 11 {
		t.Fatalf("alpha node hours = %v, want ~10", alpha.NodeHours)
	}
	if beta.NodeHours < 22 || beta.NodeHours > 26 {
		t.Fatalf("beta node hours = %v, want ~24", beta.NodeHours)
	}
	tot := a.Total()
	if tot.Jobs != 3 {
		t.Fatalf("total jobs = %d", tot.Jobs)
	}
	if got := alpha.Energy.Joules() + beta.Energy.Joules(); math.Abs(got-tot.Energy.Joules()) > 1 {
		t.Fatal("class energies do not sum to total")
	}
	// Energy per node-hour: a busy node draws 300-700 W -> 0.3-0.7 kWh/nodeh.
	e := a.EnergyPerNodeHour()
	if e < 0.25 || e > 0.8 {
		t.Fatalf("energy per node-hour = %v kWh", e)
	}
	if len(a.Classes()) != 2 {
		t.Fatalf("classes = %v", a.Classes())
	}
	if a.Class("missing").Jobs != 0 {
		t.Fatal("missing class not zero")
	}
}

func TestAccountantEmpty(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	s := sched.New(eng, fac, stockProvider{fac.Config().CPU}, sched.DefaultConfig())
	a := NewAccountant(s)
	if a.EnergyPerNodeHour() != 0 {
		t.Fatal("empty accountant nonzero energy rate")
	}
}

func TestMeterSeesLoadChange(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	s := sched.New(eng, fac, stockProvider{fac.Config().CPU}, sched.DefaultConfig())
	m := NewMeter(eng, fac, MeterConfig{Interval: 10 * time.Minute}, t0.Add(8*time.Hour), nil)
	app := &apps.App{Name: "x", Kernel: roofline.Kernel{ComputeFraction: 0.5}, ActCore: 0.8, ActUncore: 0.8}
	// Load the whole machine for the middle 4 hours.
	eng.At(t0.Add(2*time.Hour), func(time.Time) {
		s.Submit(workload.JobSpec{ID: 1, App: app, Class: "x", Nodes: 50, RefRuntime: 4 * time.Hour})
	})
	eng.Run()
	early := m.Power().MeanBetween(t0, t0.Add(2*time.Hour))
	mid := m.Power().MeanBetween(t0.Add(3*time.Hour), t0.Add(5*time.Hour))
	if mid <= early {
		t.Fatalf("meter missed load: %v -> %v", early, mid)
	}
	// Utilisation series reflects the busy window.
	u := m.Utilisation().MeanBetween(t0.Add(3*time.Hour), t0.Add(5*time.Hour))
	if u != 1 {
		t.Fatalf("mid-window utilisation = %v", u)
	}
}

package telemetry

import (
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

func logRig(t *testing.T) (*des.Engine, *sched.Scheduler, *JobLog, *apps.App) {
	t.Helper()
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	s := sched.New(eng, fac, stockProvider{fac.Config().CPU}, sched.DefaultConfig())
	l := NewJobLog(s, 0)
	app := &apps.App{Name: "logged-app", Kernel: roofline.Kernel{ComputeFraction: 0.4},
		ActCore: 0.7, ActUncore: 0.5}
	return eng, s, l, app
}

func TestJobLogRecords(t *testing.T) {
	eng, s, l, app := logRig(t)
	s.Submit(workload.JobSpec{ID: 1, Class: "a", App: app, Nodes: 4, RefRuntime: 2 * time.Hour})
	s.Submit(workload.JobSpec{ID: 2, Class: "b", App: app, Nodes: 2, RefRuntime: time.Hour})
	eng.Run()
	if l.Len() != 2 {
		t.Fatalf("records = %d", l.Len())
	}
	recs := l.Records()
	for _, r := range recs {
		if r.State != sched.Completed {
			t.Errorf("job %d state = %v", r.ID, r.State)
		}
		if r.Energy.Joules() <= 0 || r.NodeHours() <= 0 {
			t.Errorf("job %d empty accounting", r.ID)
		}
		// A busy node draws 0.3-0.8 kWh per node-hour.
		if k := r.KWhPerNodeHour(); k < 0.2 || k > 1.0 {
			t.Errorf("job %d intensity %v kWh/nodeh", r.ID, k)
		}
		if r.Setting == "" || r.App != "logged-app" {
			t.Errorf("job %d metadata: %+v", r.ID, r)
		}
	}
	if (JobRecord{}).KWhPerNodeHour() != 0 {
		t.Error("zero-length record intensity nonzero")
	}
}

func TestJobLogCapFIFO(t *testing.T) {
	fac := smallFacility(t)
	eng := des.NewEngine(t0)
	s := sched.New(eng, fac, stockProvider{fac.Config().CPU}, sched.DefaultConfig())
	l := NewJobLog(s, 3)
	app := &apps.App{Name: "x", ActCore: 0.5, ActUncore: 0.5}
	for i := 1; i <= 5; i++ {
		s.Submit(workload.JobSpec{ID: i, Class: "c", App: app, Nodes: 1,
			RefRuntime: time.Duration(i) * time.Hour})
	}
	eng.Run()
	if l.Len() != 3 {
		t.Fatalf("capped records = %d", l.Len())
	}
	// The three longest (latest-finishing) jobs remain: IDs 3, 4, 5.
	for _, r := range l.Records() {
		if r.ID < 3 {
			t.Fatalf("old record %d retained", r.ID)
		}
	}
}

func TestJobLogCSV(t *testing.T) {
	eng, s, l, app := logRig(t)
	s.Submit(workload.JobSpec{ID: 7, Class: "alpha", App: app, Nodes: 3, RefRuntime: time.Hour})
	eng.Run()
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "jobid,class,app,nodes,") {
		t.Fatalf("bad header: %q", out[:40])
	}
	if !strings.Contains(out, "7,alpha,logged-app,3,") {
		t.Fatalf("row missing:\n%s", out)
	}
	if !strings.Contains(out, "completed") || !strings.Contains(out, "2.25 GHz+boost") {
		t.Fatalf("state/setting missing:\n%s", out)
	}
}

func TestJobLogAggregations(t *testing.T) {
	eng, s, l, app := logRig(t)
	s.Submit(workload.JobSpec{ID: 1, Class: "a", App: app, Nodes: 8, RefRuntime: 4 * time.Hour})
	s.Submit(workload.JobSpec{ID: 2, Class: "a", App: app, Nodes: 1, RefRuntime: time.Hour})
	s.Submit(workload.JobSpec{ID: 3, Class: "b", App: app, Nodes: 2, RefRuntime: time.Hour})
	eng.Run()

	by := l.EnergyByClass()
	if by["a"].Jobs != 2 || by["b"].Jobs != 1 {
		t.Fatalf("class jobs: %+v", by)
	}
	if by["a"].Energy <= by["b"].Energy {
		t.Fatal("class a should dominate energy")
	}

	top := l.TopConsumers(2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].ID != 1 {
		t.Fatalf("top consumer = job %d", top[0].ID)
	}
	if top[0].Energy < top[1].Energy {
		t.Fatal("top consumers not descending")
	}
	if got := l.TopConsumers(0); got != nil {
		t.Fatal("TopConsumers(0) nonzero")
	}
	if got := l.TopConsumers(10); len(got) != 3 {
		t.Fatalf("TopConsumers(10) = %d", len(got))
	}
	if !strings.Contains(l.String(), "3 records") {
		t.Fatalf("summary = %q", l.String())
	}
}

func TestJobRecordsCSVRoundTrip(t *testing.T) {
	eng, s, l, app := logRig(t)
	s.Submit(workload.JobSpec{ID: 1, Class: "a", App: app, Nodes: 4, RefRuntime: 2 * time.Hour})
	s.Submit(workload.JobSpec{ID: 2, Class: "b", App: app, Nodes: 2, RefRuntime: time.Hour})
	eng.Run()

	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJobRecords(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != l.Len() {
		t.Fatalf("round trip %d != %d", len(back), l.Len())
	}
	for i, r := range back {
		o := l.Records()[i]
		if r.ID != o.ID || r.Class != o.Class || r.Nodes != o.Nodes ||
			r.State != o.State || r.Setting != o.Setting {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, o)
		}
		// Energy preserved to CSV precision (3 decimals of kWh).
		if d := r.Energy.KilowattHours() - o.Energy.KilowattHours(); d > 0.001 || d < -0.001 {
			t.Fatalf("record %d energy drift %v", i, d)
		}
		if !r.Start.Equal(o.Start.Truncate(time.Second)) && !r.Start.Equal(o.Start) {
			t.Fatalf("record %d start mismatch", i)
		}
	}
}

func TestReadJobRecordsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "x,y\n",
		"bad id":     "jobid,class,app,nodes,submit,start,end,state,freq_setting,override,energy_kwh,kwh_per_nodeh\nxx,c,a,1,2022-01-01T00:00:00Z,2022-01-01T00:00:00Z,2022-01-01T01:00:00Z,completed,2 GHz,false,1.0,1.0\n",
		"bad nodes":  "jobid,class,app,nodes,submit,start,end,state,freq_setting,override,energy_kwh,kwh_per_nodeh\n1,c,a,0,2022-01-01T00:00:00Z,2022-01-01T00:00:00Z,2022-01-01T01:00:00Z,completed,2 GHz,false,1.0,1.0\n",
		"bad state":  "jobid,class,app,nodes,submit,start,end,state,freq_setting,override,energy_kwh,kwh_per_nodeh\n1,c,a,1,2022-01-01T00:00:00Z,2022-01-01T00:00:00Z,2022-01-01T01:00:00Z,queued,2 GHz,false,1.0,1.0\n",
		"bad energy": "jobid,class,app,nodes,submit,start,end,state,freq_setting,override,energy_kwh,kwh_per_nodeh\n1,c,a,1,2022-01-01T00:00:00Z,2022-01-01T00:00:00Z,2022-01-01T01:00:00Z,completed,2 GHz,false,-1,1.0\n",
		"bad time":   "jobid,class,app,nodes,submit,start,end,state,freq_setting,override,energy_kwh,kwh_per_nodeh\n1,c,a,1,nope,2022-01-01T00:00:00Z,2022-01-01T01:00:00Z,completed,2 GHz,false,1.0,1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadJobRecords(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// syntheticLog builds a log of n records directly (no scheduler), with
// deliberately repeated energies so tie-breaking is exercised.
func syntheticLog(n int) *JobLog {
	l := &JobLog{}
	for i := 0; i < n; i++ {
		l.append(JobRecord{
			ID:     i,
			Class:  [3]string{"a", "b", "c"}[i%3],
			Nodes:  1 + i%7,
			Start:  t0,
			End:    t0.Add(time.Duration(1+i%5) * time.Hour),
			Energy: units.KilowattHours(float64((i * 7919) % 97)),
		})
	}
	return l
}

// TopConsumers' bounded-insertion selection must return exactly what the
// obvious reference (sort by energy descending, ties by earliest record)
// returns, for every cut size.
func TestTopConsumersMatchesReference(t *testing.T) {
	l := syntheticLog(500)
	ref := append([]JobRecord(nil), l.Records()...)
	sort.SliceStable(ref, func(a, b int) bool { return ref[a].Energy > ref[b].Energy })
	for _, n := range []int{1, 2, 3, 10, 96, 97, 499, 500, 1000} {
		got := l.TopConsumers(n)
		want := ref
		if n < len(want) {
			want = want[:n]
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d records, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("n=%d: position %d is job %d (E=%v), want job %d (E=%v)",
					n, i, got[i].ID, got[i].Energy, want[i].ID, want[i].Energy)
			}
		}
	}
}

// The regression benchmarks for the satellite fix: TopConsumers was a
// rescan-per-pick selection (O(n * len)), EnergyByClass rebuilt its map
// without a size hint.
func BenchmarkJobLogTopConsumers(b *testing.B) {
	l := syntheticLog(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := l.TopConsumers(100); len(got) != 100 {
			b.Fatal("short result")
		}
	}
}

func BenchmarkJobLogEnergyByClass(b *testing.B) {
	l := syntheticLog(10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if by := l.EnergyByClass(); len(by) != 3 {
			b.Fatal("missing classes")
		}
	}
}

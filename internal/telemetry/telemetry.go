// Package telemetry is the twin's measurement pipeline, standing in for
// the HPE PMDB cabinet power monitoring used in the paper: periodic
// sampling of cabinet power and utilisation into time series (with
// optional meter noise and sample dropout), and per-job energy accounting
// in the style of Slurm's sacct energy counters.
package telemetry

import (
	"time"

	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// MeterConfig parameterises a cabinet power meter.
type MeterConfig struct {
	// Interval between samples (ARCHER2 PMDB-like: 15 minutes).
	Interval time.Duration
	// NoiseSigma is multiplicative gaussian meter noise (e.g. 0.003 for
	// 0.3%); 0 disables noise.
	NoiseSigma float64
	// DropoutProb is the probability a sample is lost (telemetry gap).
	DropoutProb float64
}

// DefaultMeterConfig returns PMDB-like sampling.
func DefaultMeterConfig() MeterConfig {
	return MeterConfig{Interval: 15 * time.Minute, NoiseSigma: 0.003}
}

// Meter samples a facility on the simulation clock.
type Meter struct {
	cfg     MeterConfig
	power   timeseries.Appender
	util    timeseries.Appender
	dropped int
	r       *rng.Stream

	// eng/until/tick and the live ticker are retained so a checkpoint can
	// capture the pending sample tick and a fork can resume the tick
	// train mid-cadence (see snapshot.go).
	eng    *des.Engine
	until  time.Time
	tick   des.Event
	ticker *des.Ticker
}

// NewMeter attaches a meter to the facility on engine eng, sampling from
// start+Interval until `until`. The stream r drives noise and dropout; it
// may be nil when both are disabled.
//
// Storage layout follows the dropout setting: a dropout-free meter ticks
// on an exact cadence and records into the compact timeseries.RegularSeries
// (8 bytes per sample, implicit timestamps); with dropout enabled, lost
// ticks leave gaps, so the explicit-timestamp Series is used instead.
// Either way the sampled (time, value) stream — and every digest over
// it — is identical.
func NewMeter(eng *des.Engine, fac *facility.Facility, cfg MeterConfig, until time.Time, r *rng.Stream) *Meter {
	// Pre-size for the whole run horizon: a 13-month run at the PMDB
	// cadence is ~38k samples per series, appended one per tick — sizing
	// up front makes the append path allocation-free.
	capacity := 0
	if horizon := until.Sub(eng.Now()); horizon > 0 && cfg.Interval > 0 {
		capacity = int(horizon/cfg.Interval) + 1
	}
	m := &Meter{cfg: cfg, r: r}
	if cfg.DropoutProb > 0 {
		m.power = timeseries.NewWithCapacity("cabinet_power", "kW", capacity)
		m.util = timeseries.NewWithCapacity("utilisation", "fraction", capacity)
	} else {
		m.power = timeseries.NewRegular("cabinet_power", "kW", cfg.Interval, capacity)
		m.util = timeseries.NewRegular("utilisation", "fraction", cfg.Interval, capacity)
	}
	m.eng, m.until = eng, until
	m.tick = func(now time.Time) {
		if m.cfg.DropoutProb > 0 && m.r != nil && m.r.Float64() < m.cfg.DropoutProb {
			m.dropped++
			return
		}
		p := fac.CabinetPower().Kilowatts()
		if m.cfg.NoiseSigma > 0 && m.r != nil {
			p *= 1 + m.r.Normal(0, m.cfg.NoiseSigma)
		}
		m.power.MustAppend(now, p)
		m.util.MustAppend(now, fac.Utilisation())
	}
	m.ticker = eng.Every(cfg.Interval, until, m.tick)
	return m
}

// Power returns the cabinet power series (kW).
func (m *Meter) Power() timeseries.View { return m.power }

// Utilisation returns the utilisation series.
func (m *Meter) Utilisation() timeseries.View { return m.util }

// DroppedSamples returns how many samples were lost to dropout.
func (m *Meter) DroppedSamples() int { return m.dropped }

// ClassUsage aggregates delivered work and energy per workload class.
type ClassUsage struct {
	Jobs      int
	NodeHours float64
	Energy    units.Energy
}

// Accountant aggregates per-job accounting by workload class, in the style
// of the service's accounting database.
type Accountant struct {
	byClass map[string]*ClassUsage
	total   ClassUsage
}

// NewAccountant creates an Accountant and registers it on the scheduler.
func NewAccountant(s *sched.Scheduler) *Accountant {
	a := &Accountant{byClass: make(map[string]*ClassUsage)}
	s.OnJobEnd(a.record)
	return a
}

func (a *Accountant) record(j *sched.Job) {
	cu := a.byClass[j.Spec.Class]
	if cu == nil {
		cu = &ClassUsage{}
		a.byClass[j.Spec.Class] = cu
	}
	nh := float64(len(j.Nodes)) * j.Runtime.Hours()
	cu.Jobs++
	cu.NodeHours += nh
	cu.Energy += j.Energy
	a.total.Jobs++
	a.total.NodeHours += nh
	a.total.Energy += j.Energy
}

// Class returns usage for one class (zero value if unseen).
func (a *Accountant) Class(name string) ClassUsage {
	if cu, ok := a.byClass[name]; ok {
		return *cu
	}
	return ClassUsage{}
}

// Classes returns the names of all recorded classes.
func (a *Accountant) Classes() []string {
	out := make([]string, 0, len(a.byClass))
	for name := range a.byClass {
		out = append(out, name)
	}
	return out
}

// Total returns facility-wide usage.
func (a *Accountant) Total() ClassUsage { return a.total }

// EnergyPerNodeHour returns the fleet mean energy cost of a delivered
// node-hour, the paper's core efficiency currency (kWh/nodeh). Returns 0
// before any job completes.
func (a *Accountant) EnergyPerNodeHour() float64 {
	if a.total.NodeHours == 0 {
		return 0
	}
	return a.total.Energy.KilowattHours() / a.total.NodeHours
}

// Package units provides typed physical quantities used throughout the
// facility model: power, energy, frequency, carbon intensity and CO2e mass.
//
// All quantities are stored in SI base units (watts, joules, hertz,
// grams CO2e) as float64 wrappers. The distinct types prevent the classic
// power-vs-energy and kW-vs-W unit mistakes at compile time, while the
// conversion methods keep call sites readable:
//
//	p := units.Kilowatts(3220)
//	e := p.EnergyOver(24 * time.Hour) // 77,280 kWh
//
// The types mirror the paper's reporting units: cabinet power in kW
// (Figures 1-3), energy in kWh/MWh, grid carbon intensity in gCO2/kWh
// (§2) and emissions masses in tCO2e.
package units

import (
	"fmt"
	"math"
	"time"
)

// Power is an instantaneous power draw, stored in watts.
type Power float64

// Power constructors.
func Watts(w float64) Power      { return Power(w) }
func Kilowatts(kw float64) Power { return Power(kw * 1e3) }
func Megawatts(mw float64) Power { return Power(mw * 1e6) }

// Watts returns the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// Kilowatts returns the power in kilowatts.
func (p Power) Kilowatts() float64 { return float64(p) / 1e3 }

// Megawatts returns the power in megawatts.
func (p Power) Megawatts() float64 { return float64(p) / 1e6 }

// EnergyOver returns the energy consumed if this power is sustained for d.
func (p Power) EnergyOver(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Scale returns p multiplied by the dimensionless factor k.
func (p Power) Scale(k float64) Power { return Power(float64(p) * k) }

// String renders the power with an auto-selected scale, e.g. "3.22 MW".
func (p Power) String() string {
	w := math.Abs(float64(p))
	switch {
	case w >= 1e6:
		return fmt.Sprintf("%.3g MW", p.Megawatts())
	case w >= 1e3:
		return fmt.Sprintf("%.4g kW", p.Kilowatts())
	default:
		return fmt.Sprintf("%.4g W", float64(p))
	}
}

// Energy is an amount of energy, stored in joules.
type Energy float64

// Energy constructors.
func Joules(j float64) Energy          { return Energy(j) }
func KilowattHours(kwh float64) Energy { return Energy(kwh * 3.6e6) }
func MegawattHours(mwh float64) Energy { return Energy(mwh * 3.6e9) }
func GigawattHours(gwh float64) Energy { return Energy(gwh * 3.6e12) }

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// KilowattHours returns the energy in kWh.
func (e Energy) KilowattHours() float64 { return float64(e) / 3.6e6 }

// MegawattHours returns the energy in MWh.
func (e Energy) MegawattHours() float64 { return float64(e) / 3.6e9 }

// GigawattHours returns the energy in GWh.
func (e Energy) GigawattHours() float64 { return float64(e) / 3.6e12 }

// MeanPowerOver returns the mean power that delivers this energy over d.
// It returns 0 for non-positive durations.
func (e Energy) MeanPowerOver(d time.Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// Scale returns e multiplied by the dimensionless factor k.
func (e Energy) Scale(k float64) Energy { return Energy(float64(e) * k) }

// Emissions returns the scope-2 CO2e mass from generating this energy at the
// given carbon intensity.
func (e Energy) Emissions(ci CarbonIntensity) Mass {
	return Mass(e.KilowattHours() * float64(ci))
}

// String renders the energy with an auto-selected scale, e.g. "77.3 MWh".
func (e Energy) String() string {
	j := math.Abs(float64(e))
	switch {
	case j >= 3.6e12:
		return fmt.Sprintf("%.4g GWh", e.GigawattHours())
	case j >= 3.6e9:
		return fmt.Sprintf("%.4g MWh", e.MegawattHours())
	case j >= 3.6e6:
		return fmt.Sprintf("%.4g kWh", e.KilowattHours())
	case j >= 1e3:
		return fmt.Sprintf("%.4g kJ", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.4g J", float64(e))
	}
}

// Frequency is a clock frequency, stored in hertz.
type Frequency float64

// Frequency constructors.
func Hertz(hz float64) Frequency      { return Frequency(hz) }
func Megahertz(mhz float64) Frequency { return Frequency(mhz * 1e6) }
func Gigahertz(ghz float64) Frequency { return Frequency(ghz * 1e9) }

// Hertz returns the frequency in Hz.
func (f Frequency) Hertz() float64 { return float64(f) }

// Gigahertz returns the frequency in GHz.
func (f Frequency) Gigahertz() float64 { return float64(f) / 1e9 }

// Ratio returns f divided by g. It returns +Inf when g is zero and f is
// positive, mirroring float64 division.
func (f Frequency) Ratio(g Frequency) float64 { return float64(f) / float64(g) }

// String renders the frequency, e.g. "2.25 GHz".
func (f Frequency) String() string {
	hz := math.Abs(float64(f))
	switch {
	case hz >= 1e9:
		return fmt.Sprintf("%.4g GHz", f.Gigahertz())
	case hz >= 1e6:
		return fmt.Sprintf("%.4g MHz", float64(f)/1e6)
	default:
		return fmt.Sprintf("%.4g Hz", float64(f))
	}
}

// CarbonIntensity is grid carbon intensity in grams CO2e per kilowatt-hour.
type CarbonIntensity float64

// GramsPerKWh constructs a carbon intensity.
func GramsPerKWh(g float64) CarbonIntensity { return CarbonIntensity(g) }

// GramsPerKWh returns the intensity in gCO2e/kWh.
func (ci CarbonIntensity) GramsPerKWh() float64 { return float64(ci) }

// String renders the intensity, e.g. "65 gCO2/kWh".
func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.4g gCO2/kWh", float64(ci))
}

// Mass is a mass of CO2-equivalent, stored in grams.
type Mass float64

// Mass constructors.
func Grams(g float64) Mass       { return Mass(g) }
func Kilograms(kg float64) Mass  { return Mass(kg * 1e3) }
func Tonnes(t float64) Mass      { return Mass(t * 1e6) }
func Kilotonnes(kt float64) Mass { return Mass(kt * 1e9) }

// Grams returns the mass in grams.
func (m Mass) Grams() float64 { return float64(m) }

// Kilograms returns the mass in kilograms.
func (m Mass) Kilograms() float64 { return float64(m) / 1e3 }

// Tonnes returns the mass in tonnes.
func (m Mass) Tonnes() float64 { return float64(m) / 1e6 }

// Kilotonnes returns the mass in kilotonnes.
func (m Mass) Kilotonnes() float64 { return float64(m) / 1e9 }

// Scale returns m multiplied by the dimensionless factor k.
func (m Mass) Scale(k float64) Mass { return Mass(float64(m) * k) }

// String renders the mass with an auto-selected scale, e.g. "2 ktCO2e".
func (m Mass) String() string {
	g := math.Abs(float64(m))
	switch {
	case g >= 1e9:
		return fmt.Sprintf("%.4g ktCO2e", m.Kilotonnes())
	case g >= 1e6:
		return fmt.Sprintf("%.4g tCO2e", m.Tonnes())
	case g >= 1e3:
		return fmt.Sprintf("%.4g kgCO2e", m.Kilograms())
	default:
		return fmt.Sprintf("%.4g gCO2e", float64(m))
	}
}

// Cost is a monetary amount in an unspecified currency (the service's
// operating currency; GBP for ARCHER2). Stored as a plain value.
type Cost float64

// CostPerKWh is an electricity tariff.
type CostPerKWh float64

// Over returns the cost of the given energy at this tariff.
func (c CostPerKWh) Over(e Energy) Cost { return Cost(float64(c) * e.KilowattHours()) }

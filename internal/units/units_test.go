package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestPowerConversions(t *testing.T) {
	cases := []struct {
		p  Power
		w  float64
		kw float64
		mw float64
	}{
		{Watts(510), 510, 0.51, 0.00051},
		{Kilowatts(3220), 3.22e6, 3220, 3.22},
		{Megawatts(3.5), 3.5e6, 3500, 3.5},
		{Watts(0), 0, 0, 0},
	}
	for _, c := range cases {
		if got := c.p.Watts(); !almostEqual(got, c.w, 1e-12) {
			t.Errorf("Watts() = %v, want %v", got, c.w)
		}
		if got := c.p.Kilowatts(); !almostEqual(got, c.kw, 1e-12) {
			t.Errorf("Kilowatts() = %v, want %v", got, c.kw)
		}
		if got := c.p.Megawatts(); !almostEqual(got, c.mw, 1e-12) {
			t.Errorf("Megawatts() = %v, want %v", got, c.mw)
		}
	}
}

func TestPowerEnergyOver(t *testing.T) {
	// 3220 kW for 24h = 77,280 kWh.
	e := Kilowatts(3220).EnergyOver(24 * time.Hour)
	if got := e.KilowattHours(); !almostEqual(got, 77280, 1e-12) {
		t.Fatalf("energy = %v kWh, want 77280", got)
	}
	// Round trip back to mean power.
	p := e.MeanPowerOver(24 * time.Hour)
	if got := p.Kilowatts(); !almostEqual(got, 3220, 1e-12) {
		t.Fatalf("mean power = %v kW, want 3220", got)
	}
}

func TestMeanPowerOverZeroDuration(t *testing.T) {
	if got := KilowattHours(10).MeanPowerOver(0); got != 0 {
		t.Fatalf("MeanPowerOver(0) = %v, want 0", got)
	}
	if got := KilowattHours(10).MeanPowerOver(-time.Second); got != 0 {
		t.Fatalf("MeanPowerOver(<0) = %v, want 0", got)
	}
}

func TestEnergyConversions(t *testing.T) {
	e := KilowattHours(1)
	if got := e.Joules(); !almostEqual(got, 3.6e6, 1e-12) {
		t.Errorf("1 kWh = %v J, want 3.6e6", got)
	}
	if got := MegawattHours(1).KilowattHours(); !almostEqual(got, 1000, 1e-12) {
		t.Errorf("1 MWh = %v kWh, want 1000", got)
	}
	if got := GigawattHours(1).MegawattHours(); !almostEqual(got, 1000, 1e-12) {
		t.Errorf("1 GWh = %v MWh, want 1000", got)
	}
}

func TestEmissionsCalculation(t *testing.T) {
	// 1 MWh at 100 g/kWh = 100 kg CO2e.
	m := MegawattHours(1).Emissions(GramsPerKWh(100))
	if got := m.Kilograms(); !almostEqual(got, 100, 1e-12) {
		t.Fatalf("emissions = %v kg, want 100", got)
	}
	// Facility-scale check: 3.5 MW for a year at 65 g/kWh ~ 1993 tCO2e.
	e := Megawatts(3.5).EnergyOver(8760 * time.Hour)
	m = e.Emissions(GramsPerKWh(65))
	if got := m.Tonnes(); !almostEqual(got, 3.5*8760*65/1000, 1e-9) {
		t.Fatalf("annual emissions = %v t, want %v", got, 3.5*8760*65/1000)
	}
}

func TestMassConversions(t *testing.T) {
	if got := Tonnes(2).Kilograms(); !almostEqual(got, 2000, 1e-12) {
		t.Errorf("2 t = %v kg", got)
	}
	if got := Kilotonnes(12).Tonnes(); !almostEqual(got, 12000, 1e-12) {
		t.Errorf("12 kt = %v t", got)
	}
	if got := Kilograms(1).Grams(); !almostEqual(got, 1000, 1e-12) {
		t.Errorf("1 kg = %v g", got)
	}
}

func TestFrequencyRatio(t *testing.T) {
	r := Gigahertz(2.0).Ratio(Gigahertz(2.8))
	if !almostEqual(r, 2.0/2.8, 1e-12) {
		t.Fatalf("ratio = %v, want %v", r, 2.0/2.8)
	}
	if got := Megahertz(2250).Gigahertz(); !almostEqual(got, 2.25, 1e-12) {
		t.Fatalf("2250 MHz = %v GHz", got)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{Kilowatts(3220).String(), "MW"},
		{Watts(510).String(), "W"},
		{Kilowatts(2.5).String(), "kW"},
		{KilowattHours(1).String(), "kWh"},
		{GigawattHours(30).String(), "GWh"},
		{Gigahertz(2.25).String(), "GHz"},
		{Tonnes(2000).String(), "ktCO2e"},
		{Kilograms(5).String(), "kgCO2e"},
		{GramsPerKWh(65).String(), "gCO2/kWh"},
	}
	for _, c := range cases {
		if !strings.Contains(c.s, c.want) {
			t.Errorf("%q does not contain unit %q", c.s, c.want)
		}
	}
}

func TestCostPerKWh(t *testing.T) {
	// 30 GWh at 0.25/kWh = 7.5M.
	c := CostPerKWh(0.25).Over(GigawattHours(30))
	if !almostEqual(float64(c), 7.5e6, 1e-12) {
		t.Fatalf("cost = %v, want 7.5e6", float64(c))
	}
}

// Property: energy over a duration then mean power over the same duration is
// the identity (for positive durations).
func TestPropertyPowerEnergyRoundTrip(t *testing.T) {
	f := func(kw float64, hours uint8) bool {
		if math.IsNaN(kw) || math.IsInf(kw, 0) || math.Abs(kw) > 1e12 {
			return true // out of modelled range
		}
		d := time.Duration(int(hours)+1) * time.Hour
		p := Kilowatts(kw)
		back := p.EnergyOver(d).MeanPowerOver(d)
		return almostEqual(back.Watts(), p.Watts(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: emissions are additive in energy and linear in intensity.
func TestPropertyEmissionsLinear(t *testing.T) {
	f := func(a, b float64, ci float64) bool {
		if !finiteInRange(a, 1e9) || !finiteInRange(b, 1e9) || !finiteInRange(ci, 1e6) {
			return true
		}
		ea, eb := KilowattHours(a), KilowattHours(b)
		g := GramsPerKWh(ci)
		sum := Energy(float64(ea) + float64(eb)).Emissions(g)
		parts := Mass(float64(ea.Emissions(g)) + float64(eb.Emissions(g)))
		return almostEqual(float64(sum), float64(parts), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func finiteInRange(x, lim float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) <= lim
}

func TestScale(t *testing.T) {
	if got := Kilowatts(100).Scale(0.93).Kilowatts(); !almostEqual(got, 93, 1e-12) {
		t.Errorf("power scale = %v", got)
	}
	if got := KilowattHours(100).Scale(0.5).KilowattHours(); !almostEqual(got, 50, 1e-12) {
		t.Errorf("energy scale = %v", got)
	}
	if got := Tonnes(10).Scale(1.5).Tonnes(); !almostEqual(got, 15, 1e-12) {
		t.Errorf("mass scale = %v", got)
	}
}

func TestRemainingAccessors(t *testing.T) {
	if got := KilowattHours(1).Joules(); !almostEqual(got, 3.6e6, 1e-12) {
		t.Errorf("Joules() = %v", got)
	}
	if got := Hertz(50).Hertz(); got != 50 {
		t.Errorf("Hertz() = %v", got)
	}
	if got := Gigahertz(2).Hertz(); !almostEqual(got, 2e9, 1e-12) {
		t.Errorf("GHz Hertz() = %v", got)
	}
	if got := GramsPerKWh(65).GramsPerKWh(); got != 65 {
		t.Errorf("GramsPerKWh() = %v", got)
	}
	if got := Kilograms(2).Grams(); !almostEqual(got, 2000, 1e-12) {
		t.Errorf("Grams() = %v", got)
	}
}

func TestStringScaleBranches(t *testing.T) {
	cases := []struct{ s, want string }{
		{KilowattHours(0.001).String(), "kJ"},
		{Joules(12).String(), "J"},
		{GigawattHours(2).String(), "GWh"},
		{MegawattHours(5).String(), "MWh"},
		{Hertz(10).String(), "Hz"},
		{Megahertz(250).String(), "MHz"},
		{Grams(3).String(), "gCO2e"},
		{Tonnes(4).String(), "tCO2e"},
	}
	for _, c := range cases {
		if !strings.Contains(c.s, c.want) {
			t.Errorf("%q missing %q", c.s, c.want)
		}
	}
}

package fabric_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/fabric"
	"github.com/greenhpc/archertwin/internal/faultinject"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// TestFabricByteIdenticalUnderInjectedFaults drives the coordinator
// through seeded network-fault schedules — dropped connections, delays,
// duplicated shard dispatches, truncated response bodies — and asserts
// every schedule still merges to results byte-identical to a direct
// single-process run. The fault budget stays below the worker count, so
// a survivor always remains for the re-shard rounds.
func TestFabricByteIdenticalUnderInjectedFaults(t *testing.T) {
	ctx := context.Background()
	direct, err := (&scenario.Runner{Workers: 2}).Run(ctx, fabricSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantTables, wantDigests := rendered(t, direct)

	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			workers := make([]*httptest.Server, 4)
			for i := range workers {
				workers[i] = newWorker(t, nil)
			}
			// One seeded transport shared by every worker client: the
			// schedule spans the whole sweep's traffic. Budget 2 faults —
			// each can cost a worker its membership, and two losses still
			// leave survivors to re-shard onto.
			tr := faultinject.NewTransport(uint64(seed), nil)
			tr.MaxFaults = 2
			coord := fabric.New(fabric.Config{
				Backoff:      5 * time.Millisecond,
				ShardTimeout: time.Minute,
				MaxRounds:    6,
				NewClient: func(baseURL string) *api.Client {
					c := api.NewClient(baseURL)
					c.HTTPClient = &http.Client{Transport: tr}
					return c
				},
			})
			for _, w := range workers {
				coord.Join(w.URL)
			}
			res, err := coord.Run(ctx, fabricSpec(), nil)
			if err != nil {
				t.Fatalf("sweep failed under %d injected faults: %v", tr.Faults(), err)
			}
			gotTables, gotDigests := rendered(t, res)
			for i := range wantTables {
				if gotTables[i] != wantTables[i] {
					t.Errorf("table %d differs from single-process render under faults:\n--- direct ---\n%s\n--- fabric ---\n%s",
						i, wantTables[i], gotTables[i])
				}
			}
			for i := range wantDigests {
				if gotDigests[i] != wantDigests[i] {
					t.Errorf("scenario %d digest %s != direct %s (faults=%d)",
						i, gotDigests[i], wantDigests[i], tr.Faults())
				}
			}
		})
	}
}

package fabric

import (
	"encoding/json"
	"net/http"
	"net/url"

	"github.com/greenhpc/archertwin/internal/api"
)

// Handler wraps next (normally the service handler) with the
// coordinator's membership endpoints:
//
//	POST /v1/workers   worker join / heartbeat
//	GET  /v1/workers   live membership
//
// Everything else falls through to next. See docs/api.md for the wire
// reference.
func Handler(c *Coordinator, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathPrefix+"/workers" {
			next.ServeHTTP(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			api.WriteJSON(w, http.StatusOK, c.Workers())
		case http.MethodPost:
			var req api.JoinRequest
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
				api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest, "invalid join request: "+err.Error())
				return
			}
			u, err := url.Parse(req.URL)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest, "join url must be absolute http(s)")
				return
			}
			c.Join(req.URL)
			api.WriteJSON(w, http.StatusOK, c.Workers())
		default:
			api.WriteMethodNotAllowed(w, "GET, POST")
		}
	})
}

package fabric

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8990", i+1)
	}
	return out
}

// TestRingDeterministic: lookup is a pure function of the membership set
// and the key — construction order and repetition must not matter.
func TestRingDeterministic(t *testing.T) {
	members := ringMembers(5)
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	a, b := newRing(members), newRing(reversed)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("scenario-key-%d", i)
		if got, want := b.lookup(key), a.lookup(key); got != want {
			t.Fatalf("lookup(%q) depends on construction order: %q vs %q", key, got, want)
		}
		if again := a.lookup(key); again != a.lookup(key) {
			t.Fatalf("lookup(%q) not stable", key)
		}
	}
}

// TestRingDistribution: with vnodes, every member of a small cluster
// owns a non-trivial share of keys.
func TestRingDistribution(t *testing.T) {
	members := ringMembers(4)
	r := newRing(members)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("scenario-key-%d", i))]++
	}
	for _, m := range members {
		if counts[m] < keys/len(members)/4 {
			t.Errorf("member %s owns only %d/%d keys — distribution collapsed", m, counts[m], keys)
		}
	}
}

// TestRingMinimalDisruption: removing one member only remaps the keys it
// owned; every other key keeps its owner. This is what makes one worker
// loss re-shard one worker's slice instead of reshuffling the sweep.
func TestRingMinimalDisruption(t *testing.T) {
	members := ringMembers(5)
	full := newRing(members)
	without := newRing(members[1:]) // drop members[0]
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("scenario-key-%d", i)
		before, after := full.lookup(key), without.lookup(key)
		switch {
		case before == members[0]:
			moved++
			if after == members[0] {
				t.Fatalf("key %q still maps to the removed member", key)
			}
		case before != after:
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Error("removed member owned no keys; distribution test should have caught this")
	}
}

// TestRingDedupAndEmpty: duplicate and empty member entries collapse.
func TestRingDedupAndEmpty(t *testing.T) {
	r := newRing([]string{"http://a", "", "http://a", "http://b"})
	if got := len(r.points); got != 2*ringVnodes {
		t.Errorf("ring has %d points, want %d (two distinct members)", got, 2*ringVnodes)
	}
}

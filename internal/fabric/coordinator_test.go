// Package fabric_test proves the fabric's headline contract end to end:
// a sweep sharded across real worker replicas (full service handlers
// over httptest) merges into results byte-identical to a single-process
// run — at any worker count, and across injected worker failures.
package fabric_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/fabric"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/service"
)

// fabricSpec is the acceptance sweep: three axes (frequency x grid mix x
// carbon policy), eight scenarios, small enough to simulate in seconds
// but exercising shared simulations (grid axis), the carbon tables and
// cross-scenario avoided-carbon aggregation.
func fabricSpec() scenario.Spec {
	return scenario.Spec{
		Name:       "fabric-e2e",
		Nodes:      32,
		Days:       2,
		WarmupDays: 1,
		Seed:       7,
		Axes: scenario.Axes{
			Frequency:    []string{"stock", "capped"},
			GridMean:     []float64{200, 65},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
}

// newWorker starts one full worker replica — a real service with its own
// Runner behind the real HTTP handler — optionally wrapped by mw.
func newWorker(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{Runner: &scenario.Runner{Workers: 2}, MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := service.NewHandler(svc)
	if mw != nil {
		h = mw(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(svc.Shutdown)
	return srv
}

func newCoordinator(t *testing.T, workers ...*httptest.Server) *fabric.Coordinator {
	t.Helper()
	c := fabric.New(fabric.Config{Backoff: 5 * time.Millisecond, ShardTimeout: time.Minute})
	for _, w := range workers {
		c.Join(w.URL)
	}
	return c
}

// rendered collects everything a consumer sees: the three tables as
// printed plus the per-scenario simulation digests.
func rendered(t *testing.T, res *scenario.SweepResults) (tables [3]string, digests []string) {
	t.Helper()
	tables[0] = res.Table().String()
	tables[1] = res.RegimeTable().String()
	if res.CarbonSwept() {
		tables[2] = res.CarbonTable().String()
	}
	for _, r := range res.Results {
		if r.SimDigest == "" {
			t.Fatalf("scenario %d (%s) lacks a simulation digest", r.Scenario.Index, r.Scenario.Name)
		}
		digests = append(digests, r.SimDigest)
	}
	return tables, digests
}

// TestFabricShardedSweepIsByteIdentical is the acceptance test: the
// merged fabric results equal a direct single-process Runner.Run —
// per-scenario digests and all rendered tables, byte for byte — at 1, 2
// and 4 workers.
func TestFabricShardedSweepIsByteIdentical(t *testing.T) {
	ctx := context.Background()
	direct, err := (&scenario.Runner{Workers: 2}).Run(ctx, fabricSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantTables, wantDigests := rendered(t, direct)

	for _, n := range []int{1, 2, 4} {
		workers := make([]*httptest.Server, n)
		for i := range workers {
			workers[i] = newWorker(t, nil)
		}
		coord := newCoordinator(t, workers...)

		var lastDone, lastTotal int
		res, err := coord.Run(ctx, fabricSpec(), func(done, total int) { lastDone, lastTotal = done, total })
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		gotTables, gotDigests := rendered(t, res)
		for i := range wantTables {
			if gotTables[i] != wantTables[i] {
				t.Errorf("workers=%d: table %d differs from single-process render:\n--- direct ---\n%s\n--- fabric ---\n%s",
					n, i, wantTables[i], gotTables[i])
			}
		}
		for i := range wantDigests {
			if gotDigests[i] != wantDigests[i] {
				t.Errorf("workers=%d: scenario %d digest %s != direct %s", n, i, gotDigests[i], wantDigests[i])
			}
		}
		if res.Simulations != direct.Simulations {
			t.Errorf("workers=%d: merged Simulations = %d, direct = %d", n, res.Simulations, direct.Simulations)
		}
		if lastTotal != direct.Simulations || lastDone != lastTotal {
			t.Errorf("workers=%d: final progress %d/%d, want %d/%d", n, lastDone, lastTotal, direct.Simulations, direct.Simulations)
		}
	}
}

// TestFabricSurvivesWorkerLoss: with one worker killing every shard
// connection, the coordinator drops it and re-shards onto the survivor —
// and the merged results are still byte-identical to a direct run.
func TestFabricSurvivesWorkerLoss(t *testing.T) {
	ctx := context.Background()
	// Whichever worker receives the first shard request becomes the
	// "crashed" replica: it kills that connection and every later shard
	// connection it sees. Breaking a pre-chosen worker would be flaky —
	// the ring hashes the workers' random httptest ports, so any fixed
	// choice sometimes receives no shards at all.
	var mu sync.Mutex
	brokenID := -1
	var killed atomic.Int32
	breakFirst := func(id int) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/shards") {
					mu.Lock()
					if brokenID == -1 {
						brokenID = id
					}
					broken := brokenID == id
					mu.Unlock()
					if broken {
						killed.Add(1)
						// Abort without writing a response: the coordinator sees
						// a transport error — indistinguishable from a crash.
						panic(http.ErrAbortHandler)
					}
				}
				next.ServeHTTP(w, r)
			})
		}
	}
	workers := []*httptest.Server{newWorker(t, breakFirst(0)), newWorker(t, breakFirst(1))}
	coord := newCoordinator(t, workers...)

	res, err := coord.Run(ctx, fabricSpec(), nil)
	if err != nil {
		t.Fatalf("sweep across a failing worker: %v", err)
	}
	direct, err := (&scenario.Runner{Workers: 2}).Run(ctx, fabricSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantTables, wantDigests := rendered(t, direct)
	gotTables, gotDigests := rendered(t, res)
	if gotTables != wantTables {
		t.Error("tables after worker loss differ from single-process render")
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] {
			t.Errorf("scenario %d digest %s != direct %s", i, gotDigests[i], wantDigests[i])
		}
	}
	if killed.Load() == 0 || brokenID == -1 {
		t.Fatal("no worker was ever dispatched to — the failure path went unexercised")
	}
	// The failing worker is out of the membership.
	brokenURL := workers[brokenID].URL
	for _, w := range coord.Workers().Workers {
		if w.URL == brokenURL {
			t.Errorf("failed worker %s still registered", w.URL)
		}
	}
}

// TestFabricFailsWithoutWorkers: no membership is a clean error, and a
// membership whose every worker is dead exhausts the bounded rounds
// instead of hanging.
func TestFabricFailsWithoutWorkers(t *testing.T) {
	ctx := context.Background()
	coord := fabric.New(fabric.Config{Backoff: time.Millisecond})
	if _, err := coord.Run(ctx, fabricSpec(), nil); err == nil {
		t.Error("Run with no workers must error")
	}

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	coord = fabric.New(fabric.Config{Backoff: time.Millisecond, MaxRounds: 2})
	coord.Join(dead.URL)
	if _, err := coord.Run(ctx, fabricSpec(), nil); err == nil {
		t.Error("Run with only a dead worker must error, not hang")
	}
}

// TestFabricPermanentErrorFailsFast: a worker that answers a
// deterministic rejection (here: the sweep spec itself is invalid per
// the worker) fails the sweep without burning re-shard rounds.
func TestFabricPermanentErrorFailsFast(t *testing.T) {
	ctx := context.Background()
	rejecting := newWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/shards") {
				api.WriteError(w, http.StatusInternalServerError, api.ErrShardFailed, "scenario 3: simulation diverged")
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	coord := newCoordinator(t, rejecting)
	_, err := coord.Run(ctx, fabricSpec(), nil)
	if err == nil {
		t.Fatal("a permanent shard failure must fail the sweep")
	}
	if !strings.Contains(err.Error(), "shard_failed") {
		t.Errorf("error %v does not carry the worker's shard_failed cause", err)
	}
}

// TestFabricWorkerTTL: a worker that stops heartbeating ages out of the
// membership; a fresh join revives it.
func TestFabricWorkerTTL(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	coord := fabric.New(fabric.Config{WorkerTTL: time.Minute, Now: clock})
	coord.Join("http://10.0.0.1:8990")
	if got := len(coord.Workers().Workers); got != 1 {
		t.Fatalf("membership = %d, want 1", got)
	}
	now = now.Add(2 * time.Minute)
	if got := len(coord.Workers().Workers); got != 0 {
		t.Errorf("membership after TTL expiry = %d, want 0", got)
	}
	coord.Join("http://10.0.0.1:8990")
	if got := len(coord.Workers().Workers); got != 1 {
		t.Errorf("membership after re-join = %d, want 1", got)
	}
}

// TestFabricWorkerTTLDefaults: WorkerTTL defaults to three missed
// heartbeats, a negative TTL disables expiry, and evictions are logged.
func TestFabricWorkerTTLDefaults(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }

	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	coord := fabric.New(fabric.Config{Heartbeat: time.Second, Now: clock, Logf: logf})
	coord.Join("http://10.0.0.1:8990")
	now = now.Add(2 * time.Second) // within 3× heartbeat
	if got := len(coord.Workers().Workers); got != 1 {
		t.Fatalf("membership within default TTL = %d, want 1", got)
	}
	now = now.Add(2 * time.Second) // past 3s TTL
	if got := len(coord.Workers().Workers); got != 0 {
		t.Errorf("membership past 3x heartbeat = %d, want 0 (default TTL)", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "evicted") {
		t.Errorf("eviction log = %q, want one eviction line", logged)
	}

	never := fabric.New(fabric.Config{Heartbeat: time.Second, WorkerTTL: -1, Now: clock})
	never.Join("http://10.0.0.2:8990")
	now = now.Add(24 * time.Hour)
	if got := len(never.Workers().Workers); got != 1 {
		t.Errorf("membership with negative TTL = %d, want 1 (never expire)", got)
	}
}

// TestFabricHandlerWorkers: the membership endpoints speak the envelope
// protocol — join via client, list via client, 405 with Allow, invalid
// URLs rejected as bad_request.
func TestFabricHandlerWorkers(t *testing.T) {
	coord := fabric.New(fabric.Config{})
	srv := httptest.NewServer(fabric.Handler(coord, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusNotFound, api.ErrNotFound, "no such resource")
	})))
	t.Cleanup(srv.Close)
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	wl, err := client.Join(ctx, api.JoinRequest{URL: "http://10.0.0.7:8990"})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(wl.Workers) != 1 || wl.Workers[0].URL != "http://10.0.0.7:8990" {
		t.Errorf("join ack = %+v, want the joined worker", wl.Workers)
	}
	wl, err = client.Workers(ctx)
	if err != nil || len(wl.Workers) != 1 {
		t.Errorf("Workers = (%+v, %v), want 1 worker", wl.Workers, err)
	}

	for _, bad := range []string{"", "10.0.0.7:8990", "ftp://x", "http://"} {
		if _, err := client.Join(ctx, api.JoinRequest{URL: bad}); err == nil {
			t.Errorf("Join(%q) must be rejected", bad)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/workers", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("DELETE /v1/workers = %d Allow=%q, want 405 with GET, POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// Non-workers paths fall through to the wrapped handler.
	resp, err = http.Get(srv.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("fall-through status = %d, want the inner handler's 404", resp.StatusCode)
	}
}

// Package fabric is the distributed sweep layer: a Coordinator that
// shards one scenario sweep across many twinserver worker replicas and
// merges their per-shard results into a single SweepResults that is
// byte-identical — per-scenario simulation digests and rendered tables —
// to a single-process Runner.Run of the same spec, at any shard count.
//
// The design follows the scheduler-fabric idiom (a coordinator that owns
// placement and retry, workers that own execution):
//
//   - the expanded grid partitions by each scenario's canonical
//     simulation key (scenario.Partition), and keys map to workers by
//     consistent hashing — scenarios sharing a simulation or a
//     checkpoint/fork family stay on one replica, and repeat traffic for
//     a configuration lands on the replica whose memo LRU is already
//     warm;
//   - shards dispatch in parallel over the typed v1 API client
//     (api.Client.RunShard against POST /v1/shards);
//   - a worker that times out, drops the connection or answers
//     unavailable is removed from the membership and its shard is
//     re-hashed over the survivors with bounded exponential backoff —
//     re-running a shard is safe because shard execution is
//     deterministic and memoized;
//   - a deterministic failure (a scenario error a worker reports) fails
//     the sweep immediately: re-dispatching it elsewhere would fail
//     identically.
//
// Membership is push-based: workers announce themselves with
// POST /v1/workers (see Handler), and joins double as heartbeats against
// the WorkerTTL expiry.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// Config parameterises a Coordinator.
type Config struct {
	// ShardTimeout bounds one shard dispatch (default 15m). A worker
	// that blows the deadline is treated as lost and its shard
	// re-hashed.
	ShardTimeout time.Duration
	// MaxRounds bounds dispatch rounds per sweep: the initial round plus
	// re-shard rounds after worker loss (default 4).
	MaxRounds int
	// Backoff is the base delay before a re-shard round, doubling per
	// round (default 250ms).
	Backoff time.Duration
	// Heartbeat is the interval workers are expected to re-join at —
	// the basis for the WorkerTTL default (default 10s, matching
	// cmd/twinserver's -heartbeat).
	Heartbeat time.Duration
	// WorkerTTL expires workers whose last join (heartbeat) is older
	// than this. 0 defaults to 3× Heartbeat — three missed heartbeats
	// mean the worker is gone, not slow; negative disables expiry
	// entirely (dispatch failures still remove workers).
	WorkerTTL time.Duration
	// NewClient builds the API client for a worker base URL; nil means
	// api.NewClient. Tests substitute it to inject faults.
	NewClient func(baseURL string) *api.Client
	// Logf, when non-nil, receives membership events (TTL evictions);
	// typically log.Printf.
	Logf func(format string, args ...any)

	// Now reports the current time; nil means time.Now (tests).
	Now func() time.Time
}

// Coordinator shards sweeps across registered worker replicas. Its Run
// method has the service.RunFunc shape, so a coordinator-mode
// twinserver plugs it straight into the sweep registry — singleflight
// dedup, lifecycle states and cancellation all behave exactly as in
// single-process mode.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
}

type member struct {
	url      string
	client   *api.Client
	lastSeen time.Time
	shards   int
}

// New creates a Coordinator.
func New(cfg Config) *Coordinator {
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 15 * time.Minute
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.NewClient == nil {
		cfg.NewClient = api.NewClient
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	switch {
	case cfg.WorkerTTL == 0:
		cfg.WorkerTTL = 3 * cfg.Heartbeat
	case cfg.WorkerTTL < 0:
		cfg.WorkerTTL = 0 // never expire
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Coordinator{cfg: cfg, members: make(map[string]*member)}
}

// Join registers (or heartbeats) a worker by its advertised base URL.
func (c *Coordinator) Join(url string) {
	if url == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[url]
	if !ok {
		m = &member{url: url, client: c.cfg.NewClient(url)}
		c.members[url] = m
	}
	m.lastSeen = c.cfg.Now()
}

// Remove drops a worker from the membership.
func (c *Coordinator) Remove(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.members, url)
}

// Workers returns the live membership, sorted by URL.
func (c *Coordinator) Workers() api.WorkerList {
	live := c.live()
	wl := api.WorkerList{Workers: make([]api.WorkerInfo, 0, len(live))}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range live {
		wl.Workers = append(wl.Workers, api.WorkerInfo{URL: m.url, LastSeen: m.lastSeen, Shards: m.shards})
	}
	return wl
}

// live snapshots the non-expired members, sorted by URL for
// deterministic shard ordinals, pruning any that outlived WorkerTTL.
func (c *Coordinator) live() []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	out := make([]*member, 0, len(c.members))
	for url, m := range c.members {
		if c.cfg.WorkerTTL > 0 && now.Sub(m.lastSeen) > c.cfg.WorkerTTL {
			delete(c.members, url)
			if c.cfg.Logf != nil {
				c.cfg.Logf("fabric: worker %s evicted: no heartbeat for %v (TTL %v)",
					url, now.Sub(m.lastSeen).Round(time.Second), c.cfg.WorkerTTL)
			}
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

// Run executes one sweep across the registered workers and merges the
// shards into a SweepResults byte-identical to a single-process run
// (see the package comment for the contract). It matches
// service.RunFunc; progress (when non-nil) receives (resolved, total)
// unique-simulation counts as shards land.
func (c *Coordinator) Run(ctx context.Context, spec scenario.Spec, progress func(done, total int)) (*scenario.SweepResults, error) {
	part, err := spec.Partition()
	if err != nil {
		return nil, err
	}
	spec = spec.Canonical()
	sweepKey := api.SpecKey(spec)
	n := len(part.Keys)
	results := make([]*scenario.Result, n)

	// resolvedSims counts distinct simulations among resolved scenarios —
	// the same progress unit a single-process RunProgress reports.
	resolvedSims := func() int {
		seen := map[string]bool{}
		for i, res := range results {
			if res != nil {
				seen[part.RunKeys[i]] = true
			}
		}
		return len(seen)
	}
	report := func() {
		if progress != nil {
			progress(resolvedSims(), part.Simulations)
		}
	}
	report()

	contributed := map[string]bool{}
	for round := 0; ; round++ {
		// Groups still unresolved, in expansion order; group atomicity is
		// free because shards are unions of whole groups.
		var unresolved []string
		for _, key := range part.GroupOrder {
			if results[part.Groups[key][0]] == nil {
				unresolved = append(unresolved, key)
			}
		}
		if len(unresolved) == 0 {
			break
		}
		if round > 0 {
			if round >= c.cfg.MaxRounds {
				return nil, fmt.Errorf("fabric: %d scenario groups unresolved after %d dispatch rounds",
					len(unresolved), round)
			}
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("fabric: sweep cancelled: %w", ctx.Err())
			case <-time.After(c.cfg.Backoff << (round - 1)):
			}
		}
		members := c.live()
		if len(members) == 0 {
			return nil, errors.New("fabric: no live workers registered")
		}

		// Consistent-hash each unresolved group onto the current ring.
		urls := make([]string, len(members))
		for i, m := range members {
			urls[i] = m.url
		}
		rg := newRing(urls)
		assign := map[string][]int{}
		for _, key := range unresolved {
			u := rg.lookup(key)
			assign[u] = append(assign[u], part.Groups[key]...)
		}

		type shard struct {
			m       *member
			indices []int
		}
		var shards []shard
		for _, m := range members {
			idxs := assign[m.url]
			if len(idxs) == 0 {
				continue
			}
			sort.Ints(idxs)
			shards = append(shards, shard{m: m, indices: idxs})
		}

		// Dispatch every shard of this round in parallel. Shards are
		// disjoint index sets, so workers fill disjoint slots of results;
		// mu guards the shared bookkeeping around them.
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			permErrs []error
		)
		for si, sh := range shards {
			si, sh := si, sh
			wg.Add(1)
			go func() {
				defer wg.Done()
				shardCtx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
				defer cancel()
				resp, err := sh.m.client.RunShard(shardCtx, api.ShardRequest{
					SweepKey:  sweepKey,
					Shard:     si,
					Of:        len(shards),
					Spec:      spec,
					Scenarios: sh.indices,
				})
				mu.Lock()
				defer mu.Unlock()
				switch {
				case ctx.Err() != nil:
					// The sweep itself is cancelled; the outer check owns it.
					return
				case err != nil && api.IsTransient(err):
					// Worker lost (connection refused/reset, shard timeout,
					// 502/503/504): drop it and let the next round re-hash its
					// slice over the survivors. A heartbeating worker that was
					// merely slow re-registers itself.
					c.Remove(sh.m.url)
					return
				case err != nil:
					// The worker answered deterministically (scenario failure,
					// validation rejection): retrying elsewhere cannot help.
					permErrs = append(permErrs, fmt.Errorf("fabric: worker %s shard %d/%d: %w",
						sh.m.url, si, len(shards), err))
					return
				case len(resp.Results) != len(sh.indices):
					// A malformed answer is a worker fault, not a sweep fault.
					c.Remove(sh.m.url)
					return
				}
				for j, idx := range sh.indices {
					if resp.Results[j].Scenario.Index != idx {
						c.Remove(sh.m.url)
						return
					}
				}
				for j, idx := range sh.indices {
					res := resp.Results[j]
					results[idx] = &res
				}
				sh.m.shards++
				contributed[sh.m.url] = true
				report()
			}()
		}
		wg.Wait()
		if len(permErrs) > 0 {
			return nil, errors.Join(permErrs...)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fabric: sweep cancelled: %w", err)
		}
	}

	merged := make([]scenario.Result, n)
	for i, res := range results {
		merged[i] = *res
	}
	return scenario.Assemble(spec, merged, len(contributed))
}

package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual points each member contributes to the
// hash ring. More vnodes smooth the per-member load at the cost of a
// larger (still tiny) sorted array; 64 keeps the worst member within a
// few tens of percent of the mean for small clusters.
const ringVnodes = 64

// ring is a consistent-hash ring over member identifiers. Lookup maps a
// key to a member such that (a) the mapping is a pure function of the
// membership set and the key — coordinator restarts and repeat sweeps
// land the same scenario groups on the same replicas, keeping their memo
// caches warm — and (b) removing a member only remaps the keys that
// member owned, so one worker loss re-shards one worker's slice, not the
// whole grid.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds a ring over the given members (order-insensitive;
// duplicates collapse).
func newRing(members []string) *ring {
	seen := map[string]bool{}
	r := &ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between distinct members is astronomically
		// unlikely but must still order deterministically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// lookup returns the member owning key: the first ring point at or
// after the key's hash, wrapping around. The ring must be non-empty.
func (r *ring) lookup(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

package grid

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

func TestPriceModelValidate(t *testing.T) {
	if err := GB2022Prices().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PriceModel{
		{Base: 0, ScarcityMultiplier: 2},
		{Base: 0.2, ScarcityMultiplier: 0.5},
		{Base: 0.2, ScarcityMultiplier: 2, Min: 0.3},
		{Base: 0.2, ScarcityMultiplier: 2, Min: -0.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad price model %d accepted", i)
		}
	}
}

func TestPriceAtCoupling(t *testing.T) {
	m := GB2022Prices()
	// At base intensity, base price.
	p := m.PriceAt(t0, 200, nil)
	if math.Abs(float64(p)-0.25) > 1e-12 {
		t.Fatalf("base price = %v", p)
	}
	// Higher intensity -> higher price.
	hi := m.PriceAt(t0, 300, nil)
	lo := m.PriceAt(t0, 50, nil)
	if float64(hi) <= float64(p) || float64(lo) >= float64(p) {
		t.Fatalf("coupling wrong: lo=%v base=%v hi=%v", lo, p, hi)
	}
	// Floor applies.
	floor := m.PriceAt(t0, -1e6, nil)
	if float64(floor) != m.Min {
		t.Fatalf("floor = %v", floor)
	}
}

func TestPriceScarcity(t *testing.T) {
	m := GB2022Prices()
	ev := []StressEvent{{Start: t0.Add(17 * time.Hour), End: t0.Add(20 * time.Hour)}}
	in := m.PriceAt(t0.Add(18*time.Hour), 200, ev)
	out := m.PriceAt(t0.Add(21*time.Hour), 200, ev)
	if math.Abs(float64(in)-0.75) > 1e-12 {
		t.Fatalf("scarcity price = %v, want 0.75", in)
	}
	if math.Abs(float64(out)-0.25) > 1e-12 {
		t.Fatalf("post-event price = %v", out)
	}
}

func TestPriceTrace(t *testing.T) {
	im := GB2022()
	tr, err := im.Trace(t0, t0.AddDate(0, 1, 0), time.Hour, rng.New(3).Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	pm := GB2022Prices()
	prices, err := pm.PriceTrace(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prices.Len() != tr.Len() {
		t.Fatalf("price samples = %d, want %d", prices.Len(), tr.Len())
	}
	sum := prices.Summary()
	if sum.Min < pm.Min-1e-12 {
		t.Fatalf("price below floor: %v", sum.Min)
	}
	if sum.Mean < 0.1 || sum.Mean > 0.5 {
		t.Fatalf("mean price = %v, want ~0.25", sum.Mean)
	}
	bad := pm
	bad.Base = 0
	if _, err := bad.PriceTrace(tr, nil); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestEnergyCost(t *testing.T) {
	power := timeseries.New("p", "kW")
	price := timeseries.New("c", "per_kWh")
	power.MustAppend(t0, 100) // 100 kW flat
	price.MustAppend(t0, 0.20)
	price.MustAppend(t0.Add(time.Hour), 0.40)

	cost, energy, err := EnergyCost(power, price, t0, t0.Add(2*time.Hour), 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// 200 kWh total; 100 kWh at 0.20 + 100 kWh at 0.40 = 60.
	if math.Abs(energy.KilowattHours()-200) > 1e-9 {
		t.Fatalf("energy = %v kWh", energy.KilowattHours())
	}
	if math.Abs(float64(cost)-60) > 1e-9 {
		t.Fatalf("cost = %v, want 60", float64(cost))
	}
	if _, _, err := EnergyCost(power, price, t0, t0, time.Minute); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := EnergyCost(power, price, t0, t0.Add(time.Hour), 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestAnnualCostEstimate(t *testing.T) {
	// 3.5 MW at 0.25/kWh: 3.5e3 kW * 8760 h * 0.25 = 7.665M.
	got := AnnualCostEstimate(units.Megawatts(3.5), 0.25)
	if math.Abs(float64(got)-7.6650e6) > 1 {
		t.Fatalf("annual cost = %v", float64(got))
	}
}

func TestCheapestWindows(t *testing.T) {
	price := timeseries.New("c", "per_kWh")
	// 48 hours: expensive except a cheap dip at hours 10-14 and 30-34.
	for h := 0; h < 48; h++ {
		v := 0.5
		if (h >= 10 && h < 14) || (h >= 30 && h < 34) {
			v = 0.05
		}
		price.MustAppend(t0.Add(time.Duration(h)*time.Hour), v)
	}
	wins := CheapestWindows(price, 4*time.Hour, 2)
	if len(wins) != 2 {
		t.Fatalf("windows = %v", wins)
	}
	for _, w := range wins {
		h := int(w.Sub(t0).Hours())
		if !(h >= 9 && h <= 14) && !(h >= 29 && h <= 34) {
			t.Fatalf("window at hour %d not in a cheap dip", h)
		}
	}
	// Non-overlap.
	d := wins[0].Sub(wins[1])
	if d < 0 {
		d = -d
	}
	if d < 4*time.Hour {
		t.Fatalf("windows overlap: %v", wins)
	}
	if got := CheapestWindows(price, 0, 2); got != nil {
		t.Fatal("zero width accepted")
	}
	if got := CheapestWindows(timeseries.New("e", "u"), time.Hour, 2); got != nil {
		t.Fatal("empty series accepted")
	}
}

func TestGenerateYear(t *testing.T) {
	y, err := GenerateYear(GB2022(), GB2022Prices(), t0, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if y.Intensity.Len() != 8760 || y.Price.Len() != 8760 {
		t.Fatalf("lengths = %d, %d", y.Intensity.Len(), y.Price.Len())
	}
	if len(y.Events) == 0 {
		t.Fatal("no stress events generated")
	}
	// Prices during stress events are elevated: compare the mean price in
	// events to the overall mean.
	var inSum float64
	var inN int
	for _, ev := range y.Events {
		v, ok := y.Price.ValueAt(ev.Start.Add(time.Hour))
		if ok {
			inSum += v
			inN++
		}
	}
	if inN == 0 {
		t.Fatal("no event prices sampled")
	}
	if inSum/float64(inN) <= y.Price.Mean()*1.5 {
		t.Fatalf("event prices not elevated: %v vs %v", inSum/float64(inN), y.Price.Mean())
	}
}

package grid

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

var t0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

func TestGB2022TraceStatistics(t *testing.T) {
	m := GB2022()
	s, err := m.Trace(t0, t0.AddDate(1, 0, 0), time.Hour, rng.New(1).Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8760 {
		t.Fatalf("samples = %d, want 8760", s.Len())
	}
	sum := s.Summary()
	// Annual mean near the GB 2022 figure.
	if math.Abs(sum.Mean-200) > 15 {
		t.Fatalf("annual mean = %v, want ~200", sum.Mean)
	}
	if sum.Min < m.Min-1e-9 || sum.Max > m.Max+1e-9 {
		t.Fatalf("trace escapes clamps: [%v, %v]", sum.Min, sum.Max)
	}
	// The grid must visit all three paper bands over a year.
	low, mid, high := 0, 0, 0
	for i, n := 0, s.Len(); i < n; i++ {
		switch BandOf(units.GramsPerKWh(s.At(i).V)) {
		case VeryLowCarbon:
			low++
		case ModerateCarbon:
			mid++
		default:
			high++
		}
	}
	if low == 0 || mid == 0 || high == 0 {
		t.Fatalf("bands not all visited: low=%d mid=%d high=%d", low, mid, high)
	}
	if high < low {
		t.Fatalf("2022 GB grid should be mostly high-carbon: low=%d high=%d", low, high)
	}
}

func TestSeasonalStructure(t *testing.T) {
	m := GB2022()
	m.NoiseSigma = 0 // isolate the deterministic components
	s, err := m.Trace(t0, t0.AddDate(1, 0, 0), time.Hour, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	jan := s.MeanBetween(t0, t0.AddDate(0, 1, 0))
	jun := s.MeanBetween(t0.AddDate(0, 5, 0), t0.AddDate(0, 6, 0))
	if jan <= jun {
		t.Fatalf("winter %v not above summer %v", jan, jun)
	}
}

func TestDiurnalStructure(t *testing.T) {
	m := GB2022()
	m.NoiseSigma = 0
	day := time.Date(2022, 6, 15, 0, 0, 0, 0, time.UTC)
	s, err := m.Trace(day, day.AddDate(0, 0, 1), 30*time.Minute, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	evening, _ := s.ValueAt(day.Add(18 * time.Hour))
	night, _ := s.ValueAt(day.Add(3 * time.Hour))
	if evening <= night {
		t.Fatalf("evening peak %v not above night trough %v", evening, night)
	}
}

func TestScaled(t *testing.T) {
	m := GB2022().Scaled(50)
	s, err := m.Trace(t0, t0.AddDate(1, 0, 0), time.Hour, rng.New(4).Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if mean := s.Mean(); math.Abs(mean-50) > 5 {
		t.Fatalf("scaled mean = %v, want ~50", mean)
	}
	// Degenerate base returns unchanged.
	z := IntensityModel{}.Scaled(50)
	if z.Base != 0 {
		t.Fatal("zero-base Scaled changed Base")
	}
}

func TestTraceErrors(t *testing.T) {
	m := GB2022()
	if _, err := m.Trace(t0, t0, time.Hour, rng.New(1)); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := m.Trace(t0, t0.Add(time.Hour), 0, rng.New(1)); err == nil {
		t.Error("zero step accepted")
	}
	bad := m
	bad.Base = -1
	if _, err := bad.Trace(t0, t0.Add(time.Hour), time.Minute, rng.New(1)); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestTraceDeterminism(t *testing.T) {
	m := GB2022()
	a, err := m.Trace(t0, t0.AddDate(0, 0, 7), time.Hour, rng.New(5).Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Trace(t0, t0.AddDate(0, 0, 7), time.Hour, rng.New(5).Split("grid"))
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestMeanIntensity(t *testing.T) {
	m := GB2022()
	s, err := m.Trace(t0, t0.AddDate(0, 1, 0), time.Hour, rng.New(6).Split("grid"))
	if err != nil {
		t.Fatal(err)
	}
	ci := MeanIntensity(s)
	if ci.GramsPerKWh() <= 0 {
		t.Fatalf("mean intensity = %v", ci)
	}
}

func TestBandOf(t *testing.T) {
	cases := []struct {
		g    float64
		want IntensityBand
	}{
		{10, VeryLowCarbon}, {29.9, VeryLowCarbon}, {30, ModerateCarbon},
		{65, ModerateCarbon}, {100, ModerateCarbon}, {100.1, HighCarbon}, {250, HighCarbon},
	}
	for _, c := range cases {
		if got := BandOf(units.GramsPerKWh(c.g)); got != c.want {
			t.Errorf("BandOf(%v) = %v, want %v", c.g, got, c.want)
		}
	}
	for _, b := range []IntensityBand{VeryLowCarbon, ModerateCarbon, HighCarbon, IntensityBand(9)} {
		if b.String() == "" {
			t.Error("empty band string")
		}
	}
}

func TestStressEvents(t *testing.T) {
	from := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	events := StressEvents(from, to, 0.3, rng.New(7).Split("stress"))
	if len(events) == 0 {
		t.Fatal("no stress events in winter window")
	}
	for _, e := range events {
		if e.Duration() != 3*time.Hour {
			t.Fatalf("event duration = %v", e.Duration())
		}
		if e.Start.Hour() != 17 {
			t.Fatalf("event starts at %v", e.Start)
		}
		wd := e.Start.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			t.Fatal("weekend stress event")
		}
		m := e.Start.Month()
		if m != time.November && m != time.December && m != time.January && m != time.February {
			t.Fatalf("event in month %v", m)
		}
	}
	// Probability 0 -> none.
	if got := StressEvents(from, to, 0, rng.New(7)); len(got) != 0 {
		t.Fatalf("p=0 produced %d events", len(got))
	}
	// Summer window -> none.
	s0 := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	if got := StressEvents(s0, s0.AddDate(0, 2, 0), 1, rng.New(7)); len(got) != 0 {
		t.Fatalf("summer produced %d events", len(got))
	}
}

// Stress-event generation must be deterministic for a given stream and
// actually driven by the stream: same seed twice gives identical events,
// different seeds diverge somewhere over a winter.
func TestStressEventsDeterministic(t *testing.T) {
	from := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	a := StressEvents(from, to, 0.4, rng.New(7).Split("stress"))
	b := StressEvents(from, to, 0.4, rng.New(7).Split("stress"))
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := StressEvents(from, to, 0.4, rng.New(8).Split("stress"))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical event sets")
	}
}

// With p=1 every cold-season weekday whose full 17:00-20:00 slot lies in
// the window gets exactly one event, and every event lies inside
// [from, to) — the generator clamps at the window edges rather than
// emitting partial events.
func TestStressEventsCoverageAndBounds(t *testing.T) {
	from := time.Date(2022, 11, 7, 18, 0, 0, 0, time.UTC) // Monday, mid-event
	to := time.Date(2022, 11, 19, 0, 0, 0, 0, time.UTC)
	events := StressEvents(from, to, 1, rng.New(1))
	// Nov 7 is cut by `from` (start 17:00 precedes it); Nov 8-11 and
	// 14-18 are whole weekdays: 9 events.
	if len(events) != 9 {
		t.Fatalf("got %d events, want 9: %+v", len(events), events)
	}
	for _, e := range events {
		if e.Start.Before(from) || e.End.After(to) {
			t.Errorf("event [%v, %v] escapes window [%v, %v)", e.Start, e.End, from, to)
		}
		if !e.End.After(e.Start) {
			t.Errorf("empty event %+v", e)
		}
	}
	// Monotone in p on a shared stream draw count: a higher probability
	// can only add event days, never remove them (per-day independent
	// draws with identical sequences).
	lo := StressEvents(from, to, 0.2, rng.New(3))
	hi := StressEvents(from, to, 0.9, rng.New(3))
	if len(lo) > len(hi) {
		t.Errorf("p=0.2 gave %d events but p=0.9 gave %d", len(lo), len(hi))
	}
}

// Package grid provides a synthetic model of the electricity grid the
// facility draws from: a carbon-intensity trace generator with the
// seasonal, diurnal and stochastic (wind-driven) structure of the GB
// grid, plus grid-stress event generation for demand-response studies.
//
// The paper's emissions analysis (§2) needs carbon-intensity scenarios
// spanning <30, 30-100 and >100 gCO2/kWh; real trace data is a gated
// external service, so the generator is calibrated to the published GB
// statistics instead (2022 annual mean ~200 gCO2/kWh, winter evening
// peaks >300, windy summer nights <50).
package grid

import (
	"fmt"
	"math"
	"time"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// IntensityModel generates carbon-intensity traces.
type IntensityModel struct {
	// Base is the annual mean intensity (gCO2/kWh).
	Base float64
	// SeasonalAmp is the winter-summer swing amplitude.
	SeasonalAmp float64
	// DiurnalAmp is the day-night swing amplitude.
	DiurnalAmp float64
	// NoiseSigma is the stationary standard deviation of the
	// Ornstein-Uhlenbeck wind term.
	NoiseSigma float64
	// NoiseTau is the OU relaxation time (weather system scale).
	NoiseTau time.Duration
	// Min and Max clamp the output.
	Min, Max float64
}

// GB2022 returns a model calibrated to published GB grid statistics for
// the paper's period.
func GB2022() IntensityModel {
	return IntensityModel{
		Base:        200,
		SeasonalAmp: 40,
		DiurnalAmp:  45,
		NoiseSigma:  55,
		NoiseTau:    18 * time.Hour,
		Min:         25,
		Max:         420,
	}
}

// Scaled returns a copy of m with the deterministic components scaled so
// the annual mean becomes `mean` — a simple way to build low-carbon future
// scenarios ("what if the grid averaged 50 gCO2/kWh?").
func (m IntensityModel) Scaled(mean float64) IntensityModel {
	if m.Base <= 0 {
		return m
	}
	k := mean / m.Base
	out := m
	out.Base = mean
	out.SeasonalAmp *= k
	out.DiurnalAmp *= k
	out.NoiseSigma *= k
	out.Min *= k
	out.Max *= k
	return out
}

// Validate checks the parameters.
func (m IntensityModel) Validate() error {
	if m.Base <= 0 || m.Min < 0 || m.Max <= m.Min || m.NoiseTau <= 0 {
		return fmt.Errorf("grid: invalid intensity model %+v", m)
	}
	return nil
}

// deterministic returns the season+diurnal component at t.
func (m IntensityModel) deterministic(t time.Time) float64 {
	yearFrac := float64(t.YearDay()-1) / 365
	// Peak in mid-January (yearFrac ~ 0.04).
	seasonal := m.SeasonalAmp * math.Cos(2*math.Pi*(yearFrac-0.04))
	hour := float64(t.Hour()) + float64(t.Minute())/60
	// Evening peak ~18:00, night trough ~03:00.
	diurnal := m.DiurnalAmp * math.Cos(2*math.Pi*(hour-18)/24)
	return m.Base + seasonal + diurnal
}

// Trace generates an intensity series from `from` to `to` (exclusive) at
// the given step, using stream r for the wind term. The trace is exactly
// step-periodic, so it is stored as a compact timeseries.RegularSeries
// (implicit timestamps) — a year at the GB settlement cadence is one
// 140 kB float block instead of 560 kB of timestamped samples.
func (m IntensityModel) Trace(from, to time.Time, step time.Duration, r *rng.Stream) (*timeseries.RegularSeries, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if step <= 0 || !to.After(from) {
		return nil, fmt.Errorf("grid: invalid trace window [%v, %v) step %v", from, to, step)
	}
	s := timeseries.NewRegular("carbon_intensity", "gCO2/kWh", step,
		int(to.Sub(from)/step)+1)
	// Exact OU discretisation: x' = x*a + sigma*sqrt(1-a^2)*N(0,1).
	a := math.Exp(-step.Seconds() / m.NoiseTau.Seconds())
	q := m.NoiseSigma * math.Sqrt(1-a*a)
	x := r.Normal(0, m.NoiseSigma) // stationary start
	for t := from; t.Before(to); t = t.Add(step) {
		v := m.deterministic(t) + x
		if v < m.Min {
			v = m.Min
		}
		if v > m.Max {
			v = m.Max
		}
		s.MustAppend(t, v)
		x = x*a + q*r.Normal(0, 1)
	}
	return s, nil
}

// MeanIntensity returns the series mean as a typed carbon intensity.
func MeanIntensity(s timeseries.View) units.CarbonIntensity {
	return units.GramsPerKWh(s.Mean())
}

// StressEvent is a period of grid stress (scarce capacity, high prices),
// like the GB winter 2022/23 margin notices that motivated the paper's
// power reductions.
type StressEvent struct {
	Start time.Time
	End   time.Time
}

// Duration returns the event length.
func (e StressEvent) Duration() time.Duration { return e.End.Sub(e.Start) }

// StressEvents generates winter weekday evening stress events between from
// and to: on cold-season weekdays, with probability p, a 17:00-20:00 local
// event occurs.
func StressEvents(from, to time.Time, p float64, r *rng.Stream) []StressEvent {
	var out []StressEvent
	day := time.Date(from.Year(), from.Month(), from.Day(), 0, 0, 0, 0, from.Location())
	for ; day.Before(to); day = day.AddDate(0, 0, 1) {
		m := day.Month()
		cold := m == time.November || m == time.December || m == time.January || m == time.February
		if !cold || day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
			continue
		}
		if r.Float64() >= p {
			continue
		}
		start := day.Add(17 * time.Hour)
		if start.Before(from) || !day.Add(20*time.Hour).Before(to) {
			continue
		}
		out = append(out, StressEvent{Start: start, End: day.Add(20 * time.Hour)})
	}
	return out
}

// IntensityBand classifies an intensity into the paper's §2 bands.
type IntensityBand int

const (
	// VeryLowCarbon: < 30 gCO2/kWh — scope 3 dominates.
	VeryLowCarbon IntensityBand = iota
	// ModerateCarbon: 30-100 gCO2/kWh — scope 2 and 3 comparable.
	ModerateCarbon
	// HighCarbon: > 100 gCO2/kWh — scope 2 dominates.
	HighCarbon
)

// String implements fmt.Stringer.
func (b IntensityBand) String() string {
	switch b {
	case VeryLowCarbon:
		return "very-low-carbon (<30 g/kWh)"
	case ModerateCarbon:
		return "moderate-carbon (30-100 g/kWh)"
	case HighCarbon:
		return "high-carbon (>100 g/kWh)"
	default:
		return fmt.Sprintf("IntensityBand(%d)", int(b))
	}
}

// BandOf returns the paper's band for an intensity.
func BandOf(ci units.CarbonIntensity) IntensityBand {
	switch g := ci.GramsPerKWh(); {
	case g < 30:
		return VeryLowCarbon
	case g <= 100:
		return ModerateCarbon
	default:
		return HighCarbon
	}
}

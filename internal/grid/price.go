package grid

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// Price modelling: the paper's §1 motivation includes that "lifetime
// electricity costs now matching or even exceeding the capital costs" of
// large HPC systems. The price model mirrors the intensity model's
// structure — wholesale electricity prices on the GB grid are strongly
// correlated with fossil generation share, plus scarcity spikes during
// stress events.

// PriceModel generates electricity tariff traces (currency per kWh).
type PriceModel struct {
	// Base is the mean price per kWh.
	Base float64
	// IntensityCoupling converts intensity deviation from its base into a
	// price deviation (price per kWh per gCO2/kWh above base intensity).
	IntensityCoupling float64
	// IntensityBase is the intensity at which the price equals Base.
	IntensityBase float64
	// ScarcityMultiplier is applied during stress events.
	ScarcityMultiplier float64
	// Min floors the price (can be near zero in wind surpluses, but not
	// below the floor — negative pricing is out of scope).
	Min float64
}

// GB2022Prices returns a model for the 2022 GB wholesale market, a year of
// extreme prices (~0.25/kWh average commercial rate).
func GB2022Prices() PriceModel {
	return PriceModel{
		Base:               0.25,
		IntensityCoupling:  0.0012,
		IntensityBase:      200,
		ScarcityMultiplier: 3.0,
		Min:                0.02,
	}
}

// Validate checks the model.
func (m PriceModel) Validate() error {
	if m.Base <= 0 || m.ScarcityMultiplier < 1 || m.Min < 0 || m.Min > m.Base {
		return fmt.Errorf("grid: invalid price model %+v", m)
	}
	return nil
}

// PriceAt converts one intensity sample into a price, applying scarcity if
// t falls inside any of the given stress events.
func (m PriceModel) PriceAt(t time.Time, intensity float64, events []StressEvent) units.CostPerKWh {
	p := m.Base + m.IntensityCoupling*(intensity-m.IntensityBase)
	for _, ev := range events {
		if !t.Before(ev.Start) && t.Before(ev.End) {
			p *= m.ScarcityMultiplier
			break
		}
	}
	if p < m.Min {
		p = m.Min
	}
	return units.CostPerKWh(p)
}

// PriceTrace derives a price series from an intensity trace and stress
// events. The output carries the input's timestamps, so it mirrors the
// input's storage layout: a regular intensity trace (the generator's
// output) yields a compact regular price trace, any other input an
// explicit-timestamp Series.
func (m PriceModel) PriceTrace(intensity timeseries.View, events []StressEvent) (timeseries.View, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := intensity.Len()
	var out timeseries.Appender
	if reg, ok := intensity.(*timeseries.RegularSeries); ok && n > 0 {
		out = timeseries.NewRegular("electricity_price", "per_kWh", reg.Step(), n)
	} else {
		out = timeseries.NewWithCapacity("electricity_price", "per_kWh", n)
	}
	for i := 0; i < n; i++ {
		smp := intensity.At(i)
		if err := out.Append(smp.T, float64(m.PriceAt(smp.T, smp.V, events))); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EnergyCost integrates a power series (kW) against a price series using
// sample-and-hold on both, over [from, to). The two series need not share
// timestamps. Returns the total cost and the total energy.
func EnergyCost(powerKW, price timeseries.View, from, to time.Time, step time.Duration) (units.Cost, units.Energy, error) {
	if step <= 0 || !to.After(from) {
		return 0, 0, fmt.Errorf("grid: invalid cost window [%v, %v) step %v", from, to, step)
	}
	var cost units.Cost
	var energy units.Energy
	for t := from; t.Before(to); t = t.Add(step) {
		p, okP := powerKW.ValueAt(t)
		pr, okPr := price.ValueAt(t)
		if !okP || !okPr {
			continue
		}
		e := units.Kilowatts(p).EnergyOver(step)
		energy += e
		cost += units.CostPerKWh(pr).Over(e)
	}
	return cost, energy, nil
}

// AnnualCostEstimate is the paper's §1 cost point: mean power times a flat
// tariff over a year.
func AnnualCostEstimate(meanPower units.Power, tariff units.CostPerKWh) units.Cost {
	return tariff.Over(meanPower.EnergyOver(365 * 24 * time.Hour))
}

// CheapestWindows returns the n cheapest `width`-long windows in a price
// series (non-overlapping, greedy) — the scheduling primitive behind
// "train the surrogate when power is cheap/clean".
func CheapestWindows(price timeseries.View, width time.Duration, n int) []time.Time {
	if price.Len() == 0 || n <= 0 || width <= 0 {
		return nil
	}
	from, to, _ := price.Span()
	type cand struct {
		at   time.Time
		mean float64
	}
	var cands []cand
	for t := from; t.Add(width).Before(to) || t.Add(width).Equal(to); t = t.Add(width / 2) {
		cands = append(cands, cand{at: t, mean: price.TimeWeightedMean(t, t.Add(width))})
	}
	// Selection sort for the n cheapest non-overlapping windows.
	var out []time.Time
	used := make([]bool, len(cands))
	for len(out) < n {
		best := -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			if best == -1 || c.mean < cands[best].mean {
				best = i
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		overlap := false
		for _, picked := range out {
			if cands[best].at.Before(picked.Add(width)) && picked.Before(cands[best].at.Add(width)) {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, cands[best].at)
		}
	}
	return out
}

// TraceWithPrices is a convenience bundling intensity, price and events
// over a window.
type TraceWithPrices struct {
	Intensity timeseries.View
	Price     timeseries.View
	Events    []StressEvent
}

// GenerateYear builds a coherent (intensity, price, stress) year with one
// stream.
func GenerateYear(im IntensityModel, pm PriceModel, start time.Time, stressProb float64, r *rng.Stream) (*TraceWithPrices, error) {
	end := start.AddDate(1, 0, 0)
	intensity, err := im.Trace(start, end, time.Hour, r.Split("intensity"))
	if err != nil {
		return nil, err
	}
	events := StressEvents(start, end, stressProb, r.Split("stress"))
	price, err := pm.PriceTrace(intensity, events)
	if err != nil {
		return nil, err
	}
	return &TraceWithPrices{Intensity: intensity, Price: price, Events: events}, nil
}

package cooling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/archertwin/internal/units"
)

func TestCDUTotal(t *testing.T) {
	p := New(ARCHER2Config())
	// Paper Table 2: 6 CDUs x 16 kW = 96 kW, load-independent.
	if got := p.CDUTotalPower().Kilowatts(); math.Abs(got-96) > 1e-9 {
		t.Fatalf("CDU total = %v kW, want 96", got)
	}
}

func TestCabinetOverheadRange(t *testing.T) {
	p := New(ARCHER2Config())
	idle := p.CabinetOverhead(0).Kilowatts()
	full := p.CabinetOverhead(1).Kilowatts()
	// Paper Table 2: 100-200 kW idle band, 200 kW loaded.
	if idle < 90 || idle > 210 {
		t.Fatalf("idle overhead = %v kW", idle)
	}
	if math.Abs(full-207) > 10 {
		t.Fatalf("loaded overhead = %v kW, want ~207 (23 x 9)", full)
	}
	if full <= idle {
		t.Fatalf("overhead not increasing: %v -> %v", idle, full)
	}
}

func TestCabinetOverheadClamps(t *testing.T) {
	p := New(ARCHER2Config())
	if p.CabinetOverhead(-1) != p.CabinetOverhead(0) {
		t.Fatal("negative load not clamped")
	}
	if p.CabinetOverhead(2) != p.CabinetOverhead(1) {
		t.Fatal("overload not clamped")
	}
}

func TestTotalPower(t *testing.T) {
	p := New(ARCHER2Config())
	got := p.TotalPower(1).Kilowatts()
	want := p.CDUTotalPower().Kilowatts() + p.CabinetOverhead(1).Kilowatts()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("total = %v, want %v", got, want)
	}
}

func TestPUE(t *testing.T) {
	p := New(ARCHER2Config())
	// 3.2 MW IT at full load: PUE ~ 1 + ~300kW/3200kW ~ 1.09. Liquid-cooled
	// systems have low PUE.
	pue := p.PUE(units.Megawatts(3.2), 1)
	if pue < 1.05 || pue > 1.15 {
		t.Fatalf("PUE = %v, want ~1.09", pue)
	}
	if got := p.PUE(0, 1); got != 0 {
		t.Fatalf("PUE with zero IT power = %v", got)
	}
}

// Property: plant power is monotone in load and PUE > 1 for positive IT.
func TestPropertyPlantMonotone(t *testing.T) {
	p := New(ARCHER2Config())
	f := func(a, b uint8, itKW uint16) bool {
		la, lb := float64(a)/255, float64(b)/255
		if la > lb {
			la, lb = lb, la
		}
		if p.TotalPower(la).Watts() > p.TotalPower(lb).Watts()+1e-9 {
			return false
		}
		if itKW > 0 {
			if p.PUE(units.Kilowatts(float64(itKW)), la) <= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package cooling models the facility thermal infrastructure: the six
// Coolant Distribution Units (CDUs) and the per-cabinet overheads (power
// supplies, rectifier losses, blowers) from the paper's Table 2, plus a
// simple PUE-style overhead calculation.
//
// ARCHER2 is direct liquid cooled; the CDUs draw an essentially constant
// 16 kW each regardless of IT load, while cabinet overheads scale mildly
// with the compute power passing through the cabinet's rectifiers.
package cooling

import (
	"github.com/greenhpc/archertwin/internal/units"
)

// Config describes the cooling and cabinet-overhead plant.
type Config struct {
	CDUs        int
	CDUPower    units.Power // per CDU, load-independent
	Cabinets    int
	CabinetIdle units.Power // per cabinet overhead at idle IT load
	CabinetMax  units.Power // per cabinet overhead at full IT load
}

// ARCHER2Config returns the paper's plant: 6 CDUs at 16 kW and 23 cabinets
// with 4-9 kW overheads.
func ARCHER2Config() Config {
	return Config{
		CDUs:        6,
		CDUPower:    units.Kilowatts(16),
		Cabinets:    23,
		CabinetIdle: units.Kilowatts(4.5),
		CabinetMax:  units.Kilowatts(9),
	}
}

// Plant is an instantiated cooling/overhead model.
type Plant struct {
	cfg Config
}

// New creates a Plant.
func New(cfg Config) *Plant { return &Plant{cfg: cfg} }

// Config returns the plant configuration.
func (p *Plant) Config() Config { return p.cfg }

// CDUTotalPower returns the fixed CDU fleet power.
func (p *Plant) CDUTotalPower() units.Power {
	return units.Watts(p.cfg.CDUPower.Watts() * float64(p.cfg.CDUs))
}

// CabinetOverhead returns the total cabinet overhead power at the given IT
// load fraction (0 = idle fleet, 1 = fully loaded fleet), interpolating
// between the Table 2 idle and loaded figures.
func (p *Plant) CabinetOverhead(itLoad float64) units.Power {
	if itLoad < 0 {
		itLoad = 0
	}
	if itLoad > 1 {
		itLoad = 1
	}
	per := p.cfg.CabinetIdle.Watts() +
		itLoad*(p.cfg.CabinetMax.Watts()-p.cfg.CabinetIdle.Watts())
	return units.Watts(per * float64(p.cfg.Cabinets))
}

// TotalPower returns CDU power plus cabinet overheads at the given IT load.
func (p *Plant) TotalPower(itLoad float64) units.Power {
	return units.Watts(p.CDUTotalPower().Watts() + p.CabinetOverhead(itLoad).Watts())
}

// PUE returns the power usage effectiveness given the IT power and this
// plant's overhead at the corresponding load fraction: (IT + overhead)/IT.
// It returns 0 for non-positive IT power.
func (p *Plant) PUE(itPower units.Power, itLoad float64) float64 {
	if itPower.Watts() <= 0 {
		return 0
	}
	return (itPower.Watts() + p.TotalPower(itLoad).Watts()) / itPower.Watts()
}

package scenario

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/emissions"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
)

// Result is one scenario's measured outcome over the measurement window.
type Result struct {
	Scenario Scenario

	// MeanPower is the mean cabinet power over the measurement window.
	MeanPower units.Power
	// MeanUtil is the mean node utilisation over the window.
	MeanUtil float64
	// Energy is the facility energy over the window (MeanPower x span).
	Energy units.Energy
	// NodeHours is the delivered node-hours over the whole run.
	NodeHours float64
	// MeanCI is the plain mean grid carbon intensity of the scenario's
	// trace over the window — the grid context, independent of the load.
	MeanCI units.CarbonIntensity
	// Emissions is the scope-2/scope-3 account over the window, computed
	// by integrating the power series against the intensity trace
	// (emissions.AccountSeries), with the embodied share scaled to the
	// scenario's facility size. Emissions.CI is the energy-weighted
	// intensity the load actually experienced: below MeanCI means the
	// schedule successfully chased clean windows.
	Emissions emissions.Window
	// Regime is the paper's operating-strategy classification.
	Regime emissions.Regime

	// AvoidedCarbon is the emissions cut versus this scenario's
	// baseline-policy counterpart (same axes, carbon_policy at the axis
	// baseline); zero for the counterpart itself and when the carbon axis
	// is not swept. Meaningful only when HasBaseline is true.
	AvoidedCarbon units.Mass
	// HasBaseline reports whether a baseline-policy counterpart existed
	// in the sweep (list-mode zips can omit it; the table then shows "—"
	// instead of a fabricated zero).
	HasBaseline bool
	// Holds / HoldDelay are the temporal policy's park events and total
	// parked time over the whole run (zero under fcfs).
	Holds     int
	HoldDelay time.Duration
	// Completed is the number of jobs completed over the whole run;
	// MeanWait is their mean queue wait.
	Completed int
	MeanWait  time.Duration

	// SimDigest is the core.Results digest of the simulation this result
	// was derived from (scenarios sharing a simulation share the digest).
	// It proves result identity across transports: a sweep served from the
	// twinserver memo carries the same digest a direct Runner.Run would.
	SimDigest string
}

// SweepResults aggregates a completed sweep. Results[0] is the baseline.
type SweepResults struct {
	Spec    Spec
	Results []Result
	// Simulations is how many distinct simulations actually ran;
	// scenarios differing only in grid mix share one (see Runner.Run).
	Simulations int
	// Workers is the effective pool size used (after resolving 0 to
	// GOMAXPROCS and clamping to the simulation count).
	Workers int
}

// Baseline returns the baseline result.
func (s *SweepResults) Baseline() Result { return s.Results[0] }

// Runner executes a sweep's scenarios on a worker pool, memoizing
// completed simulations across Run calls: a scenario whose full derived
// seed and configuration hash match an earlier simulation reuses its
// results instead of re-simulating. Within one sweep this is how fcfs
// counterparts on the carbon axis cost one simulation instead of one per
// scenario; across sweeps on the same Runner (a tool exploring several
// specs, a baseline shared by consecutive studies) it skips the repeat
// entirely. A Runner must not be copied after first use.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. Results are
	// byte-identical for every worker count: each scenario's simulator is
	// fully self-contained and seeded from the spec seed and the
	// scenario's simulation-affecting axes only (Scenario.simKey).
	Workers int

	// MemoCap bounds the memo cache: each entry retains a simulation's
	// full results (power/utilisation series included), so the cache holds
	// at most this many distinct simulations, evicting the least recently
	// used beyond that. Zero means DefaultMemoCap; negative disables
	// memoization entirely (within-sweep simulation sharing still works).
	MemoCap int

	// MemoBudgetBytes bounds the memo cache by retained bytes: each entry
	// is priced at its core.Results.MemoryFootprint at admission (after
	// Results.Compact has dropped what the scenario layer never reads),
	// and admissions evict coldest-first until the total fits. This is
	// the knob that keeps a long-lived twinserver's memory flat — entry
	// counts alone cannot, because a full-machine 13-month result costs
	// ~1000x a 1-day mini sweep. Zero means DefaultMemoBudgetBytes;
	// negative disables the byte bound (entry-count bound only).
	// Fork-point snapshots (see NoFork) are priced into the same budget at
	// their core.Snapshot.MemoryFootprint.
	MemoBudgetBytes int64

	// NoFork disables checkpoint/fork execution of mid-sweep divergence
	// families (specs sweeping Axes.MidFrequency): with NoFork set, every
	// branch simulates cold from day zero instead of forking from the
	// shared prefix snapshot. Results are byte-identical either way — the
	// golden suite pins that — so the knob exists for A/B benchmarking and
	// as an operational escape hatch, not for correctness.
	NoFork bool

	// runCfg executes one simulation; nil means core.RunConfigContext.
	// Tests substitute it to exercise failure aggregation and
	// cancellation deterministically.
	runCfg func(context.Context, core.Config) (*core.Results, error)

	// memo caches completed simulations by memoKey — the scenario's full
	// derived seed plus a hash of every config-shaping spec field, so
	// scenarios differing in any simulation-affecting axis (-nodes,
	// -freq, days, oversubscription, carbon tunables, ...) can never
	// collide. LRU-bounded at MemoCap entries; guarded by mu together
	// with the hit/miss counters.
	mu     sync.Mutex
	memo   *memoLRU
	hits   int
	misses int
}

// DefaultMemoCap is the memo-cache bound when Runner.MemoCap is zero.
const DefaultMemoCap = 256

// DefaultMemoBudgetBytes is the memo-cache byte budget when
// Runner.MemoBudgetBytes is zero: 1 GiB, roomy enough for hundreds of
// compacted full-machine results while keeping a warm twinserver
// process's cache growth bounded and predictable.
const DefaultMemoBudgetBytes int64 = 1 << 30

// CacheStats reports the Runner's memoization counters, accumulated
// across every Run call: Misses counts simulations actually executed,
// Hits counts scenarios served from an already-computed simulation
// (within-sweep sharing or a cross-sweep memo hit). Size, Bytes and
// Evictions describe the LRU store itself: entries currently held
// against the Capacity bound, the bytes those entries pin against the
// BudgetBytes bound (0 = unbounded), and how many cold entries have been
// evicted to admit warmer ones.
type CacheStats struct {
	Hits        int   `json:"hits"`
	Misses      int   `json:"misses"`
	Size        int   `json:"size"`
	Capacity    int   `json:"capacity"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Evictions   int   `json:"evictions"`
}

// CacheStats returns the memoization counters.
func (r *Runner) CacheStats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := CacheStats{Hits: r.hits, Misses: r.misses,
		Capacity: r.memoCap(), BudgetBytes: r.memoBudget()}
	if r.memo != nil {
		cs.Size = r.memo.len()
		cs.Bytes = r.memo.bytes
		cs.Evictions = r.memo.evictions
	}
	return cs
}

// memoCap resolves the effective cache bound from the MemoCap knob.
func (r *Runner) memoCap() int {
	switch {
	case r.MemoCap == 0:
		return DefaultMemoCap
	case r.MemoCap < 0:
		return 0
	}
	return r.MemoCap
}

// memoBudget resolves the effective byte budget from MemoBudgetBytes.
func (r *Runner) memoBudget() int64 {
	switch {
	case r.MemoBudgetBytes == 0:
		return DefaultMemoBudgetBytes
	case r.MemoBudgetBytes < 0:
		return 0
	}
	return r.MemoBudgetBytes
}

// memoKey is the cache identity of one simulation: the full derived seed
// (which already folds in the spec seed and the scenario's simulation
// axes) plus a hash over every remaining config-shaping spec field. Each
// field is written explicitly under a stable label — never via struct
// formatting verbs, whose output shifts whenever a field is added,
// renamed or reordered (silently invalidating or, worse, colliding every
// key) and which would fold a pointer address into the identity the
// moment a non-scalar field appears.
func memoKey(spec Spec, sc Scenario, cfg core.Config) string {
	c := spec.Carbon.withDefaults()
	// The mid-sweep divergence axis changes the simulated timeline without
	// changing the derived seed (common random numbers across branches), so
	// the key carries the run key — simKey plus the active mid value — and
	// the divergence day that anchors the branch's timeline change.
	diverge := 0
	if sc.midActive() {
		diverge = spec.DivergeDay
	}
	h := fnv.New64a()
	fmt.Fprintf(h,
		"seed=%d|sim=%s|days=%d|warmup=%d|oversub=%g|diverge=%d"+
			"|prio.aging=%g"+
			"|carbon.threshold=%g|carbon.maxdelay=%g|carbon.flexshare=%g"+
			"|carbon.budgetfrac=%g|carbon.fsigma=%g|carbon.fgrowth=%g",
		cfg.Seed, sc.runKey(), spec.Days, spec.warmupDays(), spec.OverSubscription, diverge,
		spec.PriorityAgingHours,
		c.ThresholdGrams, c.MaxDelayHours, c.FlexibleShare,
		c.BudgetFraction, c.ForecastSigma, c.ForecastGrowth)
	return fmt.Sprintf("%d-%016x", cfg.Seed, h.Sum64())
}

// ScenarioError wraps one failed scenario of a sweep.
type ScenarioError struct {
	Index int
	Name  string
	Err   error
}

// Error implements error.
func (e *ScenarioError) Error() string {
	return fmt.Sprintf("scenario %d (%s): %v", e.Index, e.Name, e.Err)
}

// Unwrap exposes the underlying error.
func (e *ScenarioError) Unwrap() error { return e.Err }

// Run expands and executes the sweep. Scenarios sharing a simulation key
// (differing only in grid mix — see Scenario.simKey) share one simulation:
// the worker pool runs each unique configuration once and the per-scenario
// grid trace and emissions accounting are re-derived from the shared
// result, so the flagship frequency x grid sweep costs two simulations,
// not eight, with byte-identical output. Completed simulations are also
// memoized on the Runner (see memoKey) in an LRU store bounded at
// MemoCap, so repeating or extending a sweep on the same Runner
// re-simulates only what changed; CacheStats reports the hit/miss and
// eviction counters.
//
// Sweeps over Axes.MidFrequency additionally share their pre-divergence
// history: all branches of one divergence family replay identically up to
// Spec.DivergeDay, so the runner simulates that prefix once, checkpoints
// it (core.Snapshot), and forks each branch from the checkpoint
// (core.Fork) — bit-identical to cold runs, and much cheaper when the
// divergence is late. Set NoFork to force cold runs. When scenarios fail, the errors
// of every failing scenario are joined in scenario-index order (each a
// *ScenarioError), deterministically regardless of which worker hit one
// first — no scenario is ever silently dropped.
//
// Cancelling ctx stops the sweep: queued simulations are abandoned,
// in-flight ones cancel cooperatively (core.RunConfigContext), and Run
// returns ctx's error. Simulations completed before the cancellation are
// still memoized, so a retried sweep resumes where it left off.
func (r *Runner) Run(ctx context.Context, spec Spec) (*SweepResults, error) {
	return r.RunProgress(ctx, spec, nil)
}

// RunProgress is Run with per-sweep progress reporting: progress (when
// non-nil) is called with (resolved, total) unique-simulation counts —
// once after memo resolution and again as each executed simulation
// completes. It may be called concurrently from worker goroutines and
// must be safe for that; the twinserver uses it to serve live sweep
// status.
func (r *Runner) RunProgress(ctx context.Context, spec Spec, progress func(done, total int)) (*SweepResults, error) {
	scenarios, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	results, simulations, workers, err := r.runSelected(ctx, spec, scenarios, progress)
	if err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	fillAvoidedCarbon(spec, scenarios, results)
	return &SweepResults{Spec: spec, Results: results, Simulations: simulations, Workers: workers}, nil
}

// RunScenarios executes only the scenarios at the given expanded-grid
// indices (ascending, unique, per Spec.Expand order) — the worker half
// of the distributed sweep fabric: a coordinator partitions the grid
// and each replica runs its slice through this entry point. It returns
// one Result per index, in index order, plus the number of distinct
// simulations the slice resolved.
//
// Each Result is byte-identical to the corresponding entry of a full
// Run: per-scenario seeds derive from the scenario's own axes
// (Scenario.simKey), never from which subset it runs in. The only
// difference is that cross-scenario aggregation (AvoidedCarbon,
// HasBaseline) is left unfilled — a slice cannot see its counterparts;
// Assemble owns that at merge time.
func (r *Runner) RunScenarios(ctx context.Context, spec Spec, indices []int, progress func(done, total int)) ([]Result, int, error) {
	all, err := spec.Expand()
	if err != nil {
		return nil, 0, err
	}
	if len(indices) == 0 {
		return nil, 0, fmt.Errorf("scenario: empty scenario selection")
	}
	selected := make([]Scenario, 0, len(indices))
	last := -1
	for _, idx := range indices {
		if idx <= last {
			return nil, 0, fmt.Errorf("scenario: selection indices must be ascending and unique (%d after %d)", idx, last)
		}
		if idx < 0 || idx >= len(all) {
			return nil, 0, fmt.Errorf("scenario: selection index %d outside expansion of %d scenarios", idx, len(all))
		}
		selected = append(selected, all[idx])
		last = idx
	}
	results, sims, _, err := r.runSelected(ctx, spec, selected, progress)
	return results, sims, err
}

// runSelected is the execution core shared by full sweeps and shard
// slices: it simulates the given (already expanded) scenarios and
// returns their Results aligned with the input slice, the distinct
// simulation count, and the effective worker-pool size. Cross-scenario
// aggregation is the caller's job.
func (r *Runner) runSelected(ctx context.Context, spec Spec, scenarios []Scenario, progress func(done, total int)) ([]Result, int, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.withDefaults()

	// Group scenarios by run key (simulation key plus any active mid-sweep
	// divergence value); build each scenario's grid model up front.
	type group struct {
		cfg     core.Config
		key     string
		sc      Scenario
		members []int
	}
	var groups []group
	byKey := map[string]int{}
	models := make([]grid.IntensityModel, len(scenarios))
	for i, sc := range scenarios {
		cfg, gm, err := sc.BuildConfig(spec)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("scenario %d (%s): %w", sc.Index, sc.Name, err)
		}
		models[i] = gm
		gi, ok := byKey[sc.runKey()]
		if !ok {
			gi = len(groups)
			byKey[sc.runKey()] = gi
			groups = append(groups, group{cfg: cfg, key: memoKey(spec, sc, cfg), sc: sc})
		}
		groups[gi].members = append(groups[gi].members, i)
	}

	// Collect mid-sweep divergence families: groups sharing a simulation
	// key differ only in their mid value, so they replay the same timeline
	// up to the divergence point. Each family's shared prefix is simulated
	// once to that point, snapshotted (core.Snapshot), and every branch —
	// including the unchanged "none" branch, so all branches go through the
	// same machinery — forks from the snapshot (core.Fork) and runs only
	// the remainder. Bit-identity of forked and cold branches is proven by
	// the core fork suite and pinned end-to-end by the golden fork test.
	// Forking is skipped when NoFork is set or a test has substituted
	// runCfg (the substitute only knows how to run whole configs cold).
	type family struct {
		prefixCfg core.Config
		snapKey   string
		branches  []int
		snap      *core.Snapshot
		fromMemo  bool
		err       error
	}
	famOf := make([]int, len(groups))
	for g := range famOf {
		famOf[g] = -1
	}
	var families []*family
	if !r.NoFork && r.runCfg == nil && len(spec.Axes.MidFrequency) > 0 {
		bySim := map[string]int{}
		for g, grp := range groups {
			fi, ok := bySim[grp.sc.simKey()]
			if !ok {
				prefixSc := grp.sc
				prefixSc.MidFrequency = MidNone
				prefixCfg, _, err := prefixSc.BuildConfig(spec)
				if err != nil {
					return nil, 0, 0, fmt.Errorf("scenario %d (%s): fork prefix: %w",
						scenarios[grp.members[0]].Index, grp.sc.Name, err)
				}
				fi = len(families)
				bySim[grp.sc.simKey()] = fi
				families = append(families, &family{
					prefixCfg: prefixCfg,
					snapKey:   fmt.Sprintf("snap|%s|d%d", memoKey(spec, prefixSc, prefixCfg), spec.DivergeDay),
				})
			}
			famOf[g] = fi
			families[fi].branches = append(families[fi].branches, g)
		}
		// A single-branch family would pay the prefix run without sharing
		// it; run that group cold instead.
		for _, f := range families {
			if len(f.branches) < 2 {
				for _, g := range f.branches {
					famOf[g] = -1
				}
			}
		}
	}

	// Resolve memoized simulations; only the rest go to the pool. A memo
	// hit refreshes the entry's recency, so a server's steadily re-run
	// sweeps stay warm while one-off configs age out. Fork-point snapshots
	// resolve from the same store, so a repeated divergence study skips
	// even the prefix replay.
	sims := make([]*core.Results, len(groups))
	digests := make([]string, len(groups))
	errs := make([]error, len(groups))
	var pending []int
	r.mu.Lock()
	if r.memo == nil {
		r.memo = newMemoLRU(r.memoCap(), r.memoBudget())
	}
	for g := range groups {
		if e, ok := r.memo.get(groups[g].key); ok {
			sims[g] = e.res
			digests[g] = e.digest
			continue
		}
		pending = append(pending, g)
	}
	for _, f := range families {
		if e, ok := r.memo.get(f.snapKey); ok && e.snap != nil {
			f.snap, f.fromMemo = e.snap, true
		}
	}
	r.mu.Unlock()

	var resolved atomic.Int64
	resolved.Store(int64(len(groups) - len(pending)))
	report := func() {
		if progress != nil {
			progress(int(resolved.Load()), len(groups))
		}
	}
	report()

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	runCfg := r.runCfg
	if runCfg == nil {
		runCfg = core.RunConfigContext
	}
	var executed atomic.Int64

	// runPhase drains one batch of tasks through a bounded worker pool.
	// Cancellation abandons the unfed remainder (their error slots stay
	// nil; the sweep-cancelled check below owns that case) and in-flight
	// simulations cancel cooperatively.
	runPhase := func(tasks []func()) {
		if len(tasks) == 0 {
			return
		}
		w := workers
		if w > len(tasks) {
			w = len(tasks)
		}
		ch := make(chan func())
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					t()
				}
			}()
		}
	feed:
		for _, t := range tasks {
			select {
			case ch <- t:
			case <-ctx.Done():
				break feed
			}
		}
		close(ch)
		wg.Wait()
	}

	// Phase one: cold simulations, plus one prefix run per fork family
	// that has pending branches and no memoized snapshot. The prefix runs
	// to the divergence point and checkpoints there; it counts as an
	// executed simulation (a memo miss) like any other.
	var coldTasks, forkTasks []func()
	for _, g := range pending {
		g := g
		if fi := famOf[g]; fi >= 0 {
			f := families[fi]
			forkTasks = append(forkTasks, func() {
				if err := ctx.Err(); err != nil {
					errs[g] = err
					return
				}
				if f.err != nil {
					errs[g] = fmt.Errorf("fork prefix: %w", f.err)
					return
				}
				executed.Add(1)
				sim, err := core.Fork(f.snap, groups[g].cfg)
				if err == nil {
					sims[g], errs[g] = sim.RunContext(ctx)
				} else {
					errs[g] = err
				}
				if errs[g] == nil {
					resolved.Add(1)
					report()
				}
			})
			continue
		}
		coldTasks = append(coldTasks, func() {
			if err := ctx.Err(); err != nil {
				errs[g] = err
				return
			}
			executed.Add(1)
			sims[g], errs[g] = runCfg(ctx, groups[g].cfg)
			if errs[g] == nil {
				resolved.Add(1)
				report()
			}
		})
	}
	needPrefix := make([]bool, len(families))
	for _, g := range pending {
		if fi := famOf[g]; fi >= 0 {
			needPrefix[fi] = true
		}
	}
	for fi, f := range families {
		if !needPrefix[fi] || f.snap != nil {
			continue
		}
		f := f
		coldTasks = append(coldTasks, func() {
			if err := ctx.Err(); err != nil {
				f.err = err
				return
			}
			executed.Add(1)
			sim, err := core.NewSimulator(f.prefixCfg)
			if err == nil {
				err = sim.RunToContext(ctx, spec.divergeTime())
			}
			if err == nil {
				f.snap, err = sim.Snapshot()
			}
			f.err = err
		})
	}
	runPhase(coldTasks)

	// Phase two: every pending branch of every family forks from its
	// family's snapshot — one immutable snapshot seeds all branches
	// concurrently (Fork deep-copies on restore) — and simulates only the
	// divergence tail. A failed prefix fails each of its branches.
	runPhase(forkTasks)

	// Memoize fresh successes, evicting the least-recently-used entries
	// beyond the entry-count and byte bounds — each entry pins a full
	// results series, and a long-lived service sweeping ever-new configs
	// must not grow memory without bound, yet must keep admitting so its
	// hot set stays warm. Digests are computed once here, outside the
	// lock, then each result is compacted (Results.Compact: capture
	// intermediates dropped, spare series capacity released — digest
	// unchanged by contract) and priced at its compacted footprint.
	// Misses count executed simulations; hits count scenarios served from
	// an already-computed simulation.
	costs := make([]int64, len(groups))
	for _, g := range pending {
		if errs[g] == nil && sims[g] != nil {
			digests[g] = sims[g].Digest()
			sims[g].Compact()
			costs[g] = sims[g].MemoryFootprint()
		}
	}
	r.mu.Lock()
	for _, g := range pending {
		if errs[g] == nil && sims[g] != nil {
			r.memo.put(&memoEntry{key: groups[g].key, res: sims[g], digest: digests[g], cost: costs[g]})
		}
	}
	// Freshly captured fork-point snapshots are memoized alongside results,
	// priced at their retained bytes, so the next divergence study over the
	// same prefix forks straight from cache.
	for _, f := range families {
		if f.snap != nil && !f.fromMemo && f.err == nil {
			r.memo.put(&memoEntry{key: f.snapKey, snap: f.snap, cost: f.snap.MemoryFootprint()})
		}
	}
	r.misses += int(executed.Load())
	// Hits count scenarios actually served; a cancelled sweep serves
	// nothing, so its memo-resolved groups are not credited.
	if ctx.Err() == nil {
		r.hits += len(scenarios) - len(pending)
	}
	r.mu.Unlock()

	// A cancelled sweep reports the cancellation, not the per-scenario
	// fallout of abandoning the queue.
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("scenario: sweep cancelled: %w", err)
	}

	// Report every failing scenario, in scenario-index order, rather than
	// just the first: a sweep that half-fails should say exactly which
	// half and why.
	var failed []error
	for _, sc := range scenarios {
		g := byKey[sc.runKey()]
		if errs[g] != nil {
			failed = append(failed, &ScenarioError{Index: sc.Index, Name: sc.Name, Err: errs[g]})
		}
	}
	if len(failed) > 0 {
		return nil, 0, 0, errors.Join(failed...)
	}

	// One trace seed for the whole sweep: the grid's underlying weather is
	// common random numbers across every scenario (Scaled rescales the
	// same noise), so scenarios at equal grid means see identical carbon
	// intensity, and emissions deltas across simulation axes carry no
	// grid-sampling noise. The trace spans the whole run (not just the
	// measurement window) because carbon-aware simulations consume it from
	// day zero; one trace per distinct grid mean is shared by reference.
	traceSeed := rng.DeriveSeed(spec.Seed, "grid-trace")
	start := sweepStart
	end := sweepStart.AddDate(0, 0, spec.Days)
	traces := map[float64]*timeseries.RegularSeries{}
	results := make([]Result, len(scenarios))
	for g, grp := range groups {
		for _, i := range grp.members {
			tr, ok := traces[scenarios[i].GridMean]
			if !ok {
				cc := core.CarbonConfig{Model: models[i], TraceSeed: traceSeed}
				var err error
				tr, err = cc.Trace(start, end)
				if err != nil {
					return nil, 0, 0, &ScenarioError{Index: scenarios[i].Index, Name: scenarios[i].Name, Err: err}
				}
				traces[scenarios[i].GridMean] = tr
			}
			var err error
			results[i], err = account(scenarios[i], tr, sims[g])
			if err != nil {
				return nil, 0, 0, &ScenarioError{Index: scenarios[i].Index, Name: scenarios[i].Name, Err: err}
			}
			results[i].SimDigest = digests[g]
		}
	}
	return results, len(groups), workers, nil
}

// account derives one scenario's Result from its (possibly shared)
// simulation by integrating the simulated power series against the
// scenario's intensity trace over the measurement window.
func account(sc Scenario, trace timeseries.View, res *core.Results) (Result, error) {
	w, ok := res.WindowByLabel("measure")
	if !ok {
		return Result{}, fmt.Errorf("scenario: measurement window missing")
	}
	span := w.Window.To.Sub(w.Window.From)

	// Embodied emissions scale with the slice of the 5,860-node machine
	// being simulated.
	full := core.DefaultConfig().Facility.Nodes
	params := emissions.ARCHER2Defaults()
	params.Embodied = params.Embodied.Scale(float64(sc.Nodes) / float64(full))
	acct := params.AccountSeries(res.Power, trace, w.Window.From, w.Window.To)

	return Result{
		Scenario:  sc,
		MeanPower: w.MeanPower,
		MeanUtil:  w.MeanUtil,
		Energy:    w.MeanPower.EnergyOver(span),
		NodeHours: res.TotalUsage.NodeHours,
		MeanCI:    units.GramsPerKWh(trace.MeanBetween(w.Window.From, w.Window.To)),
		Emissions: acct,
		Regime:    emissions.RegimeOf(acct),
		Holds:     res.Sched.Holds,
		HoldDelay: res.Sched.HoldDelay,
		Completed: res.Sched.Completed,
		MeanWait:  res.Sched.MeanWait(),
	}, nil
}

// fillAvoidedCarbon computes each scenario's emissions cut against its
// baseline-policy counterpart: the scenario with identical axes except
// carbon_policy at the axis baseline (the first value, "fcfs" unless the
// spec reorders it).
func fillAvoidedCarbon(spec Spec, scenarios []Scenario, results []Result) {
	if len(spec.Axes.CarbonPolicy) == 0 {
		return
	}
	basePolicy := spec.Axes.CarbonPolicy[0]
	otherKey := func(sc Scenario) string {
		return fmt.Sprintf("%s|%g|%s|%s|%d|%s|%s|%s",
			sc.Frequency, sc.GridMean, sc.Scheduler, sc.Workload, sc.Nodes,
			sc.PerfModel, sc.Fleet, sc.Surrogate)
	}
	baseTotal := map[string]units.Mass{}
	for i, sc := range scenarios {
		if sc.CarbonPolicy == basePolicy {
			baseTotal[otherKey(sc)] = results[i].Emissions.Total
		}
	}
	for i, sc := range scenarios {
		if base, ok := baseTotal[otherKey(sc)]; ok {
			results[i].AvoidedCarbon = units.Mass(base.Grams() - results[i].Emissions.Total.Grams())
			results[i].HasBaseline = true
		}
	}
}

// Table renders the cross-scenario comparison: every metric as its value
// plus the signed percentage delta against the baseline scenario.
func (s *SweepResults) Table() *report.DeltaTable {
	t := report.NewDeltaTable(
		fmt.Sprintf("Sweep: %s (%d scenarios, %d nodes, %d days)",
			s.Spec.Name, len(s.Results), s.Spec.Nodes, s.Spec.Days),
		"scenario",
		report.DeltaColumn{Header: "mean power", Format: report.KW},
		report.DeltaColumn{Header: "energy", Format: mwh},
		report.DeltaColumn{Header: "emissions", Format: tco2},
		report.DeltaColumn{Header: "node-hours", Format: knodeh},
	)
	for i, r := range s.Results {
		vals := []float64{
			r.MeanPower.Kilowatts(),
			r.Energy.MegawattHours(),
			r.Emissions.Total.Tonnes(),
			r.NodeHours,
		}
		if i == 0 {
			t.SetBaseline(r.Scenario.Name, vals...)
		} else {
			t.Add(r.Scenario.Name, vals...)
		}
	}
	return t
}

// RegimeTable renders each scenario's grid context and operating regime —
// the qualitative half of the paper's §2 decision rule.
func (s *SweepResults) RegimeTable() *report.Table {
	t := report.NewTable("Emissions regimes", "scenario", "grid mean",
		"scope 2", "scope 3", "scope-2 share", "regime")
	for _, r := range s.Results {
		t.AddRow(r.Scenario.Name,
			fmt.Sprintf("%.0f g/kWh", r.MeanCI.GramsPerKWh()),
			tco2(r.Emissions.Scope2.Tonnes()),
			tco2(r.Emissions.Scope3.Tonnes()),
			fmt.Sprintf("%.0f%%", r.Emissions.Scope2Share()*100),
			r.Regime.String())
	}
	return t
}

// CarbonSwept reports whether the sweep explicitly swept the carbon
// policy axis (the condition under which CarbonTable is meaningful).
func (s *SweepResults) CarbonSwept() bool {
	return len(s.Spec.Axes.CarbonPolicy) > 0
}

// CarbonTable renders the temporal-policy comparison: what intensity the
// load actually ran at (energy-weighted, versus the grid's plain mean),
// the scope-2 account, the carbon avoided against the baseline policy at
// the same grid, and the scheduling cost (holds and mean added delay) —
// the "is shifting worth it" table.
func (s *SweepResults) CarbonTable() *report.Table {
	t := report.NewTable("Carbon-aware temporal policies", "scenario",
		"grid mean", "experienced CI", "scope 2", "avoided vs baseline",
		"holds", "mean hold")
	for _, r := range s.Results {
		avoided := "—"
		if r.HasBaseline && r.Scenario.CarbonPolicy != s.Spec.Axes.CarbonPolicy[0] {
			pct := ""
			if base := r.Emissions.Total.Grams() + r.AvoidedCarbon.Grams(); base > 0 {
				pct = fmt.Sprintf(" (%s)", report.Pct(r.AvoidedCarbon.Grams()/base))
			}
			avoided = fmt.Sprintf("%.2f t%s", r.AvoidedCarbon.Tonnes(), pct)
		}
		meanHold := "—"
		if r.Holds > 0 {
			meanHold = (r.HoldDelay / time.Duration(r.Holds)).Round(time.Minute).String()
		}
		t.AddRow(r.Scenario.Name,
			fmt.Sprintf("%.0f g/kWh", r.MeanCI.GramsPerKWh()),
			fmt.Sprintf("%.1f g/kWh", r.Emissions.CI.GramsPerKWh()),
			tco2(r.Emissions.Scope2.Tonnes()),
			avoided,
			fmt.Sprint(r.Holds),
			meanHold)
	}
	return t
}

func mwh(v float64) string    { return fmt.Sprintf("%.1f MWh", v) }
func tco2(v float64) string   { return fmt.Sprintf("%.2f t", v) }
func knodeh(v float64) string { return fmt.Sprintf("%.0f", v) }

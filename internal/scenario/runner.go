package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/emissions"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

// Result is one scenario's measured outcome over the measurement window.
type Result struct {
	Scenario Scenario

	// MeanPower is the mean cabinet power over the measurement window.
	MeanPower units.Power
	// MeanUtil is the mean node utilisation over the window.
	MeanUtil float64
	// Energy is the facility energy over the window (MeanPower x span).
	Energy units.Energy
	// NodeHours is the delivered node-hours over the whole run.
	NodeHours float64
	// MeanCI is the mean grid carbon intensity of the scenario's trace.
	MeanCI units.CarbonIntensity
	// Emissions is the scope-2/scope-3 account over the window at MeanCI,
	// with the embodied share scaled to the scenario's facility size.
	Emissions emissions.Window
	// Regime is the paper's operating-strategy classification.
	Regime emissions.Regime
}

// SweepResults aggregates a completed sweep. Results[0] is the baseline.
type SweepResults struct {
	Spec    Spec
	Results []Result
	// Simulations is how many distinct simulations actually ran;
	// scenarios differing only in grid mix share one (see Runner.Run).
	Simulations int
	// Workers is the effective pool size used (after resolving 0 to
	// GOMAXPROCS and clamping to the simulation count).
	Workers int
}

// Baseline returns the baseline result.
func (s *SweepResults) Baseline() Result { return s.Results[0] }

// Runner executes a sweep's scenarios on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. Results are
	// byte-identical for every worker count: each scenario's simulator is
	// fully self-contained and seeded from the spec seed and the
	// scenario's simulation-affecting axes only (Scenario.simKey).
	Workers int
}

// Run expands and executes the sweep. Scenarios sharing a simulation key
// (differing only in grid mix — see Scenario.simKey) share one simulation:
// the worker pool runs each unique configuration once and the per-scenario
// grid trace and emissions accounting are re-derived from the shared
// result, so the flagship frequency x grid sweep costs two simulations,
// not eight, with byte-identical output. On scenario failure, the error
// of the lowest-indexed failing scenario is returned (deterministically,
// regardless of which worker hit it first).
func (r Runner) Run(spec Spec) (*SweepResults, error) {
	scenarios, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	spec = spec.withDefaults()

	// Group scenarios by simulation key; build each scenario's grid model
	// up front.
	type group struct {
		cfg     core.Config
		members []int
	}
	var groups []group
	byKey := map[string]int{}
	models := make([]grid.IntensityModel, len(scenarios))
	for i, sc := range scenarios {
		cfg, gm, err := sc.BuildConfig(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, sc.Name, err)
		}
		models[i] = gm
		gi, ok := byKey[sc.simKey()]
		if !ok {
			gi = len(groups)
			byKey[sc.simKey()] = gi
			groups = append(groups, group{cfg: cfg})
		}
		groups[gi].members = append(groups[gi].members, i)
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	sims := make([]*core.Results, len(groups))
	errs := make([]error, len(groups))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				sims[g], errs[g] = core.RunConfig(groups[g].cfg)
			}
		}()
	}
	for g := range groups {
		jobs <- g
	}
	close(jobs)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			i := groups[g].members[0]
			return nil, fmt.Errorf("scenario %d (%s): %w", i, scenarios[i].Name, err)
		}
	}

	// One trace seed for the whole sweep: the grid's underlying weather is
	// common random numbers across every scenario (Scaled rescales the
	// same noise), so scenarios at equal grid means see identical carbon
	// intensity and emissions deltas across simulation axes carry no
	// grid-sampling noise.
	traceSeed := rng.DeriveSeed(spec.Seed, "grid-trace")
	results := make([]Result, len(scenarios))
	for g, grp := range groups {
		for _, i := range grp.members {
			results[i], err = account(scenarios[i], models[i], traceSeed, sims[g])
			if err != nil {
				return nil, fmt.Errorf("scenario %d (%s): %w", i, scenarios[i].Name, err)
			}
		}
	}
	return &SweepResults{Spec: spec, Results: results, Simulations: len(groups), Workers: workers}, nil
}

// account derives one scenario's Result from its (possibly shared)
// simulation: trace the scenario's grid, account emissions over the
// measurement window.
func account(sc Scenario, gm grid.IntensityModel, traceSeed uint64, res *core.Results) (Result, error) {
	w, ok := res.WindowByLabel("measure")
	if !ok {
		return Result{}, fmt.Errorf("scenario: measurement window missing")
	}
	span := w.Window.To.Sub(w.Window.From)

	trace, err := gm.Trace(w.Window.From, w.Window.To, 30*time.Minute,
		rng.New(traceSeed))
	if err != nil {
		return Result{}, err
	}
	ci := grid.MeanIntensity(trace)

	// Embodied emissions scale with the slice of the 5,860-node machine
	// being simulated.
	full := core.DefaultConfig().Facility.Nodes
	params := emissions.ARCHER2Defaults()
	params.Embodied = params.Embodied.Scale(float64(sc.Nodes) / float64(full))
	acct := params.Account(w.MeanPower, span, ci)

	return Result{
		Scenario:  sc,
		MeanPower: w.MeanPower,
		MeanUtil:  w.MeanUtil,
		Energy:    w.MeanPower.EnergyOver(span),
		NodeHours: res.TotalUsage.NodeHours,
		MeanCI:    ci,
		Emissions: acct,
		Regime:    emissions.RegimeOf(acct),
	}, nil
}

// Table renders the cross-scenario comparison: every metric as its value
// plus the signed percentage delta against the baseline scenario.
func (s *SweepResults) Table() *report.DeltaTable {
	t := report.NewDeltaTable(
		fmt.Sprintf("Sweep: %s (%d scenarios, %d nodes, %d days)",
			s.Spec.Name, len(s.Results), s.Spec.Nodes, s.Spec.Days),
		"scenario",
		report.DeltaColumn{Header: "mean power", Format: report.KW},
		report.DeltaColumn{Header: "energy", Format: mwh},
		report.DeltaColumn{Header: "emissions", Format: tco2},
		report.DeltaColumn{Header: "node-hours", Format: knodeh},
	)
	for i, r := range s.Results {
		vals := []float64{
			r.MeanPower.Kilowatts(),
			r.Energy.MegawattHours(),
			r.Emissions.Total.Tonnes(),
			r.NodeHours,
		}
		if i == 0 {
			t.SetBaseline(r.Scenario.Name, vals...)
		} else {
			t.Add(r.Scenario.Name, vals...)
		}
	}
	return t
}

// RegimeTable renders each scenario's grid context and operating regime —
// the qualitative half of the paper's §2 decision rule.
func (s *SweepResults) RegimeTable() *report.Table {
	t := report.NewTable("Emissions regimes", "scenario", "grid mean",
		"scope 2", "scope 3", "scope-2 share", "regime")
	for _, r := range s.Results {
		t.AddRow(r.Scenario.Name,
			fmt.Sprintf("%.0f g/kWh", r.MeanCI.GramsPerKWh()),
			tco2(r.Emissions.Scope2.Tonnes()),
			tco2(r.Emissions.Scope3.Tonnes()),
			fmt.Sprintf("%.0f%%", r.Emissions.Scope2Share()*100),
			r.Regime.String())
	}
	return t
}

func mwh(v float64) string    { return fmt.Sprintf("%.1f MWh", v) }
func tco2(v float64) string   { return fmt.Sprintf("%.2f t", v) }
func knodeh(v float64) string { return fmt.Sprintf("%.0f", v) }

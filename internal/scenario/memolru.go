package scenario

import (
	"container/list"

	"github.com/greenhpc/archertwin/internal/core"
)

// memoEntry is one cached simulation: the shared results plus their
// digest, computed once at admission so repeat sweeps and the service
// layer can prove result identity without re-hashing the series on every
// hit.
type memoEntry struct {
	key    string
	res    *core.Results
	digest string
}

// memoLRU is the Runner's bounded memo store: a map for O(1) lookup over
// a recency list, most recently used at the front. A lookup refreshes the
// entry's recency and an admission beyond capacity evicts the coldest
// entry, so a long-lived Runner sweeping ever-new configurations keeps
// the hottest working set warm under bounded memory — in contrast to the
// earlier cache, which simply stopped admitting once full and pinned its
// first 256 entries forever.
type memoLRU struct {
	cap       int
	ll        *list.List // of *memoEntry; front = most recently used
	byKey     map[string]*list.Element
	evictions int
}

func newMemoLRU(cap int) *memoLRU {
	return &memoLRU{cap: cap, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the entry for key, refreshing its recency on a hit.
func (l *memoLRU) get(key string) (*memoEntry, bool) {
	el, ok := l.byKey[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*memoEntry), true
}

// put admits an entry as the most recently used, evicting the
// least-recently-used entry if the cache is over capacity. A put for an
// existing key replaces the entry and refreshes its recency.
func (l *memoLRU) put(e *memoEntry) {
	if l.cap <= 0 {
		return
	}
	if el, ok := l.byKey[e.key]; ok {
		el.Value = e
		l.ll.MoveToFront(el)
		return
	}
	l.byKey[e.key] = l.ll.PushFront(e)
	for l.ll.Len() > l.cap {
		coldest := l.ll.Back()
		l.ll.Remove(coldest)
		delete(l.byKey, coldest.Value.(*memoEntry).key)
		l.evictions++
	}
}

// len returns the number of cached entries.
func (l *memoLRU) len() int { return l.ll.Len() }

package scenario

import (
	"container/list"

	"github.com/greenhpc/archertwin/internal/core"
)

// memoEntry is one cached simulation: the shared results plus their
// digest, computed once at admission so repeat sweeps and the service
// layer can prove result identity without re-hashing the series on every
// hit, and the entry's byte cost (core.Results.MemoryFootprint at
// admission) charged against the cache's byte budget.
//
// A fork-point entry (key prefixed "snap|") holds a core.Snapshot instead
// of results: the checkpointed common prefix of a mid-sweep divergence
// family, priced at Snapshot.MemoryFootprint against the same byte
// budget, so warm fork points compete for cache space with warm results
// on equal terms.
type memoEntry struct {
	key    string
	res    *core.Results
	snap   *core.Snapshot
	digest string
	cost   int64
}

// memoLRU is the Runner's bounded memo store: a map for O(1) lookup over
// a recency list, most recently used at the front. A lookup refreshes the
// entry's recency; an admission evicts coldest-first until both bounds
// hold again, so a long-lived Runner sweeping ever-new configurations
// keeps the hottest working set warm under bounded memory — in contrast
// to the earliest cache, which simply stopped admitting once full and
// pinned its first 256 entries forever.
//
// Two bounds compose: cap limits the entry count (0 disables the cache),
// budget limits the summed entry costs in bytes (0 = no byte bound). The
// byte bound is what keeps a long-lived service honest: entries price by
// what they actually pin (a 13-month full-machine result costs ~1000x a
// 1-day mini sweep), so an entry-count cap alone would let a handful of
// big results quietly hold gigabytes forever.
type memoLRU struct {
	cap       int
	budget    int64
	ll        *list.List // of *memoEntry; front = most recently used
	byKey     map[string]*list.Element
	bytes     int64
	evictions int
}

func newMemoLRU(cap int, budget int64) *memoLRU {
	return &memoLRU{cap: cap, budget: budget, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the entry for key, refreshing its recency on a hit.
func (l *memoLRU) get(key string) (*memoEntry, bool) {
	el, ok := l.byKey[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*memoEntry), true
}

// put admits an entry as the most recently used, then evicts
// least-recently-used entries until the count and byte bounds both hold.
// A put for an existing key replaces the entry (re-pricing it) and
// refreshes its recency. An entry costing more than the whole budget is
// evicted by its own admission: the cache never holds more than budget
// bytes, even transiently across put calls.
func (l *memoLRU) put(e *memoEntry) {
	if l.cap <= 0 {
		return
	}
	if el, ok := l.byKey[e.key]; ok {
		l.bytes += e.cost - el.Value.(*memoEntry).cost
		el.Value = e
		l.ll.MoveToFront(el)
	} else {
		l.byKey[e.key] = l.ll.PushFront(e)
		l.bytes += e.cost
	}
	for l.ll.Len() > 0 && (l.ll.Len() > l.cap || (l.budget > 0 && l.bytes > l.budget)) {
		coldest := l.ll.Back()
		l.ll.Remove(coldest)
		ce := coldest.Value.(*memoEntry)
		delete(l.byKey, ce.key)
		l.bytes -= ce.cost
		l.evictions++
	}
}

// len returns the number of cached entries.
func (l *memoLRU) len() int { return l.ll.Len() }

package scenario

import (
	"reflect"
	"strings"
	"testing"

	"github.com/greenhpc/archertwin/internal/forecast"
)

func TestExpandEmptyAxesSingleScenario(t *testing.T) {
	scs, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("empty axes expanded to %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.Index != 0 || sc.Name != "baseline" {
		t.Errorf("baseline scenario = %+v", sc)
	}
	if sc.Frequency != "stock" || sc.Scheduler != "backfill" || sc.Workload != "base" {
		t.Errorf("baseline defaults = %+v", sc)
	}
	if sc.GridMean != 200 || sc.Nodes != 200 {
		t.Errorf("baseline grid/nodes = %v/%v, want 200/200", sc.GridMean, sc.Nodes)
	}
}

func TestExpandGridCartesian(t *testing.T) {
	spec := Spec{Axes: Axes{
		Frequency: []string{"stock", "capped"},
		GridMean:  []float64{200, 65, 20},
	}}
	scs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 6 {
		t.Fatalf("2x3 grid expanded to %d scenarios, want 6", len(scs))
	}
	// First scenario is the baseline: first value of every axis.
	if scs[0].Frequency != "stock" || scs[0].GridMean != 200 {
		t.Errorf("baseline = %+v", scs[0])
	}
	// Names carry only the explicitly swept axes.
	if scs[0].Name != "freq=stock grid=200" {
		t.Errorf("baseline name = %q", scs[0].Name)
	}
	for i, sc := range scs {
		if sc.Index != i {
			t.Errorf("scenario %d has index %d", i, sc.Index)
		}
		if strings.Contains(sc.Name, "sched=") || strings.Contains(sc.Name, "wl=") {
			t.Errorf("name %q mentions an unswept axis", sc.Name)
		}
	}
	// All names unique.
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

func TestExpandExplosionGuard(t *testing.T) {
	spec := Spec{
		MaxScenarios: 4,
		Axes: Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 65, 20},
		},
	}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("6 > 4 scenarios expanded without tripping the explosion guard")
	}
	// Raising the cap admits the same spec.
	spec.MaxScenarios = 6
	if _, err := spec.Expand(); err != nil {
		t.Fatalf("expansion at the cap failed: %v", err)
	}
}

func TestExpandListMode(t *testing.T) {
	spec := Spec{
		Mode: ModeList,
		Axes: Axes{
			Frequency: []string{"stock", "capped", "capped"},
			GridMean:  []float64{200, 200, 20},
			Scheduler: []string{"fcfs"}, // broadcast
		},
	}
	scs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("list mode expanded to %d scenarios, want 3", len(scs))
	}
	for _, sc := range scs {
		if sc.Scheduler != "fcfs" {
			t.Errorf("broadcast axis not applied: %+v", sc)
		}
	}
	if scs[2].Frequency != "capped" || scs[2].GridMean != 20 {
		t.Errorf("zip misaligned: %+v", scs[2])
	}

	spec.Axes.GridMean = []float64{200, 20} // length 2 vs 3
	if _, err := spec.Expand(); err == nil {
		t.Fatal("mismatched list-mode axis lengths accepted")
	}
}

func TestExpandRejectsBadAxisValues(t *testing.T) {
	bad := []Spec{
		{Axes: Axes{Frequency: []string{"3.5GHz"}}},       // unsupported P-state
		{Axes: Axes{Frequency: []string{"fast"}}},         // unparseable
		{Axes: Axes{Frequency: []string{"2.0GHz+boost"}}}, // boost only at top base
		{Axes: Axes{Scheduler: []string{"sjf"}}},
		{Axes: Axes{Scheduler: []string{"backfill=-1"}}},
		{Axes: Axes{Workload: []string{"debug"}}},
		{Axes: Axes{GridMean: []float64{-5}}},
		{Axes: Axes{Nodes: []int{2}}},
	}
	for i, spec := range bad {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("bad spec %d expanded without error: %+v", i, spec.Axes)
		}
	}
}

func TestExpandAcceptsExplicitSettings(t *testing.T) {
	spec := Spec{Axes: Axes{
		Frequency: []string{"1.5GHz", "2.0GHz", "2.25GHz+boost", "stock", "capped"},
		Scheduler: []string{"backfill=8", "fcfs", "backfill"},
		Workload:  []string{"base", "portable", "production", "simd"},
	}}
	if _, err := spec.Expand(); err != nil {
		t.Fatalf("valid axis values rejected: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Days: 5, WarmupDays: 5}).Validate(); err == nil {
		t.Error("warmup == days accepted")
	}
	if err := (Spec{Mode: "random"}).Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := (Spec{Nodes: 4}).Validate(); err == nil {
		t.Error("tiny facility accepted")
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec (all defaults) rejected: %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name": "x", "typo_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := ParseSpec([]byte(`{"name": "x", "axes": {"frequency": ["stock", "capped"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Axes.Frequency) != 2 {
		t.Errorf("parsed axes = %+v", s.Axes)
	}
}

// Scenarios that differ only in grid mix must share their simulation
// seed (common random numbers), so the grid axis never perturbs the
// simulated power or scheduling.
func TestGridAxisSharesSimulationSeed(t *testing.T) {
	spec := Spec{Axes: Axes{GridMean: []float64{200, 20}}}
	scs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	c0, _, err := scs[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := scs[1].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Seed != c1.Seed {
		t.Errorf("grid-only scenarios got different seeds: %d vs %d", c0.Seed, c1.Seed)
	}

	// A frequency change must change the seed label's simulation key but
	// still be deterministic call to call.
	spec2 := Spec{Axes: Axes{Frequency: []string{"stock", "capped"}}}
	scs2, err := spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := scs2[1].BuildConfig(spec2)
	b, _, _ := scs2[1].BuildConfig(spec2)
	if a.Seed != b.Seed {
		t.Error("BuildConfig seed not deterministic")
	}
	base, _, _ := scs2[0].BuildConfig(spec2)
	if a.Seed == base.Seed {
		t.Error("frequency change did not change the simulation seed")
	}
}

func TestBuildConfigAppliesAxes(t *testing.T) {
	spec := Spec{Axes: Axes{
		Frequency: []string{"capped"},
		Scheduler: []string{"fcfs"},
		Workload:  []string{"simd"},
		Nodes:     []int{64},
	}}
	scs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, gm, err := scs[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Facility.Nodes != 64 {
		t.Errorf("nodes = %d, want 64", cfg.Facility.Nodes)
	}
	if cfg.Sched.BackfillDepth != 0 {
		t.Errorf("fcfs backfill depth = %d, want 0", cfg.Sched.BackfillDepth)
	}
	if cfg.FleetVariant == nil || cfg.FleetVariant.CoreActivityFactor <= 1 {
		t.Errorf("simd fleet variant not applied: %+v", cfg.FleetVariant)
	}
	if len(cfg.Timeline.Changes) != 1 || cfg.Timeline.Changes[0].Setting == nil ||
		cfg.Timeline.Changes[0].Setting.Boost {
		t.Errorf("capped timeline not applied: %+v", cfg.Timeline.Changes)
	}
	if len(cfg.Windows) != 1 || cfg.Windows[0].Label != "measure" {
		t.Errorf("measurement window missing: %+v", cfg.Windows)
	}
	if gm.Base != 200 {
		t.Errorf("grid model base = %v, want default 200", gm.Base)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("built config invalid: %v", err)
	}
}

func TestShortSweepWarmupDefaults(t *testing.T) {
	// The default warmup must clamp to fit a short sweep instead of
	// failing validation.
	spec := Spec{Nodes: 32, Days: 2}
	if err := spec.Validate(); err != nil {
		t.Fatalf("2-day sweep with default warmup rejected: %v", err)
	}
	scs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := scs[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w := cfg.Windows[0]; !w.To.After(w.From) {
		t.Errorf("empty measurement window: %+v", w)
	}

	// Explicit -1 measures from day zero.
	spec.WarmupDays = -1
	scs, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err = scs[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Windows[0].From; !got.Equal(cfg.Start) {
		t.Errorf("warmup -1 window starts %v, want %v", got, cfg.Start)
	}
}

func TestExpandCarbonPolicyAxis(t *testing.T) {
	spec := Spec{Axes: Axes{
		GridMean:     []float64{200, 20},
		CarbonPolicy: []string{"fcfs", "delay-flexible", "carbon-budget"},
	}}
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 6 {
		t.Fatalf("expanded %d scenarios, want 6", len(scenarios))
	}
	if scenarios[0].CarbonPolicy != "fcfs" {
		t.Errorf("baseline carbon policy %q, want fcfs", scenarios[0].CarbonPolicy)
	}
	// fcfs scenarios at different grid means share one simulation; the
	// carbon-aware ones are distinct per grid mean.
	keys := map[string]bool{}
	for _, sc := range scenarios {
		keys[sc.simKey()] = true
	}
	if len(keys) != 5 {
		t.Errorf("got %d unique sim keys, want 5 (1 shared fcfs + 2 policies x 2 grids)", len(keys))
	}

	spec.Axes.CarbonPolicy = []string{"time-travel"}
	if _, err := spec.Expand(); err == nil {
		t.Error("invalid carbon policy accepted")
	}
}

// The carbon axis must not perturb the seeds of fcfs scenarios: an fcfs
// scenario's simKey is identical with and without the axis present, so
// every pre-carbon sweep result is unchanged.
func TestCarbonAxisPreservesFCFSSeeds(t *testing.T) {
	plain := Scenario{Frequency: "stock", GridMean: 200, Scheduler: "backfill", Workload: "base", Nodes: 64}
	fcfs := plain
	fcfs.CarbonPolicy = "fcfs"
	if plain.simKey() != fcfs.simKey() {
		t.Errorf("fcfs carbon policy changed the sim key: %q vs %q", plain.simKey(), fcfs.simKey())
	}
	aware := plain
	aware.CarbonPolicy = "delay-flexible"
	if aware.simKey() == plain.simKey() {
		t.Error("carbon-aware policy did not change the sim key")
	}
	// And a carbon-aware scenario's key must depend on the grid mean: the
	// scheduler reads the trace, so different grids are different sims.
	aware2 := aware
	aware2.GridMean = 20
	if aware.simKey() == aware2.simKey() {
		t.Error("carbon-aware sim key ignores the grid mean")
	}
}

func TestBuildConfigCarbon(t *testing.T) {
	spec := Spec{Nodes: 32, Days: 3, WarmupDays: 1,
		Axes: Axes{GridMean: []float64{100}, CarbonPolicy: []string{"delay-flexible"}}}
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := scenarios[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Carbon == nil {
		t.Fatal("carbon-aware scenario built no CarbonConfig")
	}
	if cfg.Carbon.NewPolicy == nil {
		t.Fatal("no policy factory")
	}
	tr, err := cfg.Carbon.Trace(cfg.Start, cfg.End)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := forecast.New(tr, cfg.Carbon.Error)
	if err != nil {
		t.Fatal(err)
	}
	pol := cfg.Carbon.NewPolicy(fc)
	if pol.Name() != "delay-flexible" {
		t.Errorf("policy %q, want delay-flexible", pol.Name())
	}

	// An fcfs scenario must not carry carbon wiring at all.
	plain := Spec{Nodes: 32, Days: 3, WarmupDays: 1}
	psc, err := plain.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pcfg, _, err := psc[0].BuildConfig(plain)
	if err != nil {
		t.Fatal(err)
	}
	if pcfg.Carbon != nil {
		t.Error("fcfs scenario built a CarbonConfig")
	}
}

func TestSpecValidateCarbonTunables(t *testing.T) {
	spec := Spec{Carbon: CarbonSpec{FlexibleShare: 1.5}}
	if err := spec.Validate(); err == nil {
		t.Error("flexible share > 1 accepted")
	}
	spec = Spec{Carbon: CarbonSpec{ForecastSigma: -2}}
	if err := spec.Validate(); err == nil {
		t.Error("negative forecast sigma accepted")
	}
}

// Canonical must be idempotent — a canonicalised spec re-entering
// defaulting (as it does when a service hands it to Runner.Run) must not
// shift. The -1 warmup sentinel is the regression case: resolving it to
// 0 would re-default to 4 days on the second pass.
func TestCanonicalIdempotent(t *testing.T) {
	specs := []Spec{
		{},
		{Days: 2, WarmupDays: -1},
		{Days: 1},
		{Days: 10, WarmupDays: 3, OverSubscription: 0.7},
		{Carbon: CarbonSpec{ThresholdGrams: 50}},
	}
	for _, s := range specs {
		once := s.Canonical()
		twice := once.Canonical()
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("Canonical not idempotent for %+v:\nonce  %+v\ntwice %+v", s, once, twice)
		}
	}
}

// The -1 warmup sentinel must mean "measure from day zero" end to end:
// the measurement window starts at the sweep start, at any defaulting
// depth.
func TestWarmupSentinelMeasuresFromDayZero(t *testing.T) {
	spec := Spec{Nodes: 32, Days: 2, WarmupDays: -1}.Canonical()
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := scenarios[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Windows[0].From.Equal(sweepStart) {
		t.Errorf("measurement window starts %v, want sweep start %v", cfg.Windows[0].From, sweepStart)
	}
}

// The Roofline-v2 axes must not perturb the seeds of scenarios holding
// them at their defaults: a scenario's simKey is identical with and
// without the axes present, so every pre-v2 sweep result is unchanged.
func TestRooflineV2AxesPreserveDefaultSeeds(t *testing.T) {
	plain := Scenario{Frequency: "stock", GridMean: 200, Scheduler: "backfill", Workload: "base", Nodes: 64}
	def := plain
	def.PerfModel, def.Fleet, def.Surrogate = PerfKernel, FleetCPU, SurrogateNone
	if plain.simKey() != def.simKey() {
		t.Errorf("default perf/fleet/surrogate changed the sim key: %q vs %q",
			plain.simKey(), def.simKey())
	}
	seen := map[string]string{"default": plain.simKey()}
	for name, mutate := range map[string]func(*Scenario){
		"perf=table":    func(sc *Scenario) { sc.PerfModel = PerfTable },
		"fleet=hybrid":  func(sc *Scenario) { sc.Fleet = FleetHybrid },
		"surrogate=10x": func(sc *Scenario) { sc.Surrogate = Surrogate10x },
		"surrogate=50x": func(sc *Scenario) { sc.Surrogate = Surrogate50x },
	} {
		sc := plain
		mutate(&sc)
		key := sc.simKey()
		for other, k := range seen {
			if key == k {
				t.Errorf("%s collides with %s: %q", name, other, key)
			}
		}
		seen[name] = key
	}
}

// BuildConfig must wire the Roofline-v2 axes into the core config: the
// table perf model, the hybrid fleet's AI partition (nodes/8, min 4)
// and the surrogate preset.
func TestBuildConfigRooflineV2Axes(t *testing.T) {
	spec := Spec{Nodes: 64, Days: 3, WarmupDays: 1, Axes: Axes{
		PerfModel: []string{"table"},
		Fleet:     []string{"hybrid"},
		Surrogate: []string{"50x"},
	}}
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := scenarios[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PerfModel != "table" {
		t.Errorf("cfg.PerfModel = %q, want table", cfg.PerfModel)
	}
	if len(cfg.Facility.Partitions) != 1 || cfg.Facility.Partitions[0].Nodes != 8 {
		t.Errorf("hybrid partitions = %+v, want one 8-node AI partition", cfg.Facility.Partitions)
	}
	if cfg.Surrogate == nil || cfg.Surrogate.Speedup != 50 || cfg.Surrogate.CoveredFraction != 0.5 {
		t.Errorf("cfg.Surrogate = %+v, want 50x over half the runtime", cfg.Surrogate)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("built config invalid: %v", err)
	}

	// A small facility still gets the 4-node partition floor.
	small := Spec{Nodes: 16, Days: 3, WarmupDays: 1, Axes: Axes{Fleet: []string{"hybrid"}}}
	scs, err := small.Expand()
	if err != nil {
		t.Fatal(err)
	}
	scfg, _, err := scs[0].BuildConfig(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(scfg.Facility.Partitions) != 1 || scfg.Facility.Partitions[0].Nodes != 4 {
		t.Errorf("small hybrid partitions = %+v, want one 4-node AI partition", scfg.Facility.Partitions)
	}

	// Default axes leave the config homogeneous and kernel-modelled.
	base := Spec{Nodes: 64, Days: 3, WarmupDays: 1}
	bscs, err := base.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bcfg, _, err := bscs[0].BuildConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	if bcfg.PerfModel != "" || bcfg.Surrogate != nil || len(bcfg.Facility.Partitions) != 0 {
		t.Errorf("default axes produced non-default config: perf=%q surrogate=%+v partitions=%+v",
			bcfg.PerfModel, bcfg.Surrogate, bcfg.Facility.Partitions)
	}

	// Bad axis values fail at expansion, before any simulation.
	for _, bad := range []Axes{
		{PerfModel: []string{"oracle"}},
		{Fleet: []string{"quantum"}},
		{Surrogate: []string{"1000x"}},
	} {
		if _, err := (Spec{Axes: bad}).Expand(); err == nil {
			t.Errorf("axes %+v accepted", bad)
		}
	}
}

// Package scenario is the declarative what-if engine of the twin: it
// expands a sweep Spec — axes of CPU frequency cap, grid carbon-intensity
// mix, scheduler policy, workload build variant and facility size — into
// concrete core configurations, runs them concurrently on a worker pool,
// and aggregates baseline-relative comparison tables (mean power, energy,
// emissions) in the style of the paper's before/after figures.
//
// The paper (Jackson, Simpson & Turner, SC-W 2023) is fundamentally a
// what-if study: §3-4 cap the CPU frequency and change the BIOS mode, §2
// asks what happens as the grid decarbonises, and §5 sketches compiler
// variants and demand response. This package turns each such question
// into one row of a sweep instead of a hand-written main.go; the
// carbon_policy axis adds the temporal dimension of §2 (when work runs).
//
// Determinism contract: results are byte-identical at any worker count.
// Every scenario derives its own root seed from the spec seed and its
// simulation-affecting axes via rng.DeriveSeed (see Scenario.simKey), so
// nothing depends on expansion order, worker identity or scheduling;
// scenarios differing only in grid mix share common random numbers (one
// simulation, one weather trace), so grid-axis deltas carry no sampling
// noise. Failures are equally deterministic: every failing scenario is
// reported, joined in index order. docs/sweeps.md documents the full
// spec schema and these guarantees.
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/forecast"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

// Expansion modes.
const (
	// ModeGrid takes the cartesian product of all axes (default).
	ModeGrid = "grid"
	// ModeList zips the axes: all multi-valued axes must have the same
	// length N, single-valued axes are broadcast, yielding N scenarios.
	ModeList = "list"
)

// DefaultMaxScenarios guards against accidental cartesian explosion.
const DefaultMaxScenarios = 256

// Axes are the sweep dimensions. An empty axis means "hold at the
// baseline value". The first value of every axis defines the baseline
// scenario.
type Axes struct {
	// Frequency values: "stock" (2.25 GHz + boost), "capped" (2.0 GHz),
	// or an explicit setting like "1.5GHz" / "2.25GHz+boost".
	Frequency []string `json:"frequency,omitempty"`
	// GridMean values are annual-mean grid carbon intensities in
	// gCO2/kWh; the GB2022 intensity model is rescaled to each.
	GridMean []float64 `json:"grid_mean,omitempty"`
	// Scheduler values: "backfill" (production EASY backfill), "fcfs"
	// (backfill disabled), or "backfill=N" for an explicit depth.
	Scheduler []string `json:"scheduler,omitempty"`
	// Workload values name fleet-wide build variants: "base" (as
	// calibrated), "portable" (scalar -O2), "production" (-O3) or "simd"
	// (vendor libs + wide SIMD), per apps.CommonVariants.
	Workload []string `json:"workload,omitempty"`
	// Nodes values override the spec's facility size per scenario.
	Nodes []int `json:"nodes,omitempty"`
	// CarbonPolicy values select the temporal scheduling policy: "fcfs"
	// (greedy baseline), "delay-flexible" (park flexible jobs until a
	// low-carbon window) or "carbon-budget" (rolling carbon-burn
	// admission throttle). Tunables live in Spec.Carbon.
	CarbonPolicy []string `json:"carbon_policy,omitempty"`
	// MidFrequency values change the default CPU frequency mid-sweep, at
	// Spec.DivergeDay: "none" (no change, the conventional baseline) or
	// any frequency value ("capped", "2.0GHz", ...). Scenarios differing
	// only on this axis share their whole history up to the divergence
	// point — the runner simulates that common prefix once, checkpoints
	// it, and forks each branch from the checkpoint (see Runner), with
	// results bit-identical to running every branch cold.
	MidFrequency []string `json:"mid_frequency,omitempty"`
	// PriorityMix values name job-priority distributions: "none" (all
	// jobs priority 0, the historical single-class behaviour), "dual"
	// (80% bulk at level 0, 20% urgent at level 5) or "tiered" (60/30/10
	// at levels 0/2/5). Per-job levels are drawn by a pure hash of the
	// job ID, so the arrival stream itself is unchanged.
	PriorityMix []string `json:"priority_mix,omitempty"`
	// BackfillPolicy values select the backfill algorithm: "easy"
	// (aggressive, head-protecting — the production default) or
	// "conservative" (every scanned queue job gets a protected planned
	// start).
	BackfillPolicy []string `json:"backfill_policy,omitempty"`
	// Preemption values: "off" (default), "requeue" (evicted jobs
	// restart from scratch at their original queue rank) or "cancel"
	// (evicted jobs terminate). Only meaningful with a priority mix —
	// victims must be strictly lower-priority than the starved head.
	Preemption []string `json:"preemption,omitempty"`
	// PerfModel values select the frequency-response model: "kernel"
	// (the first-order analytic roofline, the default) or "table"
	// (measured operating-point tables, interpolated per application —
	// see docs/model.md, "Roofline v2").
	PerfModel []string `json:"perf_model,omitempty"`
	// Fleet values select the facility composition: "cpu" (the
	// homogeneous production fleet, default) or "hybrid" (adds an AI
	// accelerator partition of nodes/8 — at least 4 — GPU nodes with
	// their own power decomposition and operating point).
	Fleet []string `json:"fleet,omitempty"`
	// Surrogate values model an ML surrogate replacing part of the
	// climate class's numerical work: "none" (default), "10x" or "50x"
	// (the covered half of each job's runtime accelerated by that
	// factor).
	Surrogate []string `json:"surrogate,omitempty"`
}

// Spec declaratively describes a scenario sweep.
type Spec struct {
	// Name titles the sweep in reports.
	Name string `json:"name"`
	// Nodes is the baseline facility size (default 200 compute nodes,
	// scaled from the 5,860-node machine via core.ScaledConfig).
	Nodes int `json:"nodes,omitempty"`
	// Days is the simulated span per scenario (default 28).
	Days int `json:"days,omitempty"`
	// WarmupDays are excluded from the measurement window while the
	// scheduler queue fills. Zero means the default (4, clamped to leave
	// a measurement window on short sweeps); -1 measures from day zero.
	WarmupDays int `json:"warmup_days,omitempty"`
	// Seed is the base seed every scenario seed is derived from
	// (default 42).
	Seed uint64 `json:"seed,omitempty"`
	// OverSubscription overrides offered load relative to capacity for
	// every scenario (0 = the core default, 1.10: saturated like the real
	// service). Temporal carbon policies only have room to shift work
	// when the machine is not permanently full, so carbon sweeps
	// typically set this below 1.
	OverSubscription float64 `json:"oversubscription,omitempty"`
	// DivergeDay is the day offset (from sweep start) at which the
	// mid_frequency axis applies its change — the point where branch
	// scenarios diverge from their shared prefix. Zero defaults to
	// three-quarters of Days when the axis is swept (late divergence,
	// where prefix sharing pays most); unused otherwise.
	DivergeDay int `json:"diverge_day,omitempty"`
	// Mode is ModeGrid (cartesian, default) or ModeList (zip).
	Mode string `json:"mode,omitempty"`
	// MaxScenarios caps the expansion size (default 256).
	MaxScenarios int `json:"max_scenarios,omitempty"`
	// PriorityAgingHours is the scheduler's aging knob when a priority
	// mix is swept: one priority level is worth this many hours of queue
	// wait (0, the default, disables aging — strict priority order).
	PriorityAgingHours float64 `json:"priority_aging_hours,omitempty"`

	// Carbon tunes the carbon-aware temporal policies; zero fields take
	// scenario-derived defaults (see CarbonSpec).
	Carbon CarbonSpec `json:"carbon,omitempty"`

	Axes Axes `json:"axes"`
}

// CarbonSpec tunes the carbon_policy axis. All fields are optional.
type CarbonSpec struct {
	// ThresholdGrams is the delay-flexible policy's "clean enough to
	// start now" intensity. Zero derives 90% of the scenario's grid mean,
	// so the policy chases the diurnal troughs of whatever grid the
	// scenario lives under.
	ThresholdGrams float64 `json:"threshold_g_per_kwh,omitempty"`
	// MaxDelayHours bounds the added wait per flexible job (default 8).
	MaxDelayHours float64 `json:"max_delay_hours,omitempty"`
	// FlexibleShare is the fraction of delay-eligible jobs (default 0.5).
	FlexibleShare float64 `json:"flexible_share,omitempty"`
	// BudgetFraction sizes the carbon-budget throttle relative to the
	// scenario's expected steady-state carbon burn (busy-node target x
	// facility size x grid mean). Default 0.85: the throttle bites
	// whenever the grid runs dirtier than 85% of its own mean would cost.
	BudgetFraction float64 `json:"budget_fraction,omitempty"`
	// ForecastSigma / ForecastGrowth parameterise the forecast error
	// model (gCO2/kWh at zero horizon, and per sqrt-hour of horizon).
	// Zero is a perfect forecast.
	ForecastSigma  float64 `json:"forecast_sigma,omitempty"`
	ForecastGrowth float64 `json:"forecast_growth,omitempty"`
}

// withDefaults fills zero carbon tunables.
func (c CarbonSpec) withDefaults() CarbonSpec {
	if c.MaxDelayHours == 0 {
		c.MaxDelayHours = 8
	}
	if c.FlexibleShare == 0 {
		c.FlexibleShare = 0.5
	}
	if c.BudgetFraction == 0 {
		c.BudgetFraction = 0.85
	}
	return c
}

// DefaultSpec returns the flagship frequency x grid-mix sweep: both paper
// operating points against four grid decarbonisation scenarios — eight
// scenarios answering the paper's §2 question ("when does the cap help?")
// in one run.
func DefaultSpec() Spec {
	return Spec{
		Name: "frequency x grid-mix",
		Axes: Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 100, 65, 20},
		},
	}
}

// ParseSpec decodes a JSON sweep spec, rejecting unknown fields.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s, nil
}

// withDefaults returns the spec with zero fields filled in.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "sweep"
	}
	if s.Nodes == 0 {
		s.Nodes = 200
	}
	if s.Days == 0 {
		s.Days = 28
	}
	// Negative WarmupDays (the "measure from day zero" sentinel) is
	// preserved rather than resolved to 0: a resolved 0 would re-default
	// to 4 on the next withDefaults pass, so collapsing the sentinel
	// would make defaulting non-idempotent (and Canonical unstable).
	// Consumers read the effective value through warmupDays.
	if s.WarmupDays == 0 {
		s.WarmupDays = 4
		if s.WarmupDays >= s.Days {
			s.WarmupDays = s.Days - 1
		}
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if len(s.Axes.MidFrequency) > 0 && s.DivergeDay == 0 {
		s.DivergeDay = s.Days * 3 / 4
		if s.DivergeDay < 1 {
			s.DivergeDay = 1
		}
	}
	if s.Mode == "" {
		s.Mode = ModeGrid
	}
	if s.MaxScenarios == 0 {
		s.MaxScenarios = DefaultMaxScenarios
	}
	s.Carbon = s.Carbon.withDefaults()
	return s
}

// warmupDays is the effective warmup span after defaulting: the negative
// "measure from day zero" sentinel reads as 0.
func (s Spec) warmupDays() int {
	if s.WarmupDays < 0 {
		return 0
	}
	return s.WarmupDays
}

// Canonical returns the spec with every defaultable field — the carbon
// tunables included — resolved to its effective value: the form under
// which two specs that mean the same sweep compare (and JSON-marshal)
// equal, whether defaults were spelled out or omitted. The twinserver
// derives its singleflight/dedup identity from the canonical form, so
// submitting {"days":28} and {} coalesce onto one sweep. Canonical is
// idempotent: Canonical(Canonical(s)) == Canonical(s).
func (s Spec) Canonical() Spec { return s.withDefaults() }

// Validate checks the spec (after defaulting).
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Nodes < 8 {
		return fmt.Errorf("scenario: nodes %d below minimum 8", s.Nodes)
	}
	if s.Days < 1 {
		return fmt.Errorf("scenario: days %d below minimum 1", s.Days)
	}
	if s.warmupDays() >= s.Days {
		return fmt.Errorf("scenario: warmup %d days does not leave a measurement window in %d days",
			s.warmupDays(), s.Days)
	}
	if s.Mode != ModeGrid && s.Mode != ModeList {
		return fmt.Errorf("scenario: unknown mode %q (want %q or %q)", s.Mode, ModeGrid, ModeList)
	}
	if s.OverSubscription < 0 {
		return fmt.Errorf("scenario: oversubscription %v must not be negative", s.OverSubscription)
	}
	for _, n := range s.Axes.Nodes {
		if n < 8 {
			return fmt.Errorf("scenario: nodes axis value %d below minimum 8", n)
		}
	}
	if len(s.Axes.MidFrequency) > 0 && (s.DivergeDay < 1 || s.DivergeDay >= s.Days) {
		return fmt.Errorf("scenario: diverge day %d not strictly inside the %d-day sweep",
			s.DivergeDay, s.Days)
	}
	if s.PriorityAgingHours < 0 {
		return fmt.Errorf("scenario: priority aging hours %v must not be negative", s.PriorityAgingHours)
	}
	c := s.Carbon
	if c.ThresholdGrams < 0 || c.MaxDelayHours < 0 || c.BudgetFraction < 0 ||
		c.FlexibleShare < 0 || c.FlexibleShare > 1 ||
		c.ForecastSigma < 0 || c.ForecastGrowth < 0 {
		return fmt.Errorf("scenario: invalid carbon tunables %+v", c)
	}
	return nil
}

// Scenario is one concrete point of an expanded sweep.
type Scenario struct {
	// Index is the scenario's position in the expansion; index 0 is the
	// baseline (the first value of every axis).
	Index int
	// Name is the human-readable axis assignment, e.g.
	// "freq=capped grid=65". Only explicitly-swept axes appear.
	Name string

	Frequency      string
	GridMean       float64
	Scheduler      string
	Workload       string
	Nodes          int
	CarbonPolicy   string
	MidFrequency   string
	PriorityMix    string
	BackfillPolicy string
	Preemption     string
	PerfModel      string
	Fleet          string
	Surrogate      string
}

// axis is one generic sweep dimension after defaulting.
type axis struct {
	key      string
	values   []string
	explicit bool
}

// axes normalises the spec's axes into a fixed order, defaulting empty
// ones to their single baseline value.
func (s Spec) axes() []axis {
	str := func(key string, vals []string, def string) axis {
		if len(vals) == 0 {
			return axis{key: key, values: []string{def}}
		}
		return axis{key: key, values: vals, explicit: true}
	}
	gm := axis{key: "grid"}
	if len(s.Axes.GridMean) == 0 {
		gm.values = []string{"200"}
	} else {
		gm.explicit = true
		for _, v := range s.Axes.GridMean {
			gm.values = append(gm.values, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	nodes := axis{key: "nodes"}
	if len(s.Axes.Nodes) == 0 {
		nodes.values = []string{strconv.Itoa(s.Nodes)}
	} else {
		nodes.explicit = true
		for _, v := range s.Axes.Nodes {
			nodes.values = append(nodes.values, strconv.Itoa(v))
		}
	}
	return []axis{
		str("freq", s.Axes.Frequency, "stock"),
		gm,
		str("sched", s.Axes.Scheduler, "backfill"),
		str("wl", s.Axes.Workload, "base"),
		nodes,
		str("carbon", s.Axes.CarbonPolicy, CarbonFCFS),
		str("mid", s.Axes.MidFrequency, MidNone),
		str("prio", s.Axes.PriorityMix, PriorityNone),
		str("bf", s.Axes.BackfillPolicy, BackfillEASY),
		str("preempt", s.Axes.Preemption, PreemptOff),
		str("perf", s.Axes.PerfModel, PerfKernel),
		str("fleet", s.Axes.Fleet, FleetCPU),
		str("surrogate", s.Axes.Surrogate, SurrogateNone),
	}
}

// Expand turns the spec into its concrete scenario list. The first
// scenario is always the baseline. Every axis value is validated here, so
// a bad spec fails before any simulation runs.
func (s Spec) Expand() ([]Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	ax := s.axes()

	var combos [][]string
	switch s.Mode {
	case ModeGrid:
		total := 1
		for _, a := range ax {
			total *= len(a.values)
			if total > s.MaxScenarios {
				return nil, fmt.Errorf("scenario: expansion exceeds %d scenarios (cartesian explosion guard; raise max_scenarios to override)",
					s.MaxScenarios)
			}
		}
		combos = [][]string{nil}
		for _, a := range ax {
			var next [][]string
			for _, c := range combos {
				for _, v := range a.values {
					row := append(append([]string(nil), c...), v)
					next = append(next, row)
				}
			}
			combos = next
		}
	case ModeList:
		n := 1
		for _, a := range ax {
			if len(a.values) == 1 {
				continue
			}
			if n == 1 {
				n = len(a.values)
			} else if len(a.values) != n {
				return nil, fmt.Errorf("scenario: list mode needs equal axis lengths, got %d and %d",
					n, len(a.values))
			}
		}
		if n > s.MaxScenarios {
			return nil, fmt.Errorf("scenario: expansion exceeds %d scenarios (raise max_scenarios to override)",
				s.MaxScenarios)
		}
		for i := 0; i < n; i++ {
			row := make([]string, len(ax))
			for j, a := range ax {
				if len(a.values) == 1 {
					row[j] = a.values[0]
				} else {
					row[j] = a.values[i]
				}
			}
			combos = append(combos, row)
		}
	}

	out := make([]Scenario, len(combos))
	for i, row := range combos {
		sc := Scenario{Index: i}
		var nameParts []string
		for j, a := range ax {
			if a.explicit {
				nameParts = append(nameParts, a.key+"="+row[j])
			}
		}
		sc.Name = strings.Join(nameParts, " ")
		if sc.Name == "" {
			sc.Name = "baseline"
		}
		sc.Frequency = row[0]
		gm, err := strconv.ParseFloat(row[1], 64)
		if err != nil || gm <= 0 {
			return nil, fmt.Errorf("scenario: invalid grid mean %q", row[1])
		}
		sc.GridMean = gm
		sc.Scheduler = row[2]
		sc.Workload = row[3]
		nodes, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("scenario: invalid node count %q", row[4])
		}
		sc.Nodes = nodes
		sc.CarbonPolicy = row[5]
		sc.MidFrequency = row[6]
		sc.PriorityMix = row[7]
		sc.BackfillPolicy = row[8]
		sc.Preemption = row[9]
		sc.PerfModel = row[10]
		sc.Fleet = row[11]
		sc.Surrogate = row[12]

		// Validate every axis value now, before any simulation runs.
		spec := cpu.EPYC7742()
		if _, err := parseFrequency(spec, sc.Frequency); err != nil {
			return nil, err
		}
		if _, err := parseScheduler(sc.Scheduler); err != nil {
			return nil, err
		}
		if _, err := parseWorkload(sc.Workload); err != nil {
			return nil, err
		}
		if err := validateCarbonPolicy(sc.CarbonPolicy); err != nil {
			return nil, err
		}
		if sc.MidFrequency != MidNone && sc.MidFrequency != "" {
			if _, err := parseFrequency(spec, sc.MidFrequency); err != nil {
				return nil, err
			}
		}
		if _, err := parsePriorityMix(sc.PriorityMix); err != nil {
			return nil, err
		}
		if _, err := parseBackfillPolicy(sc.BackfillPolicy); err != nil {
			return nil, err
		}
		if _, err := parsePreemption(sc.Preemption); err != nil {
			return nil, err
		}
		if _, err := parsePerfModel(sc.PerfModel); err != nil {
			return nil, err
		}
		if _, err := parseFleet(sc.Fleet); err != nil {
			return nil, err
		}
		if _, err := parseSurrogate(sc.Surrogate); err != nil {
			return nil, err
		}
		out[i] = sc
	}
	return out, nil
}

// MidNone is the mid_frequency axis value meaning "no mid-sweep change"
// — the branch that simply continues the shared prefix.
const MidNone = "none"

// Carbon-policy axis values.
const (
	// CarbonFCFS is the greedy baseline: start work as soon as resources
	// allow, blind to the grid.
	CarbonFCFS = "fcfs"
	// CarbonDelayFlexible parks flexible jobs until a low-carbon window.
	CarbonDelayFlexible = "delay-flexible"
	// CarbonBudget throttles admission to a rolling carbon-burn budget.
	CarbonBudget = "carbon-budget"
)

// validateCarbonPolicy checks a carbon_policy axis value.
func validateCarbonPolicy(v string) error {
	switch v {
	case CarbonFCFS, CarbonDelayFlexible, CarbonBudget, "":
		return nil
	}
	return fmt.Errorf("scenario: invalid carbon policy %q (want %q, %q or %q)",
		v, CarbonFCFS, CarbonDelayFlexible, CarbonBudget)
}

// Priority-mix axis values.
const (
	// PriorityNone runs every job at priority 0 — the single-class
	// historical behaviour (and the only mix whose scenarios keep their
	// pre-axis seeds).
	PriorityNone = "none"
	// PriorityDual is 80% bulk work at level 0, 20% urgent at level 5.
	PriorityDual = "dual"
	// PriorityTiered is 60/30/10 at levels 0/2/5.
	PriorityTiered = "tiered"
)

// Backfill-policy axis values (sched.BackfillPolicy names).
const (
	BackfillEASY         = "easy"
	BackfillConservative = "conservative"
)

// Preemption axis values (sched.PreemptionMode names).
const (
	PreemptOff     = "off"
	PreemptRequeue = "requeue"
	PreemptCancel  = "cancel"
)

// Perf-model axis values (core.Config.PerfModel names).
const (
	PerfKernel = "kernel"
	PerfTable  = "table"
)

// Fleet axis values.
const (
	FleetCPU    = "cpu"
	FleetHybrid = "hybrid"
)

// Surrogate axis values.
const (
	SurrogateNone = "none"
	Surrogate10x  = "10x"
	Surrogate50x  = "50x"
)

// surrogateClass is the fleet class the surrogate axis accelerates —
// climate/ocean modelling, the domain with the most established ML
// surrogates (and the paper's §5 candidate for demand response).
const surrogateClass = "climate-ocean"

// parsePerfModel resolves a perf_model axis value into the
// core.Config.PerfModel string ("" = the kernel default).
func parsePerfModel(v string) (string, error) {
	switch v {
	case PerfKernel, "":
		return "", nil
	case PerfTable:
		return PerfTable, nil
	}
	return "", fmt.Errorf("scenario: invalid perf model %q (want %q or %q)",
		v, PerfKernel, PerfTable)
}

// parseFleet resolves a fleet axis value; true means the hybrid
// CPU+AI-partition fleet.
func parseFleet(v string) (bool, error) {
	switch v {
	case FleetCPU, "":
		return false, nil
	case FleetHybrid:
		return true, nil
	}
	return false, fmt.Errorf("scenario: invalid fleet %q (want %q or %q)",
		v, FleetCPU, FleetHybrid)
}

// parseSurrogate resolves a surrogate axis value into a core surrogate
// config (nil = purely numerical workload). Both presets cover half of
// each covered job's runtime, per the Amdahl split typical of hybrid
// surrogate/numerics pipelines.
func parseSurrogate(v string) (*core.SurrogateConfig, error) {
	switch v {
	case SurrogateNone, "":
		return nil, nil
	case Surrogate10x:
		return &core.SurrogateConfig{Class: surrogateClass, Speedup: 10, CoveredFraction: 0.5}, nil
	case Surrogate50x:
		return &core.SurrogateConfig{Class: surrogateClass, Speedup: 50, CoveredFraction: 0.5}, nil
	}
	return nil, fmt.Errorf("scenario: invalid surrogate %q (want %q, %q or %q)",
		v, SurrogateNone, Surrogate10x, Surrogate50x)
}

// parsePriorityMix resolves a priority_mix axis value into workload
// priority classes (nil = single-class).
func parsePriorityMix(v string) ([]workload.PriorityClass, error) {
	switch v {
	case PriorityNone, "":
		return nil, nil
	case PriorityDual:
		return []workload.PriorityClass{
			{Level: 0, Share: 0.8},
			{Level: 5, Share: 0.2},
		}, nil
	case PriorityTiered:
		return []workload.PriorityClass{
			{Level: 0, Share: 0.6},
			{Level: 2, Share: 0.3},
			{Level: 5, Share: 0.1},
		}, nil
	}
	return nil, fmt.Errorf("scenario: invalid priority mix %q (want %q, %q or %q)",
		v, PriorityNone, PriorityDual, PriorityTiered)
}

// parseBackfillPolicy resolves a backfill_policy axis value.
func parseBackfillPolicy(v string) (sched.BackfillPolicy, error) {
	switch v {
	case BackfillEASY, "":
		return sched.BackfillEASY, nil
	case BackfillConservative:
		return sched.BackfillConservative, nil
	}
	return 0, fmt.Errorf("scenario: invalid backfill policy %q (want %q or %q)",
		v, BackfillEASY, BackfillConservative)
}

// parsePreemption resolves a preemption axis value.
func parsePreemption(v string) (sched.PreemptionMode, error) {
	switch v {
	case PreemptOff, "":
		return sched.PreemptOff, nil
	case PreemptRequeue:
		return sched.PreemptRequeue, nil
	case PreemptCancel:
		return sched.PreemptCancel, nil
	}
	return 0, fmt.Errorf("scenario: invalid preemption mode %q (want %q, %q or %q)",
		v, PreemptOff, PreemptRequeue, PreemptCancel)
}

// parseFrequency resolves a frequency axis value against spec.
func parseFrequency(spec *cpu.Spec, v string) (cpu.FreqSetting, error) {
	switch v {
	case "stock", "":
		return spec.DefaultSetting(), nil
	case "capped":
		return spec.CappedSetting(), nil
	}
	str := v
	boost := false
	if strings.HasSuffix(str, "+boost") {
		boost = true
		str = strings.TrimSuffix(str, "+boost")
	}
	str = strings.TrimSuffix(str, "GHz")
	ghz, err := strconv.ParseFloat(str, 64)
	if err != nil {
		return cpu.FreqSetting{}, fmt.Errorf("scenario: invalid frequency %q (want \"stock\", \"capped\" or e.g. \"2.0GHz\")", v)
	}
	fs := cpu.FreqSetting{Base: units.Gigahertz(ghz), Boost: boost}
	if err := spec.ValidateSetting(fs); err != nil {
		return cpu.FreqSetting{}, fmt.Errorf("scenario: frequency %q: %w", v, err)
	}
	return fs, nil
}

// parseScheduler resolves a scheduler axis value into a backfill depth.
func parseScheduler(v string) (int, error) {
	switch v {
	case "backfill", "":
		return 64, nil
	case "fcfs":
		return 0, nil
	}
	if rest, ok := strings.CutPrefix(v, "backfill="); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("scenario: invalid scheduler %q (want \"backfill\", \"fcfs\" or \"backfill=N\")", v)
}

// parseWorkload resolves a workload axis value into a fleet build variant
// (nil = the calibrated base mix). Variants are matched by name rather
// than position, so reordering or extending apps.CommonVariants fails
// loudly here instead of silently selecting the wrong build.
func parseWorkload(v string) (*apps.Variant, error) {
	switch v {
	case "base", "":
		return nil, nil
	case "portable", "production", "simd":
		for _, c := range apps.CommonVariants() {
			if strings.Contains(strings.ToLower(c.Name), v) {
				c := c
				return &c, nil
			}
		}
		return nil, fmt.Errorf("scenario: workload %q has no matching variant in apps.CommonVariants", v)
	}
	return nil, fmt.Errorf("scenario: invalid workload %q (want \"base\", \"portable\", \"production\" or \"simd\")", v)
}

// sweepStart is the fixed calendar anchor for sweep runs (the paper's
// operational year); scenarios differ by axes, never by date.
var sweepStart = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// divergeTime is the absolute virtual time of the mid-sweep divergence
// point (meaningful only when the mid_frequency axis is swept).
func (s Spec) divergeTime() time.Time {
	return sweepStart.AddDate(0, 0, s.withDefaults().DivergeDay)
}

// carbonAware reports whether the scenario's temporal policy actually
// reads the grid (fcfs is grid-blind).
func (sc Scenario) carbonAware() bool {
	return sc.CarbonPolicy != "" && sc.CarbonPolicy != CarbonFCFS
}

// simKey is the canonical label of the axes that actually change the
// simulation. Scenario seeds derive from it rather than from the full
// name, so scenarios that differ only in grid mix share one stream of
// common random numbers: their power and scheduling results are exactly
// equal and the emissions delta isolates the grid change.
//
// A carbon-aware temporal policy breaks that independence by design — the
// scheduler reads the intensity trace — so for non-fcfs policies the key
// also carries the policy and the grid mean: such scenarios are distinct
// simulations, while every fcfs scenario keeps the exact seeds (and
// therefore results) it had before the carbon axis existed.
// The mid_frequency axis is deliberately excluded: branch scenarios keep
// their family's seed, so every branch shares the exact common-prefix
// history (and random-number streams) up to the divergence point —
// that is what lets the runner simulate the prefix once and fork it, and
// what makes branch deltas pure divergence effects. Use runKey where
// distinct results (not distinct seeds) must be told apart.
// Like the carbon terms, the Slurm-realism axes (priority mix, backfill
// policy, preemption) append key terms only at non-default values:
// scenarios that do not sweep them keep the exact seeds they had before
// the axes existed, and scenarios that differ on them are distinct
// simulations (the runner memoizes by runKey, so they must not collide).
func (sc Scenario) simKey() string {
	key := fmt.Sprintf("freq=%s sched=%s wl=%s nodes=%d",
		sc.Frequency, sc.Scheduler, sc.Workload, sc.Nodes)
	if sc.carbonAware() {
		key += fmt.Sprintf(" carbon=%s grid=%s", sc.CarbonPolicy,
			strconv.FormatFloat(sc.GridMean, 'g', -1, 64))
	}
	if sc.PriorityMix != "" && sc.PriorityMix != PriorityNone {
		key += " prio=" + sc.PriorityMix
	}
	if sc.BackfillPolicy != "" && sc.BackfillPolicy != BackfillEASY {
		key += " bf=" + sc.BackfillPolicy
	}
	if sc.Preemption != "" && sc.Preemption != PreemptOff {
		key += " preempt=" + sc.Preemption
	}
	if sc.PerfModel != "" && sc.PerfModel != PerfKernel {
		key += " perf=" + sc.PerfModel
	}
	if sc.Fleet != "" && sc.Fleet != FleetCPU {
		key += " fleet=" + sc.Fleet
	}
	if sc.Surrogate != "" && sc.Surrogate != SurrogateNone {
		key += " surrogate=" + sc.Surrogate
	}
	return key
}

// midActive reports whether the scenario actually diverges mid-sweep.
func (sc Scenario) midActive() bool {
	return sc.MidFrequency != "" && sc.MidFrequency != MidNone
}

// runKey identifies the scenario's simulation *results*: simKey plus the
// mid-sweep divergence. Scenarios sharing a runKey produce byte-identical
// simulations; scenarios sharing only a simKey share their seed and
// prefix but diverge at DivergeDay.
func (sc Scenario) runKey() string {
	if !sc.midActive() {
		return sc.simKey()
	}
	return sc.simKey() + " mid=" + sc.MidFrequency
}

// BuildConfig materialises the scenario into a runnable core.Config plus
// the grid intensity model for its emissions accounting. The scenario's
// seed is derived from the spec seed and the scenario's simulation axes
// only (see simKey), so the configuration is independent of expansion
// order, axis ordering and worker scheduling.
func (sc Scenario) BuildConfig(s Spec) (core.Config, grid.IntensityModel, error) {
	s = s.withDefaults()
	cfg := core.ScaledConfig(sc.Nodes, sweepStart, s.Days)
	cfg.Seed = rng.DeriveSeed(s.Seed, "scenario/"+sc.simKey())

	fs, err := parseFrequency(cfg.Facility.CPU, sc.Frequency)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	depth, err := parseScheduler(sc.Scheduler)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	variant, err := parseWorkload(sc.Workload)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	mix, err := parsePriorityMix(sc.PriorityMix)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	bf, err := parseBackfillPolicy(sc.BackfillPolicy)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	pre, err := parsePreemption(sc.Preemption)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	pm, err := parsePerfModel(sc.PerfModel)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	hybrid, err := parseFleet(sc.Fleet)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}
	sur, err := parseSurrogate(sc.Surrogate)
	if err != nil {
		return core.Config{}, grid.IntensityModel{}, err
	}

	// All scenarios run in the modern operating mode (Performance
	// Determinism, the paper's post-May-2022 state) with the scenario
	// frequency in force from day zero.
	perfDet := cpu.PerformanceDeterminism
	cfg.Timeline = policy.Timeline{Changes: []policy.Change{
		{At: sweepStart, Mode: &perfDet, Setting: &fs, Note: "scenario operating point"},
	}}
	if sc.midActive() {
		mfs, err := parseFrequency(cfg.Facility.CPU, sc.MidFrequency)
		if err != nil {
			return core.Config{}, grid.IntensityModel{}, err
		}
		cfg.Timeline.Changes = append(cfg.Timeline.Changes, policy.Change{
			At:      s.divergeTime(),
			Setting: &mfs,
			Note:    "mid-sweep frequency divergence",
		})
	}
	cfg.Sched.BackfillDepth = depth
	cfg.Sched.Backfill = bf
	cfg.Sched.Preemption = pre
	cfg.Sched.AgingHours = s.PriorityAgingHours
	cfg.Priorities = mix
	cfg.FleetVariant = variant
	cfg.PerfModel = pm
	cfg.Surrogate = sur
	if hybrid {
		ai := sc.Nodes / 8
		if ai < 4 {
			ai = 4
		}
		cfg.Facility.Partitions = []facility.Partition{facility.AIPartition(ai)}
	}
	if s.OverSubscription > 0 {
		cfg.OverSubscription = s.OverSubscription
	}
	cfg.Windows = []core.Window{{
		Label: "measure",
		From:  sweepStart.AddDate(0, 0, s.warmupDays()),
		To:    sweepStart.AddDate(0, 0, s.Days),
	}}
	gm := grid.GB2022().Scaled(sc.GridMean)
	if sc.carbonAware() {
		cfg.Carbon = sc.carbonConfig(s, gm)
	}
	return cfg, gm, nil
}

// carbonConfig builds the core carbon wiring for a carbon-aware
// scenario.
func (sc Scenario) carbonConfig(s Spec, gm grid.IntensityModel) *core.CarbonConfig {
	return NewCarbonConfig(sc.CarbonPolicy, s.Carbon, gm, sc.GridMean, sc.Nodes, s.Seed)
}

// NewCarbonConfig builds the core carbon wiring for a temporal policy —
// the single source of the policy tunables' semantics, shared by sweep
// scenarios and cmd/gridcitizen so both frontends mean the same thing by
// "delay-flexible" or "carbon-budget at fraction 0.85". The trace seed
// derives from the base seed only (rng.DeriveSeed(seed, "grid-trace")),
// matching the runner's accounting trace, so the scheduler's forecasts
// and the emissions account always describe the same weather.
func NewCarbonConfig(policyName string, cs CarbonSpec, gm grid.IntensityModel, gridMean float64, nodes int, seed uint64) *core.CarbonConfig {
	cs = cs.withDefaults()
	threshold := cs.ThresholdGrams
	if threshold <= 0 {
		threshold = 0.9 * gridMean
	}
	// Expected steady-state burn: every node busy at the calibrated
	// busy-node draw, on a grid at the scenario's mean intensity.
	busyKW := core.DefaultConfig().BusyNodeTarget.Watts() * float64(nodes) / 1e3
	budget := units.Grams(cs.BudgetFraction * busyKW * gridMean)
	flexSeed := rng.DeriveSeed(seed, "carbon-flex")
	return &core.CarbonConfig{
		Model:     gm,
		TraceSeed: rng.DeriveSeed(seed, "grid-trace"),
		Error: forecast.ErrorModel{
			Sigma0:            cs.ForecastSigma,
			GrowthPerSqrtHour: cs.ForecastGrowth,
			Seed:              rng.DeriveSeed(seed, "forecast-error"),
		},
		NewPolicy: func(fc *forecast.Forecaster) sched.TemporalPolicy {
			switch policyName {
			case CarbonDelayFlexible:
				return &sched.DelayFlexiblePolicy{
					Forecast:      fc,
					Threshold:     units.GramsPerKWh(threshold),
					MaxDelay:      time.Duration(cs.MaxDelayHours * float64(time.Hour)),
					FlexibleShare: cs.FlexibleShare,
					Seed:          flexSeed,
				}
			case CarbonBudget:
				return &sched.CarbonBudgetPolicy{Forecast: fc, BudgetPerHour: budget}
			default:
				return sched.GreedyPolicy{}
			}
		},
	}
}

package scenario

// This file is the sweep fabric's view of a spec: how an expanded grid
// partitions into shard-affinity groups (Partition) and how per-shard
// results merge back into one SweepResults (Assemble). Both sides are
// pure functions of the canonical spec, so a coordinator and its
// workers agree on scenario identity without ever shipping expanded
// scenarios over the wire — only indices travel.

import "fmt"

// Partition describes how a sweep's expanded grid shards across
// replicas.
type Partition struct {
	// Keys holds, per expanded scenario, the canonical key of the
	// simulation prefix it shares (Scenario simKey): the consistent-hash
	// affinity key. Scenarios with equal keys share a simulation — or a
	// checkpoint/fork family — so a partitioner must keep them on one
	// replica to preserve the sharing; hashing the key does exactly that,
	// and also lands repeat traffic for the same configuration on the
	// replica whose memo is already warm.
	Keys []string
	// RunKeys holds, per expanded scenario, the key of its distinct
	// simulation *results* (simKey plus any mid-sweep divergence):
	// scenarios sharing a run key are one unit of work.
	RunKeys []string
	// Groups maps each affinity key to the ascending scenario indices
	// sharing it.
	Groups map[string][]int
	// GroupOrder lists the affinity keys in first-appearance (expansion)
	// order, so iteration over Groups can be deterministic.
	GroupOrder []string
	// Simulations is the number of distinct simulations the whole sweep
	// needs (distinct run keys) — the denominator a coordinator reports
	// progress against, matching a single-process run's Simulations.
	Simulations int
}

// Partition expands and validates the spec and returns its sharding
// structure.
func (s Spec) Partition() (Partition, error) {
	scenarios, err := s.Expand()
	if err != nil {
		return Partition{}, err
	}
	p := Partition{
		Keys:    make([]string, len(scenarios)),
		RunKeys: make([]string, len(scenarios)),
		Groups:  make(map[string][]int, len(scenarios)),
	}
	runKeys := map[string]bool{}
	for i, sc := range scenarios {
		key := sc.simKey()
		p.Keys[i] = key
		p.RunKeys[i] = sc.runKey()
		if _, seen := p.Groups[key]; !seen {
			p.GroupOrder = append(p.GroupOrder, key)
		}
		p.Groups[key] = append(p.Groups[key], i)
		runKeys[sc.runKey()] = true
	}
	p.Simulations = len(runKeys)
	return p, nil
}

// Assemble merges per-scenario results — typically gathered from shard
// replicas — into one SweepResults, recomputing the cross-scenario
// aggregation (avoided carbon against each scenario's baseline-policy
// counterpart) that no single shard could see. results must hold
// exactly one entry per expanded scenario, in expansion order, as
// produced by Runner.RunScenarios; workers records the replica count
// for reporting.
//
// Determinism contract: for results gathered from RunScenarios slices
// at any shard count, the assembled SweepResults — per-scenario values,
// simulation digests, and every rendered table — is byte-identical to a
// single-process Runner.Run of the same spec.
func Assemble(spec Spec, results []Result, workers int) (*SweepResults, error) {
	scenarios, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if len(results) != len(scenarios) {
		return nil, fmt.Errorf("scenario: assembling %d results against %d expanded scenarios",
			len(results), len(scenarios))
	}
	runKeys := map[string]bool{}
	for i, sc := range scenarios {
		if got := results[i].Scenario.Index; got != i {
			return nil, fmt.Errorf("scenario: result %d carries scenario index %d", i, got)
		}
		if results[i].SimDigest == "" {
			return nil, fmt.Errorf("scenario: result %d (%s) lacks a simulation digest", i, sc.Name)
		}
		runKeys[sc.runKey()] = true
		// Cross-scenario fields are recomputed below; clear whatever a
		// partial view may have left.
		results[i].AvoidedCarbon = 0
		results[i].HasBaseline = false
	}
	spec = spec.withDefaults()
	fillAvoidedCarbon(spec, scenarios, results)
	return &SweepResults{Spec: spec, Results: results, Simulations: len(runKeys), Workers: workers}, nil
}

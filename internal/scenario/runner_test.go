package scenario

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/greenhpc/archertwin/internal/core"
)

// tinySpec is a fast 4-scenario sweep used by the runner tests: 32 nodes
// for 3 days is a sub-second simulation per scenario.
func tinySpec() Spec {
	return Spec{
		Nodes:      32,
		Days:       3,
		WarmupDays: 1,
		Axes: Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 20},
		},
	}
}

// The headline determinism guarantee: the same spec and seed produce
// byte-identical aggregate results at 1, 4 and 8 workers.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec()
	ref, err := (&Runner{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	refTable := ref.Table().String()
	for _, workers := range []int{4, 8} {
		got, err := (&Runner{Workers: workers}).Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Results, got.Results) {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
		if gt := got.Table().String(); gt != refTable {
			t.Errorf("rendered table differs between 1 and %d workers:\n%s\nvs\n%s",
				workers, refTable, gt)
		}
	}
}

// A different seed must actually change the results (the determinism
// above is not a constant function).
func TestRunnerSeedSensitivity(t *testing.T) {
	spec := tinySpec()
	a, err := (&Runner{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	b, err := (&Runner{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Results, b.Results) {
		t.Error("different seeds produced identical results")
	}
}

func TestRunnerSingleScenario(t *testing.T) {
	spec := Spec{Nodes: 32, Days: 2, WarmupDays: 1}
	res, err := (&Runner{Workers: 8}).Run(context.Background(), spec) // more workers than scenarios
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(res.Results))
	}
	r := res.Baseline()
	if r.MeanPower.Kilowatts() <= 0 || r.Energy.MegawattHours() <= 0 {
		t.Errorf("degenerate baseline result: %+v", r)
	}
	if r.Emissions.Total.Tonnes() <= 0 {
		t.Errorf("no emissions accounted: %+v", r.Emissions)
	}
}

// Physical sanity on the flagship axes: capping the frequency must cut
// mean power, and a cleaner grid must cut emissions at equal power.
func TestRunnerAxisEffects(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range res.Results {
		byName[r.Scenario.Name] = r
	}
	stock := byName["freq=stock grid=200"]
	capped := byName["freq=capped grid=200"]
	if capped.MeanPower.Watts() >= stock.MeanPower.Watts() {
		t.Errorf("frequency cap did not reduce power: %v vs %v",
			capped.MeanPower, stock.MeanPower)
	}
	clean := byName["freq=stock grid=20"]
	if clean.MeanPower != stock.MeanPower || clean.NodeHours != stock.NodeHours {
		t.Errorf("grid axis perturbed the simulation: %+v vs %+v", clean, stock)
	}
	if clean.Emissions.Total.Tonnes() >= stock.Emissions.Total.Tonnes() {
		t.Errorf("cleaner grid did not reduce emissions: %v vs %v",
			clean.Emissions.Total, stock.Emissions.Total)
	}
	// The converse CRN property: scenarios at the same grid mean share
	// the same weather, so a simulation-axis change never shifts the
	// carbon intensity it is accounted at.
	if capped.MeanCI != stock.MeanCI {
		t.Errorf("frequency axis perturbed the grid trace: %v vs %v",
			capped.MeanCI, stock.MeanCI)
	}
}

func TestRunnerPropagatesExpansionErrors(t *testing.T) {
	spec := tinySpec()
	spec.Axes.Frequency = []string{"warp9"}
	if _, err := (&Runner{}).Run(context.Background(), spec); err == nil {
		t.Fatal("invalid axis value did not fail the run")
	}
}

func TestSweepTables(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if table.RowCount() != 4 {
		t.Errorf("comparison table has %d rows, want 4", table.RowCount())
	}
	s := table.String()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	regimes := res.RegimeTable().String()
	if len(regimes) == 0 {
		t.Fatal("empty regime table")
	}
}

// Scenarios differing only in grid mix must share one simulation: the
// 2x2 tiny sweep has two unique simulation keys, so exactly two
// simulations run for four scenarios.
func TestRunnerDeduplicatesSimulations(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(res.Results))
	}
	if res.Simulations != 2 {
		t.Errorf("ran %d simulations for 2 unique configs, want 2", res.Simulations)
	}
}

// carbonSpec is a fast sweep over grids x temporal policies. Offered
// load sits below capacity (0.7): temporal policies can only shift work
// when the machine is not permanently full.
func carbonSpec() Spec {
	return Spec{
		Nodes:            32,
		Days:             4,
		WarmupDays:       1,
		OverSubscription: 0.7,
		Axes: Axes{
			GridMean:     []float64{200, 20},
			CarbonPolicy: []string{"fcfs", "delay-flexible", "carbon-budget"},
		},
	}
}

// The acceptance-criteria run: a sweep over carbon policies must be
// byte-identical at any worker count, and must report avoided-carbon
// deltas against the fcfs baseline.
func TestRunnerCarbonSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := carbonSpec()
	ref, err := (&Runner{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	refCarbon := ref.CarbonTable().String()
	for _, workers := range []int{3, 8} {
		got, err := (&Runner{Workers: workers}).Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Results, got.Results) {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
		if ct := got.CarbonTable().String(); ct != refCarbon {
			t.Errorf("carbon table differs between 1 and %d workers:\n%s\nvs\n%s",
				workers, refCarbon, ct)
		}
	}
	// 6 scenarios: 1 shared fcfs sim + 2 policies x 2 grids = 5 sims.
	if ref.Simulations != 5 {
		t.Errorf("ran %d simulations, want 5", ref.Simulations)
	}
	if !ref.CarbonSwept() {
		t.Error("carbon axis not reported as swept")
	}
}

// Temporal policies must actually engage: the delay-flexible scenarios
// hold jobs, the fcfs ones never do, and avoided carbon is populated
// against the matching fcfs counterpart (zero for fcfs itself).
func TestRunnerCarbonPolicyEffects(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(context.Background(), carbonSpec())
	if err != nil {
		t.Fatal(err)
	}
	var sawHold bool
	for _, r := range res.Results {
		switch r.Scenario.CarbonPolicy {
		case CarbonFCFS:
			if r.Holds != 0 {
				t.Errorf("fcfs scenario %q held %d jobs", r.Scenario.Name, r.Holds)
			}
			if r.AvoidedCarbon != 0 {
				t.Errorf("fcfs scenario %q has nonzero avoided carbon %v",
					r.Scenario.Name, r.AvoidedCarbon)
			}
		case CarbonDelayFlexible:
			if r.Holds > 0 {
				sawHold = true
			}
		}
		if r.Emissions.CI.GramsPerKWh() <= 0 {
			t.Errorf("scenario %q has no experienced CI", r.Scenario.Name)
		}
	}
	if !sawHold {
		t.Error("no delay-flexible scenario ever held a job")
	}
	// The delay policy chases clean windows: its energy-weighted CI must
	// sit below the fcfs counterpart's on the swingy 200 g/kWh grid.
	byName := map[string]Result{}
	for _, r := range res.Results {
		byName[r.Scenario.Name] = r
	}
	fcfs := byName["grid=200 carbon=fcfs"]
	flex := byName["grid=200 carbon=delay-flexible"]
	if flex.Emissions.CI.GramsPerKWh() >= fcfs.Emissions.CI.GramsPerKWh() {
		t.Errorf("delay-flexible experienced CI %.1f not below fcfs %.1f",
			flex.Emissions.CI.GramsPerKWh(), fcfs.Emissions.CI.GramsPerKWh())
	}
}

// Worker failures must be reported per scenario, joined in index order,
// never silently dropped.
func TestRunnerAggregatesWorkerErrors(t *testing.T) {
	spec := tinySpec()
	boom := errors.New("boom")
	var calls atomic.Int32
	r := Runner{Workers: 2, runCfg: func(_ context.Context, cfg core.Config) (*core.Results, error) {
		calls.Add(1)
		return nil, boom
	}}
	_, err := r.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("worker failures produced no error")
	}
	// Every scenario (4) must be named even though only 2 sims ran.
	var scErrs []*ScenarioError
	for _, e := range multiUnwrap(err) {
		var se *ScenarioError
		if errors.As(e, &se) {
			scErrs = append(scErrs, se)
		}
	}
	if len(scErrs) != 4 {
		t.Fatalf("got %d scenario errors, want 4: %v", len(scErrs), err)
	}
	for i, se := range scErrs {
		if se.Index != i {
			t.Errorf("scenario errors out of order: position %d has index %d", i, se.Index)
		}
		if !errors.Is(se, boom) {
			t.Errorf("scenario error %d does not wrap the cause", i)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("ran %d simulations, want 2 (deduplicated)", n)
	}
}

// multiUnwrap flattens an errors.Join result.
func multiUnwrap(err error) []error {
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		return m.Unwrap()
	}
	return []error{err}
}

// A list-mode zip can produce carbon-aware scenarios with no fcfs
// counterpart; those must render "—" in the carbon table, not a
// fabricated measured zero.
func TestCarbonTableWithoutCounterpart(t *testing.T) {
	spec := Spec{
		Nodes: 32, Days: 2, WarmupDays: 1, Mode: ModeList,
		OverSubscription: 0.7,
		Axes: Axes{
			GridMean:     []float64{200, 65},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
	res, err := (&Runner{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("zip expanded to %d scenarios, want 2", len(res.Results))
	}
	flex := res.Results[1]
	if flex.Scenario.CarbonPolicy != CarbonDelayFlexible {
		t.Fatalf("unexpected zip order: %+v", flex.Scenario)
	}
	if flex.HasBaseline {
		t.Error("delay-flexible@65 claims a baseline counterpart; fcfs only ran at grid 200")
	}
	rows := strings.Split(res.CarbonTable().String(), "\n")
	if len(rows) < 4 || !strings.Contains(rows[3], "—") {
		t.Errorf("carbon table row without counterpart lacks the — placeholder:\n%s",
			res.CarbonTable().String())
	}
}

// Memoization: re-running a sweep on the same Runner must serve every
// scenario from cache (no fresh simulations), key distinct specs apart
// (different nodes/frequency axes never collide), and produce results
// identical to the fresh run.
func TestRunnerMemoization(t *testing.T) {
	r := &Runner{Workers: 2}
	spec := tinySpec()
	first, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cs := r.CacheStats()
	// 4 scenarios over 2 unique sims: 2 misses, 2 ride-along hits.
	if cs.Misses != 2 || cs.Hits != 2 {
		t.Fatalf("after first run: stats = %+v, want 2 misses, 2 hits", cs)
	}

	second, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 2 || cs.Hits != 6 {
		t.Errorf("after repeat run: stats = %+v, want 2 misses, 6 hits", cs)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("memoized run differs from fresh run")
	}

	// A different facility size must miss: the cache keys on the full
	// derived seed + config hash, so -nodes axes never collide.
	bigger := spec
	bigger.Nodes = 48
	if _, err := r.Run(context.Background(), bigger); err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 4 {
		t.Errorf("distinct -nodes spec hit the cache: stats = %+v, want 4 misses", cs)
	}

	// So must a changed non-axis config knob (days): simKey alone would
	// collide, the config hash must not.
	longer := spec
	longer.Days = 4
	if _, err := r.Run(context.Background(), longer); err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 6 {
		t.Errorf("distinct -days spec hit the cache: stats = %+v, want 6 misses", cs)
	}
}

// seedSpec is a single-scenario, single-simulation spec distinguished
// only by its seed — the cheapest way to mint distinct cache entries.
func seedSpec(seed uint64) Spec {
	return Spec{Nodes: 32, Days: 2, WarmupDays: 1, Seed: seed}
}

// The memo must be a true LRU: admission beyond MemoCap evicts the
// least-recently-used entry (never stops admitting), a hit refreshes
// recency, and recently-used entries keep hitting. This is the
// regression test for the old cache that silently stopped admitting at
// capacity, permanently cold for every new config.
func TestRunnerMemoLRUEviction(t *testing.T) {
	r := &Runner{Workers: 1, MemoCap: 3}
	run := func(seed uint64) {
		t.Helper()
		if _, err := r.Run(context.Background(), seedSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}

	// Overfill: 6 distinct simulations through a 3-entry cache.
	for seed := uint64(1); seed <= 6; seed++ {
		run(seed)
	}
	cs := r.CacheStats()
	if cs.Size != 3 || cs.Capacity != 3 {
		t.Fatalf("cache size %d (cap %d), want 3/3", cs.Size, cs.Capacity)
	}
	if cs.Misses != 6 || cs.Evictions != 3 {
		t.Fatalf("stats %+v, want 6 misses, 3 evictions", cs)
	}

	// The three most recent (4, 5, 6) are warm; 1-3 were evicted coldest
	// first.
	run(6)
	if cs = r.CacheStats(); cs.Misses != 6 || cs.Hits != 1 {
		t.Fatalf("recent entry missed: %+v", cs)
	}
	run(1)
	if cs = r.CacheStats(); cs.Misses != 7 || cs.Evictions != 4 {
		t.Fatalf("evicted entry hit, or admission stopped: %+v", cs)
	}

	// Recency refresh: cache now holds {5, 6, 1} with 5 coldest. Hitting
	// 5 then admitting a new entry must evict 6, not 5.
	run(5)
	run(2)
	cs = r.CacheStats()
	if cs.Misses != 8 {
		t.Fatalf("unexpected miss pattern: %+v", cs)
	}
	run(5) // refreshed survivor: hit
	if got := r.CacheStats(); got.Misses != 8 {
		t.Fatalf("hit-refreshed entry was evicted: %+v", got)
	}
	run(6) // unrefreshed: evicted, miss
	if got := r.CacheStats(); got.Misses != 9 {
		t.Fatalf("expected LRU (not refreshed) entry to have been evicted: %+v", got)
	}
}

// A negative MemoCap disables cross-sweep memoization without touching
// within-sweep simulation sharing.
func TestRunnerMemoDisabled(t *testing.T) {
	r := &Runner{Workers: 2, MemoCap: -1}
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), tinySpec()); err != nil {
			t.Fatal(err)
		}
	}
	cs := r.CacheStats()
	// 2 sims per run, re-simulated both times; ride-along hits remain.
	if cs.Misses != 4 || cs.Hits != 4 || cs.Size != 0 || cs.Capacity != 0 {
		t.Errorf("disabled cache stats %+v, want 4 misses, 4 hits, size 0", cs)
	}
}

// memoKeyOf derives the cache key exactly as Run does for the spec's
// first scenario.
func memoKeyOf(t *testing.T, spec Spec) string {
	t.Helper()
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := scenarios[0].BuildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	return memoKey(spec.withDefaults(), scenarios[0], cfg)
}

// The cache identity must be built from explicit named fields: every
// config-shaping spec field perturbs the key (no two perturbations
// collide), and equal specs produce equal keys. This is the regression
// test for hashing structs via fmt "%+v", where adding or reordering
// fields silently changes every key and a future pointer field would
// fold an address into the identity.
func TestMemoKeyDistinguishesEveryConfigField(t *testing.T) {
	base := func() Spec {
		return Spec{
			Nodes: 32, Days: 5, WarmupDays: 1, Seed: 42,
			OverSubscription: 0.7,
			Carbon: CarbonSpec{
				ThresholdGrams: 120, MaxDelayHours: 8, FlexibleShare: 0.5,
				BudgetFraction: 0.85, ForecastSigma: 5, ForecastGrowth: 0.5,
			},
			Axes: Axes{CarbonPolicy: []string{CarbonDelayFlexible}},
		}
	}
	if memoKeyOf(t, base()) != memoKeyOf(t, base()) {
		t.Fatal("equal specs produced different keys")
	}

	perturbations := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"Days", func(s *Spec) { s.Days = 6 }},
		{"WarmupDays", func(s *Spec) { s.WarmupDays = 2 }},
		{"OverSubscription", func(s *Spec) { s.OverSubscription = 0.8 }},
		{"Seed", func(s *Spec) { s.Seed = 43 }},
		{"Carbon.ThresholdGrams", func(s *Spec) { s.Carbon.ThresholdGrams = 121 }},
		{"Carbon.MaxDelayHours", func(s *Spec) { s.Carbon.MaxDelayHours = 9 }},
		{"Carbon.FlexibleShare", func(s *Spec) { s.Carbon.FlexibleShare = 0.6 }},
		{"Carbon.BudgetFraction", func(s *Spec) { s.Carbon.BudgetFraction = 0.9 }},
		{"Carbon.ForecastSigma", func(s *Spec) { s.Carbon.ForecastSigma = 6 }},
		{"Carbon.ForecastGrowth", func(s *Spec) { s.Carbon.ForecastGrowth = 0.6 }},
		{"PriorityAgingHours", func(s *Spec) { s.PriorityAgingHours = 24 }},
		{"Axes.PriorityMix", func(s *Spec) { s.Axes.PriorityMix = []string{PriorityDual} }},
		{"Axes.BackfillPolicy", func(s *Spec) { s.Axes.BackfillPolicy = []string{BackfillConservative} }},
		{"Axes.Preemption", func(s *Spec) { s.Axes.Preemption = []string{PreemptRequeue} }},
		{"Axes.PerfModel", func(s *Spec) { s.Axes.PerfModel = []string{PerfTable} }},
		{"Axes.Fleet", func(s *Spec) { s.Axes.Fleet = []string{FleetHybrid} }},
		{"Axes.Surrogate", func(s *Spec) { s.Axes.Surrogate = []string{Surrogate10x} }},
		{"Axes.Surrogate50x", func(s *Spec) { s.Axes.Surrogate = []string{Surrogate50x} }},
	}
	keys := map[string]string{"base": memoKeyOf(t, base())}
	for _, p := range perturbations {
		spec := base()
		p.mutate(&spec)
		key := memoKeyOf(t, spec)
		for name, other := range keys {
			if key == other {
				t.Errorf("perturbing %s collides with %s", p.name, name)
			}
		}
		keys[p.name] = key
	}
}

// Cancelling the context stops the sweep: in-flight simulations see the
// cancellation, queued ones never start, and Run reports the context
// error rather than per-scenario fallout.
func TestRunnerRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	r := Runner{Workers: 1, runCfg: func(ctx context.Context, cfg core.Config) (*core.Results, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx, tinySpec()) // 2 unique sims on 1 worker
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	cs := r.CacheStats()
	if cs.Size != 0 {
		t.Errorf("failed simulations were memoized: %+v", cs)
	}
	if cs.Misses > 1 {
		t.Errorf("queued simulation started after cancellation: %+v", cs)
	}
}

// A context cancelled before Run starts must not execute anything.
func TestRunnerRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	r := Runner{Workers: 2, runCfg: func(context.Context, core.Config) (*core.Results, error) {
		calls.Add(1)
		return nil, nil
	}}
	if _, err := r.Run(ctx, tinySpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("%d simulations ran under a pre-cancelled context", n)
	}
}

// Every result must carry its simulation's digest, shared across
// scenarios that shared the simulation and stable across memoized
// re-runs.
func TestRunnerSimDigests(t *testing.T) {
	r := &Runner{Workers: 2}
	first, err := r.Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, res := range first.Results {
		if res.SimDigest == "" {
			t.Fatalf("scenario %q has no simulation digest", res.Scenario.Name)
		}
		byName[res.Scenario.Name] = res
	}
	// Grid-axis pairs share a simulation, frequency-axis pairs do not.
	if byName["freq=stock grid=200"].SimDigest != byName["freq=stock grid=20"].SimDigest {
		t.Error("grid-sharing scenarios have different digests")
	}
	if byName["freq=stock grid=200"].SimDigest == byName["freq=capped grid=200"].SimDigest {
		t.Error("distinct simulations share a digest")
	}
	second, err := r.Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("memoized re-run changed results or digests")
	}
}

// A cancelled sweep serves nothing, so it must not inflate the hit
// counter for its memo-resolved groups (misses already count only
// executed simulations).
func TestRunnerCancellationDoesNotInflateHits(t *testing.T) {
	var blocking atomic.Bool
	inFlight := make(chan struct{}, 1)
	r := Runner{Workers: 1, runCfg: func(ctx context.Context, cfg core.Config) (*core.Results, error) {
		if blocking.Load() {
			inFlight <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &core.Results{}, nil
	}}

	// Prewarm the memo with the freq=stock simulation group (the fake
	// results fail accounting later, but memoization happens first).
	prewarm := tinySpec()
	prewarm.Axes.Frequency = []string{"stock"}
	_, _ = r.Run(context.Background(), prewarm)
	base := r.CacheStats()
	if base.Size != 1 || base.Hits != 1 {
		t.Fatalf("prewarm stats %+v, want 1 cached sim, 1 ride-along hit", base)
	}

	// Cancel a sweep whose stock group is a memo hit and whose capped
	// group blocks in-flight.
	blocking.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx, tinySpec())
		done <- err
	}()
	<-inFlight // the worker is executing the capped group
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	cs := r.CacheStats()
	if cs.Hits != base.Hits {
		t.Errorf("cancelled sweep inflated hits: %d -> %d", base.Hits, cs.Hits)
	}
	if cs.Misses != base.Misses+1 {
		t.Errorf("misses = %d, want %d (one in-flight execution)", cs.Misses, base.Misses+1)
	}
}

// The memo must be byte-bounded: a sweep sequence whose admitted results
// exceed MemoBudgetBytes keeps the cache at or under budget by evicting
// coldest-first, and an entry larger than the whole budget is evicted by
// its own admission rather than pinned. This is the regression test for
// the entry-count-only cache that would let a long-lived twinserver
// accumulate gigabytes of warm Results.
func TestRunnerMemoByteBudget(t *testing.T) {
	// Price one entry with an unbounded-budget runner first.
	probe := &Runner{Workers: 1, MemoBudgetBytes: -1}
	if _, err := probe.Run(context.Background(), seedSpec(1)); err != nil {
		t.Fatal(err)
	}
	cs := probe.CacheStats()
	if cs.Size != 1 || cs.Bytes <= 0 {
		t.Fatalf("probe stats %+v, want 1 priced entry", cs)
	}
	if cs.BudgetBytes != 0 {
		t.Fatalf("negative MemoBudgetBytes reports budget %d, want 0 (unbounded)", cs.BudgetBytes)
	}
	cost := cs.Bytes

	// Budget for two entries: six distinct sims must keep Bytes <= budget
	// throughout, evicting coldest-first.
	budget := 2*cost + cost/2
	r := &Runner{Workers: 1, MemoBudgetBytes: budget}
	for seed := uint64(1); seed <= 6; seed++ {
		if _, err := r.Run(context.Background(), seedSpec(seed)); err != nil {
			t.Fatal(err)
		}
		cs = r.CacheStats()
		if cs.Bytes > cs.BudgetBytes {
			t.Fatalf("after seed %d: cache %d bytes over budget %d", seed, cs.Bytes, cs.BudgetBytes)
		}
	}
	cs = r.CacheStats()
	if cs.BudgetBytes != budget {
		t.Fatalf("budget reported %d, want %d", cs.BudgetBytes, budget)
	}
	if cs.Size != 2 || cs.Evictions != 4 {
		t.Fatalf("stats %+v, want 2 resident entries and 4 byte-budget evictions", cs)
	}
	// The most recent entry is warm, the oldest was evicted.
	if _, err := r.Run(context.Background(), seedSpec(6)); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheStats(); got.Misses != cs.Misses || got.Hits != cs.Hits+1 {
		t.Fatalf("warm entry missed under byte budget: %+v -> %+v", cs, got)
	}
	if _, err := r.Run(context.Background(), seedSpec(1)); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheStats(); got.Misses != cs.Misses+1 {
		t.Fatalf("evicted entry served a hit: %+v", got)
	}

	// An entry bigger than the whole budget must not be pinned: the cache
	// stays at or under budget (here: empty), and the sweep still runs.
	tiny := &Runner{Workers: 1, MemoBudgetBytes: cost / 2}
	for i := 0; i < 2; i++ {
		if _, err := tiny.Run(context.Background(), seedSpec(9)); err != nil {
			t.Fatal(err)
		}
	}
	cs = tiny.CacheStats()
	if cs.Size != 0 || cs.Bytes != 0 {
		t.Fatalf("oversized entry pinned: %+v", cs)
	}
	if cs.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (oversized entries cannot be served warm)", cs.Misses)
	}
}

// Compaction at memo admission must be observationally invisible to the
// sweep: digests computed before compaction, served results identical on
// repeat (memo-hit) runs.
func TestRunnerCompactionPreservesServedResults(t *testing.T) {
	r := &Runner{Workers: 1}
	first, err := r.Run(context.Background(), seedSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(context.Background(), seedSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("memo-served sweep differs from the run that admitted it")
	}
	if first.Results[0].SimDigest == "" || first.Results[0].SimDigest != second.Results[0].SimDigest {
		t.Errorf("SimDigest not stable across compacted admission: %q vs %q",
			first.Results[0].SimDigest, second.Results[0].SimDigest)
	}
}

package scenario

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/greenhpc/archertwin/internal/core"
)

// tinySpec is a fast 4-scenario sweep used by the runner tests: 32 nodes
// for 3 days is a sub-second simulation per scenario.
func tinySpec() Spec {
	return Spec{
		Nodes:      32,
		Days:       3,
		WarmupDays: 1,
		Axes: Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 20},
		},
	}
}

// The headline determinism guarantee: the same spec and seed produce
// byte-identical aggregate results at 1, 4 and 8 workers.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec()
	ref, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	refTable := ref.Table().String()
	for _, workers := range []int{4, 8} {
		got, err := (&Runner{Workers: workers}).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Results, got.Results) {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
		if gt := got.Table().String(); gt != refTable {
			t.Errorf("rendered table differs between 1 and %d workers:\n%s\nvs\n%s",
				workers, refTable, gt)
		}
	}
}

// A different seed must actually change the results (the determinism
// above is not a constant function).
func TestRunnerSeedSensitivity(t *testing.T) {
	spec := tinySpec()
	a, err := (&Runner{Workers: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	b, err := (&Runner{Workers: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Results, b.Results) {
		t.Error("different seeds produced identical results")
	}
}

func TestRunnerSingleScenario(t *testing.T) {
	spec := Spec{Nodes: 32, Days: 2, WarmupDays: 1}
	res, err := (&Runner{Workers: 8}).Run(spec) // more workers than scenarios
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(res.Results))
	}
	r := res.Baseline()
	if r.MeanPower.Kilowatts() <= 0 || r.Energy.MegawattHours() <= 0 {
		t.Errorf("degenerate baseline result: %+v", r)
	}
	if r.Emissions.Total.Tonnes() <= 0 {
		t.Errorf("no emissions accounted: %+v", r.Emissions)
	}
}

// Physical sanity on the flagship axes: capping the frequency must cut
// mean power, and a cleaner grid must cut emissions at equal power.
func TestRunnerAxisEffects(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range res.Results {
		byName[r.Scenario.Name] = r
	}
	stock := byName["freq=stock grid=200"]
	capped := byName["freq=capped grid=200"]
	if capped.MeanPower.Watts() >= stock.MeanPower.Watts() {
		t.Errorf("frequency cap did not reduce power: %v vs %v",
			capped.MeanPower, stock.MeanPower)
	}
	clean := byName["freq=stock grid=20"]
	if clean.MeanPower != stock.MeanPower || clean.NodeHours != stock.NodeHours {
		t.Errorf("grid axis perturbed the simulation: %+v vs %+v", clean, stock)
	}
	if clean.Emissions.Total.Tonnes() >= stock.Emissions.Total.Tonnes() {
		t.Errorf("cleaner grid did not reduce emissions: %v vs %v",
			clean.Emissions.Total, stock.Emissions.Total)
	}
	// The converse CRN property: scenarios at the same grid mean share
	// the same weather, so a simulation-axis change never shifts the
	// carbon intensity it is accounted at.
	if capped.MeanCI != stock.MeanCI {
		t.Errorf("frequency axis perturbed the grid trace: %v vs %v",
			capped.MeanCI, stock.MeanCI)
	}
}

func TestRunnerPropagatesExpansionErrors(t *testing.T) {
	spec := tinySpec()
	spec.Axes.Frequency = []string{"warp9"}
	if _, err := (&Runner{}).Run(spec); err == nil {
		t.Fatal("invalid axis value did not fail the run")
	}
}

func TestSweepTables(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if table.RowCount() != 4 {
		t.Errorf("comparison table has %d rows, want 4", table.RowCount())
	}
	s := table.String()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	regimes := res.RegimeTable().String()
	if len(regimes) == 0 {
		t.Fatal("empty regime table")
	}
}

// Scenarios differing only in grid mix must share one simulation: the
// 2x2 tiny sweep has two unique simulation keys, so exactly two
// simulations run for four scenarios.
func TestRunnerDeduplicatesSimulations(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(res.Results))
	}
	if res.Simulations != 2 {
		t.Errorf("ran %d simulations for 2 unique configs, want 2", res.Simulations)
	}
}

// carbonSpec is a fast sweep over grids x temporal policies. Offered
// load sits below capacity (0.7): temporal policies can only shift work
// when the machine is not permanently full.
func carbonSpec() Spec {
	return Spec{
		Nodes:            32,
		Days:             4,
		WarmupDays:       1,
		OverSubscription: 0.7,
		Axes: Axes{
			GridMean:     []float64{200, 20},
			CarbonPolicy: []string{"fcfs", "delay-flexible", "carbon-budget"},
		},
	}
}

// The acceptance-criteria run: a sweep over carbon policies must be
// byte-identical at any worker count, and must report avoided-carbon
// deltas against the fcfs baseline.
func TestRunnerCarbonSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := carbonSpec()
	ref, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	refCarbon := ref.CarbonTable().String()
	for _, workers := range []int{3, 8} {
		got, err := (&Runner{Workers: workers}).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Results, got.Results) {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
		if ct := got.CarbonTable().String(); ct != refCarbon {
			t.Errorf("carbon table differs between 1 and %d workers:\n%s\nvs\n%s",
				workers, refCarbon, ct)
		}
	}
	// 6 scenarios: 1 shared fcfs sim + 2 policies x 2 grids = 5 sims.
	if ref.Simulations != 5 {
		t.Errorf("ran %d simulations, want 5", ref.Simulations)
	}
	if !ref.CarbonSwept() {
		t.Error("carbon axis not reported as swept")
	}
}

// Temporal policies must actually engage: the delay-flexible scenarios
// hold jobs, the fcfs ones never do, and avoided carbon is populated
// against the matching fcfs counterpart (zero for fcfs itself).
func TestRunnerCarbonPolicyEffects(t *testing.T) {
	res, err := (&Runner{Workers: 4}).Run(carbonSpec())
	if err != nil {
		t.Fatal(err)
	}
	var sawHold bool
	for _, r := range res.Results {
		switch r.Scenario.CarbonPolicy {
		case CarbonFCFS:
			if r.Holds != 0 {
				t.Errorf("fcfs scenario %q held %d jobs", r.Scenario.Name, r.Holds)
			}
			if r.AvoidedCarbon != 0 {
				t.Errorf("fcfs scenario %q has nonzero avoided carbon %v",
					r.Scenario.Name, r.AvoidedCarbon)
			}
		case CarbonDelayFlexible:
			if r.Holds > 0 {
				sawHold = true
			}
		}
		if r.Emissions.CI.GramsPerKWh() <= 0 {
			t.Errorf("scenario %q has no experienced CI", r.Scenario.Name)
		}
	}
	if !sawHold {
		t.Error("no delay-flexible scenario ever held a job")
	}
	// The delay policy chases clean windows: its energy-weighted CI must
	// sit below the fcfs counterpart's on the swingy 200 g/kWh grid.
	byName := map[string]Result{}
	for _, r := range res.Results {
		byName[r.Scenario.Name] = r
	}
	fcfs := byName["grid=200 carbon=fcfs"]
	flex := byName["grid=200 carbon=delay-flexible"]
	if flex.Emissions.CI.GramsPerKWh() >= fcfs.Emissions.CI.GramsPerKWh() {
		t.Errorf("delay-flexible experienced CI %.1f not below fcfs %.1f",
			flex.Emissions.CI.GramsPerKWh(), fcfs.Emissions.CI.GramsPerKWh())
	}
}

// Worker failures must be reported per scenario, joined in index order,
// never silently dropped.
func TestRunnerAggregatesWorkerErrors(t *testing.T) {
	spec := tinySpec()
	boom := errors.New("boom")
	var calls atomic.Int32
	r := Runner{Workers: 2, runCfg: func(cfg core.Config) (*core.Results, error) {
		calls.Add(1)
		return nil, boom
	}}
	_, err := r.Run(spec)
	if err == nil {
		t.Fatal("worker failures produced no error")
	}
	// Every scenario (4) must be named even though only 2 sims ran.
	var scErrs []*ScenarioError
	for _, e := range multiUnwrap(err) {
		var se *ScenarioError
		if errors.As(e, &se) {
			scErrs = append(scErrs, se)
		}
	}
	if len(scErrs) != 4 {
		t.Fatalf("got %d scenario errors, want 4: %v", len(scErrs), err)
	}
	for i, se := range scErrs {
		if se.Index != i {
			t.Errorf("scenario errors out of order: position %d has index %d", i, se.Index)
		}
		if !errors.Is(se, boom) {
			t.Errorf("scenario error %d does not wrap the cause", i)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("ran %d simulations, want 2 (deduplicated)", n)
	}
}

// multiUnwrap flattens an errors.Join result.
func multiUnwrap(err error) []error {
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		return m.Unwrap()
	}
	return []error{err}
}

// A list-mode zip can produce carbon-aware scenarios with no fcfs
// counterpart; those must render "—" in the carbon table, not a
// fabricated measured zero.
func TestCarbonTableWithoutCounterpart(t *testing.T) {
	spec := Spec{
		Nodes: 32, Days: 2, WarmupDays: 1, Mode: ModeList,
		OverSubscription: 0.7,
		Axes: Axes{
			GridMean:     []float64{200, 65},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
	res, err := (&Runner{Workers: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("zip expanded to %d scenarios, want 2", len(res.Results))
	}
	flex := res.Results[1]
	if flex.Scenario.CarbonPolicy != CarbonDelayFlexible {
		t.Fatalf("unexpected zip order: %+v", flex.Scenario)
	}
	if flex.HasBaseline {
		t.Error("delay-flexible@65 claims a baseline counterpart; fcfs only ran at grid 200")
	}
	rows := strings.Split(res.CarbonTable().String(), "\n")
	if len(rows) < 4 || !strings.Contains(rows[3], "—") {
		t.Errorf("carbon table row without counterpart lacks the — placeholder:\n%s",
			res.CarbonTable().String())
	}
}

// Memoization: re-running a sweep on the same Runner must serve every
// scenario from cache (no fresh simulations), key distinct specs apart
// (different nodes/frequency axes never collide), and produce results
// identical to the fresh run.
func TestRunnerMemoization(t *testing.T) {
	r := &Runner{Workers: 2}
	spec := tinySpec()
	first, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cs := r.CacheStats()
	// 4 scenarios over 2 unique sims: 2 misses, 2 ride-along hits.
	if cs.Misses != 2 || cs.Hits != 2 {
		t.Fatalf("after first run: stats = %+v, want 2 misses, 2 hits", cs)
	}

	second, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 2 || cs.Hits != 6 {
		t.Errorf("after repeat run: stats = %+v, want 2 misses, 6 hits", cs)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("memoized run differs from fresh run")
	}

	// A different facility size must miss: the cache keys on the full
	// derived seed + config hash, so -nodes axes never collide.
	bigger := spec
	bigger.Nodes = 48
	if _, err := r.Run(bigger); err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 4 {
		t.Errorf("distinct -nodes spec hit the cache: stats = %+v, want 4 misses", cs)
	}

	// So must a changed non-axis config knob (days): simKey alone would
	// collide, the config hash must not.
	longer := spec
	longer.Days = 4
	if _, err := r.Run(longer); err != nil {
		t.Fatal(err)
	}
	cs = r.CacheStats()
	if cs.Misses != 6 {
		t.Errorf("distinct -days spec hit the cache: stats = %+v, want 6 misses", cs)
	}
}

package scenario

import (
	"reflect"
	"testing"
)

// tinySpec is a fast 4-scenario sweep used by the runner tests: 32 nodes
// for 3 days is a sub-second simulation per scenario.
func tinySpec() Spec {
	return Spec{
		Nodes:      32,
		Days:       3,
		WarmupDays: 1,
		Axes: Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 20},
		},
	}
}

// The headline determinism guarantee: the same spec and seed produce
// byte-identical aggregate results at 1, 4 and 8 workers.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec()
	ref, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	refTable := ref.Table().String()
	for _, workers := range []int{4, 8} {
		got, err := Runner{Workers: workers}.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Results, got.Results) {
			t.Errorf("results differ between 1 and %d workers", workers)
		}
		if gt := got.Table().String(); gt != refTable {
			t.Errorf("rendered table differs between 1 and %d workers:\n%s\nvs\n%s",
				workers, refTable, gt)
		}
	}
}

// A different seed must actually change the results (the determinism
// above is not a constant function).
func TestRunnerSeedSensitivity(t *testing.T) {
	spec := tinySpec()
	a, err := Runner{Workers: 2}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	b, err := Runner{Workers: 2}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Results, b.Results) {
		t.Error("different seeds produced identical results")
	}
}

func TestRunnerSingleScenario(t *testing.T) {
	spec := Spec{Nodes: 32, Days: 2, WarmupDays: 1}
	res, err := Runner{Workers: 8}.Run(spec) // more workers than scenarios
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(res.Results))
	}
	r := res.Baseline()
	if r.MeanPower.Kilowatts() <= 0 || r.Energy.MegawattHours() <= 0 {
		t.Errorf("degenerate baseline result: %+v", r)
	}
	if r.Emissions.Total.Tonnes() <= 0 {
		t.Errorf("no emissions accounted: %+v", r.Emissions)
	}
}

// Physical sanity on the flagship axes: capping the frequency must cut
// mean power, and a cleaner grid must cut emissions at equal power.
func TestRunnerAxisEffects(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range res.Results {
		byName[r.Scenario.Name] = r
	}
	stock := byName["freq=stock grid=200"]
	capped := byName["freq=capped grid=200"]
	if capped.MeanPower.Watts() >= stock.MeanPower.Watts() {
		t.Errorf("frequency cap did not reduce power: %v vs %v",
			capped.MeanPower, stock.MeanPower)
	}
	clean := byName["freq=stock grid=20"]
	if clean.MeanPower != stock.MeanPower || clean.NodeHours != stock.NodeHours {
		t.Errorf("grid axis perturbed the simulation: %+v vs %+v", clean, stock)
	}
	if clean.Emissions.Total.Tonnes() >= stock.Emissions.Total.Tonnes() {
		t.Errorf("cleaner grid did not reduce emissions: %v vs %v",
			clean.Emissions.Total, stock.Emissions.Total)
	}
	// The converse CRN property: scenarios at the same grid mean share
	// the same weather, so a simulation-axis change never shifts the
	// carbon intensity it is accounted at.
	if capped.MeanCI != stock.MeanCI {
		t.Errorf("frequency axis perturbed the grid trace: %v vs %v",
			capped.MeanCI, stock.MeanCI)
	}
}

func TestRunnerPropagatesExpansionErrors(t *testing.T) {
	spec := tinySpec()
	spec.Axes.Frequency = []string{"warp9"}
	if _, err := (Runner{}).Run(spec); err == nil {
		t.Fatal("invalid axis value did not fail the run")
	}
}

func TestSweepTables(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if table.RowCount() != 4 {
		t.Errorf("comparison table has %d rows, want 4", table.RowCount())
	}
	s := table.String()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	regimes := res.RegimeTable().String()
	if len(regimes) == 0 {
		t.Fatal("empty regime table")
	}
}

// Scenarios differing only in grid mix must share one simulation: the
// 2x2 tiny sweep has two unique simulation keys, so exactly two
// simulations run for four scenarios.
func TestRunnerDeduplicatesSimulations(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(res.Results))
	}
	if res.Simulations != 2 {
		t.Errorf("ran %d simulations for 2 unique configs, want 2", res.Simulations)
	}
}

package scenario

import (
	"context"
	"reflect"
	"sort"
	"testing"
)

// partitionSpec sweeps three axes — including the carbon axis, whose
// avoided-carbon aggregation is exactly the cross-scenario state a shard
// cannot see — so Partition/RunScenarios/Assemble are exercised on the
// shapes the fabric ships.
func partitionSpec() Spec {
	return Spec{
		Name:       "partition",
		Nodes:      32,
		Days:       2,
		WarmupDays: 1,
		Seed:       7,
		Axes: Axes{
			Frequency:    []string{"stock", "capped"},
			GridMean:     []float64{200, 65},
			CarbonPolicy: []string{"fcfs", "delay-flexible"},
		},
	}
}

// TestPartitionStructure: every scenario appears in exactly one group,
// groups share one affinity key, group order is expansion order, and the
// simulation count matches what a real run reports.
func TestPartitionStructure(t *testing.T) {
	spec := partitionSpec()
	part, err := spec.Partition()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Keys) != len(scenarios) || len(part.RunKeys) != len(scenarios) {
		t.Fatalf("Partition sizes %d/%d, want %d", len(part.Keys), len(part.RunKeys), len(scenarios))
	}
	seen := map[int]bool{}
	for _, key := range part.GroupOrder {
		for _, idx := range part.Groups[key] {
			if seen[idx] {
				t.Fatalf("scenario %d appears in more than one group", idx)
			}
			seen[idx] = true
			if part.Keys[idx] != key {
				t.Errorf("scenario %d grouped under %q but keyed %q", idx, key, part.Keys[idx])
			}
		}
	}
	if len(seen) != len(scenarios) {
		t.Errorf("groups cover %d scenarios, want %d", len(seen), len(scenarios))
	}
	// The grid axis shares simulations: distinct run keys must undercount
	// scenarios, and match the executed-sweep report exactly.
	res, err := (&Runner{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if part.Simulations != res.Simulations {
		t.Errorf("Partition.Simulations = %d, executed run reports %d", part.Simulations, res.Simulations)
	}
	if part.Simulations >= len(scenarios) {
		t.Errorf("Simulations = %d not below %d scenarios — grid-axis sharing lost", part.Simulations, len(scenarios))
	}
}

// TestRunScenariosSubsetMatchesFullRun: any subset run yields results
// (values, digests) identical to the same indices of a full run — the
// seed derivation cannot depend on which other scenarios ran alongside.
func TestRunScenariosSubsetMatchesFullRun(t *testing.T) {
	ctx := context.Background()
	spec := partitionSpec()
	full, err := (&Runner{Workers: 2}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, indices := range [][]int{{0}, {1, 3}, {2, 5, 7}, {0, 1, 2, 3, 4, 5, 6, 7}} {
		subset, _, err := (&Runner{Workers: 2}).RunScenarios(ctx, spec, indices, nil)
		if err != nil {
			t.Fatalf("RunScenarios(%v): %v", indices, err)
		}
		for j, idx := range indices {
			got, want := subset[j], full.Results[idx]
			// The full run fills cross-scenario aggregation a subset cannot
			// see; blank it on both sides before comparing.
			want.AvoidedCarbon, want.HasBaseline = 0, false
			got.AvoidedCarbon, got.HasBaseline = 0, false
			if !reflect.DeepEqual(got, want) {
				t.Errorf("indices %v: scenario %d differs between subset and full run:\nsubset: %+v\nfull:   %+v",
					indices, idx, got, want)
			}
		}
	}
}

// TestRunScenariosValidation: malformed index lists are rejected before
// any simulation runs.
func TestRunScenariosValidation(t *testing.T) {
	ctx := context.Background()
	r := &Runner{Workers: 1}
	for name, indices := range map[string][]int{
		"empty":      {},
		"negative":   {-1},
		"descending": {3, 1},
		"duplicate":  {2, 2},
		"overflow":   {99},
	} {
		if _, _, err := r.RunScenarios(ctx, partitionSpec(), indices, nil); err == nil {
			t.Errorf("%s (%v): want error", name, indices)
		}
	}
}

// TestAssembleReconstructsFullRun: slicing a sweep into per-group shards,
// running each independently, and assembling the merged results
// reproduces the single-process SweepResults exactly — including the
// recomputed avoided-carbon aggregation and the rendered tables.
func TestAssembleReconstructsFullRun(t *testing.T) {
	ctx := context.Background()
	spec := partitionSpec()
	full, err := (&Runner{Workers: 2}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	part, err := spec.Partition()
	if err != nil {
		t.Fatal(err)
	}

	// Two "shards": alternating affinity groups, each on its own Runner
	// (its own memo, as on separate worker processes).
	merged := make([]Result, len(part.Keys))
	for shard := 0; shard < 2; shard++ {
		var indices []int
		for g, key := range part.GroupOrder {
			if g%2 == shard {
				indices = append(indices, part.Groups[key]...)
			}
		}
		sort.Ints(indices)
		results, _, err := (&Runner{Workers: 2}).RunScenarios(ctx, spec, indices, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, idx := range indices {
			merged[idx] = results[j]
		}
	}

	got, err := Assemble(spec, merged, full.Workers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, full.Results) {
		t.Error("assembled results differ from the single-process run")
	}
	if got.Simulations != full.Simulations {
		t.Errorf("assembled Simulations = %d, full run = %d", got.Simulations, full.Simulations)
	}
	if got.Table().String() != full.Table().String() {
		t.Error("assembled delta table renders differently")
	}
	if got.RegimeTable().String() != full.RegimeTable().String() {
		t.Error("assembled regime table renders differently")
	}
	if got.CarbonTable().String() != full.CarbonTable().String() {
		t.Error("assembled carbon table renders differently")
	}
}

// TestAssembleValidation: mismatched lengths, wrong indices and missing
// digests are rejected.
func TestAssembleValidation(t *testing.T) {
	spec := partitionSpec()
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(spec, make([]Result, 2), 1); err == nil {
		t.Error("short result slice must be rejected")
	}
	bad := make([]Result, len(scenarios))
	for i := range bad {
		bad[i].Scenario.Index = i
		bad[i].SimDigest = "x"
	}
	bad[3].Scenario.Index = 4
	if _, err := Assemble(spec, bad, 1); err == nil {
		t.Error("misindexed result must be rejected")
	}
	bad[3].Scenario.Index = 3
	bad[5].SimDigest = ""
	if _, err := Assemble(spec, bad, 1); err == nil {
		t.Error("digestless result must be rejected")
	}
}

// Package stats provides the small statistical toolkit used by the facility
// model: summary statistics, percentiles, histograms, rolling windows and a
// simple ordinary-least-squares fit for trend detection in power telemetry.
//
// These are the reductions behind the paper's reported quantities: the
// window means of Figures 1-3, the utilisation percentiles behind the
// ">90% in all periods" statement, and the step-change detection used to
// locate the operational changes in the cabinet power series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns sum(w_i x_i)/sum(w_i). It returns 0 when the weights
// sum to zero or the slices are empty, and panics on mismatched lengths.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and panics for p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileOfSorted(sorted, p)
}

// PercentileOfSorted is Percentile for a slice the caller has already
// sorted ascending: no copy, no sort, no allocation. Callers computing
// several percentiles of one sample (timeseries.Series.Summary) sort once
// and interpolate repeatedly.
func PercentileOfSorted(sorted []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes the Summary of xs, sorting one copy of the sample
// and interpolating all three percentiles from it.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		P25:    PercentileOfSorted(sorted, 25),
		Median: PercentileOfSorted(sorted, 50),
		P75:    PercentileOfSorted(sorted, 75),
		Max:    max,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// LinearFit is the result of an ordinary least squares fit y = Slope*x +
// Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// FitLine fits a least-squares line through (xs[i], ys[i]). It panics on
// mismatched lengths and returns a zero fit for fewer than two points or
// degenerate (constant-x) input.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLine length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // constant y perfectly fit by zero slope
	}
	_ = n
	return fit
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
// It panics if hi <= lo or bins <= 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a value. Values outside [Lo, Hi) go to the under/overflow
// counters.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // rounding guard
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of values recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the number of values below Lo and at-or-above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Rolling maintains a fixed-size rolling window with O(1) mean queries.
type Rolling struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

// NewRolling creates a rolling window of size n. It panics if n <= 0.
func NewRolling(n int) *Rolling {
	if n <= 0 {
		panic("stats: rolling window size must be positive")
	}
	return &Rolling{buf: make([]float64, n)}
}

// Push adds a value, evicting the oldest when full.
func (r *Rolling) Push(x float64) {
	if r.full {
		r.sum -= r.buf[r.next]
	}
	r.buf[r.next] = x
	r.sum += x
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of values currently in the window.
func (r *Rolling) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Mean returns the mean of the values in the window, or 0 when empty.
func (r *Rolling) Mean() float64 {
	n := r.Len()
	if n == 0 {
		return 0
	}
	return r.sum / float64(n)
}

// Moments tracks a sample's streaming moments — count, running sum, sum
// of squares, minimum and maximum — maintained in O(1) per observation so
// containers can answer Mean/StdDev/Min/Max queries in O(1) with zero
// allocation, however many samples they hold. The running sum accumulates
// in observation order, so Mean is bit-identical to a post-hoc
// stats.Mean pass over the same values in the same order; Variance uses
// the sum-of-squares identity, which is numerically (not bitwise) equal
// to the two-pass Variance and is clamped at zero against cancellation.
type Moments struct {
	N     int
	Sum   float64
	SumSq float64
	Min   float64
	Max   float64
}

// Add records one observation.
func (m *Moments) Add(x float64) {
	if m.N == 0 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.N++
	m.Sum += x
	m.SumSq += x * x
}

// Mean returns the running mean, or 0 before any observation.
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Variance returns the population variance from the streaming moments
// (0 when N < 2), clamped at zero against floating-point cancellation.
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq/float64(m.N) - mean*mean
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the population standard deviation from the moments.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// RelativeChange returns (b-a)/a, or 0 when a == 0. Used for reporting
// percentage power reductions.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !feq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 10}, []float64{3, 1})
	if !feq(got, 13.0/4, 1e-12) {
		t.Fatalf("WeightedMean = %v", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Fatalf("empty WeightedMean = %v", got)
	}
	if got := WeightedMean([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("zero-weight WeightedMean = %v", got)
	}
}

func TestWeightedMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !feq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !feq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatalf("empty MinMax = %v,%v", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !feq(got, c.want, 1e-12) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{9}, 50); got != 9 {
		t.Errorf("singleton percentile = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=101 did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestFitLine(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	fit := FitLine(xs, ys)
	if !feq(fit.Slope, 2, 1e-12) || !feq(fit.Intercept, 1, 1e-12) || !feq(fit.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{1}); fit.Slope != 0 {
		t.Errorf("single point fit = %+v", fit)
	}
	if fit := FitLine([]float64{2, 2}, []float64{1, 3}); fit.Slope != 0 {
		t.Errorf("constant-x fit = %+v", fit)
	}
	fit := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !feq(fit.Slope, 0, 1e-12) || !feq(fit.R2, 1, 1e-12) {
		t.Errorf("constant-y fit = %+v", fit)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(v)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range = %d,%d", under, over)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
	if got := h.BinCenter(0); !feq(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestRolling(t *testing.T) {
	r := NewRolling(3)
	if r.Mean() != 0 || r.Len() != 0 {
		t.Fatal("empty rolling window not zero")
	}
	r.Push(1)
	r.Push(2)
	if !feq(r.Mean(), 1.5, 1e-12) || r.Len() != 2 {
		t.Fatalf("partial window mean = %v len = %d", r.Mean(), r.Len())
	}
	r.Push(3)
	r.Push(4) // evicts 1
	if !feq(r.Mean(), 3, 1e-12) || r.Len() != 3 {
		t.Fatalf("full window mean = %v len = %d", r.Mean(), r.Len())
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(3220, 2530); !feq(got, -0.2142857, 1e-6) {
		t.Fatalf("RelativeChange = %v", got)
	}
	if got := RelativeChange(0, 5); got != 0 {
		t.Fatalf("RelativeChange from 0 = %v", got)
	}
}

// Property: mean lies within [min, max].
func TestPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		min, max := MinMax(clean)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(clean, pa) <= Percentile(clean, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: rolling mean over a window equals the plain mean of the last n
// pushed values.
func TestPropertyRollingMatchesMean(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		n := 4
		r := NewRolling(n)
		for _, x := range xs {
			r.Push(x)
		}
		tail := xs
		if len(tail) > n {
			tail = tail[len(tail)-n:]
		}
		return feq(r.Mean(), Mean(tail), 1e-6*(1+math.Abs(Mean(tail))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package interconnect

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/archertwin/internal/units"
)

func mustNew(t *testing.T) *Fabric {
	t.Helper()
	f, err := New(ARCHER2Config())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestARCHER2Config(t *testing.T) {
	f := mustNew(t)
	if f.SwitchCount() != 768 {
		t.Fatalf("switches = %d, want 768", f.SwitchCount())
	}
	// Paper Table 2: interconnect loaded fleet power ~200 kW.
	got := f.LoadedTotalPower().Kilowatts()
	if got < 150 || got > 250 {
		t.Fatalf("loaded fleet power = %v kW, want ~200", got)
	}
	// Idle in the paper's 100-200 kW band.
	idle := f.IdleTotalPower().Kilowatts()
	if idle < 100 || idle > 200 {
		t.Fatalf("idle fleet power = %v kW, want 100-200", idle)
	}
}

func TestInvalidConfigs(t *testing.T) {
	bad := []Config{
		{Switches: 0, Groups: 1},
		{Switches: 4, Groups: 0},
		{Switches: 4, Groups: 8},
		{Switches: 4, Groups: 2,
			SwitchIdlePower: units.Watts(250), SwitchLoadedPower: units.Watts(200)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPowerLoadInsensitivity(t *testing.T) {
	// Paper §5: switch power steady at 200-250 W irrespective of load.
	f := mustNew(t)
	f.SetLoad(0)
	p0 := f.SwitchPower().Watts()
	f.SetLoad(1)
	p1 := f.SwitchPower().Watts()
	if p0 < 200 || p1 > 260 {
		t.Fatalf("switch power range %v-%v outside 200-260 W", p0, p1)
	}
	// The swing is under 30% of the idle level: near-constant.
	if (p1-p0)/p0 > 0.3 {
		t.Fatalf("switch power too load-sensitive: %v -> %v", p0, p1)
	}
}

func TestSetLoadClamps(t *testing.T) {
	f := mustNew(t)
	f.SetLoad(-1)
	if f.Load() != 0 {
		t.Fatalf("load = %v", f.Load())
	}
	f.SetLoad(2)
	if f.Load() != 1 {
		t.Fatalf("load = %v", f.Load())
	}
	f.SetLoad(0.5)
	mid := f.SwitchPower().Watts()
	want := (200.0 + 260.0) / 2
	if math.Abs(mid-want) > 1e-9 {
		t.Fatalf("mid-load power = %v, want %v", mid, want)
	}
}

func TestTotalPowerScalesWithCount(t *testing.T) {
	f := mustNew(t)
	f.SetLoad(0.3)
	want := f.SwitchPower().Watts() * 768
	if got := f.TotalPower().Watts(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("total = %v, want %v", got, want)
	}
}

func TestGroupAssignment(t *testing.T) {
	f := mustNew(t)
	// Every switch belongs to a valid group and groups are balanced.
	counts := make(map[int]int)
	for i := 0; i < f.SwitchCount(); i++ {
		g := f.GroupOfSwitch(i)
		if g < 0 || g >= f.Config().Groups {
			t.Fatalf("switch %d in invalid group %d", i, g)
		}
		counts[g]++
	}
	if len(counts) != f.Config().Groups {
		t.Fatalf("only %d groups populated", len(counts))
	}
	min, max := 1<<30, 0
	for g := 0; g < f.Config().Groups; g++ {
		c := f.SwitchesInGroup(g)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("group sizes unbalanced: min %d max %d", min, max)
	}
}

func TestGroupOfNode(t *testing.T) {
	f := mustNew(t)
	total := 5860
	if g := f.GroupOfNode(0, total); g != 0 {
		t.Fatalf("first node group = %d", g)
	}
	if g := f.GroupOfNode(total-1, total); g != f.Config().Groups-1 {
		t.Fatalf("last node group = %d", g)
	}
	if g := f.GroupOfNode(0, 0); g != 0 {
		t.Fatalf("degenerate GroupOfNode = %d", g)
	}
}

func TestHops(t *testing.T) {
	f := mustNew(t)
	if got := f.Hops(3, 3); got != 2 {
		t.Fatalf("intra-group hops = %d", got)
	}
	if got := f.Hops(1, 5); got != 3 {
		t.Fatalf("inter-group hops = %d", got)
	}
}

// Property: fabric power is monotone in load and bounded by idle/loaded
// totals.
func TestPropertyPowerBounds(t *testing.T) {
	f := mustNew(t)
	prop := func(a, b uint8) bool {
		la, lb := float64(a)/255, float64(b)/255
		if la > lb {
			la, lb = lb, la
		}
		f.SetLoad(la)
		pa := f.TotalPower().Watts()
		f.SetLoad(lb)
		pb := f.TotalPower().Watts()
		return pa <= pb+1e-9 &&
			pa >= f.IdleTotalPower().Watts()-1e-9 &&
			pb <= f.LoadedTotalPower().Watts()+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Package interconnect models the ARCHER2 Slingshot network: 768 switches
// in a dragonfly topology, with the load-insensitive switch power behaviour
// the paper reports ("steady at 200-250 W irrespective of system load",
// §5) and enough topology structure (groups, global/local links, hop
// counts) to support communication-aware application models and ablations.
package interconnect

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/units"
)

// Config describes a dragonfly fabric.
type Config struct {
	// Switches is the total switch count (ARCHER2: 768).
	Switches int
	// Groups is the number of dragonfly groups.
	Groups int
	// NodesPerSwitch is the number of compute-node endpoints per switch
	// (each ARCHER2 node has 2 NICs; 16 nodes' NICs land on each switch).
	NodesPerSwitch int

	// SwitchIdlePower is a switch's draw with no traffic. The paper gives
	// the fleet range 100-200 kW idle for 768 switches (130-260 W each).
	SwitchIdlePower units.Power
	// SwitchLoadedPower is a switch's draw under load (paper: ~250 W,
	// 200 kW fleet). The gap to idle is deliberately small: Slingshot
	// switch power is essentially load-independent.
	SwitchLoadedPower units.Power
}

// ARCHER2Config returns the paper's Slingshot deployment: 768 switches in a
// dragonfly over 23 cabinet-groups.
func ARCHER2Config() Config {
	return Config{
		Switches:          768,
		Groups:            23,
		NodesPerSwitch:    8, // 5860 nodes / 768 switches ~ 7.6, rounded up
		SwitchIdlePower:   units.Watts(200),
		SwitchLoadedPower: units.Watts(260),
	}
}

// Fabric is an instantiated dragonfly network.
type Fabric struct {
	cfg Config
	// switchGroup[i] is the group of switch i.
	switchGroup []int
	// load is the current fleet-wide traffic level in [0, 1].
	load float64
}

// New builds a fabric from cfg. It returns an error for inconsistent
// configurations.
func New(cfg Config) (*Fabric, error) {
	if cfg.Switches <= 0 || cfg.Groups <= 0 || cfg.Groups > cfg.Switches {
		return nil, fmt.Errorf("interconnect: invalid topology %d switches / %d groups",
			cfg.Switches, cfg.Groups)
	}
	if cfg.SwitchLoadedPower.Watts() < cfg.SwitchIdlePower.Watts() {
		return nil, fmt.Errorf("interconnect: loaded power %v below idle %v",
			cfg.SwitchLoadedPower, cfg.SwitchIdlePower)
	}
	f := &Fabric{cfg: cfg, switchGroup: make([]int, cfg.Switches)}
	for i := range f.switchGroup {
		f.switchGroup[i] = i * cfg.Groups / cfg.Switches
	}
	return f, nil
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SwitchCount returns the number of switches.
func (f *Fabric) SwitchCount() int { return f.cfg.Switches }

// GroupOfSwitch returns the dragonfly group of switch i.
func (f *Fabric) GroupOfSwitch(i int) int { return f.switchGroup[i] }

// SwitchesInGroup returns how many switches are in group g.
func (f *Fabric) SwitchesInGroup(g int) int {
	n := 0
	for _, sg := range f.switchGroup {
		if sg == g {
			n++
		}
	}
	return n
}

// GroupOfNode maps a compute node index to its dragonfly group, assuming
// nodes are packed into groups in ID order (as in cabinet wiring).
func (f *Fabric) GroupOfNode(nodeID, totalNodes int) int {
	if totalNodes <= 0 {
		return 0
	}
	g := nodeID * f.cfg.Groups / totalNodes
	if g >= f.cfg.Groups {
		g = f.cfg.Groups - 1
	}
	return g
}

// Hops returns the minimal dragonfly hop count between two groups:
// 1 within a switch's reach, 2 within a group, 3 across groups (local -
// global - local).
func (f *Fabric) Hops(groupA, groupB int) int {
	if groupA == groupB {
		return 2
	}
	return 3
}

// SetLoad updates the fleet traffic level (clamped to [0, 1]). The paper's
// observation is that power barely responds; modelling it lets the
// telemetry show that insensitivity rather than assume it.
func (f *Fabric) SetLoad(l float64) {
	if l < 0 {
		l = 0
	}
	if l > 1 {
		l = 1
	}
	f.load = l
}

// Load returns the current traffic level.
func (f *Fabric) Load() float64 { return f.load }

// SwitchPower returns one switch's current power draw.
func (f *Fabric) SwitchPower() units.Power {
	idle := f.cfg.SwitchIdlePower.Watts()
	loaded := f.cfg.SwitchLoadedPower.Watts()
	return units.Watts(idle + f.load*(loaded-idle))
}

// TotalPower returns the whole fabric's power draw.
func (f *Fabric) TotalPower() units.Power {
	return units.Watts(f.SwitchPower().Watts() * float64(f.cfg.Switches))
}

// IdleTotalPower returns the fabric draw at zero load.
func (f *Fabric) IdleTotalPower() units.Power {
	return units.Watts(f.cfg.SwitchIdlePower.Watts() * float64(f.cfg.Switches))
}

// LoadedTotalPower returns the fabric draw at full load.
func (f *Fabric) LoadedTotalPower() units.Power {
	return units.Watts(f.cfg.SwitchLoadedPower.Watts() * float64(f.cfg.Switches))
}

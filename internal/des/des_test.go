package des

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	e.At(t0.Add(2*time.Hour), func(time.Time) { order = append(order, 2) })
	e.At(t0.Add(1*time.Hour), func(time.Time) { order = append(order, 1) })
	e.At(t0.Add(3*time.Hour), func(time.Time) { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if !e.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("clock = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	at := t0.Add(time.Hour)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func(time.Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestAfterAndClock(t *testing.T) {
	e := NewEngine(t0)
	var seen time.Time
	e.After(90*time.Minute, func(now time.Time) { seen = now })
	e.Run()
	if !seen.Equal(t0.Add(90 * time.Minute)) {
		t.Fatalf("event time = %v", seen)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(t0)
	e.At(t0.Add(time.Hour), func(time.Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(t0.Add(30*time.Minute), func(time.Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-time.Second, func(time.Time) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(t0)
	fired := false
	h := e.After(time.Hour, func(time.Time) { fired = true })
	if !e.Cancel(h) {
		t.Fatal("cancel returned false for live event")
	}
	if e.Cancel(h) {
		t.Fatal("double-cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestScheduleDuringEvent(t *testing.T) {
	e := NewEngine(t0)
	var hits []time.Duration
	e.After(time.Hour, func(now time.Time) {
		hits = append(hits, now.Sub(t0))
		e.After(time.Hour, func(now time.Time) {
			hits = append(hits, now.Sub(t0))
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != time.Hour || hits[1] != 2*time.Hour {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(t0)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(t0.Add(time.Duration(i)*time.Hour), func(time.Time) { count++ })
	}
	e.RunUntil(t0.Add(5 * time.Hour)) // events at 1..4h fire; 5h is excluded
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if !e.Now().Equal(t0.Add(5 * time.Hour)) {
		t.Fatalf("clock = %v", e.Now())
	}
	e.RunUntil(t0.Add(100 * time.Hour))
	if count != 10 {
		t.Fatalf("count after full run = %d", count)
	}
	if !e.Now().Equal(t0.Add(100 * time.Hour)) {
		t.Fatalf("final clock = %v", e.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := NewEngine(t0)
	e.RunUntil(t0.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	e.RunUntil(t0)
}

func TestTicker(t *testing.T) {
	e := NewEngine(t0)
	var ticks []time.Duration
	e.Every(15*time.Minute, t0.Add(time.Hour+time.Minute), func(now time.Time) {
		ticks = append(ticks, now.Sub(t0))
	})
	e.Run()
	want := []time.Duration{15 * time.Minute, 30 * time.Minute, 45 * time.Minute, 60 * time.Minute}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(t0)
	count := 0
	var tk *Ticker
	tk = e.Every(time.Minute, t0.Add(time.Hour), func(time.Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	e.Every(0, t0.Add(time.Hour), func(time.Time) {})
}

// Property: events fire in non-decreasing time order, and same-time events in
// scheduling order, for arbitrary schedules.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(t0)
		type rec struct {
			at  time.Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			at := t0.Add(time.Duration(d) * time.Second)
			e.At(at, func(now time.Time) { fired = append(fired, rec{now, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at.Before(fired[i-1].at) {
				return false
			}
			if fired[i].at.Equal(fired[i-1].at) && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(t0)
		prev := e.Now()
		ok := true
		for _, d := range delays {
			e.After(time.Duration(d)*time.Second, func(now time.Time) {
				if now.Before(prev) {
					ok = false
				}
				prev = now
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// StepsBefore must execute exactly the event sequence RunUntil would,
// regardless of chunk size, leaving no events before the deadline and
// honouring cancellations — the contract core.Simulator.RunContext's
// cooperative-cancellation loop relies on.
func TestStepsBeforeMatchesRunUntil(t *testing.T) {
	build := func() (*Engine, *[]int) {
		e := NewEngine(t0)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			e.At(t0.Add(time.Duration(i%37)*time.Minute), func(time.Time) { order = append(order, i) })
		}
		// Some events beyond the deadline, and one cancelled before it.
		for i := 0; i < 5; i++ {
			e.At(t0.Add(2*time.Hour), func(time.Time) { order = append(order, -1) })
		}
		h := e.At(t0.Add(time.Minute), func(time.Time) { order = append(order, -2) })
		e.Cancel(h)
		return e, &order
	}
	deadline := t0.Add(time.Hour)

	ref, refOrder := build()
	ref.RunUntil(deadline)

	for _, chunk := range []int{1, 7, 1000} {
		e, order := build()
		steps := 0
		for e.StepsBefore(deadline, chunk) {
			if steps++; steps > 1000 {
				t.Fatalf("chunk %d: StepsBefore never drained", chunk)
			}
		}
		e.RunUntil(deadline)
		if len(*order) != len(*refOrder) {
			t.Fatalf("chunk %d: fired %d events, want %d", chunk, len(*order), len(*refOrder))
		}
		for i := range *order {
			if (*order)[i] != (*refOrder)[i] {
				t.Fatalf("chunk %d: event order diverges at %d", chunk, i)
			}
		}
		if !e.Now().Equal(ref.Now()) {
			t.Fatalf("chunk %d: clock %v, want %v", chunk, e.Now(), ref.Now())
		}
		if e.Fired() != ref.Fired() {
			t.Fatalf("chunk %d: fired %d, want %d", chunk, e.Fired(), ref.Fired())
		}
	}
}

func TestStepsBeforeEmptyQueue(t *testing.T) {
	e := NewEngine(t0)
	if e.StepsBefore(t0.Add(time.Hour), 10) {
		t.Fatal("empty engine claims events remain")
	}
}

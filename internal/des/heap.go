package des

// ordered is the constraint for fourHeap elements: a strict-weak "less"
// over the element type itself. The event queue instantiates it with
// *item, whose order — (timestamp, sequence) — is total, so the pop
// sequence is independent of heap shape and exactly matches the old
// container/heap queue's FIFO tie-break.
type ordered[T any] interface {
	less(T) bool
}

// fourHeap is a generic, index-free 4-ary min-heap. Compared with
// container/heap it needs no interface boxing, no Swap bookkeeping and
// half the tree depth (4 children per node), which roughly halves the
// comparisons per pop on deep queues; elements move by plain assignment.
type fourHeap[T ordered[T]] struct {
	s []T
}

func (h *fourHeap[T]) len() int { return len(h.s) }

// peek returns the minimum without removing it. Call only when len > 0.
func (h *fourHeap[T]) peek() T { return h.s[0] }

// push adds x.
func (h *fourHeap[T]) push(x T) {
	h.s = append(h.s, x)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.s[i].less(h.s[p]) {
			break
		}
		h.s[i], h.s[p] = h.s[p], h.s[i]
		i = p
	}
}

// pop removes and returns the minimum. Call only when len > 0.
func (h *fourHeap[T]) pop() T {
	s := h.s
	root := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release the reference for GC
	h.s = s[:n]

	// Sift down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if h.s[k].less(h.s[min]) {
				min = k
			}
		}
		if !h.s[min].less(h.s[i]) {
			break
		}
		h.s[i], h.s[min] = h.s[min], h.s[i]
		i = min
	}
	return root
}

package des

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// refItem / refQueue reproduce the pre-refactor event queue exactly: a
// container/heap priority queue of boxed items ordered by (at, seq). The
// property tests assert the generic 4-ary heap pops in the identical
// tie-break order.
type refItem struct {
	at  int64
	seq uint64
}

type refQueue []*refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refItem)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// TestFourHeapMatchesContainerHeapOrder pushes arbitrary timestamps —
// heavy on ties, since the engine schedules many events at identical
// times — and asserts the pop order of the 4-ary heap equals the old
// container/heap queue's order item for item.
func TestFourHeapMatchesContainerHeapOrder(t *testing.T) {
	f := func(ats []uint8) bool {
		var fh fourHeap[*item]
		var ref refQueue
		for i, at := range ats {
			// uint8 timestamps force dense ties; seq breaks them FIFO.
			fh.push(&item{at: int64(at), seq: uint64(i)})
			heap.Push(&ref, &refItem{at: int64(at), seq: uint64(i)})
		}
		for ref.Len() > 0 {
			want := heap.Pop(&ref).(*refItem)
			got := fh.pop()
			if got.at != want.at || got.seq != want.seq {
				return false
			}
		}
		return fh.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFourHeapInterleavedPushPop interleaves pushes and pops (as the
// running engine does) and checks the orders still agree, including with
// duplicate timestamps arriving after earlier ones were popped.
func TestFourHeapInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var fh fourHeap[*item]
	var ref refQueue
	seq := uint64(0)
	for round := 0; round < 2000; round++ {
		if fh.len() == 0 || r.Intn(3) != 0 {
			at := int64(r.Intn(64))
			seq++
			fh.push(&item{at: at, seq: seq})
			heap.Push(&ref, &refItem{at: at, seq: seq})
			continue
		}
		want := heap.Pop(&ref).(*refItem)
		got := fh.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("round %d: popped (at=%d seq=%d), reference (at=%d seq=%d)",
				round, got.at, got.seq, want.at, want.seq)
		}
	}
	for ref.Len() > 0 {
		want := heap.Pop(&ref).(*refItem)
		got := fh.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: popped (at=%d seq=%d), reference (at=%d seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
}

// TestEnginePoolReuseKeepsOrder schedules, fires and reschedules through
// the engine API so pooled items are recycled mid-run, and asserts the
// engine-level FIFO tie-break survives recycling.
func TestEnginePoolReuseKeepsOrder(t *testing.T) {
	// Three waves of same-time events with full drains in between, so
	// every wave reuses the prior wave's pooled items.
	e := NewEngine(t0)
	var got []int
	for wave := 0; wave < 3; wave++ {
		at := e.Now().Add(1)
		got = got[:0]
		for i := 0; i < 50; i++ {
			i := i
			e.At(at, func(time.Time) { got = append(got, i) })
		}
		e.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("wave %d: order %v", wave, got)
			}
		}
	}
}

// Package des is a minimal discrete-event simulation kernel: a virtual
// clock, a priority queue of timed events, and periodic process helpers.
//
// The facility twin advances in virtual time from the first job submission
// to the end of the measurement window; everything that happens (job
// arrival, job completion, telemetry sampling, operational policy changes)
// is an event on a single Engine.
//
// Determinism: events at identical timestamps fire in the order they were
// scheduled (FIFO tie-break via a monotonically increasing sequence
// number), so simulations are reproducible regardless of map iteration or
// scheduling jitter. The engine is not goroutine-safe by design; the
// simulation core is single-threaded and parallelism belongs at the
// experiment-sweep level — many independent engines, as implemented by
// the scenario package's worker-pool runner.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event func(now time.Time)

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	seq uint64
}

type item struct {
	at     time.Time
	seq    uint64
	fn     Event
	cancel bool
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a discrete-event simulation engine.
type Engine struct {
	now      time.Time
	queue    eventQueue
	seq      uint64
	byHandle map[uint64]*item
	running  bool
	fired    uint64
}

// NewEngine creates an engine whose clock starts at the given time.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start, byHandle: make(map[uint64]*item)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Pending returns the number of events waiting in the queue (including any
// cancelled-but-unpopped entries' live peers; cancelled events are excluded).
func (e *Engine) Pending() int { return len(e.byHandle) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute virtual time t. Scheduling in the past (before
// Now) panics: it always indicates a model bug.
func (e *Engine) At(t time.Time, fn Event) Handle {
	if t.Before(e.now) {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	it := &item{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, it)
	e.byHandle[it.seq] = it
	return Handle{seq: it.seq}
}

// After schedules fn after delay d from now.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	it, ok := e.byHandle[h.seq]
	if !ok {
		return false
	}
	it.cancel = true
	delete(e.byHandle, h.seq)
	return true
}

// Every schedules fn at now+d, then repeatedly every d, until `until`
// (exclusive) or cancellation of the returned ticker.
func (e *Engine) Every(d time.Duration, until time.Time, fn Event) *Ticker {
	if d <= 0 {
		panic("des: non-positive tick interval")
	}
	t := &Ticker{engine: e, period: d, until: until, fn: fn}
	t.scheduleNext()
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	until   time.Time
	fn      Event
	handle  Handle
	stopped bool
}

func (t *Ticker) scheduleNext() {
	next := t.engine.now.Add(t.period)
	if !next.Before(t.until) {
		t.stopped = true
		return
	}
	t.handle = t.engine.At(next, func(now time.Time) {
		t.fn(now)
		if !t.stopped {
			t.scheduleNext()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.stopped {
		t.stopped = true
		t.engine.Cancel(t.handle)
	}
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.cancel {
			continue
		}
		delete(e.byHandle, it.seq)
		e.now = it.at
		e.fired++
		it.fn(e.now)
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event would
// be at or after deadline; the clock is then advanced to deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	if deadline.Before(e.now) {
		panic("des: RunUntil deadline in the past")
	}
	for len(e.queue) > 0 {
		// Peek.
		it := e.queue[0]
		if it.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if !it.at.Before(deadline) {
			break
		}
		e.Step()
	}
	e.now = deadline
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

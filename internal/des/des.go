// Package des is a minimal discrete-event simulation kernel: a virtual
// clock, a priority queue of timed events, and periodic process helpers.
//
// The facility twin advances in virtual time from the first job submission
// to the end of the measurement window; everything that happens (job
// arrival, job completion, telemetry sampling, operational policy changes)
// is an event on a single Engine.
//
// Determinism: events at identical timestamps fire in the order they were
// scheduled (FIFO tie-break via a monotonically increasing sequence
// number), so simulations are reproducible regardless of map iteration or
// scheduling jitter. The engine is not goroutine-safe by design; the
// simulation core is single-threaded and parallelism belongs at the
// experiment-sweep level — many independent engines, as implemented by
// the scenario package's worker-pool runner.
//
// Performance: the queue is a generic 4-ary min-heap over pooled event
// items keyed on (unix nanoseconds, sequence) — integer comparisons, no
// interface boxing, no per-event allocation in steady state (items come
// from a sync.Pool free-list and return to it when they fire). Hot
// callers that would otherwise allocate a closure per event can use AtArg
// with a long-lived callback and a per-event argument. A full 13-month
// facility run schedules over a million events; this path is what keeps
// the event loop allocation-free.
package des

import (
	"fmt"
	"sync"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event func(now time.Time)

// ArgEvent is an event callback taking an explicit argument, letting hot
// callers reuse one long-lived function value across many events instead
// of allocating a fresh closure per event (see Engine.AtArg).
type ArgEvent func(now time.Time, arg any)

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	seq uint64
}

// Seq returns the handle's engine-assigned sequence number — the FIFO
// tie-break rank among same-timestamp events. Snapshots record it so a
// fork can re-schedule its parent's pending events in the exact relative
// order the parent would have fired them.
func (h Handle) Seq() uint64 { return h.seq }

// item is one scheduled event. The heap orders items by (at, seq): `at`
// is the scheduled time in unix nanoseconds so comparisons are two
// integer compares, and `t` keeps the exact time.Time value the clock
// advances to (reconstructing it from nanoseconds would be Equal but not
// bit-identical, and the determinism contract is bit-identity).
type item struct {
	at     int64
	seq    uint64
	t      time.Time
	fn     Event
	argFn  ArgEvent
	arg    any
	cancel bool
}

func (it *item) less(other *item) bool {
	if it.at != other.at {
		return it.at < other.at
	}
	return it.seq < other.seq
}

// itemPool is the free-list backing the event queue. Items are recycled
// when they fire (or when a cancelled item surfaces), so a simulation's
// steady-state event churn allocates nothing; the pool is shared by every
// engine, which suits the scenario runner's many short-lived engines.
var itemPool = sync.Pool{New: func() any { return new(item) }}

func putItem(it *item) {
	*it = item{}
	itemPool.Put(it)
}

// Engine is a discrete-event simulation engine.
type Engine struct {
	now      time.Time
	queue    fourHeap[*item]
	seq      uint64
	byHandle map[uint64]*item
	fired    uint64
}

// NewEngine creates an engine whose clock starts at the given time.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start, byHandle: make(map[uint64]*item)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Pending returns the number of events waiting in the queue (including any
// cancelled-but-unpopped entries' live peers; cancelled events are excluded).
func (e *Engine) Pending() int { return len(e.byHandle) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute virtual time t. Scheduling in the past (before
// Now) panics: it always indicates a model bug.
func (e *Engine) At(t time.Time, fn Event) Handle {
	return e.schedule(t, fn, nil, nil)
}

// AtArg schedules fn(now, arg) at absolute virtual time t. It behaves
// exactly like At but lets the caller keep one long-lived ArgEvent and
// vary only the argument, avoiding a closure allocation per event — the
// scheduler uses it for job-completion events (one per started job).
func (e *Engine) AtArg(t time.Time, fn ArgEvent, arg any) Handle {
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t time.Time, fn Event, argFn ArgEvent, arg any) Handle {
	if t.Before(e.now) {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	it := itemPool.Get().(*item)
	it.at = t.UnixNano()
	it.seq = e.seq
	it.t = t
	it.fn = fn
	it.argFn = argFn
	it.arg = arg
	it.cancel = false
	e.queue.push(it)
	e.byHandle[it.seq] = it
	return Handle{seq: it.seq}
}

// Reset drains the engine back to an empty queue and restarts the clock
// at `now`, returning every queued item (live or cancelled) to the shared
// pool and zeroing the sequence and fired counters. A forked simulation
// reuses a freshly constructed engine this way: the construction-time
// events are discarded and the parent's pending events are re-scheduled
// from its snapshot, so no pooled item — and no closure or argument
// captured by one — stays live in both parent and fork.
func (e *Engine) Reset(now time.Time) {
	for e.queue.len() > 0 {
		putItem(e.queue.pop())
	}
	clear(e.byHandle)
	e.now = now
	e.seq = 0
	e.fired = 0
}

// After schedules fn after delay d from now.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	it, ok := e.byHandle[h.seq]
	if !ok {
		return false
	}
	it.cancel = true
	it.fn = nil
	it.argFn = nil
	it.arg = nil // release references now; the item pops lazily
	delete(e.byHandle, h.seq)
	return true
}

// Every schedules fn at now+d, then repeatedly every d, until `until`
// (exclusive) or cancellation of the returned ticker.
func (e *Engine) Every(d time.Duration, until time.Time, fn Event) *Ticker {
	t := e.newTicker(d, until, fn)
	t.scheduleNext()
	return t
}

// ResumeEvery restores a ticker mid-stream: the first tick fires at
// `first` (not now+d) and subsequent ticks continue every d until
// `until`, exactly as if an Every ticker had been running since its
// origin. Forked simulations use it to resume telemetry sampling at the
// parent's pending tick. A first at or past `until` yields an
// already-stopped ticker.
func (e *Engine) ResumeEvery(first time.Time, d time.Duration, until time.Time, fn Event) *Ticker {
	t := e.newTicker(d, until, fn)
	if !first.Before(until) {
		t.stopped = true
		return t
	}
	t.next = first
	t.handle = e.At(first, t.fire)
	return t
}

func (e *Engine) newTicker(d time.Duration, until time.Time, fn Event) *Ticker {
	if d <= 0 {
		panic("des: non-positive tick interval")
	}
	t := &Ticker{engine: e, period: d, until: until, fn: fn}
	// One closure for the ticker's whole life, not one per tick.
	t.fire = func(now time.Time) {
		t.fn(now)
		if !t.stopped {
			t.scheduleNext()
		}
	}
	return t
}

// Ticker is a repeating event created by Every or ResumeEvery.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	until   time.Time
	fn      Event
	fire    Event
	handle  Handle
	next    time.Time
	stopped bool
}

func (t *Ticker) scheduleNext() {
	next := t.engine.now.Add(t.period)
	if !next.Before(t.until) {
		t.stopped = true
		return
	}
	t.next = next
	t.handle = t.engine.At(next, t.fire)
}

// Pending returns the next scheduled tick time and that event's sequence
// number; ok is false once the ticker has stopped (horizon reached or
// Stop called). Snapshots use it to record where a fork must resume the
// tick train.
func (t *Ticker) Pending() (next time.Time, seq uint64, ok bool) {
	if t.stopped {
		return time.Time{}, 0, false
	}
	return t.next, t.handle.seq, true
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.stopped {
		t.stopped = true
		t.engine.Cancel(t.handle)
	}
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.len() > 0 {
		it := e.queue.pop()
		if it.cancel {
			putItem(it)
			continue
		}
		delete(e.byHandle, it.seq)
		e.now = it.t
		e.fired++
		fn, argFn, arg := it.fn, it.argFn, it.arg
		putItem(it) // recycle before firing: the callback may schedule
		if fn != nil {
			fn(e.now)
		} else {
			argFn(e.now, arg)
		}
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event would
// be at or after deadline; the clock is then advanced to deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	if deadline.Before(e.now) {
		panic("des: RunUntil deadline in the past")
	}
	dn := deadline.UnixNano()
	for e.queue.len() > 0 {
		// Peek.
		it := e.queue.peek()
		if it.cancel {
			putItem(e.queue.pop())
			continue
		}
		if it.at >= dn {
			break
		}
		e.Step()
	}
	e.now = deadline
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// StepsBefore executes at most max events whose time is strictly before
// deadline and reports whether any such events remain. Unlike RunUntil it
// never advances the clock to the deadline, so callers can interleave
// chunks of event processing with out-of-band work (cancellation checks,
// progress reporting) and finish with RunUntil once it returns false; the
// event sequence executed is exactly the one RunUntil alone would have
// executed, preserving bit-identical results.
func (e *Engine) StepsBefore(deadline time.Time, max int) bool {
	dn := deadline.UnixNano()
	for executed := 0; executed < max; {
		if e.queue.len() == 0 {
			return false
		}
		it := e.queue.peek()
		if it.cancel {
			putItem(e.queue.pop())
			continue
		}
		if it.at >= dn {
			return false
		}
		e.Step()
		executed++
	}
	return e.queue.len() > 0
}

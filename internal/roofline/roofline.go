// Package roofline provides the two-phase performance model used for every
// application in the twin: a job's runtime is split into a compute-bound
// fraction that scales inversely with core frequency and a memory/
// communication-bound remainder that does not.
//
// Normalised to the reference operating point (effective boost frequency
// f_ref), the runtime multiplier at frequency f is
//
//	T(f) = c * (f_ref/f) + (1 - c)
//
// with c the compute-bound fraction. This is the textbook first-order DVFS
// response and exactly the structure the paper invokes in §4.2 ("if
// application performance is limited by data transfer rates from memory
// ... this may not have a large detrimental effect").
package roofline

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/units"
)

// Kernel characterises an application's frequency sensitivity.
type Kernel struct {
	// ComputeFraction is the fraction of reference runtime spent
	// instruction-throughput-bound, in [0, 1].
	ComputeFraction float64
}

// Validate reports whether the kernel parameters are in range.
func (k Kernel) Validate() error {
	if k.ComputeFraction < 0 || k.ComputeFraction > 1 {
		return fmt.Errorf("roofline: compute fraction %v outside [0,1]", k.ComputeFraction)
	}
	return nil
}

// TimeMultiplier returns T(f): the runtime multiplier at frequency f
// relative to the reference frequency fref. It panics on non-positive
// frequencies.
func (k Kernel) TimeMultiplier(f, fref units.Frequency) float64 {
	if f.Hertz() <= 0 || fref.Hertz() <= 0 {
		panic("roofline: non-positive frequency")
	}
	return k.ComputeFraction*fref.Ratio(f) + (1 - k.ComputeFraction)
}

// PerfRatio returns performance at f relative to fref (the paper's "perf
// ratio" convention: < 1 means slower).
func (k Kernel) PerfRatio(f, fref units.Frequency) float64 {
	return 1 / k.TimeMultiplier(f, fref)
}

// ComputeFractionFromPerfRatio inverts the model: given an observed perf
// ratio r at frequency f (relative to fref), it returns the compute
// fraction c that reproduces it. This is how the paper's Table 4 perf
// columns are turned into kernel parameters. An error is returned when the
// ratio is outside the achievable range (r must be in (f/fref, 1]).
func ComputeFractionFromPerfRatio(r float64, f, fref units.Frequency) (float64, error) {
	if f.Hertz() <= 0 || fref.Hertz() <= 0 {
		return 0, fmt.Errorf("roofline: non-positive frequency")
	}
	if fref.Hertz() <= f.Hertz() {
		return 0, fmt.Errorf("roofline: fref %v must exceed f %v", fref, f)
	}
	lo := f.Ratio(fref) // perf ratio of a fully compute-bound code
	if r <= lo || r > 1 {
		return 0, fmt.Errorf("roofline: perf ratio %v outside achievable (%v, 1]", r, lo)
	}
	c := (1/r - 1) / (fref.Ratio(f) - 1)
	return c, nil
}

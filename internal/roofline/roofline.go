// Package roofline provides the two-phase performance model used for every
// application in the twin: a job's runtime is split into a compute-bound
// fraction that scales inversely with core frequency and a memory/
// communication-bound remainder that does not.
//
// Normalised to the reference operating point (effective boost frequency
// f_ref), the runtime multiplier at frequency f is
//
//	T(f) = c * (f_ref/f) + (1 - c)
//
// with c the compute-bound fraction. This is the textbook first-order DVFS
// response and exactly the structure the paper invokes in §4.2 ("if
// application performance is limited by data transfer rates from memory
// ... this may not have a large detrimental effect").
package roofline

import (
	"errors"
	"fmt"

	"github.com/greenhpc/archertwin/internal/units"
)

// Mode mirrors the CPU determinism mode without importing internal/cpu
// (cpu depends on nothing below it; roofline must stay leaf-level). The
// ordinal values match cpu.Mode so call sites convert with a plain cast.
type Mode int

// The two BIOS determinism modes, ordinal-compatible with cpu.Mode.
const (
	PowerDeterminism Mode = iota
	PerformanceDeterminism
)

// String returns the mode's canonical name (the cpu.Mode spelling, also
// used in operating-point table CSVs).
func (m Mode) String() string {
	switch m {
	case PowerDeterminism:
		return "power-determinism"
	case PerformanceDeterminism:
		return "performance-determinism"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses a mode name as spelled by String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "power-determinism":
		return PowerDeterminism, nil
	case "performance-determinism":
		return PerformanceDeterminism, nil
	}
	return 0, fmt.Errorf("roofline: unknown mode %q", s)
}

// PerfModel is the pluggable frequency-response model: given an
// operating point (frequency f relative to reference fref, determinism
// mode m) it returns the runtime multiplier relative to the reference
// point. The scalar Kernel is the analytic first-order implementation;
// Table interpolates measured operating-point grids. Implementations
// must be pure (no internal state mutation on lookup) and the lookup
// must not allocate — it sits on the scheduler's job-start hot path.
type PerfModel interface {
	// Multiplier returns T(f, m): runtime at (f, m) over runtime at
	// (fref, reference mode). Must be >= some positive value; panics on
	// non-positive frequencies like Kernel.TimeMultiplier.
	Multiplier(f, fref units.Frequency, m Mode) float64
	// Validate checks the model's parameters.
	Validate() error
}

// ErrRatioOutOfRange is the sentinel wrapped by
// ComputeFractionFromPerfRatio when the observed perf ratio is outside
// the achievable (f/fref, 1] band — physically unreachable under the
// first-order model, as opposed to malformed input (non-positive or
// inverted frequencies), which reports a plain error. The table loader
// uses errors.Is against this to separate "unachievable measurement"
// from "bad data".
var ErrRatioOutOfRange = errors.New("roofline: perf ratio outside achievable range")

// Kernel characterises an application's frequency sensitivity.
type Kernel struct {
	// ComputeFraction is the fraction of reference runtime spent
	// instruction-throughput-bound, in [0, 1].
	ComputeFraction float64
}

// Validate reports whether the kernel parameters are in range.
func (k Kernel) Validate() error {
	if k.ComputeFraction < 0 || k.ComputeFraction > 1 {
		return fmt.Errorf("roofline: compute fraction %v outside [0,1]", k.ComputeFraction)
	}
	return nil
}

// TimeMultiplier returns T(f): the runtime multiplier at frequency f
// relative to the reference frequency fref. It panics on non-positive
// frequencies.
func (k Kernel) TimeMultiplier(f, fref units.Frequency) float64 {
	if f.Hertz() <= 0 || fref.Hertz() <= 0 {
		panic("roofline: non-positive frequency")
	}
	return k.ComputeFraction*fref.Ratio(f) + (1 - k.ComputeFraction)
}

// Multiplier implements PerfModel: the analytic kernel's response is
// mode-independent (the uniform per-mode perf factor is applied outside
// the frequency model, by apps.App.TimeMultiplier), so the mode argument
// is ignored.
func (k Kernel) Multiplier(f, fref units.Frequency, _ Mode) float64 {
	return k.TimeMultiplier(f, fref)
}

// PerfRatio returns performance at f relative to fref (the paper's "perf
// ratio" convention: < 1 means slower).
func (k Kernel) PerfRatio(f, fref units.Frequency) float64 {
	return 1 / k.TimeMultiplier(f, fref)
}

// ComputeFractionFromPerfRatio inverts the model: given an observed perf
// ratio r at frequency f (relative to fref), it returns the compute
// fraction c that reproduces it. This is how the paper's Table 4 perf
// columns are turned into kernel parameters. An error is returned when the
// ratio is outside the achievable range (r must be in (f/fref, 1]); that
// error wraps ErrRatioOutOfRange so callers can distinguish an
// unachievable measurement from malformed input. See docs/model.md for
// why (f/fref, 1] bounds the invertible band.
func ComputeFractionFromPerfRatio(r float64, f, fref units.Frequency) (float64, error) {
	if f.Hertz() <= 0 || fref.Hertz() <= 0 {
		return 0, fmt.Errorf("roofline: non-positive frequency")
	}
	if fref.Hertz() <= f.Hertz() {
		return 0, fmt.Errorf("roofline: fref %v must exceed f %v", fref, f)
	}
	lo := f.Ratio(fref) // perf ratio of a fully compute-bound code
	if r <= lo || r > 1 {
		return 0, fmt.Errorf("roofline: perf ratio %v outside achievable (%v, 1]: %w", r, lo, ErrRatioOutOfRange)
	}
	c := (1/r - 1) / (fref.Ratio(f) - 1)
	return c, nil
}

package roofline

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/units"
)

// specSettings enumerates every valid FreqSetting of a spec: each base
// P-state plus boost on the top one.
func specSettings(spec *cpu.Spec) []cpu.FreqSetting {
	var out []cpu.FreqSetting
	for _, p := range spec.PStates {
		out = append(out, cpu.FreqSetting{Base: p.Freq})
	}
	out = append(out, spec.DefaultSetting())
	return out
}

// kernelSampledTable builds a Table by sampling a Kernel at every valid
// FreqSetting of the spec, in both determinism modes.
func kernelSampledTable(t *testing.T, name string, k Kernel, spec *cpu.Spec) *Table {
	t.Helper()
	var pts []Point
	for _, m := range []Mode{PowerDeterminism, PerformanceDeterminism} {
		for _, fs := range specSettings(spec) {
			f := spec.EffectiveFrequency(fs)
			pts = append(pts, Point{Mode: m, Freq: f, Mult: k.TimeMultiplier(f, spec.BoostFreq)})
		}
	}
	tab, err := NewTable(name, pts)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

// The tentpole property: a Table whose grid is exactly the kernel's
// response sampled at the machine's operating points is bit-identical to
// the scalar Kernel at every FreqSetting x Mode — so swapping the perf
// model implementation cannot perturb a simulation that only ever visits
// grid points.
func TestTableSampledFromKernelBitIdentical(t *testing.T) {
	spec := cpu.EPYC7742()
	for _, c := range []float64{0, 0.132, 0.188172, 0.55, 0.878378, 1} {
		k := Kernel{ComputeFraction: c}
		tab := kernelSampledTable(t, fmt.Sprintf("c=%g", c), k, spec)
		for _, m := range []Mode{PowerDeterminism, PerformanceDeterminism} {
			for _, fs := range specSettings(spec) {
				f := spec.EffectiveFrequency(fs)
				want := k.TimeMultiplier(f, spec.BoostFreq)
				got := tab.Multiplier(f, spec.BoostFreq, m)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("c=%g %v %v: table %v (bits %x) != kernel %v (bits %x)",
						c, m, fs, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// A single-point table is the degenerate grid: every lookup clamps to
// the one measured point, which must equal the kernel's value there.
func TestTableOnePointClamp(t *testing.T) {
	k := Kernel{ComputeFraction: 0} // only c=0 admits a one-point table (mult 1 at reference)
	fref := units.Gigahertz(2.8)
	tab, err := NewTable("one", []Point{{Mode: PowerDeterminism, Freq: fref, Mult: k.TimeMultiplier(fref, fref)}})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	for _, f := range []units.Frequency{units.Gigahertz(1.5), units.Gigahertz(2.8), units.Gigahertz(3.1)} {
		if got := tab.Multiplier(f, fref, PerformanceDeterminism); got != 1 {
			t.Errorf("Multiplier(%v) = %v, want 1 (clamped to the single point)", f, got)
		}
	}
}

func TestTableInterpolatesBetweenPoints(t *testing.T) {
	tab, err := NewTable("interp", []Point{
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.4},
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.0},
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	got := tab.Multiplier(units.Gigahertz(2.4), units.Gigahertz(2.8), PowerDeterminism)
	if math.Abs(got-1.2) > 1e-12 {
		t.Errorf("midpoint multiplier = %v, want 1.2", got)
	}
	// Below and above the grid: clamped, not extrapolated.
	if got := tab.Multiplier(units.Gigahertz(1.0), units.Gigahertz(2.8), PowerDeterminism); got != 1.4 {
		t.Errorf("below-grid multiplier = %v, want clamp 1.4", got)
	}
	if got := tab.Multiplier(units.Gigahertz(3.5), units.Gigahertz(2.8), PowerDeterminism); got != 1.0 {
		t.Errorf("above-grid multiplier = %v, want clamp 1.0", got)
	}
}

// A mode with no measured points must fall back to the other mode's
// curve rather than panic.
func TestTableModeFallback(t *testing.T) {
	tab, err := NewTable("fallback", []Point{
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.3},
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.0},
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	want := tab.Multiplier(units.Gigahertz(2.0), units.Gigahertz(2.8), PowerDeterminism)
	got := tab.Multiplier(units.Gigahertz(2.0), units.Gigahertz(2.8), PerformanceDeterminism)
	if got != want {
		t.Errorf("fallback multiplier = %v, want %v", got, want)
	}
}

func TestTableValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
	}{
		{"non-ascending frequency", []Point{
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.2},
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.0},
		}},
		{"multiplier below 1", []Point{
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 0.9},
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.0},
		}},
		{"multiplier rising with frequency", []Point{
			{Mode: PowerDeterminism, Freq: units.Gigahertz(1.5), Mult: 1.1},
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.2},
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.0},
		}},
		{"reference multiplier not 1", []Point{
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.2},
			{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.1},
		}},
		{"no points", nil},
	}
	for _, tc := range cases {
		if _, err := NewTable(tc.name, tc.pts); err == nil {
			t.Errorf("%s: NewTable accepted invalid points", tc.name)
		}
	}
}

// An unachievable multiplier (at or beyond the fully-compute-bound bound
// fref/f) must surface the typed sentinel, so loaders can tell a
// physically impossible measurement from plain bad data.
func TestTableValidateUnachievableIsSentinel(t *testing.T) {
	_, err := NewTable("unachievable", []Point{
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.0), Mult: 1.5}, // bound is 2.8/2.0 = 1.4
		{Mode: PowerDeterminism, Freq: units.Gigahertz(2.8), Mult: 1.0},
	})
	if !errors.Is(err, ErrRatioOutOfRange) {
		t.Fatalf("err = %v, want ErrRatioOutOfRange", err)
	}
}

func TestComputeFractionSentinelOnlyForRange(t *testing.T) {
	// Out of range: wraps the sentinel.
	if _, err := ComputeFractionFromPerfRatio(0.5, units.Gigahertz(2.0), units.Gigahertz(2.8)); !errors.Is(err, ErrRatioOutOfRange) {
		t.Errorf("out-of-range err = %v, want ErrRatioOutOfRange", err)
	}
	// Malformed input: a plain error, not the sentinel.
	if _, err := ComputeFractionFromPerfRatio(0.9, units.Gigahertz(2.8), units.Gigahertz(2.0)); err == nil || errors.Is(err, ErrRatioOutOfRange) {
		t.Errorf("inverted-frequency err = %v, want plain error", err)
	}
	if _, err := ComputeFractionFromPerfRatio(0.9, 0, units.Gigahertz(2.8)); err == nil || errors.Is(err, ErrRatioOutOfRange) {
		t.Errorf("zero-frequency err = %v, want plain error", err)
	}
}

// The embedded ARCHER2 grid must parse, cover the paper's Table 4
// applications and the fleet classes, and agree with the first-order
// kernels those measurements calibrate (round-trip within the CSV's
// printed precision).
func TestARCHER2TablesEmbedded(t *testing.T) {
	tables, err := ARCHER2Tables()
	if err != nil {
		t.Fatalf("ARCHER2Tables: %v", err)
	}
	table4 := map[string]float64{ // app -> paper perf ratio at 2.0 GHz
		"CASTEP Al Slab":       0.93,
		"CP2K H2O 2048":        0.91,
		"GROMACS 1400k":        0.83,
		"LAMMPS Ethanol":       0.74,
		"Nektar++ TGV 128 DoF": 0.80,
		"ONETEP hBN-BP-hBN":    0.92,
		"VASP CdTe":            0.95,
	}
	f20, fref := units.Gigahertz(2.0), units.Gigahertz(2.8)
	for name, perf := range table4 {
		tab, ok := tables[name]
		if !ok {
			t.Errorf("embedded grid missing Table 4 app %q", name)
			continue
		}
		c, err := ComputeFractionFromPerfRatio(perf, f20, fref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k := Kernel{ComputeFraction: c}
		for _, m := range []Mode{PowerDeterminism, PerformanceDeterminism} {
			for _, f := range []units.Frequency{units.Gigahertz(1.5), f20, units.Gigahertz(2.25), fref} {
				got := tab.Multiplier(f, fref, m)
				want := k.TimeMultiplier(f, fref)
				if math.Abs(got-want) > 5e-6 {
					t.Errorf("%s %v @%v: table %v vs kernel %v", name, m, f, got, want)
				}
			}
		}
	}
	for _, class := range []string{"materials-dft", "climate-ocean", "biomolecular-md",
		"engineering-cfd", "mineral-physics", "seismology", "plasma-physics"} {
		if _, ok := tables[class]; !ok {
			t.Errorf("embedded grid missing fleet class %q", class)
		}
	}
}

// The lookup sits on the scheduler's job-start hot path and must not
// allocate (the bench gate pins allocs/op == 0; this is the direct
// check).
func TestTableLookupZeroAlloc(t *testing.T) {
	tables, err := ARCHER2Tables()
	if err != nil {
		t.Fatalf("ARCHER2Tables: %v", err)
	}
	tab := tables["LAMMPS Ethanol"]
	f, fref := units.Gigahertz(2.1), units.Gigahertz(2.8)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = tab.Multiplier(f, fref, PerformanceDeterminism)
	})
	if allocs != 0 {
		t.Fatalf("Table.Multiplier allocates %v per lookup, want 0", allocs)
	}
}

func TestParseTablesRejects(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"missing header", "LAMMPS,power-determinism,2.0,1.35\n"},
		{"wrong field count", tableHeader + "\nLAMMPS,power-determinism,2.0\n"},
		{"bad mode", tableHeader + "\nLAMMPS,turbo,2.0,1.35\n"},
		{"bad frequency", tableHeader + "\nLAMMPS,power-determinism,x,1.35\n"},
		{"bad multiplier", tableHeader + "\nLAMMPS,power-determinism,2.0,x\n"},
		{"empty app", tableHeader + "\n,power-determinism,2.0,1.35\n"},
		{"non-monotone", tableHeader + "\nA,power-determinism,2.8,1.0\nA,power-determinism,2.0,1.35\n"},
	}
	for _, tc := range cases {
		if _, err := ParseTables([]byte(tc.csv)); err == nil {
			t.Errorf("%s: ParseTables accepted malformed input", tc.name)
		}
	}
}

func TestParseTablesComments(t *testing.T) {
	csv := "# comment\n\n" + tableHeader + "\nA,power-determinism,2.0,1.2\nA,power-determinism,2.8,1.0\n"
	tables, err := ParseTables([]byte(csv))
	if err != nil {
		t.Fatalf("ParseTables: %v", err)
	}
	if len(tables) != 1 || tables["A"] == nil {
		t.Fatalf("tables = %v, want one entry A", tables)
	}
}

// FuzzParseTables drives the CSV loader with arbitrary input: it must
// never panic, and any table it accepts must satisfy the validated
// invariants (so accepted lookups are safe on the hot path).
func FuzzParseTables(f *testing.F) {
	f.Add([]byte(tableHeader + "\nA,power-determinism,2.0,1.2\nA,power-determinism,2.8,1.0\n"))
	f.Add([]byte(tableHeader + "\nA,performance-determinism,1.5,1.5\n"))
	f.Add([]byte("# comment only\n"))
	f.Add(archer2CSV)
	f.Fuzz(func(t *testing.T, data []byte) {
		tables, err := ParseTables(data)
		if err != nil {
			return
		}
		for name, tab := range tables {
			if err := tab.Validate(); err != nil {
				t.Fatalf("accepted table %q fails Validate: %v", name, err)
			}
			// Lookups across the band must stay finite and >= 1.
			for _, ghz := range []float64{0.5, 1.5, 2.0, 2.8, 4.0} {
				got := tab.Multiplier(units.Gigahertz(ghz), units.Gigahertz(2.8), PowerDeterminism)
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 1 {
					t.Fatalf("table %q: multiplier %v at %v GHz", name, got, ghz)
				}
			}
		}
	})
}

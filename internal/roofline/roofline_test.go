package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greenhpc/archertwin/internal/units"
)

var (
	f20  = units.Gigahertz(2.0)
	fref = units.Gigahertz(2.8)
)

func TestTimeMultiplierEndpoints(t *testing.T) {
	// Fully memory-bound: no slowdown at any frequency.
	k := Kernel{ComputeFraction: 0}
	if got := k.TimeMultiplier(f20, fref); got != 1 {
		t.Errorf("memory-bound multiplier = %v", got)
	}
	// Fully compute-bound: slowdown is the frequency ratio.
	k = Kernel{ComputeFraction: 1}
	if got := k.TimeMultiplier(f20, fref); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("compute-bound multiplier = %v, want 1.4", got)
	}
	// At the reference frequency the multiplier is 1 for any c.
	k = Kernel{ComputeFraction: 0.5}
	if got := k.TimeMultiplier(fref, fref); got != 1 {
		t.Errorf("reference multiplier = %v", got)
	}
}

func TestPerfRatio(t *testing.T) {
	k := Kernel{ComputeFraction: 0.878} // LAMMPS-like
	r := k.PerfRatio(f20, fref)
	if math.Abs(r-0.74) > 0.005 {
		t.Fatalf("LAMMPS-like perf ratio = %v, want ~0.74", r)
	}
}

func TestValidate(t *testing.T) {
	if err := (Kernel{ComputeFraction: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{-0.01, 1.01} {
		if err := (Kernel{ComputeFraction: c}).Validate(); err == nil {
			t.Errorf("c=%v accepted", c)
		}
	}
}

func TestComputeFractionInversion(t *testing.T) {
	// Paper Table 4 perf ratios invert to sensible compute fractions.
	cases := []struct {
		name string
		r    float64
	}{
		{"CASTEP", 0.93}, {"CP2K", 0.91}, {"GROMACS", 0.83},
		{"LAMMPS", 0.74}, {"Nektar", 0.80}, {"ONETEP", 0.92}, {"VASP", 0.95},
	}
	for _, c := range cases {
		got, err := ComputeFractionFromPerfRatio(c.r, f20, fref)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got <= 0 || got >= 1 {
			t.Fatalf("%s: c = %v out of range", c.name, got)
		}
		// Round trip: the kernel reproduces the observed ratio.
		k := Kernel{ComputeFraction: got}
		if back := k.PerfRatio(f20, fref); math.Abs(back-c.r) > 1e-9 {
			t.Fatalf("%s: round trip %v != %v", c.name, back, c.r)
		}
	}
}

func TestComputeFractionErrors(t *testing.T) {
	// Below the compute-bound floor (2.0/2.8 = 0.714).
	if _, err := ComputeFractionFromPerfRatio(0.70, f20, fref); err == nil {
		t.Error("infeasible ratio accepted")
	}
	if _, err := ComputeFractionFromPerfRatio(1.01, f20, fref); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if _, err := ComputeFractionFromPerfRatio(0.9, fref, f20); err == nil {
		t.Error("fref < f accepted")
	}
	if _, err := ComputeFractionFromPerfRatio(0.9, units.Gigahertz(0), fref); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestPanicsOnZeroFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frequency did not panic")
		}
	}()
	Kernel{ComputeFraction: 0.5}.TimeMultiplier(units.Hertz(0), fref)
}

// Property: T is strictly decreasing in f for c > 0 (higher frequency never
// slows a run), and T >= 1 for f <= fref.
func TestPropertyMonotone(t *testing.T) {
	prop := func(cRaw, aRaw, bRaw uint8) bool {
		c := float64(cRaw) / 255
		k := Kernel{ComputeFraction: c}
		fa := units.Gigahertz(1.0 + 1.8*float64(aRaw)/255)
		fb := units.Gigahertz(1.0 + 1.8*float64(bRaw)/255)
		if fa > fb {
			fa, fb = fb, fa
		}
		ta := k.TimeMultiplier(fa, fref)
		tb := k.TimeMultiplier(fb, fref)
		if tb > ta+1e-12 {
			return false
		}
		if fa <= fref && ta < 1-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inversion round-trips for any feasible (c, f) pair.
func TestPropertyInversionRoundTrip(t *testing.T) {
	prop := func(cRaw, fRaw uint8) bool {
		c := 0.01 + 0.98*float64(cRaw)/255
		f := units.Gigahertz(1.5 + 1.0*float64(fRaw)/255) // below fref
		k := Kernel{ComputeFraction: c}
		r := k.PerfRatio(f, fref)
		got, err := ComputeFractionFromPerfRatio(r, f, fref)
		if err != nil {
			return false
		}
		return math.Abs(got-c) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

package roofline

import (
	_ "embed"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/greenhpc/archertwin/internal/units"
)

// Table is the measured-operating-point PerfModel: per determinism mode,
// a grid of (frequency, runtime multiplier) points normalised to the
// grid's highest frequency (the reference operating point, multiplier
// 1.0). Lookups linearly interpolate between grid points and clamp
// outside the measured band; an exact grid hit returns the stored value
// bit-for-bit, which is what makes a table sampled from a Kernel
// indistinguishable from the kernel at the sampled points. The lookup is
// allocation-free — it sits on the scheduler's job-start hot path
// (BenchmarkTableLookup gates this).
//
// This is the inference-sim MFU approach applied to HPC codes: offline
// benchmark sweeps produce a CSV of measured multipliers, the loader
// validates them against the first-order model's achievable band, and
// the simulation interpolates in between.
type Table struct {
	name   string
	curves [2]curve // indexed by Mode ordinal
}

// curve is one mode's measured grid: freq (hertz) strictly ascending,
// mult the runtime multiplier at that frequency, non-increasing in
// frequency with the top point exactly 1.0.
type curve struct {
	freq []float64
	mult []float64
}

// Point is one measured operating point used to build a Table
// programmatically.
type Point struct {
	Mode Mode
	Freq units.Frequency
	Mult float64
}

// NewTable builds a Table from measured points. Points must arrive in
// ascending frequency order within each mode (the "monotone frequency
// axis" the loader enforces on CSVs holds for programmatic construction
// too). At least one point is required.
func NewTable(name string, points []Point) (*Table, error) {
	t := &Table{name: name}
	for _, p := range points {
		if p.Mode != PowerDeterminism && p.Mode != PerformanceDeterminism {
			return nil, fmt.Errorf("roofline: table %s: unknown mode %d", name, int(p.Mode))
		}
		c := &t.curves[p.Mode]
		c.freq = append(c.freq, p.Freq.Hertz())
		c.mult = append(c.mult, p.Mult)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Name returns the application name the table was measured for.
func (t *Table) Name() string { return t.name }

// Validate checks the table invariants: a name, at least one measured
// point, and per mode a strictly ascending positive frequency axis with
// multipliers that are >= 1 at reduced frequency, non-increasing in
// frequency, and exactly 1.0 at the reference (top) point. Every
// reduced-frequency point must also round-trip through
// ComputeFractionFromPerfRatio — a multiplier at or beyond the
// fully-compute-bound bound fref/f is unachievable under the first-order
// model and rejected as a measurement inconsistency.
func (t *Table) Validate() error {
	if t.name == "" {
		return fmt.Errorf("roofline: unnamed table")
	}
	total := 0
	for m := range t.curves {
		c := &t.curves[m]
		n := len(c.freq)
		total += n
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			if c.freq[i] <= 0 || math.IsInf(c.freq[i], 0) || math.IsNaN(c.freq[i]) {
				return fmt.Errorf("roofline: table %s %v: bad frequency %v", t.name, Mode(m), c.freq[i])
			}
			if math.IsNaN(c.mult[i]) || math.IsInf(c.mult[i], 0) {
				return fmt.Errorf("roofline: table %s %v: non-finite multiplier at point %d", t.name, Mode(m), i)
			}
			if i > 0 && c.freq[i] <= c.freq[i-1] {
				return fmt.Errorf("roofline: table %s %v: frequency axis not strictly ascending at point %d", t.name, Mode(m), i)
			}
			if c.mult[i] < 1 {
				return fmt.Errorf("roofline: table %s %v: multiplier %v below 1 at %s", t.name, Mode(m), c.mult[i], units.Hertz(c.freq[i]))
			}
			if i > 0 && c.mult[i] > c.mult[i-1] {
				return fmt.Errorf("roofline: table %s %v: multiplier rises with frequency at point %d", t.name, Mode(m), i)
			}
		}
		if c.mult[n-1] != 1 {
			return fmt.Errorf("roofline: table %s %v: reference point multiplier %v != 1", t.name, Mode(m), c.mult[n-1])
		}
		fref := units.Hertz(c.freq[n-1])
		for i := 0; i < n-1; i++ {
			r := 1 / c.mult[i]
			if _, err := ComputeFractionFromPerfRatio(r, units.Hertz(c.freq[i]), fref); err != nil {
				// ComputeFractionFromPerfRatio's invertible band is open at
				// f/fref, but a multiplier of exactly fref/f is the
				// fully-compute-bound response (c = 1) and a legitimate
				// measurement; accept the closed boundary to float
				// precision.
				lo := c.freq[i] / c.freq[n-1]
				if errors.Is(err, ErrRatioOutOfRange) && r <= lo && r >= lo*(1-1e-9) {
					continue
				}
				return fmt.Errorf("roofline: table %s %v: point %d does not round-trip: %w", t.name, Mode(m), i, err)
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("roofline: table %s has no measured points", t.name)
	}
	return nil
}

// Multiplier implements PerfModel by clamped linear interpolation on the
// mode's measured grid. A mode with no measured points falls back to the
// other mode's curve (the frequency-response shape is mode-invariant to
// first order; the uniform per-mode perf factor is applied outside the
// frequency model, exactly as for Kernel). Panics on non-positive
// frequencies, matching Kernel.TimeMultiplier. The reference frequency
// argument is ignored: the grid is already normalised to its own
// measured reference point.
func (t *Table) Multiplier(f, fref units.Frequency, m Mode) float64 {
	if f.Hertz() <= 0 || fref.Hertz() <= 0 {
		panic("roofline: non-positive frequency")
	}
	ci := PowerDeterminism
	if m == PerformanceDeterminism {
		ci = PerformanceDeterminism
	}
	c := &t.curves[ci]
	if len(c.freq) == 0 {
		c = &t.curves[1-ci]
	}
	hz := f.Hertz()
	n := len(c.freq)
	if hz <= c.freq[0] {
		return c.mult[0]
	}
	if hz >= c.freq[n-1] {
		return c.mult[n-1]
	}
	for i := 1; i < n; i++ {
		if hz == c.freq[i] {
			return c.mult[i]
		}
		if hz < c.freq[i] {
			w := (hz - c.freq[i-1]) / (c.freq[i] - c.freq[i-1])
			return c.mult[i-1] + w*(c.mult[i]-c.mult[i-1])
		}
	}
	return c.mult[n-1]
}

// tableHeader is the mandatory first non-comment CSV line.
const tableHeader = "app,mode,freq_ghz,multiplier"

// maxTableRows bounds loader input (a parse guard, far above any real
// measurement campaign).
const maxTableRows = 10000

// ParseTables parses an operating-point CSV into per-application tables.
// The format is one measured point per line,
//
//	app,mode,freq_ghz,multiplier
//
// with '#' comment lines and blank lines ignored, mode one of
// power-determinism / performance-determinism, and rows for each
// (app, mode) in ascending frequency order. Every resulting table is
// validated (Table.Validate), so a malformed file reports exactly which
// measured point is bad — and errors.Is(err, ErrRatioOutOfRange)
// distinguishes a physically unachievable measurement from plain bad
// data.
func ParseTables(data []byte) (map[string]*Table, error) {
	tables := make(map[string]*Table)
	sawHeader := false
	rows := 0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			if line != tableHeader {
				return nil, fmt.Errorf("roofline: tables line %d: expected header %q, got %q", ln+1, tableHeader, line)
			}
			sawHeader = true
			continue
		}
		rows++
		if rows > maxTableRows {
			return nil, fmt.Errorf("roofline: tables: more than %d rows", maxTableRows)
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("roofline: tables line %d: want 4 fields, got %d", ln+1, len(fields))
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("roofline: tables line %d: empty app name", ln+1)
		}
		mode, err := ParseMode(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("roofline: tables line %d: %w", ln+1, err)
		}
		ghz, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("roofline: tables line %d: bad frequency: %v", ln+1, err)
		}
		mult, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("roofline: tables line %d: bad multiplier: %v", ln+1, err)
		}
		t := tables[name]
		if t == nil {
			t = &Table{name: name}
			tables[name] = t
		}
		c := &t.curves[mode]
		c.freq = append(c.freq, units.Gigahertz(ghz).Hertz())
		c.mult = append(c.mult, mult)
	}
	if !sawHeader {
		return nil, fmt.Errorf("roofline: tables: empty input (missing %q header)", tableHeader)
	}
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return tables, nil
}

//go:embed tables/archer2.csv
var archer2CSV []byte

// ARCHER2Tables parses the embedded ARCHER2 operating-point grid: the
// paper's Table 4 applications plus the seven fleet workload classes,
// measured at the EPYC 7742 p-states (1.5, 2.0, 2.25 GHz) and the 2.8
// GHz boost reference, in both determinism modes. Each call returns a
// fresh map, so callers may attach and mutate tables freely.
func ARCHER2Tables() (map[string]*Table, error) {
	return ParseTables(archer2CSV)
}

package node

import (
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/units"
)

// Snapshot is one node's full mutable state at a checkpoint. The cached
// power draw is deliberately absent: it is a pure function of the
// captured fields and is recomputed bit-identically on Restore.
type Snapshot struct {
	Setting    cpu.FreqSetting
	Mode       cpu.Mode
	State      State
	DieFactor  float64
	PerfFactor float64
	Activity   cpu.Activity
	Busy       bool
	Energy     units.Energy
	LastUpdate time.Time
	Rng        [4]uint64
}

// Snapshot captures the node's mutable state, including the position of
// its die-variation RNG stream (consumed on mode changes, so a fork must
// resume it exactly).
func (n *Node) Snapshot() Snapshot {
	return Snapshot{
		Setting:    n.setting,
		Mode:       n.mode,
		State:      n.state,
		DieFactor:  n.dieFactor,
		PerfFactor: n.perfFactor,
		Activity:   n.activity,
		Busy:       n.busy,
		Energy:     n.energy,
		LastUpdate: n.lastUpdate,
		Rng:        n.rng.State(),
	}
}

// Restore overwrites the node's mutable state from a snapshot, refreshing
// the power cache and reconciling any attached fleet counters.
func (n *Node) Restore(s Snapshot) {
	wasUp, wasBusy := n.state != Down, n.busy
	n.setting = s.Setting
	n.mode = s.Mode
	n.state = s.State
	n.dieFactor = s.DieFactor
	n.perfFactor = s.PerfFactor
	n.activity = s.Activity
	n.busy = s.Busy
	n.energy = s.Energy
	n.lastUpdate = s.LastUpdate
	n.rng.SetState(s.Rng)
	n.refreshPower()
	n.updateCounters(wasUp, wasBusy)
}

package node

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func newNode(t *testing.T) *Node {
	t.Helper()
	return New(1, cpu.EPYC7742(), rng.New(42).Split("node"), t0)
}

func TestIdlePowerMatchesPaper(t *testing.T) {
	// Paper Table 2: compute node idle = 0.23 kW.
	p := IdlePower(cpu.EPYC7742())
	if math.Abs(p.Watts()-230) > 1e-9 {
		t.Fatalf("idle node power = %v, want 230 W", p)
	}
	n := newNode(t)
	if got := n.Power(); math.Abs(got.Watts()-230) > 1e-9 {
		t.Fatalf("fresh node power = %v, want 230 W", got)
	}
}

func TestIdleIsHalfLoaded(t *testing.T) {
	// Paper §5: idle nodes draw ~50% of a fully loaded node.
	spec := cpu.EPYC7742()
	idle := IdlePower(spec)
	loaded := ExpectedPower(spec, spec.DefaultSetting(),
		cpu.Activity{Core: 0.7, Uncore: 0.65}, cpu.PowerDeterminism)
	ratio := idle.Watts() / loaded.Watts()
	if ratio < 0.40 || ratio > 0.60 {
		t.Fatalf("idle/loaded = %v, want ~0.5 (idle %v, loaded %v)", ratio, idle, loaded)
	}
}

func TestStartStopWorkPower(t *testing.T) {
	n := newNode(t)
	a := cpu.Activity{Core: 0.6, Uncore: 0.5}
	n.StartWork(a, t0)
	if !n.Busy() {
		t.Fatal("node not busy after StartWork")
	}
	busy := n.Power()
	if busy.Watts() <= 230 {
		t.Fatalf("busy power = %v, not above idle", busy)
	}
	n.StopWork(t0.Add(time.Hour))
	if n.Busy() {
		t.Fatal("node busy after StopWork")
	}
	if got := n.Power(); math.Abs(got.Watts()-230) > 1e-9 {
		t.Fatalf("post-work power = %v", got)
	}
	// Energy for the hour must equal busy power * 1h.
	wantE := busy.EnergyOver(time.Hour)
	if math.Abs(n.Energy().Joules()-wantE.Joules()) > 1 {
		t.Fatalf("energy = %v, want %v", n.Energy(), wantE)
	}
}

func TestEnergyAccrualAcrossTransitions(t *testing.T) {
	n := newNode(t)
	a := cpu.Activity{Core: 1, Uncore: 0}
	n.StartWork(a, t0) // idle 0..0
	p1 := n.Power()
	n.StopWork(t0.Add(2 * time.Hour)) // busy 0..2h
	n.Accrue(t0.Add(3 * time.Hour))   // idle 2..3h
	want := p1.EnergyOver(2*time.Hour).Joules() + 230*3600
	if math.Abs(n.Energy().Joules()-want) > 1 {
		t.Fatalf("energy = %v J, want %v J", n.Energy().Joules(), want)
	}
}

func TestAccruePastPanics(t *testing.T) {
	n := newNode(t)
	n.Accrue(t0.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("backwards accrual did not panic")
		}
	}()
	n.Accrue(t0)
}

func TestSetFrequency(t *testing.T) {
	n := newNode(t)
	spec := n.Spec
	if err := n.SetFrequency(spec.CappedSetting(), t0); err != nil {
		t.Fatal(err)
	}
	if n.Setting() != spec.CappedSetting() {
		t.Fatalf("setting = %v", n.Setting())
	}
	if err := n.SetFrequency(cpu.FreqSetting{Base: units.Gigahertz(4)}, t0); err == nil {
		t.Fatal("invalid frequency accepted")
	}
}

func TestFrequencyCapReducesBusyPower(t *testing.T) {
	n := newNode(t)
	a := cpu.Activity{Core: 0.8, Uncore: 0.5}
	n.StartWork(a, t0)
	before := n.Power()
	if err := n.SetFrequency(n.Spec.CappedSetting(), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	after := n.Power()
	if after.Watts() >= before.Watts() {
		t.Fatalf("cap did not reduce power: %v -> %v", before, after)
	}
}

func TestSetModeRedrawsAndReducesPower(t *testing.T) {
	n := newNode(t)
	a := cpu.Activity{Core: 0.8, Uncore: 0.5}
	n.StartWork(a, t0)
	before := n.Power()
	pfBefore := n.PerfFactor()
	n.SetMode(cpu.PerformanceDeterminism, t0.Add(time.Minute))
	if n.Mode() != cpu.PerformanceDeterminism {
		t.Fatalf("mode = %v", n.Mode())
	}
	after := n.Power()
	if after.Watts() >= before.Watts() {
		t.Fatalf("perf-det did not reduce busy power: %v -> %v", before, after)
	}
	if n.PerfFactor() == pfBefore {
		t.Log("perf factor unchanged by mode switch (possible but unlikely)")
	}
	if n.PerfFactor() != n.Spec.PerfDetPerfFactor {
		t.Fatalf("perf-det perf factor = %v, want %v", n.PerfFactor(), n.Spec.PerfDetPerfFactor)
	}
	// Switching to the same mode is a no-op (no redraw).
	df := n.Power()
	n.SetMode(cpu.PerformanceDeterminism, t0.Add(2*time.Minute))
	if n.Power() != df {
		t.Fatal("same-mode switch changed power")
	}
}

func TestDownNodeDrawsNothing(t *testing.T) {
	n := newNode(t)
	n.SetState(Down, t0)
	if n.State() != Down {
		t.Fatalf("state = %v", n.State())
	}
	if n.Power() != 0 {
		t.Fatalf("down node power = %v", n.Power())
	}
	n.Accrue(t0.Add(time.Hour))
	if n.Energy() != 0 {
		t.Fatalf("down node accrued energy %v", n.Energy())
	}
}

func TestDrainingNodeDrawsNormally(t *testing.T) {
	n := newNode(t)
	n.SetState(Draining, t0)
	if got := n.Power(); math.Abs(got.Watts()-230) > 1e-9 {
		t.Fatalf("draining node power = %v", got)
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Up, Draining, Down, State(9)} {
		if s.String() == "" {
			t.Fatalf("empty string for state %d", int(s))
		}
	}
}

func TestExpectedPowerModeOrdering(t *testing.T) {
	spec := cpu.EPYC7742()
	a := cpu.Activity{Core: 0.7, Uncore: 0.6}
	pd := ExpectedPower(spec, spec.DefaultSetting(), a, cpu.PowerDeterminism)
	pf := ExpectedPower(spec, spec.DefaultSetting(), a, cpu.PerformanceDeterminism)
	if pf.Watts() >= pd.Watts() {
		t.Fatalf("expected power ordering wrong: %v vs %v", pf, pd)
	}
}

func TestNodeDeterminism(t *testing.T) {
	// Same seed -> identical die factors and power trajectory.
	mk := func() *Node {
		return New(7, cpu.EPYC7742(), rng.New(99).Split("node"), t0)
	}
	a, b := mk(), mk()
	a.SetMode(cpu.PerformanceDeterminism, t0)
	b.SetMode(cpu.PerformanceDeterminism, t0)
	if a.Power() != b.Power() || a.PerfFactor() != b.PerfFactor() {
		t.Fatal("same-seed nodes diverge")
	}
}

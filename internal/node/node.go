// Package node models an ARCHER2 compute node: two EPYC sockets, board
// components (memory DIMMs, Slingshot NICs, baseboard), per-node frequency
// and BIOS-mode state, and cumulative energy accounting.
//
// With the default EPYC7742 socket spec, a node idles at 230 W (2x85 W
// sockets + 60 W board) and draws around 510 W under a typical mixed load
// at the stock 2.25 GHz + boost setting, matching the paper's Table 2.
package node

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

// SocketsPerNode is the socket count of an ARCHER2 compute node.
const SocketsPerNode = 2

// BoardPower is the frequency-independent power of node components outside
// the CPU sockets (DIMMs at idle, NICs, baseboard, fans' share).
var BoardPower = units.Watts(60)

// State is a node's administrative state.
type State int

const (
	// Up: available for scheduling.
	Up State = iota
	// Draining: running work finishes but no new work starts.
	Draining
	// Down: failed or administratively removed.
	Down
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Node is one compute node.
type Node struct {
	ID   int
	Spec *cpu.Spec

	setting cpu.FreqSetting
	mode    cpu.Mode
	state   State

	// Per-node die silicon-quality factors, re-drawn when the BIOS mode
	// changes (they are a property of (die, mode)).
	dieFactor  float64
	perfFactor float64
	rng        *rng.Stream

	// Current workload activity (zero when idle).
	activity cpu.Activity
	busy     bool

	energy     units.Energy
	lastUpdate time.Time

	// powerW caches Power().Watts(): the socket power model is a pure
	// function of (setting, mode, activity, dieFactor, state), all of
	// which change only through the mutator methods below, so the cache
	// is refreshed there and every read — telemetry sweeps the whole
	// fleet per sample — is a field load instead of the full voltage/
	// frequency model. The cached value is the same computation, so sums
	// over nodes are bit-identical to the uncached engine.
	powerW float64

	// counters, when attached, aggregates fleet-wide up/busy node counts
	// incrementally so Facility.Utilisation is O(1) instead of a fleet
	// scan per telemetry sample.
	counters *FleetCounters

	// sockets / boardW are the node's physical layout: socket (or GPU
	// module) count and frequency-independent board power in watts.
	// New initialises them to the package defaults (SocketsPerNode,
	// BoardPower); NewWithLayout lets a heterogeneous partition override
	// them per node type.
	sockets int
	boardW  float64
}

// FleetCounters aggregates schedulable and busy node counts across a
// fleet, maintained incrementally by each node's state transitions. The
// ratios it yields are integer-derived and therefore identical to a
// fresh scan of the fleet.
type FleetCounters struct {
	// Up counts nodes not Down (Up or Draining).
	Up int
	// BusyUp counts nodes that are busy and not Down.
	BusyUp int
}

// New creates a node with the given ID using spec, initialised at the
// spec's default frequency setting in Power Determinism mode. The stream r
// seeds the node's die-variation draws; it is retained.
func New(id int, spec *cpu.Spec, r *rng.Stream, at time.Time) *Node {
	return NewWithLayout(id, spec, SocketsPerNode, BoardPower, r, at)
}

// NewWithLayout creates a node with an explicit physical layout: sockets
// (or GPU modules) per node and board power. Heterogeneous partitions
// use it for node types that differ from the ARCHER2 CPU compute node;
// New(...) is exactly NewWithLayout(..., SocketsPerNode, BoardPower, ...).
func NewWithLayout(id int, spec *cpu.Spec, sockets int, board units.Power, r *rng.Stream, at time.Time) *Node {
	if sockets <= 0 {
		panic(fmt.Sprintf("node %d: non-positive socket count %d", id, sockets))
	}
	n := &Node{
		ID:         id,
		Spec:       spec,
		setting:    spec.DefaultSetting(),
		mode:       cpu.PowerDeterminism,
		rng:        r,
		lastUpdate: at,
		sockets:    sockets,
		boardW:     board.Watts(),
	}
	n.redraw()
	n.refreshPower()
	return n
}

func (n *Node) redraw() {
	n.dieFactor = n.Spec.DrawDieFactor(n.mode, n.rng)
	n.perfFactor = n.Spec.DrawPerfFactor(n.mode, n.rng)
}

// AttachCounters registers the node on a fleet counter set, contributing
// its current state. Facility attaches every node to one shared set.
func (n *Node) AttachCounters(c *FleetCounters) {
	n.counters = c
	if n.state != Down {
		c.Up++
		if n.busy {
			c.BusyUp++
		}
	}
}

// refreshPower recomputes the cached power draw. Call after any mutation
// of setting, mode, activity, die factors or state.
func (n *Node) refreshPower() {
	if n.state == Down {
		n.powerW = 0
		return
	}
	socket := n.Spec.Power(n.setting, n.activity, n.dieFactor)
	n.powerW = float64(n.sockets)*socket.Watts() + n.boardW
}

// updateCounters reconciles the fleet counters after a state or busy
// transition, given the prior values.
func (n *Node) updateCounters(wasUp, wasBusy bool) {
	c := n.counters
	if c == nil {
		return
	}
	up := n.state != Down
	if up != wasUp {
		if up {
			c.Up++
		} else {
			c.Up--
		}
	}
	if was, now := wasUp && wasBusy, up && n.busy; now != was {
		if now {
			c.BusyUp++
		} else {
			c.BusyUp--
		}
	}
}

// Setting returns the node's current frequency setting.
func (n *Node) Setting() cpu.FreqSetting { return n.setting }

// Mode returns the node's current BIOS determinism mode.
func (n *Node) Mode() cpu.Mode { return n.mode }

// State returns the node's administrative state.
func (n *Node) State() State { return n.state }

// SetState updates the administrative state (accrues energy first so the
// transition is accounted at the right power level).
func (n *Node) SetState(s State, at time.Time) {
	n.Accrue(at)
	wasUp, wasBusy := n.state != Down, n.busy
	n.state = s
	n.refreshPower()
	n.updateCounters(wasUp, wasBusy)
}

// Busy reports whether a job is currently running on the node.
func (n *Node) Busy() bool { return n.busy }

// SetFrequency changes the node's frequency setting, accruing energy at the
// old setting first. It returns an error for unsupported settings.
func (n *Node) SetFrequency(fs cpu.FreqSetting, at time.Time) error {
	if err := n.Spec.ValidateSetting(fs); err != nil {
		return err
	}
	n.Accrue(at)
	n.setting = fs
	n.refreshPower()
	return nil
}

// SetMode changes the BIOS determinism mode. The die factors are redrawn
// because they are mode-dependent silicon behaviour. Energy is accrued at
// the old mode first.
func (n *Node) SetMode(m cpu.Mode, at time.Time) {
	if m == n.mode {
		return
	}
	n.Accrue(at)
	n.mode = m
	n.redraw()
	n.refreshPower()
}

// StartWork marks the node busy with the given activity (from the
// application model). It accrues idle energy up to `at` first.
func (n *Node) StartWork(a cpu.Activity, at time.Time) {
	n.Accrue(at)
	wasBusy := n.busy
	n.activity = a
	n.busy = true
	n.refreshPower()
	n.updateCounters(n.state != Down, wasBusy)
}

// StopWork marks the node idle, accruing the work period's energy.
func (n *Node) StopWork(at time.Time) {
	n.Accrue(at)
	wasBusy := n.busy
	n.activity = cpu.Activity{}
	n.busy = false
	n.refreshPower()
	n.updateCounters(n.state != Down, wasBusy)
}

// PerfFactor returns the node's current per-die performance factor.
func (n *Node) PerfFactor() float64 { return n.perfFactor }

// Sockets returns the node's socket (or GPU module) count.
func (n *Node) Sockets() int { return n.sockets }

// Board returns the node's frequency-independent board power.
func (n *Node) Board() units.Power { return units.Watts(n.boardW) }

// Power returns the node's current power draw: both sockets plus board.
// A Down node draws no power (powered off); Draining nodes draw normally.
// The value is cached across reads and refreshed on state mutations, so
// fleet-wide power sweeps cost a field load per node.
func (n *Node) Power() units.Power {
	return units.Watts(n.powerW)
}

// PowerWatts is Power().Watts() without the unit round-trip, for the
// facility's per-sample fleet summation.
func (n *Node) PowerWatts() float64 { return n.powerW }

// Accrue integrates energy at the current power level from the last update
// to `at`. Callers mutating power-relevant state must Accrue first; the
// state-changing methods on Node do this automatically.
func (n *Node) Accrue(at time.Time) {
	if at.Before(n.lastUpdate) {
		panic(fmt.Sprintf("node %d: accrue time %v before last update %v", n.ID, at, n.lastUpdate))
	}
	d := at.Sub(n.lastUpdate)
	if d > 0 {
		n.energy += n.Power().EnergyOver(d)
	}
	n.lastUpdate = at
}

// Energy returns cumulative node energy up to the last accrual.
func (n *Node) Energy() units.Energy { return n.energy }

// IdlePower returns the node's idle power draw (state- and mode-independent
// baseline: 2 sockets idle + board).
func IdlePower(spec *cpu.Spec) units.Power {
	return units.Watts(SocketsPerNode*spec.IdlePower.Watts() + BoardPower.Watts())
}

// ExpectedPower returns the fleet-expectation node power for the given
// application activity, setting and mode, using mean die factors rather
// than sampled ones. Calibration and the analytic tables use this.
func ExpectedPower(spec *cpu.Spec, fs cpu.FreqSetting, a cpu.Activity, m cpu.Mode) units.Power {
	socket := spec.Power(fs, a, spec.MeanDieFactor(m))
	return units.Watts(SocketsPerNode*socket.Watts() + BoardPower.Watts())
}

// ExpectedPowerLayout is ExpectedPower for an explicit node layout —
// the heterogeneous-partition counterpart, used wherever a partition's
// nodes differ from the default two-socket compute node.
func ExpectedPowerLayout(spec *cpu.Spec, sockets int, board units.Power, fs cpu.FreqSetting, a cpu.Activity, m cpu.Mode) units.Power {
	socket := spec.Power(fs, a, spec.MeanDieFactor(m))
	return units.Watts(float64(sockets)*socket.Watts() + board.Watts())
}

// IdlePowerLayout is IdlePower for an explicit node layout.
func IdlePowerLayout(spec *cpu.Spec, sockets int, board units.Power) units.Power {
	return units.Watts(float64(sockets)*spec.IdlePower.Watts() + board.Watts())
}

package core

import (
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/facility"
)

// heteroForkConfig builds a small heterogeneous-fleet simulation: the
// primary CPU partition plus an AI partition, with the measured
// operating-point tables governing frequency response and a surrogate
// accelerating the climate class.
func heteroForkConfig(seed uint64, cpuNodes, aiNodes, days int) Config {
	cfg := ScaledConfig(cpuNodes, t0, days)
	cfg.Seed = seed
	cfg.Facility.Partitions = []facility.Partition{facility.AIPartition(aiNodes)}
	cfg.PerfModel = "table"
	cfg.Surrogate = &SurrogateConfig{Class: "climate-ocean", Speedup: 10, CoveredFraction: 0.5}
	cfg.Windows = []Window{{Label: "whole-run", From: t0, To: cfg.End}}
	return cfg
}

// TestForkHeterogeneousBitIdentical pins the fork identity with the
// Roofline-v2 feature set live in the snapshot: a two-partition fleet
// (so the scheduler carries per-partition placement state and the AI
// partition its own operating point), table-based perf models, and a
// surrogate-rescaled workload class. A fork at an arbitrary quiescent
// time must replay bit-identically to the uninterrupted run, and
// snapshotting must not perturb the parent.
func TestForkHeterogeneousBitIdentical(t *testing.T) {
	cfg := heteroForkConfig(17, 24, 8, 3)

	// The features must actually change the results, or this pins nothing.
	plain := ScaledConfig(24, t0, 3)
	plain.Seed = 17
	plain.Windows = cfg.Windows
	cold := digestOf(t, cfg)
	if cold == digestOf(t, plain) {
		t.Fatal("heterogeneous fleet + tables changed nothing; the fork test is vacuous")
	}

	for name, at := range map[string]time.Time{
		"early": t0.Add(9 * time.Hour),
		"late":  t0.Add(55 * time.Hour),
	} {
		t.Run(name, func(t *testing.T) {
			forked, continued := forkDigest(t, cfg, cfg, at)
			if forked != cold {
				t.Errorf("fork digest %s != cold digest %s", forked, cold)
			}
			if continued != cold {
				t.Errorf("parent continuation digest %s != cold digest %s", continued, cold)
			}
		})
	}
}

// TestForkValidationPartitionShape checks that Fork rejects a config
// whose partition layout contradicts the snapshot's, while tolerating a
// changed perf model (a legitimate future-divergence axis: restored
// jobs keep their recorded runtimes, so only new placements differ).
func TestForkValidationPartitionShape(t *testing.T) {
	cfg := heteroForkConfig(23, 16, 8, 3)
	parent, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(t0.Add(30 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(*Config){
		"partition dropped": func(c *Config) { c.Facility.Partitions = nil },
		"partition resized": func(c *Config) { c.Facility.Partitions[0].Nodes += 4 },
		"partition renamed": func(c *Config) { c.Facility.Partitions[0].Name = "gpu" },
		"partition layout":  func(c *Config) { c.Facility.Partitions[0].SocketsPerNode = 2 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := cfg.Clone()
			mutate(&bad)
			if _, err := Fork(snap, bad); err == nil {
				t.Errorf("Fork accepted a config with %s", name)
			}
		})
	}

	// Switching the perf model is a divergence, not a contradiction.
	branch := cfg.Clone()
	branch.PerfModel = "kernel"
	if _, err := Fork(snap, branch); err != nil {
		t.Errorf("Fork rejected a perf-model divergence: %v", err)
	}
}

// TestHeterogeneousConfigCloneIsolated checks that Clone deep-copies
// the new Roofline-v2 config state: mutating a clone's partitions or
// surrogate must not leak into the original.
func TestHeterogeneousConfigCloneIsolated(t *testing.T) {
	cfg := heteroForkConfig(3, 16, 8, 2)
	cl := cfg.Clone()
	cl.Facility.Partitions[0].Nodes = 99
	cl.Facility.Partitions[0].CPU.Cores = 1
	cl.Surrogate.Speedup = 2
	if cfg.Facility.Partitions[0].Nodes == 99 {
		t.Error("clone shares the partition slice")
	}
	if cfg.Facility.Partitions[0].CPU.Cores == 1 {
		t.Error("clone shares the partition CPU spec")
	}
	if cfg.Surrogate.Speedup == 2 {
		t.Error("clone shares the surrogate config")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("original config invalid after mutating clone: %v", err)
	}
}

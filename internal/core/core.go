// Package core is the public face of the ARCHER2 digital twin: it wires
// the facility hardware model, workload generator, batch scheduler,
// telemetry pipeline and operational-policy timeline onto one
// discrete-event engine, replays the paper's Dec 2021 - Dec 2022
// operational history, and reports the measurement-window means behind
// the paper's Figures 1-3 together with scheduler and energy accounting.
//
// Typical use:
//
//	sim, err := core.NewSimulator(core.DefaultConfig())
//	...
//	res, err := sim.Run()
//	w, _ := res.WindowByLabel("figure1-baseline")
//	fmt.Println(w.MeanPower) // ~3.22 MW, the paper's Figure 1 mean
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/forecast"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/telemetry"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

// Window is a measurement window with a label.
type Window struct {
	Label string
	From  time.Time
	To    time.Time
}

// Contains reports whether t lies in [From, To).
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

// Config parameterises a full timeline simulation.
type Config struct {
	Seed uint64

	Facility facility.Config
	Sched    sched.Config
	Policy   policy.Config
	Meter    telemetry.MeterConfig

	// Timeline holds the dated operational changes.
	Timeline policy.Timeline

	// BusyNodeTarget is the mean busy-node power the fleet mix is
	// calibrated to at the pre-change operating point. 505 W reproduces
	// the paper's 3,220 kW cabinet baseline at the ~99% utilisation the
	// saturated backfilling scheduler achieves (the realised job mix runs
	// slightly hotter than the configured shares because backfill favours
	// small jobs; the target absorbs that bias).
	BusyNodeTarget units.Power
	// OverSubscription is offered load relative to capacity; >1 keeps the
	// queue saturated like the real service.
	OverSubscription float64
	// MaxJobNodes caps single-job size (0 = the workload default, 1024).
	// Scaled-down facilities must scale this too or large jobs fragment
	// the node pool and depress utilisation.
	MaxJobNodes int

	// Priorities, when non-empty, assigns each generated job a
	// scheduling priority from these classes, by a pure hash of the job
	// ID under a seed derived from Seed (the workload stream is
	// untouched, so the job shapes and arrival times stay bit-identical
	// to a run without priorities). Empty leaves every job at priority
	// zero. See sched.Config for the queue ordering, aging and
	// preemption knobs the priorities feed.
	Priorities []workload.PriorityClass

	Start time.Time
	End   time.Time

	// Windows are the measurement windows evaluated in Results, in
	// chronological order.
	Windows []Window

	// Failures, when MTBFPerNode > 0, injects random node failures with
	// the given per-node mean time between failures and repair time. Jobs
	// running on a failed node are killed (as on the real system).
	Failures FailureConfig

	// RecordTrace captures every submitted job into Results.Trace for
	// later replay via the workload package.
	RecordTrace bool

	// CabinetMeters enables per-cabinet power series in Results.Cabinets.
	CabinetMeters bool

	// JobLogCap, when non-zero, retains up to that many per-job accounting
	// records in Results.JobLog (sacct-style). Negative means unbounded.
	JobLogCap int

	// FleetVariant, when non-nil, rebuilds every application in the fleet
	// mix with the given compiler/library variant (paper §5 future work)
	// after power calibration, so the variant's power and performance
	// shifts show up in the fleet figures instead of being absorbed by the
	// busy-power calibration.
	FleetVariant *apps.Variant

	// PerfModel selects the frequency-response implementation for the
	// fleet mix: "" or "kernel" is the scalar roofline kernel (the
	// default, byte-identical to the pre-PerfModel behaviour); "table"
	// attaches the measured operating-point tables
	// (roofline.ARCHER2Tables) to every mix application, interpolated at
	// lookup time. Applied after calibration and any FleetVariant, so the
	// table governs frequency response while power activity stays
	// calibrated.
	PerfModel string

	// Surrogate, when non-nil, models an AI-surrogate deployment: the
	// covered fleet class's runtime distribution shrinks by the covered
	// share at the surrogate's speedup (the class still runs its
	// uncovered fraction at full length). Training-energy amortisation is
	// accounted out of band — see apps.Surrogate and the ai-surrogate
	// example.
	Surrogate *SurrogateConfig

	// Carbon, when non-nil, makes the simulation carbon-aware: a grid
	// carbon-intensity trace is generated over the run, a forecaster is
	// built on it, and (if NewPolicy is set) a temporal scheduling policy
	// is installed in the scheduler. The trace is recorded in
	// Results.CarbonTrace for emissions accounting.
	Carbon *CarbonConfig

	// arrivalRate, when set, installs this already calibrated workload
	// arrival rate instead of re-running the Monte-Carlo calibration
	// estimate. Only Fork sets it (from the snapshot, where the parent
	// recorded the rate it calibrated from the identical configuration):
	// the estimate is the single most expensive construction step, and
	// paying it once per branch would eat the fork path's advantage on
	// small configs.
	arrivalRate float64
}

// SurrogateConfig scales one fleet class's runtime distribution for an
// AI-surrogate deployment: a CoveredFraction share of the class's work
// completes Speedup times faster.
type SurrogateConfig struct {
	// Class names the fleet class the surrogate covers (e.g.
	// "climate-ocean").
	Class string
	// Speedup is the surrogate inference speedup over the full solver
	// (> 1).
	Speedup float64
	// CoveredFraction is the share of the class's runs the surrogate
	// replaces, in (0, 1].
	CoveredFraction float64
}

// Validate checks the surrogate parameters.
func (sc *SurrogateConfig) Validate() error {
	if sc.Class == "" {
		return fmt.Errorf("core: surrogate has no class")
	}
	if sc.Speedup <= 1 {
		return fmt.Errorf("core: surrogate speedup %v must exceed 1", sc.Speedup)
	}
	if sc.CoveredFraction <= 0 || sc.CoveredFraction > 1 {
		return fmt.Errorf("core: surrogate covered fraction %v outside (0, 1]", sc.CoveredFraction)
	}
	return nil
}

// runtimeFactor is the mean runtime scaling the surrogate induces on its
// class.
func (sc *SurrogateConfig) runtimeFactor() float64 {
	return 1 - sc.CoveredFraction + sc.CoveredFraction/sc.Speedup
}

// CarbonConfig connects the grid's carbon intensity to the scheduler.
type CarbonConfig struct {
	// Model generates the intensity trace the run lives under.
	Model grid.IntensityModel
	// TraceSeed seeds the trace's stochastic wind term. Scenario sweeps
	// derive it from the sweep seed only (rng.DeriveSeed(seed,
	// "grid-trace")) so every scenario of a sweep shares one weather
	// realisation — common random numbers across the carbon axis.
	TraceSeed uint64
	// Step is the trace and forecast granularity (default 30 minutes,
	// the GB settlement period).
	Step time.Duration
	// Error is the forecast error model (zero = perfect information).
	Error forecast.ErrorModel
	// NewPolicy, when set, builds the temporal scheduling policy over the
	// run's forecaster; the result is installed as Config.Sched.Temporal.
	NewPolicy func(*forecast.Forecaster) sched.TemporalPolicy
}

// step returns the effective trace step.
func (c *CarbonConfig) step() time.Duration {
	if c.Step <= 0 {
		return 30 * time.Minute
	}
	return c.Step
}

// Trace generates the carbon-intensity series for [from, to) — the same
// series the simulator sees, so out-of-band accounting (the scenario
// runner) and in-simulation forecasting always agree.
func (c *CarbonConfig) Trace(from, to time.Time) (*timeseries.RegularSeries, error) {
	return c.Model.Trace(from, to, c.step(), rng.New(c.TraceSeed))
}

// Clone returns a deep copy of the configuration: the windows, timeline
// (including its pointer-valued change fields), CPU spec and fleet
// variant are all copied. A plain struct copy of Config aliases all of
// those; callers deriving several experiment configurations from one
// baseline (and possibly running them concurrently) should clone instead.
func (c Config) Clone() Config {
	out := c
	if c.Facility.CPU != nil {
		spec := *c.Facility.CPU
		spec.PStates = append([]cpu.PState(nil), c.Facility.CPU.PStates...)
		out.Facility.CPU = &spec
	}
	if c.Facility.Partitions != nil {
		out.Facility.Partitions = append([]facility.Partition(nil), c.Facility.Partitions...)
		for i := range out.Facility.Partitions {
			if p := out.Facility.Partitions[i].CPU; p != nil {
				spec := *p
				spec.PStates = append([]cpu.PState(nil), p.PStates...)
				out.Facility.Partitions[i].CPU = &spec
			}
		}
	}
	if c.Surrogate != nil {
		sc := *c.Surrogate
		out.Surrogate = &sc
	}
	out.Windows = append([]Window(nil), c.Windows...)
	if c.Timeline.Changes != nil {
		out.Timeline.Changes = make([]policy.Change, len(c.Timeline.Changes))
		for i, ch := range c.Timeline.Changes {
			cc := ch
			if ch.Mode != nil {
				m := *ch.Mode
				cc.Mode = &m
			}
			if ch.Setting != nil {
				s := *ch.Setting
				cc.Setting = &s
			}
			out.Timeline.Changes[i] = cc
		}
	}
	if c.FleetVariant != nil {
		v := *c.FleetVariant
		out.FleetVariant = &v
	}
	if c.Carbon != nil {
		cc := *c.Carbon
		out.Carbon = &cc
	}
	out.Priorities = append([]workload.PriorityClass(nil), c.Priorities...)
	if c.Sched.Reservations != nil {
		out.Sched.Reservations = make([]sched.Reservation, len(c.Sched.Reservations))
		for i, r := range c.Sched.Reservations {
			r.Nodes = append([]int(nil), r.Nodes...)
			out.Sched.Reservations[i] = r
		}
	}
	return out
}

// FailureConfig parameterises random node failures.
type FailureConfig struct {
	// MTBFPerNode is one node's mean time between failures (0 disables
	// failure injection).
	MTBFPerNode time.Duration
	// RepairTime is how long a failed node stays down.
	RepairTime time.Duration
}

// PaperDates returns the paper's simulation span and measurement windows.
func PaperDates() (start, end time.Time, windows []Window) {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	start = d(2021, 12, 1)
	end = d(2022, 12, 31)
	windows = []Window{
		{Label: "figure1-baseline", From: d(2021, 12, 15), To: d(2022, 4, 30)},
		{Label: "figure2-before", From: d(2022, 4, 1), To: d(2022, 5, 10)},
		{Label: "figure2-after", From: d(2022, 5, 20), To: d(2022, 6, 30)},
		{Label: "figure3-before", From: d(2022, 10, 1), To: d(2022, 11, 25)},
		{Label: "figure3-after", From: d(2022, 12, 5), To: d(2022, 12, 31)},
	}
	return start, end, windows
}

// DefaultConfig returns the full ARCHER2 reproduction configuration.
//
// Note on overrides: the per-application module overrides are disabled in
// the default timeline reproduction. The paper's Figure 3 shows the full
// 480 kW reduction from the frequency change; the module overrides (and
// user reverts) were a subsequent refinement, and their effect is studied
// separately as an ablation (see BenchmarkAblationOverrides).
func DefaultConfig() Config {
	start, end, windows := PaperDates()
	fc := facility.ARCHER2()
	return Config{
		Seed:             42,
		Facility:         fc,
		Sched:            sched.DefaultConfig(),
		Policy:           policy.Config{OverrideThreshold: 0.10, OverridesEnabled: false},
		Meter:            telemetry.DefaultMeterConfig(),
		Timeline:         policy.ARCHER2Timeline(fc.CPU),
		BusyNodeTarget:   units.Watts(505),
		OverSubscription: 1.10,
		Start:            start,
		End:              end,
		Windows:          windows,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.End.After(c.Start) {
		return fmt.Errorf("core: end %v not after start %v", c.End, c.Start)
	}
	if c.OverSubscription <= 0 {
		return fmt.Errorf("core: oversubscription %v must be positive", c.OverSubscription)
	}
	if c.BusyNodeTarget.Watts() <= 0 {
		return fmt.Errorf("core: busy-node target %v must be positive", c.BusyNodeTarget)
	}
	if c.Meter.Interval <= 0 {
		return fmt.Errorf("core: meter interval %v must be positive", c.Meter.Interval)
	}
	for _, w := range c.Windows {
		if !w.To.After(w.From) {
			return fmt.Errorf("core: window %q empty", w.Label)
		}
	}
	if c.Failures.MTBFPerNode > 0 && c.Failures.RepairTime <= 0 {
		return fmt.Errorf("core: failure injection needs a positive repair time")
	}
	if c.Sched.AgingHours < 0 {
		return fmt.Errorf("core: negative scheduler aging %v", c.Sched.AgingHours)
	}
	if len(c.Priorities) > 0 {
		total := 0.0
		for _, pc := range c.Priorities {
			if pc.Share < 0 {
				return fmt.Errorf("core: negative priority share %v", pc.Share)
			}
			total += pc.Share
		}
		if total <= 0 {
			return fmt.Errorf("core: priority shares sum to zero")
		}
	}
	for _, r := range c.Sched.Reservations {
		if len(r.Nodes) == 0 {
			return fmt.Errorf("core: reservation %q has no nodes", r.Name)
		}
		if !r.To.After(r.From) || !r.To.After(c.Start) {
			return fmt.Errorf("core: reservation %q window [%v, %v) invalid for a run starting %v",
				r.Name, r.From, r.To, c.Start)
		}
		for _, id := range r.Nodes {
			if id < 0 || id >= c.Facility.Nodes {
				return fmt.Errorf("core: reservation %q: no node %d", r.Name, id)
			}
		}
	}
	if c.Carbon != nil {
		if err := c.Carbon.Model.Validate(); err != nil {
			return err
		}
		if err := c.Carbon.Error.Validate(); err != nil {
			return err
		}
	}
	switch c.PerfModel {
	case "", "kernel", "table":
	default:
		return fmt.Errorf("core: unknown perf model %q", c.PerfModel)
	}
	if c.Surrogate != nil {
		if err := c.Surrogate.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// WindowResult is the twin's measurement over one window.
type WindowResult struct {
	Window      Window
	MeanPower   units.Power
	MeanUtil    float64
	SampleCount int
}

// Results collects everything a timeline run produces.
type Results struct {
	Config Config

	// Power is the cabinet power series in kW (nodes + switches), the
	// twin's equivalent of the paper's PMDB figures. A dropout-free meter
	// records into a compact timeseries.RegularSeries; with dropout the
	// irregular Series is behind the View instead.
	Power timeseries.View
	// Util is the node utilisation series.
	Util timeseries.View

	// Windows holds per-window means, in the order of Config.Windows.
	Windows []WindowResult

	// Sched is the scheduler statistics over the whole run.
	Sched sched.Stats
	// Usage is per-class delivered work and energy.
	Usage map[string]telemetry.ClassUsage
	// TotalUsage is the fleet total.
	TotalUsage telemetry.ClassUsage

	// Overrides and Reverts count per-job policy exceptions.
	Overrides int
	Reverts   int

	// MixScale is the activity scalar applied by the fleet calibration.
	MixScale float64

	// Trace holds the submitted-job trace when Config.RecordTrace is set.
	Trace []workload.TraceRecord

	// Cabinets holds per-cabinet meters when Config.CabinetMeters is set.
	Cabinets *telemetry.CabinetMeters

	// NodeFailures counts injected node failures.
	NodeFailures int

	// JobLog holds per-job accounting when Config.JobLogCap is set.
	JobLog *telemetry.JobLog

	// CarbonTrace is the grid carbon-intensity series the run lived under
	// (gCO2/kWh), when Config.Carbon is set. Account it against Power via
	// emissions.AccountSeries to capture the temporal correlation the
	// carbon-aware policies create.
	CarbonTrace timeseries.View
}

// WindowByLabel returns the window result with the given label.
func (r *Results) WindowByLabel(label string) (WindowResult, bool) {
	for _, w := range r.Windows {
		if w.Window.Label == label {
			return w, true
		}
	}
	return WindowResult{}, false
}

// Simulator is a wired, ready-to-run timeline simulation.
type Simulator struct {
	cfg Config

	eng        *des.Engine
	fac        *facility.Facility
	gen        *workload.Generator
	provider   *policy.Provider
	sch        *sched.Scheduler
	meter      *telemetry.Meter
	accountant *telemetry.Accountant
	cabinets   *telemetry.CabinetMeters
	jobLog     *telemetry.JobLog
	mixScale   float64

	recorder     workload.Recorder
	failStream   *rng.Stream
	nodeFailures int
	carbonTrace  *timeseries.RegularSeries

	// pumpEvent is the arrival pump's event callback, created once so the
	// O(100k) arrivals of a run do not allocate a closure each. The pending
	// pump event is tracked (time, handle) so a checkpoint can capture it
	// and a fork can resume the arrival process mid-stream.
	pumpEvent   des.Event
	pumpAt      time.Time
	pumpHandle  des.Handle
	pumpPending bool

	// Failure-injection pending state. The failure process used to live in
	// nested per-event closures; it is flattened into long-lived callbacks
	// plus explicit pending records (the armed start event, the next
	// failure, and every outstanding repair) for the same reason: forks
	// must be able to re-create the exact pending event set.
	failStartFn      des.Event
	failStartHandle  des.Handle
	failStartPending bool
	failFire         des.Event
	failAt           time.Time
	failHandle       des.Handle
	failPending      bool
	repairFn         des.ArgEvent
	repairs          []pendingRepair

	ran bool
}

// pendingRepair is one outstanding node-repair event.
type pendingRepair struct {
	at     time.Time
	id     int
	handle des.Handle
}

// NewSimulator builds and wires a simulation from cfg.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	eng := des.NewEngine(cfg.Start)
	fac, err := facility.New(cfg.Facility, root.Split("facility"), cfg.Start)
	if err != nil {
		return nil, err
	}
	spec := cfg.Facility.CPU

	mix, scale, err := apps.CalibrateMixToBusyPower(spec, apps.FleetMix(),
		spec.DefaultSetting(), cpu.PowerDeterminism, cfg.BusyNodeTarget)
	if err != nil {
		return nil, err
	}
	if cfg.FleetVariant != nil {
		for i := range mix {
			va, err := cfg.FleetVariant.Apply(mix[i].App)
			if err != nil {
				return nil, err
			}
			mix[i].App = va
		}
	}
	if cfg.PerfModel == "table" {
		// Attach the measured operating-point tables last, so they
		// govern frequency response on top of whatever calibration and
		// variant produced. Each app is copied: the calibrated mix may be
		// shared with other configs.
		tables, err := roofline.ARCHER2Tables()
		if err != nil {
			return nil, err
		}
		for i := range mix {
			tbl, ok := tables[mix[i].App.Name]
			if !ok {
				return nil, fmt.Errorf("core: no measured table for application %q", mix[i].App.Name)
			}
			a := *mix[i].App
			a.Perf = tbl
			mix[i].App = &a
		}
	}
	wcfg, err := workload.DefaultConfig(mix)
	if err != nil {
		return nil, err
	}
	if cfg.MaxJobNodes > 0 {
		wcfg.MaxJobNodes = cfg.MaxJobNodes
	}
	if cfg.Surrogate != nil {
		if err := applySurrogate(&wcfg, cfg.Surrogate); err != nil {
			return nil, err
		}
	}
	if len(cfg.Priorities) > 0 {
		wcfg.Priorities = append([]workload.PriorityClass(nil), cfg.Priorities...)
		wcfg.PrioritySeed = rng.DeriveSeed(cfg.Seed, "workload-priority")
	}
	if len(cfg.Facility.Partitions) > 0 {
		// Route jobs to partitions proportionally to partition size, with
		// each extra partition capping its jobs at its own node count.
		// Like priorities, the routing hash is seeded separately from the
		// arrival stream, so the generated job shapes stay bit-identical
		// to a homogeneous run.
		parts := fac.Partitions()
		total := fac.NodeCount()
		shares := make([]workload.PartitionShare, len(parts))
		for i, p := range parts {
			ps := workload.PartitionShare{Index: i, Share: float64(p.Nodes) / float64(total)}
			if i > 0 {
				ps.MaxJobNodes = p.Nodes
			}
			shares[i] = ps
		}
		wcfg.Partitions = shares
		wcfg.PartitionSeed = rng.DeriveSeed(cfg.Seed, "workload-partition")
	}
	gen, err := workload.NewGenerator(wcfg, root.Split("workload"))
	if err != nil {
		return nil, err
	}
	if cfg.arrivalRate > 0 {
		err = gen.SetArrivalRate(cfg.arrivalRate)
	} else {
		err = gen.CalibrateArrivalRate(fac.NodeCount(), cfg.OverSubscription)
	}
	if err != nil {
		return nil, err
	}

	provider, err := policy.NewProvider(spec, cfg.Policy, root.Split("policy"))
	if err != nil {
		return nil, err
	}
	var carbonTrace *timeseries.RegularSeries
	if cfg.Carbon != nil {
		carbonTrace, err = cfg.Carbon.Trace(cfg.Start, cfg.End)
		if err != nil {
			return nil, err
		}
		if cfg.Carbon.NewPolicy != nil {
			fc, err := forecast.New(carbonTrace, cfg.Carbon.Error)
			if err != nil {
				return nil, err
			}
			cfg.Sched.Temporal = cfg.Carbon.NewPolicy(fc)
		}
	}
	// The simulator owns every job it submits: the arrival pump discards
	// the *Job handle and the telemetry consumers (accountant, job log)
	// copy what they keep, so the scheduler is free to recycle Job structs
	// and node-ID slices through its free list instead of allocating
	// ~300k of each over a 13-month run.
	cfg.Sched.ReuseJobs = true
	sch := sched.New(eng, fac, provider, cfg.Sched)
	meter := telemetry.NewMeter(eng, fac, cfg.Meter, cfg.End, root.Split("meter"))
	accountant := telemetry.NewAccountant(sch)
	var jobLog *telemetry.JobLog
	if cfg.JobLogCap != 0 {
		capN := cfg.JobLogCap
		if capN < 0 {
			capN = 0 // JobLog treats 0 as unbounded
		}
		jobLog = telemetry.NewJobLog(sch, capN)
	}

	if err := cfg.Timeline.Schedule(eng, provider); err != nil {
		return nil, err
	}

	s := &Simulator{
		cfg:        cfg,
		eng:        eng,
		fac:        fac,
		gen:        gen,
		provider:   provider,
		sch:        sch,
		meter:      meter,
		accountant: accountant,
		jobLog:     jobLog,
		mixScale:   scale,
	}
	s.carbonTrace = carbonTrace
	if cfg.CabinetMeters {
		cab, err := telemetry.NewCabinetMeters(eng, fac, cfg.Meter.Interval, cfg.End)
		if err != nil {
			return nil, err
		}
		s.cabinets = cab
	}
	// Kick off the arrival pump at the start time.
	s.pumpEvent = func(time.Time) { s.pump() }
	s.schedulePump(cfg.Start)
	if cfg.Failures.MTBFPerNode > 0 {
		s.failStream = root.Split("failures")
		s.failFire = func(now time.Time) { s.failNow(now) }
		s.repairFn = func(now time.Time, arg any) { s.repairNow(now, arg.(int)) }
		s.failStartFn = func(time.Time) {
			s.failStartPending = false
			s.pumpFailures()
		}
		s.failStartHandle = eng.At(cfg.Start, s.failStartFn)
		s.failStartPending = true
	}
	return s, nil
}

// applySurrogate shrinks the covered class's runtime median by the
// surrogate's mean runtime factor.
func applySurrogate(wcfg *workload.Config, sc *SurrogateConfig) error {
	for i := range wcfg.Classes {
		if wcfg.Classes[i].Name == sc.Class {
			wcfg.Classes[i].RuntimeMedian = time.Duration(
				float64(wcfg.Classes[i].RuntimeMedian) * sc.runtimeFactor())
			return nil
		}
	}
	return fmt.Errorf("core: surrogate class %q not in the fleet mix", sc.Class)
}

// schedulePump arms the arrival pump at t and records the pending event.
func (s *Simulator) schedulePump(t time.Time) {
	s.pumpAt = t
	s.pumpHandle = s.eng.At(t, s.pumpEvent)
	s.pumpPending = true
}

// pump submits the next job and reschedules itself after the sampled
// interarrival gap.
func (s *Simulator) pump() {
	s.pumpPending = false
	spec, gap := s.gen.Next()
	spec.Submit = s.eng.Now()
	if s.cfg.RecordTrace {
		s.recorder.Record(spec)
	}
	s.sch.Submit(spec)
	next := s.eng.Now().Add(gap)
	if next.Before(s.cfg.End) {
		s.schedulePump(next)
	}
}

// pumpFailures draws the gap to the next node failure (fleet failure rate
// = nodes/MTBF) and arms the failure event. The draw order (Exp for the
// gap here, Intn for the victim when the event fires) is part of the
// deterministic contract: forks restore the stream position and must
// consume it identically.
func (s *Simulator) pumpFailures() {
	ratePerHour := float64(s.fac.NodeCount()) / s.cfg.Failures.MTBFPerNode.Hours()
	gap := time.Duration(s.failStream.Exp(ratePerHour) * float64(time.Hour))
	next := s.eng.Now().Add(gap)
	if !next.Before(s.cfg.End) {
		s.failPending = false
		return
	}
	s.failAt = next
	s.failHandle = s.eng.At(next, s.failFire)
	s.failPending = true
}

// failNow fails a random node, schedules its repair (before re-arming the
// next failure, preserving the historical event order) and draws the next
// failure gap.
func (s *Simulator) failNow(now time.Time) {
	s.failPending = false
	id := s.failStream.Intn(s.fac.NodeCount())
	if err := s.sch.FailNode(id); err == nil {
		s.nodeFailures++
		repair := now.Add(s.cfg.Failures.RepairTime)
		if repair.Before(s.cfg.End) {
			h := s.eng.AtArg(repair, s.repairFn, id)
			s.repairs = append(s.repairs, pendingRepair{at: repair, id: id, handle: h})
		}
	}
	s.pumpFailures()
}

// repairNow brings a node back up and retires its pending-repair record.
func (s *Simulator) repairNow(now time.Time, id int) {
	for i := range s.repairs {
		if s.repairs[i].id == id && s.repairs[i].at.Equal(now) {
			s.repairs = append(s.repairs[:i], s.repairs[i+1:]...)
			break
		}
	}
	_ = s.sch.RepairNode(id)
}

// Facility exposes the underlying facility (for examples and tools).
func (s *Simulator) Facility() *facility.Facility { return s.fac }

// Scheduler exposes the underlying scheduler.
func (s *Simulator) Scheduler() *sched.Scheduler { return s.sch }

// Engine exposes the simulation engine (e.g. to inject failures).
func (s *Simulator) Engine() *des.Engine { return s.eng }

// Provider exposes the policy provider.
func (s *Simulator) Provider() *policy.Provider { return s.provider }

// Run executes the timeline to the configured end and gathers results.
// A simulator can only run once.
func (s *Simulator) Run() (*Results, error) {
	return s.RunContext(context.Background())
}

// cancelCheckEvents is how many events RunContext processes between
// context-cancellation checks: coarse enough that the check is invisible
// next to the event work itself (a full run fires millions of events),
// fine enough that a cancelled 13-month simulation stops within
// milliseconds.
const cancelCheckEvents = 16384

// RunContext is Run with cooperative cancellation: the event loop checks
// ctx between chunks of events and abandons the simulation with ctx's
// error once it is cancelled. A context that can never be cancelled (e.g.
// context.Background) runs on the exact uninterrupted path Run always
// used; either way the executed event sequence — and therefore every
// result — is bit-identical.
func (s *Simulator) RunContext(ctx context.Context) (*Results, error) {
	if s.ran {
		return nil, fmt.Errorf("core: simulator already ran")
	}
	s.ran = true
	if ctx.Done() == nil {
		s.eng.RunUntil(s.cfg.End)
	} else {
		for s.eng.StepsBefore(s.cfg.End, cancelCheckEvents) {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: simulation cancelled: %w", err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: simulation cancelled: %w", err)
		}
		s.eng.RunUntil(s.cfg.End)
	}
	s.fac.AccrueAll(s.cfg.End)

	res := &Results{
		Config:     s.cfg,
		Power:      s.meter.Power(),
		Util:       s.meter.Utilisation(),
		Sched:      s.sch.Stats(),
		Usage:      make(map[string]telemetry.ClassUsage),
		TotalUsage: s.accountant.Total(),
		Overrides:  s.provider.Overrides(),
		Reverts:    s.provider.Reverts(),
		MixScale:   s.mixScale,
		Cabinets:   s.cabinets,
		JobLog:     s.jobLog,
	}
	if s.carbonTrace != nil {
		res.CarbonTrace = s.carbonTrace
	}
	if s.cfg.RecordTrace {
		res.Trace = s.recorder.Records()
	}
	res.NodeFailures = s.nodeFailures
	for _, name := range s.accountant.Classes() {
		res.Usage[name] = s.accountant.Class(name)
	}
	power, util := s.meter.Power(), s.meter.Utilisation()
	for _, w := range s.cfg.Windows {
		// MeanBetween sums the window's samples in order — bit-identical
		// to the materialised Slice-then-Mean this replaces, without
		// copying a window of samples per measurement window.
		res.Windows = append(res.Windows, WindowResult{
			Window:      w,
			MeanPower:   units.Kilowatts(power.MeanBetween(w.From, w.To)),
			MeanUtil:    util.MeanBetween(w.From, w.To),
			SampleCount: power.CountBetween(w.From, w.To),
		})
	}
	return res, nil
}

// RunTo advances the simulation to virtual time t without finishing it:
// every event strictly before t fires and the clock stops exactly at t,
// leaving events at t and later pending. The partial run is a prefix of
// the event sequence Run would execute, so following up with Run (or
// another RunTo) produces bit-identical results to an uninterrupted run.
// Between RunTo and the next advance the simulator is quiescent — the
// moment Snapshot captures.
func (s *Simulator) RunTo(t time.Time) error {
	return s.RunToContext(context.Background(), t)
}

// RunToContext is RunTo with cooperative cancellation (see RunContext).
func (s *Simulator) RunToContext(ctx context.Context, t time.Time) error {
	if s.ran {
		return fmt.Errorf("core: simulator already ran")
	}
	if t.Before(s.eng.Now()) {
		return fmt.Errorf("core: RunTo target %v before current time %v", t, s.eng.Now())
	}
	if t.After(s.cfg.End) {
		return fmt.Errorf("core: RunTo target %v after end %v", t, s.cfg.End)
	}
	if ctx.Done() == nil {
		s.eng.RunUntil(t)
		return nil
	}
	for s.eng.StepsBefore(t, cancelCheckEvents) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: simulation cancelled: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: simulation cancelled: %w", err)
	}
	s.eng.RunUntil(t)
	return nil
}

// RunConfig builds a simulator from cfg and runs it to completion — the
// one-call entry point used by scenario sweeps and quick experiments.
func RunConfig(cfg Config) (*Results, error) {
	return RunConfigContext(context.Background(), cfg)
}

// RunConfigContext is RunConfig with cooperative cancellation (see
// Simulator.RunContext) — the entry point long-lived services use so an
// in-flight simulation stops promptly when its sweep is cancelled.
func RunConfigContext(ctx context.Context, cfg Config) (*Results, error) {
	sim, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunContext(ctx)
}

// ScaledConfig returns DefaultConfig shrunk to `nodes` compute nodes over
// the span [start, start+days), with windows cleared — used by tests,
// examples and quick experiments that do not need the full machine. The
// interconnect and overhead plant are scaled proportionally so per-node
// intuition carries over.
func ScaledConfig(nodes int, start time.Time, days int) Config {
	cfg := DefaultConfig()
	frac := float64(nodes) / float64(cfg.Facility.Nodes)
	cfg.Facility.Nodes = nodes
	sw := int(float64(cfg.Facility.Interconnect.Switches)*frac + 0.5)
	if sw < 1 {
		sw = 1
	}
	cfg.Facility.Interconnect.Switches = sw
	if cfg.Facility.Interconnect.Groups > sw {
		cfg.Facility.Interconnect.Groups = sw
	}
	cab := int(float64(cfg.Facility.Cabinets)*frac + 0.5)
	if cab < 1 {
		cab = 1
	}
	cfg.Facility.Cabinets = cab
	cfg.Facility.Cooling.Cabinets = cab
	cfg.MaxJobNodes = nodes / 6
	if cfg.MaxJobNodes < 8 {
		cfg.MaxJobNodes = 8
	}
	cfg.Start = start
	cfg.End = start.AddDate(0, 0, days)
	cfg.Timeline = policy.Timeline{}
	cfg.Windows = nil
	return cfg
}

package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/forecast"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

// forkTestConfig builds a small simulation exercising the given feature
// set. carbonPolicy is "", "delay-flexible" or "carbon-budget".
func forkTestConfig(seed uint64, nodes, days int, failures, dropout, cabinets, joblog, trace bool, carbonPolicy string) Config {
	cfg := ScaledConfig(nodes, t0, days)
	cfg.Seed = seed
	perfDet := cpu.PerformanceDeterminism
	capped := cfg.Facility.CPU.CappedSetting()
	cfg.Timeline = policy.Timeline{Changes: []policy.Change{
		{At: t0.AddDate(0, 0, 1), Mode: &perfDet, Note: "test: mode change on day 1"},
		{At: t0.AddDate(0, 0, days-1), Setting: &capped, Note: "test: frequency cap on the last day"},
	}}
	cfg.Windows = []Window{{Label: "whole-run", From: t0, To: cfg.End}}
	if failures {
		cfg.Failures = FailureConfig{MTBFPerNode: 200 * 24 * time.Hour, RepairTime: 6 * time.Hour}
	}
	if dropout {
		cfg.Meter.DropoutProb = 0.02
	}
	cfg.CabinetMeters = cabinets
	if joblog {
		cfg.JobLogCap = -1
	}
	cfg.RecordTrace = trace
	if carbonPolicy != "" {
		cfg.Carbon = &CarbonConfig{
			Model:     grid.GB2022(),
			TraceSeed: rng.DeriveSeed(seed, "grid-trace"),
			NewPolicy: func(fc *forecast.Forecaster) sched.TemporalPolicy {
				switch carbonPolicy {
				case "carbon-budget":
					busyKW := DefaultConfig().BusyNodeTarget.Watts() * float64(nodes) / 1e3
					return &sched.CarbonBudgetPolicy{
						Forecast:      fc,
						BudgetPerHour: units.Grams(0.85 * busyKW * 200),
					}
				default:
					return &sched.DelayFlexiblePolicy{
						Forecast:      fc,
						Threshold:     units.GramsPerKWh(190),
						MaxDelay:      24 * time.Hour,
						FlexibleShare: 0.5,
						Seed:          rng.DeriveSeed(seed, "carbon-flex"),
					}
				}
			},
		}
	}
	return cfg
}

// digestOf runs cfg cold and returns the results digest.
func digestOf(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	return res.Digest()
}

// forkDigest runs cfg to the fork point, snapshots, forks onto forkCfg
// and runs the fork to completion, returning (fork digest, parent's
// continued digest).
func forkDigest(t *testing.T, cfg, forkCfg Config, at time.Time) (string, string) {
	t.Helper()
	parent, err := NewSimulator(cfg)
	if err != nil {
		t.Fatalf("parent: %v", err)
	}
	if err := parent.RunTo(at); err != nil {
		t.Fatalf("RunTo(%v): %v", at, err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fork, err := Fork(snap, forkCfg)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	fres, err := fork.Run()
	if err != nil {
		t.Fatalf("fork run: %v", err)
	}
	pres, err := parent.Run()
	if err != nil {
		t.Fatalf("parent continuation: %v", err)
	}
	return fres.Digest(), pres.Digest()
}

// TestForkSameConfigBitIdentical is the reference-model property test:
// across seeded random configurations and fork points, a simulation
// snapshotted at an arbitrary quiescent time and forked under the same
// configuration must produce results bit-identical to the uninterrupted
// run — and snapshotting must not perturb the parent, whose own
// continuation must match too.
func TestForkSameConfigBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation property test")
	}
	r := rng.New(20260808)
	policies := []string{"", "delay-flexible", "carbon-budget"}
	for trial := 0; trial < 6; trial++ {
		nodes := 16 + r.Intn(33)
		days := 3 + r.Intn(3)
		frac := r.Float64()
		cfg := forkTestConfig(
			r.Uint64(), nodes, days,
			trial%2 == 0,      // failures
			trial%3 == 0,      // meter dropout
			trial%3 == 1,      // cabinet meters
			trial%2 == 1,      // job log
			trial%4 == 0,      // trace recording
			policies[trial%3], // temporal policy
		)
		span := cfg.End.Sub(cfg.Start)
		at := cfg.Start.Add(time.Duration(frac * float64(span))).Truncate(time.Second)
		name := fmt.Sprintf("trial%d_n%d_d%d_%s", trial, nodes, days, at.Format("0102T15"))
		t.Run(name, func(t *testing.T) {
			cold := digestOf(t, cfg)
			forked, continued := forkDigest(t, cfg, cfg, at)
			if forked != cold {
				t.Errorf("fork digest %s != cold digest %s", forked, cold)
			}
			if continued != cold {
				t.Errorf("parent continuation digest %s != cold digest %s (snapshot perturbed the parent)", continued, cold)
			}
		})
	}
}

// TestForkDivergedTimelineMatchesColdBranch pins the tentpole guarantee a
// scenario sweep relies on: forking a shared prefix onto a configuration
// whose timeline diverges at the fork point is bit-identical to running
// that branch configuration cold from the start.
func TestForkDivergedTimelineMatchesColdBranch(t *testing.T) {
	cfg := forkTestConfig(7, 32, 5, true, false, false, true, false, "delay-flexible")
	at := t0.AddDate(0, 0, 3) // diverge at day 3 of 5

	// The branch flips the BIOS mode back at the divergence point —
	// inserted between the base config's day-1 and day-4 changes so the
	// timeline stays in date order.
	branch := cfg.Clone()
	powDet := cpu.PowerDeterminism
	branch.Timeline.Changes = []policy.Change{
		branch.Timeline.Changes[0],
		{At: at, Mode: &powDet, Note: "test: divergence"},
		branch.Timeline.Changes[1],
	}

	coldBranch := digestOf(t, branch)
	coldParent := digestOf(t, cfg)
	if coldBranch == coldParent {
		t.Fatalf("branch timeline change had no effect; divergence test is vacuous")
	}
	forked, _ := forkDigest(t, cfg, branch, at)
	if forked != coldBranch {
		t.Errorf("forked branch digest %s != cold branch digest %s", forked, coldBranch)
	}
}

// TestForkSlurmFeaturesBitIdentical pins the fork identity with every
// Slurm-realism scheduler feature live in the snapshot: priority classes
// with aging, requeue preemption, conservative backfill and a
// maintenance reservation. The two fork points bracket the reservation
// window, so one snapshot carries a pending (unstarted) reservation and
// the other a started one with captured and draining node ledgers.
func TestForkSlurmFeaturesBitIdentical(t *testing.T) {
	cfg := forkTestConfig(13, 24, 3, true, false, false, false, false, "")
	cfg.Priorities = []workload.PriorityClass{
		{Level: 0, Share: 0.6}, {Level: 2, Share: 0.3}, {Level: 5, Share: 0.1},
	}
	cfg.Sched.Backfill = sched.BackfillConservative
	cfg.Sched.Preemption = sched.PreemptRequeue
	cfg.Sched.AgingHours = 12
	cfg.Sched.Reservations = []sched.Reservation{
		{Name: "maint", Nodes: []int{0, 1, 2, 3, 4, 5}, From: t0.Add(30 * time.Hour), To: t0.Add(40 * time.Hour)},
	}

	plain := forkTestConfig(13, 24, 3, true, false, false, false, false, "")
	cold := digestOf(t, cfg)
	if cold == digestOf(t, plain) {
		t.Fatal("Slurm features changed nothing; the fork test is vacuous")
	}
	for name, at := range map[string]time.Time{
		"reservation-pending": t0.Add(12 * time.Hour),
		"reservation-started": t0.Add(36 * time.Hour),
	} {
		t.Run(name, func(t *testing.T) {
			forked, continued := forkDigest(t, cfg, cfg, at)
			if forked != cold {
				t.Errorf("fork digest %s != cold digest %s", forked, cold)
			}
			if continued != cold {
				t.Errorf("parent continuation digest %s != cold digest %s", continued, cold)
			}
		})
	}
}

// TestForkSharesNoStateWithParent runs the parent and two forks of one
// snapshot to completion concurrently. Under -race this proves the fork
// shares no live mutable memory with its parent or sibling — in
// particular that no sync.Pool-backed event item discarded by the fork's
// engine reset is still referenced by another simulation.
func TestForkSharesNoStateWithParent(t *testing.T) {
	cfg := forkTestConfig(11, 24, 3, true, true, true, true, true, "carbon-budget")
	at := t0.Add(36 * time.Hour)
	parent, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(at); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sims := []*Simulator{parent}
	for i := 0; i < 2; i++ {
		f, err := Fork(snap, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sims = append(sims, f)
	}
	digests := make([]string, len(sims))
	var wg sync.WaitGroup
	for i, sim := range sims {
		i, sim := i, sim
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sim.Run()
			if err != nil {
				t.Errorf("sim %d: %v", i, err)
				return
			}
			digests[i] = res.Digest()
		}()
	}
	wg.Wait()
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Errorf("sim %d digest %s != sim 0 digest %s", i, digests[i], digests[0])
		}
	}
}

// TestForkValidation checks that Fork rejects configurations that
// contradict the snapshot's prefix.
func TestForkValidation(t *testing.T) {
	cfg := forkTestConfig(3, 16, 3, false, false, false, false, false, "")
	at := t0.Add(36 * time.Hour) // the day-1 change is strictly in the past
	parent, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(at); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed++ },
		"start":    func(c *Config) { c.Start = c.Start.Add(time.Hour); c.Timeline = policy.Timeline{} },
		"end":      func(c *Config) { c.End = c.End.Add(time.Hour) },
		"nodes":    func(c *Config) { c.Facility.Nodes += 8 },
		"interval": func(c *Config) { c.Meter.Interval *= 2 },
		"trace":    func(c *Config) { c.RecordTrace = true },
		"joblog":   func(c *Config) { c.JobLogCap = -1 },
		"cabinets": func(c *Config) { c.CabinetMeters = true },
		"failures": func(c *Config) { c.Failures = FailureConfig{MTBFPerNode: time.Hour, RepairTime: time.Hour} },
		"past change": func(c *Config) {
			perfDet := cpu.PowerDeterminism
			c.Timeline.Changes[0].Mode = &perfDet
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := cfg.Clone()
			mutate(&bad)
			if _, err := Fork(snap, bad); err == nil {
				t.Errorf("Fork accepted a config with mutated %s", name)
			}
		})
	}

	// Changing the future is allowed (dated after every existing change,
	// keeping the timeline in order).
	ok := cfg.Clone()
	capped := ok.Facility.CPU.CappedSetting()
	ok.Timeline.Changes = append(ok.Timeline.Changes,
		policy.Change{At: t0.Add(60 * time.Hour), Setting: &capped})
	if _, err := Fork(snap, ok); err != nil {
		t.Errorf("Fork rejected a future-only timeline change: %v", err)
	}
}

// TestSnapshotAfterRunRejected pins the quiescence contract.
func TestSnapshotAfterRunRejected(t *testing.T) {
	cfg := forkTestConfig(5, 16, 3, false, false, false, false, false, "")
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Snapshot(); err == nil {
		t.Error("Snapshot succeeded on a finished simulation")
	}
}

// FuzzSnapshotRoundTrip fuzzes the fork invariant over (seed, shape,
// fork fraction): snapshot anywhere — including the degenerate start and
// end boundaries — and fork under the same configuration, and the fork's
// digest must equal the uninterrupted run's.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(50), uint8(0))
	f.Add(uint64(42), uint8(1), uint8(0), uint8(1))
	f.Add(uint64(99), uint8(2), uint8(100), uint8(2))
	f.Add(uint64(7), uint8(3), uint8(87), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, shape, fracPct, flavour uint8) {
		nodes := 12 + int(shape%3)*6 // 12, 18, 24
		days := 2 + int(shape)%2     // 2 or 3
		frac := float64(fracPct%101) / 100
		policies := []string{"", "delay-flexible", "carbon-budget"}
		fl := int(flavour) % 3
		cfg := forkTestConfig(seed, nodes, days,
			fl == 1, fl == 2, false, false, false, policies[fl])
		span := cfg.End.Sub(cfg.Start)
		at := cfg.Start.Add(time.Duration(frac * float64(span))).Truncate(time.Minute)
		cold := digestOf(t, cfg)
		forked, continued := forkDigest(t, cfg, cfg, at)
		if forked != cold {
			t.Errorf("seed=%d nodes=%d days=%d at=%v: fork digest %s != cold %s",
				seed, nodes, days, at, forked, cold)
		}
		if continued != cold {
			t.Errorf("seed=%d nodes=%d days=%d at=%v: parent continuation %s != cold %s",
				seed, nodes, days, at, continued, cold)
		}
	})
}

package core

import (
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/grid"
)

// A fully-instrumented run: footprint must account every capture, and
// Compact must shed the digest-excluded ones without perturbing the
// digest or the measurement series.
func TestMemoryFootprintAndCompact(t *testing.T) {
	start := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	cfg := ScaledConfig(64, start, 3)
	cfg.Windows = []Window{{Label: "w", From: start.AddDate(0, 0, 1), To: start.AddDate(0, 0, 3)}}
	cfg.RecordTrace = true
	cfg.CabinetMeters = true
	cfg.JobLogCap = -1
	cfg.Carbon = &CarbonConfig{Model: grid.GB2022(), TraceSeed: 7}
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}

	full := res.MemoryFootprint()
	if full <= 0 {
		t.Fatalf("footprint = %d", full)
	}
	// Every capture must contribute: nil it out, footprint must drop.
	for name, strip := range map[string]func(*Results){
		"Trace":       func(r *Results) { r.Trace = nil },
		"Cabinets":    func(r *Results) { r.Cabinets = nil },
		"JobLog":      func(r *Results) { r.JobLog = nil },
		"CarbonTrace": func(r *Results) { r.CarbonTrace = nil },
	} {
		copied := *res
		strip(&copied)
		if got := copied.MemoryFootprint(); got >= full {
			t.Errorf("dropping %s did not shrink the footprint: %d -> %d", name, full, got)
		}
	}

	digestBefore := res.Digest()
	powerLen, utilLen := res.Power.Len(), res.Util.Len()
	res.Compact()
	if res.Trace != nil || res.Cabinets != nil || res.JobLog != nil || res.CarbonTrace != nil {
		t.Fatal("Compact left capture intermediates behind")
	}
	if got := res.MemoryFootprint(); got >= full {
		t.Errorf("Compact did not shrink the footprint: %d -> %d", full, got)
	}
	if res.Power.Len() != powerLen || res.Util.Len() != utilLen {
		t.Fatal("Compact lost measurement samples")
	}
	if got := res.Digest(); got != digestBefore {
		t.Errorf("Compact changed the digest: %s -> %s", digestBefore, got)
	}
}

// Footprints must be deterministic: two identical runs price identically
// (the memo charges entries against the byte budget by this figure).
func TestMemoryFootprintDeterministic(t *testing.T) {
	start := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	run := func() int64 {
		res, err := RunConfig(ScaledConfig(48, start, 2))
		if err != nil {
			t.Fatal(err)
		}
		res.Compact()
		return res.MemoryFootprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("footprints differ across identical runs: %d vs %d", a, b)
	}
}

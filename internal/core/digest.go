package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/greenhpc/archertwin/internal/timeseries"
)

// Digest returns a hex SHA-256 fingerprint of everything a timeline run
// measured: the power and utilisation series (timestamps and exact float
// bits), the per-window means, the scheduler statistics and the usage
// accounting. Two runs produce the same digest if and only if they are
// observationally byte-identical, which is what the determinism contract
// promises — the golden tests pin digests across engine refactors, and CI
// can compare digests across worker counts or machines.
//
// Fields that are opt-in captures rather than measurements (Trace,
// Cabinets, JobLog, CarbonTrace) are excluded: the digest fingerprints
// the simulation, not the telemetry configuration.
func (r *Results) Digest() string {
	h := sha256.New()
	buf := make([]byte, 8)
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	series := func(v timeseries.View) {
		if v == nil {
			u64(0)
			return
		}
		n := v.Len()
		u64(uint64(n))
		for i := 0; i < n; i++ {
			smp := v.At(i)
			i64(smp.T.UnixNano())
			f64(smp.V)
		}
	}

	series(r.Power)
	series(r.Util)

	u64(uint64(len(r.Windows)))
	for _, w := range r.Windows {
		str(w.Window.Label)
		i64(w.Window.From.UnixNano())
		i64(w.Window.To.UnixNano())
		f64(w.MeanPower.Watts())
		f64(w.MeanUtil)
		u64(uint64(w.SampleCount))
	}

	s := r.Sched
	u64(uint64(s.Submitted))
	u64(uint64(s.StartedJobs))
	u64(uint64(s.Completed))
	u64(uint64(s.Failed))
	u64(uint64(s.Dropped))
	f64(s.NodeHoursUsed)
	i64(int64(s.TotalWait))
	f64(s.TotalEnergy.Joules())
	u64(uint64(s.Holds))
	i64(int64(s.HoldDelay))

	classes := make([]string, 0, len(r.Usage))
	for name := range r.Usage {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	u64(uint64(len(classes)))
	for _, name := range classes {
		cu := r.Usage[name]
		str(name)
		u64(uint64(cu.Jobs))
		f64(cu.NodeHours)
		f64(cu.Energy.Joules())
	}
	u64(uint64(r.TotalUsage.Jobs))
	f64(r.TotalUsage.NodeHours)
	f64(r.TotalUsage.Energy.Joules())

	u64(uint64(r.Overrides))
	u64(uint64(r.Reverts))
	f64(r.MixScale)
	u64(uint64(r.NodeFailures))

	return fmt.Sprintf("%x", h.Sum(nil))
}

package core

import (
	"unsafe"

	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/telemetry"
	"github.com/greenhpc/archertwin/internal/workload"
)

// mapEntryOverhead is the accounted per-entry bookkeeping cost of a Go
// map beyond key and value payload (bucket slot, hash metadata). The
// runtime does not expose the true figure; 48 bytes is a documented,
// deterministic stand-in of the right order for small maps.
const mapEntryOverhead = 48

// MemoryFootprint returns the retained heap bytes of the result set,
// recursively over everything it pins: the telemetry series (at backing
// capacity, since over-reservation is real memory), the window results,
// the usage accounting, and the opt-in captures (job trace, cabinet
// meters, job log, carbon trace). The accounting contract:
//
//   - slices count capacity x element size (not length);
//   - strings count their byte length once per reference;
//   - maps count key + value payload plus mapEntryOverhead per entry;
//   - interior pointers shared by construction (application specs, the
//     CPU spec) are owned by the catalog, not the results, and are not
//     counted.
//
// The figure is deterministic for a given run — it is the cost the
// scenario memo charges an entry against Runner.MemoBudgetBytes, so two
// identical simulations must price identically.
func (r *Results) MemoryFootprint() int64 {
	total := int64(unsafe.Sizeof(*r))
	if r.Power != nil {
		total += r.Power.MemoryFootprint()
	}
	if r.Util != nil {
		total += r.Util.MemoryFootprint()
	}
	if r.CarbonTrace != nil {
		total += r.CarbonTrace.MemoryFootprint()
	}
	total += int64(cap(r.Windows)) * int64(unsafe.Sizeof(WindowResult{}))
	for _, w := range r.Windows {
		total += int64(len(w.Window.Label))
	}
	for name := range r.Usage {
		total += mapEntryOverhead + int64(len(name)) +
			int64(unsafe.Sizeof(telemetry.ClassUsage{}))
	}
	total += int64(cap(r.Trace)) * int64(unsafe.Sizeof(workload.TraceRecord{}))
	if r.Cabinets != nil {
		total += r.Cabinets.MemoryFootprint()
	}
	if r.JobLog != nil {
		total += r.JobLog.MemoryFootprint()
	}
	// Config's own heap tails: measurement windows and the policy timeline.
	total += int64(cap(r.Config.Windows)) * int64(unsafe.Sizeof(Window{}))
	total += int64(cap(r.Config.Timeline.Changes)) * int64(unsafe.Sizeof(policy.Change{}))
	return total
}

// Compact drops the resolution-redundant intermediates a digested result
// set no longer needs and trims over-reserved series capacity, shrinking
// what a long-term holder (the scenario memo) pins:
//
//   - Power and Util keep every sample but release spare backing capacity;
//   - the opt-in captures (Trace, Cabinets, JobLog, CarbonTrace) are
//     dropped — they are excluded from Results.Digest by contract, and
//     every derived quantity the scenario layer serves (window means,
//     scheduler stats, usage, emissions integration over Power) survives.
//
// Compact must only be called once the owner is done with those captures;
// the Runner calls it at memo admission, after the digest is computed.
// The digest of a compacted result set is identical to the original.
func (r *Results) Compact() {
	type clipper interface{ Clip() }
	if c, ok := r.Power.(clipper); ok {
		c.Clip()
	}
	if c, ok := r.Util.(clipper); ok {
		c.Clip()
	}
	r.Trace = nil
	r.Cabinets = nil
	r.JobLog = nil
	r.CarbonTrace = nil
}

package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/workload"
)

// Integration tests: cross-module behaviour of the full simulation stack.

func TestIntegrationFailureInjection(t *testing.T) {
	cfg := ScaledConfig(100, t0, 14)
	cfg.Failures = FailureConfig{
		MTBFPerNode: 100 * 24 * time.Hour, // aggressive: ~14 failures over the run
		RepairTime:  12 * time.Hour,
	}
	cfg.Windows = []Window{{Label: "w", From: t0.AddDate(0, 0, 3), To: t0.AddDate(0, 0, 14)}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeFailures == 0 {
		t.Fatal("no failures injected")
	}
	// Failed jobs were recorded and the service kept running at high
	// utilisation despite the churn.
	if res.Sched.Failed == 0 {
		t.Fatal("failures killed no jobs (all hit idle nodes? unlikely at 99% util)")
	}
	w, _ := res.WindowByLabel("w")
	if w.MeanUtil < 0.85 {
		t.Fatalf("utilisation with failures = %v", w.MeanUtil)
	}
	if res.Sched.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestIntegrationFailureValidation(t *testing.T) {
	cfg := ScaledConfig(50, t0, 2)
	cfg.Failures = FailureConfig{MTBFPerNode: time.Hour} // no repair time
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("failure config without repair time accepted")
	}
}

func TestIntegrationTraceRecordAndReplayCSV(t *testing.T) {
	cfg := ScaledConfig(80, t0, 5)
	cfg.RecordTrace = true
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	if len(res.Trace) != res.Sched.Submitted {
		t.Fatalf("trace %d != submitted %d", len(res.Trace), res.Sched.Submitted)
	}

	// Round-trip through CSV.
	var b strings.Builder
	if err := workload.WriteTrace(&b, res.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Trace) {
		t.Fatalf("round trip %d != %d", len(back), len(res.Trace))
	}
	// Submit times are within the simulation span and non-decreasing.
	prev := time.Time{}
	for _, r := range back {
		if r.Submit.Before(cfg.Start) || r.Submit.After(cfg.End) {
			t.Fatalf("submit %v outside span", r.Submit)
		}
		if r.Submit.Before(prev) {
			t.Fatal("trace not ordered")
		}
		prev = r.Submit
	}
}

func TestIntegrationCabinetMetersConsistent(t *testing.T) {
	cfg := ScaledConfig(92, t0, 5) // 4 cabinets of 23 nodes
	cfg.CabinetMeters = true
	cfg.Meter.NoiseSigma = 0 // exact comparison
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cabinets == nil {
		t.Fatal("no cabinet meters")
	}
	// The sum of cabinet series equals the facility meter at sample times.
	at := t0.AddDate(0, 0, 2)
	total, ok := res.Cabinets.TotalAt(at)
	if !ok {
		t.Fatal("no cabinet total")
	}
	fleet, ok := res.Power.ValueAt(at)
	if !ok {
		t.Fatal("no fleet sample")
	}
	if math.Abs(total.Kilowatts()-fleet) > 0.5 {
		t.Fatalf("cabinet sum %v kW != fleet meter %v kW", total.Kilowatts(), fleet)
	}
	// Under a balanced allocator, long-run cabinet imbalance is modest.
	if im := res.Cabinets.Imbalance(); im > 0.5 {
		t.Fatalf("cabinet imbalance = %v", im)
	}
}

func TestIntegrationReclockDuringTimeline(t *testing.T) {
	// An emergency reclock mid-run drops fleet power immediately (not just
	// for new jobs) and restores afterwards.
	cfg := ScaledConfig(100, t0, 10)
	cfg.Meter.NoiseSigma = 0
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := cfg.Facility.CPU
	evStart := t0.AddDate(0, 0, 5)
	evEnd := evStart.Add(6 * time.Hour)
	sim.Engine().At(evStart, func(time.Time) {
		if _, err := sim.Scheduler().ReclockRunning(spec.CappedSetting()); err != nil {
			t.Error(err)
		}
	})
	sim.Engine().At(evEnd, func(time.Time) {
		if _, err := sim.Scheduler().ReclockRunning(spec.DefaultSetting()); err != nil {
			t.Error(err)
		}
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	before := res.Power.MeanBetween(evStart.Add(-6*time.Hour), evStart)
	during := res.Power.MeanBetween(evStart.Add(time.Hour), evEnd)
	after := res.Power.MeanBetween(evEnd.Add(3*time.Hour), evEnd.Add(24*time.Hour))
	if during >= before*0.97 {
		t.Fatalf("reclock did not drop power: %v -> %v", before, during)
	}
	if after <= during*1.02 {
		t.Fatalf("restore did not raise power: %v -> %v", during, after)
	}
}

func TestIntegrationMeterDropout(t *testing.T) {
	cfg := ScaledConfig(60, t0, 7)
	cfg.Meter.DropoutProb = 0.2
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Expected samples: 7 days at 15-minute cadence minus ~20%.
	full := 7 * 24 * 4
	got := res.Power.Len()
	if got >= full || got < int(float64(full)*0.7) {
		t.Fatalf("samples = %d of %d possible with 20%% dropout", got, full)
	}
	// Means still computable and sane.
	if res.Power.Mean() <= 0 {
		t.Fatal("no usable power data")
	}
}

func TestIntegrationEnergyConservation(t *testing.T) {
	// Compute-node energy accrued by the facility must be at least the
	// job-attributed energy (jobs exclude idle-node burn), and within
	// physical bounds.
	cfg := ScaledConfig(60, t0, 7)
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fac := sim.Facility()
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	facilityE := fac.ComputeEnergy().KilowattHours()
	jobsE := res.TotalUsage.Energy.KilowattHours()
	if jobsE > facilityE {
		t.Fatalf("job energy %v exceeds facility energy %v", jobsE, facilityE)
	}
	// Idle + accounting drift should be small at ~99% utilisation: jobs
	// carry at least 80% of node energy.
	if jobsE < 0.8*facilityE {
		t.Fatalf("job energy %v implausibly below facility energy %v", jobsE, facilityE)
	}
}

package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/units"
)

var t0 = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func TestConfigValidation(t *testing.T) {
	good := ScaledConfig(100, t0, 7)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.End = bad.Start
	if err := bad.Validate(); err == nil {
		t.Error("empty span accepted")
	}
	bad = good
	bad.OverSubscription = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero oversubscription accepted")
	}
	bad = good
	bad.BusyNodeTarget = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero busy target accepted")
	}
	bad = good
	bad.Meter.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero meter interval accepted")
	}
	bad = good
	bad.Windows = []Window{{Label: "w", From: t0, To: t0}}
	if err := bad.Validate(); err == nil {
		t.Error("empty window accepted")
	}
}

func TestScaledRunSaturates(t *testing.T) {
	cfg := ScaledConfig(200, t0, 14)
	cfg.Windows = []Window{{Label: "steady", From: t0.AddDate(0, 0, 3), To: t0.AddDate(0, 0, 14)}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	w := res.Windows[0]
	// Paper: utilisation consistently over 90%.
	if w.MeanUtil < 0.90 {
		t.Fatalf("steady utilisation = %v, want > 0.90", w.MeanUtil)
	}
	if w.SampleCount == 0 {
		t.Fatal("no samples in window")
	}
	if res.Sched.Completed == 0 {
		t.Fatal("no jobs completed")
	}
	if res.TotalUsage.NodeHours <= 0 || res.TotalUsage.Energy.Joules() <= 0 {
		t.Fatal("no usage accounted")
	}
	if len(res.Usage) == 0 {
		t.Fatal("no per-class usage")
	}
}

func TestScaledBaselinePowerConsistent(t *testing.T) {
	// At ~92% utilisation the scaled facility's cabinet power per node
	// should match the full system's 3220/5860 ~ 550 W/node (including the
	// per-node switch share).
	cfg := ScaledConfig(200, t0, 14)
	cfg.Windows = []Window{{Label: "steady", From: t0.AddDate(0, 0, 3), To: t0.AddDate(0, 0, 14)}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	w := res.Windows[0]
	perNode := w.MeanPower.Watts() / 200
	if perNode < 480 || perNode < 0 || perNode > 620 {
		t.Fatalf("per-node cabinet power = %v W, want ~550", perNode)
	}
}

func TestModeChangeReducesPower(t *testing.T) {
	cfg := ScaledConfig(200, t0, 28)
	perfDet := cpu.PerformanceDeterminism
	cfg.Timeline = policy.Timeline{Changes: []policy.Change{
		{At: t0.AddDate(0, 0, 14), Mode: &perfDet, Note: "BIOS change"},
	}}
	cfg.Windows = []Window{
		{Label: "before", From: t0.AddDate(0, 0, 4), To: t0.AddDate(0, 0, 14)},
		{Label: "after", From: t0.AddDate(0, 0, 17), To: t0.AddDate(0, 0, 28)},
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := res.WindowByLabel("before")
	after, _ := res.WindowByLabel("after")
	drop := 1 - after.MeanPower.Watts()/before.MeanPower.Watts()
	// Paper Figure 2: ~6.5% cabinet power reduction.
	if drop < 0.03 || drop > 0.10 {
		t.Fatalf("BIOS drop = %.3f (%.0f -> %.0f kW), want ~0.065",
			drop, before.MeanPower.Kilowatts(), after.MeanPower.Kilowatts())
	}
}

func TestFrequencyCapReducesPower(t *testing.T) {
	cfg := ScaledConfig(200, t0, 28)
	perfDet := cpu.PerformanceDeterminism
	capped := cfg.Facility.CPU.CappedSetting()
	cfg.Timeline = policy.Timeline{Changes: []policy.Change{
		{At: t0, Mode: &perfDet},
		{At: t0.AddDate(0, 0, 14), Setting: &capped, Note: "frequency cap"},
	}}
	cfg.Windows = []Window{
		{Label: "before", From: t0.AddDate(0, 0, 4), To: t0.AddDate(0, 0, 14)},
		{Label: "after", From: t0.AddDate(0, 0, 18), To: t0.AddDate(0, 0, 28)},
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := res.WindowByLabel("before")
	after, _ := res.WindowByLabel("after")
	drop := 1 - after.MeanPower.Watts()/before.MeanPower.Watts()
	// Paper Figure 3: ~16% cabinet power reduction (3010 -> 2530).
	if drop < 0.10 || drop > 0.24 {
		t.Fatalf("cap drop = %.3f (%.0f -> %.0f kW), want ~0.16",
			drop, before.MeanPower.Kilowatts(), after.MeanPower.Kilowatts())
	}
}

func TestRunOnlyOnce(t *testing.T) {
	sim, err := NewSimulator(ScaledConfig(50, t0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Results {
		cfg := ScaledConfig(100, t0, 7)
		cfg.Windows = []Window{{Label: "w", From: t0.AddDate(0, 0, 2), To: t0.AddDate(0, 0, 7)}}
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Windows[0].MeanPower != b.Windows[0].MeanPower {
		t.Fatalf("power means differ: %v vs %v", a.Windows[0].MeanPower, b.Windows[0].MeanPower)
	}
	if a.Sched.Completed != b.Sched.Completed || a.Sched.Submitted != b.Sched.Submitted {
		t.Fatalf("sched stats differ: %+v vs %+v", a.Sched, b.Sched)
	}
	if a.TotalUsage.Energy != b.TotalUsage.Energy {
		t.Fatal("energy accounting differs")
	}
}

func TestOverridePolicyTradesPowerForPerf(t *testing.T) {
	// With module overrides enabled, compute-bound classes stay at the
	// stock frequency, so the capped fleet draws more power than without
	// overrides but runs faster.
	runWith := func(overrides bool) units.Power {
		cfg := ScaledConfig(150, t0, 21)
		cfg.Policy = policy.Config{OverrideThreshold: 0.10, OverridesEnabled: overrides}
		perfDet := cpu.PerformanceDeterminism
		capped := cfg.Facility.CPU.CappedSetting()
		cfg.Timeline = policy.Timeline{Changes: []policy.Change{
			{At: t0, Mode: &perfDet},
			{At: t0.AddDate(0, 0, 3), Setting: &capped},
		}}
		cfg.Windows = []Window{{Label: "after", From: t0.AddDate(0, 0, 7), To: t0.AddDate(0, 0, 21)}}
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.WindowByLabel("after")
		if overrides && res.Overrides == 0 {
			t.Fatal("override policy applied to no jobs")
		}
		return w.MeanPower
	}
	with := runWith(true)
	without := runWith(false)
	if with.Watts() <= without.Watts() {
		t.Fatalf("overrides did not raise power: with %v, without %v", with, without)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{From: t0, To: t0.Add(time.Hour)}
	if !w.Contains(t0) || w.Contains(t0.Add(time.Hour)) || w.Contains(t0.Add(-time.Second)) {
		t.Fatal("window bounds wrong")
	}
}

func TestPaperDatesSane(t *testing.T) {
	start, end, windows := PaperDates()
	if !end.After(start) {
		t.Fatal("bad span")
	}
	if len(windows) != 5 {
		t.Fatalf("windows = %d", len(windows))
	}
	for _, w := range windows {
		if !w.To.After(w.From) || w.From.Before(start) || w.To.After(end) {
			t.Fatalf("window %q outside span", w.Label)
		}
	}
	// figure2-before must precede the BIOS change date in the timeline and
	// figure2-after follow it.
	tl := policy.ARCHER2Timeline(cpu.EPYC7742())
	bios := tl.Changes[0].At
	var before, after Window
	for _, w := range windows {
		switch w.Label {
		case "figure2-before":
			before = w
		case "figure2-after":
			after = w
		}
	}
	if !before.To.Before(bios.Add(time.Hour*24)) || after.From.Before(bios) {
		t.Fatal("figure 2 windows do not bracket the BIOS change")
	}
}

func TestMixScaleReported(t *testing.T) {
	sim, err := NewSimulator(ScaledConfig(50, t0, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MixScale-1) > 0.3 {
		t.Fatalf("mix scale = %v, suspiciously far from 1", res.MixScale)
	}
}

func TestConfigClone(t *testing.T) {
	orig := DefaultConfig()
	orig.FleetVariant = &apps.Variant{Name: "v", Speedup: 1.1, CoreActivityFactor: 1.0}
	clone := orig.Clone()

	// Mutating the clone's shared-pointer state must not touch the original.
	clone.Facility.CPU.PStates[0].Voltage = 0.5
	clone.Windows[0].Label = "mutated"
	*clone.Timeline.Changes[0].Mode = cpu.PowerDeterminism
	*clone.Timeline.Changes[1].Setting = cpu.FreqSetting{Base: units.Gigahertz(1.5)}
	clone.FleetVariant.Speedup = 9

	if orig.Facility.CPU.PStates[0].Voltage == 0.5 {
		t.Error("clone shares CPU spec P-states")
	}
	if orig.Windows[0].Label == "mutated" {
		t.Error("clone shares windows")
	}
	if *orig.Timeline.Changes[0].Mode == cpu.PowerDeterminism {
		t.Error("clone shares timeline mode pointer")
	}
	if orig.Timeline.Changes[1].Setting.Base == units.Gigahertz(1.5) {
		t.Error("clone shares timeline setting pointer")
	}
	if orig.FleetVariant.Speedup == 9 {
		t.Error("clone shares fleet variant")
	}
	// And the clone must still be a valid, runnable configuration.
	if err := orig.Clone().Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestRunConfig(t *testing.T) {
	cfg := ScaledConfig(32, t0, 2)
	cfg.Windows = []Window{{Label: "w", From: t0.AddDate(0, 0, 1), To: t0.AddDate(0, 0, 2)}}
	res, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 || res.Windows[0].MeanPower.Watts() <= 0 {
		t.Fatalf("degenerate RunConfig results: %+v", res.Windows)
	}
	// Invalid configs surface their error without running.
	bad := cfg
	bad.OverSubscription = -1
	if _, err := RunConfig(bad); err == nil {
		t.Error("invalid config ran")
	}
}

func TestFleetVariantShiftsPower(t *testing.T) {
	run := func(v *apps.Variant) *Results {
		cfg := ScaledConfig(32, t0, 3)
		cfg.FleetVariant = v
		cfg.Windows = []Window{{Label: "w", From: t0.AddDate(0, 0, 1), To: t0.AddDate(0, 0, 3)}}
		res, err := RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	// Pick the hottest build (highest core activity) rather than assuming
	// a position in CommonVariants.
	variants := apps.CommonVariants()
	simd := variants[0]
	for _, v := range variants[1:] {
		if v.CoreActivityFactor > simd.CoreActivityFactor {
			simd = v
		}
	}
	hot := run(&simd)
	b := base.Windows[0].MeanPower.Watts()
	h := hot.Windows[0].MeanPower.Watts()
	if h <= b {
		t.Errorf("SIMD fleet variant did not raise power: %v vs %v", h, b)
	}
}

// RunContext must stop a simulation promptly once its context is
// cancelled, and a cancellable context must not perturb results: the
// chunked event loop executes the exact sequence the plain run does.
func TestRunContextCancellation(t *testing.T) {
	cfg := ScaledConfig(32, t0, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunConfigContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	plain, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2() // never cancelled while running
	viaCtx, err := RunConfigContext(ctx2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest() != viaCtx.Digest() {
		t.Error("cancellable context changed simulation results")
	}
}

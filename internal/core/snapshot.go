package core

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/telemetry"
	"github.com/greenhpc/archertwin/internal/workload"
)

// Snapshot is the simulation's complete mutable state at a quiescent
// virtual time T (between events, as RunTo leaves it): every subsystem's
// checkpoint plus, for each pending engine event, the parent engine's
// sequence number. A fork reconstructs the event queue by sorting all
// pending events on those sequence numbers, so same-timestamp events fire
// in exactly the order the parent would have fired them — the property
// that makes forked runs bit-identical to cold runs.
//
// A snapshot shares no mutable memory with the simulator it came from and
// is never mutated by Fork, so one snapshot can seed any number of forks,
// concurrently. That is what lets a scenario sweep run a shared prefix
// once and branch N scenario variants at their divergence point.
type Snapshot struct {
	t time.Time

	// Identity of the run the snapshot came from, checked by Fork: a fork
	// may change the future (timeline changes at or after T, fleet
	// variants, carbon policy) but not the past or the simulation shape.
	seed          uint64
	start, end    time.Time
	nodes         int
	partShape     string
	oversub       float64
	meterInterval time.Duration
	meterDropout  bool
	timeline      []policy.Change

	fac   *facility.Snapshot
	sch   *sched.Snapshot
	prov  policy.Snapshot
	gen   workload.GeneratorSnapshot
	meter *telemetry.MeterSnapshot
	cab   *telemetry.CabinetSnapshot
	acct  *telemetry.AccountantSnapshot

	hasJobLog bool
	jobLog    []telemetry.JobRecord
	hasTrace  bool
	trace     []workload.TraceRecord

	pumpAt      time.Time
	pumpSeq     uint64
	pumpPending bool

	hasFail          bool
	failRng          [4]uint64
	failStartSeq     uint64
	failStartPending bool
	failAt           time.Time
	failSeq          uint64
	failPending      bool
	repairs          []repairSnap
	nodeFailures     int
}

// repairSnap is one outstanding node-repair event.
type repairSnap struct {
	at  time.Time
	id  int
	seq uint64
}

// Time returns the virtual time the snapshot was taken at.
func (snap *Snapshot) Time() time.Time { return snap.t }

// Snapshot captures the simulator's state at the current virtual time.
// The simulator must be quiescent — positioned by RunTo, not mid-event —
// and must not have finished a Run. The simulator itself is unaffected
// and can keep running.
func (s *Simulator) Snapshot() (*Snapshot, error) {
	if s.ran {
		return nil, fmt.Errorf("core: cannot snapshot a finished simulation")
	}
	snap := &Snapshot{
		t:             s.eng.Now(),
		seed:          s.cfg.Seed,
		start:         s.cfg.Start,
		end:           s.cfg.End,
		nodes:         s.cfg.Facility.Nodes,
		partShape:     s.cfg.Facility.PartitionShape(),
		oversub:       s.cfg.OverSubscription,
		meterInterval: s.cfg.Meter.Interval,
		meterDropout:  s.cfg.Meter.DropoutProb > 0,
		timeline:      append([]policy.Change(nil), s.cfg.Timeline.Changes...),

		fac:   s.fac.Snapshot(),
		sch:   s.sch.Snapshot(),
		prov:  s.provider.Snapshot(),
		gen:   s.gen.Snapshot(),
		meter: s.meter.Snapshot(),
		acct:  s.accountant.Snapshot(),

		nodeFailures: s.nodeFailures,
	}
	if s.cabinets != nil {
		snap.cab = s.cabinets.Snapshot()
	}
	if s.jobLog != nil {
		snap.hasJobLog = true
		snap.jobLog = s.jobLog.Snapshot()
	}
	if s.cfg.RecordTrace {
		snap.hasTrace = true
		snap.trace = append([]workload.TraceRecord(nil), s.recorder.Records()...)
	}
	if s.pumpPending {
		snap.pumpAt = s.pumpAt
		snap.pumpSeq = s.pumpHandle.Seq()
		snap.pumpPending = true
	}
	if s.failStream != nil {
		snap.hasFail = true
		snap.failRng = s.failStream.State()
		if s.failStartPending {
			snap.failStartSeq = s.failStartHandle.Seq()
			snap.failStartPending = true
		}
		if s.failPending {
			snap.failAt = s.failAt
			snap.failSeq = s.failHandle.Seq()
			snap.failPending = true
		}
		for _, r := range s.repairs {
			snap.repairs = append(snap.repairs, repairSnap{at: r.at, id: r.id, seq: r.handle.Seq()})
		}
	}
	return snap, nil
}

// Fork builds a simulator from cfg and rewinds it onto the snapshot: the
// fork resumes at the snapshot's virtual time with the parent's exact
// state and pending events, then lives under cfg's future — its own
// timeline changes at or after the fork point, fleet variant, carbon
// policy. Running a fork whose cfg equals the parent's is bit-identical
// to running the parent uninterrupted; running a mutated cfg diverges
// exactly at the fork point while sharing the whole common prefix,
// including every random-number stream position (common random numbers
// across branches).
//
// cfg must agree with the snapshot on everything that shaped the prefix:
// seed, span, facility size, meter cadence, and every timeline change
// dated before the fork point.
func Fork(snap *Snapshot, cfg Config) (*Simulator, error) {
	if err := validateFork(snap, cfg); err != nil {
		return nil, err
	}
	// Reuse the parent's calibrated arrival rate: it is a pure function of
	// the configuration the validation above just proved identical, and
	// re-estimating it is the dominant construction cost.
	cfg.arrivalRate = snap.gen.Rate
	sim, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := sim.restore(snap); err != nil {
		return nil, err
	}
	return sim, nil
}

// validateFork checks that cfg shares the snapshot's prefix-shaping
// parameters.
func validateFork(snap *Snapshot, cfg Config) error {
	switch {
	case cfg.Seed != snap.seed:
		return fmt.Errorf("core: fork seed %d != snapshot seed %d", cfg.Seed, snap.seed)
	case !cfg.Start.Equal(snap.start):
		return fmt.Errorf("core: fork start %v != snapshot start %v", cfg.Start, snap.start)
	case !cfg.End.Equal(snap.end):
		return fmt.Errorf("core: fork end %v != snapshot end %v", cfg.End, snap.end)
	case cfg.Facility.Nodes != snap.nodes:
		return fmt.Errorf("core: fork has %d nodes, snapshot %d", cfg.Facility.Nodes, snap.nodes)
	case cfg.Facility.PartitionShape() != snap.partShape:
		return fmt.Errorf("core: fork partition layout %q != snapshot %q",
			cfg.Facility.PartitionShape(), snap.partShape)
	case cfg.OverSubscription != snap.oversub:
		return fmt.Errorf("core: fork oversubscription %g != snapshot %g", cfg.OverSubscription, snap.oversub)
	case cfg.Meter.Interval != snap.meterInterval:
		return fmt.Errorf("core: fork meter interval %v != snapshot %v", cfg.Meter.Interval, snap.meterInterval)
	case (cfg.Meter.DropoutProb > 0) != snap.meterDropout:
		return fmt.Errorf("core: fork meter dropout differs from snapshot")
	case cfg.RecordTrace != snap.hasTrace:
		return fmt.Errorf("core: fork trace recording differs from snapshot")
	case (cfg.JobLogCap != 0) != snap.hasJobLog:
		return fmt.Errorf("core: fork job-log setting differs from snapshot")
	case cfg.CabinetMeters != (snap.cab != nil):
		return fmt.Errorf("core: fork cabinet-meter setting differs from snapshot")
	case (cfg.Failures.MTBFPerNode > 0) != snap.hasFail:
		return fmt.Errorf("core: fork failure injection differs from snapshot")
	}
	// The past must match: every timeline change dated before the fork
	// point must be the change the parent actually applied.
	var parentPast []policy.Change
	for _, c := range snap.timeline {
		if c.At.Before(snap.t) {
			parentPast = append(parentPast, c)
		}
	}
	var forkPast []policy.Change
	for _, c := range cfg.Timeline.Changes {
		if c.At.Before(snap.t) {
			forkPast = append(forkPast, c)
		}
	}
	if len(parentPast) != len(forkPast) {
		return fmt.Errorf("core: fork has %d timeline changes before fork point %v, snapshot had %d",
			len(forkPast), snap.t, len(parentPast))
	}
	for i := range parentPast {
		if !changeEqual(parentPast[i], forkPast[i]) {
			return fmt.Errorf("core: fork timeline change at %v differs from the one the parent applied",
				forkPast[i].At)
		}
	}
	return nil
}

// changeEqual reports whether two timeline changes are operationally the
// same (notes are cosmetic).
func changeEqual(a, b policy.Change) bool {
	if !a.At.Equal(b.At) {
		return false
	}
	if (a.Mode == nil) != (b.Mode == nil) || (a.Mode != nil && *a.Mode != *b.Mode) {
		return false
	}
	if (a.Setting == nil) != (b.Setting == nil) || (a.Setting != nil && *a.Setting != *b.Setting) {
		return false
	}
	return true
}

// pendingRec is one event awaiting re-scheduling on the fork's reset
// engine, keyed for the global ordering sort: major is the parent
// engine's sequence number; minor breaks ties among events sharing a
// major key (the fork's own timeline changes, which slot in after the
// construction events they follow in a cold run).
type pendingRec struct {
	major    uint64
	minor    int
	schedule func()
}

// restore rewinds a freshly constructed simulator onto the snapshot.
//
// The fork's construction-time event queue is discarded wholesale with an
// engine reset (returning every pooled event item, so nothing scheduled
// at construction stays live — forks share no heap state with parents or
// with their own discarded setup). Each subsystem then restores its state
// and contributes its pending events as (parent seq → schedule) records;
// the records are sorted on the parent's sequence order and scheduled in
// that order on the fresh engine, reproducing the parent's FIFO tie-break
// ranks exactly.
//
// The fork's own timeline changes at or after the fork point are not in
// the snapshot (the parent may not even have them — they are the
// divergence). In a cold run of the fork's config they would have been
// scheduled at construction, directly after the meter's first tick
// (engine seqs 2..k+1); slotting them at major 1 with minors 1..k
// reproduces that rank: after a still-pending construction meter tick
// (major 1, minor 0), before everything scheduled later.
func (s *Simulator) restore(snap *Snapshot) error {
	s.eng.Reset(snap.t)
	var recs []pendingRec
	add := func(seq uint64, schedule func()) {
		recs = append(recs, pendingRec{major: seq, schedule: schedule})
	}

	if err := s.fac.Restore(snap.fac); err != nil {
		return err
	}
	s.provider.Restore(snap.prov)
	s.gen.Restore(snap.gen)
	if err := s.sch.Restore(snap.sch, s.appResolver(), add); err != nil {
		return err
	}
	s.meter.Restore(snap.meter, add)
	if s.cabinets != nil {
		s.cabinets.Restore(snap.cab, add)
	}
	s.accountant.Restore(snap.acct)
	if s.jobLog != nil {
		s.jobLog.Restore(snap.jobLog)
	}
	if s.cfg.RecordTrace {
		s.recorder.Restore(snap.trace)
	}
	s.nodeFailures = snap.nodeFailures

	s.pumpPending = false
	if snap.pumpPending {
		at := snap.pumpAt
		add(snap.pumpSeq, func() { s.schedulePump(at) })
	}
	s.failStartPending, s.failPending, s.repairs = false, false, nil
	if snap.hasFail {
		s.failStream.SetState(snap.failRng)
		if snap.failStartPending {
			add(snap.failStartSeq, func() {
				s.failStartHandle = s.eng.At(s.cfg.Start, s.failStartFn)
				s.failStartPending = true
			})
		}
		if snap.failPending {
			at := snap.failAt
			add(snap.failSeq, func() {
				s.failAt = at
				s.failHandle = s.eng.At(at, s.failFire)
				s.failPending = true
			})
		}
		for _, r := range snap.repairs {
			r := r
			add(r.seq, func() {
				h := s.eng.AtArg(r.at, s.repairFn, r.id)
				s.repairs = append(s.repairs, pendingRepair{at: r.at, id: r.id, handle: h})
			})
		}
	}

	// The fork's own future timeline changes, in timeline (chronological)
	// order at construction rank.
	minor := 0
	for _, c := range s.cfg.Timeline.Changes {
		if !c.At.After(s.cfg.Start) || c.At.Before(snap.t) {
			continue // applied at construction / carried in the provider snapshot
		}
		c := c
		minor++
		recs = append(recs, pendingRec{major: 1, minor: minor, schedule: func() {
			s.eng.At(c.At, func(time.Time) { s.applyChange(c) })
		}})
	}

	sort.Slice(recs, func(i, j int) bool {
		if recs[i].major != recs[j].major {
			return recs[i].major < recs[j].major
		}
		return recs[i].minor < recs[j].minor
	})
	for _, r := range recs {
		r.schedule()
	}
	return nil
}

// applyChange applies one timeline change to the provider, mirroring
// policy.Timeline.Schedule (which validated the change at construction).
func (s *Simulator) applyChange(c policy.Change) {
	if c.Mode != nil {
		s.provider.SetDefaultMode(*c.Mode)
	}
	if c.Setting != nil {
		_ = s.provider.SetDefaultSetting(*c.Setting)
	}
}

// appResolver maps a workload class name to this simulator's own
// calibrated application model, so restored jobs never alias the parent's
// App pointers (a fork may carry a different fleet variant).
func (s *Simulator) appResolver() func(class string) (*apps.App, error) {
	wcfg := s.gen.Config()
	byClass := make(map[string]*apps.App, len(wcfg.Classes))
	for i := range wcfg.Classes {
		byClass[wcfg.Classes[i].Name] = wcfg.Mix[i].App
	}
	return func(class string) (*apps.App, error) {
		app, ok := byClass[class]
		if !ok {
			return nil, fmt.Errorf("core: no application model for workload class %q", class)
		}
		return app, nil
	}
}

// MemoryFootprint returns the snapshot's retained bytes, following the
// Results.MemoryFootprint contract (backing arrays at capacity). Scenario
// sweeps price memoized fork points into their byte budget with it.
func (snap *Snapshot) MemoryFootprint() int64 {
	total := int64(unsafe.Sizeof(*snap))
	total += int64(cap(snap.timeline)) * int64(unsafe.Sizeof(policy.Change{}))
	if snap.fac != nil {
		total += int64(unsafe.Sizeof(*snap.fac))
		total += int64(cap(snap.fac.Nodes)) * int64(unsafe.Sizeof(node.Snapshot{}))
	}
	if snap.sch != nil {
		total += snap.sch.MemoryFootprint()
	}
	if snap.meter != nil {
		total += int64(unsafe.Sizeof(*snap.meter)) + snap.meter.MemoryFootprint()
	}
	if snap.cab != nil {
		total += int64(unsafe.Sizeof(*snap.cab)) + snap.cab.MemoryFootprint()
	}
	if snap.acct != nil {
		total += snap.acct.MemoryFootprint()
	}
	total += int64(cap(snap.jobLog)) * int64(unsafe.Sizeof(telemetry.JobRecord{}))
	total += int64(cap(snap.trace)) * int64(unsafe.Sizeof(workload.TraceRecord{}))
	total += int64(cap(snap.repairs)) * int64(unsafe.Sizeof(repairSnap{}))
	return total
}

package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
)

func TestCrashPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := NewCrashPlan(seed, 10), NewCrashPlan(seed, 10)
		if a.CrashAt != b.CrashAt || a.Torn != b.Torn || a.TornFrac != b.TornFrac {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
		if a.CrashAt < 1 || a.CrashAt > 10 {
			t.Fatalf("seed %d: CrashAt %d out of [1,10]", seed, a.CrashAt)
		}
	}
}

// TestCrashPlanCoversAllOrdinals: across seeds the crash point must
// reach every record boundary, or "kills the server between any two
// journal records" would be an empty claim.
func TestCrashPlanCoversAllOrdinals(t *testing.T) {
	const maxRecords = 6
	seen := map[int]bool{}
	torn, clean := false, false
	for seed := uint64(0); seed < 200; seed++ {
		p := NewCrashPlan(seed, maxRecords)
		seen[p.CrashAt] = true
		if p.Torn {
			torn = true
		} else {
			clean = true
		}
	}
	for i := 1; i <= maxRecords; i++ {
		if !seen[i] {
			t.Errorf("no seed in [0,200) crashes at record %d", i)
		}
	}
	if !torn || !clean {
		t.Error("seeds must mix torn and clean crashes")
	}
}

func TestCrashPlanFiresInJournal(t *testing.T) {
	plan := NewCrashPlan(3, 4)
	dir := t.TempDir()
	l, err := journal.Open(dir, journal.Options{NoSync: true, Crash: plan.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.Spec{Name: "f", Nodes: 32, Days: 1, Seed: 1}
	var appendErr error
	for i := 0; i < 4 && appendErr == nil; i++ {
		appendErr = l.Append(&journal.SweepSubmitted{ID: "sweep-1", Key: "k", Spec: spec, Scenarios: 1})
		if appendErr == nil {
			appendErr = l.Commit(context.Background())
		}
	}
	if !errors.Is(appendErr, journal.ErrCrashed) {
		t.Fatalf("journal survived 4 appends under a 4-record crash plan: %v", appendErr)
	}
	if !plan.Fired() {
		t.Fatal("plan did not report firing")
	}
	if got := int(mustReopenCount(t, dir)); got >= 4 {
		t.Fatalf("recovered %d records, want < 4 after crash", got)
	}
}

func mustReopenCount(t *testing.T, dir string) int64 {
	t.Helper()
	l, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var n int64
	if err := l.Replay(func(journal.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTransportFaults drives each fault kind against a live test server.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(strings.Repeat("x", 4096)))
	}))
	defer srv.Close()

	t.Run("drop", func(t *testing.T) {
		tr := NewTransport(1, nil)
		tr.DropProb, tr.DelayProb, tr.DupProb, tr.TruncProb = 1, 0, 0, 0
		client := &http.Client{Transport: tr}
		if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("want injected drop, got %v", err)
		}
		if tr.Faults() != 1 {
			t.Fatalf("faults = %d, want 1", tr.Faults())
		}
		// The budget caps drops: once exhausted, requests flow again.
		tr.MaxFaults = 1
		if _, err := client.Get(srv.URL); err != nil {
			t.Fatalf("request after budget exhausted: %v", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		tr := NewTransport(2, nil)
		tr.DropProb, tr.DelayProb, tr.DupProb, tr.TruncProb = 0, 0, 0, 1
		client := &http.Client{Transport: tr}
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("want truncated body error, got %v", err)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		tr := NewTransport(3, nil)
		tr.DropProb, tr.DelayProb, tr.DupProb, tr.TruncProb = 0, 0, 1, 0
		client := &http.Client{Transport: tr}
		before := hits.Load()
		resp, err := client.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := hits.Load() - before; got != 2 {
			t.Fatalf("server saw %d deliveries of a duplicated request, want 2", got)
		}
	})
	t.Run("delay", func(t *testing.T) {
		tr := NewTransport(4, nil)
		tr.DropProb, tr.DelayProb, tr.DupProb, tr.TruncProb = 0, 1, 0, 0
		tr.MaxDelay = 30 * time.Millisecond
		client := &http.Client{Transport: tr}
		start := time.Now()
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Since(start) > time.Second {
			t.Fatal("delay blew past MaxDelay")
		}
	})
}

// TestTransportDeterministicSchedule: serial use of two same-seed
// transports draws identical fault schedules.
func TestTransportDeterministicSchedule(t *testing.T) {
	a, b := NewTransport(9, nil), NewTransport(9, nil)
	for i := 0; i < 100; i++ {
		da, db := a.decide(), b.decide()
		if da != db {
			t.Fatalf("call %d: schedules diverged: %+v vs %+v", i, da, db)
		}
	}
}
